(* Tests for the §7 adapters: a consensus object satisfies both the
   conciliator and the ratifier specifications. *)

open Conrat_sim
open Conrat_objects
open Conrat_core

let checkb = Alcotest.check Alcotest.bool

let expect_ok label = function
  | Ok () -> ()
  | Error reason -> Alcotest.failf "%s: %s" label reason

let run_object ?(adversary = Adversary.random_uniform) ~n ~inputs ~seed factory =
  let rng = Rng.create seed in
  let memory = Memory.create () in
  let instance = factory.Deciding.instantiate ~n memory in
  Scheduler.run ~n ~adversary ~rng ~memory
    (fun ~pid ~rng ->
      Program.map
        (fun out -> (out.Deciding.decide, out.Deciding.value))
        (instance.Deciding.run ~pid ~rng inputs.(pid)))

(* A consensus object viewed as a conciliator must satisfy the full
   conciliator spec with delta = 1: validity, termination, coherence
   (vacuous: bit 0) and agreement on EVERY execution. *)
let test_conciliator_view_delta_one () =
  for seed = 0 to 29 do
    let n = 5 in
    let inputs = Array.init n (fun pid -> pid mod 3) in
    let result =
      run_object ~n ~inputs ~seed (Adapters.conciliator_of_consensus (Consensus.standard ~m:3))
    in
    checkb "completed" true result.completed;
    expect_ok "validity" (Spec.validity_decided ~inputs ~outputs:result.outputs);
    Array.iter
      (function
        | Some (d, _) -> checkb "decision bit 0" false d
        | None -> Alcotest.fail "missing output")
      result.outputs;
    expect_ok "agreement every time (delta = 1)"
      (Spec.agreement ~outputs:(Array.map (Option.map snd) result.outputs))
  done

(* A consensus object viewed as a ratifier must satisfy acceptance and
   coherence. *)
let test_ratifier_view_spec () =
  for seed = 0 to 29 do
    let n = 5 in
    (* Mixed inputs: coherence must hold (all deciders agree). *)
    let inputs = Array.init n (fun pid -> pid mod 2) in
    let result =
      run_object ~n ~inputs ~seed (Adapters.ratifier_of_consensus (Consensus.standard ~m:2))
    in
    expect_ok "coherence" (Spec.coherence ~outputs:result.outputs);
    expect_ok "validity" (Spec.validity_decided ~inputs ~outputs:result.outputs);
    (* All-equal inputs: acceptance. *)
    let inputs = Array.make n 1 in
    let result =
      run_object ~n ~inputs ~seed (Adapters.ratifier_of_consensus (Consensus.standard ~m:2))
    in
    expect_ok "acceptance" (Spec.acceptance ~inputs ~outputs:result.outputs)
  done

(* The composite with a consensus-as-conciliator decides in one round
   (the delta = 1 corner of the Theorem 5 analysis). *)
let test_one_round_consensus () =
  for seed = 0 to 19 do
    let n = 4 in
    let inputs = Array.init n (fun pid -> pid mod 3) in
    let o =
      Conrat_harness.Montecarlo.run_consensus ~n
        ~adversary:Adversary.write_stalker ~inputs ~seed
        (Adapters.consensus_in_one_round ~m:3 ())
    in
    expect_ok "one-round contract" o.safety
  done

let qcheck_adapters_compose =
  (* Adapters must compose like any deciding object: (ratifier-view;
     anything) never reaches the second object. *)
  QCheck.Test.make ~name:"ratifier view short-circuits composition" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 0 10_000))
    (fun (n, seed) ->
      let entered = ref 0 in
      let probe =
        Deciding.make_factory "probe" (fun ~n:_ _memory ->
          Deciding.instance "probe" ~space:0 (fun ~pid:_ ~rng:_ v ->
            incr entered;
            Program.return { Deciding.decide = false; value = v }))
      in
      let factory =
        Compose.pair_factory
          (Adapters.ratifier_of_consensus (Consensus.standard ~m:2))
          probe
      in
      let inputs = Array.init n (fun pid -> pid mod 2) in
      let result = run_object ~n ~inputs ~seed factory in
      result.completed && !entered = 0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "adapters"
    [ ( "section7",
        [ tc "consensus as conciliator (delta=1)" `Quick test_conciliator_view_delta_one;
          tc "consensus as ratifier" `Quick test_ratifier_view_spec;
          tc "one-round consensus" `Quick test_one_round_consensus;
          QCheck_alcotest.to_alcotest qcheck_adapters_compose ] ) ]
