(* Observability subsystem tests: sinks, stage labels, the Chrome
   trace exporter, the live bound checker, the baseline parser, and
   progress reporting.  Also the sealed-metrics property (adversary
   views cannot mutate scheduler counters) and Trace serialization
   round-trips over every operation kind, including traces from the
   snapshot-backtracking explorer whose restores truncate registers. *)

open Conrat_sim
open Conrat_obs

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let run_checker_once ?sink ?(adversary = "round_robin") ~seed name =
  let config = Option.get (Conrat_verify.Checks.find name) in
  let n = config.Conrat_verify.Checks.n in
  let memory, body = Conrat_verify.Checks.setup_of config ~n () in
  ( Scheduler.run ?sink ~cheap_collect:config.Conrat_verify.Checks.cheap_collect
      ~n ~adversary:(Adversary.by_name adversary) ~rng:(Rng.create seed) ~memory
      (fun ~pid ~rng:_ -> body ~pid),
    n )

(* --- Trace serialization over every Op.kind ------------------------- *)

let test_trace_roundtrip_all_kinds () =
  let t = Trace.create () in
  let ev step pid op landed observed =
    Trace.add t { Trace.step; pid; op = Some (Op.Any op); landed; observed }
  in
  ev 0 0 (Op.Read 0) false (Some 3);
  ev 1 1 (Op.Write (1, 7)) true None;
  ev 2 0 (Op.Prob_write (0, 5, 0.25)) true None;
  ev 3 1 (Op.Prob_write_detect (2, 9, 0.75)) false None;
  ev 4 0 (Op.Collect (0, 3)) false None;
  match Trace.of_sexp (Trace.to_sexp t) with
  | Error msg -> Alcotest.failf "trace did not parse back: %s" msg
  | Ok t' ->
    checkb "all-kinds trace round-trips" true (Trace.equal t t');
    checki "length preserved" (Trace.length t) (Trace.length t')

(* A 2-process program whose landed prob-write branch allocates a fresh
   register: exploring it forces the machine to snapshot at the coin,
   and backtracking to the missed branch truncates the register file
   (the restore path introduced with the snapshot explorer). *)
let truncating_setup () =
  let memory = Memory.create () in
  let r0 = Memory.alloc memory in
  let body ~pid =
    let open Program in
    if pid = 0 then
      let* landed = prob_write_detect r0 1 ~p:0.5 in
      if landed then begin
        let extra = Memory.alloc memory in
        let* () = write extra 7 in
        let* v = read extra in
        return (Option.value v ~default:(-1))
      end
      else return 0
    else
      let* _ = read r0 in
      let* () = write r0 2 in
      return 1
  in
  (memory, body)

let test_trace_roundtrip_truncation_path () =
  (* Exhaustively explore with a sink: snapshots and restores must both
     fire, and after the walk the extra register of the landed branch
     has been truncated away (the machine is left in its last — missed
     coin — leaf). *)
  let snapshots = ref 0 and restores = ref 0 in
  let sink =
    Sink.make
      ~on_snapshot:(fun ~step:_ -> incr snapshots)
      ~on_restore:(fun ~step:_ -> incr restores)
      ()
  in
  let memory_ref = ref None in
  let result =
    Explore.explore ~n:2 ~sink
      ~setup:(fun () ->
        let memory, body = truncating_setup () in
        memory_ref := Some memory;
        (memory, body))
      ~check:(fun ~complete:_ _ -> Ok ())
      ()
  in
  (match result with
   | Ok stats -> checkb "tree exhausted" true stats.Explore.exhausted
   | Error (msg, _) -> Alcotest.failf "explore failed: %s" msg);
  checkb "explorer snapshotted" true (!snapshots > 0);
  checkb "explorer restored" true (!restores > 0);
  checki "restore truncated the extra register" 1
    (Memory.size (Option.get !memory_ref));
  (* Every path of the same program, replayed standalone with
     recording, must produce a trace that survives a sexp round-trip —
     including the landed path that touches the late register. *)
  let paths = [ []; [ 0 ]; [ 1 ]; [ 0; 1; 0 ]; [ 1; 0; 1; 0 ]; [ 0; 0; 1; 1 ] ] in
  let saw_late_register = ref false in
  List.iter
    (fun path ->
      let run =
        Explore.run_path ~record:true ~n:2
          ~setup:(fun () -> truncating_setup ())
          path
      in
      let t = Option.get run.Explore.trace in
      List.iter
        (fun (e : Trace.event) ->
          match e.Trace.op with
          | Some op when Op.loc op > 0 -> saw_late_register := true
          | _ -> ())
        (Trace.events t);
      match Trace.of_sexp (Trace.to_sexp t) with
      | Error msg -> Alcotest.failf "path trace did not parse back: %s" msg
      | Ok t' -> checkb "path trace round-trips" true (Trace.equal t t'))
    paths;
  checkb "some path exercised the late-allocated register" true !saw_late_register

(* --- Sealed metrics -------------------------------------------------- *)

let test_metrics_are_sealed () =
  let result, _ = run_checker_once ~seed:7 "conciliator_n2" in
  let counts = Metrics.counts result.Scheduler.metrics in
  let before = Metrics.count counts 0 in
  let arr = Metrics.counts_to_array counts in
  arr.(0) <- arr.(0) + 1_000;
  checki "mutating the exported array does not touch the counter" before
    (Metrics.count counts 0);
  checki "metrics total unchanged" result.Scheduler.steps
    (Metrics.total result.Scheduler.metrics);
  (* Round-tripping through an array is also a copy on the way in. *)
  let src = [| 1; 2 |] in
  let counts' = Metrics.counts_of_array src in
  src.(0) <- 99;
  checki "counts_of_array copies" 1 (Metrics.count counts' 0)

(* --- Sink combinators ------------------------------------------------ *)

let counting_sink () =
  let ops = ref 0 and decides = ref 0 in
  ( Sink.make
      ~on_op:(fun ~step:_ ~pid:_ ~kind:_ ~loc:_ ~landed:_ ~stage:_ -> incr ops)
      ~on_decide:(fun ~step:_ ~pid:_ -> incr decides)
      (),
    ops,
    decides )

let test_sink_tee_and_null () =
  let a, a_ops, a_dec = counting_sink () in
  let b, b_ops, b_dec = counting_sink () in
  let result, n =
    run_checker_once ~sink:(Sink.tee (Sink.tee a b) Sink.null) ~seed:3
      "composite_n2"
  in
  checkb "run completed" true result.Scheduler.completed;
  checki "tee forwards every op to both" !a_ops !b_ops;
  checki "op events match machine steps" result.Scheduler.steps !a_ops;
  checki "one decide per process" n !a_dec;
  checki "decides forwarded to both" !a_dec !b_dec

(* --- Stage labels and the per-stage histogram ------------------------ *)

let test_stage_work_histogram () =
  let sw = Stage_work.create ~n:2 in
  let result, _ =
    run_checker_once ~sink:(Stage_work.sink sw) ~seed:11 "composite_n2"
  in
  let totals = Stage_work.totals sw in
  checkb "at least two stages observed" true (List.length totals >= 2);
  let sum = List.fold_left (fun acc (_, (tot, _)) -> acc + tot) 0 totals in
  checki "stage totals account for every operation" result.Scheduler.steps sum;
  List.iter
    (fun (stage, (tot, indiv)) ->
      checkb (stage ^ ": max individual <= total") true (indiv <= tot);
      checkb (stage ^ ": counts positive") true (tot > 0 && indiv > 0))
    totals;
  checkb "composite stages are labeled" true
    (List.for_all (fun (stage, _) -> stage <> Stage_work.unlabeled) totals)

let test_stage_work_merge_laws () =
  let a = [ ("alpha", (10, 4)); ("beta", (3, 1)) ] in
  let b = [ ("alpha", (5, 6)); ("gamma", (2, 2)) ] in
  let c = [ ("beta", (7, 7)) ] in
  let ( +@ ) = Stage_work.merge in
  Alcotest.(check (list (pair string (pair int int))))
    "merge combines totals and maxima"
    [ ("alpha", (15, 6)); ("beta", (3, 1)); ("gamma", (2, 2)) ]
    (a +@ b);
  Alcotest.(check (list (pair string (pair int int))))
    "commutative" (a +@ b) (b +@ a);
  Alcotest.(check (list (pair string (pair int int))))
    "associative"
    ((a +@ b) +@ c)
    (a +@ (b +@ c));
  Alcotest.(check (list (pair string (pair int int)))) "identity" a (a +@ []);
  Alcotest.(check (list (pair string (pair int int)))) "identity'" a ([] +@ a)

(* --- Chrome trace exporter ------------------------------------------- *)

let test_chrome_trace_structure () =
  let ct = Chrome_trace.create ~n:2 in
  let result, _ =
    run_checker_once ~sink:(Chrome_trace.sink ct) ~seed:5 "composite_n2"
  in
  checkb "run completed" true result.Scheduler.completed;
  let doc = Chrome_trace.to_string ct in
  let count_occurrences needle =
    let ln = String.length needle and n = String.length doc in
    let c = ref 0 in
    for i = 0 to n - ln do
      if String.sub doc i ln = needle then incr c
    done;
    !c
  in
  checkb "document shape" true
    (String.length doc > 2
     && String.sub doc 0 16 = "{\"traceEvents\":["
     && doc.[String.length doc - 2] = '}');
  (* Metadata: process name + a thread name per track (2 processes +
     the explorer track). *)
  checki "metadata events" 4 (count_occurrences "\"ph\":\"M\"");
  checki "one complete event per machine step" result.Scheduler.steps
    (count_occurrences "\"ph\":\"X\"");
  checkb "stage spans present" true (count_occurrences "\"ph\":\"B\"" > 0);
  checki "stage spans balanced" (count_occurrences "\"ph\":\"B\"")
    (count_occurrences "\"ph\":\"E\"");
  checki "decision instants" 2 (count_occurrences "\"name\":\"decide\"");
  checki "events accessor agrees" (Chrome_trace.events ct)
    (count_occurrences "\"ph\":")

let test_chrome_trace_fleet_structure () =
  (* Drive the fleet collector through the Sink interface exactly as
     Parallel does: a steal opens the shard's span on the worker's
     track (closing any still-open one), completion closes it with the
     leaf/step counts.  Domain 1 steals twice before reporting, so one
     span is closed by the next steal rather than by shard_done. *)
  let ct = Chrome_trace.create_fleet ~workers:2 in
  let sink = Chrome_trace.fleet_sink ct in
  sink.Sink.on_steal ~domain:0 ~shard:0 ~prefix:3;
  sink.Sink.on_shard_done ~domain:0 ~shard:0 ~leaves:10 ~steps:40;
  sink.Sink.on_steal ~domain:1 ~shard:1 ~prefix:2;
  sink.Sink.on_steal ~domain:1 ~shard:2 ~prefix:2;
  sink.Sink.on_shard_done ~domain:1 ~shard:2 ~leaves:5 ~steps:20;
  let doc = Chrome_trace.to_string ct in
  let count_occurrences needle =
    let ln = String.length needle and n = String.length doc in
    let c = ref 0 in
    for i = 0 to n - ln do
      if String.sub doc i ln = needle then incr c
    done;
    !c
  in
  checkb "document shape" true
    (String.length doc > 2
     && String.sub doc 0 16 = "{\"traceEvents\":["
     && doc.[String.length doc - 2] = '}');
  (* Metadata: the fleet process name plus one thread name per worker. *)
  checki "metadata events" 3 (count_occurrences "\"ph\":\"M\"");
  checkb "worker tracks named" true
    (count_occurrences "worker 0" = 1 && count_occurrences "worker 1" = 1);
  checki "steal instants" 3 (count_occurrences "\"name\":\"steal\"");
  checki "shard spans open per steal" 3 (count_occurrences "\"ph\":\"B\"");
  checki "shard spans balanced" (count_occurrences "\"ph\":\"B\"")
    (count_occurrences "\"ph\":\"E\"");
  checkb "completion args carried" true
    (count_occurrences "\"args\":{\"leaves\":10,\"steps\":40}" = 1
     && count_occurrences "\"args\":{\"leaves\":5,\"steps\":20}" = 1);
  checki "events accessor agrees" (Chrome_trace.events ct)
    (count_occurrences "\"ph\":")

(* --- Telemetry counter monoid and coverage signatures ---------------- *)

let qcheck_telemetry_monoid =
  (* Snapshots under merge: associative, commutative, empty as identity
     — the laws the --jobs-invariant fleet totals rest on. *)
  let cells = QCheck.Gen.(array_size (return Telemetry.ncounters) (int_bound 10_000)) in
  let gen = QCheck.Gen.triple cells cells cells in
  let print (a, b, c) =
    let row x =
      String.concat "," (Array.to_list (Array.map string_of_int x))
    in
    Printf.sprintf "[%s] [%s] [%s]" (row a) (row b) (row c)
  in
  QCheck.Test.make ~count:200
    ~name:"telemetry snapshots form a commutative monoid"
    (QCheck.make ~print gen)
    (fun (a, b, c) ->
      let s = Telemetry.of_values in
      let ( +@ ) = Telemetry.merge in
      let eq x y = Telemetry.to_alist x = Telemetry.to_alist y in
      eq (s a +@ s b) (s b +@ s a)
      && eq (s a +@ s b +@ s c) (s a +@ (s b +@ s c))
      && eq (s a +@ Telemetry.empty ()) (s a)
      && eq (Telemetry.empty () +@ s a) (s a))

let qcheck_coverage_json_roundtrip =
  (* Arbitrary leaf streams and saturation curves: the canonical JSON
     rendering must parse back to an equal signature and re-render to
     the identical string (the schema-v3 "coverage" block contract). *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_bound 60)
           (triple (int_bound 2) (int_bound 40) (int_bound 17)))
        (list_size (int_bound 10) (pair (int_bound 1000) (int_bound 200))))
  in
  let print (leaves, sat) =
    Printf.sprintf "%d leaves, %d saturation samples" (List.length leaves)
      (List.length sat)
  in
  QCheck.Test.make ~count:100 ~name:"coverage JSON round-trips canonically"
    (QCheck.make ~print gen)
    (fun (leaves, sat) ->
      let c = Coverage.create () in
      List.iter
        (fun (k, depth, sseed) ->
          let kind =
            match k with 0 -> `Complete | 1 -> `Truncated | _ -> `Pruned
          in
          Coverage.leaf c ~kind ~depth ~n:2 ~stage:(fun pid ->
              if (sseed + pid) mod 3 = 0 then None
              else Some (Printf.sprintf "stage%d" ((sseed + pid) mod 5))))
        leaves;
      List.iter (fun (l, t) -> Coverage.saturate c ~leaves:l ~table:t) sat;
      let json = Coverage.to_json c in
      match Coverage.of_json json with
      | Error e -> QCheck.Test.fail_reportf "of_json failed: %s" e
      | Ok c' -> Coverage.equal c c' && String.equal (Coverage.to_json c') json)

(* --- Live bound checking --------------------------------------------- *)

let conciliator_specs n =
  (* Theorem 6: individual work of the impatient first-mover is at most
     2 lg n + O(1); Theorem 7: expected total work at most 6n. *)
  [ Bound_check.spec
      ~individual:(Conrat_core.Conciliator.max_individual_work ~n)
      ~mean_total:(6.0 *. float_of_int n)
      "impatient conciliator (Thm 6/7)" ]

let test_bound_check_passes_conciliator () =
  let n = 2 in
  let bc = Bound_check.create ~n ~specs:(conciliator_specs n) in
  let sink = Bound_check.sink bc in
  for seed = 0 to 29 do
    let result, _ =
      run_checker_once ~sink ~adversary:"random_uniform" ~seed "conciliator_n2"
    in
    Bound_check.end_execution ~registers:result.Scheduler.registers bc
  done;
  checki "30 executions accounted" 30 (Bound_check.executions bc);
  match Bound_check.result bc with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "paper bounds violated: %a" Bound_check.pp_violation
      (List.hd vs)

let test_bound_check_flags_over_budget_protocol () =
  (* The same conciliator, deliberately padded with busy-work reads past
     the Theorem 6 budget: the checker must flag it, live, and also
     catch a register budget that is plainly too small. *)
  let n = 2 in
  let config = Option.get (Conrat_verify.Checks.find "conciliator_n2") in
  let budget = Conrat_core.Conciliator.max_individual_work ~n in
  let specs =
    Bound_check.spec ~registers:0 "no registers allowed" :: conciliator_specs n
  in
  let bc = Bound_check.create ~n ~specs in
  let memory, body = Conrat_verify.Checks.setup_of config ~n () in
  let scratch = Memory.alloc memory in
  let padded ~pid =
    let rec pad i =
      if i = 0 then body ~pid
      else Program.bind (Program.read scratch) (fun _ -> pad (i - 1))
    in
    pad (budget + 4)
  in
  let result =
    Scheduler.run ~sink:(Bound_check.sink bc) ~n
      ~adversary:(Adversary.by_name "round_robin") ~rng:(Rng.create 1) ~memory
      (fun ~pid ~rng:_ -> padded ~pid)
  in
  Bound_check.end_execution ~registers:result.Scheduler.registers bc;
  (* The individual bound is checked live: the violation is recorded
     before end_execution. *)
  let live = Bound_check.violations bc in
  checkb "individual bound flagged live" true
    (List.exists (fun v -> v.Bound_check.kind = "individual") live);
  (match Bound_check.result bc with
   | Ok () -> Alcotest.fail "over-budget protocol passed the bound checker"
   | Error vs ->
     checkb "register budget flagged" true
       (List.exists (fun v -> v.Bound_check.kind = "registers") vs);
     List.iter
       (fun v ->
         checkb "observed exceeds bound" true
           (v.Bound_check.observed > v.Bound_check.bound))
       vs);
  match Bound_check.check bc with
  | () -> Alcotest.fail "check did not raise"
  | exception Failure msg ->
    checkb "failure message names the spec" true
      (String.length msg > 0
       && (let sub = "impatient conciliator" in
           let rec find i =
             i + String.length sub <= String.length msg
             && (String.sub msg i (String.length sub) = sub || find (i + 1))
           in
           find 0))

(* --- Baseline parser -------------------------------------------------- *)

let test_baseline_parser () =
  let file = Filename.temp_file "bench_verify" ".json" in
  let oc = open_out file in
  output_string oc
    "{\n  \"schema_version\": 1,\n  \"kind\": \"verify-bench\",\n  \"results\": [\n\
    \    {\"name\":\"fallback_n2_d28\",\"engine\":\"por\",\"executions\":1203084,\
     \"complete\":1203084,\"truncated\":0,\"pruned\":23,\"steps\":31000000,\
     \"wall_clock_seconds\":0.972,\"exhausted\":true,\"ok\":true},\n\
    \    {\"name\":\"fallback_n2_d28\",\"engine\":\"naive\",\"executions\":1203084,\
     \"complete\":1203084,\"truncated\":0,\"steps\":33000000,\
     \"wall_clock_seconds\":4.5,\"exhausted\":true,\"ok\":true}\n  ]\n}\n";
  close_out oc;
  let entries = Baseline.load file in
  Sys.remove file;
  checki "two entries" 2 (List.length entries);
  (match Baseline.find entries ~name:"fallback_n2_d28" ~engine:"por" with
   | None -> Alcotest.fail "por entry not found"
   | Some e ->
     checki "executions" 1_203_084 e.Baseline.executions;
     checkb "wall clock" true (Float.abs (e.Baseline.wall_clock_seconds -. 0.972) < 1e-9);
     checkb "exhausted" true e.Baseline.exhausted);
  checkb "missing engine is None" true
    (Baseline.find entries ~name:"fallback_n2_d28" ~engine:"bogus" = None);
  Alcotest.(check (list reject)) "unreadable file is empty" []
    (Baseline.load "/nonexistent/BENCH_VERIFY.json")

(* The committed baseline must stay parseable — progress ETAs feed on
   it.  The test binary runs in the dune sandbox, so the file is
   declared as a test dep and resolved relative to the workspace. *)
let test_committed_baseline_parses () =
  let file = "../BENCH_VERIFY.json" in
  if not (Sys.file_exists file) then ()
  else begin
    let entries = Baseline.load file in
    checkb "committed BENCH_VERIFY.json parses" true (entries <> []);
    List.iter
      (fun (e : Baseline.entry) ->
        checkb (e.Baseline.name ^ ": counts sane") true
          (e.Baseline.executions > 0 && e.Baseline.wall_clock_seconds >= 0.0))
      entries
  end

(* --- Progress reporter ------------------------------------------------ *)

let test_progress_reporter () =
  let file = Filename.temp_file "progress" ".txt" in
  let oc = open_out file in
  let p =
    Progress.create ~out:oc ~interval:0.0 ~check_every:1 ~expected:1_000
      ~baseline_seconds:10.0 ~label:"unit-test" ()
  in
  for i = 1 to 500 do
    Progress.tick p ~done_:i ~detail:(fun () -> "detail-string")
  done;
  Progress.force p ~done_:1_000 ~detail:(fun () -> "final-detail");
  Progress.finish p;
  close_out oc;
  let ic = open_in file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove file;
  let contains needle =
    let ln = String.length needle and n = String.length contents in
    let rec go i = i + ln <= n && (String.sub contents i ln = needle || go (i + 1)) in
    go 0
  in
  checkb "emits the label" true (contains "[unit-test]");
  checkb "emits detail" true (contains "detail");
  checkb "reaches 100%" true (contains "100%");
  checkb "shows the baseline" true (contains "baseline")

let test_progress_default_enabled_respects_ci () =
  (* The test runner's stderr is not a TTY (dune captures it), so the
     CLI default must be off — exactly the CI guarantee. *)
  checkb "progress defaults off without a TTY" false (Progress.default_enabled ())

let () =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [ ( "trace_sexp",
        [ tc "round-trips every op kind" `Quick test_trace_roundtrip_all_kinds;
          tc "round-trips truncation-path traces" `Quick
            test_trace_roundtrip_truncation_path ] );
      ( "sealed_metrics",
        [ tc "views cannot mutate counters" `Quick test_metrics_are_sealed ] );
      ( "sinks",
        [ tc "tee and null" `Quick test_sink_tee_and_null ] );
      ( "stage_work",
        [ tc "histogram over a composed run" `Quick test_stage_work_histogram;
          tc "merge laws" `Quick test_stage_work_merge_laws ] );
      ( "chrome_trace",
        [ tc "document structure" `Quick test_chrome_trace_structure;
          tc "fleet tracks and shard spans" `Quick
            test_chrome_trace_fleet_structure ] );
      ( "telemetry",
        [ qc qcheck_telemetry_monoid; qc qcheck_coverage_json_roundtrip ] );
      ( "bound_check",
        [ tc "paper bounds hold on the conciliator" `Quick
            test_bound_check_passes_conciliator;
          tc "flags an over-budget protocol" `Quick
            test_bound_check_flags_over_budget_protocol ] );
      ( "baseline",
        [ tc "parses verify-bench JSON" `Quick test_baseline_parser;
          tc "committed baseline parses" `Quick test_committed_baseline_parses ] );
      ( "progress",
        [ tc "rate-limited reporting" `Quick test_progress_reporter;
          tc "default off without TTY" `Quick
            test_progress_default_enabled_respects_ci ] ) ]
