(* Exhaustive model-checking tests.

   Explore.explore enumerates every schedule and every probabilistic-
   write outcome on small instances, so the checks in this file are
   proofs-by-exhaustion of the safety properties for those instances —
   much stronger than sampling.  A known-broken ratifier is included to
   show the explorer actually finds violations. *)

open Conrat_sim
open Conrat_objects

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Explorer harness for a deciding object with fixed inputs. *)
let explore_object ?max_depth ?max_runs ?cheap_collect ~n ~inputs ~check factory =
  let dummy_rng = Rng.create 0 in
  Explore.explore ?max_depth ?max_runs ?cheap_collect ~n
    ~setup:(fun () ->
      let memory = Memory.create () in
      let instance = factory.Deciding.instantiate ~n memory in
      let body ~pid =
        Program.map
          (fun out -> (out.Deciding.decide, out.Deciding.value))
          (instance.Deciding.run ~pid ~rng:dummy_rng inputs.(pid))
      in
      (memory, body))
    ~check ()

let weak_consensus_check ~inputs ~complete outputs =
  Spec.all
    [ Spec.validity_decided ~inputs ~outputs;
      Spec.coherence ~outputs;
      (if complete then Spec.acceptance ~inputs ~outputs else Ok ()) ]

let exhaust label result =
  match result with
  | Ok (stats : Explore.stats) ->
    checkb (label ^ ": tree exhausted") true stats.exhausted;
    stats
  | Error (reason, (stats : Explore.stats)) ->
    Alcotest.failf "%s: violation after %d executions: %s" label
      (stats.complete + stats.truncated) reason

(* ------------------------------------------------------------------ *)
(* Explorer self-tests on known trees                                  *)
(* ------------------------------------------------------------------ *)

let test_counts_interleavings () =
  (* Two processes, two deterministic ops each, no coins: the number of
     complete executions is the number of interleavings C(4,2) = 6. *)
  let result =
    Explore.explore ~n:2
      ~setup:(fun () ->
        let memory = Memory.create () in
        let r = Memory.alloc_n memory 2 in
        let body ~pid =
          let open Program in
          let* () = write r.(pid) 1 in
          let* () = write r.(pid) 2 in
          return 0
        in
        (memory, body))
      ~check:(fun ~complete:_ _ -> Ok ())
      ()
  in
  match result with
  | Ok stats ->
    checki "C(4,2) interleavings" 6 stats.Explore.complete;
    checki "no truncation" 0 stats.Explore.truncated;
    checkb "exhausted" true stats.Explore.exhausted
  | Error (reason, _) -> Alcotest.fail reason

let test_counts_coin_branches () =
  (* One process, two probabilistic writes with 0 < p < 1: 4 leaves. *)
  let result =
    Explore.explore ~n:1
      ~setup:(fun () ->
        let memory = Memory.create () in
        let r = Memory.alloc memory in
        let body ~pid:_ =
          let open Program in
          let* () = prob_write r 1 ~p:0.5 in
          let* () = prob_write r 2 ~p:0.5 in
          return 0
        in
        (memory, body))
      ~check:(fun ~complete:_ _ -> Ok ())
      ()
  in
  match result with
  | Ok stats -> checki "2x2 coin outcomes" 4 stats.Explore.complete
  | Error (reason, _) -> Alcotest.fail reason

let test_deterministic_probs_do_not_branch () =
  (* p = 0 and p = 1 are deterministic: a single execution. *)
  let result =
    Explore.explore ~n:1
      ~setup:(fun () ->
        let memory = Memory.create () in
        let r = Memory.alloc memory in
        let body ~pid:_ =
          let open Program in
          let* () = prob_write r 1 ~p:1.0 in
          let* () = prob_write r 2 ~p:0.0 in
          let+ v = read r in
          match v with Some v -> v | None -> -1
        in
        (memory, body))
      ~check:(fun ~complete:_ outputs ->
        if outputs.(0) = Some 1 then Ok () else Error "p=1 write lost or p=0 write landed")
      ()
  in
  match result with
  | Ok stats -> checki "single execution" 1 stats.Explore.complete
  | Error (reason, _) -> Alcotest.fail reason

let test_finds_planted_violation () =
  (* A deliberately broken "ratifier" that decides without checking a
     read quorum: the explorer must find the interleaving where two
     processes decide differently. *)
  let broken =
    Deciding.make_factory "broken" (fun ~n:_ memory ->
      let proposal = Memory.alloc memory in
      Deciding.instance "broken" ~space:1 (fun ~pid:_ ~rng:_ v ->
        let open Program in
        let* u = read proposal in
        let+ preference =
          match u with
          | Some u -> return u
          | None ->
            let+ () = write proposal v in
            v
        in
        { Deciding.decide = true; value = preference }))
  in
  let inputs = [| 0; 1 |] in
  let result =
    explore_object ~n:2 ~inputs
      ~check:(fun ~complete outputs -> weak_consensus_check ~inputs ~complete outputs)
      broken
  in
  match result with
  | Ok _ -> Alcotest.fail "explorer missed the planted coherence violation"
  | Error (reason, _) ->
    checkb "reports coherence" true
      (String.length reason >= 9 && String.sub reason 0 9 = "coherence")

let test_truncation_reported () =
  (* An infinite loop gets cut at max_depth and counted as truncated. *)
  let result =
    Explore.explore ~max_depth:20 ~max_runs:5 ~n:1
      ~setup:(fun () ->
        let memory = Memory.create () in
        let r = Memory.alloc memory in
        let body ~pid:_ =
          let open Program in
          let rec spin () =
            let* v = read r in
            match v with None -> spin () | Some v -> return v
          in
          spin ()
        in
        (memory, body))
      ~check:(fun ~complete outputs ->
        if complete || outputs.(0) <> None then Error "spin cannot finish" else Ok ())
      ()
  in
  match result with
  | Ok stats ->
    checki "no complete executions" 0 stats.Explore.complete;
    checkb "truncations counted" true (stats.Explore.truncated >= 1)
  | Error (reason, _) -> Alcotest.fail reason

(* ------------------------------------------------------------------ *)
(* Exhaustive safety proofs for the paper's objects (small instances)  *)
(* ------------------------------------------------------------------ *)

let test_binary_ratifier_exhaustive_n2 () =
  (* Every interleaving of the 3-register binary ratifier with
     conflicting inputs: validity + coherence, and nobody may decide 1
     while a conflicting announce is complete...  coherence covers it. *)
  let inputs = [| 0; 1 |] in
  let stats =
    exhaust "binary ratifier n=2"
      (explore_object ~n:2 ~inputs
         ~check:(fun ~complete outputs -> weak_consensus_check ~inputs ~complete outputs)
         (Conrat_core.Ratifier.binary ()))
  in
  checkb "explored many interleavings" true (stats.Explore.complete >= 50)

let test_binary_ratifier_exhaustive_n3 () =
  let inputs = [| 0; 1; 0 |] in
  ignore
    (exhaust "binary ratifier n=3"
       (explore_object ~n:3 ~inputs
          ~check:(fun ~complete outputs -> weak_consensus_check ~inputs ~complete outputs)
          (Conrat_core.Ratifier.binary ())))

let test_binary_ratifier_acceptance_exhaustive () =
  let inputs = [| 1; 1; 1 |] in
  ignore
    (exhaust "binary ratifier acceptance n=3"
       (explore_object ~n:3 ~inputs
          ~check:(fun ~complete outputs -> weak_consensus_check ~inputs ~complete outputs)
          (Conrat_core.Ratifier.binary ())))

let test_mvalued_ratifier_exhaustive () =
  (* Bollobás ratifier, m = 3, three conflicting processes. *)
  let inputs = [| 0; 1; 2 |] in
  ignore
    (exhaust "bollobas ratifier n=3 m=3"
       (explore_object ~max_runs:5_000_000 ~n:3 ~inputs
          ~check:(fun ~complete outputs -> weak_consensus_check ~inputs ~complete outputs)
          (Conrat_core.Ratifier.bollobas ~m:3)))

let test_cheap_collect_ratifier_exhaustive () =
  let inputs = [| 0; 1 |] in
  ignore
    (exhaust "cheap-collect ratifier n=2 m=3"
       (explore_object ~cheap_collect:true ~n:2 ~inputs
          ~check:(fun ~complete outputs -> weak_consensus_check ~inputs ~complete outputs)
          (Conrat_core.Ratifier.cheap_collect ~m:3)))

let test_conciliator_exhaustive () =
  (* The impatient conciliator for n=2: every schedule and every coin
     outcome (first write has p=1/2, then p=1).  Validity must hold on
     every path, including truncated ones. *)
  let inputs = [| 0; 1 |] in
  let stats =
    exhaust "impatient conciliator n=2"
      (explore_object ~max_depth:60 ~n:2 ~inputs
         ~check:(fun ~complete:_ outputs ->
           Spec.all
             [ Spec.validity_decided ~inputs ~outputs;
               Spec.coherence ~outputs ])
         (Conrat_core.Conciliator.impatient_first_mover ()))
  in
  checkb "some executions truncated (livelock exists)" true (stats.Explore.truncated >= 0)

let test_fallback_exhaustive_n2 () =
  (* The racing fallback, n = 2, conflicting inputs: agreement +
     validity among deciders on every (possibly truncated) path.  The
     tree up to depth 28 is explored completely; deeper prefixes are
     covered up to the run budget.  An earlier version of the fallback
     (decide without the candidate phase) fails this test after 13
     executions — the explorer found a real stale-decision agreement
     violation. *)
  let inputs = [| 0; 1 |] in
  let result =
    explore_object ~max_depth:28 ~max_runs:600_000 ~n:2 ~inputs
      ~check:(fun ~complete:_ outputs ->
        Spec.all
          [ Spec.validity_decided ~inputs ~outputs;
            Spec.coherence ~outputs;
            Spec.agreement ~outputs:(Array.map (Option.map snd) outputs) ])
      (Conrat_core.Fallback.racing ~m:2 ())
  in
  match result with
  | Ok stats -> checkb "explored a large tree" true (stats.Explore.complete >= 1000)
  | Error (reason, _) -> Alcotest.failf "racing fallback n=2: %s" reason

let test_composition_exhaustive () =
  (* One full conciliator+ratifier round, n=2: weak-consensus safety on
     every path of the composite (Corollary 4, by exhaustion). *)
  let inputs = [| 0; 1 |] in
  let factory =
    Compose.seq_factory
      [ Conrat_core.Conciliator.impatient_first_mover ();
        Conrat_core.Ratifier.binary () ]
  in
  ignore
    (exhaust "C;R composite n=2"
       (explore_object ~max_depth:60 ~max_runs:5_000_000 ~n:2 ~inputs
          ~check:(fun ~complete:_ outputs ->
            Spec.all [ Spec.validity_decided ~inputs ~outputs; Spec.coherence ~outputs ])
          factory))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "explore"
    [ ( "explorer",
        [ tc "counts interleavings" `Quick test_counts_interleavings;
          tc "counts coin branches" `Quick test_counts_coin_branches;
          tc "deterministic probs" `Quick test_deterministic_probs_do_not_branch;
          tc "finds planted violation" `Quick test_finds_planted_violation;
          tc "truncation reported" `Quick test_truncation_reported ] );
      ( "exhaustive_proofs",
        [ tc "binary ratifier n=2" `Quick test_binary_ratifier_exhaustive_n2;
          tc "binary ratifier n=3" `Slow test_binary_ratifier_exhaustive_n3;
          tc "binary ratifier acceptance n=3" `Slow test_binary_ratifier_acceptance_exhaustive;
          tc "bollobas ratifier n=3 m=3" `Slow test_mvalued_ratifier_exhaustive;
          tc "cheap-collect ratifier" `Quick test_cheap_collect_ratifier_exhaustive;
          tc "impatient conciliator n=2" `Slow test_conciliator_exhaustive;
          tc "racing fallback n=2" `Slow test_fallback_exhaustive_n2;
          tc "composite C;R n=2" `Slow test_composition_exhaustive ] ) ]
