(* Tests for the verification subsystem (lib/verify): the static
   independence relation, sleep-set POR cross-checked against the naive
   enumerator, the delta-debugging shrinker, and replayable
   counterexample artifacts — including the committed §7 fixture, which
   must still fail against the historical buggy decision rule and pass
   against the shipped protocol. *)

open Conrat_sim
open Conrat_verify

let check = Alcotest.check
let checkb msg expected actual = check Alcotest.bool msg expected actual
let checki msg expected actual = check Alcotest.int msg expected actual
let tc = Alcotest.test_case

let config name =
  match Checks.find name with
  | Some c -> c
  | None -> Alcotest.failf "no checker config named %s" name

(* ------------------------------------------------------------------ *)
(* S-expressions                                                       *)
(* ------------------------------------------------------------------ *)

let test_sexp_roundtrip () =
  let samples =
    [ Sexp.Atom "x";
      Sexp.atom "needs quoting";
      Sexp.atom "par(en)s and \"quotes\"";
      Sexp.atom "";
      Sexp.List [];
      Sexp.List
        [ Sexp.Atom "counterexample"; Sexp.of_int (-3); Sexp.of_bool true;
          Sexp.List [ Sexp.of_float 0.5; Sexp.Atom "y" ] ] ]
  in
  List.iter
    (fun s ->
      match Sexp.of_string (Sexp.to_string s) with
      | Ok s' -> checkb ("roundtrip " ^ Sexp.to_string s) true (s = s')
      | Error e -> Alcotest.failf "parse error on %s: %s" (Sexp.to_string s) e)
    samples;
  (match Sexp.of_string "(a b) trailing" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Sexp.of_string "; comment\n (a ;inline\n b)" with
  | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]) -> ()
  | Ok s -> Alcotest.failf "comment parse: got %s" (Sexp.to_string s)
  | Error e -> Alcotest.failf "comment parse: %s" e

let test_op_sexp_roundtrip () =
  let ops =
    [ Op.Any (Op.Read 3);
      Op.Any (Op.Write (0, -7));
      Op.Any (Op.Prob_write (2, 5, 0.25));
      Op.Any (Op.Prob_write_detect (1, 0, 0.5));
      Op.Any (Op.Collect (4, 3)) ]
  in
  List.iter
    (fun op ->
      match Op.of_sexp (Op.to_sexp op) with
      | Ok op' -> checkb "op roundtrip" true (op = op')
      | Error e -> Alcotest.failf "op roundtrip: %s" e)
    ops

(* ------------------------------------------------------------------ *)
(* Independence                                                        *)
(* ------------------------------------------------------------------ *)

let test_independence () =
  let indep a b = Independence.independent a b in
  let r l = Op.Any (Op.Read l) in
  let w l = Op.Any (Op.Write (l, 1)) in
  let pw l = Op.Any (Op.Prob_write (l, 1, 0.5)) in
  let c l len = Op.Any (Op.Collect (l, len)) in
  checkb "reads commute (same reg)" true (indep (r 0) (r 0));
  checkb "distinct regs commute" true (indep (w 0) (w 1));
  checkb "read/write same reg conflict" false (indep (r 0) (w 0));
  checkb "write/write same reg conflict" false (indep (w 2) (w 2));
  checkb "prob-write is a writer" false (indep (pw 1) (r 1));
  checkb "prob-write distinct reg" true (indep (pw 1) (w 0));
  checkb "collect spans its range" false (indep (c 0 3) (w 2));
  checkb "collect past its range" true (indep (c 0 3) (w 3));
  checkb "collect vs reads commute" true (indep (c 0 3) (r 1));
  (* Symmetry on a small op sample. *)
  let sample = [ r 0; r 2; w 0; w 2; pw 1; c 0 2 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b -> checkb "independence symmetric" (indep a b) (indep b a))
        sample)
    sample

(* ------------------------------------------------------------------ *)
(* POR vs naive enumeration                                            *)
(* ------------------------------------------------------------------ *)

(* On every pre-existing exhaustive config the two engines must report
   the same complete-execution outcome set while POR explores strictly
   fewer executions.  These are the soundness cross-checks ISSUE'd for
   the reduction. *)
let cross_check_names =
  [ "binary_ratifier_n2"; "binary_ratifier_n3"; "binary_ratifier_accept_n3";
    "bollobas_ratifier_n3_m3"; "cheap_collect_ratifier_n2"; "conciliator_n2";
    "composite_n2" ]

let test_cross_check name () =
  let c = config name in
  match Checks.cross_check c with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok x ->
    checkb (name ^ ": outcome sets agree") true x.Checks.outcomes_agree;
    checkb (name ^ ": naive exhausted") true x.naive.Naive.exhausted;
    checkb (name ^ ": por exhausted") true x.por.Por.exhausted;
    checkb
      (Printf.sprintf "%s: strictly fewer executions (por %d vs naive %d)" name
         (Por.explored x.por) (x.naive.Naive.complete + x.naive.truncated))
      true
      (Por.explored x.por < x.naive.Naive.complete + x.naive.truncated);
    checkb (name ^ ": at least one outcome") true (x.outcome_count > 0)

(* A hand-sized sanity check of the sleep sets themselves: two processes
   touching disjoint registers have C(4,2) = 6 naive interleavings of
   their 2+2 writes but only one Mazurkiewicz class, so POR must run
   exactly one complete execution. *)
let test_por_disjoint_writers () =
  let setup () =
    let memory = Memory.create () in
    let regs = Memory.alloc_n memory 2 in
    let body ~pid =
      let open Program in
      let* () = write regs.(pid) 1 in
      let* () = write regs.(pid) 2 in
      return pid
    in
    (memory, body)
  in
  let check ~complete:_ _ = Ok () in
  (match Naive.explore ~n:2 ~setup ~check () with
   | Ok s ->
     checki "naive interleavings" 6 s.Naive.complete;
     checkb "naive exhausted" true s.exhausted
   | Error _ -> Alcotest.fail "naive found a violation");
  match Por.explore ~n:2 ~setup ~check () with
  | Ok s ->
    checki "por complete executions" 1 s.Por.complete;
    checkb "por exhausted" true s.exhausted
  | Error _ -> Alcotest.fail "por found a violation"

(* Conflicting ops on one register: every schedule is its own class, so
   POR must keep them all (reduction is sound, not over-eager). *)
let test_por_conflicting_writers () =
  let setup () =
    let memory = Memory.create () in
    let reg = Memory.alloc memory in
    let body ~pid =
      let open Program in
      let* () = write reg (pid + 1) in
      let+ v = read reg in
      match v with Some v -> v | None -> -1
    in
    (memory, body)
  in
  let outcomes = Hashtbl.create 16 in
  let note ~complete outputs =
    (* Copy: Por reuses the outputs buffer across leaves. *)
    if complete then Hashtbl.replace outcomes (Array.copy outputs) ();
    Ok ()
  in
  let naive_total =
    match Naive.explore ~n:2 ~setup ~check:note () with
    | Ok s -> s.Naive.complete
    | Error _ -> Alcotest.fail "naive violation"
  in
  let naive_outcomes = Hashtbl.length outcomes in
  Hashtbl.reset outcomes;
  match Por.explore ~n:2 ~setup ~check:note () with
  | Ok s ->
    checkb "por <= naive" true (s.Por.complete <= naive_total);
    checki "same outcome count" naive_outcomes (Hashtbl.length outcomes)
  | Error _ -> Alcotest.fail "por violation"

(* The raised exhaustion bound: binary ratifier at n = 4 was out of
   reach for the naive enumerator's test budget (16.5M executions); POR
   exhausts it in a few thousand. *)
let test_binary_ratifier_n4_exhausts () =
  let c = config "binary_ratifier_n4" in
  match Checks.run c with
  | Ok s ->
    checkb "exhausted" true s.Por.exhausted;
    checki "no truncation" 0 s.truncated;
    checkb "non-trivial" true (s.complete > 1000);
    checkb "pruning happened" true (s.pruned > s.complete)
  | Error f -> Alcotest.failf "binary ratifier n=4: %s" f.Checks.reason

(* The raised fallback bound: depth 28 fully exhausted (the seed suite
   only sampled 600k of > 20M naive executions). *)
let test_fallback_d28_exhausts () =
  let c = config "fallback_n2_d28" in
  match Checks.run c with
  | Ok s ->
    checkb "exhausted" true s.Por.exhausted;
    checkb "non-trivial" true (Por.explored s > 100_000)
  | Error f -> Alcotest.failf "fallback d28: %s" f.Checks.reason

(* ------------------------------------------------------------------ *)
(* Shrinking and artifacts on a planted bug                            *)
(* ------------------------------------------------------------------ *)

(* The §7 hand-found witness took 13 executions to reach; the shrunk
   machine-found schedule must not be longer than that. *)
let section7_witness_length = 13

let test_por_finds_planted_bug () =
  let c = config "fallback_unstaked_n2" in
  match Checks.run c with
  | Ok _ -> Alcotest.fail "unstaked fallback passed: checker is broken"
  | Error f ->
    checkb "found quickly" true (Por.explored f.Checks.stats <= 100);
    let a = f.Checks.artifact in
    checkb
      (Printf.sprintf "shrunk to %d choices (witness: %d)"
         (List.length a.Artifact.path) section7_witness_length)
      true
      (List.length a.Artifact.path <= section7_witness_length);
    checki "shrunk to n=2" 2 a.Artifact.n;
    (* The artifact replays deterministically: same violation. *)
    (match Checks.replay c a with
     | Error _ -> ()
     | Ok () -> Alcotest.fail "shrunk artifact does not reproduce");
    (* And round-trips through its serialized form. *)
    (match Artifact.of_sexp (Artifact.to_sexp a) with
     | Ok a' ->
       checkb "artifact sexp roundtrip" true
         (Sexp.to_string (Artifact.to_sexp a) = Sexp.to_string (Artifact.to_sexp a'))
     | Error e -> Alcotest.failf "artifact roundtrip: %s" e)

let test_shrinker_output_still_fails () =
  let c = config "fallback_unstaked_n2" in
  let target = Checks.target_of c in
  match
    Por.explore ~max_depth:c.Checks.max_depth ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(Checks.check_of c ~n:c.Checks.n) ()
  with
  | Ok _ -> Alcotest.fail "no violation found"
  | Error (_, witness, _) ->
    let count = ref 0 in
    let n, shrunk = Shrink.minimize ~count target ~path:witness () in
    checkb "shrunk path still fails" true (Shrink.failing target ~n shrunk);
    checkb "no longer than the witness" true
      (List.length shrunk <= List.length witness);
    checkb "shrinking replays bounded" true (!count < 10_000)

(* ------------------------------------------------------------------ *)
(* The committed fixture                                               *)
(* ------------------------------------------------------------------ *)

let fixture_file = "fixtures/fallback_unstaked_n2.sexp"

let load_fixture () =
  match Artifact.load fixture_file with
  | Ok a -> a
  | Error e -> Alcotest.failf "cannot load %s: %s" fixture_file e

(* Replaying the fixture against the historical buggy decision rule
   (reintroduced as the racing_unstaked test double) must still exhibit
   the violation; replaying the very same schedule against the shipped
   two-phase protocol must pass.  Together these lock the §7 story: the
   candidate phase is exactly what closes this interleaving. *)
let test_fixture_fails_on_buggy_rule () =
  let a = load_fixture () in
  check Alcotest.string "fixture names the demo config" "fallback_unstaked_n2"
    a.Artifact.checker;
  match Checks.replay (config "fallback_unstaked_n2") a with
  | Error reason ->
    checkb "violation is about safety" true
      (reason = a.Artifact.reason)
  | Ok () -> Alcotest.fail "fixture no longer reproduces on the buggy rule"

let test_fixture_passes_on_shipped_protocol () =
  let a = load_fixture () in
  let fixed =
    { (config "fallback_unstaked_n2") with
      Checks.factory = Conrat_core.Fallback.racing ~m:2 () }
  in
  match Checks.replay fixed a with
  | Ok () -> ()
  | Error reason ->
    Alcotest.failf "shipped protocol fails the fixture schedule: %s" reason

(* ------------------------------------------------------------------ *)
(* run_path replay compatibility                                       *)
(* ------------------------------------------------------------------ *)

(* Choices beyond a branch point's arity clamp to 0, so a schedule
   recorded against one protocol replays (degraded but deterministic)
   against another — the mechanism behind the two fixture tests above. *)
let test_run_path_clamps () =
  let c = config "binary_ratifier_n2" in
  let run path =
    Explore.run_path ~max_depth:c.Checks.max_depth ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n) path
  in
  let reference = run [ 0; 0; 0 ] in
  let clamped = run [ 99; -3; 0 ] in
  checkb "clamped replay completes" true clamped.Explore.completed;
  checkb "clamped = all-zero schedule" true
    (clamped.Explore.outputs = reference.Explore.outputs)

let () =
  Alcotest.run "conrat verify"
    [ ( "sexp",
        [ tc "roundtrip" `Quick test_sexp_roundtrip;
          tc "op roundtrip" `Quick test_op_sexp_roundtrip ] );
      ("independence", [ tc "relation" `Quick test_independence ]);
      ( "por",
        [ tc "disjoint writers collapse" `Quick test_por_disjoint_writers;
          tc "conflicting writers kept" `Quick test_por_conflicting_writers ]
        @ List.map
            (fun name -> tc ("cross-check " ^ name) `Quick (test_cross_check name))
            cross_check_names
        @ [ tc "binary ratifier n=4 exhausts" `Quick
              test_binary_ratifier_n4_exhausts;
            tc "fallback depth 28 exhausts" `Slow test_fallback_d28_exhausts ] );
      ( "shrink",
        [ tc "planted bug found and shrunk" `Quick test_por_finds_planted_bug;
          tc "shrunk path still fails" `Quick test_shrinker_output_still_fails ] );
      ( "fixture",
        [ tc "fails on buggy rule" `Quick test_fixture_fails_on_buggy_rule;
          tc "passes on shipped protocol" `Quick
            test_fixture_passes_on_shipped_protocol;
          tc "run_path clamps choices" `Quick test_run_path_clamps ] ) ]
