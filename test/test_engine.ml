(* Tests for the plan/engine layers: the aggregate merge monoid, the
   parallel == sequential determinism contract, mergeable moments, and
   the Montecarlo shim. *)

open Conrat_harness

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Aggregate merge: commutative monoid with identity empty_aggregate   *)
(* ------------------------------------------------------------------ *)

(* A random aggregate built the way the engine builds them: as a merge
   of per-seed singletons. *)
let aggregate_gen =
  QCheck.Gen.(
    let outcome_gen =
      map3
        (fun seed (total, indiv) (agreed, fail) ->
          let o : Engine.outcome =
            { inputs = [| 0 |];
              outputs = [| Some 0 |];
              agreed;
              safety = (if fail then Error "synthetic violation" else Ok ());
              completed = true;
              crashes = 0;
              recoveries = 0;
              plan_ignored = 0;
              total_work = total;
              individual_work = indiv;
              steps = total;
              registers = 1 + (total mod 7);
              stage_work =
                (* Varying stage keys so the merge laws cover the
                   stage-work union-combine too. *)
                (match total mod 3 with
                 | 0 -> []
                 | 1 -> [ ("alpha", (total, indiv)) ]
                 | _ -> [ ("alpha", (total, indiv)); ("beta", (1, 1)) ]) }
          in
          Engine.of_outcome ~seed ~probe:(total mod 3) o)
        (int_bound 1000)
        (pair (int_bound 500) (int_bound 50))
        (pair bool bool)
    in
    map
      (List.fold_left Engine.merge Engine.empty_aggregate)
      (list_size (int_bound 12) outcome_gen))

let aggregate_arb =
  QCheck.make aggregate_gen
    ~print:(fun (a : Engine.aggregate) ->
      Printf.sprintf "{trials=%d; agreements=%d; samples=%d; failures=%d}"
        a.Engine.trials a.Engine.agreements
        (List.length a.Engine.samples) (List.length a.Engine.failures))

let merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:200
    (QCheck.pair aggregate_arb aggregate_arb)
    (fun (a, b) -> Engine.merge a b = Engine.merge b a)

let merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:200
    (QCheck.triple aggregate_arb aggregate_arb aggregate_arb)
    (fun (a, b, c) ->
      Engine.merge a (Engine.merge b c) = Engine.merge (Engine.merge a b) c)

let merge_identity =
  QCheck.Test.make ~name:"merge identity" ~count:200 aggregate_arb (fun a ->
    Engine.merge a Engine.empty_aggregate = a
    && Engine.merge Engine.empty_aggregate a = a)

let test_merge_counts () =
  let o agreed seed : Engine.aggregate =
    Engine.of_outcome ~seed ~probe:2
      { inputs = [| 0 |]; outputs = [| Some 0 |]; agreed; safety = Ok ();
        completed = true; crashes = 0; recoveries = 0; plan_ignored = 0;
        total_work = 10 * seed; individual_work = seed; steps = 10 * seed;
        registers = seed; stage_work = [] }
  in
  let m = Engine.merge (o true 3) (Engine.merge (o false 1) (o true 2)) in
  checki "trials" 3 m.Engine.trials;
  checki "agreements" 2 m.Engine.agreements;
  checki "space is max" 3 m.Engine.space;
  checki "probe sums" 6 m.Engine.probe_total;
  Alcotest.check Alcotest.(list int) "samples seed-ascending" [ 1; 2; 3 ]
    (List.map (fun s -> s.Engine.s_seed) m.Engine.samples);
  Alcotest.check Alcotest.(list int) "works follow seeds" [ 10; 20; 30 ]
    (Engine.total_works m)

(* ------------------------------------------------------------------ *)
(* Parallel == sequential                                              *)
(* ------------------------------------------------------------------ *)

let small_plan () =
  Plan.make ~name:"test"
    [ Plan.spec ~sid:"consensus"
        ~runner:(Plan.Consensus (Conrat_core.Consensus.standard ~m:2))
        ~adversary:Conrat_sim.Adversary.random_uniform ~workload:Workload.split_half
        ~n:4 ~m:2 ~seeds:(Plan.seeds 30) ();
      Plan.spec ~sid:"conciliator"
        ~runner:(Plan.Deciding (Conrat_core.Conciliator.impatient_first_mover ()))
        ~adversary:Conrat_sim.Adversary.write_stalker ~workload:Workload.alternating
        ~n:8 ~m:8 ~seeds:(Plan.seeds 40) ();
      Plan.spec ~sid:"probed"
        ~runner:
          (Plan.Probed
             (fun () ->
               let entries, counted =
                 Conrat_objects.Deciding.counting
                   (Conrat_core.Conciliator.impatient_first_mover ())
               in
               let protocol =
                 Conrat_core.Consensus.unbounded ~name:"counting"
                   ~conciliator:(fun _ -> counted)
                   ~ratifier:(fun _ -> Conrat_core.Ratifier.binary ())
                   ()
               in
               (protocol, entries)))
        ~adversary:Conrat_sim.Adversary.round_robin ~workload:Workload.split_half
        ~n:4 ~m:2 ~seeds:(Plan.seeds 25) () ]

let test_parallel_matches_sequential () =
  let plan = small_plan () in
  let seq = Engine.run_plan ~jobs:1 plan in
  let par = Engine.run_plan ~jobs:4 plan in
  checkb "identical aggregates" true (seq = par);
  (* and not vacuously: the plan really ran *)
  checki "spec count" 3 (List.length seq);
  checki "trials" 30 (Engine.get seq "consensus").Engine.trials;
  checkb "probe counted" true ((Engine.get seq "probed").Engine.probe_total > 0)

let test_parallel_matches_sequential_experiment () =
  (* A real experiment plan end to end (E10 exercises Probed +
     Consensus specs together). *)
  let plan, _render = Experiments.build ~mode:Experiments.Quick "E10" in
  let seq = Engine.run_plan ~jobs:1 plan in
  let par = Engine.run_plan ~jobs:3 plan in
  checkb "identical aggregates" true (seq = par)

let test_jobs_zero_means_auto () =
  let plan = small_plan () in
  checkb "jobs:0 runs and matches" true
    (Engine.run_plan ~jobs:0 plan = Engine.run_plan ~jobs:1 plan);
  checkb "default_jobs positive" true (Engine.default_jobs () >= 1)

let test_run_trial_is_pure () =
  let spec = List.hd (small_plan ()).Plan.specs in
  checkb "same seed, same aggregate" true
    (Engine.run_trial spec 7 = Engine.run_trial spec 7)

(* ------------------------------------------------------------------ *)
(* Stats: mergeable moments match the sequential closed forms          *)
(* ------------------------------------------------------------------ *)

let floats_arb =
  QCheck.make
    QCheck.Gen.(list_size (int_range 2 40) (float_bound_inclusive 1000.0))
    ~print:(fun xs -> String.concat "," (List.map string_of_float xs))

let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a +. Float.abs b)

let moments_match_closed_forms =
  QCheck.Test.make ~name:"moments match mean/variance" ~count:300
    (QCheck.pair floats_arb (QCheck.int_bound 1000))
    (fun (xs, cut) ->
      let k = cut mod List.length xs in
      let left = List.filteri (fun i _ -> i < k) xs in
      let right = List.filteri (fun i _ -> i >= k) xs in
      let merged =
        Stats.moments_merge (Stats.moments_of_list left)
          (Stats.moments_of_list right)
      in
      merged.Stats.m_count = List.length xs
      && close (Stats.moments_mean merged) (Stats.mean xs)
      && close (Stats.moments_variance merged) (Stats.variance xs))

let test_moments_basics () =
  let m = Stats.moments_of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checki "count" 5 m.Stats.m_count;
  checkf "mean" 3.0 (Stats.moments_mean m);
  checkf "variance" 2.5 (Stats.moments_variance m);
  checkf "singleton variance" 0.0
    (Stats.moments_variance (Stats.moments_add Stats.empty_moments 7.0));
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.moments_mean: empty")
    (fun () -> ignore (Stats.moments_mean Stats.empty_moments))

(* ------------------------------------------------------------------ *)
(* The Montecarlo shim                                                 *)
(* ------------------------------------------------------------------ *)

let test_shim_jobs_identical () =
  let run jobs =
    Montecarlo.trials_consensus ~jobs ~n:4 ~m:2
      ~adversary:Conrat_sim.Adversary.random_uniform ~workload:Workload.split_half
      ~seeds:(Montecarlo.seeds 30) (Conrat_core.Consensus.standard ~m:2)
  in
  checkb "jobs 1 = jobs 3" true (run 1 = run 3)

let test_shim_legacy_order () =
  (* The legacy aggregate listed work samples most-recent-seed first. *)
  let agg =
    Montecarlo.trials_consensus ~n:4 ~m:2
      ~adversary:Conrat_sim.Adversary.random_uniform ~workload:Workload.split_half
      ~seeds:[ 10; 11; 12 ] (Conrat_core.Consensus.standard ~m:2)
  in
  checki "trials" 3 agg.Montecarlo.trials;
  let per_seed =
    List.map
      (fun seed ->
        let inputs =
          Workload.split_half.Workload.generate ~n:4 ~m:2 (Montecarlo.workload_rng seed)
        in
        (Montecarlo.run_consensus ~n:4 ~adversary:Conrat_sim.Adversary.random_uniform
           ~inputs ~seed (Conrat_core.Consensus.standard ~m:2)).Montecarlo.total_work)
      [ 12; 11; 10 ]
  in
  Alcotest.check Alcotest.(list int) "seed-descending totals" per_seed
    agg.Montecarlo.total_works

let test_workload_rng_derivation () =
  (* The CLI and the harness must derive workload inputs identically. *)
  checkb "state matches lxor derivation" true
    (Conrat_sim.Rng.state (Montecarlo.workload_rng 99)
     = Conrat_sim.Rng.state (Conrat_sim.Rng.create (99 lxor 0x5eed)))

(* ------------------------------------------------------------------ *)
(* Plan construction                                                   *)
(* ------------------------------------------------------------------ *)

let test_plan_validation () =
  let spec sid =
    Plan.spec ~sid ~runner:(Plan.Consensus (Conrat_core.Consensus.standard ~m:2))
      ~adversary:Conrat_sim.Adversary.round_robin ~workload:Workload.split_half
      ~n:2 ~m:2 ~seeds:[ 1 ] ()
  in
  Alcotest.check_raises "duplicate sid"
    (Invalid_argument "Plan.make: duplicate spec id \"a\"") (fun () ->
      ignore (Plan.make ~name:"dup" [ spec "a"; spec "a" ]));
  Alcotest.check_raises "empty seeds"
    (Invalid_argument "Plan.spec: empty seed list") (fun () ->
      ignore
        (Plan.spec ~sid:"x" ~runner:(Plan.Consensus (Conrat_core.Consensus.standard ~m:2))
           ~adversary:Conrat_sim.Adversary.round_robin ~workload:Workload.split_half
           ~n:2 ~m:2 ~seeds:[] ()))

let test_all_experiments_build () =
  List.iter
    (fun name ->
      let plan, _render = Experiments.build ~mode:Experiments.Quick name in
      checkb (name ^ " has specs") true (plan.Plan.specs <> []);
      checkb (name ^ " has trials") true (Plan.trial_count plan > 0))
    Experiments.all_names

let () =
  let tc = Alcotest.test_case in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [ ( "merge",
        [ qt merge_commutative;
          qt merge_associative;
          qt merge_identity;
          tc "counts/space/probe" `Quick test_merge_counts ] );
      ( "parallel",
        [ tc "plan: jobs 4 = jobs 1" `Quick test_parallel_matches_sequential;
          tc "E10 quick: jobs 3 = jobs 1" `Quick test_parallel_matches_sequential_experiment;
          tc "jobs 0 = auto" `Quick test_jobs_zero_means_auto;
          tc "trial is pure" `Quick test_run_trial_is_pure ] );
      ( "moments",
        [ qt moments_match_closed_forms;
          tc "basics" `Quick test_moments_basics ] );
      ( "montecarlo shim",
        [ tc "jobs identical" `Quick test_shim_jobs_identical;
          tc "legacy sample order" `Quick test_shim_legacy_order;
          tc "workload rng" `Quick test_workload_rng_derivation ] );
      ( "plan",
        [ tc "validation" `Quick test_plan_validation;
          tc "all experiments build" `Quick test_all_experiments_build ] ) ]
