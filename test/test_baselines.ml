(* Tests for the prior-art baselines: CIL racing, the constant-rate
   first mover, and the impatience-schedule ablation conciliators. *)

open Conrat_sim
open Conrat_harness

let expect_ok label = function
  | Ok () -> ()
  | Error reason -> Alcotest.failf "%s: %s" label reason

let run ?(adversary = Adversary.random_uniform) ?max_steps ~n ~inputs ~seed protocol =
  Montecarlo.run_consensus ?max_steps ~n ~adversary ~inputs ~seed protocol

let test_cil_racing_contract () =
  List.iter
    (fun (adversary : Adversary.t) ->
      for seed = 0 to 19 do
        let n = 5 in
        let inputs = Array.init n (fun pid -> pid mod 3) in
        let o =
          run ~adversary ~n ~inputs ~seed ~max_steps:1_000_000
            (Conrat_baselines.Baseline.cil_racing ~m:3)
        in
        expect_ok (Printf.sprintf "cil (%s, seed %d)" adversary.name seed) o.safety
      done)
    (Adversary.all_weak ())

let test_constant_rate_contract () =
  List.iter
    (fun (adversary : Adversary.t) ->
      for seed = 0 to 19 do
        let n = 5 in
        let inputs = Array.init n (fun pid -> pid mod 2) in
        let o =
          run ~adversary ~n ~inputs ~seed
            (Conrat_baselines.Baseline.constant_rate_consensus ~m:2)
        in
        expect_ok (Printf.sprintf "constant_rate (%s, seed %d)" adversary.name seed) o.safety
      done)
    (Adversary.all_weak ())

let test_growth_schedules_contract () =
  List.iter
    (fun growth ->
      for seed = 0 to 14 do
        let o =
          run ~n:4 ~inputs:[| 0; 1; 0; 1 |] ~seed
            (Conrat_baselines.Baseline.growth_rate_consensus ~m:2 ~growth)
        in
        expect_ok "growth schedule" o.safety
      done)
    [ `Double; `Quadruple; `Linear ]

let test_schedule_conciliator_probabilities () =
  (* White-box: the three schedules produce the intended probability
     sequences — checked through observable work on a solo run (a solo
     process loops until its own write lands). *)
  List.iter
    (fun (growth, max_attempts) ->
      (* With n=16: double reaches p=1 at attempt 4, quadruple at 2,
         linear at 15.  A solo process does (attempts+1) reads +
         attempts' writes; bound individual work accordingly. *)
      let factory = Conrat_baselines.Baseline.schedule_conciliator ~growth in
      let worst = ref 0 in
      for seed = 0 to 49 do
        let memory = Memory.create () in
        let instance = factory.Conrat_objects.Deciding.instantiate ~n:16 memory in
        let result =
          Scheduler.run ~n:1 ~adversary:Adversary.round_robin ~rng:(Rng.create seed) ~memory
            (fun ~pid ~rng ->
              Program.map ignore
                (instance.Conrat_objects.Deciding.run ~pid ~rng 0))
        in
        worst := max !worst (Metrics.individual result.metrics)
      done;
      let bound = (2 * (max_attempts + 1)) + 2 in
      if !worst > bound then
        Alcotest.failf "worst %d ops > bound %d" !worst bound)
    [ (`Double, 4); (`Quadruple, 2); (`Linear, 15) ]

let test_baselines_cost_more_individually () =
  (* The headline comparison, as a coarse regression: at n = 64 the
     impatient protocol must beat the constant-rate baseline on
     individual work by at least 2x on average. *)
  let n = 64 in
  let seeds = Montecarlo.seeds 40 in
  let mean_indiv protocol =
    let agg =
      Montecarlo.trials_consensus ~n ~m:2 ~adversary:Adversary.random_uniform
        ~workload:Workload.split_half ~seeds protocol
    in
    List.iter (fun (seed, reason) -> Alcotest.failf "seed %d: %s" seed reason) agg.failures;
    Stats.mean (List.map float_of_int agg.individual_works)
  in
  let ours = mean_indiv (Conrat_core.Consensus.standard ~m:2) in
  let cil = mean_indiv (Conrat_baselines.Baseline.cil_racing ~m:2) in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "ours %.1f << cil %.1f" ours cil)
    true
    (ours *. 2.0 < cil)

let qcheck_cil_agreement =
  QCheck.Test.make ~name:"cil racing agreement (random cfg)" ~count:80
    QCheck.(triple (int_range 1 8) (int_range 2 5) (int_range 0 1_000_000))
    (fun (n, m, seed) ->
      let input_rng = Rng.create (seed lxor 3) in
      let inputs = Array.init n (fun _ -> Rng.int input_rng m) in
      let o =
        run ~n ~inputs ~seed ~max_steps:1_000_000
          (Conrat_baselines.Baseline.cil_racing ~m)
      in
      Result.is_ok o.safety)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "baselines"
    [ ( "cil_racing",
        [ tc "contract all adversaries" `Quick test_cil_racing_contract;
          QCheck_alcotest.to_alcotest qcheck_cil_agreement ] );
      ( "constant_rate",
        [ tc "contract all adversaries" `Quick test_constant_rate_contract ] );
      ( "schedules",
        [ tc "growth schedules contract" `Quick test_growth_schedules_contract;
          tc "schedule probabilities" `Quick test_schedule_conciliator_probabilities ] );
      ( "comparison",
        [ tc "sublinear individual work" `Slow test_baselines_cost_more_individually ] ) ]
