(* Tests for the defunctionalized Program core (lib/sim/program.ml) and
   the Machine drivers built on it.

   The load-bearing property is the equivalence of the two execution
   paths: a protocol written as a Program and run natively by Machine
   must produce an op-for-op identical trace (and outputs, work, and
   register counts) to the same program run through the Proc.exec
   effects adapter — the legacy direct-style path.  On top of that:
   programs are copyable (a continuation may be resumed repeatedly),
   the stateful snapshot-backtracking explorer visits the same leaves
   as the historical re-execution enumerator, the committed §7 fixture
   replays byte-identically through the Machine-based run_path, and
   lazy_seq reports cumulative space. *)

open Conrat_sim
open Conrat_objects
open Conrat_core
open Conrat_verify

let check = Alcotest.check
let checkb msg expected actual = check Alcotest.bool msg expected actual
let checki msg expected actual = check Alcotest.int msg expected actual
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Copyability: the whole point of defunctionalizing                   *)
(* ------------------------------------------------------------------ *)

let test_program_copyable () =
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  let p =
    let open Program in
    let* v = read r in
    return (match v with Some v -> v * 10 | None -> -1)
  in
  match p with
  | Program.Step (Op.Read _, k) ->
    (* Resume the same continuation three times with different observed
       values: each resumption is independent (no one-shot restriction,
       no shared mutable state). *)
    let a = k (Some 5) in
    let b = k (Some 7) in
    let c = k None in
    checki "first resume" 50 (Option.get (Program.result a));
    checki "second resume" 70 (Option.get (Program.result b));
    checki "third resume" (-1) (Option.get (Program.result c));
    (* The original value is untouched by the resumptions. *)
    checkb "original still pending" false (Program.is_done p)
  | _ -> Alcotest.fail "expected the program to block on a read"

let test_protocol_program_copyable () =
  (* A real protocol program: resuming one prefix twice yields two
     independent suffixes.  The binary ratifier's first op is a write;
     resume it twice and check both copies then block on the same next
     operation. *)
  let memory = Memory.create () in
  let instance = (Ratifier.binary ()).Deciding.instantiate ~n:2 memory in
  let p = instance.Deciding.run ~pid:0 ~rng:(Rng.create 0) 1 in
  match p with
  | Program.Step (Op.Write _, k) ->
    let p1 = k () in
    let p2 = k () in
    (match (Program.pending p1, Program.pending p2) with
     | Some op1, Some op2 -> checkb "identical next op" true (op1 = op2)
     | _ -> Alcotest.fail "resumed copies should both be pending")
  | _ -> Alcotest.fail "binary ratifier should start with its announce write"

(* ------------------------------------------------------------------ *)
(* Program interpreter vs legacy effects path                          *)
(* ------------------------------------------------------------------ *)

type subject =
  | D of Deciding.factory
  | C of Consensus.factory

let subjects =
  [ ("conciliator", false, 3, D (Conciliator.impatient_first_mover ()));
    ("binary_ratifier", false, 2, D (Ratifier.binary ()));
    ("bollobas_ratifier", false, 3, D (Ratifier.bollobas ~m:3));
    ("bitvector_ratifier", false, 3, D (Ratifier.bitvector ~m:3));
    ("cheap_collect_ratifier", true, 3, D (Ratifier.cheap_collect ~m:3));
    ("fallback", false, 2, D (Fallback.racing ~m:2 ()));
    ( "composite",
      false,
      2,
      D
        (Compose.seq_factory
           [ Conciliator.impatient_first_mover (); Ratifier.binary () ]) );
    ("cil_racing", false, 2, C (Conrat_baselines.Baseline.cil_racing ~m:2));
    ("standard_consensus", false, 2, C (Consensus.standard ~m:2)) ]

let make_body subject inputs ~n memory =
  match subject with
  | D factory ->
    let instance = factory.Deciding.instantiate ~n memory in
    fun ~pid ~rng ->
      Program.map
        (fun out -> (out.Deciding.decide, out.Deciding.value))
        (instance.Deciding.run ~pid ~rng inputs.(pid))
  | C protocol ->
    let instance = protocol.Consensus.instantiate ~n memory in
    fun ~pid ~rng ->
      Program.map (fun v -> (true, v))
        (instance.Consensus.decide ~pid ~rng inputs.(pid))

let adversaries =
  [ Adversary.round_robin; Adversary.random_uniform; Adversary.write_stalker ]

(* Same protocol, same seed, same adversary: once run natively as a
   Program by the Machine, once spawned as an effects fiber calling
   Proc.exec.  Everything observable must coincide, operation for
   operation. *)
let qcheck_program_vs_effects =
  QCheck.Test.make
    ~name:"program interpreter = effects path (trace, outputs, work)"
    ~count:120
    QCheck.(
      triple
        (int_range 0 (List.length subjects - 1))
        (int_range 1 5)
        (int_range 0 1_000_000))
    (fun (which, n, seed) ->
      let name, cheap_collect, m, subject = List.nth subjects which in
      let adversary = List.nth adversaries (seed mod 3) in
      let inputs = Array.init n (fun pid -> pid mod m) in
      let run native =
        let memory = Memory.create () in
        let body = make_body subject inputs ~n memory in
        if native then
          Scheduler.run ~record:true ~max_steps:100_000 ~cheap_collect ~n
            ~adversary ~rng:(Rng.create seed) ~memory body
        else
          Scheduler.run_direct ~record:true ~max_steps:100_000 ~cheap_collect
            ~n ~adversary ~rng:(Rng.create seed) ~memory (fun ~pid ~rng ->
              Proc.exec (body ~pid ~rng))
      in
      let a = run true in
      let b = run false in
      let traces_equal =
        match (a.Scheduler.trace, b.Scheduler.trace) with
        | Some ta, Some tb -> Trace.equal ta tb
        | _ -> false
      in
      if
        not
          (traces_equal && a.outputs = b.outputs && a.completed = b.completed
         && a.steps = b.steps && a.registers = b.registers)
      then
        QCheck.Test.fail_reportf
          "%s (n=%d, seed=%d, %s): native and effects executions diverge" name
          n seed adversary.Adversary.name
      else true)

(* ------------------------------------------------------------------ *)
(* Stateful snapshot-backtracking explorer vs re-execution enumerator  *)
(* ------------------------------------------------------------------ *)

let config name =
  match Checks.find name with
  | Some c -> c
  | None -> Alcotest.failf "no checker config named %s" name

(* The stateful Explore and the re-execution Naive walk the same tree
   in the same order: identical complete/truncated counts, identical
   complete-outcome sets — and the stateful walk applies strictly fewer
   machine transitions (that is the point of snapshotting). *)
let test_stateful_matches_reexecution name () =
  let c = config name in
  let noting tbl ~complete outputs =
    if complete then Hashtbl.replace tbl outputs ();
    Checks.check_of c ~n:c.Checks.n ~complete outputs
  in
  let naive_outcomes = Hashtbl.create 64 in
  let naive =
    match
      Naive.explore ~max_depth:c.Checks.max_depth ~max_runs:c.Checks.max_runs
        ~cheap_collect:c.Checks.cheap_collect ~n:c.Checks.n
        ~setup:(Checks.setup_of c ~n:c.Checks.n)
        ~check:(noting naive_outcomes) ()
    with
    | Ok s -> s
    | Error (reason, _) -> Alcotest.failf "%s naive: %s" name reason
  in
  let stateful_outcomes = Hashtbl.create 64 in
  let stateful =
    match
      Explore.explore ~max_depth:c.Checks.max_depth ~max_runs:c.Checks.max_runs
        ~cheap_collect:c.Checks.cheap_collect ~n:c.Checks.n
        ~setup:(Checks.setup_of c ~n:c.Checks.n)
        ~check:(noting stateful_outcomes) ()
    with
    | Ok s -> s
    | Error (reason, _) -> Alcotest.failf "%s stateful: %s" name reason
  in
  checkb (name ^ ": both exhausted") true
    (naive.Naive.exhausted && stateful.Explore.exhausted);
  checki (name ^ ": same complete count") naive.Naive.complete
    stateful.Explore.complete;
  checki (name ^ ": same truncated count") naive.Naive.truncated
    stateful.Explore.truncated;
  checki (name ^ ": same outcome-set size")
    (Hashtbl.length naive_outcomes)
    (Hashtbl.length stateful_outcomes);
  Hashtbl.iter
    (fun k () ->
      checkb (name ^ ": outcome present in both") true
        (Hashtbl.mem stateful_outcomes k))
    naive_outcomes;
  checkb
    (Printf.sprintf "%s: snapshotting saves work (%d vs %d transitions)" name
       stateful.Explore.steps naive.Naive.steps)
    true
    (stateful.Explore.steps < naive.Naive.steps)

let stateful_config_names =
  [ "binary_ratifier_n2"; "binary_ratifier_accept_n3";
    "cheap_collect_ratifier_n2"; "conciliator_n2"; "composite_n2" ]

(* ------------------------------------------------------------------ *)
(* Fixture byte-identity through the Machine-based run_path            *)
(* ------------------------------------------------------------------ *)

let fixture_file = "fixtures/fallback_unstaked_n2.sexp"

(* The committed counterexample was recorded by the pre-Machine
   replay core.  The Machine-based run_path must reproduce the stored
   event trace byte for byte — same schedule, same observed values,
   same landed bits, same serialization. *)
let test_fixture_byte_identical_replay () =
  let a =
    match Artifact.load fixture_file with
    | Ok a -> a
    | Error e -> Alcotest.failf "cannot load %s: %s" fixture_file e
  in
  let c = config a.Artifact.checker in
  let run =
    Explore.run_path ~record:true ~max_depth:a.Artifact.max_depth
      ~cheap_collect:a.Artifact.cheap_collect ~n:a.Artifact.n
      ~setup:(Checks.setup_of c ~n:a.Artifact.n)
      a.Artifact.path
  in
  match (run.Explore.trace, a.Artifact.trace) with
  | Some got, Some want ->
    check Alcotest.string "trace serializes byte-identically"
      (Sexp.to_string (Trace.to_sexp want))
      (Sexp.to_string (Trace.to_sexp got))
  | None, _ -> Alcotest.fail "run_path did not record a trace"
  | _, None -> Alcotest.fail "fixture has no stored trace"

(* ------------------------------------------------------------------ *)
(* lazy_seq space accounting                                           *)
(* ------------------------------------------------------------------ *)

let test_lazy_seq_space_accumulates () =
  (* Four stages of 2 registers each are instantiated before the
     decision at stage 3: the composite's space must be the cumulative
     8, not the historical 0. *)
  let nth i =
    Deciding.make_factory
      (Printf.sprintf "stage%d" i)
      (fun ~n:_ memory ->
        ignore (Memory.alloc_n memory 2);
        Deciding.instance "stage" ~space:2 (fun ~pid:_ ~rng:_ v ->
          Program.return
            (if i >= 3 then { Deciding.decide = true; value = v }
             else { Deciding.decide = false; value = v + 1 })))
  in
  let factory = Compose.lazy_seq "lazy" nth in
  let memory = Memory.create () in
  let instance = factory.Deciding.instantiate ~n:2 memory in
  checki "no stages instantiated yet" 0 instance.Deciding.space;
  let result =
    Scheduler.run ~n:2 ~adversary:Adversary.round_robin ~rng:(Rng.create 3)
      ~memory
      (fun ~pid ~rng ->
        Program.map (fun o -> o.Deciding.value) (instance.Deciding.run ~pid ~rng 0))
  in
  checkb "completed" true result.completed;
  checki "cumulative space of four stages" 8 instance.Deciding.space

let () =
  Alcotest.run "program"
    [ ( "copyability",
        [ tc "continuations resume repeatedly" `Quick test_program_copyable;
          tc "protocol prefix resumes twice" `Quick
            test_protocol_program_copyable ] );
      ( "equivalence",
        [ QCheck_alcotest.to_alcotest qcheck_program_vs_effects ] );
      ( "stateful_explorer",
        List.map
          (fun name ->
            tc ("matches re-execution: " ^ name) `Quick
              (test_stateful_matches_reexecution name))
          stateful_config_names );
      ( "fixture",
        [ tc "byte-identical replay" `Quick test_fixture_byte_identical_replay ] );
      ( "lazy_seq",
        [ tc "space accumulates" `Quick test_lazy_seq_space_accumulates ] ) ]
