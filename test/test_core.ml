(* Tests for the core objects: conciliators (Theorems 6 & 7), ratifiers
   (Theorem 8 / 10) and the racing fallback.  Safety properties are
   checked on every execution; probabilistic properties use many seeds
   with conservative slack. *)

open Conrat_sim
open Conrat_objects
open Conrat_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let run_object ?(adversary = Adversary.random_uniform) ?max_steps ~n ~inputs ~seed factory =
  let rng = Rng.create seed in
  let memory = Memory.create () in
  let instance = factory.Deciding.instantiate ~n memory in
  Scheduler.run ?max_steps ~n ~adversary ~rng ~memory
    (fun ~pid ~rng ->
      Program.map
        (fun out -> (out.Deciding.decide, out.Deciding.value))
        (instance.Deciding.run ~pid ~rng inputs.(pid)))

let expect_ok label = function
  | Ok () -> ()
  | Error reason -> Alcotest.failf "%s: %s" label reason

(* ------------------------------------------------------------------ *)
(* Impatient first-mover conciliator (Theorem 7)                       *)
(* ------------------------------------------------------------------ *)

let test_write_probability_schedule () =
  Alcotest.check (Alcotest.float 1e-9) "first attempt" (1.0 /. 8.0)
    (Conciliator.write_probability ~n:8 ~attempt:0);
  Alcotest.check (Alcotest.float 1e-9) "doubles" 0.5
    (Conciliator.write_probability ~n:8 ~attempt:2);
  Alcotest.check (Alcotest.float 1e-9) "caps at 1" 1.0
    (Conciliator.write_probability ~n:8 ~attempt:3);
  Alcotest.check (Alcotest.float 1e-9) "huge attempt safe" 1.0
    (Conciliator.write_probability ~n:8 ~attempt:1000)

let test_max_individual_work_formula () =
  checki "n=2" 6 (Conciliator.max_individual_work ~n:2);
  checki "n=8" 10 (Conciliator.max_individual_work ~n:8);
  checki "n=1024" 24 (Conciliator.max_individual_work ~n:1024)

let test_conciliator_terminates_and_valid () =
  for seed = 0 to 49 do
    let n = 6 in
    let inputs = Array.init n (fun pid -> pid mod 3) in
    let result = run_object ~n ~inputs ~seed (Conciliator.impatient_first_mover ()) in
    checkb "completed" true result.completed;
    expect_ok "validity" (Spec.validity_decided ~inputs ~outputs:result.outputs);
    (* Conciliators never decide: coherence holds vacuously. *)
    Array.iter
      (function
        | Some (d, _) -> checkb "decision bit 0" false d
        | None -> Alcotest.fail "missing output")
      result.outputs
  done

let test_conciliator_all_same_input () =
  (* Validity pins the answer when inputs agree. *)
  for seed = 0 to 19 do
    let inputs = Array.make 5 3 in
    let result = run_object ~n:5 ~inputs ~seed (Conciliator.impatient_first_mover ()) in
    Array.iter
      (function
        | Some (_, v) -> checki "must output the common input" 3 v
        | None -> Alcotest.fail "missing output")
      result.outputs
  done

let test_conciliator_individual_work_cap () =
  (* The 2 lg n + 4 bound is worst-case, per process, every execution. *)
  List.iter
    (fun n ->
      let bound = Conciliator.max_individual_work ~n in
      List.iter
        (fun (adversary : Adversary.t) ->
          for seed = 0 to 19 do
            let inputs = Array.init n (fun pid -> pid) in
            let result =
              run_object ~adversary ~n ~inputs ~seed (Conciliator.impatient_first_mover ())
            in
            if Metrics.individual result.metrics > bound then
              Alcotest.failf "n=%d adversary=%s seed=%d: %d ops > bound %d" n
                adversary.name seed
                (Metrics.individual result.metrics)
                bound
          done)
        [ Adversary.round_robin; Adversary.random_uniform; Adversary.write_stalker;
          Adversary.overwrite_attacker; Adversary.adaptive_overwriter ])
    [ 2; 3; 8; 17; 64 ]

let test_conciliator_detect_saves_two_ops () =
  List.iter
    (fun n ->
      let bound = Conciliator.max_individual_work ~n - 2 in
      for seed = 0 to 19 do
        let inputs = Array.init n (fun pid -> pid) in
        let result =
          run_object ~n ~inputs ~seed (Conciliator.impatient_first_mover ~detect:true ())
        in
        checkb "within reduced bound" true (Metrics.individual result.metrics <= bound)
      done)
    [ 2; 8; 32 ]

let test_conciliator_agreement_probability () =
  (* Empirical agreement rate must clear the Theorem 7 bound; at a true
     rate of ~0.17 under this adversary, 300 trials landing below 0.0553
     would be a > 5-sigma event. *)
  let n = 16 in
  let trials = 300 in
  let agreements = ref 0 in
  for seed = 0 to trials - 1 do
    let inputs = Array.init n (fun pid -> pid) in
    let result =
      run_object ~adversary:Adversary.write_stalker ~n ~inputs ~seed
        (Conciliator.impatient_first_mover ())
    in
    let values = Array.map (Option.map snd) result.outputs in
    if Result.is_ok (Spec.agreement ~outputs:values) then incr agreements
  done;
  let p = float_of_int !agreements /. float_of_int trials in
  checkb (Printf.sprintf "agreement rate %.3f >= 0.0553" p) true
    (p >= Conciliator.delta_impatient)

let test_conciliator_single_process () =
  let result = run_object ~n:1 ~inputs:[| 9 |] ~seed:0 (Conciliator.impatient_first_mover ()) in
  Alcotest.check
    Alcotest.(array (option (pair bool int)))
    "solo returns own value" [| Some (false, 9) |] result.outputs

let test_conciliator_space () =
  let memory = Memory.create () in
  let _ = (Conciliator.impatient_first_mover ()).Deciding.instantiate ~n:8 memory in
  checki "single register" 1 (Memory.size memory)

let qcheck_conciliator_safety =
  QCheck.Test.make ~name:"conciliator validity under all adversaries (random cfg)" ~count:150
    QCheck.(triple (int_range 1 10) (int_range 0 10_000) (int_range 0 4))
    (fun (n, seed, advi) ->
      let adversary = List.nth (Adversary.all_weak ()) advi in
      let inputs = Array.init n (fun pid -> (pid * 7) mod 5) in
      let result = run_object ~adversary ~n ~inputs ~seed (Conciliator.impatient_first_mover ()) in
      result.completed
      && Result.is_ok (Spec.validity_decided ~inputs ~outputs:result.outputs))

(* ------------------------------------------------------------------ *)
(* Constant-rate conciliator (prior art)                               *)
(* ------------------------------------------------------------------ *)

let test_constant_rate_valid_and_terminates () =
  for seed = 0 to 29 do
    let n = 5 in
    let inputs = Array.init n (fun pid -> pid mod 2) in
    let result = run_object ~n ~inputs ~seed (Conciliator.constant_rate ()) in
    checkb "completed" true result.completed;
    expect_ok "validity" (Spec.validity_decided ~inputs ~outputs:result.outputs)
  done

(* ------------------------------------------------------------------ *)
(* Coin-based conciliator (Theorem 6)                                  *)
(* ------------------------------------------------------------------ *)

let coin_factories =
  [ ("local_flip", Conrat_coin.Shared_coin.local_flip);
    ("voting", Conrat_coin.Shared_coin.voting ()) ]

let test_coin_conciliator_validity () =
  (* If all inputs are v, nobody runs the coin, so the output is v even
     though the coin might have produced the other value. *)
  List.iter
    (fun (name, coin) ->
      for seed = 0 to 19 do
        let inputs = Array.make 4 1 in
        let result = run_object ~n:4 ~inputs ~seed (Conciliator.from_coin coin) in
        Array.iter
          (function
            | Some (_, v) -> checki (name ^ ": validity") 1 v
            | None -> Alcotest.fail "missing output")
          result.outputs
      done)
    coin_factories

let test_coin_conciliator_mixed_inputs_safe () =
  List.iter
    (fun (name, coin) ->
      for seed = 0 to 19 do
        let inputs = [| 0; 1; 0; 1 |] in
        let result = run_object ~n:4 ~inputs ~seed (Conciliator.from_coin coin) in
        checkb (name ^ ": completed") true result.completed;
        expect_ok (name ^ ": validity")
          (Spec.validity_decided ~inputs ~outputs:result.outputs)
      done)
    coin_factories

let test_coin_conciliator_rejects_nonbinary () =
  let rejected =
    try
      ignore
        (run_object ~n:1 ~inputs:[| 5 |] ~seed:0
           (Conciliator.from_coin Conrat_coin.Shared_coin.local_flip));
      false
    with Invalid_argument _ -> true
  in
  checkb "non-binary input rejected" true rejected

let test_voting_coin_agreement () =
  (* The voting coin must produce agreement often even under the write
     stalker; with quorum n^2 votes the drift argument gives a
     constant. *)
  let n = 4 in
  let trials = 150 in
  let agreements = ref 0 in
  for seed = 0 to trials - 1 do
    let inputs = [| 0; 1; 0; 1 |] in
    let result =
      run_object ~adversary:Adversary.write_stalker ~n ~inputs ~seed
        (Conciliator.from_coin (Conrat_coin.Shared_coin.voting ()))
    in
    let values = Array.map (Option.map snd) result.outputs in
    if Result.is_ok (Spec.agreement ~outputs:values) then incr agreements
  done;
  let p = float_of_int !agreements /. float_of_int trials in
  checkb (Printf.sprintf "voting coin agreement %.3f >= 0.16" p) true (p >= 0.16)

(* ------------------------------------------------------------------ *)
(* Ratifiers                                                           *)
(* ------------------------------------------------------------------ *)

let ratifier_factories m =
  (if m = 2 then [ ("binary", Ratifier.binary (), false) ] else [])
  @ [ ("bollobas", Ratifier.bollobas ~m, false);
      ("bitvector", Ratifier.bitvector ~m, false);
      ("cheap_collect", Ratifier.cheap_collect ~m, true) ]

let run_ratifier ?(adversary = Adversary.random_uniform) ~cheap ~n ~inputs ~seed factory =
  let rng = Rng.create seed in
  let memory = Memory.create () in
  let instance = factory.Deciding.instantiate ~n memory in
  Scheduler.run ~cheap_collect:cheap ~n ~adversary ~rng ~memory
    (fun ~pid ~rng ->
      Program.map
        (fun out -> (out.Deciding.decide, out.Deciding.value))
        (instance.Deciding.run ~pid ~rng inputs.(pid)))

let test_ratifier_acceptance () =
  (* All inputs equal v ⇒ every output is (1, v), for every scheme. *)
  List.iter
    (fun m ->
      List.iter
        (fun (name, factory, cheap) ->
          for seed = 0 to 9 do
            let v = m - 1 in
            let inputs = Array.make 5 v in
            let result = run_ratifier ~cheap ~n:5 ~inputs ~seed factory in
            expect_ok
              (Printf.sprintf "%s m=%d acceptance" name m)
              (Spec.acceptance ~inputs ~outputs:result.outputs)
          done)
        (ratifier_factories m))
    [ 2; 3; 6; 17 ]

let test_ratifier_coherence_and_validity () =
  List.iter
    (fun m ->
      List.iter
        (fun (name, factory, cheap) ->
          List.iter
            (fun (adversary : Adversary.t) ->
              for seed = 0 to 14 do
                let inputs = Array.init 5 (fun pid -> pid mod m) in
                let result = run_ratifier ~adversary ~cheap ~n:5 ~inputs ~seed factory in
                checkb "completed" true result.completed;
                expect_ok
                  (Printf.sprintf "%s m=%d validity (%s)" name m adversary.name)
                  (Spec.validity_decided ~inputs ~outputs:result.outputs);
                expect_ok
                  (Printf.sprintf "%s m=%d coherence (%s)" name m adversary.name)
                  (Spec.coherence ~outputs:result.outputs)
              done)
            [ Adversary.round_robin; Adversary.random_uniform; Adversary.write_stalker ])
        (ratifier_factories m))
    [ 2; 3; 6 ]

let test_ratifier_work_bounds () =
  (* Binary and cheap-collect: at most 4 ops; quorum schemes:
     |W| + |R| + 2. *)
  List.iter
    (fun m ->
      List.iter
        (fun (name, factory, cheap) ->
          let bound =
            match name with
            | "binary" | "cheap_collect" -> 4
            | "bollobas" ->
              Ratifier.max_individual_work (Conrat_quorum.Quorum.bollobas_optimal ~m)
            | _ -> Ratifier.max_individual_work (Conrat_quorum.Quorum.bitvector ~m)
          in
          for seed = 0 to 9 do
            let inputs = Array.init 6 (fun pid -> pid mod m) in
            let result = run_ratifier ~cheap ~n:6 ~inputs ~seed factory in
            if Metrics.individual result.metrics > bound then
              Alcotest.failf "%s m=%d: %d ops > %d" name m
                (Metrics.individual result.metrics)
                bound
          done)
        (ratifier_factories m))
    [ 2; 5; 16 ]

let test_ratifier_space () =
  let space factory =
    let memory = Memory.create () in
    let _ = factory.Deciding.instantiate ~n:4 memory in
    Memory.size memory
  in
  checki "binary: 3 registers" 3 (space (Ratifier.binary ()));
  checki "bitvector m=16: 2*4+1" 9 (space (Ratifier.bitvector ~m:16));
  checki "bollobas m=16: 6+1" 7 (space (Ratifier.bollobas ~m:16));
  checki "cheap m=16: 16+1" 17 (space (Ratifier.cheap_collect ~m:16))

let test_ratifier_solo_decides () =
  (* Acceptance with n=1 is immediate; the §4.2 ratifier-only protocol
     relies on an uncontested process always deciding. *)
  List.iter
    (fun (name, factory, cheap) ->
      let result = run_ratifier ~cheap ~n:1 ~inputs:[| 1 |] ~seed:3 factory in
      match result.outputs.(0) with
      | Some (true, 1) -> ()
      | Some (d, v) -> Alcotest.failf "%s: expected (1,1), got (%b,%d)" name d v
      | None -> Alcotest.failf "%s: did not finish" name)
    (ratifier_factories 4)

let qcheck_ratifier_weak_consensus =
  (* The full §3 contract for ratifiers, random configurations. *)
  QCheck.Test.make ~name:"ratifier safety (random n, m, inputs, adversary)" ~count:200
    QCheck.(quad (int_range 1 7) (int_range 2 20) (int_range 0 100_000) (int_range 0 2))
    (fun (n, m, seed, advi) ->
      let adversary =
        List.nth
          [ Adversary.round_robin; Adversary.random_uniform; Adversary.write_stalker ]
          advi
      in
      let input_rng = Rng.create (seed * 31) in
      let inputs = Array.init n (fun _ -> Rng.int input_rng m) in
      let result = run_ratifier ~adversary ~cheap:false ~n ~inputs ~seed (Ratifier.bollobas ~m) in
      result.completed
      && Result.is_ok (Spec.validity_decided ~inputs ~outputs:result.outputs)
      && Result.is_ok (Spec.coherence ~outputs:result.outputs)
      && Result.is_ok (Spec.acceptance ~inputs ~outputs:result.outputs))

(* ------------------------------------------------------------------ *)
(* Racing fallback                                                     *)
(* ------------------------------------------------------------------ *)

let test_fallback_encoding_roundtrip () =
  List.iter
    (fun (round, value, mark) ->
      let m = 7 in
      let round', value', mark' =
        Fallback.decode ~m (Fallback.encode ~m ~round ~value ~mark)
      in
      checki "round" round round';
      checki "value" value value';
      checkb "mark" true (mark = mark'))
    [ (1, 0, Fallback.None_); (1, 6, Fallback.Decided); (250, 3, Fallback.Candidate);
      (0, 0, Fallback.Decided) ]

let test_fallback_encode_rejects_bad_value () =
  Alcotest.check_raises "value out of range"
    (Invalid_argument "Fallback.encode: value out of range")
    (fun () -> ignore (Fallback.encode ~m:4 ~round:1 ~value:4 ~mark:Fallback.None_))

let test_fallback_decides_and_agrees () =
  List.iter
    (fun (adversary : Adversary.t) ->
      for seed = 0 to 29 do
        let n = 6 in
        let m = 3 in
        let inputs = Array.init n (fun pid -> pid mod m) in
        let result =
          run_object ~adversary ~n ~inputs ~seed ~max_steps:1_000_000 (Fallback.racing ~m ())
        in
        checkb "completed" true result.completed;
        Array.iter
          (function
            | Some (d, _) -> checkb "always decides" true d
            | None -> Alcotest.fail "missing output")
          result.outputs;
        expect_ok "validity" (Spec.validity_decided ~inputs ~outputs:result.outputs);
        expect_ok "agreement" (Spec.coherence ~outputs:result.outputs)
      done)
    [ Adversary.round_robin; Adversary.random_uniform; Adversary.write_stalker;
      Adversary.overwrite_attacker ]

let test_fallback_solo () =
  let result = run_object ~n:1 ~inputs:[| 2 |] ~seed:1 (Fallback.racing ~m:3 ()) in
  Alcotest.check
    Alcotest.(array (option (pair bool int)))
    "solo decides own input" [| Some (true, 2) |] result.outputs

let qcheck_fallback_agreement =
  QCheck.Test.make ~name:"fallback agreement+validity (random cfg)" ~count:120
    QCheck.(triple (int_range 1 8) (int_range 0 100_000) (int_range 0 4))
    (fun (n, seed, advi) ->
      let adversary = List.nth (Adversary.all_weak ()) advi in
      let m = 4 in
      let input_rng = Rng.create (seed * 17) in
      let inputs = Array.init n (fun _ -> Rng.int input_rng m) in
      let result =
        run_object ~adversary ~n ~inputs ~seed ~max_steps:1_000_000 (Fallback.racing ~m ())
      in
      result.completed
      && Result.is_ok (Spec.validity_decided ~inputs ~outputs:result.outputs)
      && Result.is_ok
           (Spec.agreement ~outputs:(Array.map (Option.map snd) result.outputs)))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core"
    [ ( "impatient_conciliator",
        [ tc "write probability schedule" `Quick test_write_probability_schedule;
          tc "work formula" `Quick test_max_individual_work_formula;
          tc "terminates + valid" `Quick test_conciliator_terminates_and_valid;
          tc "all same input" `Quick test_conciliator_all_same_input;
          tc "individual work cap" `Quick test_conciliator_individual_work_cap;
          tc "detect saves two ops" `Quick test_conciliator_detect_saves_two_ops;
          tc "agreement probability" `Slow test_conciliator_agreement_probability;
          tc "single process" `Quick test_conciliator_single_process;
          tc "space = 1 register" `Quick test_conciliator_space;
          QCheck_alcotest.to_alcotest qcheck_conciliator_safety ] );
      ( "constant_rate",
        [ tc "valid + terminates" `Quick test_constant_rate_valid_and_terminates ] );
      ( "coin_conciliator",
        [ tc "validity skips coin" `Quick test_coin_conciliator_validity;
          tc "mixed inputs safe" `Quick test_coin_conciliator_mixed_inputs_safe;
          tc "rejects non-binary" `Quick test_coin_conciliator_rejects_nonbinary;
          tc "voting coin agreement" `Slow test_voting_coin_agreement ] );
      ( "ratifier",
        [ tc "acceptance" `Quick test_ratifier_acceptance;
          tc "coherence + validity" `Quick test_ratifier_coherence_and_validity;
          tc "work bounds" `Quick test_ratifier_work_bounds;
          tc "space" `Quick test_ratifier_space;
          tc "solo decides" `Quick test_ratifier_solo_decides;
          QCheck_alcotest.to_alcotest qcheck_ratifier_weak_consensus ] );
      ( "fallback",
        [ tc "encoding roundtrip" `Quick test_fallback_encoding_roundtrip;
          tc "encode rejects bad value" `Quick test_fallback_encode_rejects_bad_value;
          tc "decides + agrees" `Quick test_fallback_decides_and_agrees;
          tc "solo" `Quick test_fallback_solo;
          QCheck_alcotest.to_alcotest qcheck_fallback_agreement ] ) ]
