(* Tests for the simulator substrate: rng, memory, ops, scheduler,
   adversary views, traces, spec checkers. *)

open Conrat_sim

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 in
  let b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 42 in
  let b = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  checkb "streams differ" true !differs

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  checki "copies agree" 0 (Int64.compare (Rng.bits64 a) (Rng.bits64 b))

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  checkb "split differs from parent" true !differs

let test_rng_split_n () =
  let a = Rng.create 9 in
  let streams = Rng.split_n a 8 in
  checki "eight streams" 8 (Array.length streams);
  let firsts = Array.map Rng.bits64 streams in
  let distinct = Array.to_list firsts |> List.sort_uniq compare |> List.length in
  checki "streams distinct" 8 distinct

let test_rng_int_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_bound_one () =
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    checki "bound 1 gives 0" 0 (Rng.int rng 1)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 3 in
    if v < -3 || v > 3 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 20k draws; each bucket within
     25% of the expectation.  Deterministic given the seed. *)
  let rng = Rng.create 123 in
  let buckets = Array.make 10 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  let expected = draws / 10 in
  Array.iteri
    (fun i c ->
      if abs (c - expected) > expected / 4 then
        Alcotest.failf "bucket %d skewed: %d vs %d" i c expected)
    buckets

let test_rng_float_range () =
  let rng = Rng.create 2 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    checkb "p=1 always true" true (Rng.bernoulli rng 1.0);
    checkb "p=0 always false" false (Rng.bernoulli rng 0.0)
  done

let test_rng_bernoulli_bias () =
  let rng = Rng.create 4 in
  let hits = ref 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    if Rng.bernoulli rng 0.25 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int draws in
  checkb "bias near 0.25" true (p > 0.22 && p < 0.28)

let test_rng_pm1 () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.pm1 rng in
    checkb "pm1 in {-1,1}" true (v = 1 || v = -1)
  done

let test_rng_permutation () =
  let rng = Rng.create 6 in
  let p = Rng.permutation rng 20 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 20 Fun.id) sorted

let test_rng_shuffle_preserves () =
  let rng = Rng.create 8 in
  let a = Array.init 15 (fun i -> i * i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  Array.sort compare b;
  check Alcotest.(array int) "same multiset" a b

let test_rng_exponential_positive () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    checkb "exp > 0" true (Rng.exponential rng 2.0 >= 0.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 10 in
  let total = ref 0.0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    total := !total +. Rng.exponential rng 2.0
  done;
  let mean = !total /. float_of_int draws in
  checkb "mean near 1/lambda" true (mean > 0.45 && mean < 0.55)

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)
(* ------------------------------------------------------------------ *)

let test_memory_alloc_initial () =
  let mem = Memory.create () in
  let l = Memory.alloc mem in
  check Alcotest.(option int) "fresh register is bot" None (Memory.read mem l)

let test_memory_alloc_init_value () =
  let mem = Memory.create () in
  let l = Memory.alloc ~init:9 mem in
  check Alcotest.(option int) "initialised register" (Some 9) (Memory.read mem l)

let test_memory_write_read () =
  let mem = Memory.create () in
  let l = Memory.alloc mem in
  Memory.write mem l 5;
  check Alcotest.(option int) "read back" (Some 5) (Memory.read mem l);
  Memory.write mem l (-7);
  check Alcotest.(option int) "overwrite (negative ok)" (Some (-7)) (Memory.read mem l)

let test_memory_growth () =
  let mem = Memory.create () in
  let locs = Array.init 1000 (fun i -> Memory.alloc ~init:i mem) in
  checki "size" 1000 (Memory.size mem);
  Array.iteri
    (fun i l -> check Alcotest.(option int) "contents survive growth" (Some i) (Memory.read mem l))
    locs

let test_memory_alloc_n () =
  let mem = Memory.create () in
  let locs = Memory.alloc_n mem 5 in
  checki "five registers" 5 (Array.length locs);
  check Alcotest.(array int) "consecutive" (Array.init 5 Fun.id) locs

let test_memory_bounds () =
  let mem = Memory.create () in
  ignore (Memory.alloc mem);
  Alcotest.check_raises "read oob"
    (Invalid_argument "Memory: address 3 out of bounds (size 1)")
    (fun () -> ignore (Memory.read mem 3))

let test_memory_snapshot_restore () =
  let mem = Memory.create () in
  let l0 = Memory.alloc mem in
  let l1 = Memory.alloc mem in
  Memory.write mem l0 1;
  let snap = Memory.snapshot mem in
  Memory.write mem l0 2;
  Memory.write mem l1 3;
  Memory.restore mem snap;
  check Alcotest.(option int) "restored l0" (Some 1) (Memory.read mem l0);
  check Alcotest.(option int) "restored l1" None (Memory.read mem l1)

(* ------------------------------------------------------------------ *)
(* Op descriptors                                                      *)
(* ------------------------------------------------------------------ *)

let test_op_descriptors () =
  let read = Op.Any (Op.Read 3) in
  let write = Op.Any (Op.Write (4, 7)) in
  let pw = Op.Any (Op.Prob_write (5, 8, 0.25)) in
  let pwd = Op.Any (Op.Prob_write_detect (6, 9, 0.5)) in
  let col = Op.Any (Op.Collect (0, 4)) in
  checkb "read kind" true (Op.kind read = Op.Read_op);
  checkb "write kind" true (Op.kind write = Op.Write_op);
  checkb "pw kind" true (Op.kind pw = Op.Prob_write_op);
  checkb "pwd kind" true (Op.kind pwd = Op.Prob_write_op);
  checkb "collect kind" true (Op.kind col = Op.Collect_op);
  checki "read loc" 3 (Op.loc read);
  check Alcotest.(option int) "write value" (Some 7) (Op.value write);
  check Alcotest.(option int) "read value" None (Op.value read);
  check Alcotest.(option (float 1e-9)) "pw prob" (Some 0.25) (Op.prob pw);
  checkb "write is write" true (Op.is_write write);
  checkb "pw is write" true (Op.is_write pw);
  checkb "read not write" false (Op.is_write read);
  checkb "collect not write" false (Op.is_write col)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let run_simple ?(n = 3) ?(adversary = Adversary.round_robin) ?record body =
  let memory = Memory.create () in
  let shared = Memory.alloc_n memory 4 in
  let result =
    Scheduler.run_direct ?record ~n ~adversary ~rng:(Rng.create 11) ~memory
      (fun ~pid ~rng -> body shared ~pid ~rng)
  in
  result

let test_scheduler_runs_all () =
  let result =
    run_simple (fun shared ~pid ~rng:_ ->
      Proc.write shared.(0) pid;
      pid * 10)
  in
  checkb "completed" true result.completed;
  check
    Alcotest.(array (option int))
    "outputs" [| Some 0; Some 10; Some 20 |] result.outputs

let test_scheduler_counts_ops () =
  let result =
    run_simple (fun shared ~pid:_ ~rng:_ ->
      Proc.write shared.(0) 1;
      ignore (Proc.read shared.(0));
      ignore (Proc.read shared.(1));
      0)
  in
  checki "3 procs x 3 ops" 9 (Metrics.total result.metrics);
  checki "individual" 3 (Metrics.individual result.metrics);
  checki "steps equals total" 9 result.steps;
  checki "reads counted" 6 (Metrics.reads result.metrics);
  checki "writes counted" 3 (Metrics.writes result.metrics)

let test_metrics_merge () =
  let record_ops n ops =
    let m = Metrics.create ~n in
    List.iter (fun (pid, kind) -> Metrics.record m ~pid kind) ops;
    m
  in
  let a = record_ops 2 [ (0, Op.Read_op); (1, Op.Write_op); (1, Op.Prob_write_op) ] in
  let b = record_ops 3 [ (2, Op.Read_op); (0, Op.Collect_op) ] in
  let m = Metrics.merge a b in
  checki "total" 5 (Metrics.total m);
  checki "individual" 2 (Metrics.individual m);
  checki "reads" 2 (Metrics.reads m);
  checki "writes" 1 (Metrics.writes m);
  checki "prob writes" 1 (Metrics.prob_writes m);
  checki "collects" 1 (Metrics.collects m);
  check Alcotest.(array int) "per-pid aligned, zero-extended" [| 2; 2; 1 |]
    (Metrics.per_process m);
  (* commutative, identity = empty accounting *)
  check Alcotest.(array int) "commutative" (Metrics.per_process m)
    (Metrics.per_process (Metrics.merge b a));
  checki "identity" (Metrics.total a)
    (Metrics.total (Metrics.merge a (Metrics.create ~n:0)))

let test_scheduler_read_after_write () =
  let result =
    run_simple ~n:1 (fun shared ~pid:_ ~rng:_ ->
      Proc.write shared.(2) 42;
      match Proc.read shared.(2) with
      | Some v -> v
      | None -> -1)
  in
  check Alcotest.(array (option int)) "read own write" [| Some 42 |] result.outputs

let test_scheduler_prob_write_p1 () =
  let result =
    run_simple ~n:1 (fun shared ~pid:_ ~rng:_ ->
      Proc.prob_write shared.(0) 5 ~p:1.0;
      match Proc.read shared.(0) with Some v -> v | None -> -1)
  in
  check Alcotest.(array (option int)) "p=1 always lands" [| Some 5 |] result.outputs

let test_scheduler_prob_write_p0 () =
  let result =
    run_simple ~n:1 (fun shared ~pid:_ ~rng:_ ->
      Proc.prob_write shared.(0) 5 ~p:0.0;
      match Proc.read shared.(0) with Some v -> v | None -> -1)
  in
  check Alcotest.(array (option int)) "p=0 never lands" [| Some (-1) |] result.outputs

let test_scheduler_prob_write_detect () =
  let result =
    run_simple ~n:1 (fun shared ~pid:_ ~rng:_ ->
      let landed = Proc.prob_write_detect shared.(0) 5 ~p:1.0 in
      let missed = Proc.prob_write_detect shared.(1) 6 ~p:0.0 in
      (if landed then 1 else 0) + if missed then 10 else 0)
  in
  check Alcotest.(array (option int)) "detection outcomes" [| Some 1 |] result.outputs

let test_scheduler_max_steps () =
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  let result =
    Scheduler.run_direct ~max_steps:50 ~n:2 ~adversary:Adversary.round_robin
      ~rng:(Rng.create 1) ~memory
      (fun ~pid:_ ~rng:_ ->
        (* Spin forever: r is never written. *)
        let rec loop () = match Proc.read r with None -> loop () | Some v -> v in
        loop ())
  in
  checkb "not completed" false result.completed;
  checki "stopped at cap" 50 result.steps;
  check Alcotest.(array (option int)) "no outputs" [| None; None |] result.outputs

let test_scheduler_collect_disallowed () =
  let memory = Memory.create () in
  let base = Memory.alloc_n memory 3 in
  Alcotest.check_raises "collect needs opt-in" Scheduler.Collect_disallowed (fun () ->
    ignore
      (Scheduler.run_direct ~n:1 ~adversary:Adversary.round_robin ~rng:(Rng.create 1) ~memory
         (fun ~pid:_ ~rng:_ -> Array.length (Proc.collect base.(0) 3))))

let test_scheduler_collect_allowed () =
  let memory = Memory.create () in
  let base = Memory.alloc_n memory 3 in
  Memory.write memory base.(1) 4;
  let result =
    Scheduler.run_direct ~cheap_collect:true ~n:1 ~adversary:Adversary.round_robin
      ~rng:(Rng.create 1) ~memory
      (fun ~pid:_ ~rng:_ ->
        let snap = Proc.collect base.(0) 3 in
        match snap with
        | [| None; Some v; None |] -> v
        | _ -> -1)
  in
  check Alcotest.(array (option int)) "collect contents" [| Some 4 |] result.outputs;
  checki "collect costs 1 op" 1 result.steps

let test_scheduler_determinism () =
  let run () =
    let memory = Memory.create () in
    let shared = Memory.alloc_n memory 2 in
    Scheduler.run_direct ~record:true ~n:4 ~adversary:Adversary.random_uniform
      ~rng:(Rng.create 77) ~memory
      (fun ~pid ~rng ->
        Proc.prob_write shared.(0) pid ~p:0.5;
        ignore (Proc.read shared.(0));
        Rng.int rng 100)
  in
  let a = run () in
  let b = run () in
  check Alcotest.(array (option int)) "same outputs" a.outputs b.outputs;
  (match (a.trace, b.trace) with
   | Some ta, Some tb -> checkb "same trace" true (Trace.equal ta tb)
   | _ -> Alcotest.fail "traces missing")

let test_scheduler_local_rngs_differ () =
  let result =
    run_simple ~n:3 (fun _shared ~pid:_ ~rng -> Rng.int rng 1_000_000)
  in
  let vals = Array.to_list result.outputs |> List.filter_map Fun.id in
  checki "three draws" 3 (List.length vals);
  checkb "not all equal" true (List.sort_uniq compare vals |> List.length > 1)

(* ------------------------------------------------------------------ *)
(* Adversaries                                                         *)
(* ------------------------------------------------------------------ *)

let test_round_robin_order () =
  let result =
    run_simple ~record:true (fun shared ~pid ~rng:_ ->
      Proc.write shared.(0) pid;
      Proc.write shared.(1) pid;
      0)
  in
  match result.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
    let pids = List.map (fun e -> e.Trace.pid) (Trace.events t) in
    check Alcotest.(list int) "cyclic order" [ 0; 1; 2; 0; 1; 2 ] pids

let test_fixed_permutation_order () =
  let adversary = Adversary.fixed_permutation ~perm:[| 2; 0; 1 |] () in
  let result =
    run_simple ~adversary ~record:true (fun shared ~pid ~rng:_ ->
      Proc.write shared.(0) pid;
      0)
  in
  match result.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
    let pids = List.map (fun e -> e.Trace.pid) (Trace.events t) in
    check Alcotest.(list int) "permutation order" [ 2; 0; 1 ] pids

let test_priority_runs_highest_first () =
  let adversary = Adversary.priority ~priorities:[| 0; 5; 1 |] () in
  let result =
    run_simple ~adversary ~record:true (fun shared ~pid ~rng:_ ->
      Proc.write shared.(0) pid;
      0)
  in
  match result.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
    let pids = List.map (fun e -> e.Trace.pid) (Trace.events t) in
    check Alcotest.(list int) "priority order" [ 1; 2; 0 ] pids

let test_next_enabled_from () =
  checki "at-or-after" 2 (Adversary.next_enabled_from [| 0; 2 |] 3 1);
  checki "exact" 2 (Adversary.next_enabled_from [| 0; 2 |] 3 2);
  checki "cyclic wrap" 0 (Adversary.next_enabled_from [| 0 |] 3 2)

let test_write_stalker_prefers_readers () =
  (* p0 wants to write; p1 wants to read.  The stalker must run p1
     first. *)
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  let result =
    Scheduler.run_direct ~record:true ~n:2 ~adversary:Adversary.write_stalker
      ~rng:(Rng.create 3) ~memory
      (fun ~pid ~rng:_ ->
        if pid = 0 then begin Proc.write r 1; 0 end
        else match Proc.read r with Some _ -> 1 | None -> 0)
  in
  match result.trace with
  | None -> Alcotest.fail "no trace"
  | Some t ->
    checki "reader first" 1 (Trace.get t 0).Trace.pid;
    (* And the reader therefore saw bot. *)
    check Alcotest.(array (option int)) "outputs" [| Some 0; Some 0 |] result.outputs

let test_all_weak_names_resolve () =
  List.iter
    (fun (a : Adversary.t) -> checkb "has name" true (String.length a.name > 0))
    (Adversary.all_weak ());
  List.iter
    (fun name ->
      let a = Adversary.by_name name in
      check Alcotest.string "by_name roundtrip" name a.Adversary.name)
    [ "round_robin"; "random_uniform"; "fixed_permutation"; "write_stalker";
      "overwrite_attacker"; "adaptive_overwriter"; "noisy"; "priority" ];
  Alcotest.check_raises "unknown adversary" Not_found (fun () ->
    ignore (Adversary.by_name "nonsense"))

(* Value-obliviousness: the stalker's choices cannot depend on the
   values being written, so two programs differing only in written
   values must yield identical schedules. *)
let test_value_oblivious_invariance () =
  let run_with values =
    let memory = Memory.create () in
    let shared = Memory.alloc_n memory 2 in
    let result =
      Scheduler.run_direct ~record:true ~n:2 ~adversary:Adversary.write_stalker
        ~rng:(Rng.create 5) ~memory
        (fun ~pid ~rng:_ ->
          Proc.write shared.(pid) values.(pid);
          ignore (Proc.read shared.(1 - pid));
          Proc.write shared.(pid) (values.(pid) * 3);
          0)
    in
    match result.trace with
    | Some t -> List.map (fun e -> e.Trace.pid) (Trace.events t)
    | None -> []
  in
  check Alcotest.(list int) "schedule invariant under values"
    (run_with [| 1; 2 |]) (run_with [| 100; -5 |])

(* Obliviousness: round_robin's schedule cannot depend on anything but
   step count, including op types. *)
let test_oblivious_invariance () =
  let run_with ~swap =
    let memory = Memory.create () in
    let shared = Memory.alloc_n memory 2 in
    let result =
      Scheduler.run_direct ~record:true ~n:2 ~adversary:Adversary.round_robin
        ~rng:(Rng.create 5) ~memory
        (fun ~pid ~rng:_ ->
          if swap then ignore (Proc.read shared.(pid))
          else Proc.write shared.(pid) 1;
          Proc.write shared.(pid) 2;
          0)
    in
    match result.trace with
    | Some t -> List.map (fun e -> e.Trace.pid) (Trace.events t)
    | None -> []
  in
  check Alcotest.(list int) "schedule invariant under op kinds"
    (run_with ~swap:false) (run_with ~swap:true)

(* The noisy and priority schedulers are oblivious: their whole pid
   sequence may depend only on the step count and which processes are
   still enabled.  Property: two programs with the same per-process
   operation counts — but arbitrary, independently drawn op kinds,
   locations, values and write probabilities — yield byte-identical
   schedules.  (The rng streams are split per §"Stream layout" in
   Scheduler.run, so protocol coins cannot leak into the adversary.) *)
let qcheck_oblivious_schedule_invariance name make_adversary =
  QCheck.Test.make
    ~name:(name ^ " schedule ignores ops/values/locations")
    ~count:120
    QCheck.(quad (int_range 2 4) (int_range 0 1_000_000) (int_range 0 1_000_000)
              (int_range 0 1_000_000))
    (fun (n, shared_seed, prog_seed_a, prog_seed_b) ->
      (* Op counts come from the shared seed: both programs have the
         same shape, so the enabled sets evolve identically. *)
      let counts =
        let r = Rng.create shared_seed in
        Array.init n (fun _ -> 1 + Rng.int r 5)
      in
      let pid_trace prog_seed =
        let prng = Rng.create prog_seed in
        (* Pre-draw the programs so generation order cannot depend on
           the schedule under test. *)
        let progs =
          Array.init n (fun pid ->
            Array.init counts.(pid) (fun _ ->
              let kind = Rng.int prng 4 in
              let reg = Rng.int prng 3 in
              let value = Rng.int prng 100 in
              let p = 0.1 +. (0.8 *. Rng.float prng) in
              (kind, reg, value, p)))
        in
        let memory = Memory.create () in
        let regs = Memory.alloc_n memory 3 in
        let result =
          Scheduler.run_direct ~record:true ~n ~adversary:(make_adversary ())
            ~rng:(Rng.create shared_seed) ~memory
            (fun ~pid ~rng:_ ->
              Array.iter
                (fun (kind, reg, value, p) ->
                  match kind with
                  | 0 -> ignore (Proc.read regs.(reg))
                  | 1 -> Proc.write regs.(reg) value
                  | 2 -> Proc.prob_write regs.(reg) value ~p
                  | _ -> ignore (Proc.prob_write_detect regs.(reg) value ~p))
                progs.(pid);
              0)
        in
        match result.trace with
        | Some t -> List.map (fun e -> e.Trace.pid) (Trace.events t)
        | None -> []
      in
      pid_trace prog_seed_a = pid_trace prog_seed_b)

let qcheck_noisy_invariance =
  qcheck_oblivious_schedule_invariance "noisy" (fun () -> Adversary.noisy ())

let qcheck_priority_invariance =
  qcheck_oblivious_schedule_invariance "priority" (fun () -> Adversary.priority ())

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let make_full_view () =
  let memory = Memory.create () in
  let l = Memory.alloc memory in
  Memory.write memory l 9;
  { View.step = 3;
    n = 2;
    enabled = [| 0; 1 |];
    pending =
      [| Some (Op.Any (Op.Prob_write (l, 7, 0.5))); Some (Op.Any (Op.Read l)) |];
    memory;
    op_counts = Metrics.counts_of_array [| 2; 1 |] }

let test_view_oblivious_projection () =
  let v = View.to_oblivious (make_full_view ()) in
  checki "step" 3 v.View.ob_step;
  checki "n" 2 v.View.ob_n;
  check Alcotest.(array int) "enabled" [| 0; 1 |] v.View.ob_enabled

let test_view_value_oblivious_masks_values () =
  let v = View.to_value_oblivious (make_full_view ()) in
  (match v.View.vo_pending.(0) with
   | Some m ->
     check Alcotest.(option int) "value hidden" None m.View.m_value;
     check Alcotest.(option int) "loc visible" (Some 0) m.View.m_loc;
     checkb "kind visible" true (m.View.m_kind = Op.Prob_write_op)
   | None -> Alcotest.fail "pending missing")

let test_view_location_oblivious_masks_locs () =
  let v = View.to_location_oblivious (make_full_view ()) in
  (match v.View.lo_pending.(0) with
   | Some m ->
     check Alcotest.(option int) "loc hidden" None m.View.m_loc;
     check Alcotest.(option int) "value visible" (Some 7) m.View.m_value;
     check Alcotest.(option (float 1e-9)) "prob visible" (Some 0.5) m.View.m_prob
   | None -> Alcotest.fail "pending missing");
  check Alcotest.(array (option int)) "contents visible" [| Some 9 |] v.View.lo_contents

(* ------------------------------------------------------------------ *)
(* Spec checkers                                                       *)
(* ------------------------------------------------------------------ *)

let ok = Alcotest.(check (result unit string))

let test_spec_validity () =
  ok "valid" (Ok ())
    (Spec.validity ~inputs:[| 1; 2 |] ~outputs:[| Some 2; Some 1 |]);
  checkb "invalid detected" true
    (Result.is_error (Spec.validity ~inputs:[| 1; 2 |] ~outputs:[| Some 3; Some 1 |]));
  ok "unfinished ignored" (Ok ())
    (Spec.validity ~inputs:[| 1; 2 |] ~outputs:[| None; Some 1 |])

let test_spec_agreement () =
  ok "agree" (Ok ()) (Spec.agreement ~outputs:[| Some 5; Some 5; None |]);
  checkb "disagree detected" true
    (Result.is_error (Spec.agreement ~outputs:[| Some 5; Some 6 |]));
  ok "vacuous" (Ok ()) (Spec.agreement ~outputs:[| None; None |])

let test_spec_coherence () =
  ok "decider binds" (Ok ())
    (Spec.coherence ~outputs:[| Some (true, 3); Some (false, 3) |]);
  checkb "conflicting non-decider" true
    (Result.is_error (Spec.coherence ~outputs:[| Some (true, 3); Some (false, 4) |]));
  checkb "two deciders disagreeing" true
    (Result.is_error (Spec.coherence ~outputs:[| Some (true, 3); Some (true, 4) |]));
  ok "no decider, anything goes" (Ok ())
    (Spec.coherence ~outputs:[| Some (false, 1); Some (false, 2) |])

let test_spec_acceptance () =
  ok "all same, all decide" (Ok ())
    (Spec.acceptance ~inputs:[| 7; 7 |] ~outputs:[| Some (true, 7); Some (true, 7) |]);
  checkb "non-decider on agreeing inputs" true
    (Result.is_error
       (Spec.acceptance ~inputs:[| 7; 7 |] ~outputs:[| Some (true, 7); Some (false, 7) |]));
  checkb "unfinished on agreeing inputs" true
    (Result.is_error (Spec.acceptance ~inputs:[| 7; 7 |] ~outputs:[| Some (true, 7); None |]));
  ok "mixed inputs vacuous" (Ok ())
    (Spec.acceptance ~inputs:[| 7; 8 |] ~outputs:[| Some (false, 9); None |])

let test_spec_consensus_execution () =
  ok "good run" (Ok ())
    (Spec.consensus_execution ~inputs:[| 0; 1 |] ~outputs:[| Some 1; Some 1 |] ~completed:true);
  checkb "incomplete is termination failure" true
    (Result.is_error
       (Spec.consensus_execution ~inputs:[| 0; 1 |] ~outputs:[| Some 1; None |] ~completed:false))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip () =
  let t = Trace.create () in
  for i = 0 to 99 do
    Trace.add t
      { Trace.step = i; pid = i mod 3; op = Some (Op.Any (Op.Read i)); landed = false; observed = Some i }
  done;
  checki "length" 100 (Trace.length t);
  checki "get step" 42 (Trace.get t 42).Trace.step;
  checki "events order" 99 (List.nth (Trace.events t) 99).Trace.step

let test_trace_equal () =
  let mk () =
    let t = Trace.create () in
    Trace.add t { Trace.step = 0; pid = 1; op = Some (Op.Any (Op.Write (0, 3))); landed = true; observed = None };
    t
  in
  checkb "equal" true (Trace.equal (mk ()) (mk ()));
  let t2 = mk () in
  Trace.add t2 { Trace.step = 1; pid = 0; op = Some (Op.Any (Op.Read 0)); landed = false; observed = None };
  checkb "different lengths" false (Trace.equal (mk ()) t2)

(* ------------------------------------------------------------------ *)

let qcheck_scheduler_all_finish =
  QCheck.Test.make ~name:"scheduler finishes wait-free straight-line code" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n, seed) ->
      let memory = Memory.create () in
      let shared = Memory.alloc_n memory 4 in
      let result =
        Scheduler.run_direct ~n ~adversary:Adversary.random_uniform ~rng:(Rng.create seed) ~memory
          (fun ~pid ~rng:_ ->
            Proc.write shared.(pid mod 4) pid;
            ignore (Proc.read shared.((pid + 1) mod 4));
            pid)
      in
      result.completed
      && Array.for_all Option.is_some result.outputs
      && Metrics.total result.metrics = 2 * n)

let qcheck_prob_write_never_other_value =
  QCheck.Test.make ~name:"prob writes only ever store the written value" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let memory = Memory.create () in
      let r = Memory.alloc memory in
      let result =
        Scheduler.run_direct ~n:4 ~adversary:Adversary.random_uniform ~rng:(Rng.create seed) ~memory
          (fun ~pid ~rng:_ ->
            Proc.prob_write r (100 + pid) ~p:0.5;
            match Proc.read r with Some v -> v | None -> -1)
      in
      Array.for_all
        (function
          | Some v -> v = -1 || (v >= 100 && v < 104)
          | None -> false)
        result.outputs)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sim"
    [ ( "rng",
        [ tc "determinism" `Quick test_rng_determinism;
          tc "seed sensitivity" `Quick test_rng_seed_sensitivity;
          tc "copy" `Quick test_rng_copy;
          tc "split independence" `Quick test_rng_split_independent;
          tc "split_n" `Quick test_rng_split_n;
          tc "int range" `Quick test_rng_int_range;
          tc "int bound one" `Quick test_rng_int_bound_one;
          tc "int invalid" `Quick test_rng_int_invalid;
          tc "int_in range" `Quick test_rng_int_in;
          tc "int uniformity" `Quick test_rng_int_uniformity;
          tc "float range" `Quick test_rng_float_range;
          tc "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          tc "bernoulli bias" `Quick test_rng_bernoulli_bias;
          tc "pm1" `Quick test_rng_pm1;
          tc "permutation" `Quick test_rng_permutation;
          tc "shuffle preserves" `Quick test_rng_shuffle_preserves;
          tc "exponential positive" `Quick test_rng_exponential_positive;
          tc "exponential mean" `Quick test_rng_exponential_mean ] );
      ( "memory",
        [ tc "alloc initial" `Quick test_memory_alloc_initial;
          tc "alloc init value" `Quick test_memory_alloc_init_value;
          tc "write read" `Quick test_memory_write_read;
          tc "growth" `Quick test_memory_growth;
          tc "alloc_n" `Quick test_memory_alloc_n;
          tc "bounds" `Quick test_memory_bounds;
          tc "snapshot restore" `Quick test_memory_snapshot_restore ] );
      ("op", [ tc "descriptors" `Quick test_op_descriptors ]);
      ( "scheduler",
        [ tc "runs all" `Quick test_scheduler_runs_all;
          tc "counts ops" `Quick test_scheduler_counts_ops;
          tc "metrics merge" `Quick test_metrics_merge;
          tc "read after write" `Quick test_scheduler_read_after_write;
          tc "prob write p=1" `Quick test_scheduler_prob_write_p1;
          tc "prob write p=0" `Quick test_scheduler_prob_write_p0;
          tc "prob write detect" `Quick test_scheduler_prob_write_detect;
          tc "max steps cap" `Quick test_scheduler_max_steps;
          tc "collect disallowed" `Quick test_scheduler_collect_disallowed;
          tc "collect allowed" `Quick test_scheduler_collect_allowed;
          tc "determinism" `Quick test_scheduler_determinism;
          tc "local rngs differ" `Quick test_scheduler_local_rngs_differ;
          QCheck_alcotest.to_alcotest qcheck_scheduler_all_finish;
          QCheck_alcotest.to_alcotest qcheck_prob_write_never_other_value ] );
      ( "adversary",
        [ tc "round robin order" `Quick test_round_robin_order;
          tc "fixed permutation order" `Quick test_fixed_permutation_order;
          tc "priority order" `Quick test_priority_runs_highest_first;
          tc "next_enabled_from" `Quick test_next_enabled_from;
          tc "write stalker prefers readers" `Quick test_write_stalker_prefers_readers;
          tc "names resolve" `Quick test_all_weak_names_resolve;
          tc "value-oblivious invariance" `Quick test_value_oblivious_invariance;
          tc "oblivious invariance" `Quick test_oblivious_invariance;
          QCheck_alcotest.to_alcotest qcheck_noisy_invariance;
          QCheck_alcotest.to_alcotest qcheck_priority_invariance ] );
      ( "view",
        [ tc "oblivious projection" `Quick test_view_oblivious_projection;
          tc "value-oblivious masks values" `Quick test_view_value_oblivious_masks_values;
          tc "location-oblivious masks locs" `Quick test_view_location_oblivious_masks_locs ] );
      ( "spec",
        [ tc "validity" `Quick test_spec_validity;
          tc "agreement" `Quick test_spec_agreement;
          tc "coherence" `Quick test_spec_coherence;
          tc "acceptance" `Quick test_spec_acceptance;
          tc "consensus execution" `Quick test_spec_consensus_execution ] );
      ( "trace",
        [ tc "roundtrip" `Quick test_trace_roundtrip;
          tc "equal" `Quick test_trace_equal ] ) ]
