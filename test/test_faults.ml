(* Tests for the fault plane: crash-stop / weak-register injection in
   the machine, crash-closed exhaustive verification, SIGINT-safe
   checkpoint/resume bit-identity, the Injector plan combinators and the
   quarantining engine.

   The qcheck property is the headline: validity and coherence hold on
   random crash schedules (0 ≤ crashes ≤ n−1) for every registry
   config, with crashed processes excused and survivors held to the
   full contract. *)

open Conrat_sim
open Conrat_verify

let check = Alcotest.check
let checkb msg expected actual = check Alcotest.bool msg expected actual
let checki msg expected actual = check Alcotest.int msg expected actual
let tc = Alcotest.test_case

let config name =
  match Checks.find name with
  | Some c -> c
  | None -> Alcotest.failf "no checker config named %s" name

(* ------------------------------------------------------------------ *)
(* Random crash schedules keep validity + coherence (qcheck)           *)
(* ------------------------------------------------------------------ *)

(* Every fault-free registry config, re-armed with the largest
   meaningful crash budget (n − 1 leaves at least one survivor). *)
let crashable =
  List.filter_map
    (fun c ->
      if Fault.is_none c.Checks.faults then
        Some { c with Checks.faults = Fault.crash_only (c.Checks.n - 1) }
      else None)
    Checks.all

let qcheck_crash_schedules_safe =
  let gen =
    QCheck.Gen.(
      pair
        (int_bound (List.length crashable - 1))
        (list_size (int_bound 80) (int_bound 12)))
  in
  let print (i, path) =
    Printf.sprintf "%s %s" (List.nth crashable i).Checks.name
      (String.concat "," (List.map string_of_int path))
  in
  QCheck.Test.make ~count:200
    ~name:"validity+coherence under random crash schedules"
    (QCheck.make ~print gen)
    (fun (i, path) ->
      let c = List.nth crashable i in
      let run =
        Explore.run_path ~max_depth:c.Checks.max_depth
          ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
          ~n:c.Checks.n
          ~setup:(Checks.setup_of c ~n:c.Checks.n)
          path
      in
      match
        Checks.check_of c ~n:c.Checks.n ~complete:run.Explore.completed
          run.Explore.outputs
      with
      | Ok () -> true
      | Error reason ->
        QCheck.Test.fail_reportf "%s violated under crash schedule: %s"
          c.Checks.name reason)

(* ------------------------------------------------------------------ *)
(* Crash-closed exhaustive checks                                      *)
(* ------------------------------------------------------------------ *)

let test_crash_closed_registry_configs () =
  (* Quick members of the crash-closed registry exhaust and pass; the
     explored counts double as determinism locks (cf. BENCH_VERIFY). *)
  List.iter
    (fun (name, expected_complete) ->
      match Checks.run (config name) with
      | Ok s ->
        checkb (name ^ " exhausted") true s.Por.exhausted;
        checki (name ^ " complete leaves") expected_complete s.Por.complete
      | Error f -> Alcotest.failf "%s violated: %s" name f.Checks.reason)
    [ ("binary_ratifier_n2_f1", 24); ("binary_ratifier_n3_f1", 408) ]

let test_fault_free_stats_unchanged () =
  (* The fault plane compiled in but disabled must not change the
     exploration: same leaf/step counts as the committed baseline. *)
  match Checks.run (config "binary_ratifier_n2") with
  | Ok s ->
    checkb "exhausted" true s.Por.exhausted;
    checki "complete" 6 s.Por.complete
  | Error f -> Alcotest.failf "violation: %s" f.Checks.reason

(* ------------------------------------------------------------------ *)
(* The crash-unsafe demo and its committed fixture                     *)
(* ------------------------------------------------------------------ *)

let test_await_ack_caught_and_shrunk () =
  let demo = config "ratifier_await_ack" in
  match Checks.run demo with
  | Ok _ ->
    Alcotest.fail "await_ack demo passed; crash injection lost its witness"
  | Error f ->
    checkb "violation is about acceptance" true
      (String.length f.Checks.reason >= 10
       && String.sub f.Checks.reason 0 10 = "acceptance");
    checkb "artifact records the crash model" true
      (f.Checks.artifact.Artifact.faults = Fault.crash_only 1);
    (match Checks.replay demo f.Checks.artifact with
     | Error reason -> checkb "shrunk artifact reproduces" true (reason = f.Checks.reason)
     | Ok () -> Alcotest.fail "shrunk artifact does not reproduce")

let fixture_file name = Filename.concat "fixtures" name

let load_fixture name =
  match Artifact.load (fixture_file name) with
  | Ok a -> a
  | Error e -> Alcotest.failf "cannot load fixture %s: %s" name e

let test_await_ack_fixture_reproduces () =
  let a = load_fixture "ratifier_await_ack.sexp" in
  check Alcotest.string "fixture names the demo" "ratifier_await_ack"
    a.Artifact.checker;
  checkb "fixture carries the crash model" true
    (a.Artifact.faults = Fault.crash_only 1);
  match Checks.replay (config "ratifier_await_ack") a with
  | Error reason ->
    checkb "fixture reproduces its recorded reason" true
      (reason = a.Artifact.reason)
  | Ok () -> Alcotest.fail "fixture no longer reproduces"

let test_weak_read_fixture_reproduces () =
  let a = load_fixture "binary_ratifier_n2_weak.sexp" in
  checkb "fixture carries the weak-read model" true
    (a.Artifact.faults = Fault.model ~weak_reads:true ());
  match Checks.replay (config "binary_ratifier_n2_weak") a with
  | Error reason ->
    checkb "fixture reproduces its recorded reason" true
      (reason = a.Artifact.reason)
  | Ok () -> Alcotest.fail "weak-read fixture no longer reproduces"

let test_weak_demo_caught () =
  match Checks.run (config "binary_ratifier_n2_weak") with
  | Ok _ -> Alcotest.fail "weak-read demo passed; stale forks lost the witness"
  | Error f ->
    checkb "violation is about coherence" true
      (String.length f.Checks.reason >= 9
       && String.sub f.Checks.reason 0 9 = "coherence")

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume: segmented run is bit-identical to uninterrupted  *)
(* ------------------------------------------------------------------ *)

let test_por_checkpoint_resume_bit_identical () =
  let c = config "binary_ratifier_n3_f1" in
  let full =
    match Checks.run c with
    | Ok s -> s
    | Error f -> Alcotest.failf "unexpected violation: %s" f.Checks.reason
  in
  (* Re-run in budget segments, checkpointing at each stop and resuming
     from the saved frontier; the final statistics must be equal. *)
  let saved = ref None in
  let budget = ref 150 in
  let final = ref None in
  let segments = ref 0 in
  while !final = None do
    incr segments;
    if !segments > 100 then Alcotest.fail "segmented run does not converge";
    match
      Checks.run ~max_runs:!budget ?resume:!saved ~checkpoint_every:max_int
        ~on_checkpoint:(fun counts -> saved := Some counts)
        c
    with
    | Ok s when s.Por.exhausted -> final := Some s
    | Ok _ -> budget := !budget + 150
    | Error f -> Alcotest.failf "violation mid-segment: %s" f.Checks.reason
  done;
  checkb "≥ 2 segments actually exercised resume" true (!segments >= 2);
  checkb "segmented statistics bit-identical" true (Option.get !final = full)

let test_naive_checkpoint_resume_bit_identical () =
  let c = config "binary_ratifier_n2_f1" in
  let explore ?max_runs ?resume ?on_checkpoint () =
    Naive.explore ~max_depth:c.Checks.max_depth ?max_runs
      ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults ?resume
      ~checkpoint_every:max_int ?on_checkpoint ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(Checks.check_of c ~n:c.Checks.n)
      ()
  in
  let full =
    match explore () with
    | Ok s -> s
    | Error (r, _) -> Alcotest.failf "unexpected violation: %s" r
  in
  let saved = ref None in
  let budget = ref 40 in
  let final = ref None in
  let segments = ref 0 in
  while !final = None do
    incr segments;
    if !segments > 100 then Alcotest.fail "segmented run does not converge";
    match
      explore ~max_runs:!budget ?resume:!saved
        ~on_checkpoint:(fun counts -> saved := Some counts)
        ()
    with
    | Ok s when s.Naive.exhausted -> final := Some s
    | Ok _ -> budget := !budget + 40
    | Error (r, _) -> Alcotest.failf "violation mid-segment: %s" r
  done;
  checkb "≥ 2 segments actually exercised resume" true (!segments >= 2);
  checkb "segmented statistics bit-identical" true (Option.get !final = full)

let test_resume_rejects_corrupt_path () =
  let c = config "binary_ratifier_n2_f1" in
  let bogus =
    { Checkpoint.path = [ 7; 7; 7; 7; 7; 7; 7 ]; complete = 3; truncated = 0;
      pruned = 0; steps = 10 }
  in
  try
    ignore (Checks.run ~resume:bogus c);
    Alcotest.fail "corrupt resume path accepted"
  with Invalid_argument _ -> ()

let test_checkpoint_sexp_roundtrip () =
  let ck =
    { Checkpoint.engine = "por"; checker = "binary_ratifier_n3_f1";
      counts =
        { Checkpoint.path = [ 1; 0; 3 ]; complete = 42; truncated = 7;
          pruned = 99; steps = 1234 } }
  in
  match Checkpoint.of_sexp (Checkpoint.to_sexp ck) with
  | Ok ck' -> checkb "round-trips" true (ck = ck')
  | Error e -> Alcotest.failf "checkpoint did not parse back: %s" e

(* ------------------------------------------------------------------ *)
(* Injector plan combinators on the Monte Carlo scheduler              *)
(* ------------------------------------------------------------------ *)

let write_then_read ~n () =
  let memory = Memory.create () in
  let regs = Array.init n (fun _ -> Memory.alloc memory) in
  let body ~pid ~rng:_ =
    let open Program in
    let* () = write regs.(pid) (pid + 1) in
    let* v = read regs.((pid + 1) mod n) in
    return (Option.value v ~default:(-1))
  in
  (memory, body)

let test_crash_at () =
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  let body ~pid ~rng:_ =
    let open Program in
    if pid = 0 then
      let* () = write r 1 in
      return 1
    else
      let* v = read r in
      return (Option.value v ~default:0)
  in
  let result =
    Scheduler.run ~n:2
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 1) ~memory
      ~faults:(Conrat_faults.Injector.crash_at ~step:0 ~pid:0)
      body
  in
  checkb "p0 crashed" true result.Scheduler.crashed.(0);
  checkb "p0 produced no output" true (result.Scheduler.outputs.(0) = None);
  checkb "run completed" true result.Scheduler.completed;
  (* p0 crashed before its write landed, so p1 read the default *)
  checkb "p1 saw no write" true (result.Scheduler.outputs.(1) = Some 0)

let count_crashed crashed =
  Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 crashed

let test_crashing_respects_budget () =
  (* rate 1.0 wants a crash at every step; the budget caps it at f. *)
  for seed = 0 to 9 do
    let memory, body = write_then_read ~n:3 () in
    let result =
      Scheduler.run ~n:3
        ~adversary:Adversary.random_uniform
        ~rng:(Rng.create seed) ~memory
        ~faults:(Conrat_faults.Injector.crashing ~rate:1.0 ~f:2 ())
        body
    in
    checkb "completed" true result.Scheduler.completed;
    checkb "crashes within budget" true
      (count_crashed result.Scheduler.crashed <= 2);
    checkb "rate 1.0 crashes someone" true
      (count_crashed result.Scheduler.crashed > 0)
  done

let test_byzantine_reads_deliver_stale () =
  (* A weak register read with rate 1.0 must deliver the pre-write
     state: the process observes the register as if its own write had
     not happened yet. *)
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  Memory.weaken_all memory;
  let body ~pid:_ ~rng:_ =
    let open Program in
    let* () = write r 5 in
    let* v = read r in
    return (match v with Some x -> x | None -> -1)
  in
  let result =
    Scheduler.run ~n:1
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 3) ~memory
      ~faults:(Conrat_faults.Injector.byzantine_reads ~rate:1.0 ())
      body
  in
  checkb "stale read observed the pre-write state" true
    (result.Scheduler.outputs.(0) = Some (-1))

let test_byzantine_reads_ignore_strong_registers () =
  (* Without Memory.weaken_all the same plan must change nothing. *)
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  let body ~pid:_ ~rng:_ =
    let open Program in
    let* () = write r 5 in
    let* v = read r in
    return (match v with Some x -> x | None -> -1)
  in
  let result =
    Scheduler.run ~n:1
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 3) ~memory
      ~faults:(Conrat_faults.Injector.byzantine_reads ~rate:1.0 ())
      body
  in
  checkb "strong register reads stay fresh" true
    (result.Scheduler.outputs.(0) = Some 5)

let test_injector_of_spec () =
  (match Conrat_faults.Injector.of_spec "crash:f=2,weak" with
   | Ok plan -> checkb "plan named" true (plan.Fault.plan_name <> "")
   | Error e -> Alcotest.failf "of_spec rejected a valid spec: %s" e);
  match Conrat_faults.Injector.of_spec "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_spec accepted garbage"

let test_fault_free_streams_unperturbed () =
  (* Installing no plan must reproduce historical executions exactly:
     same outputs, same step count for the same seed. *)
  let run faults =
    let memory, body = write_then_read ~n:3 () in
    Scheduler.run ~n:3
      ~adversary:Adversary.random_uniform
      ~rng:(Rng.create 11) ~memory ?faults body
  in
  let a = run None in
  let b = run None in
  checkb "same outputs" true (a.Scheduler.outputs = b.Scheduler.outputs);
  checki "same steps" a.Scheduler.steps b.Scheduler.steps

(* ------------------------------------------------------------------ *)
(* Survivor-aware acceptance                                           *)
(* ------------------------------------------------------------------ *)

let test_acceptance_survivors () =
  let inputs = [| 1; 1 |] in
  checkb "crashed process excused" true
    (Spec.acceptance_survivors ~inputs ~outputs:[| Some (true, 1); None |]
     = Ok ());
  checkb "survivor must still accept" true
    (Result.is_error
       (Spec.acceptance_survivors ~inputs ~outputs:[| Some (false, 1); None |]));
  checkb "all crashed is vacuous" true
    (Spec.acceptance_survivors ~inputs ~outputs:[| None; None |] = Ok ())

(* ------------------------------------------------------------------ *)
(* Engine: fault plumbing, quarantine, cooperative stop                *)
(* ------------------------------------------------------------------ *)

open Conrat_harness

let test_engine_faulted_trials_stay_safe () =
  (* Random crash injection across many seeds: every trial's safety
     check (survivor-aware) passes and at least one crash fires. *)
  let crash_seen = ref 0 in
  for seed = 0 to 99 do
    let o =
      Engine.run_consensus
        ~faults:(Fault.crash_only 1)
        ~n:3
        ~adversary:Adversary.random_uniform
        ~inputs:[| 0; 1; 1 |] ~seed
        (Conrat_core.Consensus.standard ~m:2)
    in
    checkb (Printf.sprintf "seed %d safe under crashes" seed) true
      (o.Engine.safety = Ok ());
    checkb "crash within budget" true (o.Engine.crashes <= 1);
    crash_seen := !crash_seen + o.Engine.crashes
  done;
  checkb "some crash actually fired" true (!crash_seen > 0)

let boom_factory =
  { Conrat_core.Consensus.name = "boom";
    instantiate =
      (fun ~n:_ _memory ->
        { Conrat_core.Consensus.name = "boom";
          space = (fun () -> 0);
          decide =
            (fun ~pid:_ ~rng:_ v ->
              if v = 1 then failwith "boom" else Conrat_sim.Program.return v) }) }

let boom_plan seeds =
  Plan.make ~name:"q"
    [ Plan.spec ~sid:"q"
        ~runner:(Plan.Consensus boom_factory)
        ~adversary:Adversary.round_robin
        ~workload:(Workload.by_name "split_half") ~n:2 ~m:2
        ~seeds:(Plan.seeds seeds) () ]

let test_engine_quarantine () =
  (* split_half always hands some process input 1, so every trial
     raises; with quarantine on, all are recorded and none counted. *)
  let plan = boom_plan 6 in
  let seq = Engine.run_plan ~quarantine:true plan in
  let par = Engine.run_plan ~jobs:2 ~quarantine:true plan in
  checkb "parallel = sequential byte-identity holds" true (seq = par);
  let agg = Engine.get seq "q" in
  checki "every trial quarantined" 6 (List.length agg.Engine.quarantined);
  checki "no quarantined trial counted" 0 agg.Engine.trials;
  checkb "quarantined list is seed-ascending" true
    (let seeds = List.map fst agg.Engine.quarantined in
     seeds = List.sort_uniq compare seeds);
  (* without quarantine the exception surfaces to the caller *)
  match Engine.run_plan plan with
  | _ -> Alcotest.fail "trial exception did not surface without quarantine"
  | exception Failure _ -> ()

let test_engine_stop_flushes_partial () =
  let spec =
    Plan.spec ~sid:"s"
      ~runner:(Plan.Consensus (Conrat_core.Consensus.standard ~m:2))
      ~adversary:Adversary.round_robin
      ~workload:(Workload.by_name "split_half") ~n:2 ~m:2
      ~seeds:(Plan.seeds 20) ()
  in
  let plan = Plan.make ~name:"s" [ spec ] in
  let polls = ref 0 in
  let results =
    Engine.run_plan
      ~stop:(fun () ->
        incr polls;
        !polls > 5)
      plan
  in
  let agg = Engine.get results "s" in
  checkb "stopped early" true (agg.Engine.trials < 20);
  checkb "some trials ran" true (agg.Engine.trials > 0);
  checki "partial aggregate is well-formed" agg.Engine.trials
    (List.length agg.Engine.samples)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [ ( "crash_schedules",
        [ QCheck_alcotest.to_alcotest qcheck_crash_schedules_safe;
          tc "acceptance_survivors" `Quick test_acceptance_survivors ] );
      ( "crash_closed",
        [ tc "registry configs" `Quick test_crash_closed_registry_configs;
          tc "fault-free unchanged" `Quick test_fault_free_stats_unchanged ] );
      ( "demos_and_fixtures",
        [ tc "await_ack caught+shrunk" `Quick test_await_ack_caught_and_shrunk;
          tc "await_ack fixture" `Quick test_await_ack_fixture_reproduces;
          tc "weak fixture" `Quick test_weak_read_fixture_reproduces;
          tc "weak demo caught" `Quick test_weak_demo_caught ] );
      ( "checkpoint",
        [ tc "por resume bit-identical" `Quick
            test_por_checkpoint_resume_bit_identical;
          tc "naive resume bit-identical" `Quick
            test_naive_checkpoint_resume_bit_identical;
          tc "corrupt path rejected" `Quick test_resume_rejects_corrupt_path;
          tc "sexp round-trip" `Quick test_checkpoint_sexp_roundtrip ] );
      ( "injector",
        [ tc "crash_at" `Quick test_crash_at;
          tc "crashing budget" `Quick test_crashing_respects_budget;
          tc "byzantine stale" `Quick test_byzantine_reads_deliver_stale;
          tc "byzantine strong no-op" `Quick
            test_byzantine_reads_ignore_strong_registers;
          tc "of_spec" `Quick test_injector_of_spec;
          tc "fault-free streams" `Quick test_fault_free_streams_unperturbed ] );
      ( "engine",
        [ tc "faulted trials safe" `Quick test_engine_faulted_trials_stay_safe;
          tc "quarantine" `Quick test_engine_quarantine;
          tc "stop flushes partial" `Quick test_engine_stop_flushes_partial ] ) ]
