(* Tests for the fault plane: crash-stop / weak-register injection in
   the machine, crash-closed exhaustive verification, SIGINT-safe
   checkpoint/resume bit-identity, the Injector plan combinators and the
   quarantining engine.

   The qcheck property is the headline: validity and coherence hold on
   random crash schedules (0 ≤ crashes ≤ n−1) for every registry
   config, with crashed processes excused and survivors held to the
   full contract. *)

open Conrat_sim
open Conrat_verify

let check = Alcotest.check
let checkb msg expected actual = check Alcotest.bool msg expected actual
let checki msg expected actual = check Alcotest.int msg expected actual
let tc = Alcotest.test_case

let config name =
  match Checks.find name with
  | Some c -> c
  | None -> Alcotest.failf "no checker config named %s" name

(* ------------------------------------------------------------------ *)
(* The --faults grammar round-trips over its full range (qcheck)       *)
(* ------------------------------------------------------------------ *)

let qcheck_fault_spec_roundtrip =
  (* Generate only constructible models: a recovery budget needs a
     crash budget (Fault.model enforces it), but r may exceed f — the
     scheduler just runs out of crashed pids to restart. *)
  let gen =
    QCheck.Gen.(
      map3
        (fun crashes recoveries weak_reads ->
          let recoveries = if crashes = 0 then 0 else recoveries in
          Fault.model ~crashes ~recoveries ~weak_reads ())
        (int_bound 4) (int_bound 4) bool)
  in
  QCheck.Test.make ~count:200 ~name:"--faults spec round-trips"
    (QCheck.make ~print:Fault.to_string gen)
    (fun m ->
      match Fault.of_string (Fault.to_string m) with
      | Ok m' -> m = m'
      | Error e ->
        QCheck.Test.fail_reportf "to_string %S did not parse back: %s"
          (Fault.to_string m) e)

let test_fault_spec_errors () =
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (* contradictory: recovery without anything to recover from *)
  (match Fault.of_string "recover" with
   | Error e -> checkb "bare recover names the contradiction" true
                  (contains ~needle:"crash budget" e)
   | Ok m -> Alcotest.failf "bare recover accepted as %s" (Fault.to_string m));
  (match Fault.of_string "crash:f=0,recover:r=1" with
   | Error e -> checkb "zero-crash recover names the contradiction" true
                  (contains ~needle:"crash budget" e)
   | Ok m ->
     Alcotest.failf "crash:f=0,recover:r=1 accepted as %s" (Fault.to_string m));
  (* bare recover inherits r = f *)
  (match Fault.of_string "crash:f=2,recover" with
   | Ok m -> checkb "bare recover means r=f" true
               (m = Fault.model ~crashes:2 ~recoveries:2 ())
   | Error e -> Alcotest.failf "crash:f=2,recover rejected: %s" e);
  (* an explicit r larger than f is fine — restarts just starve *)
  match Fault.of_string "crash:f=1,recover:r=3" with
  | Ok m -> checkb "r may exceed f" true
              (m = Fault.model ~crashes:1 ~recoveries:3 ())
  | Error e -> Alcotest.failf "crash:f=1,recover:r=3 rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Random crash schedules keep validity + coherence (qcheck)           *)
(* ------------------------------------------------------------------ *)

(* Every fault-free registry config, re-armed with the largest
   meaningful crash budget (n − 1 leaves at least one survivor). *)
let crashable =
  List.filter_map
    (fun c ->
      if Fault.is_none c.Checks.faults then
        Some { c with Checks.faults = Fault.crash_only (c.Checks.n - 1) }
      else None)
    Checks.all

let qcheck_crash_schedules_safe =
  let gen =
    QCheck.Gen.(
      pair
        (int_bound (List.length crashable - 1))
        (list_size (int_bound 80) (int_bound 12)))
  in
  let print (i, path) =
    Printf.sprintf "%s %s" (List.nth crashable i).Checks.name
      (String.concat "," (List.map string_of_int path))
  in
  QCheck.Test.make ~count:200
    ~name:"validity+coherence under random crash schedules"
    (QCheck.make ~print gen)
    (fun (i, path) ->
      let c = List.nth crashable i in
      let run =
        Explore.run_path ~max_depth:c.Checks.max_depth
          ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
          ~n:c.Checks.n
          ~setup:(Checks.setup_of c ~n:c.Checks.n)
          path
      in
      match
        Checks.check_of c ~n:c.Checks.n ~complete:run.Explore.completed
          run.Explore.outputs
      with
      | Ok () -> true
      | Error reason ->
        QCheck.Test.fail_reportf "%s violated under crash schedule: %s"
          c.Checks.name reason)

(* ------------------------------------------------------------------ *)
(* Crash → recover orderings are always valid (qcheck)                 *)
(* ------------------------------------------------------------------ *)

(* Replay the trace of a random path under a crash-recovery model and
   check the pseudo-event discipline: a crash only hits a live process,
   a recovery only restarts a crashed one, and both budgets hold. *)
let qcheck_crash_recover_orderings_valid =
  let base = config "binary_ratifier_n3" in
  let c =
    { base with
      Checks.name = "binary_ratifier_n3+crash:f=2,recover:r=2";
      faults = Fault.model ~crashes:2 ~recoveries:2 () }
  in
  let gen = QCheck.Gen.(list_size (int_bound 120) (int_bound 12)) in
  let print path = String.concat "," (List.map string_of_int path) in
  QCheck.Test.make ~count:300
    ~name:"crash/recover pseudo-events well-ordered and within budget"
    (QCheck.make ~print gen)
    (fun path ->
      let run =
        Explore.run_path ~record:true ~max_depth:c.Checks.max_depth
          ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
          ~n:c.Checks.n
          ~setup:(Checks.setup_of c ~n:c.Checks.n)
          path
      in
      let tr =
        match run.Explore.trace with
        | Some tr -> tr
        | None -> QCheck.Test.fail_report "record:true produced no trace"
      in
      let crashed = Array.make c.Checks.n false in
      let crashes = ref 0 and recovers = ref 0 in
      List.iter
        (fun e ->
          match e.Trace.op with
          | Some _ ->
            if crashed.(e.Trace.pid) then
              QCheck.Test.fail_reportf "step %d: crashed p%d executed an op"
                e.Trace.step e.Trace.pid
          | None ->
            if e.Trace.landed then begin
              (* recovery pseudo-event *)
              if not crashed.(e.Trace.pid) then
                QCheck.Test.fail_reportf "step %d: recovered live p%d"
                  e.Trace.step e.Trace.pid;
              crashed.(e.Trace.pid) <- false;
              incr recovers
            end
            else begin
              if crashed.(e.Trace.pid) then
                QCheck.Test.fail_reportf "step %d: crashed p%d twice"
                  e.Trace.step e.Trace.pid;
              crashed.(e.Trace.pid) <- true;
              incr crashes
            end)
        (Trace.events tr);
      !crashes <= 2 && !recovers <= 2 && !recovers <= !crashes)

(* ------------------------------------------------------------------ *)
(* Crash-closed exhaustive checks                                      *)
(* ------------------------------------------------------------------ *)

let test_crash_closed_registry_configs () =
  (* Quick members of the crash-closed registry exhaust and pass; the
     explored counts double as determinism locks (cf. BENCH_VERIFY). *)
  List.iter
    (fun (name, expected_complete) ->
      match Checks.run (config name) with
      | Ok s ->
        checkb (name ^ " exhausted") true s.Por.exhausted;
        checki (name ^ " complete leaves") expected_complete s.Por.complete
      | Error f -> Alcotest.failf "%s violated: %s" name f.Checks.reason)
    [ ("binary_ratifier_n2_f1", 24); ("binary_ratifier_n3_f1", 408) ]

let test_recovery_closed_registry_configs () =
  (* The recoverable ratifier exhausts its crash-recovery-closed tree
     with zero violations; leaf counts double as determinism locks. *)
  List.iter
    (fun (name, expected_complete) ->
      match Checks.run (config name) with
      | Ok s ->
        checkb (name ^ " exhausted") true s.Por.exhausted;
        checki (name ^ " complete leaves") expected_complete s.Por.complete
      | Error f -> Alcotest.failf "%s violated: %s" name f.Checks.reason)
    [ ("binary_ratifier_rec_n2_f1", 170); ("binary_ratifier_rec_n3_f1", 7696) ]

let test_fault_free_stats_unchanged () =
  (* The fault plane compiled in but disabled must not change the
     exploration: same leaf/step counts as the committed baseline. *)
  match Checks.run (config "binary_ratifier_n2") with
  | Ok s ->
    checkb "exhausted" true s.Por.exhausted;
    checki "complete" 6 s.Por.complete
  | Error f -> Alcotest.failf "violation: %s" f.Checks.reason

(* ------------------------------------------------------------------ *)
(* The crash-unsafe demo and its committed fixture                     *)
(* ------------------------------------------------------------------ *)

let test_await_ack_caught_and_shrunk () =
  let demo = config "ratifier_await_ack" in
  match Checks.run demo with
  | Ok _ ->
    Alcotest.fail "await_ack demo passed; crash injection lost its witness"
  | Error f ->
    checkb "violation is about acceptance" true
      (String.length f.Checks.reason >= 10
       && String.sub f.Checks.reason 0 10 = "acceptance");
    checkb "artifact records the crash model" true
      (f.Checks.artifact.Artifact.faults = Fault.crash_only 1);
    (match Checks.replay demo f.Checks.artifact with
     | Error reason -> checkb "shrunk artifact reproduces" true (reason = f.Checks.reason)
     | Ok () -> Alcotest.fail "shrunk artifact does not reproduce")

let fixture_file name = Filename.concat "fixtures" name

let load_fixture name =
  match Artifact.load (fixture_file name) with
  | Ok a -> a
  | Error e -> Alcotest.failf "cannot load fixture %s: %s" name e

let test_await_ack_fixture_reproduces () =
  let a = load_fixture "ratifier_await_ack.sexp" in
  check Alcotest.string "fixture names the demo" "ratifier_await_ack"
    a.Artifact.checker;
  checkb "fixture carries the crash model" true
    (a.Artifact.faults = Fault.crash_only 1);
  match Checks.replay (config "ratifier_await_ack") a with
  | Error reason ->
    checkb "fixture reproduces its recorded reason" true
      (reason = a.Artifact.reason)
  | Ok () -> Alcotest.fail "fixture no longer reproduces"

let test_weak_read_fixture_reproduces () =
  let a = load_fixture "binary_ratifier_n2_weak.sexp" in
  checkb "fixture carries the weak-read model" true
    (a.Artifact.faults = Fault.model ~weak_reads:true ());
  match Checks.replay (config "binary_ratifier_n2_weak") a with
  | Error reason ->
    checkb "fixture reproduces its recorded reason" true
      (reason = a.Artifact.reason)
  | Ok () -> Alcotest.fail "weak-read fixture no longer reproduces"

let test_recovery_demo_caught_and_shrunk () =
  (* The stock (volatile-register) binary ratifier must fail coherence
     under crash:f=1,recover — the restarted process loses its
     announcement and the proposal it wrote, re-proposes, and splits
     the decision.  The recoverable variant on the same instance is in
     the crash-closed registry and passes. *)
  let demo = config "binary_ratifier_n3_rec" in
  match Checks.run demo with
  | Ok _ ->
    Alcotest.fail
      "volatile ratifier survived crash-recovery; the wipe lost its witness"
  | Error f ->
    checkb "violation is about coherence" true
      (String.length f.Checks.reason >= 9
       && String.sub f.Checks.reason 0 9 = "coherence");
    checkb "artifact records the crash-recovery model" true
      (f.Checks.artifact.Artifact.faults
       = Fault.model ~crashes:1 ~recoveries:1 ());
    (* The shrinker may land on a different minimal witness than the
       first-found one (here it usually drops to an n=2-style split),
       so the invariant is that the artifact reproduces its *own*
       recorded reason, not the original find. *)
    (match Checks.replay demo f.Checks.artifact with
     | Error reason ->
       checkb "shrunk artifact reproduces" true
         (reason = f.Checks.artifact.Artifact.reason)
     | Ok () -> Alcotest.fail "shrunk artifact does not reproduce")

let test_recovery_fixture_reproduces () =
  let a = load_fixture "binary_ratifier_n3_rec.sexp" in
  check Alcotest.string "fixture names the demo" "binary_ratifier_n3_rec"
    a.Artifact.checker;
  checkb "fixture carries the crash-recovery model" true
    (a.Artifact.faults = Fault.model ~crashes:1 ~recoveries:1 ());
  checkb "fixture trace contains a recovery pseudo-event" true
    (match a.Artifact.trace with
     | Some tr ->
       List.exists
         (fun e -> e.Trace.op = None && e.Trace.landed)
         (Trace.events tr)
     | None -> false);
  match Checks.replay (config "binary_ratifier_n3_rec") a with
  | Error reason ->
    checkb "fixture reproduces its recorded reason" true
      (reason = a.Artifact.reason)
  | Ok () -> Alcotest.fail "recovery fixture no longer reproduces"

let test_weak_demo_caught () =
  match Checks.run (config "binary_ratifier_n2_weak") with
  | Ok _ -> Alcotest.fail "weak-read demo passed; stale forks lost the witness"
  | Error f ->
    checkb "violation is about coherence" true
      (String.length f.Checks.reason >= 9
       && String.sub f.Checks.reason 0 9 = "coherence")

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume: segmented run is bit-identical to uninterrupted  *)
(* ------------------------------------------------------------------ *)

let test_por_checkpoint_resume_bit_identical () =
  let c = config "binary_ratifier_n3_f1" in
  let full =
    match Checks.run c with
    | Ok s -> s
    | Error f -> Alcotest.failf "unexpected violation: %s" f.Checks.reason
  in
  (* Re-run in budget segments, checkpointing at each stop and resuming
     from the saved frontier; the final statistics must be equal. *)
  let saved = ref None in
  let budget = ref 150 in
  let final = ref None in
  let segments = ref 0 in
  while !final = None do
    incr segments;
    if !segments > 100 then Alcotest.fail "segmented run does not converge";
    match
      Checks.run ~max_runs:!budget ?resume:!saved ~checkpoint_every:max_int
        ~on_checkpoint:(fun counts -> saved := Some counts)
        c
    with
    | Ok s when s.Por.exhausted -> final := Some s
    | Ok _ -> budget := !budget + 150
    | Error f -> Alcotest.failf "violation mid-segment: %s" f.Checks.reason
  done;
  checkb "≥ 2 segments actually exercised resume" true (!segments >= 2);
  checkb "segmented statistics bit-identical" true (Option.get !final = full)

let test_recovery_checkpoint_resume_bit_identical () =
  (* Same segmentation discipline over a crash-recovery-closed tree:
     stop-or-recover nodes and recovery bands must survive the
     checkpoint frontier encoding unchanged. *)
  let c = config "binary_ratifier_rec_n2_f1" in
  let full =
    match Checks.run c with
    | Ok s -> s
    | Error f -> Alcotest.failf "unexpected violation: %s" f.Checks.reason
  in
  let saved = ref None in
  let budget = ref 60 in
  let final = ref None in
  let segments = ref 0 in
  while !final = None do
    incr segments;
    if !segments > 100 then Alcotest.fail "segmented run does not converge";
    match
      Checks.run ~max_runs:!budget ?resume:!saved ~checkpoint_every:max_int
        ~on_checkpoint:(fun counts -> saved := Some counts)
        c
    with
    | Ok s when s.Por.exhausted -> final := Some s
    | Ok _ -> budget := !budget + 60
    | Error f -> Alcotest.failf "violation mid-segment: %s" f.Checks.reason
  done;
  checkb "≥ 2 segments actually exercised resume" true (!segments >= 2);
  checkb "segmented statistics bit-identical" true (Option.get !final = full)

let test_naive_checkpoint_resume_bit_identical () =
  let c = config "binary_ratifier_n2_f1" in
  let explore ?max_runs ?resume ?on_checkpoint () =
    Naive.explore ~max_depth:c.Checks.max_depth ?max_runs
      ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults ?resume
      ~checkpoint_every:max_int ?on_checkpoint ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(Checks.check_of c ~n:c.Checks.n)
      ()
  in
  let full =
    match explore () with
    | Ok s -> s
    | Error (r, _) -> Alcotest.failf "unexpected violation: %s" r
  in
  let saved = ref None in
  let budget = ref 40 in
  let final = ref None in
  let segments = ref 0 in
  while !final = None do
    incr segments;
    if !segments > 100 then Alcotest.fail "segmented run does not converge";
    match
      explore ~max_runs:!budget ?resume:!saved
        ~on_checkpoint:(fun counts -> saved := Some counts)
        ()
    with
    | Ok s when s.Naive.exhausted -> final := Some s
    | Ok _ -> budget := !budget + 40
    | Error (r, _) -> Alcotest.failf "violation mid-segment: %s" r
  done;
  checkb "≥ 2 segments actually exercised resume" true (!segments >= 2);
  checkb "segmented statistics bit-identical" true (Option.get !final = full)

let test_resume_rejects_corrupt_path () =
  let c = config "binary_ratifier_n2_f1" in
  let bogus =
    { Checkpoint.path = [ 7; 7; 7; 7; 7; 7; 7 ]; complete = 3; truncated = 0;
      pruned = 0; steps = 10 }
  in
  try
    ignore (Checks.run ~resume:bogus c);
    Alcotest.fail "corrupt resume path accepted"
  with Invalid_argument _ -> ()

let test_checkpoint_sexp_roundtrip () =
  let ck =
    { Checkpoint.engine = "por"; checker = "binary_ratifier_n3_f1";
      counts =
        { Checkpoint.path = [ 1; 0; 3 ]; complete = 42; truncated = 7;
          pruned = 99; steps = 1234 } }
  in
  match Checkpoint.of_sexp (Checkpoint.to_sexp ck) with
  | Ok ck' -> checkb "round-trips" true (ck = ck')
  | Error e -> Alcotest.failf "checkpoint did not parse back: %s" e

(* ------------------------------------------------------------------ *)
(* Injector plan combinators on the Monte Carlo scheduler              *)
(* ------------------------------------------------------------------ *)

let write_then_read ~n () =
  let memory = Memory.create () in
  let regs = Array.init n (fun _ -> Memory.alloc memory) in
  let body ~pid ~rng:_ =
    let open Program in
    let* () = write regs.(pid) (pid + 1) in
    let* v = read regs.((pid + 1) mod n) in
    return (Option.value v ~default:(-1))
  in
  (memory, body)

let test_crash_at () =
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  let body ~pid ~rng:_ =
    let open Program in
    if pid = 0 then
      let* () = write r 1 in
      return 1
    else
      let* v = read r in
      return (Option.value v ~default:0)
  in
  let result =
    Scheduler.run ~n:2
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 1) ~memory
      ~faults:(Conrat_faults.Injector.crash_at ~step:0 ~pid:0)
      body
  in
  checkb "p0 crashed" true result.Scheduler.crashed.(0);
  checkb "p0 produced no output" true (result.Scheduler.outputs.(0) = None);
  checkb "run completed" true result.Scheduler.completed;
  (* p0 crashed before its write landed, so p1 read the default *)
  checkb "p1 saw no write" true (result.Scheduler.outputs.(1) = Some 0)

let count_crashed crashed =
  Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 crashed

let test_crashing_respects_budget () =
  (* rate 1.0 wants a crash at every step; the budget caps it at f. *)
  for seed = 0 to 9 do
    let memory, body = write_then_read ~n:3 () in
    let result =
      Scheduler.run ~n:3
        ~adversary:Adversary.random_uniform
        ~rng:(Rng.create seed) ~memory
        ~faults:(Conrat_faults.Injector.crashing ~rate:1.0 ~f:2 ())
        body
    in
    checkb "completed" true result.Scheduler.completed;
    checkb "crashes within budget" true
      (count_crashed result.Scheduler.crashed <= 2);
    checkb "rate 1.0 crashes someone" true
      (count_crashed result.Scheduler.crashed > 0)
  done

let test_byzantine_reads_deliver_stale () =
  (* A weak register read with rate 1.0 must deliver the pre-write
     state: the process observes the register as if its own write had
     not happened yet. *)
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  Memory.weaken_all memory;
  let body ~pid:_ ~rng:_ =
    let open Program in
    let* () = write r 5 in
    let* v = read r in
    return (match v with Some x -> x | None -> -1)
  in
  let result =
    Scheduler.run ~n:1
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 3) ~memory
      ~faults:(Conrat_faults.Injector.byzantine_reads ~rate:1.0 ())
      body
  in
  checkb "stale read observed the pre-write state" true
    (result.Scheduler.outputs.(0) = Some (-1))

let test_byzantine_reads_ignore_strong_registers () =
  (* Without Memory.weaken_all the same plan must change nothing. *)
  let memory = Memory.create () in
  let r = Memory.alloc memory in
  let body ~pid:_ ~rng:_ =
    let open Program in
    let* () = write r 5 in
    let* v = read r in
    return (match v with Some x -> x | None -> -1)
  in
  let result =
    Scheduler.run ~n:1
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 3) ~memory
      ~faults:(Conrat_faults.Injector.byzantine_reads ~rate:1.0 ())
      body
  in
  checkb "strong register reads stay fresh" true
    (result.Scheduler.outputs.(0) = Some 5)

let test_injector_of_spec () =
  (match Conrat_faults.Injector.of_spec "crash:f=2,weak" with
   | Ok plan -> checkb "plan named" true (plan.Fault.plan_name <> "")
   | Error e -> Alcotest.failf "of_spec rejected a valid spec: %s" e);
  match Conrat_faults.Injector.of_spec "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_spec accepted garbage"

let test_fault_free_streams_unperturbed () =
  (* Installing no plan must reproduce historical executions exactly:
     same outputs, same step count for the same seed. *)
  let run faults =
    let memory, body = write_then_read ~n:3 () in
    Scheduler.run ~n:3
      ~adversary:Adversary.random_uniform
      ~rng:(Rng.create 11) ~memory ?faults body
  in
  let a = run None in
  let b = run None in
  checkb "same outputs" true (a.Scheduler.outputs = b.Scheduler.outputs);
  checki "same steps" a.Scheduler.steps b.Scheduler.steps

let test_recover_at () =
  (* Crash p0 before its write lands, restart it two steps later: the
     restarted process re-enters at its main root (no declared recover
     continuation), redoes the write and finishes. *)
  let memory, body = write_then_read ~n:2 () in
  Memory.track_writers memory;
  let result =
    Scheduler.run ~n:2
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 1) ~memory
      ~faults:
        (Conrat_faults.Injector.mix
           [ Conrat_faults.Injector.crash_at ~step:0 ~pid:0;
             Conrat_faults.Injector.recover_at ~step:2 ~pid:0 ])
      body
  in
  checkb "run completed" true result.Scheduler.completed;
  checki "one recovery fired" 1 result.Scheduler.recoveries;
  checkb "p0 is live again" true (not result.Scheduler.crashed.(0));
  checkb "restarted p0 finished" true (result.Scheduler.outputs.(0) <> None)

let test_invalid_recover_overrides_degrade () =
  (* Recovering a pid that never crashed degrades to a plain step and
     is counted, not honoured. *)
  let memory, body = write_then_read ~n:2 () in
  Memory.track_writers memory;
  let result =
    Scheduler.run ~n:2
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 1) ~memory
      ~faults:(Conrat_faults.Injector.recover_at ~step:1 ~pid:0)
      body
  in
  checki "no recovery fired" 0 result.Scheduler.recoveries;
  checkb "degradation counted" true (result.Scheduler.plan_ignored >= 1);
  checkb "run completed" true result.Scheduler.completed;
  (* Recovering a genuinely crashed pid over memory without last-writer
     tracking cannot wipe safely: it degrades too (the scheduler guard),
     rather than raising mid-run. *)
  let memory, body = write_then_read ~n:2 () in
  let result =
    Scheduler.run ~n:2
      ~adversary:Adversary.round_robin
      ~rng:(Rng.create 1) ~memory
      ~faults:
        (Conrat_faults.Injector.mix
           [ Conrat_faults.Injector.crash_at ~step:0 ~pid:0;
             Conrat_faults.Injector.recover_at ~step:2 ~pid:0 ])
      body
  in
  checki "untracked memory: no recovery" 0 result.Scheduler.recoveries;
  checkb "untracked memory: p0 stays down" true result.Scheduler.crashed.(0);
  checkb "untracked memory: degradation counted" true
    (result.Scheduler.plan_ignored >= 1)

let test_recovering_respects_budget () =
  (* rate 1.0 wants a restart at every step; the budget caps it at r,
     and anyone who recovered is no longer crashed at the end. *)
  for seed = 0 to 9 do
    let memory, body = write_then_read ~n:3 () in
    Memory.track_writers memory;
    let result =
      Scheduler.run ~n:3
        ~adversary:Adversary.random_uniform
        ~rng:(Rng.create seed) ~memory
        ~faults:
          (Conrat_faults.Injector.mix
             [ Conrat_faults.Injector.crashing ~rate:1.0 ~f:2 ();
               Conrat_faults.Injector.recovering ~rate:1.0 ~r:1 () ])
        body
    in
    checkb "completed" true result.Scheduler.completed;
    checkb "recoveries within budget" true (result.Scheduler.recoveries <= 1)
  done

(* ------------------------------------------------------------------ *)
(* Survivor-aware acceptance                                           *)
(* ------------------------------------------------------------------ *)

let test_acceptance_survivors () =
  let inputs = [| 1; 1 |] in
  checkb "crashed process excused" true
    (Spec.acceptance_survivors ~inputs ~outputs:[| Some (true, 1); None |]
     = Ok ());
  checkb "survivor must still accept" true
    (Result.is_error
       (Spec.acceptance_survivors ~inputs ~outputs:[| Some (false, 1); None |]));
  checkb "all crashed is vacuous" true
    (Spec.acceptance_survivors ~inputs ~outputs:[| None; None |] = Ok ())

(* ------------------------------------------------------------------ *)
(* Engine: fault plumbing, quarantine, cooperative stop                *)
(* ------------------------------------------------------------------ *)

open Conrat_harness

let test_engine_faulted_trials_stay_safe () =
  (* Random crash injection across many seeds: every trial's safety
     check (survivor-aware) passes and at least one crash fires. *)
  let crash_seen = ref 0 in
  for seed = 0 to 99 do
    let o =
      Engine.run_consensus
        ~faults:(Fault.crash_only 1)
        ~n:3
        ~adversary:Adversary.random_uniform
        ~inputs:[| 0; 1; 1 |] ~seed
        (Conrat_core.Consensus.standard ~m:2)
    in
    checkb (Printf.sprintf "seed %d safe under crashes" seed) true
      (o.Engine.safety = Ok ());
    checkb "crash within budget" true (o.Engine.crashes <= 1);
    crash_seen := !crash_seen + o.Engine.crashes
  done;
  checkb "some crash actually fired" true (!crash_seen > 0)

let boom_factory =
  { Conrat_core.Consensus.name = "boom";
    instantiate =
      (fun ~n:_ _memory ->
        { Conrat_core.Consensus.name = "boom";
          space = (fun () -> 0);
          decide =
            (fun ~pid:_ ~rng:_ v ->
              if v = 1 then failwith "boom" else Conrat_sim.Program.return v) }) }

let boom_plan seeds =
  Plan.make ~name:"q"
    [ Plan.spec ~sid:"q"
        ~runner:(Plan.Consensus boom_factory)
        ~adversary:Adversary.round_robin
        ~workload:(Workload.by_name "split_half") ~n:2 ~m:2
        ~seeds:(Plan.seeds seeds) () ]

let test_engine_quarantine () =
  (* split_half always hands some process input 1, so every trial
     raises; with quarantine on, all are recorded and none counted. *)
  let plan = boom_plan 6 in
  let seq = Engine.run_plan ~quarantine:true plan in
  let par = Engine.run_plan ~jobs:2 ~quarantine:true plan in
  checkb "parallel = sequential byte-identity holds" true (seq = par);
  let agg = Engine.get seq "q" in
  checki "every trial quarantined" 6 (List.length agg.Engine.quarantined);
  checki "no quarantined trial counted" 0 agg.Engine.trials;
  checkb "quarantined list is seed-ascending" true
    (let seeds = List.map fst agg.Engine.quarantined in
     seeds = List.sort_uniq compare seeds);
  (* without quarantine the exception surfaces to the caller *)
  match Engine.run_plan plan with
  | _ -> Alcotest.fail "trial exception did not surface without quarantine"
  | exception Failure _ -> ()

let test_engine_stop_flushes_partial () =
  let spec =
    Plan.spec ~sid:"s"
      ~runner:(Plan.Consensus (Conrat_core.Consensus.standard ~m:2))
      ~adversary:Adversary.round_robin
      ~workload:(Workload.by_name "split_half") ~n:2 ~m:2
      ~seeds:(Plan.seeds 20) ()
  in
  let plan = Plan.make ~name:"s" [ spec ] in
  let polls = ref 0 in
  let results =
    Engine.run_plan
      ~stop:(fun () ->
        incr polls;
        !polls > 5)
      plan
  in
  let agg = Engine.get results "s" in
  checkb "stopped early" true (agg.Engine.trials < 20);
  checkb "some trials ran" true (agg.Engine.trials > 0);
  checki "partial aggregate is well-formed" agg.Engine.trials
    (List.length agg.Engine.samples)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [ ( "fault_specs",
        [ QCheck_alcotest.to_alcotest qcheck_fault_spec_roundtrip;
          tc "spec errors" `Quick test_fault_spec_errors ] );
      ( "crash_schedules",
        [ QCheck_alcotest.to_alcotest qcheck_crash_schedules_safe;
          QCheck_alcotest.to_alcotest qcheck_crash_recover_orderings_valid;
          tc "acceptance_survivors" `Quick test_acceptance_survivors ] );
      ( "crash_closed",
        [ tc "registry configs" `Quick test_crash_closed_registry_configs;
          tc "recovery-closed registry configs" `Quick
            test_recovery_closed_registry_configs;
          tc "fault-free unchanged" `Quick test_fault_free_stats_unchanged ] );
      ( "demos_and_fixtures",
        [ tc "await_ack caught+shrunk" `Quick test_await_ack_caught_and_shrunk;
          tc "await_ack fixture" `Quick test_await_ack_fixture_reproduces;
          tc "recovery demo caught+shrunk" `Quick
            test_recovery_demo_caught_and_shrunk;
          tc "recovery fixture" `Quick test_recovery_fixture_reproduces;
          tc "weak fixture" `Quick test_weak_read_fixture_reproduces;
          tc "weak demo caught" `Quick test_weak_demo_caught ] );
      ( "checkpoint",
        [ tc "por resume bit-identical" `Quick
            test_por_checkpoint_resume_bit_identical;
          tc "recovery resume bit-identical" `Quick
            test_recovery_checkpoint_resume_bit_identical;
          tc "naive resume bit-identical" `Quick
            test_naive_checkpoint_resume_bit_identical;
          tc "corrupt path rejected" `Quick test_resume_rejects_corrupt_path;
          tc "sexp round-trip" `Quick test_checkpoint_sexp_roundtrip ] );
      ( "injector",
        [ tc "crash_at" `Quick test_crash_at;
          tc "crashing budget" `Quick test_crashing_respects_budget;
          tc "recover_at" `Quick test_recover_at;
          tc "invalid recover degrades" `Quick
            test_invalid_recover_overrides_degrade;
          tc "recovering budget" `Quick test_recovering_respects_budget;
          tc "byzantine stale" `Quick test_byzantine_reads_deliver_stale;
          tc "byzantine strong no-op" `Quick
            test_byzantine_reads_ignore_strong_registers;
          tc "of_spec" `Quick test_injector_of_spec;
          tc "fault-free streams" `Quick test_fault_free_streams_unperturbed ] );
      ( "engine",
        [ tc "faulted trials safe" `Quick test_engine_faulted_trials_stay_safe;
          tc "quarantine" `Quick test_engine_quarantine;
          tc "stop flushes partial" `Quick test_engine_stop_flushes_partial ] ) ]
