; conrat counterexample artifact (replay with `conrat check --replay ratifier_await_ack.counterexample.sexp`)
(counterexample
 (schema 1)
 (checker ratifier_await_ack)
 (n 2)
 (inputs 1 1)
 (max-depth 40)
 (cheap-collect false)
 (path
  1
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  0
  1)
 (reason "acceptance: all inputs 1 but surviving p1 output (false, 1)")
 (faults crash:f=1)
 (trace
  ((0 1 (read 0) false ())
   (1 0 (write 0 1) true ())
   (2 0 (read 1) false ())
   (3 0 (read 1) false ())
   (4 0 (read 1) false ())
   (5 0 (read 1) false ())
   (6 0 (read 1) false ())
   (7 0 (read 1) false ())
   (8 0 (read 1) false ())
   (9 0 (read 1) false ())
   (10 0 (read 1) false ())
   (11 0 (read 1) false ())
   (12 0 (read 1) false ())
   (13 0 (read 1) false ())
   (14 0 (read 1) false ())
   (15 0 (read 1) false ())
   (16 0 (read 1) false ())
   (17 0 (read 1) false ())
   (18 0 (read 1) false ())
   (19 0 (read 1) false ())
   (20 0 (read 1) false ())
   (21 0 (read 1) false ())
   (22 0 (read 1) false ())
   (23 0 (read 1) false ())
   (24 0 (read 1) false ())
   (25 0 (read 1) false ())
   (26 0 (read 1) false ())
   (27 0 (read 1) false ())
   (28 0 (read 1) false ())
   (29 0 (read 1) false ())
   (30 0 (read 1) false ())
   (31 0 (read 1) false ())
   (32 0 (read 1) false ())
   (33 0 (read 1) false ())
   (34 0 (read 1) false ())
   (35 0 (read 1) false ())
   (36 0 (read 1) false ())
   (37 0 (read 1) false ())
   (38 0 (read 1) false ())
   (39 0 crash))))
