(* Differential tests: the compiled flat-instruction VM vs the tree
   interpreter.

   The Machine façade runs either program engine (Machine.engine); the
   refactor's correctness contract is that everything observable —
   traces, sink event streams, metrics, outputs, crash sets, branch
   records, leaf order and statistics of all three explorers — is
   bit-identical under both.  This file checks that contract
   differentially: every registry config (including the expected-fail
   demos) × random schedules × random fault models, plus the stateful
   explorer, POR and naive enumerators leaf for leaf, the Monte Carlo
   scheduler under randomized adversaries, cross-engine checkpoint
   resume, and byte-identity of the committed counterexample
   fixtures. *)

open Conrat_sim
open Conrat_verify

let checkb = Alcotest.check Alcotest.bool
let tc = Alcotest.test_case

let config name =
  match Checks.find name with
  | Some c -> c
  | None -> Alcotest.failf "no checker config named %s" name

(* Registry configs plus the expected-fail demos: the differential does
   not care whether the property holds, only that both engines see the
   identical execution, so broken protocols are test vectors too. *)
let all_configs = Checks.all @ Checks.demos

(* ------------------------------------------------------------------ *)
(* Recording sink: the full observability event stream as data         *)
(* ------------------------------------------------------------------ *)

type ev =
  | Ev_op of int * int * Op.kind * Memory.loc * bool * string option
  | Ev_decide of int * int
  | Ev_crash of int * int
  | Ev_snapshot of int
  | Ev_restore of int

let recording_sink events =
  Sink.make
    ~on_op:(fun ~step ~pid ~kind ~loc ~landed ~stage ->
      events := Ev_op (step, pid, kind, loc, landed, stage) :: !events)
    ~on_decide:(fun ~step ~pid -> events := Ev_decide (step, pid) :: !events)
    ~on_crash:(fun ~step ~pid -> events := Ev_crash (step, pid) :: !events)
    ~on_snapshot:(fun ~step -> events := Ev_snapshot step :: !events)
    ~on_restore:(fun ~step -> events := Ev_restore step :: !events)
    ()

(* ------------------------------------------------------------------ *)
(* run_path: random schedules × random fault models (qcheck)           *)
(* ------------------------------------------------------------------ *)

let qcheck_run_path_differential =
  let gen =
    QCheck.Gen.(
      pair
        (quad
           (int_bound (List.length all_configs - 1))
           (list_size (int_bound 80) (int_bound 12))
           (int_bound 2)
           bool)
        (int_bound 2))
  in
  let print ((i, path, crashes, weak), recoveries) =
    Printf.sprintf "%s path=[%s] crashes=%d recoveries=%d weak=%b"
      (List.nth all_configs i).Checks.name
      (String.concat ";" (List.map string_of_int path))
      crashes recoveries weak
  in
  QCheck.Test.make ~count:300
    ~name:"run_path: vm = tree (trace, sink events, outputs, branches)"
    (QCheck.make ~print gen)
    (fun (((i, path, crashes, weak), recoveries) as case) ->
      let c0 = List.nth all_configs i in
      (* A recovery budget is only constructible on top of a crash
         budget; clamp instead of discarding so every draw tests. *)
      let recoveries = if crashes = 0 then 0 else recoveries in
      let faults = Fault.model ~crashes ~recoveries ~weak_reads:weak () in
      let c = { c0 with Checks.faults } in
      (* Fault injection can break a protocol's internal assumptions
         (e.g. a stale read of a process's own slot trips an assert in
         the fallback).  That is a property of the protocol under the
         fault model, not of the engine — so the differential compares
         the exception (and the event stream up to it) too. *)
      let run engine =
        let events = ref [] in
        let r =
          try
            Ok
              (Explore.run_path ~engine ~record:true
                 ~max_depth:c.Checks.max_depth
                 ~cheap_collect:c.Checks.cheap_collect ~faults
                 ~sink:(recording_sink events) ~n:c.Checks.n
                 ~setup:(Checks.setup_of c ~n:c.Checks.n)
                 path)
          with e -> Error (Printexc.to_string e)
        in
        (r, List.rev !events)
      in
      let (a, ea) = run `Vm in
      let (b, eb) = run `Tree in
      let agree =
        ea = eb
        &&
        match (a, b) with
        | Error ma, Error mb -> ma = mb
        | Ok a, Ok b ->
          (match (a.Explore.trace, b.Explore.trace) with
           | Some ta, Some tb -> Trace.equal ta tb
           | _ -> false)
          && a.Explore.outputs = b.Explore.outputs
          && a.Explore.completed = b.Explore.completed
          && a.Explore.crashed = b.Explore.crashed
          && a.Explore.branches = b.Explore.branches
          && a.Explore.steps = b.Explore.steps
        | Ok _, Error _ | Error _, Ok _ -> false
      in
      if not agree then
        QCheck.Test.fail_reportf "%s: vm and tree executions diverge"
          (print case)
      else true)

(* ------------------------------------------------------------------ *)
(* Explorers: identical leaf sequences and statistics                  *)
(* ------------------------------------------------------------------ *)

(* A leaf is (complete?, outputs, crash set); comparing the sequences
   (not just the sets) pins the traversal order, which the committed
   checkpoints and BENCH_VERIFY statistics depend on.  The run cap
   keeps big configs cheap — identical traversal means the capped
   prefixes coincide leaf for leaf, exhausted flag included. *)
let explore_leaves engine (c : Checks.t) ~max_runs =
  let acc = ref [] in
  let result =
    Explore.explore ~engine ~max_depth:c.Checks.max_depth ~max_runs
      ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
      ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(fun ~complete outputs ->
        acc := (complete, Array.copy outputs) :: !acc;
        Ok ())
      ()
  in
  (result, List.rev !acc)

let test_explore_leaf_differential name () =
  let c = config name in
  let a = explore_leaves `Vm c ~max_runs:5_000 in
  let b = explore_leaves `Tree c ~max_runs:5_000 in
  checkb (name ^ ": explore leaf sequences and stats agree") true (a = b)

let por_leaves engine (c : Checks.t) ~max_runs =
  let acc = ref [] in
  let result =
    Por.explore ~engine ~max_depth:c.Checks.max_depth ~max_runs
      ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
      ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(fun ~complete outputs ->
        acc := (complete, Array.copy outputs) :: !acc;
        Ok ())
      ()
  in
  (result, List.rev !acc)

let test_por_leaf_differential (c : Checks.t) () =
  let a = por_leaves `Vm c ~max_runs:3_000 in
  let b = por_leaves `Tree c ~max_runs:3_000 in
  checkb (c.Checks.name ^ ": por leaf sequences and stats agree") true (a = b)

let naive_leaves engine (c : Checks.t) ~max_runs =
  let acc = ref [] in
  let result =
    Naive.explore ~engine ~max_depth:c.Checks.max_depth ~max_runs
      ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
      ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(fun ~complete outputs ->
        acc := (complete, Array.copy outputs) :: !acc;
        Ok ())
      ()
  in
  (result, List.rev !acc)

let test_naive_leaf_differential (c : Checks.t) () =
  let a = naive_leaves `Vm c ~max_runs:300 in
  let b = naive_leaves `Tree c ~max_runs:300 in
  checkb (c.Checks.name ^ ": naive leaf sequences and stats agree") true (a = b)

(* The built-in triple differential: naive vs POR outcome sets AND the
   POR search repeated under the other program engine. *)
let test_cross_check_engines name () =
  match Checks.cross_check ~max_runs:100_000 (config name) with
  | Ok x ->
    checkb (name ^ ": naive and por outcome sets agree") true
      x.Checks.outcomes_agree;
    checkb (name ^ ": vm and tree engines agree") true x.Checks.engines_agree
  | Error e -> Alcotest.failf "%s: cross_check violation: %s" name e

(* ------------------------------------------------------------------ *)
(* Monte Carlo scheduler: trace, metrics and work identical (qcheck)   *)
(* ------------------------------------------------------------------ *)

let qcheck_scheduler_differential =
  let adversaries =
    [| Adversary.round_robin; Adversary.random_uniform; Adversary.write_stalker |]
  in
  QCheck.Test.make ~count:120
    ~name:"scheduler: vm = tree (trace, outputs, metrics)"
    QCheck.(triple (int_range 1 5) (int_range 0 1_000_000) (int_range 0 2))
    (fun (n, seed, adv) ->
      let adversary = adversaries.(adv) in
      let protocol = Conrat_core.Consensus.standard ~m:2 in
      let inputs = Array.init n (fun pid -> pid mod 2) in
      let run engine =
        let memory = Memory.create () in
        let instance = protocol.Conrat_core.Consensus.instantiate ~n memory in
        Scheduler.run ~engine ~record:true ~max_steps:100_000 ~n ~adversary
          ~rng:(Rng.create seed) ~memory (fun ~pid ~rng ->
            instance.Conrat_core.Consensus.decide ~pid ~rng inputs.(pid))
      in
      let a = run `Vm in
      let b = run `Tree in
      let traces_equal =
        match (a.Scheduler.trace, b.Scheduler.trace) with
        | Some ta, Some tb -> Trace.equal ta tb
        | _ -> false
      in
      if
        not
          (traces_equal
          && a.Scheduler.outputs = b.Scheduler.outputs
          && a.Scheduler.completed = b.Scheduler.completed
          && a.Scheduler.steps = b.Scheduler.steps
          && a.Scheduler.registers = b.Scheduler.registers
          && Metrics.counts_to_array (Metrics.counts a.Scheduler.metrics)
             = Metrics.counts_to_array (Metrics.counts b.Scheduler.metrics)
          && Metrics.individual a.Scheduler.metrics
             = Metrics.individual b.Scheduler.metrics)
      then
        QCheck.Test.fail_reportf
          "scheduler(n=%d, seed=%d, %s): vm and tree diverge" n seed
          adversary.Adversary.name
      else true)

(* ------------------------------------------------------------------ *)
(* Checkpoints round-trip across engines                               *)
(* ------------------------------------------------------------------ *)

(* A checkpoint is a DFS frontier in the path encoding, which both
   engines traverse identically — so a run interrupted under one
   program engine must resume under the other with final statistics
   bit-identical to an uninterrupted run. *)
let test_checkpoint_cross_engine ~from_engine ~to_engine name () =
  let c = config name in
  let explore ?resume ?on_checkpoint ~engine ~max_runs () =
    Por.explore ~engine ~max_depth:c.Checks.max_depth ~max_runs
      ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
      ?resume ?on_checkpoint ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(Checks.check_of c ~n:c.Checks.n)
      ()
  in
  let full =
    match explore ~engine:from_engine ~max_runs:2_000_000 () with
    | Ok s -> s
    | Error (e, _, _) -> Alcotest.failf "%s: unexpected violation: %s" name e
  in
  checkb (name ^ ": uninterrupted run exhausts") true full.Por.exhausted;
  let saved = ref None in
  (match
     explore ~engine:from_engine ~max_runs:40
       ~on_checkpoint:(fun cts -> saved := Some cts)
       ()
   with
   | Ok s -> checkb (name ^ ": interrupted run hit the cap") false s.Por.exhausted
   | Error (e, _, _) -> Alcotest.failf "%s: unexpected violation: %s" name e);
  let resume =
    match !saved with
    | Some cts -> cts
    | None -> Alcotest.failf "%s: no checkpoint was saved" name
  in
  match explore ~engine:to_engine ~resume ~max_runs:2_000_000 () with
  | Ok s ->
    checkb (name ^ ": cross-engine resume = uninterrupted stats") true (s = full)
  | Error (e, _, _) -> Alcotest.failf "%s: resumed run violation: %s" name e

(* ------------------------------------------------------------------ *)
(* Committed fixtures replay byte-identically through the VM           *)
(* ------------------------------------------------------------------ *)

let load_fixture name =
  match Artifact.load (Filename.concat "fixtures" name) with
  | Ok a -> a
  | Error e -> Alcotest.failf "cannot load fixture %s: %s" name e

(* Rebuild the artifact from scratch by re-running its path (through
   the default engine, the VM) and compare the serialized bytes with
   the committed file — reason, trace and float serialization must all
   reproduce exactly. *)
let test_fixture_bytes_identical file () =
  let a = load_fixture file in
  let c = config a.Artifact.checker in
  let rebuilt =
    Artifact.of_failure ~checker:a.Artifact.checker ~n:a.Artifact.n
      ~inputs:a.Artifact.inputs ~max_depth:a.Artifact.max_depth
      ~cheap_collect:a.Artifact.cheap_collect ~faults:a.Artifact.faults
      ~setup:(Checks.setup_of c ~n:a.Artifact.n)
      ~check:(Checks.check_of c ~n:a.Artifact.n)
      a.Artifact.path
  in
  let tmpdir = Filename.temp_file "conrat_vm_fixture" "" in
  Sys.remove tmpdir;
  Sys.mkdir tmpdir 0o700;
  (* The header comment embeds the basename the artifact was saved
     under; the committed fixtures were written by `conrat check` as
     <checker>.counterexample.sexp before being moved into fixtures/. *)
  let tmp =
    Filename.concat tmpdir (a.Artifact.checker ^ ".counterexample.sexp")
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists tmp then Sys.remove tmp;
      Sys.rmdir tmpdir)
    (fun () ->
      Artifact.save tmp rebuilt;
      let bytes f = In_channel.with_open_bin f In_channel.input_all in
      checkb (file ^ ": regenerated bytes = committed bytes") true
        (bytes tmp = bytes (Filename.concat "fixtures" file)))

(* Both engines reproduce the fixture's recorded violation verbatim. *)
let test_fixture_replays_both_engines file () =
  let a = load_fixture file in
  let c = config a.Artifact.checker in
  List.iter
    (fun engine ->
      match Checks.replay ~engine c a with
      | Error reason ->
        checkb (file ^ ": replay reproduces the recorded reason") true
          (reason = a.Artifact.reason)
      | Ok () -> Alcotest.failf "%s: fixture did not reproduce" file)
    [ `Vm; `Tree ]

let fixture_files =
  Sys.readdir "fixtures" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sexp")
  |> List.sort compare

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "conrat vm"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest qcheck_run_path_differential;
          QCheck_alcotest.to_alcotest qcheck_scheduler_differential ] );
      ( "explore",
        List.map
          (fun name -> tc name `Quick (test_explore_leaf_differential name))
          [ "binary_ratifier_n2"; "binary_ratifier_n3";
            "cheap_collect_ratifier_n2"; "conciliator_n2"; "composite_n2";
            "fallback_n2_d28"; "binary_ratifier_n2_f1"; "binary_ratifier_n2_weak";
            "binary_ratifier_rec_n2_f1"; "binary_ratifier_n3_rec" ] );
      ( "por",
        List.map
          (fun c -> tc c.Checks.name `Quick (test_por_leaf_differential c))
          all_configs );
      ( "naive",
        List.map
          (fun c -> tc c.Checks.name `Quick (test_naive_leaf_differential c))
          all_configs );
      ( "cross-check",
        List.map
          (fun name -> tc name `Quick (test_cross_check_engines name))
          [ "binary_ratifier_n2"; "cheap_collect_ratifier_n2";
            "binary_ratifier_n2_f1"; "binary_ratifier_rec_n2_f1" ] );
      ( "checkpoint",
        [ tc "vm save, tree resume" `Quick
            (test_checkpoint_cross_engine ~from_engine:`Vm ~to_engine:`Tree
               "binary_ratifier_n3_f1");
          tc "tree save, vm resume" `Quick
            (test_checkpoint_cross_engine ~from_engine:`Tree ~to_engine:`Vm
               "binary_ratifier_n3_f1") ] );
      ( "fixtures",
        List.concat_map
          (fun file ->
            [ tc (file ^ " bytes") `Quick (test_fixture_bytes_identical file);
              tc (file ^ " replays") `Quick
                (test_fixture_replays_both_engines file) ])
          fixture_files ) ]
