(* Tests for the deciding-object algebra: outputs, factories,
   composition and the §3.2 preservation lemmas as executable
   properties. *)

open Conrat_sim
open Conrat_objects

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let dummy_rng = Rng.create 0

(* Local-computation-only test objects (no shared memory needed). *)

let pure_object name f =
  Deciding.instance name ~space:0 (fun ~pid:_ ~rng:_ v -> Program.return (f v))

let decider value = pure_object "decider" (fun _ -> { Deciding.decide = true; value })
let pass = pure_object "pass" (fun v -> { Deciding.decide = false; value = v })
let scramble = pure_object "scramble" (fun v -> { Deciding.decide = false; value = v + 100 })
let unscramble = pure_object "unscramble" (fun v -> { Deciding.decide = false; value = v - 100 })

let run1 (obj : Deciding.t) v =
  match Program.result (obj.run ~pid:0 ~rng:dummy_rng v) with
  | Some out -> out
  | None -> Alcotest.fail "pure object performed a shared-memory operation"

(* ------------------------------------------------------------------ *)
(* Basic composition semantics                                         *)
(* ------------------------------------------------------------------ *)

let test_pair_first_decides () =
  let out = run1 (Compose.pair (decider 7) scramble) 3 in
  checkb "decided" true out.Deciding.decide;
  checki "first answer is final" 7 out.Deciding.value

let test_pair_continues () =
  let out = run1 (Compose.pair pass (decider 9)) 3 in
  checkb "decided by second" true out.Deciding.decide;
  checki "value" 9 out.Deciding.value

let test_pair_threads_value () =
  let out = run1 (Compose.pair scramble unscramble) 5 in
  checkb "no decision" false out.Deciding.decide;
  checki "scramble then unscramble" 5 out.Deciding.value

let test_seq_empty_is_pass () =
  let out = run1 (Compose.seq []) 11 in
  checkb "no decision" false out.Deciding.decide;
  checki "passthrough" 11 out.Deciding.value

let test_seq_order () =
  (* (scramble; decider 1) decides 1; putting the decider first short-
     circuits: composition is left-to-right, unlike function
     composition (the paper points this out explicitly). *)
  let a = run1 (Compose.seq [ scramble; decider 1 ]) 0 in
  checki "left first" 1 a.Deciding.value;
  let b = run1 (Compose.seq [ decider 1; scramble ]) 0 in
  checki "short circuit" 1 b.Deciding.value

let test_associativity () =
  (* ((X; Y); Z) behaves exactly like (X; (Y; Z)) — §3.2. *)
  let variants =
    [ Compose.pair (Compose.pair scramble unscramble) (decider 5);
      Compose.pair scramble (Compose.pair unscramble (decider 5)) ]
  in
  List.iter
    (fun obj ->
      let out = run1 obj 2 in
      checkb "decide" true out.Deciding.decide;
      checki "value" 5 out.Deciding.value)
    variants

let qcheck_associativity =
  (* Random triples of pure objects, random inputs: both parse trees
     agree on (decide, value). *)
  let arbitrary_pure =
    QCheck.map
      (fun (kind, k) ->
        match kind mod 4 with
        | 0 -> pure_object "add" (fun v -> { Deciding.decide = false; value = v + k })
        | 1 -> pure_object "dec" (fun _ -> { Deciding.decide = true; value = k })
        | 2 -> pass
        | _ -> pure_object "neg" (fun v -> { Deciding.decide = false; value = -v }))
      QCheck.(pair small_int small_int)
  in
  QCheck.Test.make ~name:"composition associativity (random pure objects)" ~count:200
    QCheck.(pair (triple arbitrary_pure arbitrary_pure arbitrary_pure) small_int)
    (fun ((x, y, z), v) ->
      let left = run1 (Compose.pair (Compose.pair x y) z) v in
      let right = run1 (Compose.pair x (Compose.pair y z)) v in
      left = right)

(* ------------------------------------------------------------------ *)
(* Preservation lemmas (Lemmas 1-3) as executable properties           *)
(* ------------------------------------------------------------------ *)

(* Run a deciding object standalone under the scheduler and check a
   property of inputs/outputs over many seeds. *)
let run_object ~n ~inputs ~seed factory =
  let rng = Rng.create seed in
  let memory = Memory.create () in
  let instance = factory.Deciding.instantiate ~n memory in
  let result =
    Scheduler.run ~n ~adversary:Adversary.random_uniform ~rng ~memory
      (fun ~pid ~rng ->
        Program.map
          (fun out -> (out.Deciding.decide, out.Deciding.value))
          (instance.Deciding.run ~pid ~rng inputs.(pid)))
  in
  result.outputs

(* The conciliator and ratifier are weak consensus objects; their
   composition must preserve validity and coherence (Corollary 4). *)
let composed_factory () =
  Compose.seq_factory
    [ Conrat_core.Conciliator.impatient_first_mover ();
      Conrat_core.Ratifier.binary ();
      Conrat_core.Conciliator.impatient_first_mover ();
      Conrat_core.Ratifier.binary () ]

let qcheck_composition_preserves_weak_consensus =
  QCheck.Test.make
    ~name:"composition preserves validity+coherence (Corollary 4)" ~count:150
    QCheck.(pair (int_range 1 6) (int_range 0 100_000))
    (fun (n, seed) ->
      let inputs = Array.init n (fun pid -> pid mod 2) in
      let outputs = run_object ~n ~inputs ~seed (composed_factory ()) in
      Result.is_ok (Spec.validity_decided ~inputs ~outputs)
      && Result.is_ok (Spec.coherence ~outputs))

let test_copy_object_is_weak_consensus () =
  (* §3: the copying object satisfies validity, termination, coherence
     — and nothing more. *)
  let outputs = run_object ~n:4 ~inputs:[| 3; 1; 4; 1 |] ~seed:0 Deciding.copy_object in
  Alcotest.check
    Alcotest.(array (option (pair bool int)))
    "copies inputs"
    [| Some (false, 3); Some (false, 1); Some (false, 4); Some (false, 1) |]
    outputs

(* ------------------------------------------------------------------ *)
(* lazy_seq                                                            *)
(* ------------------------------------------------------------------ *)

let test_lazy_seq_instantiates_on_demand () =
  let created = ref 0 in
  let nth i =
    Deciding.make_factory (Printf.sprintf "stage%d" i) (fun ~n:_ _memory ->
      incr created;
      pure_object "stage" (fun v ->
        if i >= 3 then { Deciding.decide = true; value = v } else { Deciding.decide = false; value = v + 1 }))
  in
  let factory = Compose.lazy_seq "lazy" nth in
  let outputs = run_object ~n:2 ~inputs:[| 0; 0 |] ~seed:1 factory in
  (* Stages 0,1,2 increment; stage 3 decides: output = 3. *)
  Alcotest.check
    Alcotest.(array (option (pair bool int)))
    "ran four stages" [| Some (true, 3); Some (true, 3) |] outputs;
  checki "exactly four stages created" 4 !created

let test_lazy_seq_shares_instances () =
  (* Both processes must see the same per-stage instance: a stage that
     counts distinct runs proves sharing. *)
  let runs = ref 0 in
  let nth _i =
    Deciding.make_factory "probe" (fun ~n:_ _memory ->
      pure_object "probe" (fun v ->
        incr runs;
        { Deciding.decide = true; value = v }))
  in
  let factory = Compose.lazy_seq "lazy" nth in
  let _ = run_object ~n:3 ~inputs:[| 1; 1; 1 |] ~seed:2 factory in
  checki "one instance, three runs" 3 !runs

(* ------------------------------------------------------------------ *)
(* counting                                                            *)
(* ------------------------------------------------------------------ *)

let test_counting_counts_runs () =
  let count, factory = Deciding.counting Deciding.copy_object in
  let _ = run_object ~n:5 ~inputs:(Array.make 5 0) ~seed:3 factory in
  checki "five entries" 5 (count ());
  let _ = run_object ~n:2 ~inputs:(Array.make 2 0) ~seed:4 factory in
  checki "accumulates across instances" 7 (count ())

let test_counting_preserves_behaviour () =
  let _, factory = Deciding.counting (Conrat_core.Ratifier.binary ()) in
  let outputs = run_object ~n:3 ~inputs:[| 1; 1; 1 |] ~seed:5 factory in
  Alcotest.check
    Alcotest.(array (option (pair bool int)))
    "acceptance unchanged" [| Some (true, 1); Some (true, 1); Some (true, 1) |] outputs

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "objects"
    [ ( "compose",
        [ tc "first decides" `Quick test_pair_first_decides;
          tc "continues" `Quick test_pair_continues;
          tc "threads value" `Quick test_pair_threads_value;
          tc "empty seq" `Quick test_seq_empty_is_pass;
          tc "order" `Quick test_seq_order;
          tc "associativity" `Quick test_associativity;
          QCheck_alcotest.to_alcotest qcheck_associativity ] );
      ( "lemmas",
        [ QCheck_alcotest.to_alcotest qcheck_composition_preserves_weak_consensus;
          tc "copy object" `Quick test_copy_object_is_weak_consensus ] );
      ( "lazy_seq",
        [ tc "instantiates on demand" `Quick test_lazy_seq_instantiates_on_demand;
          tc "shares instances" `Quick test_lazy_seq_shares_instances ] );
      ( "counting",
        [ tc "counts runs" `Quick test_counting_counts_runs;
          tc "preserves behaviour" `Quick test_counting_preserves_behaviour ] ) ]
