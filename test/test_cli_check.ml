(* Black-box tests for the conrat CLI, driven through a real fork/exec
   so exit codes and stderr behave exactly as a shell sees them.
   Invoked by dune as [test_cli_check <path-to-conrat_cli.exe>].

   Covers the `check` subcommand end to end (explore, artifact write,
   replay) and locks in the PR 1 fix: an unknown experiment name must
   exit 2 with a proper message, not escape as an uncaught Not_found. *)

let cli = Sys.argv.(1)

let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL: %s\n%!" msg)
    fmt

let read_file file =
  try In_channel.with_open_text file In_channel.input_all with Sys_error _ -> ""

let tmpdir =
  let dir = Filename.temp_file "conrat_cli_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  dir

(* Run the CLI with [args]; return (exit code, stdout, stderr). *)
let run args =
  let out = Filename.concat tmpdir "stdout" in
  let err = Filename.concat tmpdir "stderr" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote cli) args
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  (code, read_file out, read_file err)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let expect name ~code ?stdout_has ?stderr_has ?stderr_lacks (c, out, err) =
  if c <> code then failf "%s: exit %d, expected %d (stderr: %s)" name c code err;
  Option.iter
    (fun needle ->
      if not (contains ~needle out) then
        failf "%s: stdout missing %S (got: %s)" name needle out)
    stdout_has;
  Option.iter
    (fun needle ->
      if not (contains ~needle err) then
        failf "%s: stderr missing %S (got: %s)" name needle err)
    stderr_has;
  Option.iter
    (fun needle ->
      if contains ~needle err then
        failf "%s: stderr unexpectedly contains %S (got: %s)" name needle err)
    stderr_lacks

(* Minimal recursive-descent JSON validator — enough grammar to assert
   that a whole stdout capture or trace file is one well-formed JSON
   value (objects, arrays, strings with escapes, numbers, literals).
   The toolchain has no JSON library; this is the test-side counterpart
   of the hand-emitted documents. *)
let is_valid_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then incr pos else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> literal ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; members ()
        | Some '}' -> incr pos
        | _ -> fail ()
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; elements ()
        | Some ']' -> incr pos
        | _ -> fail ()
      in
      elements ()
    end
  and string_lit () =
    expect '"';
    let rec chars () =
      if !pos >= n then fail ();
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (if !pos >= n then fail ());
        (match s.[!pos] with
         | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> incr pos
         | 'u' ->
           incr pos;
           for _ = 1 to 4 do
             (if !pos >= n then fail ());
             (match s.[!pos] with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> incr pos
              | _ -> fail ())
           done
         | _ -> fail ());
        chars ()
      | c when Char.code c < 0x20 -> fail ()
      | _ -> incr pos; chars ()
    in
    chars ()
  and literal () =
    let word w =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l else fail ()
    in
    match peek () with
    | Some 't' -> word "true"
    | Some 'f' -> word "false"
    | _ -> word "null"
  and number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let start = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = start then fail ()
    in
    digits ();
    if peek () = Some '.' then (incr pos; digits ());
    (match peek () with
     | Some ('e' | 'E') ->
       incr pos;
       (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
       digits ()
     | _ -> ())
  in
  match value (); skip_ws (); !pos = n with
  | complete -> complete
  | exception Exit -> false

let () =
  (* PR 1 regression: unknown experiment names are a clean usage error,
     not an uncaught exception (which would also exit 2 — hence the
     message checks on both sides). *)
  expect "experiment unknown name" ~code:2
    ~stderr_has:"unknown experiment" ~stderr_lacks:"Not_found"
    (run "experiment definitely_not_an_experiment");

  expect "check unknown name" ~code:2 ~stderr_has:"unknown checker"
    (run "check definitely_not_a_checker");

  expect "check quick config" ~code:0 ~stdout_has:"exhausted"
    (run "check binary_ratifier_n2");

  expect "check cross engine agreement" ~code:0 ~stdout_has:"AGREE"
    (run "check --cross binary_ratifier_n2");

  expect "check naive engine" ~code:0 ~stdout_has:"exhausted"
    (run "check --naive binary_ratifier_n2");

  let artifact = Filename.concat tmpdir "fallback_unstaked_n2.counterexample.sexp" in
  expect "check expected-fail demo" ~code:1 ~stdout_has:"VIOLATION"
    (run (Printf.sprintf "check fallback_unstaked_n2 --artifact-dir %s"
            (Filename.quote tmpdir)));
  if not (Sys.file_exists artifact) then
    failf "demo violation did not write %s" artifact;

  expect "replay written artifact" ~code:0 ~stdout_has:"reproduced"
    (run (Printf.sprintf "check --replay %s" (Filename.quote artifact)));

  expect "replay missing artifact" ~code:2 ~stderr_has:"cannot load"
    (run "check --replay /nonexistent/artifact.sexp");

  (* --json -: the JSON document owns stdout, human lines move to
     stderr, and the capture must parse as one well-formed JSON value. *)
  let code, out, err = run "check binary_ratifier_n2 conciliator_n2 --json -" in
  expect "check --json - runs" ~code:0 ~stderr_has:"exhausted" (code, out, err);
  if not (is_valid_json out) then
    failf "check --json -: stdout is not a single JSON document (got: %s)" out;
  if not (contains ~needle:"\"kind\": \"verify-bench\"" out) then
    failf "check --json -: document kind missing (got: %s)" out;
  if not (contains ~needle:"conciliator_n2" err) then
    failf "check --json -: per-config report missing from stderr (got: %s)" err;

  (* --quiet: success says nothing on stdout; failures still exit 1. *)
  let code, out, err = run "check --quiet binary_ratifier_n2" in
  expect "check --quiet" ~code:0 (code, out, err);
  if String.trim out <> "" then failf "check --quiet: stdout not empty (got: %s)" out;
  expect "check --quiet still fails loudly" ~code:1 ~stdout_has:"VIOLATION"
    (run (Printf.sprintf "check --quiet fallback_unstaked_n2 --artifact-dir %s"
            (Filename.quote tmpdir)));

  (* trace: a Perfetto-loadable Chrome trace-event document. *)
  let trace_file = Filename.concat tmpdir "trace.json" in
  let code, out, err =
    run (Printf.sprintf "trace composite_n2 --out %s" (Filename.quote trace_file))
  in
  expect "trace writes a file" ~code:0 ~stderr_has:"trace events" (code, out, err);
  if String.trim out <> "" then failf "trace: stdout not clean (got: %s)" out;
  let doc = read_file trace_file in
  if not (is_valid_json doc) then
    failf "trace: %s is not valid JSON (got: %s)" trace_file doc;
  if not (contains ~needle:"\"traceEvents\"" doc) then
    failf "trace: missing traceEvents key (got: %s)" doc;
  if not (contains ~needle:"\"ph\":\"B\"" doc) then
    failf "trace: composite run produced no stage spans (got: %s)" doc;

  let code, out, err = run "trace conciliator_n2 --out -" in
  expect "trace to stdout" ~code:0 (code, out, err);
  if not (is_valid_json out) then
    failf "trace --out -: stdout is not valid JSON (got: %s)" out;

  expect "trace unknown name" ~code:2 ~stderr_has:"unknown checker"
    (run "trace definitely_not_a_checker --out -");

  if !failures > 0 then begin
    Printf.eprintf "%d CLI test(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "cli check tests: ok"
