(* Black-box tests for the conrat CLI, driven through a real fork/exec
   so exit codes and stderr behave exactly as a shell sees them.
   Invoked by dune as [test_cli_check <path-to-conrat_cli.exe>].

   Covers the `check` subcommand end to end (explore, artifact write,
   replay) and locks in the PR 1 fix: an unknown experiment name must
   exit 2 with a proper message, not escape as an uncaught Not_found. *)

let cli = Sys.argv.(1)

let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL: %s\n%!" msg)
    fmt

let read_file file =
  try In_channel.with_open_text file In_channel.input_all with Sys_error _ -> ""

let tmpdir =
  let dir = Filename.temp_file "conrat_cli_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  dir

(* Run the CLI with [args]; return (exit code, stdout, stderr). *)
let run args =
  let out = Filename.concat tmpdir "stdout" in
  let err = Filename.concat tmpdir "stderr" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote cli) args
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  (code, read_file out, read_file err)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let expect name ~code ?stdout_has ?stderr_has ?stderr_lacks (c, out, err) =
  if c <> code then failf "%s: exit %d, expected %d (stderr: %s)" name c code err;
  Option.iter
    (fun needle ->
      if not (contains ~needle out) then
        failf "%s: stdout missing %S (got: %s)" name needle out)
    stdout_has;
  Option.iter
    (fun needle ->
      if not (contains ~needle err) then
        failf "%s: stderr missing %S (got: %s)" name needle err)
    stderr_has;
  Option.iter
    (fun needle ->
      if contains ~needle err then
        failf "%s: stderr unexpectedly contains %S (got: %s)" name needle err)
    stderr_lacks

(* Minimal recursive-descent JSON validator — enough grammar to assert
   that a whole stdout capture or trace file is one well-formed JSON
   value (objects, arrays, strings with escapes, numbers, literals).
   The toolchain has no JSON library; this is the test-side counterpart
   of the hand-emitted documents. *)
let is_valid_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then incr pos else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> literal ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; members ()
        | Some '}' -> incr pos
        | _ -> fail ()
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; elements ()
        | Some ']' -> incr pos
        | _ -> fail ()
      in
      elements ()
    end
  and string_lit () =
    expect '"';
    let rec chars () =
      if !pos >= n then fail ();
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (if !pos >= n then fail ());
        (match s.[!pos] with
         | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> incr pos
         | 'u' ->
           incr pos;
           for _ = 1 to 4 do
             (if !pos >= n then fail ());
             (match s.[!pos] with
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> incr pos
              | _ -> fail ())
           done
         | _ -> fail ());
        chars ()
      | c when Char.code c < 0x20 -> fail ()
      | _ -> incr pos; chars ()
    in
    chars ()
  and literal () =
    let word w =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l else fail ()
    in
    match peek () with
    | Some 't' -> word "true"
    | Some 'f' -> word "false"
    | _ -> word "null"
  and number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let start = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      if !pos = start then fail ()
    in
    digits ();
    if peek () = Some '.' then (incr pos; digits ());
    (match peek () with
     | Some ('e' | 'E') ->
       incr pos;
       (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
       digits ()
     | _ -> ())
  in
  match value (); skip_ws (); !pos = n with
  | complete -> complete
  | exception Exit -> false

let () =
  (* PR 1 regression: unknown experiment names are a clean usage error,
     not an uncaught exception (which would also exit 2 — hence the
     message checks on both sides). *)
  expect "experiment unknown name" ~code:2
    ~stderr_has:"unknown experiment" ~stderr_lacks:"Not_found"
    (run "experiment definitely_not_an_experiment");

  expect "check unknown name" ~code:2 ~stderr_has:"unknown checker"
    (run "check definitely_not_a_checker");

  expect "check quick config" ~code:0 ~stdout_has:"exhausted"
    (run "check binary_ratifier_n2");

  expect "check cross engine agreement" ~code:0 ~stdout_has:"AGREE"
    (run "check --cross binary_ratifier_n2");

  expect "check naive engine" ~code:0 ~stdout_has:"exhausted"
    (run "check --naive binary_ratifier_n2");

  let artifact = Filename.concat tmpdir "fallback_unstaked_n2.counterexample.sexp" in
  expect "check expected-fail demo" ~code:1 ~stdout_has:"VIOLATION"
    (run (Printf.sprintf "check fallback_unstaked_n2 --artifact-dir %s"
            (Filename.quote tmpdir)));
  if not (Sys.file_exists artifact) then
    failf "demo violation did not write %s" artifact;

  expect "replay written artifact" ~code:0 ~stdout_has:"reproduced"
    (run (Printf.sprintf "check --replay %s" (Filename.quote artifact)));

  expect "replay missing artifact" ~code:2 ~stderr_has:"cannot load"
    (run "check --replay /nonexistent/artifact.sexp");

  (* --json -: the JSON document owns stdout, human lines move to
     stderr, and the capture must parse as one well-formed JSON value. *)
  let code, out, err = run "check binary_ratifier_n2 conciliator_n2 --json -" in
  expect "check --json - runs" ~code:0 ~stderr_has:"exhausted" (code, out, err);
  if not (is_valid_json out) then
    failf "check --json -: stdout is not a single JSON document (got: %s)" out;
  if not (contains ~needle:"\"kind\": \"verify-bench\"" out) then
    failf "check --json -: document kind missing (got: %s)" out;
  if not (contains ~needle:"conciliator_n2" err) then
    failf "check --json -: per-config report missing from stderr (got: %s)" err;

  (* --quiet: success says nothing on stdout; failures still exit 1. *)
  let code, out, err = run "check --quiet binary_ratifier_n2" in
  expect "check --quiet" ~code:0 (code, out, err);
  if String.trim out <> "" then failf "check --quiet: stdout not empty (got: %s)" out;
  expect "check --quiet still fails loudly" ~code:1 ~stdout_has:"VIOLATION"
    (run (Printf.sprintf "check --quiet fallback_unstaked_n2 --artifact-dir %s"
            (Filename.quote tmpdir)));

  (* trace: a Perfetto-loadable Chrome trace-event document. *)
  let trace_file = Filename.concat tmpdir "trace.json" in
  let code, out, err =
    run (Printf.sprintf "trace composite_n2 --out %s" (Filename.quote trace_file))
  in
  expect "trace writes a file" ~code:0 ~stderr_has:"trace events" (code, out, err);
  if String.trim out <> "" then failf "trace: stdout not clean (got: %s)" out;
  let doc = read_file trace_file in
  if not (is_valid_json doc) then
    failf "trace: %s is not valid JSON (got: %s)" trace_file doc;
  if not (contains ~needle:"\"traceEvents\"" doc) then
    failf "trace: missing traceEvents key (got: %s)" doc;
  if not (contains ~needle:"\"ph\":\"B\"" doc) then
    failf "trace: composite run produced no stage spans (got: %s)" doc;

  let code, out, err = run "trace conciliator_n2 --out -" in
  expect "trace to stdout" ~code:0 (code, out, err);
  if not (is_valid_json out) then
    failf "trace --out -: stdout is not valid JSON (got: %s)" out;

  expect "trace unknown name" ~code:2 ~stderr_has:"unknown checker"
    (run "trace definitely_not_a_checker --out -");

  (* ---- fault plane ------------------------------------------------ *)

  expect "check --faults override" ~code:0 ~stdout_has:"exhausted"
    (run "check --faults crash:f=1 binary_ratifier_n2");

  expect "check --faults bad spec" ~code:2 ~stderr_has:"bad --faults"
    (run "check --faults bogus binary_ratifier_n2");

  expect "crash-closed registry config" ~code:0 ~stdout_has:"exhausted"
    (run "check binary_ratifier_n3_f2");

  (* the crash-unsafe demo is caught, shrunk, and its artifact replays *)
  let aa_artifact = Filename.concat tmpdir "ratifier_await_ack.counterexample.sexp" in
  expect "await_ack demo caught" ~code:1 ~stdout_has:"VIOLATION"
    (run (Printf.sprintf "check ratifier_await_ack --artifact-dir %s"
            (Filename.quote tmpdir)));
  if not (Sys.file_exists aa_artifact) then
    failf "await_ack violation did not write %s" aa_artifact;
  expect "await_ack artifact replays" ~code:0 ~stdout_has:"reproduced"
    (run (Printf.sprintf "check --replay %s" (Filename.quote aa_artifact)));

  (* ---- crash-recovery plane --------------------------------------- *)

  (* recover without a crash budget is contradictory: exit 2 with the
     spec-specific diagnosis, not the generic bad-spec message *)
  expect "check --faults recover without crash" ~code:2
    ~stderr_has:"recover needs a crash budget"
    (run "check --faults recover binary_ratifier_n2");

  expect "check --faults crash+recover override" ~code:0 ~stdout_has:"exhausted"
    (run "check --faults crash:f=1,recover binary_ratifier_rec_n2_f1");

  expect "recovery-closed registry config" ~code:0 ~stdout_has:"exhausted"
    (run "check binary_ratifier_rec_n3_f1");

  (* the recovery-unsafe demo is caught, shrunk, and its artifact replays *)
  let rec_artifact =
    Filename.concat tmpdir "binary_ratifier_n3_rec.counterexample.sexp"
  in
  expect "recovery demo caught" ~code:1 ~stdout_has:"VIOLATION"
    (run (Printf.sprintf "check binary_ratifier_n3_rec --artifact-dir %s"
            (Filename.quote tmpdir)));
  if not (Sys.file_exists rec_artifact) then
    failf "recovery demo violation did not write %s" rec_artifact;
  expect "recovery artifact replays" ~code:0 ~stdout_has:"reproduced"
    (run (Printf.sprintf "check --replay %s" (Filename.quote rec_artifact)));

  (* ---- malformed artifacts never escape as backtraces ------------- *)

  let replace ~sub ~by s =
    let sl = String.length sub in
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      if
        !i + sl <= String.length s
        && String.sub s !i sl = sub
      then begin
        Buffer.add_string b by;
        i := !i + sl
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  in
  let write_file file contents =
    Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc contents)
  in
  let fixture = read_file (Filename.concat "fixtures" "ratifier_await_ack.sexp") in
  if fixture = "" then failf "fixture ratifier_await_ack.sexp missing from test cwd";

  let truncated = Filename.concat tmpdir "truncated.sexp" in
  write_file truncated (String.sub fixture 0 (String.length fixture / 2));
  expect "replay truncated artifact" ~code:2 ~stderr_has:"cannot load"
    (run (Printf.sprintf "check --replay %s" (Filename.quote truncated)));

  let garbage = Filename.concat tmpdir "garbage.sexp" in
  write_file garbage "this is ( not an artifact";
  expect "replay garbage artifact" ~code:2 ~stderr_has:"cannot load"
    (run (Printf.sprintf "check --replay %s" (Filename.quote garbage)));

  (* parses fine but lies about n: re-execution would blow up in
     Array.sub; the CLI must catch it and exit 2 with one line *)
  let oversized = Filename.concat tmpdir "oversized.sexp" in
  write_file oversized
    (replace ~sub:"(n 2)" ~by:"(n 9)"
       (replace ~sub:"(inputs 1 1)" ~by:"(inputs 1 1 1 1 1 1 1 1 1)" fixture));
  let code, _out, err =
    run (Printf.sprintf "check --replay %s" (Filename.quote oversized))
  in
  expect "replay oversized-n artifact" ~code:2 ~stderr_has:"not replayable"
    (code, _out, err);
  if String.length (String.trim err) > 0
     && List.length (String.split_on_char '\n' (String.trim err)) > 1
  then failf "oversized replay: diagnostic is not one line (got: %s)" err;

  (* ---- checkpoint / resume ---------------------------------------- *)

  let ck = Filename.concat tmpdir "ck.sexp" in
  expect "checkpointed partial run" ~code:0 ~stdout_has:"run budget exceeded"
    (run (Printf.sprintf "check --checkpoint %s --max-runs 100 binary_ratifier_n3_f1"
            (Filename.quote ck)));
  if not (Sys.file_exists ck) then failf "checkpoint file not written";
  (* resume completes with totals bit-identical to the uninterrupted run *)
  let _, full_out, _ = run "check binary_ratifier_n3_f1" in
  let code, resumed_out, err =
    run (Printf.sprintf "check --resume %s binary_ratifier_n3_f1" (Filename.quote ck))
  in
  expect "resumed run exhausts" ~code:0 ~stdout_has:"exhausted"
    (code, resumed_out, err);
  let stats_of s =
    (* strip the trailing "(0.0s)" timing, which may legitimately differ *)
    match String.index_opt s '(' with
    | Some i when i > 0 && String.length s > 2 && s.[i + 1] <> 'c' ->
      String.trim (String.sub s 0 i)
    | _ -> String.trim s
  in
  if stats_of full_out <> stats_of resumed_out then
    failf "resume not bit-identical: %S vs %S" (stats_of full_out)
      (stats_of resumed_out);

  expect "resume engine mismatch" ~code:2 ~stderr_has:"engine"
    (run (Printf.sprintf "check --naive --resume %s binary_ratifier_n3_f1"
            (Filename.quote ck)));
  expect "checkpoint with --cross" ~code:2 ~stderr_has:"--cross"
    (run (Printf.sprintf "check --cross --checkpoint %s binary_ratifier_n2"
            (Filename.quote ck)));
  expect "checkpoint needs one name" ~code:2 ~stderr_has:"exactly one"
    (run (Printf.sprintf "check --checkpoint %s binary_ratifier_n2 binary_ratifier_n3"
            (Filename.quote ck)));
  expect "resume missing file" ~code:2 ~stderr_has:"cannot load checkpoint"
    (run "check --resume /nonexistent/ck.sexp binary_ratifier_n2");

  (* ---- program engine (vm vs tree) -------------------------------- *)

  expect "check --engine tree" ~code:0 ~stdout_has:"exhausted"
    (run "check --engine tree binary_ratifier_n2");
  expect "check --engine bad value" ~code:2 ~stderr_has:"bad --engine"
    (run "check --engine bogus binary_ratifier_n2");

  (* the two program engines report bit-identical statistics *)
  let _, tree_out, _ = run "check --engine tree binary_ratifier_n3_f1" in
  if stats_of full_out <> stats_of tree_out then
    failf "program engines not bit-identical: %S vs %S" (stats_of full_out)
      (stats_of tree_out);

  (* an artifact found under the vm replays under the tree oracle *)
  expect "replay artifact under tree engine" ~code:0 ~stdout_has:"reproduced"
    (run (Printf.sprintf "check --engine tree --replay %s"
            (Filename.quote artifact)));

  (* --json rows carry the program engine alongside the algorithm *)
  let code, out, _ = run "check --engine tree binary_ratifier_n2 --json -" in
  expect "check --json exec_engine runs" ~code:0 (code, out, "");
  if not (contains ~needle:"\"exec_engine\":\"tree\"" out) then
    failf "check --json: exec_engine field missing (got: %s)" out;
  let code, out, _ = run "check binary_ratifier_n2 --json -" in
  expect "check --json default engine runs" ~code:0 (code, out, "");
  if not (contains ~needle:"\"exec_engine\":\"vm\"" out) then
    failf "check --json: default exec_engine not vm (got: %s)" out;

  (* ---- sweep: faults + JSON + SIGINT ------------------------------ *)

  let code, out, _ = run "sweep -n 3 -t 25 --faults crash:f=1 --json -" in
  expect "sweep --json - runs" ~code:0 (code, out, "");
  if not (is_valid_json out) then
    failf "sweep --json -: stdout is not one JSON document (got: %s)" out;
  if not (contains ~needle:"\"kind\": \"sweep\"" out) then
    failf "sweep --json -: kind missing (got: %s)" out;
  if not (contains ~needle:"\"faults\": \"crash:f=1\"" out) then
    failf "sweep --json -: fault spec not echoed (got: %s)" out;

  expect "sweep --faults bad spec" ~code:2 ~stderr_has:"bad --faults"
    (run "sweep --faults bogus -t 5");

  (* recovery sweep: the JSON document surfaces the recover and
     degraded-override totals so silent downgrades are visible *)
  let code, out, _ = run "sweep -n 3 -t 25 --faults crash:f=1,recover --json -" in
  expect "sweep --json - recovery runs" ~code:0 (code, out, "");
  if not (is_valid_json out) then
    failf "recovery sweep --json -: stdout is not one JSON document (got: %s)" out;
  if not (contains ~needle:"\"faults\": \"crash:f=1,recover:r=1\"" out) then
    failf "recovery sweep --json -: fault spec not echoed (got: %s)" out;
  if not (contains ~needle:"\"recover_total\"" out) then
    failf "recovery sweep --json -: recover_total missing (got: %s)" out;
  if not (contains ~needle:"\"plan_overrides_ignored\"" out) then
    failf "recovery sweep --json -: plan_overrides_ignored missing (got: %s)" out;

  (* SIGINT mid-sweep: partial JSON still lands, well-formed, exit 130 *)
  let sweep_json = Filename.concat tmpdir "sweep.json" in
  let out = Filename.concat tmpdir "stdout" in
  let err = Filename.concat tmpdir "stderr" in
  let code =
    Sys.command
      (Printf.sprintf
         "%s sweep -n 3 -t 100000 --json %s > %s 2> %s & pid=$!; \
          sleep 1; kill -INT $pid 2>/dev/null; wait $pid"
         (Filename.quote cli) (Filename.quote sweep_json) (Filename.quote out)
         (Filename.quote err))
  in
  if code <> 130 then failf "interrupted sweep: exit %d, expected 130" code;
  let doc = read_file sweep_json in
  if not (is_valid_json doc) then
    failf "interrupted sweep: JSON not well-formed (got: %s)" doc;
  if not (contains ~needle:"\"interrupted\": true" doc) then
    failf "interrupted sweep: flag missing (got: %s)" doc;

  (* SIGINT mid-check: checkpoint + partial JSON flushed, exit 130 *)
  let sig_ck = Filename.concat tmpdir "sig_ck.sexp" in
  let sig_json = Filename.concat tmpdir "sig.json" in
  let code =
    Sys.command
      (Printf.sprintf
         "%s check --checkpoint %s --json %s fallback_n2_d34 > %s 2> %s & \
          pid=$!; sleep 1; kill -INT $pid 2>/dev/null; wait $pid"
         (Filename.quote cli) (Filename.quote sig_ck) (Filename.quote sig_json)
         (Filename.quote out) (Filename.quote err))
  in
  if code <> 130 then failf "interrupted check: exit %d, expected 130" code;
  if not (Sys.file_exists sig_ck) then
    failf "interrupted check: checkpoint not written";
  if not (is_valid_json (read_file sig_json)) then
    failf "interrupted check: JSON not well-formed (got: %s)" (read_file sig_json);

  (* per-config --timeout stops cleanly and still exits 0 *)
  expect "check --timeout" ~code:0 ~stdout_has:"BUDGET EXCEEDED"
    (run "check --timeout 0.01 fallback_n2_d34");

  if !failures > 0 then begin
    Printf.eprintf "%d CLI test(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "cli check tests: ok"
