(* Black-box tests for the conrat CLI, driven through a real fork/exec
   so exit codes and stderr behave exactly as a shell sees them.
   Invoked by dune as [test_cli_check <path-to-conrat_cli.exe>].

   Covers the `check` subcommand end to end (explore, artifact write,
   replay) and locks in the PR 1 fix: an unknown experiment name must
   exit 2 with a proper message, not escape as an uncaught Not_found. *)

let cli = Sys.argv.(1)

let failures = ref 0

let failf fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL: %s\n%!" msg)
    fmt

let read_file file =
  try In_channel.with_open_text file In_channel.input_all with Sys_error _ -> ""

let tmpdir =
  let dir = Filename.temp_file "conrat_cli_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  dir

(* Run the CLI with [args]; return (exit code, stdout, stderr). *)
let run args =
  let out = Filename.concat tmpdir "stdout" in
  let err = Filename.concat tmpdir "stderr" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote cli) args
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  (code, read_file out, read_file err)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let expect name ~code ?stdout_has ?stderr_has ?stderr_lacks (c, out, err) =
  if c <> code then failf "%s: exit %d, expected %d (stderr: %s)" name c code err;
  Option.iter
    (fun needle ->
      if not (contains ~needle out) then
        failf "%s: stdout missing %S (got: %s)" name needle out)
    stdout_has;
  Option.iter
    (fun needle ->
      if not (contains ~needle err) then
        failf "%s: stderr missing %S (got: %s)" name needle err)
    stderr_has;
  Option.iter
    (fun needle ->
      if contains ~needle err then
        failf "%s: stderr unexpectedly contains %S (got: %s)" name needle err)
    stderr_lacks

let () =
  (* PR 1 regression: unknown experiment names are a clean usage error,
     not an uncaught exception (which would also exit 2 — hence the
     message checks on both sides). *)
  expect "experiment unknown name" ~code:2
    ~stderr_has:"unknown experiment" ~stderr_lacks:"Not_found"
    (run "experiment definitely_not_an_experiment");

  expect "check unknown name" ~code:2 ~stderr_has:"unknown checker"
    (run "check definitely_not_a_checker");

  expect "check quick config" ~code:0 ~stdout_has:"exhausted"
    (run "check binary_ratifier_n2");

  expect "check cross engine agreement" ~code:0 ~stdout_has:"AGREE"
    (run "check --cross binary_ratifier_n2");

  expect "check naive engine" ~code:0 ~stdout_has:"exhausted"
    (run "check --naive binary_ratifier_n2");

  let artifact = Filename.concat tmpdir "fallback_unstaked_n2.counterexample.sexp" in
  expect "check expected-fail demo" ~code:1 ~stdout_has:"VIOLATION"
    (run (Printf.sprintf "check fallback_unstaked_n2 --artifact-dir %s"
            (Filename.quote tmpdir)));
  if not (Sys.file_exists artifact) then
    failf "demo violation did not write %s" artifact;

  expect "replay written artifact" ~code:0 ~stdout_has:"reproduced"
    (run (Printf.sprintf "check --replay %s" (Filename.quote artifact)));

  expect "replay missing artifact" ~code:2 ~stderr_has:"cannot load"
    (run "check --replay /nonexistent/artifact.sexp");

  if !failures > 0 then begin
    Printf.eprintf "%d CLI test(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "cli check tests: ok"
