(* Differential determinism suite for the parallel explorer
   (lib/verify/parallel.ml) and the machinery underneath it: shard
   frontiers, duplicate-state detection, the source-set DPOR oracle and
   the VM state hash.

   The headline properties, each checked over the checker registry:

   - jobs-invariance: Parallel.explore_por at any --jobs reports the
     exact statistics and complete-execution outcome set of the
     sequential search (and Parallel.explore_naive likewise).
   - partition exactness: a generated frontier's residue plus its
     per-shard subtree runs sum to the sequential totals, steps
     included.
   - steal/resume: a shard interrupted mid-subtree and resumed from its
     checkpoint (as a stealing worker would) finishes bit-identically.
   - dedup soundness: duplicate-state suppression never changes the
     outcome set, only the leaf counts.
   - DPOR cross-check: the source-set oracle explores the same outcome
     set as the sleep-set engine and the naive enumerator.
   - hash soundness: machines in equal states hash equal; perturbing a
     pc, a memory cell or a crash bit changes the hash. *)

open Conrat_sim
open Conrat_verify

let check = Alcotest.check
let checkb msg expected actual = check Alcotest.bool msg expected actual
let checki msg expected actual = check Alcotest.int msg expected actual
let tc = Alcotest.test_case

let config name =
  match Checks.find name with
  | Some c -> c
  | None -> Alcotest.failf "no checker config named %s" name

(* The depth-34/40 fallback bounds are the depth-28 machinery with more
   minutes attached; d28 stays in the loop, the big two are covered by
   `make par-verify` / `make bench-gates` wall-clock runs. *)
let heavy = [ "fallback_n2_d34"; "fallback_n2_d40" ]

let configs =
  List.filter (fun c -> not (List.mem c.Checks.name heavy)) Checks.all

(* ------------------------------------------------------------------ *)
(* Outcome-set recording (domain-safe)                                 *)
(* ------------------------------------------------------------------ *)

(* The outputs buffer is reused across leaves and, under a fleet, the
   wrapped check runs on several domains at once — copy under a lock. *)
let outcomes () =
  let tbl = Hashtbl.create 97 in
  let lock = Mutex.create () in
  let wrap inner ~complete outputs =
    if complete then begin
      let key = Array.to_list outputs in
      Mutex.protect lock (fun () -> Hashtbl.replace tbl key ())
    end;
    inner ~complete outputs
  in
  let sorted () =
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
  in
  (wrap, sorted)

let por ?(jobs = 1) ?(dedup = false) c =
  let wrap, sorted = outcomes () in
  match
    Parallel.explore_por ~jobs ~max_depth:c.Checks.max_depth
      ~max_runs:c.Checks.max_runs ~cheap_collect:c.Checks.cheap_collect
      ~faults:c.Checks.faults ~dedup ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(wrap (Checks.check_of c ~n:c.Checks.n))
      ()
  with
  | Ok s -> (s, sorted ())
  | Error (reason, _, _) -> Alcotest.failf "%s violated: %s" c.Checks.name reason

let naive ?(jobs = 1) ?max_runs c =
  let wrap, sorted = outcomes () in
  match
    Parallel.explore_naive ~jobs ~max_depth:c.Checks.max_depth
      ~max_runs:(Option.value max_runs ~default:c.Checks.max_runs)
      ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
      ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(wrap (Checks.check_of c ~n:c.Checks.n))
      ()
  with
  | Ok s -> (s, sorted ())
  | Error (reason, _) -> Alcotest.failf "%s violated: %s" c.Checks.name reason

let dpor c =
  let wrap, sorted = outcomes () in
  match
    Por.explore_source ~max_depth:c.Checks.max_depth ~max_runs:c.Checks.max_runs
      ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults
      ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(wrap (Checks.check_of c ~n:c.Checks.n))
      ()
  with
  | Ok s -> (s, sorted ())
  | Error (reason, _, _) -> Alcotest.failf "%s violated: %s" c.Checks.name reason

(* ------------------------------------------------------------------ *)
(* jobs-invariance                                                     *)
(* ------------------------------------------------------------------ *)

let test_por_jobs_invariant () =
  List.iter
    (fun c ->
      let s1, o1 = por c in
      checkb (c.Checks.name ^ " sequential exhausts") true s1.Por.exhausted;
      List.iter
        (fun jobs ->
          let sj, oj = por ~jobs c in
          checkb
            (Printf.sprintf "%s jobs=%d statistics bit-identical" c.Checks.name
               jobs)
            true (sj = s1);
          checkb
            (Printf.sprintf "%s jobs=%d outcome set identical" c.Checks.name
               jobs)
            true (oj = o1))
        [ 2; 4 ])
    configs

let test_naive_jobs_invariant () =
  (* Naive enumeration re-executes every prefix, so gate the comparison
     to configs whose full naive tree fits a small budget (the heavy
     fallback trees would dominate the suite's wall clock). *)
  let compared = ref 0 in
  List.iter
    (fun c ->
      let s1, o1 = naive ~max_runs:100_000 c in
      if s1.Naive.exhausted then begin
        incr compared;
        let s3, o3 = naive ~jobs:3 c in
        checkb (c.Checks.name ^ " naive jobs=3 statistics bit-identical") true
          (s3 = s1);
        checkb (c.Checks.name ^ " naive jobs=3 outcome set identical") true
          (o3 = o1)
      end)
    configs;
  checkb "the gate left a meaningful sample" true (!compared >= 5)

let test_jobs_exceed_frontier () =
  (* More workers than the tree has shards (here: than it has leaves):
     generation explores everything as residue and the fleet is idle. *)
  let c = config "binary_ratifier_n2" in
  let s1, o1 = por c in
  let s8, o8 = por ~jobs:8 c in
  checkb "jobs=8 on a 6-leaf tree bit-identical" true (s8 = s1 && o8 = o1)

(* ------------------------------------------------------------------ *)
(* Shard partition and steal/resume                                    *)
(* ------------------------------------------------------------------ *)

let explore_shard ?max_runs ?on_checkpoint c resume prefix =
  Por.explore ~max_depth:c.Checks.max_depth
    ~max_runs:(Option.value max_runs ~default:c.Checks.max_runs)
    ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults ~resume
    ~subtree_prefix:prefix ~checkpoint_every:max_int ?on_checkpoint
    ~n:c.Checks.n
    ~setup:(Checks.setup_of c ~n:c.Checks.n)
    ~check:(Checks.check_of c ~n:c.Checks.n)
    ()

let zero_counts path =
  { Checkpoint.path; complete = 0; truncated = 0; pruned = 0; steps = 0 }

let generate c ~target =
  match
    Frontier.generate ~target ~run:(fun ~cut ->
        Por.explore ~max_depth:c.Checks.max_depth ~max_runs:c.Checks.max_runs
          ~cheap_collect:c.Checks.cheap_collect ~faults:c.Checks.faults ~cut
          ~n:c.Checks.n
          ~setup:(Checks.setup_of c ~n:c.Checks.n)
          ~check:(Checks.check_of c ~n:c.Checks.n)
          ())
      ()
  with
  | Ok (residue, shards) -> (residue, shards)
  | Error (reason, _, _) ->
    Alcotest.failf "%s violated during generation: %s" c.Checks.name reason

let add_stats (a : Por.stats) (b : Por.stats) =
  { Por.complete = a.complete + b.complete;
    truncated = a.truncated + b.truncated;
    pruned = a.pruned + b.pruned;
    dedup_hits = a.dedup_hits + b.dedup_hits;
    exhausted = a.exhausted && b.exhausted;
    steps = a.steps + b.steps }

let test_shard_partition_exact () =
  List.iter
    (fun name ->
      let c = config name in
      let seq, _ = por c in
      let residue, shards = generate c ~target:16 in
      let total =
        Array.fold_left
          (fun acc path ->
            match
              explore_shard c (zero_counts path) (List.length path)
            with
            | Ok s -> add_stats acc s
            | Error (reason, _, _) ->
              Alcotest.failf "%s shard violated: %s" name reason)
          residue shards
      in
      checkb (name ^ " residue + shards = sequential, steps included") true
        (total = seq))
    [ "binary_ratifier_n4"; "binary_ratifier_n3_f2"; "conciliator_n2";
      "composite_n2" ]

let test_steal_mid_shard_resume () =
  (* Interrupt a shard on a small budget, hand its checkpoint to a
     "different worker" (a fresh explore call with the same pinned
     prefix), repeat until exhausted: the final statistics must equal
     the uninterrupted shard's.  This is exactly the state a stolen
     shard migrates between domains as. *)
  let c = config "binary_ratifier_n4" in
  let _, shards = generate c ~target:8 in
  checkb "frontier is nontrivial" true (Array.length shards >= 8);
  let segmented = ref 0 in
  Array.iter
    (fun path ->
      let prefix = List.length path in
      let full =
        match explore_shard c (zero_counts path) prefix with
        | Ok s -> s
        | Error (reason, _, _) -> Alcotest.failf "shard violated: %s" reason
      in
      let saved = ref (zero_counts path) in
      let budget = ref 200 in
      let final = ref None in
      let segments = ref 0 in
      while !final = None do
        incr segments;
        if !segments > 1000 then Alcotest.fail "shard resume does not converge";
        match
          explore_shard c !saved prefix ~max_runs:!budget
            ~on_checkpoint:(fun counts -> saved := counts)
        with
        | Ok s when s.Por.exhausted -> final := Some s
        | Ok _ -> budget := !budget + 200
        | Error (reason, _, _) ->
          Alcotest.failf "shard violated mid-segment: %s" reason
      done;
      if !segments >= 2 then incr segmented;
      checkb "resumed shard bit-identical to uninterrupted" true
        (Option.get !final = full))
    shards;
  checkb "≥ 1 shard actually crossed a segment boundary" true (!segmented >= 1)

(* ------------------------------------------------------------------ *)
(* Dedup soundness                                                     *)
(* ------------------------------------------------------------------ *)

let test_dedup_preserves_outcomes () =
  List.iter
    (fun c ->
      let s0, o0 = por c in
      let s1, o1 = por ~dedup:true c in
      checki (c.Checks.name ^ " dedup off reports no hits") 0 s0.Por.dedup_hits;
      checkb (c.Checks.name ^ " dedup run exhausts") true s1.Por.exhausted;
      checkb (c.Checks.name ^ " dedup never explores more") true
        (Por.explored s1 <= Por.explored s0);
      checkb (c.Checks.name ^ " dedup outcome set identical") true (o1 = o0))
    configs

let test_dedup_bites_on_fallback () =
  (* The racing-fallback tree revisits states massively; lock in that
     the suppression actually fires there (exact counts are wall-clock
     facts recorded in EXPERIMENTS.md; here we pin the invariants). *)
  let c = config "fallback_n2_d28" in
  let s0, _ = por c in
  let s1, _ = por ~dedup:true c in
  checkb "dedup_hits > 0" true (s1.Por.dedup_hits > 0);
  checkb "dedup shrinks the explored tree" true
    (Por.explored s1 < Por.explored s0);
  checkb "hits are counted inside pruned" true (s1.Por.dedup_hits <= s1.Por.pruned)

let test_dedup_rejected_on_tree_engine () =
  let c = config "binary_ratifier_n2" in
  try
    ignore
      (Por.explore ~engine:`Tree ~max_depth:c.Checks.max_depth ~dedup:true
         ~n:c.Checks.n
         ~setup:(Checks.setup_of c ~n:c.Checks.n)
         ~check:(Checks.check_of c ~n:c.Checks.n)
         ());
    Alcotest.fail "dedup accepted under the tree engine (no state hash there)"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Source-set DPOR cross-check                                         *)
(* ------------------------------------------------------------------ *)

let test_dpor_outcome_sets () =
  List.iter
    (fun c ->
      let s_por, o_por = por c in
      let s_dpor, o_dpor = dpor c in
      checkb (c.Checks.name ^ " dpor exhausts") true s_dpor.Por.exhausted;
      checkb (c.Checks.name ^ " dpor outcome set = sleep-set outcome set")
        true (o_dpor = o_por);
      ignore s_por)
    configs

let test_dpor_vs_naive_outcomes () =
  (* Close the triangle against ground truth where the naive tree is
     affordable. *)
  let compared = ref 0 in
  List.iter
    (fun c ->
      let s_n, o_n = naive ~max_runs:100_000 c in
      if s_n.Naive.exhausted then begin
        incr compared;
        let _, o_d = dpor c in
        checkb (c.Checks.name ^ " dpor outcome set = naive outcome set") true
          (o_d = o_n)
      end)
    configs;
  checkb "the gate left a meaningful sample" true (!compared >= 5)

let test_dpor_reduces_fallback () =
  let c = config "fallback_n2_d28" in
  let s_por, o_por = por c in
  let s_dpor, o_dpor = dpor c in
  checkb "outcome sets equal" true (o_dpor = o_por);
  checkb "dpor explores strictly fewer executions" true
    (Por.explored s_dpor < Por.explored s_por)

(* ------------------------------------------------------------------ *)
(* State-hash soundness                                                *)
(* ------------------------------------------------------------------ *)

let machine_of c =
  let memory, body = Checks.setup_of c ~n:c.Checks.n () in
  Machine.create ~cheap_collect:c.Checks.cheap_collect ~n:c.Checks.n ~memory
    body

let test_hash_equal_states () =
  let c = config "binary_ratifier_n3" in
  let m1 = machine_of c and m2 = machine_of c in
  checkb "VM machines support hashing" true (Machine.supports_state_hash m1);
  checkb "fresh identical setups hash equal" true
    (Machine.state_hash m1 = Machine.state_hash m2);
  (* Drive both through the same schedule with the same coin stream:
     equal at every prefix. *)
  let r1 = Rng.create 7 and r2 = Rng.create 7 in
  let stepped = ref 0 in
  while Machine.running m1 && !stepped < 50 do
    let en = Machine.enabled m1 in
    let pid = en.(!stepped mod Array.length en) in
    Machine.step_random m1 ~pid ~coin:r1;
    Machine.step_random m2 ~pid ~coin:r2;
    incr stepped;
    checkb "same schedule, same hash" true
      (Machine.state_hash m1 = Machine.state_hash m2)
  done;
  checkb "the walk actually stepped" true (!stepped > 0)

let test_hash_restore_roundtrip () =
  let c = config "binary_ratifier_n3" in
  let m = machine_of c in
  let h0 = Machine.state_hash m in
  let snap = Machine.snapshot m in
  let rng = Rng.create 11 in
  Machine.step_random m ~pid:(Machine.enabled m).(0) ~coin:rng;
  checkb "a step changes the hash" true (Machine.state_hash m <> h0);
  Machine.restore m snap;
  checkb "restore returns the original hash" true (Machine.state_hash m = h0)

let test_hash_perturbation_sensitive () =
  let c = config "binary_ratifier_n3" in
  (* One pc: stepping pid 0 vs stepping pid 1 (both advance one pc;
     their memory effects also differ, which is the point — these are
     semantically distinct states). *)
  let ma = machine_of c and mb = machine_of c in
  let ra = Rng.create 3 and rb = Rng.create 3 in
  Machine.step_random ma ~pid:0 ~coin:ra;
  Machine.step_random mb ~pid:1 ~coin:rb;
  checkb "stepping different pids hashes differently" true
    (Machine.state_hash ma <> Machine.state_hash mb);
  (* One crash bit: crashing is one transition that touches no memory,
     so fresh-vs-crashed and crashed(0)-vs-crashed(1) isolate the
     crashed-set contribution. *)
  let mc = machine_of c and md = machine_of c and me = machine_of c in
  Machine.crash mc ~pid:0;
  Machine.crash md ~pid:1;
  checkb "a crash changes the hash" true
    (Machine.state_hash mc <> Machine.state_hash me);
  checkb "crashing pid 0 differs from crashing pid 1" true
    (Machine.state_hash mc <> Machine.state_hash md)

let qcheck_hash_schedule_deterministic =
  (* Any config, any schedule/coin seed: two machines driven
     identically hash identically at every prefix — the property the
     dedup table's correctness rides on. *)
  let gen =
    QCheck.Gen.(
      triple
        (int_bound (List.length configs - 1))
        (list_size (int_bound 60) (int_bound 11))
        (int_bound 1000))
  in
  let print (i, picks, seed) =
    Printf.sprintf "%s picks=%s seed=%d" (List.nth configs i).Checks.name
      (String.concat "," (List.map string_of_int picks))
      seed
  in
  QCheck.Test.make ~count:150 ~name:"identical schedules hash identically"
    (QCheck.make ~print gen)
    (fun (i, picks, seed) ->
      let c = List.nth configs i in
      let m1 = machine_of c and m2 = machine_of c in
      if not (Machine.supports_state_hash m1) then true
      else begin
        let r1 = Rng.create seed and r2 = Rng.create seed in
        List.for_all
          (fun pick ->
            if not (Machine.running m1) then true
            else begin
              let en = Machine.enabled m1 in
              let pid = en.(pick mod Array.length en) in
              Machine.step_random m1 ~pid ~coin:r1;
              Machine.step_random m2 ~pid ~coin:r2;
              Machine.state_hash m1 = Machine.state_hash m2
            end)
          picks
      end)

(* ------------------------------------------------------------------ *)
(* Telemetry counter totals                                            *)
(* ------------------------------------------------------------------ *)

module Telemetry = Conrat_obs.Telemetry

let por_telemetry ~jobs c =
  let t = Telemetry.create ~domains:(max 1 jobs) () in
  match
    Parallel.explore_por ~jobs ~max_depth:c.Checks.max_depth
      ~max_runs:c.Checks.max_runs ~cheap_collect:c.Checks.cheap_collect
      ~faults:c.Checks.faults ~telemetry:t ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(Checks.check_of c ~n:c.Checks.n)
      ()
  with
  | Ok s -> (s, t)
  | Error (reason, _, _) -> Alcotest.failf "%s violated: %s" c.Checks.name reason

(* The work counters: what the search did, as opposed to how it was
   scheduled (steals, snapshots, refreshes all legitimately vary with
   shard placement).  Dedup stays off here — duplicate suppression
   depends on visit order, which sharding changes. *)
let work_counters =
  [ ("leaves_complete", Telemetry.leaves_complete);
    ("leaves_truncated", Telemetry.leaves_truncated);
    ("leaves_pruned", Telemetry.leaves_pruned);
    ("steps", Telemetry.steps) ]

let test_telemetry_jobs_invariant () =
  List.iter
    (fun name ->
      let c = config name in
      let s1, t1 = por_telemetry ~jobs:1 c in
      let g1 = Telemetry.totals t1 in
      checkb (name ^ " sequential exhausts") true s1.Por.exhausted;
      (* The probe rows must agree with the merged Por.stats exactly. *)
      checki (name ^ " complete counter = stats") s1.Por.complete
        (Telemetry.get g1 Telemetry.leaves_complete);
      checki (name ^ " truncated counter = stats") s1.Por.truncated
        (Telemetry.get g1 Telemetry.leaves_truncated);
      checki (name ^ " pruned counter = stats") s1.Por.pruned
        (Telemetry.get g1 Telemetry.leaves_pruned);
      checki (name ^ " steps counter = stats") s1.Por.steps
        (Telemetry.get g1 Telemetry.steps);
      List.iter
        (fun jobs ->
          let _, tj = por_telemetry ~jobs c in
          let gj = Telemetry.totals tj in
          List.iter
            (fun (cname, ctr) ->
              checki
                (Printf.sprintf "%s jobs=%d %s grand total invariant" name
                   jobs cname)
                (Telemetry.get g1 ctr) (Telemetry.get gj ctr))
            work_counters)
        [ 2; 4 ])
    [ "binary_ratifier_n4"; "conciliator_n2"; "composite_n2" ]

let test_telemetry_domain_merge_is_total () =
  let c = config "binary_ratifier_n4" in
  let _, t = por_telemetry ~jobs:4 c in
  let merged =
    let rec go d acc =
      if d >= Telemetry.domains t then acc
      else
        go (d + 1)
          (Telemetry.merge acc (Telemetry.snapshot_of_domain t ~domain:d))
    in
    go 0 (Telemetry.empty ())
  in
  Alcotest.(check (list (pair string int)))
    "per-domain snapshots merge to the grand total"
    (Telemetry.to_alist (Telemetry.totals t))
    (Telemetry.to_alist merged);
  (* The fleet actually sharded, so the merge folded real rows. *)
  checkb "steals counted" true (Telemetry.get merged Telemetry.steals > 0);
  checki "every steal completed"
    (Telemetry.get merged Telemetry.steals)
    (Telemetry.get merged Telemetry.shards_done)

(* ------------------------------------------------------------------ *)
(* Fleet heartbeat aggregation                                         *)
(* ------------------------------------------------------------------ *)

let test_fleet_heartbeat_totals () =
  (* Workers flush running totals into the shared atomics and report
     them under a mutex; the largest value any heartbeat ever saw must
     be the final fleet total (the last worker's flush happens after
     every other worker already flushed its shards).  Full-stream
     monotonicity is not asserted: the generation passes that precede
     the fleet report their own residue-local counts. *)
  let c = config "binary_ratifier_n4" in
  let seen = ref [] in
  let hb ~runs ~pruned:_ ~steps:_ ~depth:_ = seen := runs :: !seen in
  match
    Parallel.explore_por ~jobs:2 ~max_depth:c.Checks.max_depth
      ~max_runs:c.Checks.max_runs ~cheap_collect:c.Checks.cheap_collect
      ~faults:c.Checks.faults ~heartbeat:hb ~n:c.Checks.n
      ~setup:(Checks.setup_of c ~n:c.Checks.n)
      ~check:(Checks.check_of c ~n:c.Checks.n)
      ()
  with
  | Error (reason, _, _) -> Alcotest.failf "unexpected violation: %s" reason
  | Ok s ->
    checkb "exhausted" true s.Por.exhausted;
    checkb "heartbeats fired" true (!seen <> []);
    let m = List.fold_left max 0 !seen in
    checki "max heartbeat total = explored + pruned" (Por.explored s + s.Por.pruned)
      m

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [ ( "jobs_invariance",
        [ tc "por jobs 2/4 vs sequential, all configs" `Quick
            test_por_jobs_invariant;
          tc "naive jobs 3 vs sequential, small configs" `Quick
            test_naive_jobs_invariant;
          tc "jobs exceed frontier" `Quick test_jobs_exceed_frontier ] );
      ( "sharding",
        [ tc "partition exact incl. steps" `Quick test_shard_partition_exact;
          tc "steal mid-shard, resume elsewhere" `Quick
            test_steal_mid_shard_resume ] );
      ( "dedup",
        [ tc "outcome sets preserved" `Quick test_dedup_preserves_outcomes;
          tc "hits on the fallback tree" `Quick test_dedup_bites_on_fallback;
          tc "rejected on tree engine" `Quick test_dedup_rejected_on_tree_engine
        ] );
      ( "dpor",
        [ tc "outcome sets = sleep-set engine" `Quick test_dpor_outcome_sets;
          tc "outcome sets = naive ground truth" `Quick
            test_dpor_vs_naive_outcomes;
          tc "strictly fewer executions on fallback" `Quick
            test_dpor_reduces_fallback ] );
      ( "state_hash",
        [ tc "equal states hash equal" `Quick test_hash_equal_states;
          tc "snapshot/step/restore round-trip" `Quick
            test_hash_restore_roundtrip;
          tc "perturbations change the hash" `Quick
            test_hash_perturbation_sensitive;
          qc qcheck_hash_schedule_deterministic ] );
      ( "telemetry",
        [ tc "work totals jobs-invariant (jobs 1/2/4)" `Quick
            test_telemetry_jobs_invariant;
          tc "per-domain merge = grand total" `Quick
            test_telemetry_domain_merge_is_total ] );
      ( "fleet",
        [ tc "heartbeat totals aggregate" `Quick test_fleet_heartbeat_totals ]
      ) ]
