(* The tentpole's number: machine transitions per second, compiled VM
   vs tree interpreter, on the committed depth-28 fallback exploration.

   Both engines run the identical POR search (same leaves, same
   statistics — test/test_vm.ml proves it differentially); the only
   variable is the program engine behind the Machine façade.  The tree
   interpreter re-enters closure continuations and copies state at
   every branch point; the VM dispatches through per-pc integer tables
   and snapshots n program counters plus an O(1) memory journal mark.

   Methodology follows the other committed gates (BENCH_OBS.json,
   BENCH_FAULT.json): one untimed warmup per arm, then [reps] timed
   repetitions interleaved tree/vm, best-of-N processor times
   (Sys.time — wall clock is too noisy on shared machines).  Writes
   BENCH_STEP.json (schema v1, one row per engine) and exits non-zero
   when the VM speedup falls below --min-speedup — the regression gate
   that keeps the compiler's point from silently eroding.  `make
   perf-step` is the entry point; CI runs it via `make bench-gates`.

   On the floor: both arms share today's slimmed exploration driver, so
   the ratio here isolates the engine (and its snapshot discipline)
   alone, under a workload that reaches a leaf every ~2.6 steps — it
   deliberately understates the end-to-end win.  Against the
   pre-refactor commit (old driver + tree engine, ~2.7M steps/s on the
   reference machine) the VM engine explores this config ~2.4x faster
   end to end; EXPERIMENTS.md records that comparison, which a
   same-binary gate cannot re-measure.  The default floor is set with
   headroom under the ~1.6x engine-isolated ratio we measure, so CI
   noise does not trip it but an engine regression does. *)

open Conrat_verify

let config_name = ref "fallback_n2_d28"
let reps = ref 5
let min_speedup = ref 1.4
let out_file = ref "BENCH_STEP.json"

let args =
  [ ("--config", Arg.Set_string config_name,
     "NAME  checker config to explore (default fallback_n2_d28)");
    ("--reps", Arg.Set_int reps, "N  timed repetitions per arm (default 5)");
    ("--min-speedup", Arg.Set_float min_speedup,
     "X  fail when vm steps/s < X * tree steps/s (default 1.4)");
    ("--out", Arg.Set_string out_file,
     "FILE  JSON result file (default BENCH_STEP.json)") ]

let usage = "step_rate [--config NAME] [--reps N] [--min-speedup X]"

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let config =
    match Checks.find !config_name with
    | Some c -> c
    | None ->
      Printf.eprintf "step_rate: unknown checker config %s\n" !config_name;
      exit 2
  in
  let n = config.Checks.n in
  (* Returns (seconds, machine steps).  The step count is engine- and
     rep-invariant (the traversal is deterministic); it is re-read per
     run only to keep the timed region identical. *)
  let explore ~engine () =
    let t0 = Sys.time () in
    match
      Por.explore ~engine ~max_depth:config.Checks.max_depth
        ~max_runs:config.Checks.max_runs
        ~cheap_collect:config.Checks.cheap_collect ~n
        ~setup:(Checks.setup_of config ~n)
        ~check:(Checks.check_of config ~n) ()
    with
    | Ok s when s.Por.exhausted -> (Sys.time () -. t0, s.Por.steps)
    | Ok _ ->
      Printf.eprintf "step_rate: %s did not exhaust under its budget\n"
        !config_name;
      exit 2
    | Error (reason, _, _) ->
      Printf.eprintf "step_rate: %s violated its property: %s\n" !config_name
        reason;
      exit 2
  in
  ignore (explore ~engine:`Tree ());
  ignore (explore ~engine:`Vm ());
  let tree_best = ref infinity and vm_best = ref infinity in
  let tree_steps = ref 0 and vm_steps = ref 0 in
  for i = 1 to !reps do
    let ts, tn = explore ~engine:`Tree () in
    let vs, vn = explore ~engine:`Vm () in
    tree_best := Float.min !tree_best ts;
    vm_best := Float.min !vm_best vs;
    tree_steps := tn;
    vm_steps := vn;
    Printf.eprintf "[step-bench] rep %d/%d: tree %.3fs, vm %.3fs\n%!" i !reps ts
      vs
  done;
  if !tree_steps <> !vm_steps then begin
    Printf.eprintf "step_rate: engines disagree on step count (%d vs %d)\n"
      !tree_steps !vm_steps;
    exit 2
  end;
  let rate steps best = float_of_int steps /. best in
  let tree_rate = rate !tree_steps !tree_best in
  let vm_rate = rate !vm_steps !vm_best in
  let speedup = vm_rate /. tree_rate in
  let ok = speedup >= !min_speedup in
  let oc = open_out !out_file in
  Printf.fprintf oc
    "{\n  \"schema_version\": 1,\n  \"kind\": \"step-rate\",\n  \
     \"config\": %S,\n  \"reps\": %d,\n  \"steps\": %d,\n  \"results\": [\n    \
     {\"engine\": \"tree\", \"best_seconds\": %.3f, \"steps_per_second\": %.0f},\n    \
     {\"engine\": \"vm\", \"best_seconds\": %.3f, \"steps_per_second\": %.0f}\n  \
     ],\n  \"speedup\": %.2f,\n  \"min_speedup\": %.2f,\n  \"ok\": %b\n}\n"
    !config_name !reps !tree_steps !tree_best tree_rate !vm_best vm_rate speedup
    !min_speedup ok;
  close_out oc;
  Printf.printf
    "step-bench: %s best-of-%d — tree %.3fs (%.2fM steps/s), vm %.3fs \
     (%.2fM steps/s), speedup %.2fx (floor %.1fx): %s\n"
    !config_name !reps !tree_best (tree_rate /. 1e6) !vm_best (vm_rate /. 1e6)
    speedup !min_speedup
    (if ok then "OK" else "UNDER FLOOR");
  if not ok then exit 1
