(* The benchmark harness.

   Part 1 regenerates the paper's quantitative claims: one experiment
   per theorem/claim (E1..E10, defined in Conrat_harness.Experiments;
   the experiment index lives in DESIGN.md §5, the recorded output in
   EXPERIMENTS.md).  There is no table or figure in the paper that is
   not covered by one of these experiments — it is a theory paper, so
   the "tables" are the bounds its theorems assert.

   Part 2 runs Bechamel micro-benchmarks of the building blocks (one
   Test.make per component) so the harness doubles as a performance
   regression suite for the simulator itself.

     dune exec bench/main.exe              # full experiments + micro
     dune exec bench/main.exe -- quick     # CI-sized sweeps
     dune exec bench/main.exe -- micro     # micro-benchmarks only
     dune exec bench/main.exe -- paper     # experiments only
     dune exec bench/main.exe -- --jobs 8  # experiment trials on 8 domains
     dune exec bench/main.exe -- --json    # also write BENCH_E<k>.json
*)

open Bechamel
open Toolkit

let mode_of_args () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let micro_only = List.mem "micro" args in
  let paper_only = List.mem "paper" args in
  let json = List.mem "--json" args in
  let jobs =
    let rec find = function
      | ("--jobs" | "-j") :: v :: _ ->
        (match int_of_string_opt v with
         | Some k when k >= 0 -> k
         | _ -> failwith "bench: --jobs expects a non-negative integer")
      | _ :: rest -> find rest
      | [] -> 1
    in
    find args
  in
  (quick, micro_only, paper_only, jobs, json)

(* ------------------------------------------------------------------ *)
(* Part 1: the paper-claim experiments                                 *)
(* ------------------------------------------------------------------ *)

let run_experiments ~quick ~jobs ~json =
  let mode = if quick then Conrat_harness.Experiments.Quick else Conrat_harness.Experiments.Full in
  Conrat_harness.Experiments.run_all ~mode ~jobs ~json ()

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

open Conrat_sim

let bench_scheduler_step =
  (* Cost of one simulated operation: 8 processes doing straight-line
     reads/writes, normalised per op by Bechamel's run counter. *)
  Test.make ~name:"scheduler: 16-op execution (n=8)"
    (Staged.stage (fun () ->
       let memory = Memory.create () in
       let shared = Memory.alloc_n memory 4 in
       ignore
         (Scheduler.run_direct ~n:8 ~adversary:Adversary.round_robin ~rng:(Rng.create 1) ~memory
            (fun ~pid ~rng:_ ->
              Proc.write shared.(pid mod 4) pid;
              ignore (Proc.read shared.((pid + 1) mod 4))))))

let bench_conciliator =
  Test.make ~name:"impatient conciliator round (n=16)"
    (Staged.stage (fun () ->
       let memory = Memory.create () in
       let instance =
         (Conrat_core.Conciliator.impatient_first_mover ()).Conrat_objects.Deciding.instantiate
           ~n:16 memory
       in
       ignore
         (Scheduler.run ~n:16 ~adversary:Adversary.round_robin ~rng:(Rng.create 2) ~memory
            (fun ~pid ~rng ->
              instance.Conrat_objects.Deciding.run ~pid ~rng (pid mod 2)))))

let bench_ratifier =
  Test.make ~name:"bollobas ratifier round (n=16, m=64)"
    (Staged.stage (fun () ->
       let memory = Memory.create () in
       let instance =
         (Conrat_core.Ratifier.bollobas ~m:64).Conrat_objects.Deciding.instantiate ~n:16 memory
       in
       ignore
         (Scheduler.run ~n:16 ~adversary:Adversary.round_robin ~rng:(Rng.create 3) ~memory
            (fun ~pid ~rng ->
              instance.Conrat_objects.Deciding.run ~pid ~rng (pid mod 64)))))

let bench_consensus =
  Test.make ~name:"full binary consensus (n=16)"
    (Staged.stage
       (let seed = ref 0 in
        fun () ->
          incr seed;
          let memory = Memory.create () in
          let instance = (Conrat_core.Consensus.standard ~m:2).instantiate ~n:16 memory in
          ignore
            (Scheduler.run ~n:16 ~adversary:Adversary.random_uniform
               ~rng:(Rng.create !seed) ~memory
               (fun ~pid ~rng ->
                 instance.Conrat_core.Consensus.decide ~pid ~rng (pid mod 2)))))

let bench_rng =
  Test.make ~name:"rng: 1000 draws"
    (Staged.stage (fun () ->
       let rng = Rng.create 9 in
       for _ = 1 to 1000 do
         ignore (Rng.int rng 1024)
       done))

let bench_quorum =
  Test.make ~name:"bollobas quorum lookup (m=4096)"
    (Staged.stage
       (let q = Conrat_quorum.Quorum.bollobas_optimal ~m:4096 in
        let v = ref 0 in
        fun () ->
          v := (!v + 1) mod 4096;
          ignore (q.Conrat_quorum.Quorum.write_quorum !v)))

let run_micro () =
  let benchmarks =
    [ bench_rng; bench_scheduler_step; bench_conciliator; bench_ratifier;
      bench_consensus; bench_quorum ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:(Some 500) () in
  let raw = List.map (Benchmark.all cfg instances) benchmarks in
  let results =
    List.map (fun r -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) Instance.monotonic_clock r) raw
  in
  print_newline ();
  print_endline "Micro-benchmarks (monotonic clock, ns/run)";
  print_endline "==========================================";
  List.iter
    (fun result ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-42s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-42s (no estimate)\n" name)
        result)
    results;
  flush stdout

let () =
  let quick, micro_only, paper_only, jobs, json = mode_of_args () in
  if not micro_only then run_experiments ~quick ~jobs ~json;
  if not paper_only then run_micro ()
