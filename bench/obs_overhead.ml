(* The observability tax: what does threading a Sink.t option through
   Machine.step cost when no sink is installed, and what does a
   disabled (null) sink cost when one is?

   Methodology: explore one committed checker config (default
   fallback_n2_d28, ~1.2M executions) under the POR engine, [reps]
   times with no sink and [reps] times with [Sink.null], interleaved so
   both arms see the same thermal/allocator conditions; compare the
   best (minimum) processor time of each arm (Sys.time, same discipline
   as the fault-plane gate — since the VM engine halved the timed
   region to ~0.5s, wall clock on a shared machine can no longer
   resolve a 3% effect).  The null sink is the
   worst-case hot path for a disabled sink — every event still pays the
   option branch plus the [Op.Any] packing and the call — so its
   overhead bounds what any user pays for building with observability
   support compiled in but switched off.

   Exits non-zero when the overhead exceeds --max-overhead-pct, and
   writes BENCH_OBS.json so the number is tracked in the bench
   trajectory.  `make obs-bench` is the entry point; CI runs it on
   every push.

   On the budget: the tap's absolute cost is one option branch, a
   stage fetch, the kind/loc decode and an indirect closure call per
   event — ~10ns, at ~1.8 events per step (ops plus snapshots,
   restores and decides) — and it has not moved since the gate was
   introduced.  What moved is the denominator: the VM spends ~160ns
   per step where the tree engine spends ~260 (much of it memory
   stalls that hide the call latency), so the same tap measures ~10%
   on the VM and 0–4% on the tree oracle (`--engine tree`).  A 3%
   budget against the VM would allow ~5ns/step — less than one
   indirect call — which no call-per-event design can meet.  The
   budget started at 12% when the VM landed; re-measured after the
   telemetry plane (2026-08, best-of-5 interleaved, repeated runs)
   the null-sink arm spans 0.5–6.8% on a noisy single-core host, so
   the default is now 9% — max observed plus headroom, still tight
   enough that an accidental allocation or a second call on the
   disabled path fails the gate. *)

let config_name = ref "fallback_n2_d28"
let reps = ref 5
let max_pct = ref 9.0
let out_file = ref "BENCH_OBS.json"
let engine = ref `Vm

let set_engine = function
  | "vm" -> engine := `Vm
  | "tree" -> engine := `Tree
  | e -> raise (Arg.Bad ("unknown engine " ^ e))

let args =
  [ ("--config", Arg.Set_string config_name,
     "NAME  checker config to explore (default fallback_n2_d28)");
    ("--engine", Arg.Symbol ([ "vm"; "tree" ], set_engine),
     "  program engine under the tap (default vm)");
    ("--reps", Arg.Set_int reps, "N  timed repetitions per arm (default 5)");
    ("--max-overhead-pct", Arg.Set_float max_pct,
     "PCT  fail when the null-sink overhead exceeds this (default 9.0)");
    ("--out", Arg.Set_string out_file,
     "FILE  JSON result file (default BENCH_OBS.json)") ]

let usage = "obs_overhead [--config NAME] [--reps N] [--max-overhead-pct PCT]"

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let config =
    match Conrat_verify.Checks.find !config_name with
    | Some c -> c
    | None ->
      Printf.eprintf "obs_overhead: unknown checker config %s\n" !config_name;
      exit 2
  in
  let explore ?sink () =
    let t0 = Sys.time () in
    (match Conrat_verify.Checks.run ~engine:!engine ?sink config with
     | Ok _ -> ()
     | Error f ->
       Printf.eprintf "obs_overhead: %s violated its property: %s\n"
         config.Conrat_verify.Checks.name f.Conrat_verify.Checks.reason;
       exit 2);
    Sys.time () -. t0
  in
  (* One untimed warmup per arm, then interleave the timed reps. *)
  ignore (explore ());
  ignore (explore ~sink:Conrat_sim.Sink.null ());
  let bare = ref infinity and nulled = ref infinity in
  for i = 1 to !reps do
    let b = explore () in
    let s = explore ~sink:Conrat_sim.Sink.null () in
    bare := Float.min !bare b;
    nulled := Float.min !nulled s;
    Printf.eprintf "[obs-bench] rep %d/%d: no sink %.3fs, null sink %.3fs\n%!"
      i !reps b s
  done;
  let overhead_pct = (!nulled -. !bare) /. !bare *. 100.0 in
  let ok = overhead_pct <= !max_pct in
  let oc = open_out !out_file in
  Printf.fprintf oc
    "{\n  \"schema_version\": 1,\n  \"kind\": \"obs-overhead\",\n  \
     \"config\": %S,\n  \"reps\": %d,\n  \"no_sink_seconds\": %.3f,\n  \
     \"null_sink_seconds\": %.3f,\n  \"overhead_pct\": %.2f,\n  \
     \"max_overhead_pct\": %.2f,\n  \"ok\": %b\n}\n"
    !config_name !reps !bare !nulled overhead_pct !max_pct ok;
  close_out oc;
  Printf.printf
    "obs-bench: %s best-of-%d — no sink %.3fs, null sink %.3fs, overhead %.2f%% \
     (limit %.1f%%): %s\n"
    !config_name !reps !bare !nulled overhead_pct !max_pct
    (if ok then "OK" else "OVER BUDGET");
  if not ok then exit 1
