(* The observability tax: what does threading a Sink.t option through
   Machine.step cost when no sink is installed, and what does a
   disabled (null) sink cost when one is?

   Methodology: explore one committed checker config (default
   fallback_n2_d28, ~1.2M executions) under the POR engine, [reps]
   times with no sink and [reps] times with [Sink.null], interleaved so
   both arms see the same thermal/allocator conditions; compare the
   best (minimum) wall clock of each arm.  The null sink is the
   worst-case hot path for a disabled sink — every event still pays the
   option branch plus the [Op.Any] packing and the call — so its
   overhead bounds what any user pays for building with observability
   support compiled in but switched off.

   Exits non-zero when the overhead exceeds --max-overhead-pct
   (default 3%), and writes BENCH_OBS.json so the number is tracked in
   the bench trajectory.  `make obs-bench` is the entry point; CI runs
   it on every push. *)

let config_name = ref "fallback_n2_d28"
let reps = ref 5
let max_pct = ref 3.0
let out_file = ref "BENCH_OBS.json"

let args =
  [ ("--config", Arg.Set_string config_name,
     "NAME  checker config to explore (default fallback_n2_d28)");
    ("--reps", Arg.Set_int reps, "N  timed repetitions per arm (default 5)");
    ("--max-overhead-pct", Arg.Set_float max_pct,
     "PCT  fail when the null-sink overhead exceeds this (default 3.0)");
    ("--out", Arg.Set_string out_file,
     "FILE  JSON result file (default BENCH_OBS.json)") ]

let usage = "obs_overhead [--config NAME] [--reps N] [--max-overhead-pct PCT]"

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let config =
    match Conrat_verify.Checks.find !config_name with
    | Some c -> c
    | None ->
      Printf.eprintf "obs_overhead: unknown checker config %s\n" !config_name;
      exit 2
  in
  let explore ?sink () =
    let t0 = Unix.gettimeofday () in
    (match Conrat_verify.Checks.run ?sink config with
     | Ok _ -> ()
     | Error f ->
       Printf.eprintf "obs_overhead: %s violated its property: %s\n"
         config.Conrat_verify.Checks.name f.Conrat_verify.Checks.reason;
       exit 2);
    Unix.gettimeofday () -. t0
  in
  (* One untimed warmup per arm, then interleave the timed reps. *)
  ignore (explore ());
  ignore (explore ~sink:Conrat_sim.Sink.null ());
  let bare = ref infinity and nulled = ref infinity in
  for i = 1 to !reps do
    let b = explore () in
    let s = explore ~sink:Conrat_sim.Sink.null () in
    bare := Float.min !bare b;
    nulled := Float.min !nulled s;
    Printf.eprintf "[obs-bench] rep %d/%d: no sink %.3fs, null sink %.3fs\n%!"
      i !reps b s
  done;
  let overhead_pct = (!nulled -. !bare) /. !bare *. 100.0 in
  let ok = overhead_pct <= !max_pct in
  let oc = open_out !out_file in
  Printf.fprintf oc
    "{\n  \"schema_version\": 1,\n  \"kind\": \"obs-overhead\",\n  \
     \"config\": %S,\n  \"reps\": %d,\n  \"no_sink_seconds\": %.3f,\n  \
     \"null_sink_seconds\": %.3f,\n  \"overhead_pct\": %.2f,\n  \
     \"max_overhead_pct\": %.2f,\n  \"ok\": %b\n}\n"
    !config_name !reps !bare !nulled overhead_pct !max_pct ok;
  close_out oc;
  Printf.printf
    "obs-bench: %s best-of-%d — no sink %.3fs, null sink %.3fs, overhead %.2f%% \
     (limit %.1f%%): %s\n"
    !config_name !reps !bare !nulled overhead_pct !max_pct
    (if ok then "OK" else "OVER BUDGET");
  if not ok then exit 1
