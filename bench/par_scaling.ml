(* Parallel-scaling gate: explore one committed checker config to
   exhaustion through {!Parallel.explore_por} at jobs = 1, 2 and 4, and
   record the per-jobs wall clock as scaling rows in the bench
   trajectory.

   Two checks ride on the measurement:

   - Bit-identity (always enforced): the merged statistics at every
     jobs count — complete, truncated, pruned, steps, exhausted — must
     equal the sequential run's exactly.  This is the cheap end-to-end
     echo of test_parallel.ml's differential suite, run on the real
     depth-34 workload.

   - Speedup (multi-core hosts only): jobs = 2 must beat jobs = 1 by
     --min-speedup (default 1.6x).  On a single-core host
     (Domain.recommended_domain_count () < 2) extra domains are pure
     overhead, so the floor is reported but not gated — the JSON
     records "gated": false and CI on such a runner still exercises
     the machinery without a meaningless failure.

   Writes BENCH_PAR.json, and with --splice FILE appends the rows
   (tagged "scaling": true) to the results array of an existing
   verify-bench JSON (BENCH_VERIFY.json), after the sequential rows so
   the Baseline reader's first-match lookup keeps resolving to the
   jobs = 1 numbers.  `make perf-verify` is the entry point. *)

open Conrat_verify

let config_name = ref "fallback_n2_d34"
let min_speedup = ref 1.6
let out_file = ref "BENCH_PAR.json"
let splice_file = ref ""

let args =
  [ ("--config", Arg.Set_string config_name,
     "NAME  checker config to explore (default fallback_n2_d34)");
    ("--min-speedup", Arg.Set_float min_speedup,
     "X  required jobs=2 speedup on multi-core hosts (default 1.6)");
    ("--out", Arg.Set_string out_file,
     "FILE  JSON result file (default BENCH_PAR.json)");
    ("--splice", Arg.Set_string splice_file,
     "FILE  verify-bench JSON to append the scaling rows to") ]

let usage = "par_scaling [--config NAME] [--min-speedup X] [--splice FILE]"

(* Append [rows] (pre-rendered JSON objects) to the "results" array of
   a verify-bench file, replacing any rows from a previous splice
   (identified by their "scaling":true tag) so the operation is
   idempotent.  The producer writes one flat object per line, which is
   what makes the line-level rewrite exact. *)
let splice path rows =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines = String.split_on_char '\n' contents in
  let is_row l = String.length (String.trim l) > 0 && (String.trim l).[0] = '{'
                 && String.length l > 4 (* not the document brace *)
                 && l.[0] = ' ' in
  let contains l sub =
    let ll = String.length l and sl = String.length sub in
    let rec scan i =
      i + sl <= ll && (String.sub l i sl = sub || scan (i + 1))
    in
    scan 0
  in
  let header, rest =
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | l :: tl when contains l "\"results\"" -> (List.rev (l :: acc), tl)
      | l :: tl -> split (l :: acc) tl
    in
    split [] lines
  in
  if rest = [] then begin
    Printf.eprintf "par-bench: %s has no \"results\" array; not splicing\n" path;
    exit 2
  end;
  let old_rows, footer =
    let rec split acc = function
      | [] -> (List.rev acc, [])
      | l :: tl when is_row l -> split (l :: acc) tl
      | l :: tl -> (List.rev acc, l :: tl)
    in
    split [] rest
  in
  let strip_comma l =
    let l = String.trim l in
    if String.length l > 0 && l.[String.length l - 1] = ',' then
      String.sub l 0 (String.length l - 1)
    else l
  in
  let kept =
    List.filter (fun l -> not (contains l "\"scaling\":true")) old_rows
    |> List.map strip_comma
  in
  let all = kept @ rows in
  let n = List.length all in
  let body =
    List.mapi
      (fun i l -> "    " ^ l ^ if i < n - 1 then "," else "")
      all
  in
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) (header @ body @ footer);
  close_out oc

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let config =
    match Checks.find !config_name with
    | Some c -> c
    | None ->
      Printf.eprintf "par_scaling: unknown checker config %s\n" !config_name;
      exit 2
  in
  let n = config.Checks.n in
  let run jobs =
    let t0 = Unix.gettimeofday () in
    match
      Parallel.explore_por ~jobs ~max_depth:config.Checks.max_depth
        ~max_runs:config.Checks.max_runs
        ~cheap_collect:config.Checks.cheap_collect
        ~faults:config.Checks.faults ~n
        ~setup:(Checks.setup_of config ~n)
        ~check:(Checks.check_of config ~n) ()
    with
    | Ok s ->
      let dt = Unix.gettimeofday () -. t0 in
      if not s.Por.exhausted then begin
        Printf.eprintf "par_scaling: %s did not exhaust under its budget\n"
          !config_name;
        exit 2
      end;
      (s, dt)
    | Error (reason, _, _) ->
      Printf.eprintf "par_scaling: %s violated its property: %s\n"
        !config_name reason;
      exit 2
  in
  let cores = Domain.recommended_domain_count () in
  let measured =
    List.map
      (fun jobs ->
        let s, dt = run jobs in
        Printf.eprintf
          "[par-bench] jobs=%d: %d executions, %d steps, %.3fs\n%!" jobs
          (Por.explored s) s.Por.steps dt;
        (jobs, s, dt))
      [ 1; 2; 4 ]
  in
  let _, s1, t1 = List.hd measured in
  List.iter
    (fun (jobs, s, _) ->
      if
        s.Por.complete <> s1.Por.complete
        || s.Por.truncated <> s1.Por.truncated
        || s.Por.pruned <> s1.Por.pruned
        || s.Por.steps <> s1.Por.steps
      then begin
        Printf.eprintf
          "par_scaling: jobs=%d statistics differ from sequential \
           (complete %d/%d truncated %d/%d pruned %d/%d steps %d/%d)\n"
          jobs s.Por.complete s1.Por.complete s.Por.truncated s1.Por.truncated
          s.Por.pruned s1.Por.pruned s.Por.steps s1.Por.steps;
        exit 1
      end)
    measured;
  let t2 =
    match List.find_opt (fun (j, _, _) -> j = 2) measured with
    | Some (_, _, t) -> t
    | None -> nan
  in
  let speedup = t1 /. t2 in
  let gated = cores >= 2 in
  let ok = (not gated) || speedup >= !min_speedup in
  let row (jobs, s, dt) =
    Printf.sprintf
      "{\"name\":%S,\"engine\":\"por\",\"exec_engine\":\"vm\",\"jobs\":%d,\
       \"scaling\":true,\"executions\":%d,\"complete\":%d,\"truncated\":%d,\
       \"pruned\":%d,\"steps\":%d,\"wall_clock_seconds\":%.3f,\
       \"exhausted\":%b,\"ok\":%b}"
      !config_name jobs (Por.explored s) s.Por.complete s.Por.truncated
      s.Por.pruned s.Por.steps dt s.Por.exhausted ok
  in
  let rows = List.map row measured in
  let oc = open_out !out_file in
  Printf.fprintf oc
    "{\n  \"schema_version\": 1,\n  \"kind\": \"par-scaling\",\n  \
     \"config\": %S,\n  \"cores\": %d,\n  \"results\": [\n"
    !config_name cores;
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    %s%s\n" r
        (if i < List.length rows - 1 then "," else ""))
    rows;
  let skip_reason =
    if gated then "null"
    else
      Printf.sprintf
        "%S"
        (Printf.sprintf
           "single-core host (%d core): extra domains are pure overhead, so \
            the jobs=2 speedup floor is reported but not enforced; \
            bit-identity of the merged statistics is still checked"
           cores)
  in
  Printf.fprintf oc
    "  ],\n  \"speedup_jobs2\": %.2f,\n  \"min_speedup\": %.2f,\n  \
     \"gated\": %b,\n  \"skip_reason\": %s,\n  \"ok\": %b\n}\n"
    speedup !min_speedup gated skip_reason ok;
  close_out oc;
  if !splice_file <> "" then splice !splice_file rows;
  Printf.printf
    "par-bench: %s jobs=2 speedup %.2fx over jobs=1 (floor %.1fx, %d core%s): %s\n"
    !config_name speedup !min_speedup cores
    (if cores = 1 then "" else "s")
    (if not gated then "bit-identity OK, speedup not gated on a single core"
     else if ok then "OK"
     else "UNDER FLOOR");
  if not ok then exit 1
