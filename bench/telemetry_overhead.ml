(* The telemetry tax: what does the counters probe cost the POR hot
   path when attached, against the one-branch-per-site cost of running
   with no probe at all?

   Methodology is the obs/fault gate's: explore one committed checker
   config (default fallback_n2_d28, ~1.2M executions) [reps] times with
   no probe and [reps] times with a counters-only registry attached,
   interleaved so both arms see the same thermal/allocator conditions,
   and compare the best (minimum) processor time of each arm
   (Sys.time).  The counters arm is what `conrat check --json` pays on
   every row: uncontended atomic adds at snapshot/dedup/checkpoint
   events plus exit-time delta accounting — nothing per leaf.

   Coverage collection (depth histograms, stage signatures) does do
   per-leaf work; it is the priced artifact mode behind
   `conrat telemetry` and is measured here informationally
   (coverage_overhead_pct, not gated — see EXPERIMENTS.md).

   Exits non-zero when the counters overhead exceeds
   --max-overhead-pct, and writes BENCH_TELEMETRY.json so the number is
   tracked in the bench trajectory.  `make telemetry-bench` is the
   entry point; CI runs it in bench-gates on every push. *)

module Telemetry = Conrat_obs.Telemetry

let config_name = ref "fallback_n2_d28"
let reps = ref 5
let max_pct = ref 3.0
let out_file = ref "BENCH_TELEMETRY.json"

let args =
  [ ("--config", Arg.Set_string config_name,
     "NAME  checker config to explore (default fallback_n2_d28)");
    ("--reps", Arg.Set_int reps, "N  timed repetitions per arm (default 5)");
    ("--max-overhead-pct", Arg.Set_float max_pct,
     "PCT  fail when the counters-probe overhead exceeds this (default 3.0)");
    ("--out", Arg.Set_string out_file,
     "FILE  JSON result file (default BENCH_TELEMETRY.json)") ]

let usage = "telemetry_overhead [--config NAME] [--reps N] [--max-overhead-pct PCT]"

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let config =
    match Conrat_verify.Checks.find !config_name with
    | Some c -> c
    | None ->
      Printf.eprintf "telemetry_overhead: unknown checker config %s\n"
        !config_name;
      exit 2
  in
  let explore ?telemetry () =
    let t0 = Sys.time () in
    (match Conrat_verify.Checks.run ?telemetry config with
     | Ok _ -> ()
     | Error f ->
       Printf.eprintf "telemetry_overhead: %s violated its property: %s\n"
         config.Conrat_verify.Checks.name f.Conrat_verify.Checks.reason;
       exit 2);
    Sys.time () -. t0
  in
  let counters () = Telemetry.create ~domains:1 () in
  let coverage () = Telemetry.create ~coverage:true ~domains:1 () in
  (* One untimed warmup per arm, then interleave the timed reps. *)
  ignore (explore ());
  ignore (explore ~telemetry:(counters ()) ());
  ignore (explore ~telemetry:(coverage ()) ());
  let bare = ref infinity and probed = ref infinity and covered = ref infinity in
  for i = 1 to !reps do
    let b = explore () in
    let p = explore ~telemetry:(counters ()) () in
    let c = explore ~telemetry:(coverage ()) () in
    bare := Float.min !bare b;
    probed := Float.min !probed p;
    covered := Float.min !covered c;
    Printf.eprintf
      "[telemetry-bench] rep %d/%d: no probe %.3fs, counters %.3fs, \
       +coverage %.3fs\n%!"
      i !reps b p c
  done;
  let pct arm = (arm -. !bare) /. !bare *. 100.0 in
  let overhead_pct = pct !probed in
  let coverage_pct = pct !covered in
  let ok = overhead_pct <= !max_pct in
  let oc = open_out !out_file in
  Printf.fprintf oc
    "{\n  \"schema_version\": 1,\n  \"kind\": \"telemetry-overhead\",\n  \
     \"config\": %S,\n  \"reps\": %d,\n  \"no_probe_seconds\": %.3f,\n  \
     \"counters_seconds\": %.3f,\n  \"coverage_seconds\": %.3f,\n  \
     \"overhead_pct\": %.2f,\n  \"coverage_overhead_pct\": %.2f,\n  \
     \"max_overhead_pct\": %.2f,\n  \"ok\": %b\n}\n"
    !config_name !reps !bare !probed !covered overhead_pct coverage_pct
    !max_pct ok;
  close_out oc;
  Printf.printf
    "telemetry-bench: %s best-of-%d — no probe %.3fs, counters %.3fs \
     (%+.2f%%, limit %.1f%%), +coverage %.3fs (%+.2f%%, informational): %s\n"
    !config_name !reps !bare !probed overhead_pct !max_pct !covered
    coverage_pct
    (if ok then "OK" else "OVER BUDGET");
  if not ok then exit 1
