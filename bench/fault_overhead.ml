(* The fault-plane tax: what does compiling crash/weak-register support
   into the machine cost on the failure-free fast path where it is
   disabled?

   The plane's hot-path costs are all behind flags that stay false in
   a failure-free exploration — [Memory.t]'s shadow tracking (writes
   maintain the previous-value shadow, backups capture it), the
   machine's crash bookkeeping (snapshots capture the crashed set),
   and since the crash-recovery plane the last-writer ownership
   tracking ([Memory.track_writers]: every step sets the acting pid,
   every write records its owner, backups capture the array).  This
   gate measures the toggleable part the way BENCH_OBS.json measures
   the observability tax: explore one committed checker config under
   the POR engine, [reps] times with the plane fully disabled and
   [reps] times with the shadow and writer bookkeeping engaged but
   inert ({!Memory.engage_shadow} + {!Memory.track_writers}: every
   conditional branch taken, no register weak, nothing ever wiped, so
   the explored tree is bit-identical), interleaved, comparing
   best-of-N processor times (Sys.time — the gate runs on shared
   machines where wall clock is too noisy to resolve 3%).

   Exits non-zero when the engaged-but-inert overhead exceeds
   --max-overhead-pct (default 3%), and writes BENCH_FAULT.json so the
   number rides the bench trajectory.  `make perf-verify` is the entry
   point; CI runs it on every push. *)

open Conrat_verify

let config_name = ref "fallback_n2_d28"
let reps = ref 5
let max_pct = ref 3.0
let out_file = ref "BENCH_FAULT.json"

let args =
  [ ("--config", Arg.Set_string config_name,
     "NAME  checker config to explore (default fallback_n2_d28)");
    ("--reps", Arg.Set_int reps, "N  timed repetitions per arm (default 5)");
    ("--max-overhead-pct", Arg.Set_float max_pct,
     "PCT  fail when the engaged-but-inert overhead exceeds this (default 3.0)");
    ("--out", Arg.Set_string out_file,
     "FILE  JSON result file (default BENCH_FAULT.json)") ]

let usage = "fault_overhead [--config NAME] [--reps N] [--max-overhead-pct PCT]"

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let config =
    match Checks.find !config_name with
    | Some c -> c
    | None ->
      Printf.eprintf "fault_overhead: unknown checker config %s\n" !config_name;
      exit 2
  in
  if config.Checks.faults <> Conrat_sim.Fault.none then begin
    Printf.eprintf
      "fault_overhead: %s is not failure-free; the gate measures the \
       disabled fast path\n"
      !config_name;
    exit 2
  end;
  let n = config.Checks.n in
  let explore ~engaged () =
    let setup () =
      let memory, body = Checks.setup_of config ~n () in
      if engaged then begin
        Conrat_sim.Memory.engage_shadow memory;
        Conrat_sim.Memory.track_writers memory
      end;
      (memory, body)
    in
    let t0 = Sys.time () in
    (match
       Por.explore ~max_depth:config.Checks.max_depth
         ~max_runs:config.Checks.max_runs
         ~cheap_collect:config.Checks.cheap_collect ~n ~setup
         ~check:(Checks.check_of config ~n) ()
     with
     | Ok s when s.Por.exhausted -> ()
     | Ok _ ->
       Printf.eprintf "fault_overhead: %s did not exhaust under its budget\n"
         !config_name;
       exit 2
     | Error (reason, _, _) ->
       Printf.eprintf "fault_overhead: %s violated its property: %s\n"
         !config_name reason;
       exit 2);
    Sys.time () -. t0
  in
  (* One untimed warmup per arm, then interleave the timed reps. *)
  ignore (explore ~engaged:false ());
  ignore (explore ~engaged:true ());
  let bare = ref infinity and engaged = ref infinity in
  for i = 1 to !reps do
    let b = explore ~engaged:false () in
    let e = explore ~engaged:true () in
    bare := Float.min !bare b;
    engaged := Float.min !engaged e;
    Printf.eprintf
      "[fault-bench] rep %d/%d: disabled %.3fs, engaged-inert %.3fs\n%!" i
      !reps b e
  done;
  let overhead_pct = (!engaged -. !bare) /. !bare *. 100.0 in
  let ok = overhead_pct <= !max_pct in
  let oc = open_out !out_file in
  Printf.fprintf oc
    "{\n  \"schema_version\": 1,\n  \"kind\": \"fault-overhead\",\n  \
     \"config\": %S,\n  \"reps\": %d,\n  \"disabled_seconds\": %.3f,\n  \
     \"engaged_inert_seconds\": %.3f,\n  \"overhead_pct\": %.2f,\n  \
     \"max_overhead_pct\": %.2f,\n  \"ok\": %b\n}\n"
    !config_name !reps !bare !engaged overhead_pct !max_pct ok;
  close_out oc;
  Printf.printf
    "fault-bench: %s best-of-%d — disabled %.3fs, engaged-inert %.3fs, \
     overhead %.2f%% (limit %.1f%%): %s\n"
    !config_name !reps !bare !engaged overhead_pct !max_pct
    (if ok then "OK" else "OVER BUDGET");
  if not ok then exit 1
