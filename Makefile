# Developer / CI entry points.  `make check` is what CI runs.

DUNE ?= dune

.PHONY: all build test smoke verify fault-verify perf-verify obs-bench check bench clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

# End-to-end smoke of the plan/engine/report pipeline: a quick
# experiment on a 2-domain pool with JSON output.
smoke:
	$(DUNE) exec bin/conrat_cli.exe -- experiment --quick E1 --jobs 2 --json
	@test -s BENCH_E1.json && echo "smoke: BENCH_E1.json written"

# Exhaustive safety verification of every registered checker config
# under the POR engine, within a wall-clock budget (seconds).  The
# cheap configs and the raised bounds (binary ratifier n=4, fallback
# depth 28) exhaust comfortably inside it; the depth-34 fallback bound
# runs until the budget and stops cleanly.  On violation the CLI exits
# 1 and leaves <name>.counterexample.sexp in VERIFY_DIR for CI to
# upload.
VERIFY_BUDGET ?= 120
VERIFY_DIR ?= .
verify:
	$(DUNE) exec bin/conrat_cli.exe -- check all \
	  --budget $(VERIFY_BUDGET) --artifact-dir $(VERIFY_DIR)

# Crash-closed exhaustive verification (DESIGN.md §10): the *_fN
# checker configs enumerate every schedule x coin outcome x placement
# of up to f crash-stops and must exhaust cleanly; the expected-fail
# fault demos (a crash-unsafe ratifier variant, the shipped ratifier
# on weakened registers) must exit 1 and leave replayable
# counterexample artifacts in FAULT_VERIFY_DIR for CI to upload.
FAULT_VERIFY_DIR ?= .
fault-verify:
	$(DUNE) exec bin/conrat_cli.exe -- check \
	  binary_ratifier_n2_f1 binary_ratifier_n3_f1 binary_ratifier_n3_f2 \
	  binary_ratifier_accept_n3_f2 conciliator_n2_f1 \
	  --artifact-dir $(FAULT_VERIFY_DIR)
	@if $(DUNE) exec bin/conrat_cli.exe -- check ratifier_await_ack \
	    --artifact-dir $(FAULT_VERIFY_DIR) >/dev/null 2>&1; \
	then echo "fault-verify: ratifier_await_ack unexpectedly passed"; exit 1; \
	else echo "fault-verify: ratifier_await_ack caught (expected)"; fi
	@if $(DUNE) exec bin/conrat_cli.exe -- check binary_ratifier_n2_weak \
	    --artifact-dir $(FAULT_VERIFY_DIR) >/dev/null 2>&1; \
	then echo "fault-verify: binary_ratifier_n2_weak unexpectedly passed"; exit 1; \
	else echo "fault-verify: binary_ratifier_n2_weak caught (expected)"; fi

# Exploration-speed benchmark: the same configs under the same budget,
# but also emitting BENCH_VERIFY.json (schema v1: executions explored,
# machine steps, wall-clock per config) so exploration-speed
# regressions show up in the bench trajectory.  CI uploads the JSON.
# The committed BENCH_VERIFY.json was produced with no budget
# (PERF_VERIFY_BUDGET=0 = unlimited), which exhausts every config
# including the depth-40 fallback bound (~5 min total).
#
# The second step is the fault-plane regression guard (same discipline
# as obs-bench): POR-explore the failure-free fallback_n2_d28 with the
# fault plane disabled vs engaged-but-inert, interleaved best-of-5,
# and fail if the toggled bookkeeping costs more than FAULT_MAX_PCT
# percent.  Writes BENCH_FAULT.json (committed; CI uploads the fresh
# one).
PERF_VERIFY_BUDGET ?= 120
PERF_VERIFY_JSON ?= BENCH_VERIFY.json
FAULT_MAX_PCT ?= 3.0
perf-verify:
ifeq ($(PERF_VERIFY_BUDGET),0)
	$(DUNE) exec bin/conrat_cli.exe -- check all --json $(PERF_VERIFY_JSON)
else
	$(DUNE) exec bin/conrat_cli.exe -- check all \
	  --budget $(PERF_VERIFY_BUDGET) --json $(PERF_VERIFY_JSON)
endif
	@test -s $(PERF_VERIFY_JSON) && echo "perf-verify: $(PERF_VERIFY_JSON) written"
	$(DUNE) exec bench/fault_overhead.exe -- --max-overhead-pct $(FAULT_MAX_PCT)
	@test -s BENCH_FAULT.json && echo "perf-verify: BENCH_FAULT.json written"

# Observability-overhead gate: POR-explore fallback_n2_d28 with no
# sink vs a null sink, best-of-5, and fail if the disabled-sink hot
# path costs more than OBS_MAX_PCT percent.  Writes BENCH_OBS.json
# (committed; CI uploads the fresh one).
OBS_MAX_PCT ?= 3.0
obs-bench:
	$(DUNE) exec bench/obs_overhead.exe -- --max-overhead-pct $(OBS_MAX_PCT)
	@test -s BENCH_OBS.json && echo "obs-bench: BENCH_OBS.json written"

check: build test smoke verify

bench:
	$(DUNE) exec bench/main.exe -- quick

clean:
	$(DUNE) clean
