# Developer / CI entry points.  `make check` is what CI runs.

DUNE ?= dune

.PHONY: all build test smoke check bench clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

# End-to-end smoke of the plan/engine/report pipeline: a quick
# experiment on a 2-domain pool with JSON output.
smoke:
	$(DUNE) exec bin/conrat_cli.exe -- experiment --quick E1 --jobs 2 --json
	@test -s BENCH_E1.json && echo "smoke: BENCH_E1.json written"

check: build test smoke

bench:
	$(DUNE) exec bench/main.exe -- quick

clean:
	$(DUNE) clean
