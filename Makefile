# Developer / CI entry points.  `make check` is what CI runs.

DUNE ?= dune

.PHONY: all build test smoke verify fault-verify par-verify perf-verify obs-bench telemetry-bench perf-step bench-gates check bench clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

# End-to-end smoke of the plan/engine/report pipeline: a quick
# experiment on a 2-domain pool with JSON output.
smoke:
	$(DUNE) exec bin/conrat_cli.exe -- experiment --quick E1 --jobs 2 --json
	@test -s BENCH_E1.json && echo "smoke: BENCH_E1.json written"

# Exhaustive safety verification of every registered checker config
# under the POR engine, within a wall-clock budget (seconds).  The
# cheap configs and the raised bounds (binary ratifier n=4, fallback
# depth 28) exhaust comfortably inside it; the depth-34 fallback bound
# runs until the budget and stops cleanly.  On violation the CLI exits
# 1 and leaves <name>.counterexample.sexp in VERIFY_DIR for CI to
# upload.
VERIFY_BUDGET ?= 120
VERIFY_DIR ?= .
verify:
	$(DUNE) exec bin/conrat_cli.exe -- check all \
	  --budget $(VERIFY_BUDGET) --artifact-dir $(VERIFY_DIR)

# Crash-closed exhaustive verification (DESIGN.md §10): the *_fN
# checker configs enumerate every schedule x coin outcome x placement
# of up to f crash-stops and must exhaust cleanly; the expected-fail
# fault demos (a crash-unsafe ratifier variant, the shipped ratifier
# on weakened registers) must exit 1 and leave replayable
# counterexample artifacts in FAULT_VERIFY_DIR for CI to upload.
FAULT_VERIFY_DIR ?= .
fault-verify:
	$(DUNE) exec bin/conrat_cli.exe -- check \
	  binary_ratifier_n2_f1 binary_ratifier_n3_f1 binary_ratifier_n3_f2 \
	  binary_ratifier_accept_n3_f2 conciliator_n2_f1 \
	  binary_ratifier_rec_n2_f1 binary_ratifier_rec_n3_f1 \
	  --artifact-dir $(FAULT_VERIFY_DIR)
	@if $(DUNE) exec bin/conrat_cli.exe -- check ratifier_await_ack \
	    --artifact-dir $(FAULT_VERIFY_DIR) >/dev/null 2>&1; \
	then echo "fault-verify: ratifier_await_ack unexpectedly passed"; exit 1; \
	else echo "fault-verify: ratifier_await_ack caught (expected)"; fi
	@if $(DUNE) exec bin/conrat_cli.exe -- check binary_ratifier_n2_weak \
	    --artifact-dir $(FAULT_VERIFY_DIR) >/dev/null 2>&1; \
	then echo "fault-verify: binary_ratifier_n2_weak unexpectedly passed"; exit 1; \
	else echo "fault-verify: binary_ratifier_n2_weak caught (expected)"; fi
	@if $(DUNE) exec bin/conrat_cli.exe -- check binary_ratifier_n3_rec \
	    --artifact-dir $(FAULT_VERIFY_DIR) >/dev/null 2>&1; \
	then echo "fault-verify: binary_ratifier_n3_rec unexpectedly passed"; exit 1; \
	else echo "fault-verify: binary_ratifier_n3_rec caught (expected)"; fi

# Parallel determinism gate: the differential suite (every registry
# config at --jobs N vs sequential, dedup on/off, DPOR cross-checks,
# steal/resume bit-identity, hash soundness), then an end-to-end CLI
# smoke — the same config explored sequentially and at --jobs 2 must
# produce byte-identical JSON reports once wall clock and the jobs
# field are masked.
par-verify:
	$(DUNE) exec test/test_parallel.exe
	$(DUNE) exec bin/conrat_cli.exe -- check fallback_n2_d28 \
	  --no-telemetry --json .par-verify-seq.json
	$(DUNE) exec bin/conrat_cli.exe -- check fallback_n2_d28 --jobs 2 \
	  --no-telemetry --json .par-verify-j2.json
	@sed -E 's/"jobs":[0-9]+/"jobs":_/; s/"wall_clock_seconds":[0-9.]+/"wall_clock_seconds":_/' \
	  .par-verify-seq.json > .par-verify-seq.norm
	@sed -E 's/"jobs":[0-9]+/"jobs":_/; s/"wall_clock_seconds":[0-9.]+/"wall_clock_seconds":_/' \
	  .par-verify-j2.json > .par-verify-j2.norm
	@diff -u .par-verify-seq.norm .par-verify-j2.norm \
	  && echo "par-verify: --jobs 2 report bit-identical to sequential"
	@rm -f .par-verify-seq.json .par-verify-j2.json \
	  .par-verify-seq.norm .par-verify-j2.norm

# Exploration-speed benchmark: the same configs under the same budget,
# but also emitting BENCH_VERIFY.json (schema v1: executions explored,
# machine steps, wall-clock per config) so exploration-speed
# regressions show up in the bench trajectory.  CI uploads the JSON.
# The committed BENCH_VERIFY.json was produced with no budget
# (PERF_VERIFY_BUDGET=0 = unlimited), which exhausts every config
# including the depth-40 fallback bound (~5 min total).
#
# The second step is the fault-plane regression guard (same discipline
# as obs-bench): POR-explore the failure-free fallback_n2_d28 with the
# fault plane disabled vs engaged-but-inert, interleaved best-of-5,
# and fail if the toggled bookkeeping costs more than FAULT_MAX_PCT
# percent.  Writes BENCH_FAULT.json (committed; CI uploads the fresh
# one).
#
# The third step is the parallel-scaling gate: fallback_n2_d34 at
# jobs 1/2/4 through Parallel.explore_por, enforcing bit-identical
# merged statistics, gating the jobs=2 speedup at PAR_MIN_SPEEDUP on
# multi-core hosts (reported but not gated on single-core runners),
# writing BENCH_PAR.json and splicing the per-jobs scaling rows into
# $(PERF_VERIFY_JSON).
PERF_VERIFY_BUDGET ?= 120
PERF_VERIFY_JSON ?= BENCH_VERIFY.json
FAULT_MAX_PCT ?= 3.0
PAR_MIN_SPEEDUP ?= 1.6
perf-verify:
ifeq ($(PERF_VERIFY_BUDGET),0)
	$(DUNE) exec bin/conrat_cli.exe -- check all --no-telemetry \
	  --json $(PERF_VERIFY_JSON)
else
	$(DUNE) exec bin/conrat_cli.exe -- check all --no-telemetry \
	  --budget $(PERF_VERIFY_BUDGET) --json $(PERF_VERIFY_JSON)
endif
	@test -s $(PERF_VERIFY_JSON) && echo "perf-verify: $(PERF_VERIFY_JSON) written"
	$(DUNE) exec bench/fault_overhead.exe -- --max-overhead-pct $(FAULT_MAX_PCT)
	@test -s BENCH_FAULT.json && echo "perf-verify: BENCH_FAULT.json written"
	$(DUNE) exec bench/par_scaling.exe -- \
	  --min-speedup $(PAR_MIN_SPEEDUP) --splice $(PERF_VERIFY_JSON)
	@test -s BENCH_PAR.json && echo "perf-verify: BENCH_PAR.json written"

# Observability-overhead gate: POR-explore fallback_n2_d28 with no
# sink vs a null sink, best-of-5, and fail if the disabled-sink hot
# path costs more than OBS_MAX_PCT percent.  Writes BENCH_OBS.json
# (committed; CI uploads the fresh one).  The budget is 9% against
# the VM engine, not the original 3%: the tap's absolute cost
# (~10ns/event, one indirect call) has not moved, but the VM halved
# the per-step denominator; re-measured at 0.5-6.8% across runs after
# the telemetry plane landed — see bench/obs_overhead.ml for the
# arithmetic.
OBS_MAX_PCT ?= 9.0
obs-bench:
	$(DUNE) exec bench/obs_overhead.exe -- --max-overhead-pct $(OBS_MAX_PCT)
	@test -s BENCH_OBS.json && echo "obs-bench: BENCH_OBS.json written"

# Telemetry-probe overhead gate: POR-explore fallback_n2_d28 with no
# probe vs a counters-only Telemetry registry (what `check --json` now
# pays), interleaved best-of-5, and fail if the counters cost more
# than TELEMETRY_MAX_PCT percent.  Coverage mode (per-leaf depth and
# stage histograms) is timed informationally in the same run.  Writes
# BENCH_TELEMETRY.json (committed; CI uploads the fresh one).
TELEMETRY_MAX_PCT ?= 3.0
telemetry-bench:
	$(DUNE) exec bench/telemetry_overhead.exe -- \
	  --max-overhead-pct $(TELEMETRY_MAX_PCT)
	@test -s BENCH_TELEMETRY.json && echo "telemetry-bench: BENCH_TELEMETRY.json written"

# Step-rate regression gate: the identical POR search under the tree
# interpreter vs the compiled VM (the only variable is the program
# engine behind the Machine façade), interleaved best-of-STEP_REPS,
# failing when the VM's steps/s advantage drops below STEP_MIN_SPEEDUP.
# Writes BENCH_STEP.json (committed; CI uploads the fresh one).  See
# bench/step_rate.ml for why the floor sits under the ~1.6x
# engine-isolated ratio rather than the ~2.4x end-to-end win over the
# pre-VM commit recorded in EXPERIMENTS.md.
STEP_REPS ?= 5
STEP_MIN_SPEEDUP ?= 1.4
perf-step:
	$(DUNE) exec bench/step_rate.exe -- \
	  --reps $(STEP_REPS) --min-speedup $(STEP_MIN_SPEEDUP)
	@test -s BENCH_STEP.json && echo "perf-step: BENCH_STEP.json written"

# Every committed performance gate in one target — what CI runs after
# the correctness stages: exploration speed (BENCH_VERIFY.json) +
# fault-plane overhead (BENCH_FAULT.json) + parallel scaling
# (BENCH_PAR.json), observability overhead (BENCH_OBS.json), the
# telemetry-probe overhead (BENCH_TELEMETRY.json), and the VM
# step-rate floor (BENCH_STEP.json).
bench-gates: perf-verify obs-bench telemetry-bench perf-step

check: build test smoke verify

bench:
	$(DUNE) exec bench/main.exe -- quick

clean:
	$(DUNE) clean
