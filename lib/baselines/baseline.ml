open Conrat_sim
open Conrat_objects
open Conrat_core

let cil_racing ~m =
  Consensus.of_deciding
    (Printf.sprintf "cil_racing(m=%d)" m)
    (Fallback.racing ~m ())

let standard_ratifier ~m =
  if m <= 2 then Ratifier.binary () else Ratifier.bollobas ~m

let constant_rate_consensus ~m =
  Consensus.unbounded
    ~name:(Printf.sprintf "constant_rate(m=%d)" m)
    ~conciliator:(fun _ -> Conciliator.constant_rate ())
    ~ratifier:(fun _ -> standard_ratifier ~m)
    ()

let schedule_conciliator ~growth =
  let name, probability =
    match growth with
    | `Double ->
      ("fm_double", fun ~n k -> min 1.0 (float_of_int (1 lsl min k 62) /. float_of_int n))
    | `Quadruple ->
      ("fm_quadruple", fun ~n k -> min 1.0 (float_of_int (1 lsl min (2 * k) 62) /. float_of_int n))
    | `Linear ->
      ("fm_linear", fun ~n k -> min 1.0 (float_of_int (k + 1) /. float_of_int n))
  in
  Deciding.make_factory name (fun ~n memory ->
    let r = Memory.alloc memory in
    Deciding.instance name ~space:1 (fun ~pid:_ ~rng:_ v ->
      let open Program in
      let rec loop k =
        let* u = read r in
        match u with
        | Some u -> return { Deciding.decide = false; value = u }
        | None ->
          let* () = prob_write r v ~p:(probability ~n k) in
          loop (k + 1)
      in
      loop 0))

let growth_rate_consensus ~m ~growth =
  let tag = match growth with `Double -> "x2" | `Quadruple -> "x4" | `Linear -> "+1" in
  Consensus.unbounded
    ~name:(Printf.sprintf "growth_%s(m=%d)" tag m)
    ~conciliator:(fun _ -> schedule_conciliator ~growth)
    ~ratifier:(fun _ -> standard_ratifier ~m)
    ()
