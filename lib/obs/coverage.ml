(* Coverage signatures: what the search saw, as opposed to how hard it
   worked (Telemetry's counters).  One instance is single-writer — each
   explorer worker owns one — and instances merge commutatively, so the
   fleet's signature is independent of shard placement. *)

type kind = [ `Complete | `Truncated | `Pruned ]

(* Stage ids are 6-bit: id 0 is "no stage", 63 the overflow bucket once
   62 distinct labels have been seen (registry protocols use a
   handful).  A leaf signature packs one id per process into a single
   int, so collecting a signature allocates nothing once the labels are
   interned; signatures are only widened to name arrays at export. *)
let id_bits = 6
let id_mask = 63
let overflow_id = 63
let max_ids = 62
let max_sig_n = 10 (* 10 * 6 bits < 63; wider configs skip signatures *)

type t = {
  mutable dc : int array; (* depth histogram of complete leaves *)
  mutable dt : int array; (* ... truncated *)
  mutable dp : int array; (* ... pruned *)
  interner : (string, int) Hashtbl.t;
  mutable names : string array; (* id -> label *)
  mutable nnames : int;
  mutable sig_n : int; (* processes per signature; 0 until first leaf *)
  sigs : (int, int) Hashtbl.t; (* packed signature -> leaf count *)
  mutable curves : (int * int) array list; (* sealed saturation curves *)
  mutable live : (int * int) list; (* current curve, newest first *)
}

let create () =
  let names = Array.make 8 "" in
  names.(0) <- "-";
  { dc = [||];
    dt = [||];
    dp = [||];
    interner = Hashtbl.create 16;
    names;
    nnames = 1;
    sig_n = 0;
    sigs = Hashtbl.create 64;
    curves = [];
    live = [] }

let intern t s =
  match Hashtbl.find_opt t.interner s with
  | Some id -> id
  | None ->
    if t.nnames > max_ids then overflow_id
    else begin
      let id = t.nnames in
      if id >= Array.length t.names then begin
        let bigger = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 bigger 0 (Array.length t.names);
        t.names <- bigger
      end;
      t.names.(id) <- s;
      t.nnames <- id + 1;
      Hashtbl.add t.interner s id;
      id
    end

let name_of t id =
  if id = overflow_id && id >= t.nnames then "…" else t.names.(id)

let bump_depth arr d =
  let arr =
    if d < Array.length arr then arr
    else begin
      let bigger = Array.make (max (2 * Array.length arr) (d + 1)) 0 in
      Array.blit arr 0 bigger 0 (Array.length arr);
      bigger
    end
  in
  arr.(d) <- arr.(d) + 1;
  arr

let leaf t ~kind ~depth ~n ~stage =
  (match kind with
   | `Complete -> t.dc <- bump_depth t.dc depth
   | `Truncated -> t.dt <- bump_depth t.dt depth
   | `Pruned -> t.dp <- bump_depth t.dp depth);
  match kind with
  | `Pruned -> ()
  | `Complete | `Truncated ->
    if n <= max_sig_n then begin
      if t.sig_n = 0 then t.sig_n <- n;
      let packed = ref 0 in
      for pid = n - 1 downto 0 do
        let id =
          match stage pid with None -> 0 | Some s -> intern t s
        in
        packed := (!packed lsl id_bits) lor id
      done;
      let cur =
        match Hashtbl.find_opt t.sigs !packed with Some c -> c | None -> 0
      in
      Hashtbl.replace t.sigs !packed (cur + 1)
    end

let saturate t ~leaves ~table = t.live <- (leaves, table) :: t.live

let seal t =
  if t.live <> [] then begin
    t.curves <- Array.of_list (List.rev t.live) :: t.curves;
    t.live <- []
  end

let unpack t packed n =
  Array.init n (fun i -> name_of t ((packed lsr (i * id_bits)) land id_mask))

let add_arrays a b =
  if Array.length b = 0 then a
  else begin
    let a =
      if Array.length a >= Array.length b then a
      else begin
        let bigger = Array.make (Array.length b) 0 in
        Array.blit a 0 bigger 0 (Array.length a);
        bigger
      end
    in
    Array.iteri (fun i v -> a.(i) <- a.(i) + v) b;
    a
  end

(* Merge [b] into [a].  [b]'s live curve is sealed first; [b] itself is
   otherwise unchanged and may be merged again (double-counting is the
   caller's problem, as with any counter). *)
let merge a b =
  seal a;
  seal b;
  a.dc <- add_arrays a.dc b.dc;
  a.dt <- add_arrays a.dt b.dt;
  a.dp <- add_arrays a.dp b.dp;
  if a.sig_n = 0 then a.sig_n <- b.sig_n;
  Hashtbl.iter
    (fun packed count ->
      let names = unpack b packed b.sig_n in
      let repacked = ref 0 in
      for i = b.sig_n - 1 downto 0 do
        let id = if names.(i) = "-" then 0 else intern a names.(i) in
        repacked := (!repacked lsl id_bits) lor id
      done;
      let cur =
        match Hashtbl.find_opt a.sigs !repacked with Some c -> c | None -> 0
      in
      Hashtbl.replace a.sigs !repacked (cur + count))
    b.sigs;
  a.curves <- a.curves @ b.curves

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let trim arr =
  let len = ref (Array.length arr) in
  while !len > 0 && arr.(!len - 1) = 0 do
    decr len
  done;
  Array.sub arr 0 !len

let int_array_json arr =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int arr)) ^ "]"

(* Canonical rendering: depth arrays trimmed of trailing zeros,
   signatures sorted by their rendered name tuples, curves sorted
   structurally — so [to_json] is a function of the abstract contents,
   not of interning or merge order, and the qcheck round-trip in the
   test suite can compare documents as strings. *)
let to_json t =
  seal t;
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"schema_version\":3";
  Buffer.add_string b ",\"depth_profile\":{";
  Buffer.add_string b ("\"complete\":" ^ int_array_json (trim t.dc));
  Buffer.add_string b (",\"truncated\":" ^ int_array_json (trim t.dt));
  Buffer.add_string b (",\"pruned\":" ^ int_array_json (trim t.dp));
  Buffer.add_string b "}";
  let sigs =
    Hashtbl.fold
      (fun packed count acc -> (unpack t packed t.sig_n, count) :: acc)
      t.sigs []
    |> List.sort compare
  in
  Buffer.add_string b ",\"stage_signatures\":[";
  List.iteri
    (fun i (names, count) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"sig\":[";
      Array.iteri
        (fun j s ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (json_string s))
        names;
      Buffer.add_string b (Printf.sprintf "],\"count\":%d}" count))
    sigs;
  Buffer.add_string b "]";
  let curves = List.sort compare t.curves in
  Buffer.add_string b ",\"dedup_saturation\":[";
  List.iteri
    (fun i curve ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '[';
      Array.iteri
        (fun j (leaves, table) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%d,%d]" leaves table))
        curve;
      Buffer.add_char b ']')
    curves;
  Buffer.add_string b "]}";
  Buffer.contents b

(* Minimal JSON reader for the subset [to_json] emits: objects, arrays,
   strings (with escapes) and integers. *)
type json =
  | O of (string * json) list
  | A of json list
  | S of string
  | I of int

exception Parse of string

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then s.[!pos] else '\000' in
  let next () =
    if !pos >= len then raise (Parse "unexpected end");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let rec skip_ws () =
    if !pos < len then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    skip_ws ();
    if next () <> c then raise (Parse (Printf.sprintf "expected %c" c))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           let hex = String.init 4 (fun _ -> next ()) in
           let code = int_of_string ("0x" ^ hex) in
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else
             (* Non-ASCII escapes never come from [to_json]; keep the
                reader total anyway. *)
             Buffer.add_string b (Printf.sprintf "\\u%s" hex)
         | c -> raise (Parse (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      ignore (next ());
      skip_ws ();
      if peek () = '}' then begin
        ignore (next ());
        O []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> O (List.rev ((k, v) :: acc))
          | c -> raise (Parse (Printf.sprintf "bad object char %c" c))
        in
        members []
      end
    | '[' ->
      ignore (next ());
      skip_ws ();
      if peek () = ']' then begin
        ignore (next ());
        A []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> elems (v :: acc)
          | ']' -> A (List.rev (v :: acc))
          | c -> raise (Parse (Printf.sprintf "bad array char %c" c))
        in
        elems []
      end
    | '"' -> S (parse_string ())
    | '-' | '0' .. '9' ->
      let start = !pos in
      if peek () = '-' then ignore (next ());
      while
        match peek () with '0' .. '9' -> true | _ -> false
      do
        ignore (next ())
      done;
      I (int_of_string (String.sub s start (!pos - start)))
    | c -> raise (Parse (Printf.sprintf "unexpected %c" c))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then raise (Parse "trailing input");
  v

let field name = function
  | O members ->
    (match List.assoc_opt name members with
     | Some v -> v
     | None -> raise (Parse ("missing field " ^ name)))
  | _ -> raise (Parse "expected object")

let as_int = function I i -> i | _ -> raise (Parse "expected int")
let as_string = function S s -> s | _ -> raise (Parse "expected string")
let as_list = function A l -> l | _ -> raise (Parse "expected array")

let int_array v = Array.of_list (List.map as_int (as_list v))

let of_json s =
  match parse_json s with
  | exception Parse msg -> Error ("coverage JSON: " ^ msg)
  | exception Failure msg -> Error ("coverage JSON: " ^ msg)
  | doc ->
    (try
       (match field "schema_version" doc with
        | I 3 -> ()
        | _ -> raise (Parse "unsupported schema_version"));
       let t = create () in
       let dp = field "depth_profile" doc in
       t.dc <- int_array (field "complete" dp);
       t.dt <- int_array (field "truncated" dp);
       t.dp <- int_array (field "pruned" dp);
       List.iter
         (fun entry ->
           let names =
             List.map as_string (as_list (field "sig" entry))
           in
           let count = as_int (field "count" entry) in
           if t.sig_n = 0 then t.sig_n <- List.length names;
           let packed = ref 0 in
           List.iteri
             (fun i nm ->
               let id = if nm = "-" then 0 else intern t nm in
               packed := !packed lor (id lsl (i * id_bits)))
             names;
           let cur =
             match Hashtbl.find_opt t.sigs !packed with
             | Some c -> c
             | None -> 0
           in
           Hashtbl.replace t.sigs !packed (cur + count))
         (as_list (field "stage_signatures" doc));
       t.curves <-
         List.map
           (fun curve ->
             Array.of_list
               (List.map
                  (fun pt ->
                    match as_list pt with
                    | [ l; tbl ] -> (as_int l, as_int tbl)
                    | _ -> raise (Parse "bad saturation sample"))
                  (as_list curve)))
           (as_list (field "dedup_saturation" doc));
       Ok t
     with Parse msg -> Error ("coverage JSON: " ^ msg))

let equal a b = String.equal (to_json a) (to_json b)

let signatures t = Hashtbl.length t.sigs

let leaves t =
  Array.fold_left ( + ) 0 t.dc
  + Array.fold_left ( + ) 0 t.dt
  + Array.fold_left ( + ) 0 t.dp
