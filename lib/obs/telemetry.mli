(** The search telemetry plane: an allocation-free counters registry
    for the explorers.

    Counters form a fixed set registered by name; the registry holds
    one row of [Atomic.t] cells per worker domain, and a {e probe} is
    one such row handed to one explorer — bumping a counter is a single
    uncontended atomic add, and an explorer run with no probe pays one
    branch per instrumentation point (gated by [bench/telemetry_overhead.ml]
    and the [telemetry-bench] CI gate, [BENCH_TELEMETRY.json]).

    Aggregation is explicit: {!snapshot_of_domain} reads one row,
    {!totals} merges rows in domain index order — which {!Parallel}
    aligns with shard-emission (DFS) order — so fleet totals of the
    executions/steps-class counters are [--jobs]-invariant (asserted in
    [test/test_parallel.ml]).  Snapshots form a monoid under {!merge}
    with {!empty} as identity: [Sum] counters add, [Max] gauges max. *)

type kind =
  | Sum  (** additive across domains and runs (work done) *)
  | Max  (** high-water gauge (peak occupancy) *)

type counter = private int
(** A registered counter id. *)

(** {2 The registered counters} *)

(* steps = machine transitions (VM steps) applied; steals = shards
   stolen from the pool; shards_done = stolen shards fully explored;
   shards_generated (Max) = frontier size of the kept generation pass;
   frontier_passes = deepening passes the shard generator ran;
   dedup_hits = duplicate-state prunes (subset rule); dedup_misses =
   fresh visited-table entries; dedup_intersections = revisits
   re-explored with a narrowed sleep set; dedup_table_peak (Max) =
   visited-table entries; snapshots = fresh machine snapshots
   allocated; snapshot_refreshes = pool slots refreshed in place;
   snapshot_pool_high (Max) = deepest pool slot used; dpor_races =
   races the DPOR oracle detected; dpor_backtracks = backtrack-set
   candidates added; checkpoints = checkpoint frontiers saved;
   recovers = crash-recovery events applied; plan_overrides_ignored =
   invalid Monte-Carlo fault-plan overrides degraded to plain steps.
   Ids are append-only: new counters go at the end so persisted
   snapshots and dashboards never reinterpret an old id. *)

val leaves_complete : counter
val leaves_truncated : counter
val leaves_pruned : counter
val steps : counter
val steals : counter
val shards_done : counter
val shards_generated : counter
val frontier_passes : counter
val dedup_hits : counter
val dedup_misses : counter
val dedup_intersections : counter
val dedup_table_peak : counter
val snapshots : counter
val snapshot_refreshes : counter
val snapshot_pool_high : counter
val dpor_races : counter
val dpor_backtracks : counter
val checkpoints : counter
val recovers : counter
val plan_overrides_ignored : counter

val ncounters : int
val name : counter -> string
val kind : counter -> kind
val find : string -> counter option
val counters : (string * kind) list
(** The registry, in counter-id order. *)

(** {2 Probes} *)

type probe
(** One domain's cell row (plus its {!Coverage.t} when enabled).
    Single-writer: exactly one explorer bumps a probe at a time. *)

val bump : probe -> counter -> unit
val add : probe -> counter -> int -> unit
val peak : probe -> counter -> int -> unit
(** Raise a [Max] gauge to [v] if below it. *)

val coverage : probe -> Coverage.t option

val fresh_probe : ?coverage:bool -> unit -> probe
(** A free-standing probe, not backed by any registry row — for shard
    generator passes, where only the {e last} deepening pass's counts
    may survive ({!absorb} the winner, drop the rest). *)

(** {2 The registry} *)

type t

val create : ?coverage:bool -> domains:int -> unit -> t
(** [domains] rows of zeroed cells.  [coverage] equips each probe with
    a {!Coverage.t} (default off — coverage collection does per-leaf
    work and is priced separately from the counters; see
    EXPERIMENTS.md). *)

val domains : t -> int
val coverage_on : t -> bool

val probe : t -> domain:int -> probe
(** The (memoized) probe backed by [domain]'s row. *)

val absorb : t -> domain:int -> probe -> unit
(** Fold a {!fresh_probe}'s cells into [domain]'s row ([Sum] adds,
    [Max] maxes) and its coverage into the registry accumulator. *)

type shard = {
  shard : int;    (** frontier index (DFS emission order) *)
  domain : int;   (** worker that explored it *)
  prefix : int;   (** shard path prefix depth *)
  leaves : int;   (** leaves in the shard subtree *)
  steps : int;    (** rebased VM steps (sums to the sequential total) *)
  seconds : float;  (** wall clock the worker spent on it *)
}

val record_shard : t -> shard -> unit
val shards : t -> shard list
(** In shard (DFS emission) order. *)

val finalize : t -> unit
(** Merge every probe's coverage into the registry accumulator.  Call
    once, after the fleet has joined; idempotent. *)

val merged_coverage : t -> Coverage.t option
(** Available after {!finalize} (or [None] without [~coverage:true]). *)

val live : t -> counter -> int
(** Racy fleet-wide read for progress heartbeats: [Sum] counters summed
    over domains, [Max] gauges maxed. *)

(** {2 Snapshots — the counter monoid} *)

type snapshot

val empty : unit -> snapshot
(** The monoid identity (all zeros). *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise by {!kind}: [Sum] adds, [Max] maxes.  Associative and
    commutative with {!empty} as identity (asserted by qcheck in the
    test suite). *)

val snapshot_of_domain : t -> domain:int -> snapshot
val totals : t -> snapshot
(** Rows merged in domain index order (DFS shard order). *)

val get : snapshot -> counter -> int
val to_alist : snapshot -> (string * int) list
val of_values : int array -> snapshot
(** From raw cell values (length {!ncounters}) — test constructor. *)

(** {2 JSON} *)

val snapshot_json : snapshot -> string
val to_json : t -> string
(** The schema-v3 telemetry block: fleet-total counters, per-domain
    rows, per-shard records and — after {!finalize}, when coverage was
    enabled — the {!Coverage.to_json} block under ["coverage"]. *)
