type t = {
  out : out_channel;
  interval : float;
  check_every : int;
  expected : int option;
  baseline_seconds : float option;
  label : string;
  tty : bool;
  started : float;
  mutable countdown : int;
  mutable last_emit : float;
  mutable last_done : int;
  mutable dirty : bool;  (* an in-place line is on screen *)
  mutex : Mutex.t;
}

let default_enabled () =
  (try Unix.isatty Unix.stderr with _ -> false)
  && Sys.getenv_opt "CI" = None

let create ?(out = stderr) ?(interval = 1.0) ?(check_every = 4096) ?expected
    ?baseline_seconds ~label () =
  let now = Unix.gettimeofday () in
  { out;
    interval;
    check_every;
    expected;
    baseline_seconds;
    label;
    tty = (try Unix.isatty (Unix.descr_of_out_channel out) with _ -> false);
    started = now;
    countdown = check_every;
    last_emit = now;
    last_done = 0;
    dirty = false;
    mutex = Mutex.create () }

let human_count n =
  if n >= 10_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.0fk" (float_of_int n /. 1e3)
  else string_of_int n

let human_seconds s =
  if s < 0.0 then "?"
  else if s < 60.0 then Printf.sprintf "%.0fs" s
  else if s < 3600.0 then
    Printf.sprintf "%dm%02ds" (int_of_float s / 60) (int_of_float s mod 60)
  else Printf.sprintf "%dh%02dm" (int_of_float s / 3600) (int_of_float s mod 3600 / 60)

let emit t ~now ~done_ ~detail =
  let dt = now -. t.last_emit in
  let rate =
    if dt > 0.0 then float_of_int (done_ - t.last_done) /. dt else 0.0
  in
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "[%s] %s" t.label (human_count done_));
  (match t.expected with
   | Some exp when exp > 0 ->
     Buffer.add_string b
       (Printf.sprintf " %d%%" (min 100 (done_ * 100 / exp)));
     if rate > 0.0 && done_ < exp then
       Buffer.add_string b
         (Printf.sprintf " ETA %s"
            (human_seconds (float_of_int (exp - done_) /. rate)))
   | _ -> ());
  if rate > 0.0 then
    Buffer.add_string b (Printf.sprintf " %s/s" (human_count (int_of_float rate)));
  (match t.baseline_seconds with
   | Some s ->
     Buffer.add_string b
       (Printf.sprintf " (elapsed %s, baseline %s)"
          (human_seconds (now -. t.started)) (human_seconds s))
   | None -> ());
  let extra = detail () in
  if extra <> "" then begin
    Buffer.add_char b ' ';
    Buffer.add_string b extra
  end;
  if t.tty then begin
    output_string t.out "\r\x1b[K";
    output_string t.out (Buffer.contents b);
    t.dirty <- true
  end
  else begin
    output_string t.out (Buffer.contents b);
    output_char t.out '\n'
  end;
  flush t.out;
  t.last_emit <- now;
  t.last_done <- done_

let maybe_emit t ~done_ ~detail =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let now = Unix.gettimeofday () in
      if now -. t.last_emit >= t.interval then emit t ~now ~done_ ~detail)

let tick t ~done_ ~detail =
  (* Hot path: one decrement; the clock is read every [check_every]
     ticks at most.  The counter is racy under parallel callers, which
     only skews *when* the clock gets read — emission is mutexed. *)
  t.countdown <- t.countdown - 1;
  if t.countdown <= 0 then begin
    t.countdown <- t.check_every;
    maybe_emit t ~done_ ~detail
  end

let force t ~done_ ~detail =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () -> emit t ~now:(Unix.gettimeofday ()) ~done_ ~detail)

let finish t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if t.dirty then begin
        output_string t.out "\r\x1b[K";
        flush t.out;
        t.dirty <- false
      end)
