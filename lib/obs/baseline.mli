(** Committed benchmark baselines, for progress ETAs.

    Reads the flat-object JSON written by the verification benchmark
    ([BENCH_VERIFY.json]): a known schema produced by this repo, parsed
    with a small tolerant field scanner — not a general JSON parser.
    Unreadable files or missing fields yield an empty list / [None]
    rather than an error: baselines only ever improve a progress
    display. *)

type entry = {
  name : string;                (** checker config name *)
  engine : string;              (** ["por"], ["naive"], … *)
  executions : int;             (** leaf executions in the baseline run *)
  wall_clock_seconds : float;
  exhausted : bool;
}

val load : string -> entry list
(** Entries of the file, or [[]] if it cannot be read or parsed. *)

val find : entry list -> name:string -> engine:string -> entry option

val default_path : string
(** ["BENCH_VERIFY.json"], resolved relative to the working directory. *)
