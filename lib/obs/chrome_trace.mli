(** Chrome trace-event exporter.

    Collects the events of one (or several sequential) executions into
    the Trace Event JSON format understood by Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and [chrome://tracing]:
    each simulated process is a track, every operation a 1-µs complete
    event at its logical step (1 step = 1 µs of trace time), every
    {!Conrat_sim.Program.label} stage a nested duration span, decisions,
    injected crash-stops (an instant on the crashed process's track that
    also closes its open stage span) and explorer snapshot/restore
    instants.  The output is a single JSON object
    [{"traceEvents": [...]}]. *)

type t

val create : n:int -> t
(** A fresh collector for [n] processes.  Emits thread-name metadata so
    tracks are labeled ["process 0"], …, plus an ["explorer"] track for
    snapshot/restore events. *)

val sink : t -> Conrat_sim.Sink.t
(** The sink to install on a run ({!Conrat_sim.Scheduler.run},
    {!Conrat_sim.Explore.explore}, …).  Checkpoint saves appear as
    instants on the explorer track. *)

val create_fleet : workers:int -> t
(** A collector for a {e parallel} exploration: one track per worker
    domain (["worker 0"], …), timestamps in wall-clock microseconds
    since creation.  Install {!fleet_sink} on
    {!section-"Conrat_verify"}[.Parallel]; each stolen shard renders as
    a duration span on its worker's track (shard id and prefix depth in
    the opening args, leaf/step counts in the closing args) preceded by
    a ["steal"] instant marker.  Thread-safe: events may arrive from
    every worker domain. *)

val fleet_sink : t -> Conrat_sim.Sink.t
(** The fleet-event sink of a {!create_fleet} collector (raises
    [Invalid_argument] on a machine-mode collector). *)

val events : t -> int
(** Trace events recorded so far (metadata included). *)

val write : t -> out_channel -> unit
(** Finalize (close any open stage spans) and write the JSON document.
    Call once, after the run. *)

val to_string : t -> string
(** As {!write}, into a string. *)
