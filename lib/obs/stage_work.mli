(** Per-stage work histogram.

    Accumulates operation counts keyed by the innermost
    {!Conrat_sim.Program.label} stage, per process, across everything
    the attached sink sees.  The harness uses one per trial to produce
    the per-stage work breakdown of the schema-v2 metrics JSON.
    Operations issued outside any label are keyed ["(unlabeled)"]. *)

type t

val create : n:int -> t

val sink : t -> Conrat_sim.Sink.t

val totals : t -> (string * (int * int)) list
(** [(stage, (total ops, max ops by one process))] per stage seen,
    sorted by stage name. *)

val merge : (string * (int * int)) list -> (string * (int * int)) list ->
  (string * (int * int)) list
(** Union-combine two breakdowns: totals add, per-process maxima take
    the max (trials are independent executions).  Commutative and
    associative; both inputs and the output are sorted by stage. *)

val unlabeled : string
(** The key under which label-free operations are counted. *)
