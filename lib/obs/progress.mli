(** Rate-limited progress reporting for long explorations.

    A {!t} is fed from a hot loop via {!tick} — typically wired to an
    explorer's [heartbeat] — and writes at most one status line per
    [interval] seconds to stderr.  The hot path is one mutex-free
    integer decrement ([check_every] ticks between clock reads), so a
    reporter can sit on a million-leaves-per-second search without
    showing up in a profile.  Emission itself takes a mutex, so one
    reporter may be shared by parallel workers.

    Lines look like

    {v [fallback_n2_d40] 12.3M leaves 41% 890k/s ETA 3m12s (baseline 4m0s) v}

    where the percentage and ETA appear when [expected] is known (e.g.
    from a committed {!Baseline} entry) and the baseline comparison when
    [baseline] is given.  On a TTY the line redraws in place; otherwise
    each emission is a full line. *)

type t

val default_enabled : unit -> bool
(** The CLI's default for whether to report progress: stderr is a TTY
    and [CI] is not set in the environment. *)

val create :
  ?out:out_channel ->
  ?interval:float ->
  ?check_every:int ->
  ?expected:int ->
  ?baseline_seconds:float ->
  label:string ->
  unit ->
  t
(** [out] defaults to stderr, [interval] to 1.0 seconds, [check_every]
    to 4096 ticks per clock read. *)

val tick : t -> done_:int -> detail:(unit -> string) -> unit
(** Account progress up to [done_] units; if an emission is due, append
    [detail ()] to the status line.  [detail] is only called when a
    line is actually written. *)

val force : t -> done_:int -> detail:(unit -> string) -> unit
(** Emit a line now, regardless of rate limiting. *)

val finish : t -> unit
(** Terminate the in-place line (TTY only); call once when done. *)
