(* The explorer counters registry.  Counters are a fixed, named set;
   cells are per-domain [Atomic.t]s so a worker bumps its own row
   without contention, and snapshots merge rows in domain (= DFS shard
   emission) order so fleet totals are reproducible.  A probe is one
   row handed to one explorer; the registry aggregates. *)

type kind = Sum | Max

type counter = int

(* Counter ids.  Keep [registry] below in the same order. *)
let leaves_complete = 0
let leaves_truncated = 1
let leaves_pruned = 2
let steps = 3
let steals = 4
let shards_done = 5
let shards_generated = 6
let frontier_passes = 7
let dedup_hits = 8
let dedup_misses = 9
let dedup_intersections = 10
let dedup_table_peak = 11
let snapshots = 12
let snapshot_refreshes = 13
let snapshot_pool_high = 14
let dpor_races = 15
let dpor_backtracks = 16
let checkpoints = 17
let recovers = 18
let plan_overrides_ignored = 19
let ncounters = 20

let registry =
  [| ("leaves_complete", Sum);
     ("leaves_truncated", Sum);
     ("leaves_pruned", Sum);
     ("steps", Sum);
     ("steals", Sum);
     ("shards_done", Sum);
     ("shards_generated", Max);
     ("frontier_passes", Sum);
     ("dedup_hits", Sum);
     ("dedup_misses", Sum);
     ("dedup_intersections", Sum);
     ("dedup_table_peak", Max);
     ("snapshots", Sum);
     ("snapshot_refreshes", Sum);
     ("snapshot_pool_high", Max);
     ("dpor_races", Sum);
     ("dpor_backtracks", Sum);
     ("checkpoints", Sum);
     ("recovers", Sum);
     ("plan_overrides_ignored", Sum) |]

let () = assert (Array.length registry = ncounters)
let name c = fst registry.(c)
let kind c = snd registry.(c)

let find nm =
  let rec go c =
    if c >= ncounters then None
    else if String.equal (name c) nm then Some c
    else go (c + 1)
  in
  go 0

let counters = Array.to_list registry

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

type probe = {
  cells : int Atomic.t array; (* one per counter; single-writer *)
  cov : Coverage.t option;
}

let fresh_cells () = Array.init ncounters (fun _ -> Atomic.make 0)

let fresh_probe ?(coverage = false) () =
  { cells = fresh_cells ();
    cov = (if coverage then Some (Coverage.create ()) else None) }

let bump p c = ignore (Atomic.fetch_and_add p.cells.(c) 1)
let add p c v = ignore (Atomic.fetch_and_add p.cells.(c) v)

(* Single-writer cells: a plain read-compare-set max is race-free. *)
let peak p c v = if v > Atomic.get p.cells.(c) then Atomic.set p.cells.(c) v

let coverage p = p.cov

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type shard = {
  shard : int;
  domain : int;
  prefix : int;
  leaves : int;
  steps : int;
  seconds : float;
}

type t = {
  domains : int;
  coverage_on : bool;
  rows : int Atomic.t array array; (* [domain].[counter] *)
  probes : probe option array;
  mutable shards : shard list;
  mutable merged_cov : Coverage.t option;
  mutable finalized : bool;
  mutex : Mutex.t;
}

let create ?(coverage = false) ~domains () =
  if domains < 1 then invalid_arg "Telemetry.create: domains must be >= 1";
  { domains;
    coverage_on = coverage;
    rows = Array.init domains (fun _ -> fresh_cells ());
    probes = Array.make domains None;
    shards = [];
    merged_cov = None;
    finalized = false;
    mutex = Mutex.create () }

let domains t = t.domains
let coverage_on t = t.coverage_on

let probe t ~domain =
  if domain < 0 || domain >= t.domains then
    invalid_arg "Telemetry.probe: domain out of range";
  Mutex.protect t.mutex (fun () ->
      match t.probes.(domain) with
      | Some p -> p
      | None ->
        let p =
          { cells = t.rows.(domain);
            cov =
              (if t.coverage_on then Some (Coverage.create ()) else None) }
        in
        t.probes.(domain) <- Some p;
        p)

let merge_cov_locked t cov =
  match t.merged_cov with
  | Some acc -> Coverage.merge acc cov
  | None ->
    let acc = Coverage.create () in
    Coverage.merge acc cov;
    t.merged_cov <- Some acc

(* Fold a free-standing probe's cells (and coverage) into a domain row
   — used for shard-generator passes, whose probes must be fresh per
   pass because only the last pass's residue counts. *)
let absorb t ~domain p =
  if domain < 0 || domain >= t.domains then
    invalid_arg "Telemetry.absorb: domain out of range";
  let row = t.rows.(domain) in
  for c = 0 to ncounters - 1 do
    let v = Atomic.get p.cells.(c) in
    match kind c with
    | Sum -> if v <> 0 then ignore (Atomic.fetch_and_add row.(c) v)
    | Max -> if v > Atomic.get row.(c) then Atomic.set row.(c) v
  done;
  match p.cov with
  | None -> ()
  | Some cov -> Mutex.protect t.mutex (fun () -> merge_cov_locked t cov)

let record_shard t sh =
  Mutex.protect t.mutex (fun () -> t.shards <- sh :: t.shards)

let shards t =
  List.sort (fun a b -> compare a.shard b.shard) t.shards

(* Merge every worker probe's coverage into the registry's accumulator
   — once, after the fleet has joined. *)
let finalize t =
  Mutex.protect t.mutex (fun () ->
      if not t.finalized then begin
        t.finalized <- true;
        Array.iter
          (function
            | Some { cov = Some cov; _ } -> merge_cov_locked t cov
            | Some { cov = None; _ } | None -> ())
          t.probes
      end)

let merged_coverage t = t.merged_cov

(* Live fleet-wide read (racy but monotone per cell): Sum counters sum
   over domains, Max counters max. *)
let live t c =
  let acc = ref 0 in
  for d = 0 to t.domains - 1 do
    let v = Atomic.get t.rows.(d).(c) in
    match kind c with
    | Sum -> acc := !acc + v
    | Max -> if v > !acc then acc := v
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Snapshots: the counter monoid                                       *)
(* ------------------------------------------------------------------ *)

type snapshot = int array

let empty () : snapshot = Array.make ncounters 0

let of_values vs =
  if Array.length vs <> ncounters then
    invalid_arg "Telemetry.of_values: wrong length";
  Array.copy vs

let get (s : snapshot) c = s.(c)

let to_alist (s : snapshot) =
  List.init ncounters (fun c -> (name c, s.(c)))

let merge (a : snapshot) (b : snapshot) : snapshot =
  Array.init ncounters (fun c ->
      match kind c with Sum -> a.(c) + b.(c) | Max -> max a.(c) b.(c))

let snapshot_of_domain t ~domain : snapshot =
  Array.init ncounters (fun c -> Atomic.get t.rows.(domain).(c))

(* Domain rows merged in index order — shard-emission (DFS) order, so
   [--jobs N] totals are reproducible wherever the semantics are
   deterministic (Sum counters of executions/steps class). *)
let totals t : snapshot =
  let acc = ref (snapshot_of_domain t ~domain:0) in
  for d = 1 to t.domains - 1 do
    acc := merge !acc (snapshot_of_domain t ~domain:d)
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let strf = Printf.sprintf

let snapshot_json (s : snapshot) =
  "{"
  ^ String.concat ","
      (List.init ncounters (fun c -> strf "\"%s\":%d" (name c) s.(c)))
  ^ "}"

let shard_json sh =
  strf
    "{\"shard\":%d,\"domain\":%d,\"prefix\":%d,\"leaves\":%d,\"steps\":%d,\"seconds\":%.6f}"
    sh.shard sh.domain sh.prefix sh.leaves sh.steps sh.seconds

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema_version\":3";
  Buffer.add_string b (strf ",\"domains\":%d" t.domains);
  Buffer.add_string b (",\"counters\":" ^ snapshot_json (totals t));
  Buffer.add_string b ",\"per_domain\":[";
  for d = 0 to t.domains - 1 do
    if d > 0 then Buffer.add_char b ',';
    Buffer.add_string b (snapshot_json (snapshot_of_domain t ~domain:d))
  done;
  Buffer.add_string b "],\"shards\":[";
  List.iteri
    (fun i sh ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (shard_json sh))
    (shards t);
  Buffer.add_string b "]";
  (match t.merged_cov with
   | Some cov -> Buffer.add_string b (",\"coverage\":" ^ Coverage.to_json cov)
   | None -> ());
  Buffer.add_string b "}";
  Buffer.contents b
