(** Coverage signatures: what the search {e saw}, as opposed to how
    hard it worked ({!Telemetry}'s counters).

    Three per-config artifacts, all aimed at ROADMAP item 5's
    coverage-guided schedule fuzzing: a {e depth profile} (leaf count
    per path depth, split by complete / truncated / pruned), {e stage
    signatures} (how many complete or truncated executions ended with
    each tuple of per-process {!Conrat_sim.Program.label} stages — the
    interleaving-class fingerprint a fuzzer can bias against), and
    {e dedup-saturation curves} (visited-table size as a function of
    leaves, one sawtooth curve per worker, showing when duplicate
    detection stops paying).

    One instance is single-writer — each explorer worker owns one — and
    instances {!merge} commutatively, so the fleet signature does not
    depend on shard placement.  Collecting a signature allocates
    nothing once labels are interned: a signature is per-process 6-bit
    stage ids packed into one int. *)

type t

type kind = [ `Complete | `Truncated | `Pruned ]

val create : unit -> t

val leaf :
  t -> kind:kind -> depth:int -> n:int -> stage:(int -> string option) -> unit
(** Record one leaf: [depth] lands in the kind's depth histogram and —
    for complete/truncated leaves of configs with [n <= 10] — the
    per-process stages ([stage pid], [None] rendered as ["-"]) are
    packed into a signature and counted. *)

val saturate : t -> leaves:int -> table:int -> unit
(** Append a dedup-saturation sample (cumulative leaves, visited-table
    size) to this worker's current curve. *)

val merge : t -> t -> unit
(** [merge a b] folds [b] into [a] ([b]'s live curve is sealed; [b] is
    otherwise unchanged).  Commutative and associative up to the
    canonical {!to_json} rendering. *)

val to_json : t -> string
(** Canonical [{"schema_version":3, "depth_profile":…,
    "stage_signatures":…, "dedup_saturation":…}] block: depth arrays
    trimmed, signatures sorted, curves sorted — a function of the
    contents, not of interning or merge order. *)

val of_json : string -> (t, string) result
(** Inverse of {!to_json} (accepts any field order and whitespace);
    [Error] on malformed input or an unsupported schema version. *)

val equal : t -> t -> bool
(** Content equality, via the canonical rendering. *)

val signatures : t -> int
(** Distinct stage signatures seen. *)

val leaves : t -> int
(** Total leaves recorded across the depth profiles. *)
