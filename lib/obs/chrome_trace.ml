open Conrat_sim

type t = {
  n : int;
  buf : Buffer.t;
  mutable count : int;
  (* Currently open stage span per pid: (stage, step it opened at).
     In fleet mode the array is per worker domain and holds the open
     shard span. *)
  open_stage : (string * int) option array;
  mutable last_step : int;
  mutable finalized : bool;
  (* Fleet mode: tracks are worker domains, timestamps are wall-clock
     microseconds since [t0], and events arrive from several domains —
     hence the mutex (machine mode is single-domain and never locks). *)
  fleet : bool;
  t0 : float;
  mutex : Mutex.t;
}

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let strf = Printf.sprintf

(* One event object; [fields] are pre-rendered ["key":value] pairs. *)
let event t fields =
  if t.count > 0 then Buffer.add_string t.buf ",\n";
  Buffer.add_char t.buf '{';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char t.buf ',';
      Buffer.add_string t.buf f)
    fields;
  Buffer.add_char t.buf '}';
  t.count <- t.count + 1

let metadata t ~name ~tid ~value =
  event t
    [ strf "\"name\":%s" (json_string name);
      "\"ph\":\"M\"";
      "\"pid\":1";
      strf "\"tid\":%d" tid;
      strf "\"args\":{\"name\":%s}" (json_string value) ]

let create ~n =
  let t =
    { n;
      buf = Buffer.create 4096;
      count = 0;
      open_stage = Array.make n None;
      last_step = 0;
      finalized = false;
      fleet = false;
      t0 = 0.;
      mutex = Mutex.create () }
  in
  metadata t ~name:"process_name" ~tid:0 ~value:"conrat";
  for pid = 0 to n - 1 do
    metadata t ~name:"thread_name" ~tid:pid ~value:(strf "process %d" pid)
  done;
  metadata t ~name:"thread_name" ~tid:n ~value:"explorer";
  t

let create_fleet ~workers =
  let t =
    { n = workers;
      buf = Buffer.create 4096;
      count = 0;
      open_stage = Array.make (max workers 1) None;
      last_step = 0;
      finalized = false;
      fleet = true;
      t0 = Unix.gettimeofday ();
      mutex = Mutex.create () }
  in
  metadata t ~name:"process_name" ~tid:0 ~value:"conrat fleet";
  for w = 0 to workers - 1 do
    metadata t ~name:"thread_name" ~tid:w ~value:(strf "worker %d" w)
  done;
  t

let now_us t =
  let us = int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e6) in
  if us > t.last_step then t.last_step <- us;
  us

let kind_name = function
  | Op.Read_op -> "read"
  | Op.Write_op -> "write"
  | Op.Prob_write_op -> "prob_write"
  | Op.Collect_op -> "collect"

let close_span t pid ~step =
  match t.open_stage.(pid) with
  | None -> ()
  | Some _ ->
    t.open_stage.(pid) <- None;
    event t
      [ "\"ph\":\"E\""; "\"pid\":1"; strf "\"tid\":%d" pid; strf "\"ts\":%d" step ]

let open_span t pid stage ~step =
  t.open_stage.(pid) <- Some (stage, step);
  event t
    [ strf "\"name\":%s" (json_string stage);
      "\"ph\":\"B\"";
      "\"pid\":1";
      strf "\"tid\":%d" pid;
      strf "\"ts\":%d" step ]

let on_op t ~step ~pid ~kind ~loc ~landed ~stage =
  t.last_step <- max t.last_step (step + 1);
  (match (t.open_stage.(pid), stage) with
   | None, None -> ()
   | Some (cur, _), Some s when String.equal cur s -> ()
   | _, None -> close_span t pid ~step
   | _, Some s ->
     close_span t pid ~step;
     open_span t pid s ~step);
  event t
    [ strf "\"name\":\"%s\"" (kind_name kind);
      "\"ph\":\"X\"";
      "\"pid\":1";
      strf "\"tid\":%d" pid;
      strf "\"ts\":%d" step;
      "\"dur\":1";
      strf "\"args\":{\"loc\":%d,\"landed\":%b%s}" loc landed
        (match stage with
         | None -> ""
         | Some s -> strf ",\"stage\":%s" (json_string s)) ]

let on_decide t ~step ~pid =
  t.last_step <- max t.last_step step;
  close_span t pid ~step;
  event t
    [ "\"name\":\"decide\"";
      "\"ph\":\"i\"";
      "\"s\":\"t\"";
      "\"pid\":1";
      strf "\"tid\":%d" pid;
      strf "\"ts\":%d" step ]

let on_crash t ~step ~pid =
  t.last_step <- max t.last_step step;
  close_span t pid ~step;
  event t
    [ "\"name\":\"crash\"";
      "\"ph\":\"i\"";
      "\"s\":\"t\"";
      "\"pid\":1";
      strf "\"tid\":%d" pid;
      strf "\"ts\":%d" step ]

let explorer_instant t name ~step =
  t.last_step <- max t.last_step step;
  event t
    [ strf "\"name\":\"%s\"" name;
      "\"ph\":\"i\"";
      "\"s\":\"t\"";
      "\"pid\":1";
      strf "\"tid\":%d" t.n;
      strf "\"ts\":%d" step ]

let sink t =
  Sink.make
    ~on_op:(fun ~step ~pid ~kind ~loc ~landed ~stage ->
      on_op t ~step ~pid ~kind ~loc ~landed ~stage)
    ~on_decide:(fun ~step ~pid -> on_decide t ~step ~pid)
    ~on_crash:(fun ~step ~pid -> on_crash t ~step ~pid)
    ~on_snapshot:(fun ~step -> explorer_instant t "snapshot" ~step)
    ~on_restore:(fun ~step -> explorer_instant t "restore" ~step)
    ~on_checkpoint:(fun ~step -> explorer_instant t "checkpoint" ~step)
    ()

(* Fleet events: a steal is an instant on the worker's track followed
   by the opening of that shard's span; completion closes the span with
   the shard's leaf/step counts in the closing args. *)

let fleet_steal t ~domain ~shard ~prefix =
  Mutex.protect t.mutex (fun () ->
      let ts = now_us t in
      close_span t domain ~step:ts;
      event t
        [ "\"name\":\"steal\"";
          "\"ph\":\"i\"";
          "\"s\":\"t\"";
          "\"pid\":1";
          strf "\"tid\":%d" domain;
          strf "\"ts\":%d" ts;
          strf "\"args\":{\"shard\":%d,\"prefix\":%d}" shard prefix ];
      t.open_stage.(domain) <- Some (strf "shard %d" shard, ts);
      event t
        [ strf "\"name\":\"shard %d\"" shard;
          "\"ph\":\"B\"";
          "\"pid\":1";
          strf "\"tid\":%d" domain;
          strf "\"ts\":%d" ts;
          strf "\"args\":{\"shard\":%d,\"prefix\":%d}" shard prefix ])

let fleet_shard_done t ~domain ~shard:_ ~leaves ~steps =
  Mutex.protect t.mutex (fun () ->
      let ts = now_us t in
      match t.open_stage.(domain) with
      | None -> ()
      | Some _ ->
        t.open_stage.(domain) <- None;
        event t
          [ "\"ph\":\"E\"";
            "\"pid\":1";
            strf "\"tid\":%d" domain;
            strf "\"ts\":%d" ts;
            strf "\"args\":{\"leaves\":%d,\"steps\":%d}" leaves steps ])

let fleet_sink t =
  if not t.fleet then
    invalid_arg "Chrome_trace.fleet_sink: not a fleet collector";
  Sink.make
    ~on_steal:(fun ~domain ~shard ~prefix -> fleet_steal t ~domain ~shard ~prefix)
    ~on_shard_done:(fun ~domain ~shard ~leaves ~steps ->
      fleet_shard_done t ~domain ~shard ~leaves ~steps)
    ()

let events t = t.count

let finalize t =
  if not t.finalized then begin
    for pid = 0 to t.n - 1 do
      close_span t pid ~step:t.last_step
    done;
    t.finalized <- true
  end

let write t oc =
  finalize t;
  output_string oc "{\"traceEvents\":[\n";
  output_string oc (Buffer.contents t.buf);
  output_string oc "\n]}\n"

let to_string t =
  finalize t;
  strf "{\"traceEvents\":[\n%s\n]}\n" (Buffer.contents t.buf)
