open Conrat_sim

let unlabeled = "(unlabeled)"

type t = {
  n : int;
  table : (string, int array) Hashtbl.t;
}

let create ~n = { n; table = Hashtbl.create 16 }

let on_op t ~stage ~pid =
  let key = match stage with Some s -> s | None -> unlabeled in
  let counts =
    match Hashtbl.find_opt t.table key with
    | Some a -> a
    | None ->
      let a = Array.make t.n 0 in
      Hashtbl.add t.table key a;
      a
  in
  counts.(pid) <- counts.(pid) + 1

let sink t =
  Sink.make
    ~on_op:(fun ~step:_ ~pid ~kind:_ ~loc:_ ~landed:_ ~stage ->
      on_op t ~stage ~pid)
    ()

let totals t =
  Hashtbl.fold
    (fun stage counts acc ->
      let total = Array.fold_left ( + ) 0 counts in
      let indiv = Array.fold_left max 0 counts in
      (stage, (total, indiv)) :: acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | ((ka, (ta, ia)) as ha) :: ta', ((kb, (tb, ib)) as hb) :: tb' ->
      let c = String.compare ka kb in
      if c < 0 then ha :: go ta' b
      else if c > 0 then hb :: go a tb'
      else (ka, (ta + tb, max ia ib)) :: go ta' tb'
  in
  go a b
