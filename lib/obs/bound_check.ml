open Conrat_sim

type scope =
  | Execution
  | Stage of string
  | Stage_prefix of string

type spec = {
  label : string;
  scope : scope;
  individual : int option;
  total : int option;
  registers : int option;
  mean_total : float option;
}

let spec ?individual ?total ?registers ?mean_total ?(scope = Execution) label =
  { label; scope; individual; total; registers; mean_total }

type violation = {
  spec_label : string;
  kind : string;
  observed : float;
  bound : float;
  execution : int;
}

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s = %g exceeds bound %g%s" v.spec_label v.kind
    v.observed v.bound
    (if v.execution >= 0 then Printf.sprintf " (execution %d)" v.execution
     else " (mean over executions)")

(* Per-spec live state.  [flagged] keeps at most one violation per
   (spec, kind): bounds that fail usually fail on every subsequent op,
   and a flood of identical violations helps nobody. *)
type tracker = {
  t_spec : spec;
  per_pid : int array;
  mutable exec_total : int;
  mutable sum_totals : float;
}

type t = {
  n : int;
  trackers : tracker list;
  mutable execs : int;
  mutable violas : violation list;  (* newest first *)
  flagged : (string * string, unit) Hashtbl.t;
}

let create ~n ~specs =
  { n;
    trackers =
      List.map
        (fun s ->
          { t_spec = s; per_pid = Array.make n 0; exec_total = 0;
            sum_totals = 0.0 })
        specs;
    execs = 0;
    violas = [];
    flagged = Hashtbl.create 8 }

let flag t ~spec_label ~kind ~observed ~bound ~execution =
  if not (Hashtbl.mem t.flagged (spec_label, kind)) then begin
    Hashtbl.replace t.flagged (spec_label, kind) ();
    t.violas <- { spec_label; kind; observed; bound; execution } :: t.violas
  end

let in_scope scope stage =
  match (scope, stage) with
  | Execution, _ -> true
  | (Stage _ | Stage_prefix _), None -> false
  | Stage name, Some s -> String.equal name s
  | Stage_prefix p, Some s ->
    String.length s >= String.length p && String.equal p (String.sub s 0 (String.length p))

let on_op t ~step:_ ~pid ~kind:_ ~loc:_ ~landed:_ ~stage =
  List.iter
    (fun tr ->
      if in_scope tr.t_spec.scope stage then begin
        tr.per_pid.(pid) <- tr.per_pid.(pid) + 1;
        tr.exec_total <- tr.exec_total + 1;
        (match tr.t_spec.individual with
         | Some b when tr.per_pid.(pid) > b ->
           flag t ~spec_label:tr.t_spec.label ~kind:"individual"
             ~observed:(float_of_int tr.per_pid.(pid)) ~bound:(float_of_int b)
             ~execution:t.execs
         | _ -> ());
        match tr.t_spec.total with
        | Some b when tr.exec_total > b ->
          flag t ~spec_label:tr.t_spec.label ~kind:"total"
            ~observed:(float_of_int tr.exec_total) ~bound:(float_of_int b)
            ~execution:t.execs
        | _ -> ()
      end)
    t.trackers

let sink t =
  Sink.make
    ~on_op:(fun ~step ~pid ~kind ~loc ~landed ~stage ->
      on_op t ~step ~pid ~kind ~loc ~landed ~stage)
    ()

let end_execution ?registers t =
  List.iter
    (fun tr ->
      (match (tr.t_spec.registers, registers) with
       | Some b, Some r when r > b ->
         flag t ~spec_label:tr.t_spec.label ~kind:"registers"
           ~observed:(float_of_int r) ~bound:(float_of_int b)
           ~execution:t.execs
       | _ -> ());
      tr.sum_totals <- tr.sum_totals +. float_of_int tr.exec_total;
      tr.exec_total <- 0;
      Array.fill tr.per_pid 0 t.n 0)
    t.trackers;
  t.execs <- t.execs + 1

let executions t = t.execs

let violations t = List.rev t.violas

let result t =
  let mean_violations =
    if t.execs = 0 then []
    else
      List.filter_map
        (fun tr ->
          match tr.t_spec.mean_total with
          | Some b ->
            let mean = tr.sum_totals /. float_of_int t.execs in
            if mean > b then
              Some
                { spec_label = tr.t_spec.label; kind = "mean_total";
                  observed = mean; bound = b; execution = -1 }
            else None
          | None -> None)
        t.trackers
  in
  match violations t @ mean_violations with
  | [] -> Ok ()
  | vs -> Error vs

let check t =
  match result t with
  | Ok () -> ()
  | Error vs ->
    failwith
      (String.concat "; "
         (List.map (Format.asprintf "%a" pp_violation) vs))
