type entry = {
  name : string;
  engine : string;
  executions : int;
  wall_clock_seconds : float;
  exhausted : bool;
}

let default_path = "BENCH_VERIFY.json"

(* Locate ["key": <token>] in a flat object chunk and return the raw
   token text.  Works because the producer never nests objects inside
   result entries and never escapes quotes in these fields. *)
let raw_field chunk key =
  let needle = Printf.sprintf "\"%s\":" key in
  match
    let nl = String.length needle and cl = String.length chunk in
    let rec scan i =
      if i + nl > cl then None
      else if String.sub chunk i nl = needle then Some (i + nl)
      else scan (i + 1)
    in
    scan 0
  with
  | None -> None
  | Some start ->
    let cl = String.length chunk in
    let rec skip_ws i = if i < cl && chunk.[i] = ' ' then skip_ws (i + 1) else i in
    let start = skip_ws start in
    if start >= cl then None
    else if chunk.[start] = '"' then begin
      match String.index_from_opt chunk (start + 1) '"' with
      | None -> None
      | Some close -> Some (String.sub chunk (start + 1) (close - start - 1))
    end
    else begin
      let rec stop i =
        if i >= cl then i
        else match chunk.[i] with ',' | '}' | ']' | ' ' | '\n' -> i | _ -> stop (i + 1)
      in
      let e = stop start in
      if e = start then None else Some (String.sub chunk start (e - start))
    end

let parse_chunk chunk =
  match
    ( raw_field chunk "name",
      raw_field chunk "engine",
      raw_field chunk "executions",
      raw_field chunk "wall_clock_seconds",
      raw_field chunk "exhausted" )
  with
  | Some name, engine, Some execs, Some secs, exhausted ->
    (try
       Some
         { name;
           engine = Option.value engine ~default:"por";
           executions = int_of_string execs;
           wall_clock_seconds = float_of_string secs;
           exhausted = exhausted = Some "true" }
     with _ -> None)
  | _ -> None

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception _ -> []
  | contents ->
    (* Split into top-level-ish { ... } chunks; entries are flat, so a
       naive brace split is exact after dropping the document braces. *)
    let chunks = ref [] in
    let depth = ref 0 in
    let start = ref 0 in
    String.iteri
      (fun i c ->
        match c with
        | '{' ->
          incr depth;
          if !depth = 2 then start := i
        | '}' ->
          if !depth = 2 then
            chunks := String.sub contents !start (i - !start + 1) :: !chunks;
          decr depth
        | _ -> ())
      contents;
    List.rev !chunks |> List.filter_map parse_chunk

let find entries ~name ~engine =
  List.find_opt (fun e -> e.name = name && e.engine = engine) entries
