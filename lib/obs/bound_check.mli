(** Live work-bound checking against the paper's theorems.

    A {!t} watches a run through its {!sink} and keeps per-process and
    total operation counts for each declared {!spec}, scoped to the
    whole execution or to a {!Conrat_sim.Program.label} stage.  Hard
    bounds ([individual], [total], [registers]) are checked {e live} —
    the first operation past a budget records a violation — while
    [mean_total] is an expectation bound checked over all executions
    seen (Theorem 7's 6n is a bound on {e expected} total work, so a
    single unlucky execution may exceed it legitimately).

    Bounds come straight from the paper via
    [Conrat_core.Conciliator.max_individual_work] (Theorem 6's
    2·lg n + O(1)), [Conrat_core.Ratifier.max_individual_work] and
    [Ratifier.space] (Theorem 10 and the register budgets).

    Intended for scheduler-driven (Monte Carlo) runs: attach the sink,
    call {!end_execution} after each run, then {!check} or {!result}.
    Not meaningful under the snapshotting explorers — backtracking
    rewinds state but not these counters. *)

type scope =
  | Execution                 (** count every operation *)
  | Stage of string           (** operations whose stage equals the name *)
  | Stage_prefix of string
      (** operations whose stage starts with the prefix — matches the
          ["name#i"] labels of [Compose.lazy_seq] across positions *)

type spec = {
  label : string;             (** for violation messages *)
  scope : scope;
  individual : int option;    (** max ops by any one process, per execution *)
  total : int option;         (** max ops in total, per execution *)
  registers : int option;     (** max registers allocated at execution end *)
  mean_total : float option;  (** bound on mean total ops across executions *)
}

val spec :
  ?individual:int -> ?total:int -> ?registers:int -> ?mean_total:float ->
  ?scope:scope -> string -> spec
(** [spec name] with the given bounds; [scope] defaults to
    [Execution]. *)

type violation = {
  spec_label : string;
  kind : string;              (** ["individual"], ["total"], … *)
  observed : float;
  bound : float;
  execution : int;            (** 0-based execution index; -1 for mean *)
}

val pp_violation : Format.formatter -> violation -> unit

type t

val create : n:int -> specs:spec list -> t

val sink : t -> Conrat_sim.Sink.t

val end_execution : ?registers:int -> t -> unit
(** Close the current execution: check [registers] bounds against the
    given final register count (skipped when omitted), fold the totals
    into the mean accounting, reset per-execution counters. *)

val executions : t -> int
(** Executions closed so far. *)

val violations : t -> violation list
(** Hard-bound violations recorded so far (at most one per spec and
    kind), oldest first.  Does not include mean bounds — those are
    only decidable at {!result} time. *)

val result : t -> (unit, violation list) result
(** All violations including [mean_total] checks over the executions
    seen; [Ok ()] if every bound held. *)

val check : t -> unit
(** Raise [Failure] with a readable message if {!result} is an error. *)
