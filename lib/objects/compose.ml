open Conrat_sim

(* Each component's program is wrapped in a {!Program.Label} carrying
   the component's name.  Labels nest under [fold_left pair] — the
   machine peels them outermost-first, so the innermost (leaf) name is
   what sticks as the per-process stage.  Observability only: labels
   are part of the program value, so replay purity is unaffected. *)
let pair (x : Deciding.t) (y : Deciding.t) : Deciding.t =
  { name = Printf.sprintf "(%s; %s)" x.name y.name;
    space = x.space + y.space;
    run =
      (fun ~pid ~rng v ->
        Program.bind (Program.label x.name (x.run ~pid ~rng v)) (fun out ->
          if out.Deciding.decide then Program.return out
          else Program.label y.name (y.run ~pid ~rng out.Deciding.value))) }

let pass_through : Deciding.t =
  { name = "pass";
    space = 0;
    run = (fun ~pid:_ ~rng:_ v -> Program.return { Deciding.decide = false; value = v }) }

let seq = function
  | [] -> pass_through
  | x :: rest -> List.fold_left pair x rest

let pair_factory (fx : Deciding.factory) (fy : Deciding.factory) : Deciding.factory =
  { fname = Printf.sprintf "(%s; %s)" fx.fname fy.fname;
    instantiate =
      (fun ~n memory -> pair (fx.instantiate ~n memory) (fy.instantiate ~n memory)) }

let seq_factory = function
  | [] -> Deciding.copy_object
  | f :: rest -> List.fold_left pair_factory f rest

let lazy_seq name nth : Deciding.factory =
  { fname = name;
    instantiate =
      (fun ~n memory ->
        (* Instances are created the first time any process reaches
           position [i]; processes reach positions in increasing order,
           so instances are allocated in position order.  They are kept
           in a growable array for O(1) stage lookup, and each
           instantiation adds its register footprint to the composite's
           [space] — previously lost, leaving lazy compositions
           reporting [space = 0]. *)
        let instances = ref (Array.make 8 pass_through) in
        let count = ref 0 in
        let rec self =
          { Deciding.name;
            space = 0;
            run =
              (fun ~pid ~rng v ->
                let rec go i v =
                  let x = get i in
                  Program.bind
                    (Program.label
                       (Printf.sprintf "%s#%d" x.Deciding.name i)
                       (x.Deciding.run ~pid ~rng v))
                    (fun out ->
                      if out.Deciding.decide then Program.return out
                      else go (i + 1) out.Deciding.value)
                in
                go 0 v) }
        and get i =
          while !count <= i do
            let f = nth !count in
            let inst = f.Deciding.instantiate ~n memory in
            if !count = Array.length !instances then begin
              let bigger = Array.make (2 * !count) pass_through in
              Array.blit !instances 0 bigger 0 !count;
              instances := bigger
            end;
            !instances.(!count) <- inst;
            self.Deciding.space <- self.Deciding.space + inst.Deciding.space;
            incr count
          done;
          !instances.(i)
        in
        self) }
