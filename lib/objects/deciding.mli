(** Deciding objects (§3): one-shot shared-memory objects whose outputs
    carry a decision bit.

    An output [(true, v)] means "decide [v] and stop"; [(false, v)]
    means "continue to the next object in the sequence with preference
    [v]".  Conciliators, ratifiers and consensus objects are all
    deciding objects; they differ only in which of the §3 properties
    (validity, termination, coherence, probabilistic agreement,
    acceptance) they satisfy.

    Because the objects are one-shot, a fresh instance must be created
    per execution.  A {!t} is one such instance, whose registers have
    already been allocated in some {!Conrat_sim.Memory.t}; a {!factory}
    knows how to create instances.  [run ~pid ~rng v] builds process
    [pid]'s {!Conrat_sim.Program.t} for this object — a copyable value;
    it must be built at most once per process, and the resulting
    program must be replay-pure (see {!Conrat_sim.Program}) so the
    exhaustive explorers can backtrack through it. *)

type output = {
  decide : bool;  (** the decision bit *)
  value : int;    (** the (proposed or decided) value *)
}

type t = {
  name : string;
  mutable space : int;
    (** registers this instance allocated; mutable because lazily
        composed objects ({!Compose.lazy_seq}) grow it as stages are
        instantiated mid-execution *)
  run : pid:int -> rng:Conrat_sim.Rng.t -> int -> output Conrat_sim.Program.t;
}

type factory = {
  fname : string;
  instantiate : n:int -> Conrat_sim.Memory.t -> t;
    (** [instantiate ~n memory] allocates a fresh one-shot instance for
        [n] processes. *)
}

val make_factory :
  string -> (n:int -> Conrat_sim.Memory.t -> t) -> factory

val instance :
  string ->
  space:int ->
  (pid:int -> rng:Conrat_sim.Rng.t -> int -> output Conrat_sim.Program.t) ->
  t

val counting : factory -> (unit -> int) * factory
(** [counting f] wraps [f] so that every call of an instance's [run] is
    counted; the first component reads the total across all instances
    created from the wrapped factory.  Used by experiments that need to
    know how many processes entered a given stage (e.g. E8's "no
    process ran a conciliator on the fast path" and E10's fallback
    rate). *)

val copy_object : factory
(** The degenerate weak consensus object from §3: copies its input to
    its output with decision bit 0.  Satisfies validity, termination
    and coherence (vacuously), nothing more.  Zero registers, zero
    work; useful in tests and compositions. *)

val pp_output : Format.formatter -> output -> unit
