(** The composition operator on deciding objects (§3.2).

    [(X; Y)] runs [X] first; if [X] decides, its answer is final and
    [Y] is skipped (an exception-like early exit); otherwise [X]'s
    output value is fed to [Y] as input.  Composition is associative,
    and preserves validity, termination and (given validity of the
    second component) coherence — Lemmas 1-3, Corollary 4.  The test
    suite checks all of these as executable properties. *)

val pair : Deciding.t -> Deciding.t -> Deciding.t
(** [(X; Y)] on already-instantiated objects sharing a memory.  Each
    component's program is wrapped in a {!Program.label} carrying the
    component's [name], so observability sinks can attribute every
    operation to the stage that issued it. *)

val seq : Deciding.t list -> Deciding.t
(** [X₁; X₂; …; X_k].  The empty sequence is {!Deciding.copy_object}'s
    behaviour (pass-through). *)

val pair_factory : Deciding.factory -> Deciding.factory -> Deciding.factory
val seq_factory : Deciding.factory list -> Deciding.factory

val lazy_seq :
  string -> (int -> Deciding.factory) -> Deciding.factory
(** [lazy_seq name nth] is the infinite composition [(X₀; X₁; …)] of
    §3.2, with [Xᵢ = nth i] instantiated on demand the first time any
    process reaches position [i].  Instantiation happens during local
    computation (the simulation is sequential), so all processes see
    the same instances.  A process that never receives a decision bit
    runs forever — termination must come from the components, exactly
    as in the paper's object [U].

    The composite's [space] grows as stages are instantiated: at any
    point it equals the summed footprint of the stages created so far
    (surfaced by [conrat run] as the deciding-object space).

    Stage labels are ["name#i"] — the component's own name suffixed
    with its position, so repeated instantiations of the same factory
    (e.g. ratifier rounds) remain distinguishable in traces.

    Note for the exhaustive explorers: instantiation mutates factory
    closure state {e outside} shared memory, so a lazily composed
    object is not replay-pure across instantiation points — explore
    eagerly composed objects ({!seq_factory}) instead. *)
