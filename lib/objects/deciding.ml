type output = {
  decide : bool;
  value : int;
}

type t = {
  name : string;
  mutable space : int;
  run : pid:int -> rng:Conrat_sim.Rng.t -> int -> output Conrat_sim.Program.t;
}

type factory = {
  fname : string;
  instantiate : n:int -> Conrat_sim.Memory.t -> t;
}

let make_factory fname instantiate = { fname; instantiate }

let instance name ~space run = { name; space; run }

let counting f =
  let count = ref 0 in
  let wrapped =
    { fname = f.fname;
      instantiate =
        (fun ~n memory ->
          let inner = f.instantiate ~n memory in
          { inner with
            run =
              (fun ~pid ~rng v ->
                incr count;
                inner.run ~pid ~rng v) }) }
  in
  ((fun () -> !count), wrapped)

let copy_object =
  make_factory "copy" (fun ~n:_ _memory ->
    instance "copy" ~space:0 (fun ~pid:_ ~rng:_ v ->
      Conrat_sim.Program.return { decide = false; value = v }))

let pp_output ppf { decide; value } =
  Format.fprintf ppf "(%d, %d)" (if decide then 1 else 0) value
