open Conrat_sim
module Telemetry = Conrat_obs.Telemetry

(* Workers flush their locally accumulated leaf/step counts into the
   fleet-wide atomics every [flush_every] leaves: often enough for the
   budget check and progress display to track the fleet, rarely enough
   that the shared cache lines stay out of the hot leaf loop. *)
let flush_every = 1024

let zero_counts path =
  { Checkpoint.path; complete = 0; truncated = 0; pruned = 0; steps = 0 }

(* ------------------------------------------------------------------ *)
(* POR                                                                 *)
(* ------------------------------------------------------------------ *)

let merge_por residue results =
  let complete = ref residue.Por.complete in
  let truncated = ref residue.Por.truncated in
  let pruned = ref residue.Por.pruned in
  let dedup_hits = ref residue.Por.dedup_hits in
  let steps = ref residue.Por.steps in
  let exhausted = ref residue.Por.exhausted in
  let err = ref None in
  let add (s : Por.stats) =
    complete := !complete + s.complete;
    truncated := !truncated + s.truncated;
    pruned := !pruned + s.pruned;
    dedup_hits := !dedup_hits + s.dedup_hits;
    steps := !steps + s.steps;
    if not s.exhausted then exhausted := false
  in
  Array.iter
    (function
      | None -> exhausted := false
      | Some (Ok s) -> add s
      | Some (Error (reason, path, s)) ->
        add s;
        exhausted := false;
        if !err = None then err := Some (reason, path))
    results;
  let stats exhausted =
    { Por.complete = !complete;
      truncated = !truncated;
      pruned = !pruned;
      dedup_hits = !dedup_hits;
      exhausted;
      steps = !steps }
  in
  match !err with
  | Some (reason, path) -> Error (reason, path, stats false)
  | None -> Ok (stats !exhausted)

let check_telemetry ~who ~jobs = function
  | Some t when Telemetry.domains t < jobs ->
    invalid_arg (who ^ ": telemetry registry has fewer domains than jobs")
  | _ -> ()

let explore_por ~jobs ?engine ?(max_depth = 200) ?(max_runs = 2_000_000)
    ?(cheap_collect = false) ?(faults = Fault.none)
    ?(stop = fun () -> false) ?heartbeat ?(dedup = false) ?shard_target
    ?telemetry ?sink ~n ~setup ~check () =
  let reg_probe d = Option.map (fun t -> Telemetry.probe t ~domain:d) telemetry in
  if jobs <= 1 then
    Por.explore ?engine ~max_depth ~max_runs ~cheap_collect ~faults ~stop
      ?probe:(reg_probe 0) ?heartbeat ~dedup ~n ~setup ~check ()
  else begin
    check_telemetry ~who:"Parallel.explore_por" ~jobs telemetry;
    let target =
      match shard_target with Some t -> t | None -> Frontier.target ~jobs
    in
    (* Each generator deepening pass explores the residue afresh, and
       only the last pass's statistics survive — so each pass gets a
       fresh free-standing probe and only the winner is absorbed, or
       multi-pass generation would inflate the registry and break
       [--jobs]-invariance. *)
    let coverage =
      match telemetry with Some t -> Telemetry.coverage_on t | None -> false
    in
    let gen_probe = ref None in
    let gen =
      Frontier.generate ?probe:(reg_probe 0) ~target ~run:(fun ~cut ->
          let p =
            match telemetry with
            | Some _ ->
              let p = Telemetry.fresh_probe ~coverage () in
              gen_probe := Some p;
              Some p
            | None -> None
          in
          Por.explore ?engine ~max_depth ~max_runs ~cheap_collect ~faults
            ~stop ?probe:p ?heartbeat ~cut ~n ~setup ~check ())
        ()
    in
    match gen with
    | Error _ as e -> e
    | Ok (residue, shards) ->
      (match (telemetry, !gen_probe) with
       | Some t, Some p -> Telemetry.absorb t ~domain:0 p
       | _ -> ());
      if Array.length shards = 0 || not residue.Por.exhausted then
        (* The generator pass already covered the whole tree, or the
           budget/stop bound during generation — either way the
           residue statistics are the answer. *)
        Ok residue
      else begin
        let nshards = Array.length shards in
        let results = Array.make nshards None in
        let pool = Frontier.pool shards in
        let fleet_runs = Atomic.make (Por.explored residue + residue.pruned) in
        let fleet_pruned = Atomic.make residue.Por.pruned in
        let fleet_steps = Atomic.make residue.Por.steps in
        let hb_mutex = Mutex.create () in
        let worker w =
          let probe_w = reg_probe w in
          let pending_runs = ref 0 in
          let pending_pruned = ref 0 in
          let pending_steps = ref 0 in
          let flush depth =
            if !pending_runs > 0 || !pending_steps > 0 then begin
              ignore (Atomic.fetch_and_add fleet_runs !pending_runs);
              ignore (Atomic.fetch_and_add fleet_pruned !pending_pruned);
              ignore (Atomic.fetch_and_add fleet_steps !pending_steps);
              pending_runs := 0;
              pending_pruned := 0;
              pending_steps := 0;
              match heartbeat with
              | None -> ()
              | Some hb ->
                (* Snapshot the fleet totals under the mutex, not at the
                   atomic add: calls then observe monotone totals, so a
                   rate computed from successive heartbeats is the
                   fleet-wide executions/sec. *)
                Mutex.protect hb_mutex (fun () ->
                    hb ~runs:(Atomic.get fleet_runs)
                      ~pruned:(Atomic.get fleet_pruned)
                      ~steps:(Atomic.get fleet_steps) ~depth)
            end
          in
          let stop_w () =
            stop () || Atomic.get fleet_runs + !pending_runs >= max_runs
          in
          let rec loop () =
            if not (stop_w ()) then
              match Frontier.steal pool with
              | None -> ()
              | Some (i, path) ->
                let prefix = List.length path in
                (match probe_w with
                 | Some p -> Telemetry.bump p Telemetry.steals
                 | None -> ());
                (match sink with
                 | Some s -> s.Sink.on_steal ~domain:w ~shard:i ~prefix
                 | None -> ());
                let t_start = Unix.gettimeofday () in
                let last_runs = ref 0 in
                let last_pruned = ref 0 in
                let last_steps = ref 0 in
                let last_depth = ref 0 in
                let hb ~runs ~pruned ~steps ~depth =
                  pending_runs := !pending_runs + runs - !last_runs;
                  pending_pruned := !pending_pruned + pruned - !last_pruned;
                  pending_steps := !pending_steps + steps - !last_steps;
                  last_runs := runs;
                  last_pruned := pruned;
                  last_steps := steps;
                  last_depth := depth;
                  if !pending_runs >= flush_every then flush depth
                in
                let res =
                  Por.explore ?engine ~max_depth ~max_runs:max_int
                    ~cheap_collect ~faults ~stop:stop_w ?probe:probe_w
                    ~heartbeat:hb ~resume:(zero_counts path)
                    ~subtree_prefix:prefix ~dedup ~n ~setup
                    ~check ()
                in
                flush !last_depth;
                let s = match res with Ok s | Error (_, _, s) -> s in
                let leaves = Por.explored s + s.Por.pruned in
                (match telemetry with
                 | Some t ->
                   Telemetry.record_shard t
                     { Telemetry.shard = i;
                       domain = w;
                       prefix;
                       leaves;
                       steps = s.Por.steps;
                       seconds = Unix.gettimeofday () -. t_start }
                 | None -> ());
                (match probe_w with
                 | Some p -> Telemetry.bump p Telemetry.shards_done
                 | None -> ());
                (match sink with
                 | Some sk ->
                   sk.Sink.on_shard_done ~domain:w ~shard:i ~leaves
                     ~steps:s.Por.steps
                 | None -> ());
                results.(i) <- Some res;
                loop ()
          in
          loop ()
        in
        let extra = min jobs nshards - 1 in
        let domains = Array.init extra (fun j -> Domain.spawn (fun () -> worker (j + 1))) in
        worker 0;
        Array.iter Domain.join domains;
        merge_por residue results
      end
  end

(* ------------------------------------------------------------------ *)
(* Naive                                                               *)
(* ------------------------------------------------------------------ *)

let merge_naive residue results =
  let complete = ref residue.Naive.complete in
  let truncated = ref residue.Naive.truncated in
  let steps = ref residue.Naive.steps in
  let exhausted = ref residue.Naive.exhausted in
  let err = ref None in
  let add (s : Naive.stats) =
    complete := !complete + s.complete;
    truncated := !truncated + s.truncated;
    steps := !steps + s.steps;
    if not s.exhausted then exhausted := false
  in
  Array.iter
    (function
      | None -> exhausted := false
      | Some (Ok s) -> add s
      | Some (Error (reason, s)) ->
        add s;
        exhausted := false;
        if !err = None then err := Some reason)
    results;
  let stats exhausted =
    { Naive.complete = !complete;
      truncated = !truncated;
      exhausted;
      steps = !steps }
  in
  match !err with
  | Some reason -> Error (reason, stats false)
  | None -> Ok (stats !exhausted)

(* Breadth-first prefix expansion.  A probe run re-executes the
   all-zeros continuation of a prefix; only {e terminal} probes — the
   prefix's subtree is that single leaf — count and check it (its
   steps charged then, exactly once).  Interior probes merely read the
   arity at the expansion level and fan the prefix out; their steps are
   generation overhead, excluded from the statistics so the merged
   report stays bit-identical to the sequential enumerator's. *)
exception Gen_fail of string
exception Gen_stop

let explore_naive ~jobs ?engine ?(max_depth = 200) ?(max_runs = 2_000_000)
    ?(cheap_collect = false) ?(faults = Fault.none)
    ?(stop = fun () -> false) ?heartbeat ?shard_target ?telemetry ?sink
    ~n ~setup ~check () =
  let reg_probe d = Option.map (fun t -> Telemetry.probe t ~domain:d) telemetry in
  if jobs <= 1 then
    Naive.explore ?engine ~max_depth ~max_runs ~cheap_collect ~faults ~stop
      ?probe:(reg_probe 0) ?heartbeat ~n ~setup ~check ()
  else begin
    check_telemetry ~who:"Parallel.explore_naive" ~jobs telemetry;
    let target =
      match shard_target with Some t -> t | None -> Frontier.target ~jobs
    in
    let complete = ref 0 in
    let truncated = ref 0 in
    let steps = ref 0 in
    let runs = ref 0 in
    let probe path = Explore.run_path ?engine ~max_depth ~cheap_collect ~faults ~n ~setup path in
    let terminal (run : _ Explore.run) =
      if !runs >= max_runs || stop () then raise Gen_stop;
      incr runs;
      steps := !steps + run.Explore.steps;
      if run.Explore.completed then incr complete else incr truncated;
      (match heartbeat with
       | None -> ()
       | Some hb -> hb ~runs:!runs ~steps:!steps ~depth:run.Explore.steps);
      match check ~complete:run.Explore.completed run.Explore.outputs with
      | Ok () -> ()
      | Error reason -> raise (Gen_fail reason)
    in
    let rec expand level frontier =
      if frontier = [] || List.length frontier >= target then frontier
      else
        let next =
          List.concat_map
            (fun path ->
              let run = probe path in
              match List.nth_opt run.Explore.branches level with
              | None ->
                terminal run;
                []
              | Some (_, arity) -> List.init arity (fun c -> path @ [ c ]))
            frontier
        in
        expand (level + 1) next
    in
    let residue exhausted =
      { Naive.complete = !complete;
        truncated = !truncated;
        exhausted;
        steps = !steps }
    in
    (* The generator's terminal probes are the residue: real counted
       leaves, charged to domain 0. *)
    let tally () =
      match reg_probe 0 with
      | None -> ()
      | Some p ->
        Telemetry.add p Telemetry.leaves_complete !complete;
        Telemetry.add p Telemetry.leaves_truncated !truncated;
        Telemetry.add p Telemetry.steps !steps
    in
    match expand 0 [ [] ] with
    | exception Gen_stop ->
      tally ();
      Ok (residue false)
    | exception Gen_fail reason ->
      tally ();
      Error (reason, residue false)
    | frontier ->
      tally ();
      let shards = Array.of_list frontier in
      (match reg_probe 0 with
       | Some p ->
         Telemetry.peak p Telemetry.shards_generated (Array.length shards)
       | None -> ());
      if Array.length shards = 0 then Ok (residue true)
      else begin
        let nshards = Array.length shards in
        let results = Array.make nshards None in
        let pool = Frontier.pool shards in
        let fleet_runs = Atomic.make !runs in
        let fleet_steps = Atomic.make !steps in
        let hb_mutex = Mutex.create () in
        let worker w =
          let probe_w = reg_probe w in
          let pending_runs = ref 0 in
          let pending_steps = ref 0 in
          let flush depth =
            if !pending_runs > 0 || !pending_steps > 0 then begin
              ignore (Atomic.fetch_and_add fleet_runs !pending_runs);
              ignore (Atomic.fetch_and_add fleet_steps !pending_steps);
              pending_runs := 0;
              pending_steps := 0;
              match heartbeat with
              | None -> ()
              | Some hb ->
                (* See explore_por: totals snapshotted under the mutex
                   stay monotone across heartbeat calls. *)
                Mutex.protect hb_mutex (fun () ->
                    hb ~runs:(Atomic.get fleet_runs)
                      ~steps:(Atomic.get fleet_steps) ~depth)
            end
          in
          let stop_w () =
            stop () || Atomic.get fleet_runs + !pending_runs >= max_runs
          in
          let rec loop () =
            if not (stop_w ()) then
              match Frontier.steal pool with
              | None -> ()
              | Some (i, path) ->
                let prefix = List.length path in
                (match probe_w with
                 | Some p -> Telemetry.bump p Telemetry.steals
                 | None -> ());
                (match sink with
                 | Some s -> s.Sink.on_steal ~domain:w ~shard:i ~prefix
                 | None -> ());
                let t_start = Unix.gettimeofday () in
                let last_runs = ref 0 in
                let last_steps = ref 0 in
                let last_depth = ref 0 in
                let hb ~runs ~steps ~depth =
                  pending_runs := !pending_runs + runs - !last_runs;
                  pending_steps := !pending_steps + steps - !last_steps;
                  last_runs := runs;
                  last_steps := steps;
                  last_depth := depth;
                  if !pending_runs >= flush_every then flush depth
                in
                let res =
                  Naive.explore ?engine ~max_depth ~max_runs:max_int
                    ~cheap_collect ~faults ~stop:stop_w ?probe:probe_w
                    ~heartbeat:hb ~resume:(zero_counts path)
                    ~path_floor:prefix ~n ~setup ~check ()
                in
                flush !last_depth;
                let s = match res with Ok s | Error (_, s) -> s in
                let leaves = s.Naive.complete + s.Naive.truncated in
                (match telemetry with
                 | Some t ->
                   Telemetry.record_shard t
                     { Telemetry.shard = i;
                       domain = w;
                       prefix;
                       leaves;
                       steps = s.Naive.steps;
                       seconds = Unix.gettimeofday () -. t_start }
                 | None -> ());
                (match probe_w with
                 | Some p -> Telemetry.bump p Telemetry.shards_done
                 | None -> ());
                (match sink with
                 | Some sk ->
                   sk.Sink.on_shard_done ~domain:w ~shard:i ~leaves
                     ~steps:s.Naive.steps
                 | None -> ());
                results.(i) <- Some res;
                loop ()
          in
          loop ()
        in
        let extra = min jobs nshards - 1 in
        let domains = Array.init extra (fun j -> Domain.spawn (fun () -> worker (j + 1))) in
        worker 0;
        Array.iter Domain.join domains;
        merge_naive (residue true) results
      end
  end
