open Conrat_sim

let schema_version = 1

type t = {
  checker : string;
  n : int;
  inputs : int array;
  max_depth : int;
  cheap_collect : bool;
  faults : Fault.model;
  path : int list;
  reason : string;
  trace : Trace.t option;
}

let to_sexp a =
  let open Sexp in
  let fields =
    [ List [ Atom "schema"; of_int schema_version ];
      List [ Atom "checker"; Atom a.checker ];
      List [ Atom "n"; of_int a.n ];
      List (Atom "inputs" :: (Array.to_list a.inputs |> List.map of_int));
      List [ Atom "max-depth"; of_int a.max_depth ];
      List [ Atom "cheap-collect"; of_bool a.cheap_collect ];
      List (Atom "path" :: List.map of_int a.path);
      List [ Atom "reason"; Atom a.reason ] ]
  in
  (* Emitted only when a fault model is active, so fault-free artifacts
     (including all pre-existing fixtures) keep their exact bytes. *)
  let fields =
    if Fault.is_none a.faults then fields
    else fields @ [ List [ Atom "faults"; Atom (Fault.to_string a.faults) ] ]
  in
  let fields =
    match a.trace with
    | None -> fields
    | Some trace -> fields @ [ List [ Atom "trace"; Trace.to_sexp trace ] ]
  in
  List (Atom "counterexample" :: fields)

let of_sexp sexp =
  let open Sexp in
  let ( let* ) r f = Result.bind r f in
  let field name decode =
    match assoc1 name sexp with
    | Some v ->
      (match decode v with
       | Some x -> Ok x
       | None -> Error (Printf.sprintf "Artifact.of_sexp: bad field %s" name))
    | None -> Error (Printf.sprintf "Artifact.of_sexp: missing field %s" name)
  in
  let int_list name =
    match assoc name sexp with
    | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
          (match to_int item with
           | Some i -> go (i :: acc) rest
           | None -> Error (Printf.sprintf "Artifact.of_sexp: bad field %s" name))
      in
      go [] items
    | None -> Error (Printf.sprintf "Artifact.of_sexp: missing field %s" name)
  in
  match sexp with
  | List (Atom "counterexample" :: _) ->
    let* schema = field "schema" to_int in
    if schema <> schema_version then
      Error (Printf.sprintf "Artifact.of_sexp: unsupported schema %d" schema)
    else
      let* checker = field "checker" to_atom in
      let* n = field "n" to_int in
      let* inputs = int_list "inputs" in
      let* max_depth = field "max-depth" to_int in
      let* cheap_collect = field "cheap-collect" to_bool in
      let* path = int_list "path" in
      let* reason = field "reason" to_atom in
      let* faults =
        match assoc1 "faults" sexp with
        | None -> Ok Fault.none
        | Some (Atom s) -> Fault.of_string s
        | Some _ -> Error "Artifact.of_sexp: bad field faults"
      in
      let* trace =
        match assoc1 "trace" sexp with
        | None -> Ok None
        | Some t -> Result.map Option.some (Trace.of_sexp t)
      in
      Ok { checker; n; inputs = Array.of_list inputs; max_depth; cheap_collect;
           faults; path; reason; trace }
  | _ -> Error "Artifact.of_sexp: expected (counterexample ...)"

let save file a =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf
        "; conrat counterexample artifact (replay with `conrat check --replay %s`)@.%a@."
        (Filename.basename file) Sexp.pp (to_sexp a))

let load file =
  match In_channel.with_open_text file In_channel.input_all with
  | contents ->
    Result.bind (Sexp.of_string contents) of_sexp
  | exception Sys_error msg -> Error msg

let replay ?engine ~setup ~check a =
  let r =
    Explore.run_path ?engine ~max_depth:a.max_depth ~cheap_collect:a.cheap_collect
      ~faults:a.faults ~n:a.n ~setup a.path
  in
  check ~complete:r.completed r.outputs

let of_failure ~checker ~n ~inputs ~max_depth ~cheap_collect
    ?(faults = Fault.none) ~setup ~check path =
  let r =
    Explore.run_path ~record:true ~max_depth ~cheap_collect ~faults ~n ~setup
      path
  in
  let reason =
    match check ~complete:r.completed r.outputs with
    | Error reason -> reason
    | Ok () -> invalid_arg "Artifact.of_failure: path does not fail the checker"
  in
  { checker; n; inputs; max_depth; cheap_collect; faults; path; reason;
    trace = r.trace }
