(** Delta-debugging counterexample shrinker.

    A failing execution found by either explorer (or reconstructed from
    a qcheck seed) is a branch path — the {!Conrat_sim.Explore.run_path}
    choice list.  [minimize] reduces it over three axes, re-running the
    deterministic replay after every candidate edit and keeping only
    edits that still fail the checker:

    + {b number of processes} — re-explore (with a small budget) at
      each smaller [n] and restart from any violation found there;
    + {b path length} — choices beyond the path default to 0, so the
      shortest failing prefix is tried first;
    + {b branch choices} — ddmin-style zeroing of chunks at shrinking
      granularity, then lowering individual choices, until a fixpoint.

    The result is 1-minimal in the usual ddmin sense: no single
    remaining choice can be dropped or lowered without losing the
    failure.  Any checker failure counts (the shrunk schedule may
    surface a different violation message than the original — standard
    delta-debugging semantics). *)

type 'r target = {
  n : int;                (** processes in the original counterexample *)
  max_depth : int;
  cheap_collect : bool;
  faults : Conrat_sim.Fault.model;
    (** the fault budget the counterexample was found under — it fixes
        the path encoding, so replays and the smaller-[n] re-exploration
        must use the same model.  Zeroing a choice at a fault-widened
        scheduling point turns a crash into the first enabled step, so
        the shrinker also minimizes fault placements for free. *)
  setup : n:int -> unit -> Conrat_sim.Memory.t * (pid:int -> 'r Conrat_sim.Program.t);
    (** must accept any [1 ≤ n' ≤ n] (e.g. by truncating the inputs) *)
  check : n:int -> complete:bool -> 'r option array -> (unit, string) result;
}

val failing : ?count:int ref -> 'r target -> n:int -> int list -> bool
(** One deterministic replay; [true] iff the checker rejects it.
    [count], when given, is incremented per replay (shrink-cost
    accounting). *)

val path : ?count:int ref -> 'r target -> n:int -> int list -> int list
(** Shrink the path only (axes 2 and 3), at a fixed [n].  Raises
    [Invalid_argument] if the given path does not fail. *)

val minimize :
  ?min_n:int ->
  ?explore_budget:int ->
  ?count:int ref ->
  'r target ->
  path:int list ->
  unit ->
  int * int list
(** [minimize target ~path ()] = the shrunk [(n, path)].  [min_n]
    bounds the process-count search from below (default 1);
    [explore_budget] caps the per-[n] re-exploration (default
    20_000 runs). *)
