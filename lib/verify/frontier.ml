module Telemetry = Conrat_obs.Telemetry

type t = int list array

let target ~jobs = max 64 (16 * jobs)

(* Deepening heuristic: a cut at frame nesting [lvl] yields one shard
   per sleep-surviving candidate of each first-branch-point-at-or-below
   [lvl]; going deeper multiplies shards by the branching beneath, at
   the price of the generator exploring longer corridors itself.  We
   start shallow and deepen by two frames while the count still grows
   and remains short of [target]; a pass whose count stops growing
   (same branch points, or a narrow chain) is kept as-is — each pass is
   a complete partition, so any pass is correct, and the stagnation
   pass is the cheapest correct one.  Zero shards means the cut never
   fired: the whole tree sits above the cut and the residue statistics
   of that pass already cover it. *)
let generate ?probe ~target ~run () =
  let rec go lvl prev_count =
    let shards = ref [] in
    let nshards = ref 0 in
    let emit path =
      shards := path :: !shards;
      incr nshards
    in
    (match probe with
     | Some p -> Telemetry.bump p Telemetry.frontier_passes
     | None -> ());
    match run ~cut:(lvl, emit) with
    | Error _ as e -> e
    | Ok residue ->
      let count = !nshards in
      if count = 0 || count >= target || count <= prev_count then begin
        (match probe with
         | Some p -> Telemetry.peak p Telemetry.shards_generated count
         | None -> ());
        Ok (residue, Array.of_list (List.rev !shards))
      end
      else go (lvl + 2) count
  in
  go 2 0

type pool = { shards : t; cursor : int Atomic.t }

let pool shards = { shards; cursor = Atomic.make 0 }

let steal p =
  let i = Atomic.fetch_and_add p.cursor 1 in
  if i < Array.length p.shards then Some (i, p.shards.(i)) else None

let remaining p = max 0 (Array.length p.shards - Atomic.get p.cursor)
