open Conrat_sim
open Conrat_objects

type property =
  | Weak_consensus
  | Valid_coherent
  | Deciders_agree

type t = {
  name : string;
  doc : string;
  factory : Deciding.factory;
  n : int;
  inputs : int array;
  property : property;
  max_depth : int;
  max_runs : int;
  cheap_collect : bool;
  faults : Fault.model;
}

(* Under a crash budget, completion-conditional clauses switch to their
   survivor form: a [None] output at a complete leaf is a crashed
   process (exactly — survivors always finish at complete leaves), and
   crash-stop is allowed to excuse it from acceptance.  Validity,
   coherence and agreement already quantify over produced outputs only,
   so they are checked verbatim — those are the crash-robust safety
   properties. *)
(* Staged: property dispatch and clause selection happen once per
   config, and the per-leaf closure chains the clauses with an explicit
   first-error-wins match instead of materializing a result list —
   this closure runs at every leaf of multi-million-leaf searches. *)
let check_of_property property ~crash_tolerant ~inputs =
  let acceptance =
    if crash_tolerant then Spec.acceptance_survivors else Spec.acceptance
  in
  match property with
  | Weak_consensus ->
    fun ~complete outputs ->
      (match Spec.validity_decided ~inputs ~outputs with
       | Error _ as e -> e
       | Ok () ->
         (match Spec.coherence ~outputs with
          | Error _ as e -> e
          | Ok () -> if complete then acceptance ~inputs ~outputs else Ok ()))
  | Valid_coherent ->
    fun ~complete:_ outputs ->
      (match Spec.validity_decided ~inputs ~outputs with
       | Error _ as e -> e
       | Ok () -> Spec.coherence ~outputs)
  | Deciders_agree ->
    fun ~complete:_ outputs ->
      (match Spec.validity_decided ~inputs ~outputs with
       | Error _ as e -> e
       | Ok () ->
         (match Spec.coherence ~outputs with
          | Error _ as e -> e
          | Ok () -> Spec.agreement_decided ~outputs))

(* A fresh rng per instance: the explorer only branches probabilistic
   writes, so checked protocols must not consume local coins — the rng
   is a placeholder, recreated per run for deterministic replay. *)
let setup_of config ~n () =
  let rng = Rng.create 0 in
  let memory = Memory.create () in
  if config.faults.Fault.weak_reads then Memory.weaken_all memory;
  (* Recovery wipes need last-writer ownership; engage tracking before
     any protocol write so every cell's provenance is known.  Kept off
     otherwise — recovery-free runs stay bit-identical to the pre-plane
     explorer. *)
  if config.faults.Fault.recoveries > 0 then Memory.track_writers memory;
  let instance = config.factory.Deciding.instantiate ~n memory in
  let inputs = Array.sub config.inputs 0 n in
  let body ~pid =
    Program.map
      (fun out -> (out.Deciding.decide, out.Deciding.value))
      (instance.Deciding.run ~pid ~rng inputs.(pid))
  in
  (memory, body)

let check_of config ~n =
  check_of_property config.property
    ~crash_tolerant:(config.faults.Fault.crashes > 0)
    ~inputs:(Array.sub config.inputs 0 n)

let target_of config =
  { Shrink.n = config.n;
    max_depth = config.max_depth;
    cheap_collect = config.cheap_collect;
    faults = config.faults;
    setup = setup_of config;
    check = check_of config }

(* ------------------------------------------------------------------ *)
(* The registry                                                        *)
(* ------------------------------------------------------------------ *)

let config ?(max_depth = 200) ?(max_runs = 20_000_000) ?(cheap_collect = false)
    ?(faults = Fault.none) ~doc ~factory ~inputs ~property name =
  { name; doc; factory; n = Array.length inputs; inputs; property;
    max_depth; max_runs; cheap_collect; faults }

let all =
  [ config "binary_ratifier_n2"
      ~doc:"3-register binary ratifier, n=2, conflicting inputs"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1 |] ~property:Weak_consensus;
    config "binary_ratifier_n3"
      ~doc:"binary ratifier, n=3, split inputs"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1; 0 |] ~property:Weak_consensus;
    config "binary_ratifier_accept_n3"
      ~doc:"binary ratifier, n=3, agreeing inputs (acceptance)"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 1; 1; 1 |] ~property:Weak_consensus;
    config "binary_ratifier_n4"
      ~doc:"binary ratifier, n=4, alternating inputs (POR-only bound)"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1; 0; 1 |] ~property:Weak_consensus
      ~max_runs:200_000_000;
    config "bollobas_ratifier_n3_m3"
      ~doc:"Bollobás ratifier, n=3, three-way conflicting inputs"
      ~factory:(Conrat_core.Ratifier.bollobas ~m:3)
      ~inputs:[| 0; 1; 2 |] ~property:Weak_consensus;
    config "cheap_collect_ratifier_n2"
      ~doc:"cheap-collect ratifier (m=3), n=2"
      ~factory:(Conrat_core.Ratifier.cheap_collect ~m:3)
      ~inputs:[| 0; 1 |] ~property:Weak_consensus ~cheap_collect:true;
    config "conciliator_n2"
      ~doc:"impatient first-mover conciliator, n=2, depth 60"
      ~factory:(Conrat_core.Conciliator.impatient_first_mover ())
      ~inputs:[| 0; 1 |] ~property:Valid_coherent ~max_depth:60;
    config "composite_n2"
      ~doc:"one conciliator;ratifier round, n=2, depth 60"
      ~factory:(Compose.seq_factory
                  [ Conrat_core.Conciliator.impatient_first_mover ();
                    Conrat_core.Ratifier.binary () ])
      ~inputs:[| 0; 1 |] ~property:Valid_coherent ~max_depth:60;
    config "fallback_n2_d28"
      ~doc:"racing fallback, n=2, full tree to depth 28"
      ~factory:(Conrat_core.Fallback.racing ~m:2 ())
      ~inputs:[| 0; 1 |] ~property:Deciders_agree ~max_depth:28;
    config "fallback_n2_d34"
      ~doc:"racing fallback, n=2, full tree to depth 34 (POR-only bound)"
      ~factory:(Conrat_core.Fallback.racing ~m:2 ())
      ~inputs:[| 0; 1 |] ~property:Deciders_agree ~max_depth:34
      ~max_runs:200_000_000;
    config "fallback_n2_d40"
      ~doc:"racing fallback, n=2, full tree to depth 40 (stateful-POR bound)"
      ~factory:(Conrat_core.Fallback.racing ~m:2 ())
      ~inputs:[| 0; 1 |] ~property:Deciders_agree ~max_depth:40
      ~max_runs:2_000_000_000;
    (* Crash-closed configs: the same protocols proved safe under every
       placement of up to f crash-stops (acceptance in its survivor
       form).  Ratifiers are deterministic and wait-free, so the whole
       crash-closed tree is finite without depth truncation. *)
    config "binary_ratifier_n2_f1"
      ~doc:"binary ratifier, n=2, conflicting inputs, crash-closed f=1"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1 |] ~property:Weak_consensus
      ~faults:(Fault.crash_only 1);
    config "binary_ratifier_n3_f1"
      ~doc:"binary ratifier, n=3, split inputs, crash-closed f=1"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1; 0 |] ~property:Weak_consensus
      ~faults:(Fault.crash_only 1);
    config "binary_ratifier_n3_f2"
      ~doc:"binary ratifier, n=3, split inputs, crash-closed f=2"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1; 0 |] ~property:Weak_consensus
      ~faults:(Fault.crash_only 2);
    config "binary_ratifier_accept_n3_f2"
      ~doc:"binary ratifier, n=3, agreeing inputs, survivor acceptance, f=2"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 1; 1; 1 |] ~property:Weak_consensus
      ~faults:(Fault.crash_only 2);
    config "conciliator_n2_f1"
      ~doc:"impatient first-mover conciliator, n=2, depth 60, crash-closed f=1"
      ~factory:(Conrat_core.Conciliator.impatient_first_mover ())
      ~inputs:[| 0; 1 |] ~property:Valid_coherent ~max_depth:60
      ~faults:(Fault.crash_only 1);
    config "binary_ratifier_n5"
      ~doc:"binary ratifier, n=5, alternating inputs (parallel/dedup bound)"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1; 0; 1; 0 |] ~property:Weak_consensus;
    config "binary_ratifier_n4_f2"
      ~doc:"binary ratifier, n=4, alternating inputs, crash-closed f=2"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1; 0; 1 |] ~property:Weak_consensus
      ~faults:(Fault.crash_only 2);
    (* Crash-recovery-closed configs: the recoverable ratifier (persistent
       decision-critical registers + re-validating recovery continuation)
       proved safe under every joint placement of up to f crash-stops and
       r recoveries.  The [0; 1; 1] instance is exactly the one where the
       stock ratifier loses coherence (see the binary_ratifier_n3_rec
       demo), so the pair is a machine-checked pass/fail contrast. *)
    config "binary_ratifier_rec_n2_f1"
      ~doc:"recoverable binary ratifier, n=2, crash-recovery-closed f=1 r=1"
      ~factory:(Conrat_core.Ratifier.binary_rec ())
      ~inputs:[| 0; 1 |] ~property:Weak_consensus
      ~faults:(Fault.model ~crashes:1 ~recoveries:1 ());
    config "binary_ratifier_rec_n3_f1"
      ~doc:"recoverable binary ratifier, n=3, crash-recovery-closed f=1 r=1"
      ~factory:(Conrat_core.Ratifier.binary_rec ())
      ~inputs:[| 0; 1; 1 |] ~property:Weak_consensus
      ~faults:(Fault.model ~crashes:1 ~recoveries:1 ()) ]

(* Extended-frontier configs: sound members of the registry whose trees
   are too large for [check all]'s budget on commodity hardware — run
   them by name ([conrat check fallback_n2_d46 --jobs N --dedup]).
   Kept out of [all] so CI stays bounded; [find] still resolves them. *)
let extended =
  [ config "fallback_n2_d46"
      ~doc:"racing fallback, n=2, full tree to depth 46 (dedup-frontier bound)"
      ~factory:(Conrat_core.Fallback.racing ~m:2 ())
      ~inputs:[| 0; 1 |] ~property:Deciders_agree ~max_depth:46
      ~max_runs:20_000_000_000 ]

(* Expected-failure demos: excluded from [all]; runnable by name to
   exercise the find → shrink → artifact pipeline end to end. *)
let demos =
  [ config "fallback_unstaked_n2"
      ~doc:"KNOWN-UNSOUND unstaked fallback (§7 test double) — must fail"
      ~factory:(Conrat_core.Fallback.racing_unstaked ~m:2 ())
      ~inputs:[| 0; 1 |] ~property:Deciders_agree ~max_depth:28;
    config "ratifier_await_ack"
      ~doc:"KNOWN CRASH-UNSAFE await-ack helper — must fail acceptance at f=1"
      ~factory:(Conrat_core.Ratifier.await_ack ())
      ~inputs:[| 1; 1 |] ~property:Weak_consensus ~max_depth:40
      ~faults:(Fault.crash_only 1);
    config "binary_ratifier_n2_weak"
      ~doc:"binary ratifier on weak (regular) registers — must fail coherence"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1 |] ~property:Valid_coherent
      ~faults:(Fault.model ~weak_reads:true ());
    (* The stock (volatile-register) ratifier under crash-recovery: a
       recovering announcer can be the last writer of a pool cell it
       shares with a surviving same-value process, so the recovery wipe
       erases the survivor's announcement out from under a concurrent
       conflict scan — a decider misses the conflicting value and
       coherence breaks.  Needs n=3 (two same-value announcers plus a
       conflicting decider); the crash-only f=1 closure of the very same
       protocol is proved safe above. *)
    config "binary_ratifier_n3_rec"
      ~doc:"KNOWN RECOVERY-UNSAFE volatile binary ratifier, crash:f=1,recover — must fail coherence"
      ~factory:(Conrat_core.Ratifier.binary ())
      ~inputs:[| 0; 1; 1 |] ~property:Weak_consensus
      ~faults:(Fault.model ~crashes:1 ~recoveries:1 ()) ]

let find name =
  List.find_opt (fun c -> c.name = name) (all @ demos @ extended)

let names = List.map (fun c -> c.name) all
let demo_names = List.map (fun c -> c.name) demos
let extended_names = List.map (fun c -> c.name) extended

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type failure = {
  reason : string;
  stats : Por.stats;
  artifact : Artifact.t;
  shrink_replays : int;
}

type outcome = (Por.stats, failure) result

let run ?engine ?stop ?max_runs ?sink ?heartbeat ?resume ?checkpoint_every
    ?on_checkpoint ?(jobs = 1) ?(dedup = false) ?telemetry config =
  let max_runs = Option.value max_runs ~default:config.max_runs in
  let result =
    if jobs > 1 then
      (* The parallel driver carries no checkpointing, and [sink] only
         feeds fleet-level steal/shard events there; the CLI rejects
         the unsupported combinations before reaching here. *)
      Parallel.explore_por ~jobs ?engine ~max_depth:config.max_depth ~max_runs
        ~cheap_collect:config.cheap_collect ~faults:config.faults ?stop
        ?heartbeat ~dedup ?telemetry ?sink ~n:config.n
        ~setup:(setup_of config ~n:config.n)
        ~check:(check_of config ~n:config.n)
        ()
    else
      let probe =
        Option.map
          (fun t -> Conrat_obs.Telemetry.probe t ~domain:0)
          telemetry
      in
      Por.explore ?engine ~max_depth:config.max_depth ~max_runs
        ~cheap_collect:config.cheap_collect ~faults:config.faults ?stop ?sink
        ?probe ?heartbeat ?resume ?checkpoint_every ?on_checkpoint ~dedup
        ~n:config.n
        ~setup:(setup_of config ~n:config.n)
        ~check:(check_of config ~n:config.n)
        ()
  in
  match result with
  | Ok stats -> Ok stats
  | Error (reason, path, stats) ->
    let count = ref 0 in
    let n, path = Shrink.minimize ~count (target_of config) ~path () in
    let artifact =
      Artifact.of_failure ~checker:config.name ~n
        ~inputs:(Array.sub config.inputs 0 n) ~max_depth:config.max_depth
        ~cheap_collect:config.cheap_collect ~faults:config.faults
        ~setup:(setup_of config ~n) ~check:(check_of config ~n) path
    in
    Error { reason; stats; artifact; shrink_replays = !count }

let replay ?engine config artifact =
  Artifact.replay ?engine ~setup:(setup_of config ~n:artifact.Artifact.n)
    ~check:(check_of config ~n:artifact.Artifact.n)
    artifact

(* ------------------------------------------------------------------ *)
(* Cross-checking POR against naive enumeration                        *)
(* ------------------------------------------------------------------ *)

type cross = {
  naive : Naive.stats;
  por : Por.stats;
  outcomes_agree : bool;
  outcome_count : int;
  engines_agree : bool;
}

let cross_check ?(engine = `Vm) ?stop ?max_runs ?naive_heartbeat ?por_heartbeat
    ?(jobs = 1) config =
  let max_runs = Option.value max_runs ~default:config.max_runs in
  let collect () = Hashtbl.create 64 in
  (* Copy before keying: explorers reuse the outputs buffer across
     leaves, and a hashtable key must not mutate after insertion.  With
     [jobs > 1] the collecting check runs from several domains, so the
     outcome table is mutex-guarded (membership peeks included). *)
  let lock = Mutex.create () in
  let noting outcomes ~complete outputs =
    if complete then
      Mutex.protect lock (fun () ->
          if not (Hashtbl.mem outcomes outputs) then
            Hashtbl.replace outcomes (Array.copy outputs) ());
    check_of config ~n:config.n ~complete outputs
  in
  let sets_equal a b =
    Hashtbl.length a = Hashtbl.length b
    && Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem b k) a true
  in
  let naive_outcomes = collect () in
  let naive =
    Parallel.explore_naive ~jobs ~engine ~max_depth:config.max_depth ~max_runs
      ~cheap_collect:config.cheap_collect ~faults:config.faults ?stop
      ?heartbeat:naive_heartbeat ~n:config.n
      ~setup:(setup_of config ~n:config.n)
      ~check:(noting naive_outcomes) ()
  in
  let por_outcomes = collect () in
  let por =
    Parallel.explore_por ~jobs ~engine ~max_depth:config.max_depth ~max_runs
      ~cheap_collect:config.cheap_collect ~faults:config.faults ?stop
      ?heartbeat:por_heartbeat ~n:config.n
      ~setup:(setup_of config ~n:config.n)
      ~check:(noting por_outcomes) ()
  in
  (* The engine differential: repeat the POR search under the other
     program engine and demand identical statistics (hence identical
     leaf order and pruning) and the identical complete-outcome set. *)
  let other : Conrat_sim.Machine.engine =
    match engine with `Vm -> `Tree | `Tree -> `Vm
  in
  let oracle_outcomes = collect () in
  let oracle =
    Por.explore ~engine:other ~max_depth:config.max_depth ~max_runs
      ~cheap_collect:config.cheap_collect ~faults:config.faults ?stop
      ~n:config.n
      ~setup:(setup_of config ~n:config.n)
      ~check:(noting oracle_outcomes) ()
  in
  match (naive, por, oracle) with
  | Ok naive, Ok por, Ok oracle ->
    Ok { naive; por;
         outcomes_agree = sets_equal naive_outcomes por_outcomes;
         outcome_count = Hashtbl.length naive_outcomes;
         engines_agree = por = oracle && sets_equal por_outcomes oracle_outcomes }
  | Error (reason, _), _, _ -> Error ("naive: " ^ reason)
  | _, Error (reason, _, _), _ -> Error ("por: " ^ reason)
  | _, _, Error (reason, _, _) -> Error ("por (oracle engine): " ^ reason)
