(** The static independence relation driving partial-order reduction.

    Two pending operations of {e distinct} processes are independent
    when executing them in either order yields the same memory, the
    same values handed back to each process, and the same branching
    structure (probabilistic writes branch on their own private coin,
    so a swap pairs the coin outcomes unchanged).  Statically that
    holds exactly when their register footprints don't conflict:

    - operations on disjoint registers always commute;
    - reads (and collects) commute with reads and collects even on the
      same registers;
    - anything that can write a register conflicts with every operation
      touching that register.  Probabilistic writes are conservatively
      treated as writes regardless of whether the explored coin
      outcome lands — a sound over-approximation.

    Enabledness never interferes in this model: executing one process
    can neither enable nor disable another (a process leaves the
    enabled set only by finishing, and its pending operation is fixed
    until it is scheduled), so footprint commutation is the whole
    relation. *)

type footprint = {
  lo : int;        (** first register touched *)
  hi : int;        (** one past the last register touched *)
  writes : bool;   (** can the operation modify memory? *)
}

val footprint : Conrat_sim.Op.any -> footprint

val op_writes : Conrat_sim.Op.any -> bool
val op_hi : Conrat_sim.Op.any -> int
(** Scalar views of {!footprint} ([footprint].writes / [footprint].hi)
    that allocate nothing — the per-event race bookkeeping of the
    dynamic POR engine reads them once per transition.  The low end of
    the footprint is [Conrat_sim.Op.loc]. *)

val independent : Conrat_sim.Op.any -> Conrat_sim.Op.any -> bool
(** Symmetric and irreflexive-agnostic (only ever consulted for ops of
    two different processes). *)

type action =
  | Exec of Conrat_sim.Op.any  (** execute the process's pending operation *)
  | Crash                      (** crash-stop the process *)
  | Recover                    (** recover the process from a crash *)

val independent_actions :
  pid1:int -> action -> pid2:int -> action -> bool
(** The fault-aware relation used by the fault-enabled POR engine.
    Transitions of the same process are always dependent; across
    processes, [Exec]/[Exec] reduces to {!independent}, a [Crash]
    is independent of everything (it touches no register), and a
    [Recover] — which wipes the volatile registers its process last
    wrote, a footprint no static analysis bounds — is conservatively
    dependent on every [Exec] but commutes with [Crash] and with other
    processes' [Recover]s (last-writer ownership makes the wiped sets
    disjoint).  Crash/crash and recover/recover pairs can disable each
    other under a budget of one, but fault candidates only exist while
    their budget remains, so a sleeping entry below a budget-exhausting
    transition is inert — see the soundness note in the
    implementation. *)
