(** The static independence relation driving partial-order reduction.

    Two pending operations of {e distinct} processes are independent
    when executing them in either order yields the same memory, the
    same values handed back to each process, and the same branching
    structure (probabilistic writes branch on their own private coin,
    so a swap pairs the coin outcomes unchanged).  Statically that
    holds exactly when their register footprints don't conflict:

    - operations on disjoint registers always commute;
    - reads (and collects) commute with reads and collects even on the
      same registers;
    - anything that can write a register conflicts with every operation
      touching that register.  Probabilistic writes are conservatively
      treated as writes regardless of whether the explored coin
      outcome lands — a sound over-approximation.

    Enabledness never interferes in this model: executing one process
    can neither enable nor disable another (a process leaves the
    enabled set only by finishing, and its pending operation is fixed
    until it is scheduled), so footprint commutation is the whole
    relation. *)

type footprint = {
  lo : int;        (** first register touched *)
  hi : int;        (** one past the last register touched *)
  writes : bool;   (** can the operation modify memory? *)
}

val footprint : Conrat_sim.Op.any -> footprint

val independent : Conrat_sim.Op.any -> Conrat_sim.Op.any -> bool
(** Symmetric and irreflexive-agnostic (only ever consulted for ops of
    two different processes). *)
