(** SIGINT-safe checkpoints of an exhaustive explorer's DFS frontier.

    A checkpoint is the path (in {!Conrat_sim.Explore.run_path}'s
    branch encoding) to the leaf the explorer was about to count,
    together with the statistics accumulated strictly before that leaf.
    Resuming fast-forwards along the path — re-applying transitions but
    counting and checking nothing — then counts that leaf normally and
    continues, which makes a resumed run's outcome set, leaf order and
    statistics bit-identical to an uninterrupted one (the guarantee the
    round-trip tests lock in).

    The engines accept and emit the bare {!counts}; this record adds
    the engine and checker names so the CLI can refuse to resume a
    checkpoint against the wrong config or engine, plus durable
    save/load (write-then-rename, so interrupting a save never leaves a
    torn file). *)

type counts = {
  path : int list;    (** branch choices to the first uncounted leaf *)
  complete : int;
  truncated : int;
  pruned : int;       (** 0 for the naive engine *)
  steps : int;        (** machine transitions, including backtracked *)
}

type t = {
  engine : string;    (** ["por"] or ["naive"] *)
  checker : string;   (** registry config name *)
  counts : counts;
}

val schema_version : int
(** The schema written by {!to_sexp} (currently 2, which added
    recover-choice path indices).  {!of_sexp} also accepts schema-1
    checkpoints — necessarily recovery-free — which replay
    bit-identically. *)

val to_sexp : t -> Conrat_sim.Sexp.t
val of_sexp : Conrat_sim.Sexp.t -> (t, string) result

val save : string -> t -> unit
(** Atomic (write temp file, rename over). *)

val load : string -> (t, string) result
