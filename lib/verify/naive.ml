include Conrat_sim.Explore
