open Conrat_sim

type stats = {
  complete : int;
  truncated : int;
  exhausted : bool;
  steps : int;
}

let explore ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(stop = fun () -> false) ?heartbeat ~n ~setup ~check () =
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let runs = ref 0 in
  let steps = ref 0 in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      exhausted;
      steps = !steps }
  in
  let rec drive path =
    if !runs >= max_runs || stop () then Ok (stats false)
    else begin
      incr runs;
      let run = Explore.run_path ~max_depth ~cheap_collect ~n ~setup path in
      steps := !steps + run.Explore.steps;
      if run.Explore.completed then incr complete_count else incr truncated_count;
      (match heartbeat with
       | None -> ()
       | Some hb -> hb ~runs:!runs ~steps:!steps ~depth:run.Explore.steps);
      match check ~complete:run.Explore.completed run.Explore.outputs with
      | Error reason -> Error (reason, stats false)
      | Ok () ->
        (match Explore.next_path run.Explore.branches with
         | Some next -> drive next
         | None -> Ok (stats true))
    end
  in
  drive []
