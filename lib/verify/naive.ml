open Conrat_sim
module Telemetry = Conrat_obs.Telemetry

type stats = {
  complete : int;
  truncated : int;
  exhausted : bool;
  steps : int;
}

let explore ?engine ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(faults = Fault.none) ?(stop = fun () -> false) ?probe ?heartbeat
    ?resume ?(path_floor = 0) ?(checkpoint_every = 100_000) ?on_checkpoint
    ~n ~setup ~check () =
  if path_floor > 0 && resume = None then
    invalid_arg "Naive.explore: path_floor requires resume";
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let runs = ref 0 in
  let steps = ref 0 in
  (* Resuming the re-execution enumerator is trivial: a path IS the
     whole frontier, so restore the counters and re-enter the loop at
     the checkpointed (uncounted) path. *)
  let start_path =
    match resume with
    | None -> []
    | Some (c : Checkpoint.counts) ->
      complete_count := c.complete;
      truncated_count := c.truncated;
      runs := c.complete + c.truncated;
      steps := c.steps;
      c.path
  in
  let last_saved = ref !runs in
  (* Probe adds are exit-time deltas against the resume baseline — see
     Por.explore. *)
  let c0_complete = !complete_count in
  let c0_truncated = !truncated_count in
  let c0_steps = !steps in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      exhausted;
      steps = !steps }
  in
  let rec drive path =
    let stopping = !runs >= max_runs || stop () in
    (match on_checkpoint with
     | Some save when stopping || !runs - !last_saved >= checkpoint_every ->
       (* Saved before running/counting [path], mirroring Por: the
          resumed run re-runs and counts this very leaf. *)
       save
         { Checkpoint.path;
           complete = !complete_count;
           truncated = !truncated_count;
           pruned = 0;
           steps = !steps };
       (match probe with
        | Some p -> Telemetry.bump p Telemetry.checkpoints
        | None -> ());
       last_saved := !runs
     | Some _ | None -> ());
    if stopping then Ok (stats false)
    else begin
      incr runs;
      let run = Explore.run_path ?engine ~max_depth ~cheap_collect ~faults ~n ~setup path in
      steps := !steps + run.Explore.steps;
      if run.Explore.completed then incr complete_count else incr truncated_count;
      (match heartbeat with
       | None -> ()
       | Some hb -> hb ~runs:!runs ~steps:!steps ~depth:run.Explore.steps);
      match check ~complete:run.Explore.completed run.Explore.outputs with
      | Error reason -> Error (reason, stats false)
      | Ok () ->
        (match Explore.next_path_from ~lo:path_floor run.Explore.branches with
         | Some next -> drive next
         | None -> Ok (stats true))
    end
  in
  let finish r =
    (match probe with
     | None -> ()
     | Some p ->
       Telemetry.add p Telemetry.leaves_complete (!complete_count - c0_complete);
       Telemetry.add p Telemetry.leaves_truncated (!truncated_count - c0_truncated);
       Telemetry.add p Telemetry.steps (!steps - c0_steps));
    r
  in
  finish (drive start_path)
