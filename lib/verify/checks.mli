(** Named checker configurations: the registry behind [conrat check].

    A config pins everything an exhaustive run needs — protocol factory,
    process count, inputs, depth bound, model flags, and which of the §3
    safety properties to check on every leaf.  [run] explores it with
    the {!Por} engine and, on violation, shrinks the witness with
    {!Shrink} and freezes it into an {!Artifact}.  [cross_check] runs
    the same config under both the naive enumerator and POR and compares
    their complete-execution outcome sets — the empirical soundness
    check required of every reduced exploration. *)

type property =
  | Weak_consensus
      (** validity + coherence, plus acceptance on complete executions *)
  | Valid_coherent
      (** validity + coherence only (conciliators: agreement is
          probabilistic, not universal) *)
  | Deciders_agree
      (** validity + coherence + agreement of output values (consensus
          protocols where every output decides) *)

type t = {
  name : string;
  doc : string;
  factory : Conrat_objects.Deciding.factory;
  n : int;
  inputs : int array;            (** length [n] *)
  property : property;
  max_depth : int;
  max_runs : int;                (** per-engine execution budget *)
  cheap_collect : bool;
  faults : Conrat_sim.Fault.model;
    (** fault closure for this config.  With [crashes > 0] the
        exploration covers every placement of up to that many
        crash-stops and the completion-conditional acceptance clause
        switches to {!Conrat_sim.Spec.acceptance_survivors} (crashed
        processes are excused; everything else is checked verbatim).
        With [weak_reads] every register is weakened and each read
        forks fresh/stale. *)
}

val all : t list
(** Every config expected to pass, in increasing cost order; includes
    the POR-only bounds (binary ratifier n=4 and n=5, fallback depths
    34 and 40) and the crash-closed configs (binary ratifier f ≤ 2 at
    n ≤ 4, conciliator f = 1). *)

val demos : t list
(** Expected-failure demos — runnable by name, excluded from {!all}:
    the §7 unstaked fallback test double, the crash-unsafe await-ack
    helper (fails survivor acceptance at f = 1), and the binary
    ratifier on weak registers (fails coherence). *)

val extended : t list
(** Extended-frontier configs — sound, but too large for {!all}'s CI
    budget; runnable by name with [--jobs]/[--dedup] (currently the
    depth-46 racing fallback). *)

val names : string list
val demo_names : string list
val extended_names : string list
val find : string -> t option

val check_of :
  t -> n:int -> complete:bool ->
  (bool * int) option array -> (unit, string) result

val setup_of :
  t -> n:int -> unit ->
  Conrat_sim.Memory.t * (pid:int -> (bool * int) Conrat_sim.Program.t)

val target_of : t -> (bool * int) Shrink.target

type failure = {
  reason : string;          (** checker message on the original witness *)
  stats : Por.stats;        (** exploration counts up to the violation *)
  artifact : Artifact.t;    (** shrunk, replayable *)
  shrink_replays : int;     (** executions spent shrinking *)
}

type outcome = (Por.stats, failure) result

val run :
  ?engine:Conrat_sim.Machine.engine ->
  ?stop:(unit -> bool) ->
  ?max_runs:int ->
  ?sink:Conrat_sim.Sink.t ->
  ?heartbeat:(runs:int -> pruned:int -> steps:int -> depth:int -> unit) ->
  ?resume:Checkpoint.counts ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.counts -> unit) ->
  ?jobs:int ->
  ?dedup:bool ->
  ?telemetry:Conrat_obs.Telemetry.t ->
  t -> outcome
(** [sink], [heartbeat] and the checkpointing triple are passed through
    to {!Por.explore} (the heartbeat fires per leaf; rate limiting is
    the callback's business).  The config's [faults] model is applied
    to the exploration, the property, the shrinker and the recorded
    artifact.  [engine] selects the program engine (default the
    compiled VM); results, checkpoints and artifacts are identical
    under either.

    [jobs > 1] dispatches to {!Parallel.explore_por} — same
    statistics, outcome set and failure artifacts for exhaustive runs;
    checkpointing is unsupported there, [sink] degrades to the
    fleet-level steal/shard events, and the heartbeat switches to
    fleet-wide totals.  [dedup] enables duplicate-state suppression
    (VM engine only; see {!Por.explore}).  A parallel failure is
    shrunk and frozen exactly like a sequential one — the shard's path
    is a root path.

    [telemetry] attaches a {!section-"obs"}[Telemetry] registry: the
    sequential path bumps domain row [0], the parallel path maps
    worker [w] to row [w] (see {!Parallel.explore_por}).  Shrinking
    replays after a violation are {e not} counted — the telemetry
    covers the search itself. *)

val replay :
  ?engine:Conrat_sim.Machine.engine ->
  t -> Artifact.t -> (unit, string) result
(** Replay an artifact under this config's factory and property (the
    artifact's own [n]/[inputs]/bounds are used).  [Error _] means the
    violation reproduced. *)

type cross = {
  naive : Naive.stats;
  por : Por.stats;
  outcomes_agree : bool;    (** complete-execution outcome sets equal *)
  outcome_count : int;      (** distinct complete outcomes (naive) *)
  engines_agree : bool;
    (** the POR search repeated under the {e other} program engine gave
        bit-identical statistics and the identical outcome set — the VM
        vs tree differential *)
}

val cross_check :
  ?engine:Conrat_sim.Machine.engine ->
  ?stop:(unit -> bool) ->
  ?max_runs:int ->
  ?naive_heartbeat:(runs:int -> steps:int -> depth:int -> unit) ->
  ?por_heartbeat:(runs:int -> pruned:int -> steps:int -> depth:int -> unit) ->
  ?jobs:int ->
  t -> (cross, string) result
(** [Error _] if either algorithm found a property violation.  The two
    heartbeats report the respective algorithm's progress.  Besides the
    naive-vs-POR comparison, the POR search is repeated under the other
    program engine ([engine] names the primary; default [`Vm]) and the
    results compared — so one cross-check validates both the reduction
    and the compiler.  [jobs > 1] runs the naive and primary POR sweeps
    under {!Parallel} (statistics are [jobs]-invariant for exhaustive
    runs, so the differential is unaffected); the oracle-engine sweep
    stays sequential. *)
