open Conrat_sim

(* A checkpoint freezes an exhaustive explorer's DFS frontier: the path
   (in Explore.run_path's branch encoding) to the leaf the explorer was
   about to count, plus everything already counted strictly before that
   leaf.  The convention "current leaf is saved uncounted" makes the
   resume semantics unambiguous: the resumed run fast-forwards along
   [path] without counting or checking anything, then counts that very
   leaf normally and explores on.  The result — outcome set, leaf order
   and statistics — is bit-identical to an uninterrupted run. *)

type counts = {
  path : int list;
  complete : int;
  truncated : int;
  pruned : int;
  steps : int;
}

type t = {
  engine : string;   (* "por" or "naive" *)
  checker : string;  (* registry config name, to refuse cross-config resumes *)
  counts : counts;
}

(* Schema 2 = schema 1 plus the possibility of recover-choice indices
   inside [path] (the crash-recovery plane); the field layout is
   unchanged, so schema-1 checkpoints — necessarily recovery-free —
   still load and replay bit-identically. *)
let schema_version = 2
let accepted_schemas = [ 1; 2 ]

let to_sexp t =
  let open Sexp in
  List
    [ Atom "checkpoint";
      List [ Atom "schema"; of_int schema_version ];
      List [ Atom "engine"; Atom t.engine ];
      List [ Atom "checker"; Atom t.checker ];
      List (Atom "path" :: List.map of_int t.counts.path);
      List [ Atom "complete"; of_int t.counts.complete ];
      List [ Atom "truncated"; of_int t.counts.truncated ];
      List [ Atom "pruned"; of_int t.counts.pruned ];
      List [ Atom "steps"; of_int t.counts.steps ] ]

let of_sexp sexp =
  let open Sexp in
  let ( let* ) r f = Result.bind r f in
  let field name decode =
    match assoc1 name sexp with
    | Some v ->
      (match decode v with
       | Some x -> Ok x
       | None -> Error (Printf.sprintf "Checkpoint.of_sexp: bad field %s" name))
    | None -> Error (Printf.sprintf "Checkpoint.of_sexp: missing field %s" name)
  in
  match sexp with
  | List (Atom "checkpoint" :: _) ->
    let* schema = field "schema" to_int in
    if not (List.mem schema accepted_schemas) then
      Error (Printf.sprintf "Checkpoint.of_sexp: unsupported schema %d" schema)
    else
      let* engine = field "engine" to_atom in
      let* checker = field "checker" to_atom in
      let* path =
        match assoc "path" sexp with
        | None -> Error "Checkpoint.of_sexp: missing field path"
        | Some items ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest ->
              (match to_int item with
               | Some i -> go (i :: acc) rest
               | None -> Error "Checkpoint.of_sexp: bad field path")
          in
          go [] items
      in
      let* complete = field "complete" to_int in
      let* truncated = field "truncated" to_int in
      let* pruned = field "pruned" to_int in
      let* steps = field "steps" to_int in
      Ok { engine; checker; counts = { path; complete; truncated; pruned; steps } }
  | _ -> Error "Checkpoint.of_sexp: expected (checkpoint ...)"

(* Write-then-rename so a SIGINT (or kill) mid-save leaves either the
   previous checkpoint or the new one on disk, never a torn file. *)
let save file t =
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf
        "; conrat explorer checkpoint (resume with `conrat check %s --resume %s`)@.%a@."
        t.checker (Filename.basename file) Sexp.pp (to_sexp t));
  Sys.rename tmp file

let load file =
  match In_channel.with_open_text file In_channel.input_all with
  | contents -> Result.bind (Sexp.of_string contents) of_sexp
  | exception Sys_error msg -> Error msg
