open Conrat_sim

type footprint = {
  lo : int;
  hi : int;
  writes : bool;
}

let footprint op =
  let l = Op.loc op in
  match Op.kind op with
  | Op.Read_op -> { lo = l; hi = l + 1; writes = false }
  | Op.Write_op | Op.Prob_write_op -> { lo = l; hi = l + 1; writes = true }
  | Op.Collect_op ->
    let len =
      match op with
      | Op.Any (Op.Collect (_, len)) -> len
      | _ -> 1
    in
    { lo = l; hi = l + len; writes = false }

let overlap a b = a.lo < b.hi && b.lo < a.hi

let independent o1 o2 =
  let f1 = footprint o1 and f2 = footprint o2 in
  (not (overlap f1 f2)) || ((not f1.writes) && not f2.writes)

(* Crash-aware transitions: a scheduling candidate is either executing
   a pending operation or crash-stopping the process. *)
type action =
  | Exec of Op.any
  | Crash

(* Two transitions of distinct processes commute unless their operations
   conflict on memory.  A crash touches no register, so crash(p) is
   independent of every transition of q ≠ p: both orders leave the same
   memory, program states and crashed set.  crash(p) vs crash(q) also
   commutes state-wise; with a finite crash budget the two can disable
   each other (budget 1), but a sleeping crash entry below a budget-
   exhausted transition is inert — crash candidates are only generated
   while budget remains — so treating them as independent stays sound.
   Same-process pairs never commute (executing p removes/changes p's
   pending transition), including exec(p) vs crash(p). *)
let independent_actions ~pid1 a1 ~pid2 a2 =
  pid1 <> pid2
  && (match (a1, a2) with
      | Exec o1, Exec o2 -> independent o1 o2
      | Crash, _ | _, Crash -> true)
