open Conrat_sim

type footprint = {
  lo : int;
  hi : int;
  writes : bool;
}

let footprint op =
  let l = Op.loc op in
  match Op.kind op with
  | Op.Read_op -> { lo = l; hi = l + 1; writes = false }
  | Op.Write_op | Op.Prob_write_op -> { lo = l; hi = l + 1; writes = true }
  | Op.Collect_op ->
    let len =
      match op with
      | Op.Any (Op.Collect (_, len)) -> len
      | _ -> 1
    in
    { lo = l; hi = l + len; writes = false }

(* [footprint] unpacked into scalar reads: [independent] sits on the
   POR sleep-set filter's hot path, where two record allocations per
   test would be the filter's whole cost. *)
(* Scalar views of the footprint, for hot paths that must not allocate
   the record ([Por]'s per-event race bookkeeping). *)
let op_writes (Op.Any o) =
  match o with
  | Op.Write _ | Op.Prob_write _ | Op.Prob_write_detect _ -> true
  | Op.Read _ | Op.Collect _ -> false

let op_hi (Op.Any o as any) =
  match o with
  | Op.Collect (_, len) -> Op.loc any + len
  | Op.Read _ | Op.Write _ | Op.Prob_write _ | Op.Prob_write_detect _ ->
    Op.loc any + 1

let independent o1 o2 =
  ((not (op_writes o1)) && not (op_writes o2))
  || not (Op.loc o1 < op_hi o2 && Op.loc o2 < op_hi o1)

(* Fault-aware transitions: a scheduling candidate is executing a
   pending operation, crash-stopping the process, or recovering it from
   a crash. *)
type action =
  | Exec of Op.any
  | Crash
  | Recover

(* Two transitions of distinct processes commute unless their operations
   conflict on memory.  A crash touches no register, so crash(p) is
   independent of every transition of q ≠ p: both orders leave the same
   memory, program states and crashed set.  crash(p) vs crash(q) also
   commutes state-wise; with a finite crash budget the two can disable
   each other (budget 1), but a sleeping crash entry below a budget-
   exhausted transition is inert — crash candidates are only generated
   while budget remains — so treating them as independent stays sound.
   Same-process pairs never commute (executing p removes/changes p's
   pending transition), including exec(p) vs crash(p).

   A recovery wipes the volatile registers its process last wrote — a
   set static analysis cannot bound, and one that executing another
   process can change (a write transfers ownership of the register to
   the writer) — so recover(p) is conservatively dependent on every
   exec(q).  recover(p) vs crash(q) commutes (the crash touches no
   register and the pids' program states are disjoint), and recover(p)
   vs recover(q) commutes (last-writer ownership makes the wiped sets
   disjoint); like crash/crash under a budget of one, the budget
   interaction is covered by recover candidates existing only while
   recovery budget remains. *)
let independent_actions ~pid1 a1 ~pid2 a2 =
  pid1 <> pid2
  && (match (a1, a2) with
      | Exec o1, Exec o2 -> independent o1 o2
      | Exec _, Recover | Recover, Exec _ -> false
      | Crash, _ | _, Crash -> true
      | Recover, Recover -> true)
