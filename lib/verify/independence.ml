open Conrat_sim

type footprint = {
  lo : int;
  hi : int;
  writes : bool;
}

let footprint op =
  let l = Op.loc op in
  match Op.kind op with
  | Op.Read_op -> { lo = l; hi = l + 1; writes = false }
  | Op.Write_op | Op.Prob_write_op -> { lo = l; hi = l + 1; writes = true }
  | Op.Collect_op ->
    let len =
      match op with
      | Op.Any (Op.Collect (_, len)) -> len
      | _ -> 1
    in
    { lo = l; hi = l + len; writes = false }

let overlap a b = a.lo < b.hi && b.lo < a.hi

let independent o1 o2 =
  let f1 = footprint o1 and f2 = footprint o2 in
  (not (overlap f1 f2)) || ((not f1.writes) && not f2.writes)
