open Conrat_sim

type 'r target = {
  n : int;
  max_depth : int;
  cheap_collect : bool;
  faults : Fault.model;
  setup : n:int -> unit -> Memory.t * (pid:int -> 'r Program.t);
  check : n:int -> complete:bool -> 'r option array -> (unit, string) result;
}

let failing ?(count = ref 0) target ~n path =
  incr count;
  let r =
    Explore.run_path ~max_depth:target.max_depth
      ~cheap_collect:target.cheap_collect ~faults:target.faults ~n
      ~setup:(target.setup ~n) path
  in
  Result.is_error (target.check ~n ~complete:r.completed r.outputs)

(* Trailing zeros are no-ops: choices beyond the path default to 0. *)
let strip_trailing_zeros path =
  List.rev (List.to_seq (List.rev path) |> Seq.drop_while (( = ) 0) |> List.of_seq)

let take k l = List.filteri (fun i _ -> i < k) l

let path ?count target ~n path0 =
  let fails p = failing ?count target ~n p in
  if not (fails path0) then invalid_arg "Shrink.path: initial path does not fail";
  let p = ref (strip_trailing_zeros path0) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* 1. Shortest failing prefix, greedily from the end (remaining
       choices default to 0). *)
    let len = ref (List.length !p) in
    let continue_ = ref true in
    while !continue_ && !len > 0 do
      let candidate = strip_trailing_zeros (take (!len - 1) !p) in
      if fails candidate then begin
        p := candidate;
        len := List.length candidate;
        changed := true
      end
      else continue_ := false
    done;
    (* 2. ddmin on the surviving choices: zero out chunks of shrinking
       granularity (a zeroed choice is the default branch). *)
    let chunk = ref (max 1 (List.length !p / 2)) in
    while !chunk >= 1 do
      let len = List.length !p in
      let start = ref 0 in
      while !start < len do
        let lo = !start and hi = min len (!start + !chunk) in
        let zeroed =
          List.mapi (fun i c -> if i >= lo && i < hi then 0 else c) !p
        in
        if zeroed <> !p && fails (strip_trailing_zeros zeroed) then begin
          p := strip_trailing_zeros zeroed;
          changed := true
        end;
        start := !start + !chunk
      done;
      chunk := if !chunk = 1 then 0 else !chunk / 2
    done;
    (* 3. Lower individual choices toward 0 (smaller branch indices =
       earlier-pid schedules, landed coins). *)
    List.iteri
      (fun i c ->
        if c > 0 then begin
          let try_value v =
            let candidate = List.mapi (fun j x -> if j = i then v else x) !p in
            if fails (strip_trailing_zeros candidate) then begin
              p := strip_trailing_zeros candidate;
              changed := true;
              true
            end
            else false
          in
          if not (try_value 0) then ignore (try_value (c - 1))
        end)
      !p
  done;
  !p

let minimize ?(min_n = 1) ?(explore_budget = 20_000) ?count target ~path:path0 () =
  (* Fewer processes first: a violation reachable at a smaller n gives a
     qualitatively simpler counterexample than any schedule surgery. *)
  let smaller =
    let rec try_n n' =
      if n' >= target.n then None
      else begin
        let result =
          Por.explore ~max_depth:target.max_depth ~max_runs:explore_budget
            ~cheap_collect:target.cheap_collect ~faults:target.faults ~n:n'
            ~setup:(target.setup ~n:n') ~check:(target.check ~n:n')
            ()
        in
        match result with
        | Error (_, p, _) -> Some (n', p)
        | Ok _ -> try_n (n' + 1)
      end
    in
    try_n (max 1 min_n)
  in
  let n, p0 = match smaller with Some np -> np | None -> (target.n, path0) in
  (n, path ?count target ~n p0)
