(** The partial-order-reduced exhaustive explorer (sleep sets).

    Explores the same branch tree as {!Naive.explore} — every adversary
    schedule and both outcomes of every probabilistic write — but
    prunes interleavings that only permute {!Independence.independent}
    operations of an already-explored execution, using Godefroid-style
    {e sleep sets}: after a scheduling choice [t] at state [s] is fully
    explored, [t] enters [s]'s sleep set; descending via a transition
    filters the sleep set down to the entries that commute with it, and
    a sleeping process is never scheduled.  A path whose every enabled
    process is asleep is abandoned ([pruned]) — it can only revisit
    Mazurkiewicz traces the search has already covered.

    Sleep sets need no lookahead into future operations, which matters
    here: operations are revealed dynamically as each {!Conrat_sim.Program}
    unfolds, so nontrivial {e persistent} sets (which must account for
    operations a process has not yet performed) cannot be computed
    soundly.  Sleep sets only ever skip redundant interleavings.

    Like {!Conrat_sim.Explore.explore}, the search is {e stateful}: one
    {!Conrat_sim.Machine} advances through the tree in place, branch
    points snapshot it once, and trying a sibling or the other coin
    outcome restores the snapshot in O(|memory| + n) instead of
    re-executing the path prefix.  The traversal order, the pruning
    decisions and all statistics are identical to the historical
    re-execution implementation.

    Guarantees: every {e complete} execution of the unreduced tree is
    Mazurkiewicz-equivalent to a complete execution this search visits,
    and equivalent executions give every process the identical local
    history — so the set of complete-execution outcomes (and any
    outcome-based safety violation on them) is preserved exactly, while
    the number of executions is strictly smaller whenever any two
    independent operations were ever co-enabled.  For depth-{e truncated}
    paths the cut prefix is representative-dependent: a violation
    visible only in a truncated prefix of one particular interleaving
    may be checked under a different (equivalent) interleaving whose
    prefix at the cut differs.  Complete-execution coverage is
    unaffected; when exact truncated-prefix coverage matters, use
    {!Naive.explore} (the [conrat check --naive] engine) or raise
    [max_depth].

    With a {!Conrat_sim.Fault} budget, every scheduling state also
    offers crash-stop candidates (after the step candidates, matching
    {!Conrat_sim.Explore.run_path}'s path layout), so the reduced tree
    is closed under up to [faults.crashes] crashes placed anywhere.
    A crash touches no register and is therefore independent of every
    transition of another process — crash placements commute freely
    with concurrent steps, which is where most of the reduction over
    the naive crash-closed tree comes from.  Weak registers add a
    fresh/stale fork to each of their reads, handled exactly like a
    probabilistic-write coin. *)

type stats = {
  complete : int;    (** complete executions checked *)
  truncated : int;   (** paths cut off at [max_depth] and checked *)
  pruned : int;      (** paths abandoned sleep-blocked, without a check *)
  exhausted : bool;  (** the whole reduced tree fit within [max_runs] *)
  steps : int;       (** machine transitions applied in total *)
}

val explored : stats -> int
(** [complete + truncated] — the executions actually run to a checked
    leaf.  Compare against {!Naive.explore}'s same sum to measure the
    reduction. *)

val explore :
  ?engine:Conrat_sim.Machine.engine ->
  ?max_depth:int ->
  ?max_runs:int ->
  ?cheap_collect:bool ->
  ?faults:Conrat_sim.Fault.model ->
  ?stop:(unit -> bool) ->
  ?sink:Conrat_sim.Sink.t ->
  ?heartbeat:(runs:int -> pruned:int -> steps:int -> depth:int -> unit) ->
  ?resume:Checkpoint.counts ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.counts -> unit) ->
  n:int ->
  setup:(unit -> Conrat_sim.Memory.t * (pid:int -> 'r Conrat_sim.Program.t)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  unit ->
  (stats, string * int list * stats) result
(** Same contract as {!Naive.explore} with two differences: [max_runs]
    counts pruned paths too (each reaches a leaf), and a [check]
    failure additionally returns the failing branch path, in
    {!Conrat_sim.Explore.run_path}'s encoding, ready for
    {!Shrink.minimize} and {!Artifact} replay.  One more caveat born of
    the leaf rate: the outputs array passed to [check] is a single
    buffer reused across every leaf — copy it to retain it beyond the
    call.  [sink] observes every
    machine transition (including snapshot/restore backtracking);
    [heartbeat] fires once per leaf (pruned leaves included) with
    running totals — rate limiting is the callback's business.

    [faults] closes the tree under crash-stops and weak-register reads
    (default {!Conrat_sim.Fault.none}; registers must additionally be
    marked weak on the [setup]-returned memory for stale forks to
    appear).

    Checkpointing: when [on_checkpoint] is given it receives the DFS
    frontier — the path to the {e current, not yet counted} leaf plus
    the counts strictly before it — every [checkpoint_every] leaves
    (default [100_000]) and once more when the search stops on [stop]
    or [max_runs].  Passing that value back as [resume] (with the same
    config, engine and budgets) fast-forwards to the saved leaf without
    re-counting and continues; the completed search's statistics and
    outcome sequence are bit-identical to an uninterrupted run.  A
    [resume] value inconsistent with the config raises
    [Invalid_argument].

    [engine] selects the program engine behind the machine (default the
    compiled VM, {!Conrat_sim.Machine.engine}); the traversal order,
    pruning decisions, statistics, checkpoints and outcome sequence are
    identical under either engine, so a checkpoint saved under one can
    be resumed under the other. *)
