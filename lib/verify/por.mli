(** The partial-order-reduced exhaustive explorer (sleep sets).

    Explores the same branch tree as {!Naive.explore} — every adversary
    schedule and both outcomes of every probabilistic write — but
    prunes interleavings that only permute {!Independence.independent}
    operations of an already-explored execution, using Godefroid-style
    {e sleep sets}: after a scheduling choice [t] at state [s] is fully
    explored, [t] enters [s]'s sleep set; descending via a transition
    filters the sleep set down to the entries that commute with it, and
    a sleeping process is never scheduled.  A path whose every enabled
    process is asleep is abandoned ([pruned]) — it can only revisit
    Mazurkiewicz traces the search has already covered.

    Sleep sets need no lookahead into future operations, which matters
    here: operations are revealed dynamically as each {!Conrat_sim.Program}
    unfolds, so nontrivial {e persistent} sets (which must account for
    operations a process has not yet performed) cannot be computed
    soundly.  Sleep sets only ever skip redundant interleavings.

    Like {!Conrat_sim.Explore.explore}, the search is {e stateful}: one
    {!Conrat_sim.Machine} advances through the tree in place, branch
    points snapshot it once, and trying a sibling or the other coin
    outcome restores the snapshot in O(|memory| + n) instead of
    re-executing the path prefix.  The traversal order, the pruning
    decisions and all statistics are identical to the historical
    re-execution implementation.

    Guarantees: every {e complete} execution of the unreduced tree is
    Mazurkiewicz-equivalent to a complete execution this search visits,
    and equivalent executions give every process the identical local
    history — so the set of complete-execution outcomes (and any
    outcome-based safety violation on them) is preserved exactly, while
    the number of executions is strictly smaller whenever any two
    independent operations were ever co-enabled.  For depth-{e truncated}
    paths the cut prefix is representative-dependent: a violation
    visible only in a truncated prefix of one particular interleaving
    may be checked under a different (equivalent) interleaving whose
    prefix at the cut differs.  Complete-execution coverage is
    unaffected; when exact truncated-prefix coverage matters, use
    {!Naive.explore} (the [conrat check --naive] engine) or raise
    [max_depth].

    With a {!Conrat_sim.Fault} budget, every scheduling state also
    offers crash-stop candidates (after the step candidates, matching
    {!Conrat_sim.Explore.run_path}'s path layout), so the reduced tree
    is closed under up to [faults.crashes] crashes placed anywhere.
    A crash touches no register and is therefore independent of every
    transition of another process — crash placements commute freely
    with concurrent steps, which is where most of the reduction over
    the naive crash-closed tree comes from.  A recovery budget appends
    recover candidates for the currently crashed pids (and the
    stop-or-recover node when no process is live — see
    {!Conrat_sim.Explore.run_path}); a recovery wipes the volatile
    registers its pid last wrote, so it is conservatively dependent on
    every operation but still commutes with crashes and with other
    pids' recoveries ({!Independence.independent_actions}).  Weak
    registers add a fresh/stale fork to each of their reads, handled
    exactly like a probabilistic-write coin.  Sleep sets pack into one
    immediate int as 3-bit per-pid lanes, so both engines require
    [n <= 20]. *)

type stats = {
  complete : int;    (** complete executions checked *)
  truncated : int;   (** paths cut off at [max_depth] and checked *)
  pruned : int;      (** paths abandoned sleep-blocked or as duplicate
                         states, without a check *)
  dedup_hits : int;  (** of [pruned], how many were duplicate-state
                         hits (always 0 without [~dedup:true]) *)
  exhausted : bool;  (** the whole reduced tree fit within [max_runs] *)
  steps : int;       (** machine transitions applied in total *)
}

val explored : stats -> int
(** [complete + truncated] — the executions actually run to a checked
    leaf.  Compare against {!Naive.explore}'s same sum to measure the
    reduction. *)

val explore :
  ?engine:Conrat_sim.Machine.engine ->
  ?max_depth:int ->
  ?max_runs:int ->
  ?cheap_collect:bool ->
  ?faults:Conrat_sim.Fault.model ->
  ?stop:(unit -> bool) ->
  ?sink:Conrat_sim.Sink.t ->
  ?probe:Conrat_obs.Telemetry.probe ->
  ?heartbeat:(runs:int -> pruned:int -> steps:int -> depth:int -> unit) ->
  ?resume:Checkpoint.counts ->
  ?subtree_prefix:int ->
  ?cut:int * (int list -> unit) ->
  ?dedup:bool ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.counts -> unit) ->
  n:int ->
  setup:(unit -> Conrat_sim.Memory.t * (pid:int -> 'r Conrat_sim.Program.t)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  unit ->
  (stats, string * int list * stats) result
(** Same contract as {!Naive.explore} with two differences: [max_runs]
    counts pruned paths too (each reaches a leaf), and a [check]
    failure additionally returns the failing branch path, in
    {!Conrat_sim.Explore.run_path}'s encoding, ready for
    {!Shrink.minimize} and {!Artifact} replay.  One more caveat born of
    the leaf rate: the outputs array passed to [check] is a single
    buffer reused across every leaf — copy it to retain it beyond the
    call.  [sink] observes every
    machine transition (including snapshot/restore backtracking), and
    its [on_checkpoint] fires at each checkpoint save;
    [heartbeat] fires once per leaf (pruned leaves included) with
    running totals — rate limiting is the callback's business.

    [probe] feeds the search telemetry plane
    ({!section-"obs"}[Telemetry]): dedup hit/miss/intersection and
    table-peak counters, snapshot-pool allocation/refresh/high-water,
    checkpoint saves, and — on the way out, as deltas against the
    [resume] baseline so shard contributions sum to sequential totals —
    leaf and step counts.  The per-branch-point counters (snapshots,
    refreshes, dedup outcomes) accumulate in plain locals and flush to
    the probe's atomic cells every 4096 leaves and at exit, so live
    fleet reads lag by a bounded window while the probe-attached hot
    path stays within the telemetry-bench budget.  When the probe
    carries a {!section-"obs"}[Coverage.t], every counted leaf also
    lands in the depth-profile and stage-signature histograms (per-leaf
    cost; the counters alone are branch-only when disabled — see
    [bench/telemetry_overhead.ml]).

    [faults] closes the tree under crash-stops and weak-register reads
    (default {!Conrat_sim.Fault.none}; registers must additionally be
    marked weak on the [setup]-returned memory for stale forks to
    appear).

    Checkpointing: when [on_checkpoint] is given it receives the DFS
    frontier — the path to the {e current, not yet counted} leaf plus
    the counts strictly before it — every [checkpoint_every] leaves
    (default [100_000]) and once more when the search stops on [stop]
    or [max_runs].  Passing that value back as [resume] (with the same
    config, engine and budgets) fast-forwards to the saved leaf without
    re-counting and continues; the completed search's statistics and
    outcome sequence are bit-identical to an uninterrupted run.  A
    [resume] value inconsistent with the config raises
    [Invalid_argument].

    [engine] selects the program engine behind the machine (default the
    compiled VM, {!Conrat_sim.Machine.engine}); the traversal order,
    pruning decisions, statistics, checkpoints and outcome sequence are
    identical under either engine, so a checkpoint saved under one can
    be resumed under the other.

    {2 Sharding}

    [~subtree_prefix:l] with [~resume] pins the first [l] entries of the
    resume path: the search replays them as the only candidate at each
    of the first [l] branch points (validating against the config,
    rebuilding sleep sets along the corridor) and explores {e no
    siblings} there — only the subtree below the pinned prefix.  Step
    and count accounting is rebased so that the reported [stats] cover
    exactly that subtree, the pinned transitions of the cut node's own
    choice included once.  A resume path {e longer} than
    [subtree_prefix] additionally fast-forwards within the subtree as a
    normal checkpoint resume, so an interrupted shard continues
    bit-identically.

    [~cut:(lvl, emit)] turns the search into a {e shard generator}: at
    the first branch point of each path whose frame nesting is at least
    [lvl], the search calls [emit] once per sleep-surviving candidate
    with the path selecting it (in exploration order) and backs out
    without descending.  Leaves reached before any such branch point —
    the generator {e residue} — are explored and counted normally.  The
    emitted paths, each run under [~resume:{path; zeros}]
    [~subtree_prefix:(List.length path)], partition the remaining tree:
    residue stats plus the per-shard stats sum to exactly the
    unsharded totals, and concatenating per-shard outcome sequences in
    emission order replays the sequential outcome sequence.  [cut] is
    exclusive with [resume], [dedup] and checkpointing.

    {2 Duplicate detection}

    [~dedup:true] (VM engine only — raises [Invalid_argument] under the
    tree engine, see {!Conrat_sim.Machine.supports_state_hash}) prunes a
    branch point whose machine state was already visited at the same
    depth and crash budget with a sleep set no larger than the current
    one; such a node can only re-derive already-covered executions.
    Hits are counted in [pruned] and [dedup_hits].  Keys are two
    independent 63-bit hashes; a collision would need both to collide
    simultaneously (probability ~2⁻¹²⁶ per pair).  Complete-execution
    {e outcome sets} are preserved ([test/test_parallel.ml] verifies
    this differentially); per-leaf sequences and counts are generally
    smaller than without dedup.  Exclusive with checkpointing and with
    mid-subtree resume (a fresh shard — [List.length resume.path =
    subtree_prefix] with zero counts — is fine; the visited table is
    per-call and is not serialized). *)

val explore_source :
  ?engine:Conrat_sim.Machine.engine ->
  ?max_depth:int ->
  ?max_runs:int ->
  ?cheap_collect:bool ->
  ?faults:Conrat_sim.Fault.model ->
  ?stop:(unit -> bool) ->
  ?sink:Conrat_sim.Sink.t ->
  ?probe:Conrat_obs.Telemetry.probe ->
  ?heartbeat:(runs:int -> pruned:int -> steps:int -> depth:int -> unit) ->
  n:int ->
  setup:(unit -> Conrat_sim.Memory.t * (pid:int -> 'r Conrat_sim.Program.t)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  unit ->
  (stats, string * int list * stats) result
(** Dynamic partial-order reduction in the source-set style, layered on
    the same sleep sets as {!explore}: each branch point starts with a
    minimal backtracking set (its first awake candidate plus every
    crash candidate) and grows it only when an executed transition is
    found to race with a later one — candidates never requested are
    never explored.  Leaves cut before completion (depth-truncated or
    sleep-blocked) scan every still-pending operation for races so
    truncation cannot hide a dependency.

    Preserves the complete-execution outcome set exactly, like
    {!explore}; {!explored} counts and per-leaf sequences are generally
    {e smaller} and are not comparable leaf-for-leaf.  A [check]
    failure still returns a replayable {!Conrat_sim.Explore.run_path}
    path.  [probe] counts detected races ([dpor_races]) and
    backtrack-set candidates added ([dpor_backtracks]) besides the
    leaf/step/snapshot counters.  No checkpointing, sharding or dedup:
    this engine is the reduction oracle the differential suite
    cross-checks {!explore} and {!Naive.explore} against
    ([conrat check --dpor]). *)
