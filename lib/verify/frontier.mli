(** Shard frontiers: carving one exhaustive search into independently
    explorable subtrees, and the pool the workers steal them from.

    A {e shard} is a branch path prefix in
    {!Conrat_sim.Explore.run_path}'s encoding — the same encoding as
    {!Checkpoint} frontiers, and deliberately so: a shard handed to
    {!Por.explore} as [~resume:{path; zero counts}]
    [~subtree_prefix:(List.length path)] pins the prefix and explores
    exactly the subtree below it, and an interrupted shard's checkpoint
    is itself a deeper path in the same encoding.  The generator
    ({!Por.explore}'s [~cut]) emits shards in sequential DFS order
    while exploring the {e residue} — leaves shallower than the cut —
    itself, so residue statistics plus per-shard statistics sum to
    exactly the unsharded search's (verified in
    [test/test_parallel.ml]). *)

type t = int list array
(** Shard paths, in emission (sequential DFS) order. *)

val target : jobs:int -> int
(** How many shards to aim for so that [jobs] workers stay busy despite
    skewed subtree sizes: [max 64 (16 * jobs)].  Over-decomposition is
    the load balancer — work stealing does the rest. *)

val generate :
  ?probe:Conrat_obs.Telemetry.probe ->
  target:int ->
  run:(cut:int * (int list -> unit) -> ('s, 'e) result) ->
  unit ->
  ('s * t, 'e) result
(** Drive one cut-mode search ([run ~cut:(lvl, emit)] must be the
    caller's explorer with every other parameter already applied) at
    adaptively chosen cut levels: start shallow and deepen while the
    shard count still grows short of [target].  Returns the {e last}
    generation pass's residue statistics with its shards — each pass is
    a complete partition on its own, so passes are not mixed.  An empty
    shard array means the generator pass explored the whole tree (the
    search was shallower than the shallowest cut); the residue
    statistics are then the full answer.  A residue leaf failing its
    check aborts generation with the underlying error.  [probe] counts
    deepening passes ([frontier_passes]) and gauges the kept frontier
    size ([shards_generated]); it is {e not} threaded into [run] — the
    caller decides which pass's exploration counters survive (see
    {!Parallel}). *)

type pool
(** A work-stealing pool over a frontier: one atomic cursor, stolen in
    emission order.  Stealing is the only synchronisation the workers
    need — shards are disjoint by construction. *)

val pool : t -> pool

val steal : pool -> (int * int list) option
(** Next unstolen shard as [(index, path)], or [None] when drained.
    Safe to call from any domain; each shard is handed out exactly
    once. *)

val remaining : pool -> int
(** Shards not yet stolen (racy snapshot, for progress display). *)
