open Conrat_sim

type stats = {
  complete : int;
  truncated : int;
  pruned : int;
  exhausted : bool;
  steps : int;
}

let explored stats = stats.complete + stats.truncated

(* A sleep-set element: a scheduling candidate — execute a process's
   pending operation (fixed until the process is scheduled) or, when
   the low bit is set, crash-stop it — numbered [pid * 2 + crash].
   Within a state a pid's pending operation is fixed, so that pair
   determines the transition; the operation itself is fetched from the
   machine's pending table only when the independence filter actually
   needs it.  A whole sleep set is then one int bitmask over those
   element numbers (hence [n <= 31] on a 64-bit host): membership is a
   bit test, insertion is [lor], and the independence filter builds the
   child's set with shifts and masks — the sets are immediate values,
   so the per-node and per-transition set operations of a
   multi-million-leaf DFS allocate nothing at all.  Candidates are
   likewise enumerated without materializing anything: candidate [i] of
   a state with [k] enabled pids executes pid [en.(i)] when [i < k] and
   crash-stops pid [en.(i - k)] otherwise (crash candidates exist only
   while crash budget remains). *)
let key ~pid ~crash = (pid lsl 1) lor (if crash then 1 else 0)

(* Branch-point marks, kept on an explicit stack solely so the current
   path can be reported in Explore.run_path's encoding — when a check
   aborts the search, and as the checkpoint frontier.  All other
   per-node state (sleep sets, snapshots, depth, crash budget) lives in
   the DFS recursion.  Scheduling points with a single candidate are
   not marked, matching the path encoding.  A frame is one raw int —
   the current candidate index at a scheduling point, the current coin
   outcome (0 = landed/fresh, 1 = missed/stale) at a fork; the path
   encoding reads the value the same way for both, so the stack needs
   no tags and marking a branch point allocates nothing. *)

let in_sleep sleep ~pid ~crash = sleep land (1 lsl key ~pid ~crash) <> 0

(* First candidate index at or after [i] not in the sleep set, or -1.
   Module-level (machine state threaded through) so the per-node scan
   allocates no closures. *)
let rec first_awake sleep en k ncands i =
  if i >= ncands then -1
  else
    let crash = i >= k in
    let pid = if crash then en.(i - k) else en.(i) in
    if in_sleep sleep ~pid ~crash then first_awake sleep en k ncands (i + 1)
    else i

let any_of pending pid =
  match pending.(pid) with
  | Some o -> o
  | None -> assert false (* sleeping/candidate pids are never finished *)

(* [Independence.independent_actions] specialized to packed keys: two
   transitions of distinct processes commute unless both execute and
   their operations conflict (a crash touches no register).  [eop] is
   the executing candidate's pending operation; a sleeper's is read
   from the pending table at test time — it cannot have changed while
   the entry slept, since executing or crashing its process would have
   filtered the entry out as dependent (same pid) at that transition. *)
(* Drop from [z] every sleeping {e execute} entry whose operation
   conflicts with the executing transition's [eop] ([Independence]'s
   crash-aware relation: crash entries commute with everything and stay
   put; the caller already removed both entries of the executing pid).
   [z] only holds execute bits here, so scanning pids 0..n-1 visits
   each candidate once. *)
let rec drop_dependent pending eop z q n =
  if q >= n then z
  else
    let z =
      if
        z land (1 lsl (q lsl 1)) <> 0
        && not (Independence.independent (any_of pending q) eop)
      then z land lnot (1 lsl (q lsl 1))
      else z
    in
    drop_dependent pending eop z (q + 1) n

(* The child sleep set of descending via [pid]/[crash] from a state
   asleep at [sleep]: remove both of [pid]'s entries (same-pid
   transitions never commute), and — when the transition executes an
   operation — remove sleeping execute entries dependent on it.  A
   crash touches no register, so crashing keeps everything else. *)
let filter_indep pending sleep ~pid ~crash ~n =
  let z = sleep land lnot (3 lsl (pid lsl 1)) in
  if crash || z land 0x1555555555555555 = 0 then z
  else drop_dependent pending (any_of pending pid) z 0 n

let corrupt () =
  invalid_arg "Por.explore: checkpoint path inconsistent with this config"

let explore ?engine ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(faults = Fault.none) ?(stop = fun () -> false) ?sink ?heartbeat
    ?resume ?(checkpoint_every = 100_000) ?on_checkpoint ~n ~setup ~check () =
  (* Sleep sets are int bitmasks over [2n] candidate keys.  Exhaustive
     exploration is hopeless long before this bound binds. *)
  if n > 31 then invalid_arg "Por.explore: n must be at most 31";
  let memory, body = setup () in
  let machine = Machine.create ?engine ~cheap_collect ?sink ~n ~memory body in
  let frames = ref (Array.make 64 0) in
  let nframes = ref 0 in
  let push v =
    if !nframes = Array.length !frames then begin
      let bigger = Array.make (2 * !nframes) 0 in
      Array.blit !frames 0 bigger 0 !nframes;
      frames := bigger
    end;
    !frames.(!nframes) <- v;
    incr nframes
  in
  let pop () = decr nframes in
  (* Snapshot pool, one slot per frame-stack level.  When a branch
     point (or a fork below a sole-candidate chain) needs a snapshot at
     level [!nframes], any snapshot previously pooled at that level
     belonged to a node whose sibling loop has already finished — the
     stack was back down to this level before control could get here —
     so it is dead and can be refreshed in place.  This turns the
     ~2 snapshots-per-leaf allocation stream of a big search into
     [max_depth] allocations total; the LIFO restore discipline
     required by {!Memory.restore_backup} is unchanged. *)
  let snaps = ref (Array.make 64 None) in
  let take_snapshot () =
    let lvl = !nframes in
    if lvl >= Array.length !snaps then begin
      let bigger = Array.make (2 * Array.length !snaps) None in
      Array.blit !snaps 0 bigger 0 (Array.length !snaps);
      snaps := bigger
    end;
    match !snaps.(lvl) with
    | Some s -> Machine.snapshot_into machine s; s
    | None ->
      let s = Machine.snapshot machine in
      !snaps.(lvl) <- Some s;
      s
  in
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let pruned_count = ref 0 in
  let runs = ref 0 in
  (* Resume support: [rail] is the checkpointed path still to be
     fast-forwarded along (consumed at marked branch points, exploring
     nothing off it); [pending_offset] re-bases the step counter at the
     first leaf so resumed statistics continue the interrupted run's
     totals instead of this process's (which only paid for replaying
     one path prefix). *)
  let rail = ref [] in
  let steps_offset = ref 0 in
  let pending_offset = ref None in
  (match resume with
   | None -> ()
   | Some (c : Checkpoint.counts) ->
     complete_count := c.complete;
     truncated_count := c.truncated;
     pruned_count := c.pruned;
     runs := c.complete + c.truncated + c.pruned;
     rail := c.path;
     pending_offset := Some c.steps);
  let take_rail () =
    match !rail with [] -> None | c :: tl -> rail := tl; Some c
  in
  let total_steps () = !steps_offset + Machine.total_steps machine in
  let last_saved = ref !runs in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      pruned = !pruned_count;
      exhausted;
      steps = total_steps () }
  in
  let exception Abort of string in
  let exception Out_of_budget in
  (* The current position in Explore.run_path's encoding; frames are
     kept on the stack when [Abort] unwinds, root first. *)
  let current_path () = List.init !nframes (fun i -> !frames.(i)) in
  (* One leaf-outputs buffer for the whole search: checks see the live
     contents and must copy what they retain (see the mli). *)
  let out_buf = Array.make n None in
  let leaf kind =
    (match !pending_offset with
     | Some prior -> steps_offset := prior - Machine.total_steps machine;
       pending_offset := None
     | None -> ());
    let stopping = !runs >= max_runs || stop () in
    (match on_checkpoint with
     | Some save when stopping || !runs - !last_saved >= checkpoint_every ->
       (* Saved before counting this leaf: the resumed run re-reaches
          and counts it, so an interrupted + resumed exploration visits
          exactly the uninterrupted leaf sequence. *)
       save
         { Checkpoint.path = current_path ();
           complete = !complete_count;
           truncated = !truncated_count;
           pruned = !pruned_count;
           steps = total_steps () };
       last_saved := !runs
     | Some _ | None -> ());
    if stopping then raise Out_of_budget;
    incr runs;
    (match heartbeat with
     | None -> ()
     | Some hb ->
       hb ~runs:!runs ~pruned:!pruned_count ~steps:(total_steps ())
         ~depth:(Machine.steps machine));
    match kind with
    | `Pruned -> incr pruned_count
    | (`Complete | `Truncated) as kind ->
      let complete = kind = `Complete in
      if complete then incr complete_count else incr truncated_count;
      Machine.outputs_into machine out_buf;
      (match check ~complete out_buf with
       | Ok () -> ()
       | Error reason -> raise (Abort reason))
  in
  let pending = Machine.unsafe_pending machine in
  (* [descend z crashes_left depth]: the machine sits at a fresh state
     whose inherited sleep set is [z].  Scheduling candidates are
     executing each enabled process (ascending pid), then — while crash
     budget remains — crash-stopping each (same order); crashes after
     steps keeps the all-zeros path the failure-free canonical
     execution and matches Explore.run_path's arity layout choice for
     choice.  Pick the first candidate not asleep; if they all are,
     this path only revisits already-explored traces — prune.  After a
     scheduling choice is fully explored it enters the state's sleep
     set, so its subtree is never re-entered from a sibling; trying the
     sibling restores the state snapshot instead of re-executing from
     the root. *)
  let rec descend z crashes_left depth =
    let en = Machine.enabled machine in
    let k = Array.length en in
    let ncands = if crashes_left > 0 then 2 * k else k in
    if ncands = 0 then leaf `Complete
    else if depth >= max_depth then leaf `Truncated
    else begin
      let i = first_awake z en k ncands 0 in
      if i < 0 then leaf `Pruned
      else if ncands = 1 then
        (* Sole candidate: no alternative can ever be tried here, so
           no snapshot and no mark. *)
        transition ~pid:en.(0) ~crash:false ~sleep:z ~snap:None ~crashes_left
          ~depth
      else begin
        let snap = take_snapshot () in
        let snapo = Some snap in
        let fi = !nframes in
        push i;
        let sleep0 =
          match take_rail () with
          | None -> z
          | Some c ->
            (* Fast-forward: advance the first_awake progression to the
               checkpointed choice, growing the sleep set exactly as
               the interrupted run did but exploring nothing. *)
            if c < 0 || c >= ncands then corrupt ();
            let sleep = ref z in
            while !frames.(fi) <> c do
              let i = !frames.(fi) in
              let crash = i >= k in
              let pid = if crash then en.(i - k) else en.(i) in
              sleep := !sleep lor (1 lsl key ~pid ~crash);
              let j = first_awake !sleep en k ncands 0 in
              if j >= 0 then !frames.(fi) <- j else corrupt ()
            done;
            !sleep
        in
        siblings fi en k ncands snap snapo crashes_left depth sleep0;
        pop ()
      end
    end
  (* The sibling loop of one scheduling node, as a recursion so the
     growing sleep set stays an immediate parameter. *)
  and siblings fi en k ncands snap snapo crashes_left depth sleep =
    let i = !frames.(fi) in
    let crash = i >= k in
    let pid = if crash then en.(i - k) else en.(i) in
    transition ~pid ~crash ~sleep ~snap:snapo ~crashes_left ~depth;
    let sleep = sleep lor (1 lsl key ~pid ~crash) in
    let j = first_awake sleep en k ncands 0 in
    if j >= 0 then begin
      !frames.(fi) <- j;
      Machine.restore machine snap;
      siblings fi en k ncands snap snapo crashes_left depth sleep
    end
  (* Descend through one chosen transition: candidates that commute with
     it (crash-aware relation) stay asleep below.  A probabilistic write
     with 0 < p < 1 forks on the coin and a weak-register read forks on
     freshness; either fork's pre-state is the scheduling state itself,
     so the node snapshot is reused when there is one. *)
  and transition ~pid ~crash ~sleep ~snap ~crashes_left ~depth =
    let z' = if sleep = 0 then 0 else filter_indep pending sleep ~pid ~crash ~n in
    if crash then begin
      Machine.crash machine ~pid;
      descend z' (crashes_left - 1) (depth + 1)
    end
    else
      (* [coin_class] reads the machine's pending descriptor for the
         pid — pending operations are fixed until the process is
         scheduled.  Under the VM the class is cached per pc, so this
         allocates nothing. *)
      match Machine.coin_class machine pid with
      | 0 ->
        Machine.step_forced machine ~pid ~landed:false;
        descend z' crashes_left (depth + 1)
      | 1 ->
        Machine.step_forced machine ~pid ~landed:true;
        descend z' crashes_left (depth + 1)
      | 2 -> fork ~pid ~z' ~snap ~crashes_left ~depth ~landed0:true
      | _ -> fork ~pid ~z' ~snap ~crashes_left ~depth ~landed0:false
  (* Two-way fork on the coin (choice 0 = [landed0]) or on freshness
     (choice 0 = fresh): straight-line, since this is the inner loop. *)
  and fork ~pid ~z' ~snap ~crashes_left ~depth ~landed0 =
    let snap = match snap with Some s -> s | None -> take_snapshot () in
    let fi = !nframes in
    push 0;
    let start = match take_rail () with None -> 0 | Some c -> c in
    if start < 0 || start > 1 then corrupt ();
    if start = 0 then begin
      Machine.step_forced machine ~pid ~landed:landed0;
      descend z' crashes_left (depth + 1);
      Machine.restore machine snap
    end;
    !frames.(fi) <- 1;
    Machine.step_forced machine ~pid ~landed:(not landed0);
    descend z' crashes_left (depth + 1);
    pop ()
  in
  match descend 0 faults.Fault.crashes 0 with
  | () -> Ok (stats true)
  | exception Out_of_budget -> Ok (stats false)
  | exception Abort reason -> Error (reason, current_path (), stats false)
