open Conrat_sim

type stats = {
  complete : int;
  truncated : int;
  pruned : int;
  exhausted : bool;
  steps : int;
}

let explored stats = stats.complete + stats.truncated

(* A sleep-set element: an enabled process together with its pending
   operation (which is fixed until the process is scheduled). *)
type entry = {
  pid : int;
  op : Op.any;
}

(* Branch-point marks, kept on an explicit stack solely so the failing
   path can be reported in Explore.run_path's encoding when a check
   aborts the search.  All other per-node state (sleep sets, snapshots,
   depth) lives in the DFS recursion.  Scheduling points with a single
   enabled process are not marked, matching the path encoding. *)
type sched_mark = { mutable chosen : int }
type coin_mark = { mutable outcome : int (* 0 = landed, 1 = missed *) }

type frame =
  | Sched of sched_mark
  | Coin of coin_mark

let in_sleep sleep pid = List.exists (fun e -> e.pid = pid) sleep

let explore ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(stop = fun () -> false) ?sink ?heartbeat ~n ~setup ~check () =
  let memory, body = setup () in
  let machine = Machine.create ~cheap_collect ?sink ~n ~memory body in
  let frames = ref (Array.make 64 (Coin { outcome = 0 })) in
  let nframes = ref 0 in
  let push f =
    if !nframes = Array.length !frames then begin
      let bigger = Array.make (2 * !nframes) f in
      Array.blit !frames 0 bigger 0 !nframes;
      frames := bigger
    end;
    !frames.(!nframes) <- f;
    incr nframes
  in
  let pop () = decr nframes in
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let pruned_count = ref 0 in
  let runs = ref 0 in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      pruned = !pruned_count;
      exhausted;
      steps = Machine.total_steps machine }
  in
  let exception Abort of string in
  let exception Out_of_budget in
  let leaf kind =
    if !runs >= max_runs || stop () then raise Out_of_budget;
    incr runs;
    (match heartbeat with
     | None -> ()
     | Some hb ->
       hb ~runs:!runs ~pruned:!pruned_count
         ~steps:(Machine.total_steps machine) ~depth:(Machine.steps machine));
    match kind with
    | `Pruned -> incr pruned_count
    | (`Complete | `Truncated) as kind ->
      let complete = kind = `Complete in
      if complete then incr complete_count else incr truncated_count;
      (match check ~complete (Machine.outputs machine) with
       | Ok () -> ()
       | Error reason -> raise (Abort reason))
  in
  let enabled_entries () =
    Array.map
      (fun pid -> { pid; op = Option.get (Machine.pending_op machine pid) })
      (Machine.enabled machine)
  in
  let rec first_awake entries sleep i =
    if i >= Array.length entries then None
    else if in_sleep sleep entries.(i).pid then first_awake entries sleep (i + 1)
    else Some i
  in
  (* [descend z depth]: the machine sits at a fresh state whose
     inherited sleep set is [z].  Pick the first enabled process not
     asleep; if they all are, this path only revisits already-explored
     traces — prune.  After a scheduling choice is fully explored it
     enters the state's sleep set, so its subtree is never re-entered
     from a sibling; trying the sibling restores the state snapshot
     instead of re-executing from the root. *)
  let rec descend z depth =
    let entries = enabled_entries () in
    if Array.length entries = 0 then leaf `Complete
    else if depth >= max_depth then leaf `Truncated
    else begin
      match first_awake entries z 0 with
      | None -> leaf `Pruned
      | Some i ->
        if Array.length entries = 1 then
          (* Sole enabled process: no alternative can ever be tried
             here, so no snapshot and no mark. *)
          transition ~entry:entries.(0) ~sleep:z ~snap:None ~depth
        else begin
          let snap = Machine.snapshot machine in
          let mark = { chosen = i } in
          push (Sched mark);
          let sleep = ref z in
          let continue = ref true in
          while !continue do
            let e = entries.(mark.chosen) in
            transition ~entry:e ~sleep:!sleep ~snap:(Some snap) ~depth;
            sleep := e :: !sleep;
            match first_awake entries !sleep 0 with
            | Some j ->
              mark.chosen <- j;
              Machine.restore machine snap
            | None -> continue := false
          done;
          pop ()
        end
    end
  (* Descend through one chosen transition: processes whose pending op
     commutes with it stay asleep below.  A probabilistic write with
     0 < p < 1 forks on the coin; its pre-state is the scheduling
     state itself, so the node snapshot is reused when there is one. *)
  and transition ~entry ~sleep ~snap ~depth =
    let z' = List.filter (fun x -> Independence.independent x.op entry.op) sleep in
    match Explore.coin_of_op entry.op with
    | `Det landed ->
      Machine.step_forced machine ~pid:entry.pid ~landed;
      descend z' (depth + 1)
    | `Branch ->
      let snap = match snap with Some s -> s | None -> Machine.snapshot machine in
      let mark = { outcome = 0 } in
      push (Coin mark);
      Machine.step_forced machine ~pid:entry.pid ~landed:true;
      descend z' (depth + 1);
      mark.outcome <- 1;
      Machine.restore machine snap;
      Machine.step_forced machine ~pid:entry.pid ~landed:false;
      descend z' (depth + 1);
      pop ()
  in
  (* The aborting path in Explore.run_path's encoding; frames are kept
     on the stack when [Abort] unwinds, root first. *)
  let current_path () =
    List.init !nframes (fun i ->
      match !frames.(i) with
      | Sched s -> s.chosen
      | Coin c -> c.outcome)
  in
  match descend [] 0 with
  | () -> Ok (stats true)
  | exception Out_of_budget -> Ok (stats false)
  | exception Abort reason -> Error (reason, current_path (), stats false)
