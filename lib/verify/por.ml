open Conrat_sim
module Telemetry = Conrat_obs.Telemetry
module Coverage = Conrat_obs.Coverage

type stats = {
  complete : int;
  truncated : int;
  pruned : int;
  dedup_hits : int;
  exhausted : bool;
  steps : int;
}

let explored stats = stats.complete + stats.truncated

(* A sleep-set element: a scheduling candidate — execute a process's
   pending operation (fixed until the process is scheduled), crash-stop
   it, or recover it from a crash — numbered in 3-bit lanes
   [pid * 3 + kind] (kind 0 = execute, 1 = crash, 2 = recover), plus
   one reserved bit for the stop pseudo-candidate of stop-or-recover
   nodes.  Within a state a pid's pending operation is fixed, so the
   (pid, kind) pair determines the transition; the operation itself is
   fetched from the machine's pending table only when the independence
   filter actually needs it.  A whole sleep set is then one int bitmask
   over those element numbers (hence [n <= 20] on a 64-bit host:
   3·20 lanes + the stop bit fit 61 bits): membership is a bit test,
   insertion is [lor], and the independence filter builds the child's
   set with shifts and masks — the sets are immediate values, so the
   per-node and per-transition set operations of a multi-million-leaf
   DFS allocate nothing at all.  Candidates are likewise enumerated
   without materializing anything, in Explore.run_path's band order:
   candidate [i] of a state with [k > 0] enabled pids executes pid
   [en.(i)] when [i < k], crash-stops [en.(i - k)] when [i < base]
   ([base = 2k] while crash budget remains, else [k]), and recovers
   [rec_pids.(i - base)] otherwise (recover candidates exist only while
   recovery budget remains, over the currently crashed pids ascending).
   A state with [k = 0] but recoverable crashed pids is a
   stop-or-recover node: candidate 0 is the stop pseudo-candidate
   (a complete leaf, no transition), candidate [1 + j] recovers
   [rec_pids.(j)]. *)
let kind_exec = 0
let kind_crash = 1
let kind_recover = 2
let kind_stop = 3
let key ~pid ~kind = pid * 3 + kind
let stop_bit = 60

(* The execute-candidate bits (3p) and recover-candidate bits (3p + 2)
   of a sleep mask, for the kind-level filters below. *)
let exec_bits = 0x1249249249249249
let recover_bits = 0x1249249249249249 lsl 2

let cand_kind k base c =
  if k = 0 then (if c = 0 then kind_stop else kind_recover)
  else if c < k then kind_exec
  else if c < base then kind_crash
  else kind_recover

let cand_pid en k base rec_pids c =
  if k = 0 then (if c = 0 then 0 else rec_pids.(c - 1))
  else if c < k then en.(c)
  else if c < base then en.(c - k)
  else rec_pids.(c - base)

let cand_bit en k base rec_pids c =
  if cand_kind k base c = kind_stop then stop_bit
  else key ~pid:(cand_pid en k base rec_pids c) ~kind:(cand_kind k base c)

(* Branch-point marks, kept on an explicit stack solely so the current
   path can be reported in Explore.run_path's encoding — when a check
   aborts the search, and as the checkpoint frontier.  All other
   per-node state (sleep sets, snapshots, depth, fault budgets) lives
   in the DFS recursion.  Scheduling points with a single candidate are
   not marked, matching the path encoding.  A frame is one raw int —
   the current candidate index at a scheduling point, the current coin
   outcome (0 = landed/fresh, 1 = missed/stale) at a fork; the path
   encoding reads the value the same way for both, so the stack needs
   no tags and marking a branch point allocates nothing. *)

let in_sleep sleep bit = sleep land (1 lsl bit) <> 0

(* First candidate index at or after [i] not in the sleep set, or -1.
   Module-level (machine state threaded through) so the per-node scan
   allocates no closures. *)
let rec first_awake sleep en k base rec_pids ncands i =
  if i >= ncands then -1
  else if in_sleep sleep (cand_bit en k base rec_pids i) then
    first_awake sleep en k base rec_pids ncands (i + 1)
  else i

let any_of pending pid =
  match pending.(pid) with
  | Some o -> o
  | None -> assert false (* sleeping/candidate pids are never finished *)

(* [Independence.independent_actions] specialized to packed keys: two
   transitions of distinct processes commute unless both execute and
   their operations conflict (a crash touches no register).  [eop] is
   the executing candidate's pending operation; a sleeper's is read
   from the pending table at test time — it cannot have changed while
   the entry slept, since executing or crashing its process would have
   filtered the entry out as dependent (same pid) at that transition. *)
(* Drop from [z] every sleeping {e execute} entry whose operation
   conflicts with the executing transition's [eop] ([Independence]'s
   fault-aware relation: crash entries commute with everything and stay
   put; the caller already removed every entry of the executing pid).
   The exec bits scanned here belong to live pids, so [any_of] is safe.
   Scanning pids 0..n-1 visits each candidate once. *)
let rec drop_dependent pending eop z q n =
  if q >= n then z
  else
    let z =
      if
        z land (1 lsl (q * 3)) <> 0
        && not (Independence.independent (any_of pending q) eop)
      then z land lnot (1 lsl (q * 3))
      else z
    in
    drop_dependent pending eop z (q + 1) n

(* The child sleep set of descending via [pid]/[kind] from a state
   asleep at [sleep]: remove all of [pid]'s entries (same-pid
   transitions never commute) and the stop pseudo-candidate (stopping
   commutes with nothing — any transition reaches a different final
   state).  A crash touches no register, so crashing keeps everything
   else.  A recovery conservatively conflicts with every operation (it
   wipes the volatile registers its pid last wrote, so reads of those
   registers observe different values across the swap): recovering
   wakes every sleeping execute entry, and executing wakes every
   sleeping recover entry; recover/recover and recover/crash pairs of
   distinct pids commute (disjoint ownership, disjoint program
   states — see {!Independence.independent_actions}). *)
let filter_indep pending sleep ~pid ~kind ~n =
  let z = sleep land lnot ((7 lsl (pid * 3)) lor (1 lsl stop_bit)) in
  if kind = kind_crash then z
  else if kind = kind_recover then z land lnot exec_bits
  else begin
    let z = z land lnot recover_bits in
    if z land exec_bits = 0 then z
    else drop_dependent pending (any_of pending pid) z 0 n
  end

let corrupt () =
  invalid_arg "Por.explore: checkpoint path inconsistent with this config"

let explore ?engine ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(faults = Fault.none) ?(stop = fun () -> false) ?sink ?probe ?heartbeat
    ?resume ?(subtree_prefix = 0) ?cut ?(dedup = false)
    ?(checkpoint_every = 100_000) ?on_checkpoint ~n ~setup ~check () =
  (* Sleep sets are int bitmasks over [3n] candidate keys plus the stop
     bit.  Exhaustive exploration is hopeless long before this binds. *)
  if n > 20 then invalid_arg "Por.explore: n must be at most 20";
  if subtree_prefix < 0 then
    invalid_arg "Por.explore: subtree_prefix must be nonnegative";
  (match resume with
   | None ->
     if subtree_prefix > 0 then
       invalid_arg "Por.explore: subtree_prefix needs a resume path to pin"
   | Some (c : Checkpoint.counts) ->
     if subtree_prefix > List.length c.path then
       invalid_arg "Por.explore: subtree_prefix longer than the resume path");
  if cut <> None && (Option.is_some resume || Option.is_some on_checkpoint || dedup)
  then invalid_arg "Por.explore: cut excludes resume, checkpointing and dedup";
  if dedup && Option.is_some on_checkpoint then
    invalid_arg "Por.explore: dedup cannot checkpoint (the visited table is not saved)";
  (match resume with
   | Some (c : Checkpoint.counts) when dedup && List.length c.path > subtree_prefix ->
     (* A resumed run starts with an empty visited table; anywhere but
        at a subtree root that would prune differently than the
        interrupted run, losing bit-identical resume. *)
     invalid_arg "Por.explore: dedup cannot resume mid-subtree"
   | _ -> ());
  let memory, body = setup () in
  let machine = Machine.create ?engine ~cheap_collect ?sink ~n ~memory body in
  if dedup && not (Machine.supports_state_hash machine) then
    invalid_arg "Por.explore: dedup needs the VM engine (state hashing)";
  let frames = ref (Array.make 64 0) in
  let nframes = ref 0 in
  let push v =
    if !nframes = Array.length !frames then begin
      let bigger = Array.make (2 * !nframes) 0 in
      Array.blit !frames 0 bigger 0 !nframes;
      frames := bigger
    end;
    !frames.(!nframes) <- v;
    incr nframes
  in
  let pop () = decr nframes in
  (* Snapshot pool, one slot per frame-stack level.  When a branch
     point (or a fork below a sole-candidate chain) needs a snapshot at
     level [!nframes], any snapshot previously pooled at that level
     belonged to a node whose sibling loop has already finished — the
     stack was back down to this level before control could get here —
     so it is dead and can be refreshed in place.  This turns the
     ~2 snapshots-per-leaf allocation stream of a big search into
     [max_depth] allocations total; the LIFO restore discipline
     required by {!Memory.restore_backup} is unchanged. *)
  let snaps = ref (Array.make 64 None) in
  (* Telemetry accumulators for the per-branch-point events.  Plain
     (non-atomic) increments, cheaper than the events they count; the
     probe's atomic cells only see them in batches — every 4096 leaves
     (so fleet heartbeats lag boundedly) and at exit — keeping the
     probe-attached hot path within the telemetry-bench budget.  The
     deepest pool slot is likewise gauged locally and peaked at exit. *)
  let pool_high = ref 0 in
  let hot_refreshes = ref 0 in
  let hot_snapshots = ref 0 in
  let hot_dedup_misses = ref 0 in
  let hot_dedup_inters = ref 0 in
  let hot_recovers = ref 0 in
  let take_snapshot () =
    let lvl = !nframes in
    if lvl >= Array.length !snaps then begin
      let bigger = Array.make (2 * Array.length !snaps) None in
      Array.blit !snaps 0 bigger 0 (Array.length !snaps);
      snaps := bigger
    end;
    match !snaps.(lvl) with
    | Some s ->
      incr hot_refreshes;
      Machine.snapshot_into machine s; s
    | None ->
      incr hot_snapshots;
      if lvl > !pool_high then pool_high := lvl;
      let s = Machine.snapshot machine in
      !snaps.(lvl) <- Some s;
      s
  in
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let pruned_count = ref 0 in
  let runs = ref 0 in
  (* Resume support: [rail] is the checkpointed path still to be
     fast-forwarded along (consumed at marked branch points, exploring
     nothing off it); [pending_offset] re-bases the step counter at the
     first leaf so resumed statistics continue the interrupted run's
     totals instead of this process's (which only paid for replaying
     one path prefix). *)
  let rail = ref [] in
  let steps_offset = ref 0 in
  let pending_offset = ref None in
  (match resume with
   | None -> ()
   | Some (c : Checkpoint.counts) ->
     complete_count := c.complete;
     truncated_count := c.truncated;
     pruned_count := c.pruned;
     runs := c.complete + c.truncated + c.pruned;
     rail := c.path;
     pending_offset := Some c.steps);
  let take_rail () =
    match !rail with [] -> None | c :: tl -> rail := tl; Some c
  in
  let total_steps () = !steps_offset + Machine.total_steps machine in
  (* Crossing into the shard subtree on a fresh shard (the rail was
     exactly the pinned prefix): the transitions replayed so far are
     the shard generator's work, already counted by the generator, not
     this shard's — rebase the step counter right here so the pinned
     choice at the deepest prefix frame and everything below it are
     what this run's statistics measure.  A mid-shard resume (rail
     longer than the pin) keeps the standard first-leaf rebase
     instead, continuing the interrupted shard's totals. *)
  let entry_rebased = ref false in
  let maybe_entry_rebase fi =
    if fi = subtree_prefix - 1 && !rail = [] && not !entry_rebased then begin
      entry_rebased := true;
      match !pending_offset with
      | Some prior ->
        steps_offset := prior - Machine.total_steps machine;
        pending_offset := None
      | None -> ()
    end
  in
  (* Duplicate detection: a hash table over (state hash, depth, crash
     budget, recovery budget) at marked scheduling nodes, storing the
     sleep set the state was first visited with.  Godefroid's rule for combining
     sleep sets with state caching: a revisit whose sleep set covers
     the stored one can only explore a subset of what the first visit
     did — prune it; a revisit with a fresh awake candidate must be
     re-explored, and the entry is narrowed to the intersection so
     later revisits compare against everything now covered.  Depth
     participates in the key because [max_depth] truncation gives
     equal states at different depths different subtrees; diamonds of
     commuting transitions — the duplicates worth catching — converge
     at equal depth anyway.  The table is per-call, so per-shard under
     [Parallel]: shard counts stay deterministic regardless of how
     shards land on workers. *)
  let visited : (int * int, int) Hashtbl.t = Hashtbl.create (if dedup then 4096 else 0) in
  let dedup_hits = ref 0 in
  let dedup_covered z depth crashes_left recoveries_left =
    let h1, h2 = Machine.state_hash machine in
    let h1 = Memory.mix1 (Memory.mix1 (Memory.mix1 h1 depth) crashes_left) recoveries_left in
    let h2 = Memory.mix2 (Memory.mix2 (Memory.mix2 h2 depth) crashes_left) recoveries_left in
    let key = (h1, h2) in
    match Hashtbl.find_opt visited key with
    | None ->
      Hashtbl.add visited key z;
      incr hot_dedup_misses;
      false
    | Some z_old ->
      if z_old land lnot z = 0 then true
      else begin
        Hashtbl.replace visited key (z_old land z);
        incr hot_dedup_inters;
        false
      end
  in
  let last_saved = ref !runs in
  (* Telemetry baseline: counts carried in by [resume] are the
     interrupted run's work, not this call's — exit-time probe adds
     report deltas against them, so per-shard contributions sum to the
     sequential totals. *)
  let c0_complete = !complete_count in
  let c0_truncated = !truncated_count in
  let c0_pruned = !pruned_count in
  let c0_steps = match resume with None -> 0 | Some c -> c.Checkpoint.steps in
  let cov = match probe with Some p -> Telemetry.coverage p | None -> None in
  let stage_of pid = Machine.stage machine pid in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      pruned = !pruned_count;
      dedup_hits = !dedup_hits;
      exhausted;
      steps = total_steps () }
  in
  let exception Abort of string in
  let exception Out_of_budget in
  (* The current position in Explore.run_path's encoding; frames are
     kept on the stack when [Abort] unwinds, root first. *)
  let current_path () = List.init !nframes (fun i -> !frames.(i)) in
  (* One leaf-outputs buffer for the whole search: checks see the live
     contents and must copy what they retain (see the mli). *)
  let out_buf = Array.make n None in
  (* Drain the hot accumulators into the probe: only the growth since
     the last drain, so repeated flushes never double-count. *)
  let f_refreshes = ref 0 in
  let f_snapshots = ref 0 in
  let f_dedup_hits = ref 0 in
  let f_dedup_misses = ref 0 in
  let f_dedup_inters = ref 0 in
  let f_recovers = ref 0 in
  let flush_hot p =
    let drain r f c =
      let v = !r - !f in
      if v > 0 then begin
        Telemetry.add p c v;
        f := !r
      end
    in
    drain hot_refreshes f_refreshes Telemetry.snapshot_refreshes;
    drain hot_snapshots f_snapshots Telemetry.snapshots;
    drain dedup_hits f_dedup_hits Telemetry.dedup_hits;
    drain hot_dedup_misses f_dedup_misses Telemetry.dedup_misses;
    drain hot_dedup_inters f_dedup_inters Telemetry.dedup_intersections;
    drain hot_recovers f_recovers Telemetry.recovers
  in
  let leaf kind =
    (match !pending_offset with
     | Some prior -> steps_offset := prior - Machine.total_steps machine;
       pending_offset := None
     | None -> ());
    let stopping = !runs >= max_runs || stop () in
    (match on_checkpoint with
     | Some save when stopping || !runs - !last_saved >= checkpoint_every ->
       (* Saved before counting this leaf: the resumed run re-reaches
          and counts it, so an interrupted + resumed exploration visits
          exactly the uninterrupted leaf sequence. *)
       save
         { Checkpoint.path = current_path ();
           complete = !complete_count;
           truncated = !truncated_count;
           pruned = !pruned_count;
           steps = total_steps () };
       (match probe with
        | Some p -> Telemetry.bump p Telemetry.checkpoints
        | None -> ());
       (match sink with
        | Some s -> s.Sink.on_checkpoint ~step:(Machine.steps machine)
        | None -> ());
       last_saved := !runs
     | Some _ | None -> ());
    if stopping then raise Out_of_budget;
    incr runs;
    (match probe with
     | Some p when !runs land 4095 = 0 -> flush_hot p
     | Some _ | None -> ());
    (match cov with
     | None -> ()
     | Some cv ->
       Coverage.leaf cv ~kind ~depth:(Machine.steps machine) ~n ~stage:stage_of;
       if dedup && !runs land 16383 = 0 then
         Coverage.saturate cv ~leaves:!runs ~table:(Hashtbl.length visited));
    (match heartbeat with
     | None -> ()
     | Some hb ->
       hb ~runs:!runs ~pruned:!pruned_count ~steps:(total_steps ())
         ~depth:(Machine.steps machine));
    match kind with
    | `Pruned -> incr pruned_count
    | (`Complete | `Truncated) as kind ->
      let complete = kind = `Complete in
      if complete then incr complete_count else incr truncated_count;
      Machine.outputs_into machine out_buf;
      (match check ~complete out_buf with
       | Ok () -> ()
       | Error reason -> raise (Abort reason))
  in
  let pending = Machine.unsafe_pending machine in
  (* [descend z crashes_left recoveries_left depth]: the machine sits at
     a fresh state whose inherited sleep set is [z].  Scheduling
     candidates are executing each enabled process (ascending pid),
     then — while crash budget remains — crash-stopping each (same
     order), then — while recovery budget remains — recovering each
     currently crashed pid (ascending); faults after steps keeps the
     all-zeros path the failure-free canonical execution and matches
     Explore.run_path's arity layout choice for choice (including the
     stop-or-recover node when no process is enabled but crashed pids
     remain recoverable).  Pick the first candidate not asleep; if they
     all are, this path only revisits already-explored traces — prune.
     After a scheduling choice is fully explored it enters the state's
     sleep set, so its subtree is never re-entered from a sibling;
     trying the sibling restores the state snapshot instead of
     re-executing from the root. *)
  let rec descend z crashes_left recoveries_left depth =
    let en = Machine.enabled machine in
    let k = Array.length en in
    let rec_pids =
      if recoveries_left > 0 then Explore.crashed_pids machine ~n else [||]
    in
    let m = Array.length rec_pids in
    let base = if crashes_left > 0 then 2 * k else k in
    let ncands = if k = 0 && m > 0 then 1 + m else base + m in
    if ncands = 0 then leaf `Complete
    else if depth >= max_depth then leaf `Truncated
    else begin
      let i = first_awake z en k base rec_pids ncands 0 in
      if i < 0 then leaf `Pruned
      else if ncands = 1 then
        (* Sole candidate: no alternative can ever be tried here, so
           no snapshot and no mark. *)
        transition ~pid:en.(0) ~kind:kind_exec ~sleep:z ~snap:None
          ~crashes_left ~recoveries_left ~depth
      else begin
        match cut with
        | Some (lvl, emit) when !nframes >= lvl ->
          (* Shard generation: first marked node at or past the cut
             level — emit one shard per candidate the sibling loop
             would explore, in its exact progression order, and
             explore nothing below. *)
          emit_cut emit z en k base rec_pids ncands i
        | _ ->
          let fi = !nframes in
          if fi < subtree_prefix then begin
            (* Pinned shard-prefix frame: replay exactly the railed
               candidate, rebuilding the sleep progression the shard
               generator walked when it emitted this path, exploring
               no sibling.  No snapshot: nothing backtracks to here. *)
            let c = match take_rail () with Some c -> c | None -> corrupt () in
            if c < 0 || c >= ncands then corrupt ();
            push c;
            let sleep = ref z in
            let cur = ref i in
            while !cur <> c do
              sleep := !sleep lor (1 lsl cand_bit en k base rec_pids !cur);
              let j = first_awake !sleep en k base rec_pids ncands 0 in
              if j >= 0 then cur := j else corrupt ()
            done;
            maybe_entry_rebase fi;
            transition ~pid:(cand_pid en k base rec_pids c)
              ~kind:(cand_kind k base c) ~sleep:!sleep ~snap:None ~crashes_left
              ~recoveries_left ~depth;
            pop ()
          end
          else if dedup && dedup_covered z depth crashes_left recoveries_left
          then begin
            incr dedup_hits;
            leaf `Pruned
          end
          else begin
            let snap = take_snapshot () in
            let snapo = Some snap in
            push i;
            let sleep0 =
              match take_rail () with
              | None -> z
              | Some c ->
                (* Fast-forward: advance the first_awake progression to the
                   checkpointed choice, growing the sleep set exactly as
                   the interrupted run did but exploring nothing. *)
                if c < 0 || c >= ncands then corrupt ();
                let sleep = ref z in
                while !frames.(fi) <> c do
                  let i = !frames.(fi) in
                  sleep := !sleep lor (1 lsl cand_bit en k base rec_pids i);
                  let j = first_awake !sleep en k base rec_pids ncands 0 in
                  if j >= 0 then !frames.(fi) <- j else corrupt ()
                done;
                !sleep
            in
            siblings fi en k base rec_pids ncands snap snapo crashes_left
              recoveries_left depth sleep0;
            pop ()
          end
      end
    end
  (* Emit one shard path per candidate of this node, walking the same
     first_awake progression the sibling loop would: shard paths
     partition the node's subtrees exactly as sequential exploration
     orders them. *)
  and emit_cut emit z en k base rec_pids ncands i =
    push i;
    emit (current_path ());
    pop ();
    let z = z lor (1 lsl cand_bit en k base rec_pids i) in
    let j = first_awake z en k base rec_pids ncands 0 in
    if j >= 0 then emit_cut emit z en k base rec_pids ncands j
  (* The sibling loop of one scheduling node, as a recursion so the
     growing sleep set stays an immediate parameter. *)
  and siblings fi en k base rec_pids ncands snap snapo crashes_left
      recoveries_left depth sleep =
    let i = !frames.(fi) in
    transition ~pid:(cand_pid en k base rec_pids i) ~kind:(cand_kind k base i)
      ~sleep ~snap:snapo ~crashes_left ~recoveries_left ~depth;
    let sleep = sleep lor (1 lsl cand_bit en k base rec_pids i) in
    let j = first_awake sleep en k base rec_pids ncands 0 in
    if j >= 0 then begin
      !frames.(fi) <- j;
      Machine.restore machine snap;
      siblings fi en k base rec_pids ncands snap snapo crashes_left
        recoveries_left depth sleep
    end
  (* Descend through one chosen transition: candidates that commute with
     it (fault-aware relation) stay asleep below.  A probabilistic write
     with 0 < p < 1 forks on the coin and a weak-register read forks on
     freshness; either fork's pre-state is the scheduling state itself,
     so the node snapshot is reused when there is one.  The stop
     pseudo-candidate is a complete leaf in place — no transition. *)
  and transition ~pid ~kind ~sleep ~snap ~crashes_left ~recoveries_left ~depth =
    if kind = kind_stop then leaf `Complete
    else begin
      let z' =
        if sleep = 0 then 0 else filter_indep pending sleep ~pid ~kind ~n
      in
      if kind = kind_crash then begin
        Machine.crash machine ~pid;
        descend z' (crashes_left - 1) recoveries_left (depth + 1)
      end
      else if kind = kind_recover then begin
        incr hot_recovers;
        Machine.recover machine ~pid;
        descend z' crashes_left (recoveries_left - 1) (depth + 1)
      end
      else
        (* [coin_class] reads the machine's pending descriptor for the
           pid — pending operations are fixed until the process is
           scheduled.  Under the VM the class is cached per pc, so this
           allocates nothing. *)
        match Machine.coin_class machine pid with
        | 0 ->
          Machine.step_forced machine ~pid ~landed:false;
          descend z' crashes_left recoveries_left (depth + 1)
        | 1 ->
          Machine.step_forced machine ~pid ~landed:true;
          descend z' crashes_left recoveries_left (depth + 1)
        | 2 -> fork ~pid ~z' ~snap ~crashes_left ~recoveries_left ~depth ~landed0:true
        | _ -> fork ~pid ~z' ~snap ~crashes_left ~recoveries_left ~depth ~landed0:false
    end
  (* Two-way fork on the coin (choice 0 = [landed0]) or on freshness
     (choice 0 = fresh): straight-line, since this is the inner loop. *)
  and fork ~pid ~z' ~snap ~crashes_left ~recoveries_left ~depth ~landed0 =
    match cut with
    | Some (lvl, emit) when !nframes >= lvl ->
      (* Fork at or past the cut level: one shard per outcome.  Forks
         must be cut points too, or coin-heavy subtrees (the fallback's
         corridor of forks) would all land in the generator's residue. *)
      push 0;
      emit (current_path ());
      !frames.(!nframes - 1) <- 1;
      emit (current_path ());
      pop ()
    | _ ->
      let fi = !nframes in
      if fi < subtree_prefix then begin
        (* Pinned fork frame: replay the railed outcome only. *)
        let c = match take_rail () with Some c -> c | None -> corrupt () in
        if c < 0 || c > 1 then corrupt ();
        push c;
        maybe_entry_rebase fi;
        Machine.step_forced machine ~pid
          ~landed:(if c = 0 then landed0 else not landed0);
        descend z' crashes_left recoveries_left (depth + 1);
        pop ()
      end
      else begin
        let snap = match snap with Some s -> s | None -> take_snapshot () in
        push 0;
        let start = match take_rail () with None -> 0 | Some c -> c in
        if start < 0 || start > 1 then corrupt ();
        if start = 0 then begin
          Machine.step_forced machine ~pid ~landed:landed0;
          descend z' crashes_left recoveries_left (depth + 1);
          Machine.restore machine snap
        end;
        !frames.(fi) <- 1;
        Machine.step_forced machine ~pid ~landed:(not landed0);
        descend z' crashes_left recoveries_left (depth + 1);
        pop ()
      end
  in
  (* Leaf and step totals land in the probe once, on the way out —
     deltas against the resume baseline, so the disabled-probe hot path
     stays branch-only and shard contributions sum to the sequential
     totals ([--jobs]-invariance, asserted in test/test_parallel.ml). *)
  let finish r =
    (match probe with
     | None -> ()
     | Some p ->
       flush_hot p;
       Telemetry.add p Telemetry.leaves_complete (!complete_count - c0_complete);
       Telemetry.add p Telemetry.leaves_truncated (!truncated_count - c0_truncated);
       Telemetry.add p Telemetry.leaves_pruned (!pruned_count - c0_pruned);
       Telemetry.add p Telemetry.steps (max 0 (total_steps () - c0_steps));
       Telemetry.peak p Telemetry.snapshot_pool_high !pool_high;
       if dedup then begin
         Telemetry.peak p Telemetry.dedup_table_peak (Hashtbl.length visited);
         match cov with
         | Some cv ->
           Coverage.saturate cv ~leaves:!runs ~table:(Hashtbl.length visited)
         | None -> ()
       end);
    r
  in
  match descend 0 faults.Fault.crashes faults.Fault.recoveries 0 with
  | () -> finish (Ok (stats true))
  | exception Out_of_budget -> finish (Ok (stats false))
  | exception Abort reason -> finish (Error (reason, current_path (), stats false))

(* ------------------------------------------------------------------ *)
(* Dynamic partial-order reduction (toward source sets)                *)
(* ------------------------------------------------------------------ *)

(* [explore] above restricts each node to its not-yet-slept candidates
   but still tries every one of them; the reduction is the sleep sets'
   alone.  This entry point adds Flanagan–Godefroid-style dynamic
   backtracking on top: a node starts with a minimal backtracking set
   (its first awake candidate, plus every crash candidate — crashes
   race with nothing, so detection below would never request them and
   crash-closure would be lost) and grows it on demand.  When a
   transition of process p executes at depth d, the latest executed
   event of another process whose operation conflicts with p's marks a
   race: p is added to the backtracking set of that event's pre-state
   node (or, if p was not enabled there, every enabled candidate is —
   the conservative fallback).  Candidates never requested are never
   explored, which is where the asymptotic reduction over pure sleep
   sets comes from.

   Completeness bookkeeping beyond the classic loop: leaves that do not
   run to completion (depth-truncated or sleep-blocked) race-scan the
   pending operation of every still-enabled process as if it executed
   there, so a dependency whose second half lies beyond the cut still
   registers its backtracking point.  Detection on execution (rather
   than at every state a transition is pending) finds the same races
   one branch later: the run where p executes adds p's backtracking
   point at the latest conflicting event, and the branch explored from
   there repeats the scan against the then-shorter past, percolating
   the point as far up as it must go.

   Same guarantee as [explore]: the complete-execution outcome set is
   preserved exactly (verified differentially against both [explore]
   and [Naive.explore] in test/test_parallel.ml); executions explored
   never exceed the unreduced tree's and drop below pure sleep sets
   wherever candidates go unrequested.  No checkpoint, shard or dedup
   support — this engine is the reduction oracle, not the workhorse. *)
let explore_source ?engine ?(max_depth = 200) ?(max_runs = 2_000_000)
    ?(cheap_collect = false) ?(faults = Fault.none) ?(stop = fun () -> false)
    ?sink ?probe ?heartbeat ~n ~setup ~check () =
  if n > 20 then invalid_arg "Por.explore_source: n must be at most 20";
  let memory, body = setup () in
  let machine = Machine.create ?engine ~cheap_collect ?sink ~n ~memory body in
  let pending = Machine.unsafe_pending machine in
  let frames = ref (Array.make 64 0) in
  let nframes = ref 0 in
  let push v =
    if !nframes = Array.length !frames then begin
      let bigger = Array.make (2 * !nframes) 0 in
      Array.blit !frames 0 bigger 0 !nframes;
      frames := bigger
    end;
    !frames.(!nframes) <- v;
    incr nframes
  in
  let pop () = decr nframes in
  let current_path () = List.init !nframes (fun i -> !frames.(i)) in
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let pruned_count = ref 0 in
  let runs = ref 0 in
  (* Snapshot and recovery counts stay in plain locals and land in the
     probe once at exit, like [explore]'s batched hot counters. *)
  let src_snapshots = ref 0 in
  let src_recovers = ref 0 in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      pruned = !pruned_count;
      dedup_hits = 0;
      exhausted;
      steps = Machine.total_steps machine }
  in
  let exception Abort of string in
  let exception Out_of_budget in
  let out_buf = Array.make n None in
  let leaf kind =
    if !runs >= max_runs || stop () then raise Out_of_budget;
    incr runs;
    (match heartbeat with
     | None -> ()
     | Some hb ->
       hb ~runs:!runs ~pruned:!pruned_count
         ~steps:(Machine.total_steps machine) ~depth:(Machine.steps machine));
    match kind with
    | `Pruned -> incr pruned_count
    | (`Complete | `Truncated) as kind ->
      let complete = kind = `Complete in
      if complete then incr complete_count else incr truncated_count;
      Machine.outputs_into machine out_buf;
      (match check ~complete out_buf with
       | Ok () -> ()
       | Error reason -> raise (Abort reason))
  in
  (* Executed events, indexed by execution depth: process, operation
     footprint (a crash's is empty, so it races with nothing), and the
     nesting level of the scheduling node whose pre-state chose it
     (-1 below sole-candidate corridors, where a backtracking request
     is vacuous — no other process is enabled there). *)
  let cap = max_depth + 1 in
  let ev_pid = Array.make cap 0 in
  let ev_lo = Array.make cap 0 in
  let ev_hi = Array.make cap 0 in
  let ev_writes = Array.make cap false in
  let ev_node = Array.make cap (-1) in
  (* Per-node mutable state, indexed by node nesting level: the
     backtracking set (as a candidate-key mask, grown by race
     detection from anywhere below) and the node's enabled array
     (aliased, not copied: enabled arrays are interned/rebuilt, never
     mutated in place). *)
  let bt = ref (Array.make 64 0) in
  let node_en = ref (Array.make 64 [||]) in
  let ensure_node lvl =
    if lvl >= Array.length !bt then begin
      let b = Array.make (2 * Array.length !bt) 0 in
      Array.blit !bt 0 b 0 (Array.length !bt);
      bt := b;
      let e = Array.make (2 * Array.length !node_en) [||] in
      Array.blit !node_en 0 e 0 (Array.length !node_en);
      node_en := e
    end
  in
  let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
  let add_backtrack lvl p =
    let before = !bt.(lvl) in
    let en = !node_en.(lvl) in
    let k = Array.length en in
    let rec enabled_at i = i < k && (en.(i) = p || enabled_at (i + 1)) in
    if enabled_at 0 then
      !bt.(lvl) <- !bt.(lvl) lor (1 lsl key ~pid:p ~kind:kind_exec)
    else begin
      (* p was not schedulable at that node: fall back to requesting
         every execute candidate (the classic conservative clause). *)
      let m = ref !bt.(lvl) in
      for i = 0 to k - 1 do
        m := !m lor (1 lsl key ~pid:en.(i) ~kind:kind_exec)
      done;
      !bt.(lvl) <- !m
    end;
    match probe with
    | Some pr ->
      let added = !bt.(lvl) land lnot before in
      if added <> 0 then
        Telemetry.add pr Telemetry.dpor_backtracks (popcount added)
    | None -> ()
  in
  (* Latest executed event of another process conflicting with [pid]'s
     operation; request [pid] at its pre-state node. *)
  let race ~pid ~lo ~hi ~writes d =
    let rec scan j =
      if j >= 0 then
        if
          ev_pid.(j) <> pid
          && (writes || ev_writes.(j))
          && ev_lo.(j) < hi && lo < ev_hi.(j)
        then begin
          (match probe with
           | Some pr -> Telemetry.bump pr Telemetry.dpor_races
           | None -> ());
          if ev_node.(j) >= 0 then add_backtrack ev_node.(j) pid
        end
        else scan (j - 1)
    in
    scan (d - 1)
  in
  let race_op ~pid ~node d =
    let op = any_of pending pid in
    let lo = Op.loc op in
    let hi = Independence.op_hi op in
    let writes = Independence.op_writes op in
    race ~pid ~lo ~hi ~writes d;
    ev_pid.(d) <- pid;
    ev_lo.(d) <- lo;
    ev_hi.(d) <- hi;
    ev_writes.(d) <- writes;
    ev_node.(d) <- node
  in
  let record_crash ~pid ~node d =
    ev_pid.(d) <- pid;
    ev_lo.(d) <- 0;
    ev_hi.(d) <- 0;
    ev_writes.(d) <- false;
    ev_node.(d) <- node
  in
  (* A recovery wipes whichever volatile registers its pid last wrote —
     a footprint that static analysis cannot bound — so it is recorded
     with a global write footprint: every later operation races with it
     and registers its backtracking point.  The converse reorderings
     (recover first) need no race scan of their own, because recover
     candidates sit in every node's initial backtracking set below. *)
  let record_recover ~pid ~node d =
    ev_pid.(d) <- pid;
    ev_lo.(d) <- 0;
    ev_hi.(d) <- max_int;
    ev_writes.(d) <- true;
    ev_node.(d) <- node
  in
  (* A leaf cut before completion: scan every still-enabled process's
     pending operation as if it executed here, so races whose second
     half lies past the cut still register. *)
  let pending_races d =
    let en = Machine.enabled machine in
    for i = 0 to Array.length en - 1 do
      let p = en.(i) in
      let op = any_of pending p in
      race ~pid:p ~lo:(Op.loc op) ~hi:(Independence.op_hi op)
        ~writes:(Independence.op_writes op) d
    done
  in
  let rec descend z lvl crashes_left recoveries_left depth =
    let en = Machine.enabled machine in
    let k = Array.length en in
    let rec_pids =
      if recoveries_left > 0 then Explore.crashed_pids machine ~n else [||]
    in
    let nrec = Array.length rec_pids in
    let base = if crashes_left > 0 then 2 * k else k in
    let ncands = if k = 0 && nrec > 0 then 1 + nrec else base + nrec in
    if ncands = 0 then leaf `Complete
    else if depth >= max_depth then begin
      pending_races depth;
      leaf `Truncated
    end
    else begin
      let i = first_awake z en k base rec_pids ncands 0 in
      if i < 0 then begin
        pending_races depth;
        leaf `Pruned
      end
      else if ncands = 1 then
        execute ~pid:en.(0) ~kind:kind_exec ~node:(-1) ~sleep:z ~snap:None ~lvl
          ~crashes_left ~recoveries_left ~depth
      else begin
        ensure_node lvl;
        !node_en.(lvl) <- en;
        (* Initial backtracking set: the first awake candidate, every
           crash candidate (crashes race with nothing, so detection
           below would never request them), every recover candidate
           (likewise unrequestable: race detection asks for execute
           candidates only, and a crashed pid is never in [en]) and the
           stop pseudo-candidate when present — crash-closure and
           recovery-closure would be lost otherwise. *)
        let m = ref (1 lsl cand_bit en k base rec_pids i) in
        let nonexec_from = if k = 0 then 0 else k in
        for j = nonexec_from to ncands - 1 do
          m := !m lor (1 lsl cand_bit en k base rec_pids j)
        done;
        !bt.(lvl) <- !m;
        incr src_snapshots;
        let snap = Machine.snapshot machine in
        let fi = !nframes in
        push i;
        (* Candidate loop: lowest-index requested, not-slept candidate;
           re-scanned from the node's set each round because race
           detection below grows it.  Explored candidates enter the
           node sleep set exactly as in [explore]. *)
        let rec loop sleep first =
          let c = pick lvl en k base rec_pids ncands sleep in
          if c >= 0 then begin
            if not first then Machine.restore machine snap;
            !frames.(fi) <- c;
            execute ~pid:(cand_pid en k base rec_pids c)
              ~kind:(cand_kind k base c) ~node:lvl ~sleep ~snap:(Some snap)
              ~lvl ~crashes_left ~recoveries_left ~depth;
            loop (sleep lor (1 lsl cand_bit en k base rec_pids c)) false
          end
        in
        loop z true;
        pop ()
      end
    end
  and pick lvl en k base rec_pids ncands sleep =
    let m = !bt.(lvl) in
    let rec go c =
      if c >= ncands then -1
      else
        let b = 1 lsl cand_bit en k base rec_pids c in
        if m land b <> 0 && sleep land b = 0 then c else go (c + 1)
    in
    go 0
  and execute ~pid ~kind ~node ~sleep ~snap ~lvl ~crashes_left ~recoveries_left
      ~depth =
    if kind = kind_stop then leaf `Complete
    else begin
      let z' =
        if sleep = 0 then 0 else filter_indep pending sleep ~pid ~kind ~n
      in
      if kind = kind_crash then begin
        record_crash ~pid ~node depth;
        Machine.crash machine ~pid;
        descend z' (lvl + 1) (crashes_left - 1) recoveries_left (depth + 1)
      end
      else if kind = kind_recover then begin
        incr src_recovers;
        record_recover ~pid ~node depth;
        Machine.recover machine ~pid;
        descend z' (lvl + 1) crashes_left (recoveries_left - 1) (depth + 1)
      end
      else begin
        race_op ~pid ~node depth;
        match Machine.coin_class machine pid with
        | 0 ->
          Machine.step_forced machine ~pid ~landed:false;
          descend z' (lvl + 1) crashes_left recoveries_left (depth + 1)
        | 1 ->
          Machine.step_forced machine ~pid ~landed:true;
          descend z' (lvl + 1) crashes_left recoveries_left (depth + 1)
        | cls ->
          (* Coin / freshness fork: both outcomes, always.  The fork's
             pre-state is the scheduling state itself, so the node
             snapshot is reused when there is one; the event at this
             depth is identical on both sides and stays recorded. *)
          let landed0 = cls = 2 in
          let snap =
            match snap with
            | Some s -> s
            | None ->
              incr src_snapshots;
              Machine.snapshot machine
          in
          let fi = !nframes in
          push 0;
          Machine.step_forced machine ~pid ~landed:landed0;
          descend z' (lvl + 1) crashes_left recoveries_left (depth + 1);
          Machine.restore machine snap;
          !frames.(fi) <- 1;
          Machine.step_forced machine ~pid ~landed:(not landed0);
          descend z' (lvl + 1) crashes_left recoveries_left (depth + 1);
          pop ()
      end
    end
  in
  let finish r =
    (match probe with
     | None -> ()
     | Some p ->
       Telemetry.add p Telemetry.snapshots !src_snapshots;
       Telemetry.add p Telemetry.recovers !src_recovers;
       Telemetry.add p Telemetry.leaves_complete !complete_count;
       Telemetry.add p Telemetry.leaves_truncated !truncated_count;
       Telemetry.add p Telemetry.leaves_pruned !pruned_count;
       Telemetry.add p Telemetry.steps (Machine.total_steps machine));
    r
  in
  match descend 0 0 faults.Fault.crashes faults.Fault.recoveries 0 with
  | () -> finish (Ok (stats true))
  | exception Out_of_budget -> finish (Ok (stats false))
  | exception Abort reason -> finish (Error (reason, current_path (), stats false))
