open Conrat_sim

type stats = {
  complete : int;
  truncated : int;
  pruned : int;
  exhausted : bool;
}

let explored stats = stats.complete + stats.truncated

(* A sleep-set element: an enabled process together with its pending
   operation (which is fixed until the process is scheduled). *)
type entry = {
  pid : int;
  op : Op.any;
}

type sched = {
  enabled : entry array;        (* ascending pid *)
  mutable chosen : int;         (* index into [enabled] *)
  mutable sleep : entry list;   (* the sleep set Z at this state *)
}

type coin = { mutable outcome : int (* 0 = landed, 1 = missed *) }

type frame =
  | Sched of sched
  | Coin of coin

let in_sleep sleep pid = List.exists (fun e -> e.pid = pid) sleep

(* Identical to Explore.apply_det, minus trace observation. *)
let apply_det :
  type a. cheap_collect:bool -> landed:bool -> Memory.t -> a Op.t -> a =
  fun ~cheap_collect ~landed memory op ->
  match op with
  | Op.Read l -> Memory.read memory l
  | Op.Write (l, v) -> Memory.write memory l v
  | Op.Prob_write (l, v, _) -> if landed then Memory.write memory l v
  | Op.Prob_write_detect (l, v, _) ->
    if landed then Memory.write memory l v;
    landed
  | Op.Collect (l, len) ->
    if not cheap_collect then raise Scheduler.Collect_disallowed;
    Array.init len (fun i -> Memory.read memory (l + i))

let explore ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(stop = fun () -> false) ~n ~setup ~check () =
  (* The DFS stack of branch points along the current path.  Executions
     are re-run from scratch (continuations are one-shot), so the stack
     is the only state carried between runs; prefix frames replay
     deterministically. *)
  let frames = ref (Array.make 64 (Coin { outcome = 0 })) in
  let nframes = ref 0 in
  let push f =
    if !nframes = Array.length !frames then begin
      let bigger = Array.make (2 * !nframes) f in
      Array.blit !frames 0 bigger 0 !nframes;
      frames := bigger
    end;
    !frames.(!nframes) <- f;
    incr nframes
  in
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let pruned_count = ref 0 in
  let runs = ref 0 in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      pruned = !pruned_count;
      exhausted }
  in
  (* One execution following the stack's choices, creating new frames
     past its end.  Returns the leaf kind and (for checked leaves) the
     outputs. *)
  let run_once () =
    let memory, body = setup () in
    let statuses = Array.init n (fun pid -> Fiber.spawn (fun () -> body ~pid)) in
    let outputs () =
      Array.map
        (function Fiber.Finished r -> Some r | Fiber.Running _ -> None)
        statuses
    in
    let enabled_entries () =
      let acc = ref [] in
      for pid = n - 1 downto 0 do
        match statuses.(pid) with
        | Fiber.Running (op, _) -> acc := { pid; op = Op.Any op } :: !acc
        | Fiber.Finished _ -> ()
      done;
      Array.of_list !acc
    in
    let fi = ref 0 in
    let z = ref [] in
    let depth = ref 0 in
    let rec go () =
      let entries = enabled_entries () in
      if Array.length entries = 0 then `Complete (outputs ())
      else if !depth >= max_depth then `Truncated (outputs ())
      else begin
        let frame =
          if !fi < !nframes then begin
            match !frames.(!fi) with
            | Sched s ->
              assert (Array.length s.enabled = Array.length entries);
              Some s
            | Coin _ -> assert false
          end
          else begin
            (* New state: its sleep set is the inherited [!z].  Pick the
               first enabled process not asleep; if they all are, this
               path only revisits already-explored traces — prune. *)
            let sleep = !z in
            let rec first i =
              if i >= Array.length entries then None
              else if in_sleep sleep entries.(i).pid then first (i + 1)
              else Some i
            in
            match first 0 with
            | None -> None
            | Some i ->
              let s = { enabled = entries; chosen = i; sleep } in
              push (Sched s);
              Some s
          end
        in
        match frame with
        | None -> `Pruned
        | Some s ->
          let e = s.enabled.(s.chosen) in
          (* Descending through the chosen transition: processes whose
             pending op commutes with it stay asleep below. *)
          z := List.filter (fun x -> Independence.independent x.op e.op) s.sleep;
          incr fi;
          let landed =
            match Op.prob e.op with
            | Some p when p <= 0.0 -> false
            | Some p when p >= 1.0 -> true
            | Some _ ->
              let c =
                if !fi < !nframes then begin
                  match !frames.(!fi) with
                  | Coin c -> c
                  | Sched _ -> assert false
                end
                else begin
                  let c = { outcome = 0 } in
                  push (Coin c);
                  c
                end
              in
              incr fi;
              c.outcome = 0
            | None -> Op.is_write e.op
          in
          (match statuses.(e.pid) with
           | Fiber.Finished _ -> assert false
           | Fiber.Running (op, k) ->
             let result = apply_det ~cheap_collect ~landed memory op in
             statuses.(e.pid) <- Fiber.resume k result);
          incr depth;
          go ()
      end
    in
    go ()
  in
  (* Bump the deepest frame with an untried alternative; drop the rest.
     A finished scheduling choice enters its state's sleep set, so its
     subtree is never re-entered from a sibling. *)
  let rec backtrack () =
    if !nframes = 0 then false
    else begin
      match !frames.(!nframes - 1) with
      | Coin c ->
        if c.outcome = 0 then begin
          c.outcome <- 1;
          true
        end
        else begin
          decr nframes;
          backtrack ()
        end
      | Sched s ->
        s.sleep <- s.enabled.(s.chosen) :: s.sleep;
        let rec next i =
          if i >= Array.length s.enabled then None
          else if in_sleep s.sleep s.enabled.(i).pid then next (i + 1)
          else Some i
        in
        (match next 0 with
         | Some i ->
           s.chosen <- i;
           true
         | None ->
           decr nframes;
           backtrack ())
    end
  in
  (* The current path in Explore.run_path's encoding: arity-1 scheduling
     points consume no element there, so skip them here too. *)
  let current_path () =
    let acc = ref [] in
    for i = !nframes - 1 downto 0 do
      match !frames.(i) with
      | Sched s -> if Array.length s.enabled > 1 then acc := s.chosen :: !acc
      | Coin c -> acc := c.outcome :: !acc
    done;
    !acc
  in
  let rec drive () =
    if !runs >= max_runs || stop () then Ok (stats false)
    else begin
      incr runs;
      match run_once () with
      | `Pruned ->
        incr pruned_count;
        if backtrack () then drive () else Ok (stats true)
      | (`Complete outputs | `Truncated outputs) as leaf ->
        let complete = match leaf with `Complete _ -> true | _ -> false in
        if complete then incr complete_count else incr truncated_count;
        (match check ~complete outputs with
         | Error reason -> Error (reason, current_path (), stats false)
         | Ok () -> if backtrack () then drive () else Ok (stats true))
    end
  in
  drive ()
