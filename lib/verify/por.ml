open Conrat_sim

type stats = {
  complete : int;
  truncated : int;
  pruned : int;
  exhausted : bool;
  steps : int;
}

let explored stats = stats.complete + stats.truncated

(* A sleep-set element: a scheduling candidate — execute a process's
   pending operation (fixed until the process is scheduled) or, when
   [crash] is set, crash-stop it.  A flat record rather than an
   [Independence.action] wrapper: candidates are rebuilt at every
   scheduling point of a multi-million-leaf DFS, so one allocation per
   candidate is the budget ([op] is the already-allocated pending op
   either way; it is meaningless-but-harmless for crash entries). *)
type entry = {
  pid : int;
  op : Op.any;
  crash : bool;
}

(* Branch-point marks, kept on an explicit stack solely so the current
   path can be reported in Explore.run_path's encoding — when a check
   aborts the search, and as the checkpoint frontier.  All other
   per-node state (sleep sets, snapshots, depth, crash budget) lives in
   the DFS recursion.  Scheduling points with a single candidate are
   not marked, matching the path encoding. *)
type sched_mark = { mutable chosen : int }
type coin_mark = { mutable outcome : int (* 0 = landed/fresh, 1 = missed/stale *) }

type frame =
  | Sched of sched_mark
  | Coin of coin_mark

(* Identity of a sleeping transition: pid plus action kind.  Within a
   state a pid's pending operation is fixed, so (pid, crash?) determines
   the transition; the op rides along only for the independence filter. *)
let in_sleep sleep e =
  List.exists (fun x -> x.pid = e.pid && x.crash = e.crash) sleep

(* [Independence.independent_actions] specialized to flat entries: two
   transitions of distinct processes commute unless both execute and
   their operations conflict (a crash touches no register). *)
let independent_entries x e =
  x.pid <> e.pid && (x.crash || e.crash || Independence.independent x.op e.op)

let corrupt () =
  invalid_arg "Por.explore: checkpoint path inconsistent with this config"

let explore ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(faults = Fault.none) ?(stop = fun () -> false) ?sink ?heartbeat
    ?resume ?(checkpoint_every = 100_000) ?on_checkpoint ~n ~setup ~check () =
  let memory, body = setup () in
  let machine = Machine.create ~cheap_collect ?sink ~n ~memory body in
  let frames = ref (Array.make 64 (Coin { outcome = 0 })) in
  let nframes = ref 0 in
  let push f =
    if !nframes = Array.length !frames then begin
      let bigger = Array.make (2 * !nframes) f in
      Array.blit !frames 0 bigger 0 !nframes;
      frames := bigger
    end;
    !frames.(!nframes) <- f;
    incr nframes
  in
  let pop () = decr nframes in
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let pruned_count = ref 0 in
  let runs = ref 0 in
  (* Resume support: [rail] is the checkpointed path still to be
     fast-forwarded along (consumed at marked branch points, exploring
     nothing off it); [pending_offset] re-bases the step counter at the
     first leaf so resumed statistics continue the interrupted run's
     totals instead of this process's (which only paid for replaying
     one path prefix). *)
  let rail = ref [] in
  let steps_offset = ref 0 in
  let pending_offset = ref None in
  (match resume with
   | None -> ()
   | Some (c : Checkpoint.counts) ->
     complete_count := c.complete;
     truncated_count := c.truncated;
     pruned_count := c.pruned;
     runs := c.complete + c.truncated + c.pruned;
     rail := c.path;
     pending_offset := Some c.steps);
  let take_rail () =
    match !rail with [] -> None | c :: tl -> rail := tl; Some c
  in
  let total_steps () = !steps_offset + Machine.total_steps machine in
  let last_saved = ref !runs in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      pruned = !pruned_count;
      exhausted;
      steps = total_steps () }
  in
  let exception Abort of string in
  let exception Out_of_budget in
  (* The current position in Explore.run_path's encoding; frames are
     kept on the stack when [Abort] unwinds, root first. *)
  let current_path () =
    List.init !nframes (fun i ->
      match !frames.(i) with
      | Sched s -> s.chosen
      | Coin c -> c.outcome)
  in
  let leaf kind =
    (match !pending_offset with
     | Some prior -> steps_offset := prior - Machine.total_steps machine;
       pending_offset := None
     | None -> ());
    let stopping = !runs >= max_runs || stop () in
    (match on_checkpoint with
     | Some save when stopping || !runs - !last_saved >= checkpoint_every ->
       (* Saved before counting this leaf: the resumed run re-reaches
          and counts it, so an interrupted + resumed exploration visits
          exactly the uninterrupted leaf sequence. *)
       save
         { Checkpoint.path = current_path ();
           complete = !complete_count;
           truncated = !truncated_count;
           pruned = !pruned_count;
           steps = total_steps () };
       last_saved := !runs
     | Some _ | None -> ());
    if stopping then raise Out_of_budget;
    incr runs;
    (match heartbeat with
     | None -> ()
     | Some hb ->
       hb ~runs:!runs ~pruned:!pruned_count ~steps:(total_steps ())
         ~depth:(Machine.steps machine));
    match kind with
    | `Pruned -> incr pruned_count
    | (`Complete | `Truncated) as kind ->
      let complete = kind = `Complete in
      if complete then incr complete_count else incr truncated_count;
      (match check ~complete (Machine.outputs machine) with
       | Ok () -> ()
       | Error reason -> raise (Abort reason))
  in
  (* Scheduling candidates at the current state: executing each enabled
     process (ascending pid), then — while crash budget remains —
     crash-stopping each (same order).  Crashes after steps keeps the
     all-zeros path the failure-free canonical execution and matches
     Explore.run_path's arity layout choice for choice. *)
  let candidates crashes_left =
    let en = Machine.enabled machine in
    if crashes_left > 0 then begin
      let k = Array.length en in
      Array.init (2 * k) (fun i ->
        let crash = i >= k in
        let pid = en.(if crash then i - k else i) in
        { pid; op = Option.get (Machine.pending_op machine pid); crash })
    end
    else
      (* Failure-free: same shape (and cost) as the pre-fault explorer. *)
      Array.map
        (fun pid ->
          { pid; op = Option.get (Machine.pending_op machine pid); crash = false })
        en
  in
  let rec first_awake entries sleep i =
    if i >= Array.length entries then None
    else if in_sleep sleep entries.(i) then first_awake entries sleep (i + 1)
    else Some i
  in
  (* [descend z crashes_left depth]: the machine sits at a fresh state
     whose inherited sleep set is [z].  Pick the first candidate not
     asleep; if they all are, this path only revisits already-explored
     traces — prune.  After a scheduling choice is fully explored it
     enters the state's sleep set, so its subtree is never re-entered
     from a sibling; trying the sibling restores the state snapshot
     instead of re-executing from the root. *)
  let rec descend z crashes_left depth =
    let cands = candidates crashes_left in
    if Array.length cands = 0 then leaf `Complete
    else if depth >= max_depth then leaf `Truncated
    else begin
      match first_awake cands z 0 with
      | None -> leaf `Pruned
      | Some i ->
        if Array.length cands = 1 then
          (* Sole candidate: no alternative can ever be tried here, so
             no snapshot and no mark. *)
          transition ~entry:cands.(0) ~sleep:z ~snap:None ~crashes_left ~depth
        else begin
          let snap = Machine.snapshot machine in
          let mark = { chosen = i } in
          push (Sched mark);
          let sleep = ref z in
          (match take_rail () with
           | None -> ()
           | Some c ->
             (* Fast-forward: advance the first_awake progression to the
                checkpointed choice, growing the sleep set exactly as
                the interrupted run did but exploring nothing. *)
             if c < 0 || c >= Array.length cands then corrupt ();
             while mark.chosen <> c do
               let e = cands.(mark.chosen) in
               sleep := e :: !sleep;
               match first_awake cands !sleep 0 with
               | Some j -> mark.chosen <- j
               | None -> corrupt ()
             done);
          let continue = ref true in
          while !continue do
            let e = cands.(mark.chosen) in
            transition ~entry:e ~sleep:!sleep ~snap:(Some snap) ~crashes_left ~depth;
            sleep := e :: !sleep;
            match first_awake cands !sleep 0 with
            | Some j ->
              mark.chosen <- j;
              Machine.restore machine snap
            | None -> continue := false
          done;
          pop ()
        end
    end
  (* Descend through one chosen transition: candidates that commute with
     it (crash-aware relation) stay asleep below.  A probabilistic write
     with 0 < p < 1 forks on the coin and a weak-register read forks on
     freshness; either fork's pre-state is the scheduling state itself,
     so the node snapshot is reused when there is one. *)
  and transition ~entry ~sleep ~snap ~crashes_left ~depth =
    let z' = List.filter (fun x -> independent_entries x entry) sleep in
    if entry.crash then begin
      Machine.crash machine ~pid:entry.pid;
      descend z' (crashes_left - 1) (depth + 1)
    end
    else
      match Explore.coin_of_op ~memory entry.op with
      | `Det landed ->
        Machine.step_forced machine ~pid:entry.pid ~landed;
        descend z' crashes_left (depth + 1)
      | `Coin -> fork ~entry ~z' ~snap ~crashes_left ~depth ~landed0:true
      | `Weak -> fork ~entry ~z' ~snap ~crashes_left ~depth ~landed0:false
  (* Two-way fork on the coin (choice 0 = [landed0]) or on freshness
     (choice 0 = fresh): straight-line, since this is the inner loop. *)
  and fork ~entry ~z' ~snap ~crashes_left ~depth ~landed0 =
    let snap = match snap with Some s -> s | None -> Machine.snapshot machine in
    let mark = { outcome = 0 } in
    push (Coin mark);
    let start = match take_rail () with None -> 0 | Some c -> c in
    if start < 0 || start > 1 then corrupt ();
    if start = 0 then begin
      Machine.step_forced machine ~pid:entry.pid ~landed:landed0;
      descend z' crashes_left (depth + 1);
      Machine.restore machine snap
    end;
    mark.outcome <- 1;
    Machine.step_forced machine ~pid:entry.pid ~landed:(not landed0);
    descend z' crashes_left (depth + 1);
    pop ()
  in
  match descend [] faults.Fault.crashes 0 with
  | () -> Ok (stats true)
  | exception Out_of_budget -> Ok (stats false)
  | exception Abort reason -> Error (reason, current_path (), stats false)
