(** The naive (unreduced) enumerator — {!Conrat_sim.Explore} re-exported
    into the verification subsystem, so [Conrat_verify] presents both
    engines side by side ([Naive.explore] vs {!Por.explore}) with the
    path-execution core ({!Conrat_sim.Explore.run_path}) shared between
    them.  It remains the cross-check oracle: {!Checks.cross_check}
    compares the two engines' complete-execution outcome sets on every
    small configuration. *)

include module type of Conrat_sim.Explore
