(** The naive (unreduced) enumerator, by re-execution.

    Enumerates every path of the branch tree in lexicographic order by
    running {!Conrat_sim.Explore.run_path} from a fresh [setup ()] for
    each path and computing the successor with
    {!Conrat_sim.Explore.next_path} — the original exploration strategy,
    kept verbatim now that {!Conrat_sim.Explore.explore} backtracks
    statefully over one {!Conrat_sim.Machine}.  It costs a full prefix
    re-execution per path, but demands nothing of the protocol beyond
    what [run_path] does (in particular, [setup] being callable many
    times rather than programs being replay-pure), and it remains the
    cross-check oracle: {!Checks.cross_check} and the test suite compare
    the engines' complete-execution outcome sets — both visit the same
    leaves in the same order — on every small configuration. *)

type stats = {
  complete : int;    (** complete executions explored *)
  truncated : int;   (** paths cut off at [max_depth] *)
  exhausted : bool;  (** the whole tree fit within [max_runs] *)
  steps : int;       (** machine transitions executed across all runs *)
}

val explore :
  ?engine:Conrat_sim.Machine.engine ->
  ?max_depth:int ->
  ?max_runs:int ->
  ?cheap_collect:bool ->
  ?faults:Conrat_sim.Fault.model ->
  ?stop:(unit -> bool) ->
  ?probe:Conrat_obs.Telemetry.probe ->
  ?heartbeat:(runs:int -> steps:int -> depth:int -> unit) ->
  ?resume:Checkpoint.counts ->
  ?path_floor:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Checkpoint.counts -> unit) ->
  n:int ->
  setup:(unit -> Conrat_sim.Memory.t * (pid:int -> 'r Conrat_sim.Program.t)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  unit ->
  (stats, string * stats) result
(** [explore ~n ~setup ~check ()] runs every path; [check] is called at
    the end of each one and the first [Error] aborts the search.
    [stop] is polled before each run; returning [true] ends the search
    early with [exhausted = false].  [heartbeat] fires once per path
    with running totals ([depth] = that path's length); rate limiting
    is the callback's business.  [faults] closes the enumerated tree
    under crash-stops and weak-register stale reads (see
    {!Conrat_sim.Explore.run_path}).  [on_checkpoint]/[resume] follow
    {!Por.explore}'s convention — the saved path is the next uncounted
    leaf, and a resumed run's statistics are bit-identical to an
    uninterrupted one ([Checkpoint.counts.pruned] is always [0] here).
    Defaults: [max_depth = 200], [max_runs = 2_000_000],
    [checkpoint_every = 100_000].  [engine] selects the program engine
    for each re-execution (default the compiled VM); leaf order and
    statistics are identical under either.

    [probe] feeds the telemetry plane with exit-time leaf/step deltas
    against the [resume] baseline and checkpoint-save counts (see
    {!Por.explore}).

    [~path_floor:l] (requires [resume]) pins the first [l] branch
    entries: successor computation uses
    {!Conrat_sim.Explore.next_path_from}, so positions below [l] are
    never bumped and the enumeration covers exactly the subtree under
    the resume path's length-[l] prefix — the parallel driver's shard
    unit (see {!Parallel}). *)
