(** Replayable counterexample artifacts.

    A violation found by an explorer (or shrunk by {!Shrink}) is frozen
    into a small s-expression file: the configuration (checker name,
    process count, inputs, depth bound, model flags), the branch path
    in {!Conrat_sim.Explore.run_path}'s encoding — which fixes the
    whole schedule {e and} every probabilistic-write coin outcome — the
    violation message, and the full event trace for human reading.

    Replay is deterministic: [run_path] follows the stored choices, so
    the artifact reproduces the identical execution on every machine
    and commit where the protocol's operation sequence is unchanged,
    and degrades gracefully (choices clamp to 0) where it is not —
    that is what lets a fixture recorded against a buggy test double
    also be replayed against the fixed protocol as a regression test.

    Fixture files live in [test/fixtures/]; [conrat check] writes
    [<checker>.counterexample.sexp] on failure and [--replay FILE]
    re-runs one. *)

type t = {
  checker : string;            (** named {!Checks} config, or a label *)
  n : int;
  inputs : int array;
  max_depth : int;
  cheap_collect : bool;
  faults : Conrat_sim.Fault.model;
    (** fault model the path was recorded under — it fixes the path
        encoding.  Serialized only when not {!Conrat_sim.Fault.none},
        so fault-free artifacts keep the pre-fault byte format. *)
  path : int list;             (** branch choices incl. coin outcomes *)
  reason : string;             (** checker message when recorded *)
  trace : Conrat_sim.Trace.t option;  (** the witness execution, for humans *)
}

val schema_version : int

val to_sexp : t -> Conrat_sim.Sexp.t
val of_sexp : Conrat_sim.Sexp.t -> (t, string) result

val save : string -> t -> unit
val load : string -> (t, string) result

val replay :
  ?engine:Conrat_sim.Machine.engine ->
  setup:(unit -> Conrat_sim.Memory.t * (pid:int -> 'r Conrat_sim.Program.t)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  t ->
  (unit, string) result
(** Re-run the stored schedule against [setup] and return the checker's
    verdict: [Error reason] means the violation reproduced.  [engine]
    selects the program engine (default the compiled VM); replays are
    bit-identical under either. *)

val of_failure :
  checker:string ->
  n:int ->
  inputs:int array ->
  max_depth:int ->
  cheap_collect:bool ->
  ?faults:Conrat_sim.Fault.model ->
  setup:(unit -> Conrat_sim.Memory.t * (pid:int -> 'r Conrat_sim.Program.t)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  int list ->
  t
(** Build an artifact from a failing path: replays it once with trace
    recording to capture the reason and witness.  Raises
    [Invalid_argument] if the path does not actually fail. *)
