type prob = float

type 'a t =
  | Read : Memory.loc -> int option t
  | Write : Memory.loc * int -> unit t
  | Prob_write : Memory.loc * int * prob -> unit t
  | Prob_write_detect : Memory.loc * int * prob -> bool t
  | Collect : Memory.loc * int -> int option array t

type any = Any : 'a t -> any

type kind = Read_op | Write_op | Prob_write_op | Collect_op

let kind (Any op) =
  match op with
  | Read _ -> Read_op
  | Write _ -> Write_op
  | Prob_write _ -> Prob_write_op
  | Prob_write_detect _ -> Prob_write_op
  | Collect _ -> Collect_op

let loc (Any op) =
  match op with
  | Read l -> l
  | Write (l, _) -> l
  | Prob_write (l, _, _) -> l
  | Prob_write_detect (l, _, _) -> l
  | Collect (l, _) -> l

let value (Any op) =
  match op with
  | Read _ -> None
  | Write (_, v) -> Some v
  | Prob_write (_, v, _) -> Some v
  | Prob_write_detect (_, v, _) -> Some v
  | Collect _ -> None

let prob (Any op) =
  match op with
  | Read _ | Write _ | Collect _ -> None
  | Prob_write (_, _, p) -> Some p
  | Prob_write_detect (_, _, p) -> Some p

let is_write any =
  match kind any with
  | Write_op | Prob_write_op -> true
  | Read_op | Collect_op -> false

let to_sexp (Any op) =
  let open Sexp in
  match op with
  | Read l -> List [ Atom "read"; of_int l ]
  | Write (l, v) -> List [ Atom "write"; of_int l; of_int v ]
  | Prob_write (l, v, p) -> List [ Atom "prob-write"; of_int l; of_int v; of_float p ]
  | Prob_write_detect (l, v, p) ->
    List [ Atom "prob-write-detect"; of_int l; of_int v; of_float p ]
  | Collect (l, len) -> List [ Atom "collect"; of_int l; of_int len ]

let of_sexp sexp =
  let open Sexp in
  let err () = Error (Printf.sprintf "Op.of_sexp: bad operation %s" (to_string sexp)) in
  match sexp with
  | List [ Atom "read"; l ] ->
    (match to_int l with Some l -> Ok (Any (Read l)) | None -> err ())
  | List [ Atom "write"; l; v ] ->
    (match (to_int l, to_int v) with
     | Some l, Some v -> Ok (Any (Write (l, v)))
     | _ -> err ())
  | List [ Atom "prob-write"; l; v; p ] ->
    (match (to_int l, to_int v, to_float p) with
     | Some l, Some v, Some p -> Ok (Any (Prob_write (l, v, p)))
     | _ -> err ())
  | List [ Atom "prob-write-detect"; l; v; p ] ->
    (match (to_int l, to_int v, to_float p) with
     | Some l, Some v, Some p -> Ok (Any (Prob_write_detect (l, v, p)))
     | _ -> err ())
  | List [ Atom "collect"; l; len ] ->
    (match (to_int l, to_int len) with
     | Some l, Some len -> Ok (Any (Collect (l, len)))
     | _ -> err ())
  | _ -> err ()

let pp ppf (Any op) =
  match op with
  | Read l -> Format.fprintf ppf "read[%d]" l
  | Write (l, v) -> Format.fprintf ppf "write[%d]<-%d" l v
  | Prob_write (l, v, p) -> Format.fprintf ppf "pwrite[%d]<-%d@@%.3g" l v p
  | Prob_write_detect (l, v, p) -> Format.fprintf ppf "pwrite?[%d]<-%d@@%.3g" l v p
  | Collect (l, n) -> Format.fprintf ppf "collect[%d..%d]" l (l + n - 1)
