(** Minimal s-expressions, used to serialize traces and counterexample
    artifacts (see {!Trace} and [Conrat_verify.Artifact]) without adding
    a library dependency.

    Atoms containing whitespace, parens, quotes, semicolons or
    backslashes are printed quoted with [String.escaped]-style escapes;
    the parser accepts quoted atoms, bare atoms, and [;]-to-end-of-line
    comments. *)

type t =
  | Atom of string
  | List of t list

val atom : string -> t
val of_int : int -> t
val of_bool : bool -> t
val of_float : float -> t
(** Printed as [%.17g], so every float round-trips exactly. *)

val to_int : t -> int option
val to_bool : t -> bool option
val to_float : t -> float option
val to_atom : t -> string option

val assoc : string -> t -> t list option
(** [assoc name (List [...; List (Atom name :: args); ...])] returns the
    [args] of the first field labelled [name] in a record-style list. *)

val assoc1 : string -> t -> t option
(** Like {!assoc} but requires exactly one argument. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses exactly one s-expression (plus surrounding whitespace and
    comments); anything else is an [Error] with an offset message. *)
