(** The fault plane's core vocabulary.

    A {!model} says which faults a whole verification run may contain —
    a crash-stop budget and whether registers are weak (regular rather
    than atomic).  Models ride along in checker configs and
    counterexample artifacts, so a fault-found violation replays under
    the same fault class it was found in.

    A {!plan} is the Monte-Carlo side: a stateful injector consulted by
    {!Scheduler.run} once per step, which may override the adversary's
    choice with a crash or a stale read delivery.  Plan combinators
    (crash budgets, byzantine read rates, mixes) live in the
    [Conrat_faults] library; this module defines only the types the
    machine-level drivers need. *)

type model = {
  crashes : int;      (** max crash-stop events per execution (f) *)
  weak_reads : bool;  (** registers are regular: reads may return the
                          pre-write ("stale") value *)
}

val none : model
(** The failure-free atomic model — behaviour is bit-identical to a
    build without the fault plane. *)

val is_none : model -> bool

val crash_only : int -> model
(** [crash_only f] allows up to [f] crash-stops, atomic registers. *)

val model : ?crashes:int -> ?weak_reads:bool -> unit -> model

val to_string : model -> string
(** ["none"], ["crash:f=2"], ["weak"], ["crash:f=1,weak"] — the CLI's
    [--faults] syntax.  Inverse of {!of_string}. *)

val of_string : string -> (model, string) result
(** Parse a [--faults] spec: comma-separated [crash:f=K] and [weak]
    parts in any order; [""] and ["none"] mean {!none}. *)

val to_sexp : model -> Sexp.t
val of_sexp : Sexp.t -> (model, string) result
(** Serialization as [(faults (crashes K) (weak-reads B))] — the
    fault-model field of counterexample artifacts. *)

val pp : Format.formatter -> model -> unit

(** {1 Injection plans for the Monte-Carlo scheduler} *)

type action =
  | Step of int   (** schedule normally (payload ignored by the scheduler) *)
  | Crash of int  (** crash-stop this (enabled) process instead *)
  | Stale of int  (** deliver the chosen process's pending read stale;
                      honoured only when that operation is a read on a
                      register marked weak *)

type plan = {
  plan_name : string;
  plan_fresh : n:int -> Rng.t -> (View.full -> chosen:int -> action);
      (** Like {!Adversary.t}: [plan_fresh ~n rng] returns a stateful
          per-execution injector.  It is called after the adversary's
          choice [chosen] has been validated against the enabled set;
          invalid overrides degrade to [Step chosen]. *)
}

val no_plan : plan
(** Always [Step chosen] — identical to running without a plan. *)
