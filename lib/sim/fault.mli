(** The fault plane's core vocabulary.

    A {!model} says which faults a whole verification run may contain —
    a crash-stop budget, a crash-{e recovery} budget (restarts of
    crashed processes with volatile state lost), and whether registers
    are weak (regular rather than atomic).  Models ride along in
    checker configs and counterexample artifacts, so a fault-found
    violation replays under the same fault class it was found in.

    A {!plan} is the Monte-Carlo side: a stateful injector consulted by
    {!Scheduler.run} once per step, which may override the adversary's
    choice with a crash, a stale read delivery, or a restart.  Plan
    combinators (crash budgets, byzantine read rates, restart delays,
    mixes) live in the [Conrat_faults] library; this module defines
    only the types the machine-level drivers need. *)

type model = {
  crashes : int;      (** max crash events per execution (f) *)
  recoveries : int;   (** max recovery (restart) events per execution
                          (r); a crashed process that recovers loses
                          the registers it last wrote unless they are
                          marked persistent, and re-enters the protocol
                          at its recover continuation *)
  weak_reads : bool;  (** registers are regular: reads may return the
                          pre-write ("stale") value *)
}

val none : model
(** The failure-free atomic model — behaviour is bit-identical to a
    build without the fault plane. *)

val is_none : model -> bool

val crash_only : int -> model
(** [crash_only f] allows up to [f] crash-stops, no recoveries, atomic
    registers. *)

val model : ?crashes:int -> ?recoveries:int -> ?weak_reads:bool -> unit -> model
(** Raises [Invalid_argument] on a negative budget or on
    [recoveries > 0] with [crashes = 0] (nothing could ever be down to
    restart). *)

val to_string : model -> string
(** ["none"], ["crash:f=2"], ["weak"], ["crash:f=1,recover:r=1"] — the
    CLI's [--faults] syntax.  Inverse of {!of_string}; recovery-free
    models render exactly as they did before the recovery plane. *)

val of_string : string -> (model, string) result
(** Parse a [--faults] spec: comma-separated [crash:f=K], [weak],
    [recover:r=R] and bare [recover] (meaning r = f) parts in any
    order; [""] and ["none"] mean {!none}.  [recover] without a crash
    budget is rejected with a message naming the contradiction. *)

val to_sexp : model -> Sexp.t
val of_sexp : Sexp.t -> (model, string) result
(** Serialization as [(faults (crashes K) (recoveries R) (weak-reads
    B))] — the fault-model field of counterexample artifacts.  The
    [recoveries] field is emitted only when non-zero and defaults to 0
    on read, so pre-recovery artifacts keep their exact bytes and still
    parse. *)

val pp : Format.formatter -> model -> unit

(** {1 Injection plans for the Monte-Carlo scheduler} *)

type action =
  | Step of int   (** schedule normally (payload ignored by the scheduler) *)
  | Crash of int  (** crash-stop this (enabled) process instead *)
  | Stale of int  (** deliver the chosen process's pending read stale;
                      honoured only when that operation is a read on a
                      register marked weak *)
  | Recover of int
      (** restart this (crashed) process: volatile registers it last
          wrote are wiped, persistent ones survive, and it re-enters
          the protocol at its recover continuation *)

type plan = {
  plan_name : string;
  plan_fresh : n:int -> Rng.t -> (View.full -> chosen:int -> action);
      (** Like {!Adversary.t}: [plan_fresh ~n rng] returns a stateful
          per-execution injector.  It is called after the adversary's
          choice [chosen] has been validated against the enabled set;
          invalid overrides degrade to [Step chosen] (and are counted
          by the scheduler — see [Scheduler.result]). *)
}

val no_plan : plan
(** Always [Step chosen] — identical to running without a plan. *)
