(** Execution traces.

    A trace records, per scheduler step, which process moved, what
    operation it executed, and what the operation observed or did.
    Traces support the determinism tests (same seed ⇒ identical trace)
    and let the {!Spec} checkers reason about whole executions. *)

type event = {
  step : int;            (** 0-based position in the execution *)
  pid : int;             (** the process the adversary scheduled *)
  op : Op.any option;    (** the operation it executed; [None] = a fault
                             pseudo-event — crash-stop ([landed = false])
                             or crash-recovery ([landed = true]) *)
  landed : bool;         (** probabilistic writes: did memory change; weak
                             reads: was the stale value delivered; fault
                             pseudo-events: recover vs crash *)
  observed : int option; (** for reads: the value returned *)
}

type t

val create : unit -> t
val add : t -> event -> unit
val length : t -> int
val events : t -> event list
(** Events in execution order. *)

val get : t -> int -> event

val equal : t -> t -> bool
(** Structural equality of whole traces (used by determinism tests). *)

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result
(** Serialization as a list of [(step pid op landed observed)] events
    (crash-stop and crash-recovery events serialize as the shorter
    [(step pid crash)] / [(step pid recover)]) —
    the schedule half of a counterexample artifact.  Round-trips
    exactly: [of_sexp (to_sexp t)] is {!equal} to [t]. *)

val event_to_sexp : event -> Sexp.t
val event_of_sexp : Sexp.t -> (event, string) result

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
