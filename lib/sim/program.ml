type 'r t =
  | Done of 'r
  | Step : 'a Op.t * ('a -> 'r t) -> 'r t
  | Label of string * 'r t
  | Recoverable of { main : 'r t; recover : 'r t }

let return x = Done x

let rec bind p f =
  match p with
  | Done x -> f x
  | Step (op, k) -> Step (op, fun a -> bind (k a) f)
  | Label (s, p) -> Label (s, bind p f)
  (* Sequencing distributes into both branches: whatever runs after the
     protocol (e.g. the checker's output mapping) also runs after a
     restarted attempt, and the declaration stays at the root where the
     engines peel it off. *)
  | Recoverable { main; recover } ->
    Recoverable { main = bind main f; recover = bind recover f }

let map f p = bind p (fun x -> Done (f x))

let ( let* ) = bind
let ( let+ ) p f = map f p

let perform op = Step (op, fun a -> Done a)

let read l = perform (Op.Read l)
let write l v = perform (Op.Write (l, v))
let prob_write l v ~p = perform (Op.Prob_write (l, v, p))
let prob_write_detect l v ~p = perform (Op.Prob_write_detect (l, v, p))
let collect l len = perform (Op.Collect (l, len))

let label s p = Label (s, p)

let recoverable ~recover main = Recoverable { main; recover }

let rec recovery = function
  | Recoverable { recover; _ } -> Some recover
  | Label (_, p) -> recovery p
  | Done _ | Step _ -> None

let rec pending = function
  | Done _ -> None
  | Step (op, _) -> Some (Op.Any op)
  | Label (_, p) -> pending p
  | Recoverable { main; _ } -> pending main

let rec is_done = function
  | Done _ -> true
  | Step _ -> false
  | Label (_, p) -> is_done p
  | Recoverable { main; _ } -> is_done main

let rec result = function
  | Done r -> Some r
  | Step _ -> None
  | Label (_, p) -> result p
  | Recoverable { main; _ } -> result main

(* Monadic iteration helpers for porting loop-shaped protocol code.
   [exists_array] short-circuits like [Array.exists], preserving the
   operation sequences of the original direct-style protocols. *)

let rec iter_list f = function
  | [] -> Done ()
  | x :: rest -> bind (f x) (fun () -> iter_list f rest)

let iter_array f arr =
  let rec go i =
    if i >= Array.length arr then Done () else bind (f arr.(i)) (fun () -> go (i + 1))
  in
  go 0

let exists_array f arr =
  let rec go i =
    if i >= Array.length arr then Done false
    else bind (f arr.(i)) (fun found -> if found then Done true else go (i + 1))
  in
  go 0

let map_array f arr =
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then Done (Array.of_list (List.rev acc))
    else bind (f arr.(i)) (fun x -> go (i + 1) (x :: acc))
  in
  go 0 []
