(** The direct-style API protocol code is written against.

    Protocol implementations (conciliators, ratifiers, baselines) call
    these functions as if they were ordinary shared-memory accesses; each
    call performs an effect that suspends the calling process until the
    adversary schedules it.  This keeps algorithm code within a few
    lines of the paper's pseudocode — compare
    {!Conrat_core.Conciliator.impatient_first_mover} with Procedure
    ImpatientFirstMoverConciliator in §5.2.

    Calling any of these outside of {!Scheduler.run} (or
    {!Explore.explore}) raises [Effect.Unhandled]. *)

type _ Effect.t += Step : 'a Op.t -> 'a Effect.t

val read : Memory.loc -> int option
(** Atomic read; ⊥ is [None]. One unit of work. *)

val write : Memory.loc -> int -> unit
(** Atomic write. One unit of work. *)

val prob_write : Memory.loc -> int -> p:float -> unit
(** Probabilistic write: lands with probability [p]; the caller learns
    nothing about the outcome.  One unit of work either way. *)

val prob_write_detect : Memory.loc -> int -> p:float -> bool
(** Probabilistic write that reports whether it landed (paper footnote
    2).  One unit of work. *)

val collect : Memory.loc -> int -> int option array
(** Read [len] consecutive registers in one unit of work.  Only legal
    when the scheduler runs with [~cheap_collect:true]. *)

val exec : 'r Program.t -> 'r
(** Run a defunctionalized {!Program.t} in direct style: each of its
    operations is performed as an effect, exactly as the [read]/[write]
    calls above.  This is the bridge that lets direct-style code (the
    [examples/], {!Scheduler.run_direct} bodies) call protocols that
    are now written as programs — and the hinge of the equivalence
    test: a program run natively by {!Machine} and the same program run
    through [exec] under the effects adapter must produce identical
    traces. *)
