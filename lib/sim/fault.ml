(* The fault plane's core vocabulary: which faults an execution may
   contain (the [model], carried by checker configs and artifacts) and
   what a fault injector may do to one scheduling step (the [action] /
   [plan], used by the Monte-Carlo scheduler).  Combinators that build
   interesting plans live in [Conrat_faults]; this module only defines
   the types the machine-level drivers need. *)

type model = {
  crashes : int;
  recoveries : int;
  weak_reads : bool;
}

let none = { crashes = 0; recoveries = 0; weak_reads = false }

let is_none m = m.crashes = 0 && m.recoveries = 0 && not m.weak_reads

let crash_only f =
  if f < 0 then invalid_arg "Fault.crash_only: negative budget";
  { crashes = f; recoveries = 0; weak_reads = false }

let model ?(crashes = 0) ?(recoveries = 0) ?(weak_reads = false) () =
  if crashes < 0 then invalid_arg "Fault.model: negative crash budget";
  if recoveries < 0 then invalid_arg "Fault.model: negative recovery budget";
  if recoveries > 0 && crashes = 0 then
    invalid_arg "Fault.model: recovery budget without a crash budget";
  { crashes; recoveries; weak_reads }

let to_string m =
  if is_none m then "none"
  else
    String.concat ","
      ((if m.crashes > 0 then [ Printf.sprintf "crash:f=%d" m.crashes ] else [])
       @ (if m.recoveries > 0 then [ Printf.sprintf "recover:r=%d" m.recoveries ]
          else [])
       @ (if m.weak_reads then [ "weak" ] else []))

(* Accepted spec grammar (the CLI's --faults argument):
     none | crash:f=K | weak | recover | recover:r=R
   — comma-separated parts in any order.  Bare [recover] resolves to
   r = f once all parts are parsed; [recover] without a crash budget is
   contradictory (nothing can ever be down to restart) and is rejected
   with a spec-specific message rather than the generic one. *)
let of_string s =
  let err () =
    Error
      (Printf.sprintf "bad fault spec %S (try crash:f=2,weak or crash:f=1,recover)" s)
  in
  match String.trim s with
  | "" | "none" -> Ok none
  | s ->
    let parts = String.split_on_char ',' s in
    (* recover_req: None = no recover part seen; Some None = bare
       [recover] (budget defaults to f); Some (Some r) = recover:r=R. *)
    let rec go acc recover_req = function
      | [] ->
        (match recover_req with
         | None -> Ok acc
         | Some req ->
           if acc.crashes = 0 then
             Error
               (Printf.sprintf
                  "bad fault spec %S: recover needs a crash budget (add crash:f=K)" s)
           else
             let r = match req with None -> acc.crashes | Some r -> r in
             Ok { acc with recoveries = r })
      | part :: rest ->
        (match String.trim part with
         | "weak" -> go { acc with weak_reads = true } recover_req rest
         | "recover" -> go acc (Some None) rest
         | part ->
           let with_prefix prefix k =
             let pl = String.length prefix in
             if String.length part > pl && String.sub part 0 pl = prefix then
               Some (k (String.sub part pl (String.length part - pl)))
             else None
           in
           let parsed =
             match with_prefix "crash:f=" (fun v -> `Crash v) with
             | Some _ as p -> p
             | None -> with_prefix "recover:r=" (fun v -> `Recover v)
           in
           (match parsed with
            | Some (`Crash v) ->
              (match int_of_string_opt v with
               | Some f when f >= 0 -> go { acc with crashes = f } recover_req rest
               | Some _ | None -> err ())
            | Some (`Recover v) ->
              (match int_of_string_opt v with
               | Some r when r >= 0 -> go acc (Some (Some r)) rest
               | Some _ | None -> err ())
            | None -> err ()))
    in
    go none None parts

let to_sexp m =
  Sexp.List
    ([ Sexp.Atom "faults";
       Sexp.List [ Sexp.Atom "crashes"; Sexp.of_int m.crashes ] ]
     (* Emitted only when non-zero so recovery-free models — including
        every pre-existing artifact — keep their exact bytes. *)
     @ (if m.recoveries > 0 then
          [ Sexp.List [ Sexp.Atom "recoveries"; Sexp.of_int m.recoveries ] ]
        else [])
     @ [ Sexp.List [ Sexp.Atom "weak-reads"; Sexp.of_bool m.weak_reads ] ])

let of_sexp sexp =
  match sexp with
  | Sexp.List (Sexp.Atom "faults" :: _) ->
    let field name decode =
      match Sexp.assoc1 name sexp with
      | Some v -> decode v
      | None -> None
    in
    let recoveries =
      (* Absent in every pre-recovery artifact: default 0. *)
      match Sexp.assoc1 "recoveries" sexp with
      | None -> Some 0
      | Some v -> Sexp.to_int v
    in
    (match
       (field "crashes" Sexp.to_int, recoveries, field "weak-reads" Sexp.to_bool)
     with
     | Some crashes, Some recoveries, Some weak_reads
       when crashes >= 0 && recoveries >= 0
            && not (recoveries > 0 && crashes = 0) ->
       Ok { crashes; recoveries; weak_reads }
     | _ -> Error "Fault.of_sexp: bad faults record")
  | _ -> Error "Fault.of_sexp: expected (faults ...)"

let pp ppf m = Format.pp_print_string ppf (to_string m)

(* ------------------------------------------------------------------ *)
(* Injection plans for the Monte-Carlo scheduler                       *)
(* ------------------------------------------------------------------ *)

(* The plan sees the adversary's choice and may override it: schedule
   it normally, crash-stop a process instead, deliver the chosen
   process's pending read stale (only meaningful on a weak register —
   the scheduler silently downgrades [Stale] to [Step] otherwise), or
   restart a crashed process. *)
type action =
  | Step of int
  | Crash of int
  | Stale of int
  | Recover of int

type plan = {
  plan_name : string;
  plan_fresh : n:int -> Rng.t -> (View.full -> chosen:int -> action);
}

let no_plan =
  { plan_name = "none"; plan_fresh = (fun ~n:_ _rng _view ~chosen -> Step chosen) }
