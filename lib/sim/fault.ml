(* The fault plane's core vocabulary: which faults an execution may
   contain (the [model], carried by checker configs and artifacts) and
   what a fault injector may do to one scheduling step (the [action] /
   [plan], used by the Monte-Carlo scheduler).  Combinators that build
   interesting plans live in [Conrat_faults]; this module only defines
   the types the machine-level drivers need. *)

type model = {
  crashes : int;
  weak_reads : bool;
}

let none = { crashes = 0; weak_reads = false }

let is_none m = m.crashes = 0 && not m.weak_reads

let crash_only f =
  if f < 0 then invalid_arg "Fault.crash_only: negative budget";
  { crashes = f; weak_reads = false }

let model ?(crashes = 0) ?(weak_reads = false) () =
  if crashes < 0 then invalid_arg "Fault.model: negative crash budget";
  { crashes; weak_reads }

let to_string m =
  if is_none m then "none"
  else
    String.concat ","
      ((if m.crashes > 0 then [ Printf.sprintf "crash:f=%d" m.crashes ] else [])
       @ (if m.weak_reads then [ "weak" ] else []))

(* Accepted spec grammar (the CLI's --faults argument):
     none | crash:f=K | weak | crash:f=K,weak   (parts in any order) *)
let of_string s =
  let err () = Error (Printf.sprintf "bad fault spec %S (try crash:f=2,weak)" s) in
  match String.trim s with
  | "" | "none" -> Ok none
  | s ->
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok acc
      | part :: rest ->
        (match String.trim part with
         | "weak" -> go { acc with weak_reads = true } rest
         | part ->
           let prefix = "crash:f=" in
           let pl = String.length prefix in
           if String.length part > pl && String.sub part 0 pl = prefix then
             match int_of_string_opt (String.sub part pl (String.length part - pl)) with
             | Some f when f >= 0 -> go { acc with crashes = f } rest
             | Some _ | None -> err ()
           else err ())
    in
    go none parts

let to_sexp m =
  Sexp.List
    [ Sexp.Atom "faults";
      Sexp.List [ Sexp.Atom "crashes"; Sexp.of_int m.crashes ];
      Sexp.List [ Sexp.Atom "weak-reads"; Sexp.of_bool m.weak_reads ] ]

let of_sexp sexp =
  match sexp with
  | Sexp.List (Sexp.Atom "faults" :: _) ->
    let field name decode =
      match Sexp.assoc1 name sexp with
      | Some v -> decode v
      | None -> None
    in
    (match (field "crashes" Sexp.to_int, field "weak-reads" Sexp.to_bool) with
     | Some crashes, Some weak_reads when crashes >= 0 -> Ok { crashes; weak_reads }
     | _ -> Error "Fault.of_sexp: bad faults record")
  | _ -> Error "Fault.of_sexp: expected (faults ...)"

let pp ppf m = Format.pp_print_string ppf (to_string m)

(* ------------------------------------------------------------------ *)
(* Injection plans for the Monte-Carlo scheduler                       *)
(* ------------------------------------------------------------------ *)

(* The plan sees the adversary's choice and may override it: schedule
   it normally, crash-stop a process instead, or deliver the chosen
   process's pending read stale (only meaningful on a weak register —
   the scheduler silently downgrades [Stale] to [Step] otherwise). *)
type action =
  | Step of int
  | Crash of int
  | Stale of int

type plan = {
  plan_name : string;
  plan_fresh : n:int -> Rng.t -> (View.full -> chosen:int -> action);
}

let no_plan =
  { plan_name = "none"; plan_fresh = (fun ~n:_ _rng _view ~chosen -> Step chosen) }
