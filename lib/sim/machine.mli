(** The single small-step transition façade.

    A machine holds the complete state of one execution: the per-process
    program state, the shared {!Memory.t}, and the step count.
    One transition = a scheduling choice (which enabled process moves)
    × a coin choice (did a probabilistic write land).  Every execution
    engine in the repo — the Monte Carlo {!Scheduler}, the exhaustive
    {!Explore} enumerator, and the POR engine in [Conrat_verify] — is a
    driver over this module, so the operation-application semantics
    lives in exactly one place.

    Two interchangeable program engines sit behind the façade: the
    default [`Vm] compiles each program once into flat instruction code
    (see {!Code} / {!Vm}) and steps through integer dispatch tables
    with zero per-step allocation; [`Tree] is the historical direct
    interpreter over {!Program.t} values, kept as the
    differential-testing oracle.  Both produce identical traces, sink
    events, metrics, leaf orders and outcome sets.

    A machine state can be {!snapshot}ed and later {!restore}d; under
    the VM a snapshot is [n] integers plus an O(1) memory delta mark,
    so backtracking costs O(changes undone) rather than O(|memory| +
    n).  [restore] also rolls back registers allocated since the
    snapshot (see {!Memory.restore_backup}). *)

exception Collect_disallowed
(** Raised when a program performs a collect but the machine was not
    created with [~cheap_collect:true]. *)

exception Stuck of string
(** Raised when a finished process is scheduled — an engine bug, not a
    protocol property. *)

type engine = [ `Vm | `Tree ]
(** The program engine driving a machine: the compiled flat-instruction
    VM (default) or the tree-walking oracle interpreter. *)

type 'r t

val create :
  ?engine:engine ->
  ?cheap_collect:bool ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  ?sink:Sink.t ->
  n:int ->
  memory:Memory.t ->
  (pid:int -> 'r Program.t) ->
  'r t
(** [create ~n ~memory body] builds the initial state with [body ~pid]
    as each process's program.  Bodies are evaluated in pid order (any
    pure prefix, including register allocation, runs here).  When
    [metrics] / [trace] are given, every transition is recorded into
    them.  When [sink] is given, every transition, decision, snapshot
    and restore is reported to it; without one the instrumentation
    costs a single branch per transition.  [engine] selects the program
    engine (default [`Vm]). *)

val n : 'r t -> int
val memory : 'r t -> Memory.t

val engine : 'r t -> engine
(** Which program engine this machine runs on. *)

val enabled : 'r t -> int array
(** Enabled pids, ascending.  The returned array is the machine's own
    (rebuilt only when a process finishes); callers that mutate the
    machine while iterating must copy it first. *)

val unsafe_pending : 'r t -> Op.any option array
(** The live per-pid pending-operation descriptors (shared, not a
    copy) — the adversary view's [pending] field. *)

val pending_op : 'r t -> int -> Op.any option

val stage : 'r t -> int -> string option
(** The innermost {!Program.label} stage [pid] is currently executing
    in, if any — maintained as labels are peeled off advancing
    programs, and rolled back by {!restore}. *)

val steps : 'r t -> int
(** Transitions applied on the current path (restored by {!restore}). *)

val total_steps : 'r t -> int
(** Transitions ever applied, including along backtracked branches —
    the explorer's work measure.  Not affected by {!restore}. *)

val running : 'r t -> bool
val outputs : 'r t -> 'r option array
val output : 'r t -> int -> 'r option

val outputs_into : 'r t -> 'r option array -> unit
(** Fill a caller-owned buffer of length [n] with the current outputs —
    the explorers' per-leaf path, which reuses one buffer across
    millions of leaves instead of allocating {!outputs} each time.
    Raises [Invalid_argument] on a length mismatch. *)

val crashes : 'r t -> int
(** Number of crash events so far on the current path (restored by
    {!restore}).  Not decremented by {!recover} — it counts events
    against the crash budget, not currently-down processes. *)

val recovers : 'r t -> int
(** Number of recovery events so far on the current path (restored by
    {!restore}). *)

val is_crashed : 'r t -> int -> bool

val classify : 'r t -> int -> [ `Running | `Decided | `Crashed ]
(** What a pid's [None] output means at a leaf: still running (pending
    operation, truncated execution), decided (program returned), or
    crash-stopped.  Lets checkers excuse crashed processes from
    completion-conditional properties without excusing live ones. *)

val coin_class : 'r t -> int -> int
(** Branching class of [pid]'s pending operation, as a nonallocating
    int: 0 = forced miss, 1 = forced landed, 2 = coin ([0 < p < 1],
    choice 0 = landed), 3 = weak-register read (choice 0 = fresh).
    The same classification as [Explore.coin_of_op]; cached per pc
    under the VM engine.  Raises {!Stuck} on a finished process under
    the tree engine. *)

val supports_state_hash : 'r t -> bool
(** Whether {!state_hash} is available — true exactly for the VM
    engine, whose interned program counters give each program state a
    canonical encoding.  Tree program states are closures and have
    none; that engine exists as the differential oracle, not for
    hashed exploration. *)

val state_hash : 'r t -> int * int
(** Two independent 63-bit hashes of the machine's semantic state: the
    pc file, the memory (cells plus weak-register stale shadows, see
    {!Memory.hash_fold}) and the crashed set.  Machines of one
    exploration in semantically equal states — equal pending
    operations, outputs, memory views and crash status for every
    process — hash equal; step counters are work measures, not state,
    and do not participate.  The explorers' duplicate-detection key
    ([Conrat_verify.Por] dedup).  Raises [Invalid_argument] under the
    tree engine; gate on {!supports_state_hash}. *)

val step_forced : 'r t -> pid:int -> landed:bool -> unit
(** Apply [pid]'s pending operation with the coin outcome already
    decided.  For reads, [landed = true] delivers the stale (pre-write)
    value of a weak register — callers must only do this on registers
    marked weak (see {!Memory.mark_weak}); pass [false] for an atomic
    read.  For other deterministic operations [landed] is ignored for
    the memory effect but recorded in the trace; pass [Op.is_write]. *)

val crash : 'r t -> pid:int -> unit
(** Crash-stop [pid]: it permanently leaves the enabled set without
    executing its pending operation; its writes so far remain visible.
    Counts as one step; records a crash trace event and fires the
    sink's [on_crash].  Raises {!Stuck} if [pid] already finished or
    crashed.  Undone by {!restore} like any other transition. *)

val recover : 'r t -> pid:int -> unit
(** Restart a crashed [pid]: its volatile registers — those it last
    wrote and did not {!Memory.mark_persistent} — are wiped back to ⊥
    ({!Memory.wipe_volatile}; requires {!Memory.track_writers} to have
    been engaged at setup), its program state re-enters the protocol's
    recover continuation (or the main root when the protocol declared
    none — see {!Program.Recoverable}), and it rejoins the enabled set.
    Counts as one step; records a [(step pid recover)] trace event and
    fires the sink's [on_recover].  Raises {!Stuck} unless [pid] is
    currently crashed.  Undone by {!restore} like any other
    transition. *)

val step_random : 'r t -> pid:int -> coin:Rng.t -> unit
(** Apply [pid]'s pending operation, drawing the coin for a
    probabilistic write from [coin] (one [Rng.bernoulli] draw per
    probabilistic write, matching the scheduler's historical stream
    layout). *)

type 'r snapshot

val snapshot : 'r t -> 'r snapshot
(** Capture the machine state.  Under the VM engine this is [n]
    program-counter integers plus an O(1) memory journal mark; under
    the tree engine it is the historical O(|memory| + n) copy of the
    program, pending and stage arrays. *)

val snapshot_into : 'r t -> 'r snapshot -> unit
(** Refresh an existing snapshot of this machine in place —
    semantically {!snapshot} (including the sink event), minus the
    allocations.  The explorers pool one snapshot per DFS nesting
    level and refresh it when a sibling branch point reuses the level;
    the refreshed snapshot obeys the same LIFO discipline as a fresh
    one.  Raises [Invalid_argument] if the snapshot came from the
    other engine. *)

val restore : 'r t -> 'r snapshot -> unit
(** Return the machine to a snapshotted state.  The snapshot must have
    been taken on this machine, and restores must follow the
    explorers' LIFO discipline (see {!Memory.restore_backup}) — which
    depth-first snapshot-and-backtrack search satisfies by
    construction. *)
