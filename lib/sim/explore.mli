(** Exhaustive execution exploration — a miniature model checker.

    While {!Scheduler.run} samples one execution per seed, [explore]
    enumerates {e every} execution of a protocol on a small instance:
    every interleaving the adversary could choose, and both outcomes of
    every probabilistic write with probability strictly between 0
    and 1.  Safety properties checked over this tree are therefore
    {e proved} for that instance, not merely tested.

    Both entry points are drivers over {!Machine}.  [run_path] executes
    one deterministically-chosen path (the replay core used by
    counterexample artifacts and the shrinker).  [explore] walks the
    whole tree {e statefully}: programs are copyable values, so each
    branch point snapshots the machine once and backtracking restores
    it in O(|memory| + n) — no re-execution of path prefixes.  The
    historical re-execution enumerator survives as
    [Conrat_verify.Naive], which visits the same leaves in the same
    order (the cross-check suite relies on that).  The sleep-set
    partial-order-reduced explorer is [Conrat_verify.Por].

    This only covers protocols whose randomness consists entirely of
    probabilistic writes (true for the ratifier, which is deterministic,
    for the impatient conciliator, and for the bounded-space fallback);
    local-coin draws inside protocol code are not branched, so protocols
    using {!Rng} directly get only the schedule explored.  Protocol
    programs must also be replay-pure (see {!Program}): [setup] is
    called once and continuations are re-entered when backtracking.

    Executions can be unbounded (an adversary can livelock a conciliator
    with vanishing probability), so paths are cut off at [max_depth] and
    the [check] callback is told whether the execution was complete;
    safety properties are prefix-closed and should be checked on
    truncated executions too. *)

type stats = {
  complete : int;       (** complete executions explored *)
  truncated : int;      (** paths cut off at [max_depth] *)
  exhausted : bool;     (** the whole tree fit within [max_runs] *)
  steps : int;          (** machine transitions applied in total *)
}

type 'r run = {
  outputs : 'r option array;      (** per-process results; [None] = unfinished *)
  completed : bool;               (** no process still runnable within [max_depth] *)
  crashed : bool array;           (** which pids crash-stopped on this path *)
  branches : (int * int) list;    (** (chosen, arity) at each branch point met *)
  trace : Trace.t option;         (** present iff [record] was set *)
  steps : int;                    (** operations executed on this path *)
}

val crashed_pids : 'r Machine.t -> n:int -> int array
(** The currently crash-stopped pids, ascending — the candidate set for
    a recovery choice.  Shared with the POR engine so both enumerate
    recover candidates identically. *)

val coin_of_op : memory:Memory.t -> Op.any -> [ `Det of bool | `Coin | `Weak ]
(** The explorer's branching convention for a pending operation:
    probabilistic writes with [0 < p < 1] branch on the coin ([`Coin],
    choice 0 = landed); reads on registers marked weak branch on
    freshness ([`Weak], choice 0 = fresh, choice 1 = stale); degenerate
    probabilities and other deterministic operations have a forced
    coin.  Shared with the POR engine so both classify identically. *)

val run_path :
  ?engine:Machine.engine ->
  ?record:bool ->
  ?max_depth:int ->
  ?cheap_collect:bool ->
  ?faults:Fault.model ->
  ?sink:Sink.t ->
  n:int ->
  setup:(unit -> Memory.t * (pid:int -> 'r Program.t)) ->
  int list ->
  'r run
(** [run_path ~n ~setup path] deterministically executes the single
    path described by [path]: each element resolves one branch point in
    order — an index into the ascending-pid enabled array at scheduling
    points with ≥ 2 enabled processes, and [0] (landed) / [1] (missed)
    at probabilistic writes with [0 < p < 1] (respectively [0] (fresh)
    / [1] (stale) at weak-register reads).  Choices beyond the end
    of [path] default to 0, and out-of-range choices clamp to 0, so any
    integer list is a valid schedule for any protocol — the basis for
    replayable counterexample artifacts and delta-debugging shrinks.
    Scheduling points with a single enabled process consume no path
    element and are not recorded in [branches].

    When [faults] carries a crash budget f > 0, every scheduling point
    over enabled set [en] has [2·|en|] choices while budget remains:
    indices below [|en|] step the corresponding process, the rest
    crash-stop it (so the all-zeros path remains the failure-free
    canonical execution, and such points always consume a path element
    even with one enabled process).  When it additionally carries a
    recovery budget r > 0, a third band of [m] recovery choices follows
    while that budget remains, one per currently crash-stopped pid in
    ascending order; and when every live process has finished but
    crashed pids remain recoverable, the point becomes a stop-or-recover
    node of arity [1 + m] whose choice 0 ends the execution — keeping
    the all-zeros path canonical and recovery-free trees bit-identical
    to their crash-only form.  [faults.weak_reads] itself has no
    effect here — weakness lives in the registers the setup marked via
    {!Memory.mark_weak} / {!Memory.weaken_all}. *)

val next_path : (int * int) list -> int list option
(** The lexicographically next unexplored path after the given
    [branches] record, or [None] when every branch point has tried its
    last alternative.  With {!run_path} this reconstitutes the
    historical re-execution enumerator (see [Conrat_verify.Naive]). *)

val next_path_from : lo:int -> (int * int) list -> int list option
(** Like {!next_path}, but branch points at positions [< lo] (from the
    root) are pinned and never bumped: the enumeration covers exactly
    the subtree sharing the record's first [lo] choices and returns
    [None] when that subtree is exhausted.  [next_path] is
    [next_path_from ~lo:0].  This is the unit of sharded naive
    enumeration (see [Conrat_verify.Parallel]). *)

val explore :
  ?engine:Machine.engine ->
  ?max_depth:int ->
  ?max_runs:int ->
  ?cheap_collect:bool ->
  ?faults:Fault.model ->
  ?stop:(unit -> bool) ->
  ?sink:Sink.t ->
  ?heartbeat:(runs:int -> steps:int -> depth:int -> unit) ->
  n:int ->
  setup:(unit -> Memory.t * (pid:int -> 'r Program.t)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  unit ->
  (stats, string * stats) result
(** [explore ~n ~setup ~check ()] enumerates executions depth-first,
    statefully: [setup] is called {e once}; the machine is snapshotted
    at branch points and restored when backtracking.  [check] is called
    at the end of every path; the first [Error] aborts the search and
    is returned together with the statistics so far.  At a
    [complete = true] leaf a [None] output means exactly that the
    process crash-stopped (possible only with a crash budget); at a
    truncated leaf it may also mean "still running".  [stop] is polled
    at every leaf; returning [true] ends the search early with
    [exhausted = false] (used for wall-clock budgets).  [sink]
    receives per-transition observability events; [heartbeat] is
    called once per leaf with the running totals ([depth] is the leaf's
    own path length) — rate limiting is the callback's business.
    [faults] widens scheduling points with crash (and, with a recovery
    budget, recover) choices exactly as in {!run_path}, keeping the two
    engines' path encodings aligned.
    [engine] selects the program engine (default the compiled VM); the
    leaf order, statistics and outcome sequence are identical under
    either.  Defaults: [max_depth = 200], [max_runs = 2_000_000],
    [faults = Fault.none]. *)
