(** Exhaustive execution exploration — a miniature model checker.

    While {!Scheduler.run} samples one execution per seed, [explore]
    enumerates {e every} execution of a protocol on a small instance:
    every interleaving the adversary could choose, and both outcomes of
    every probabilistic write with probability strictly between 0
    and 1.  Safety properties checked over this tree are therefore
    {e proved} for that instance, not merely tested.

    This module is the naive (unreduced) enumerator and the shared
    path-execution core.  The full verification subsystem — the
    sleep-set partial-order-reduced explorer, the counterexample
    shrinker, and serializable schedule artifacts — lives in the
    [Conrat_verify] library, which re-exports this module as
    [Conrat_verify.Naive] and uses {!run_path} for deterministic
    replay.

    This only covers protocols whose randomness consists entirely of
    probabilistic writes (true for the ratifier, which is deterministic,
    for the impatient conciliator, and for the bounded-space fallback);
    local-coin draws inside protocol code are not branched, so protocols
    using {!Rng} directly get only the schedule explored.

    Executions can be unbounded (an adversary can livelock a conciliator
    with vanishing probability), so paths are cut off at [max_depth] and
    the [check] callback is told whether the execution was complete;
    safety properties are prefix-closed and should be checked on
    truncated executions too. *)

type stats = {
  complete : int;       (** complete executions explored *)
  truncated : int;      (** paths cut off at [max_depth] *)
  exhausted : bool;     (** the whole tree fit within [max_runs] *)
}

type 'r run = {
  outputs : 'r option array;      (** per-process results; [None] = unfinished *)
  completed : bool;               (** all processes returned within [max_depth] *)
  branches : (int * int) list;    (** (chosen, arity) at each branch point met *)
  trace : Trace.t option;         (** present iff [record] was set *)
}

val run_path :
  ?record:bool ->
  ?max_depth:int ->
  ?cheap_collect:bool ->
  n:int ->
  setup:(unit -> Memory.t * (pid:int -> 'r)) ->
  int list ->
  'r run
(** [run_path ~n ~setup path] deterministically executes the single
    path described by [path]: each element resolves one branch point in
    order — an index into the ascending-pid enabled list at scheduling
    points with ≥ 2 enabled processes, and [0] (landed) / [1] (missed)
    at probabilistic writes with [0 < p < 1].  Choices beyond the end
    of [path] default to 0, and out-of-range choices clamp to 0, so any
    integer list is a valid schedule for any protocol — the basis for
    replayable counterexample artifacts and delta-debugging shrinks.
    Scheduling points with a single enabled process consume no path
    element and are not recorded in [branches]. *)

val explore :
  ?max_depth:int ->
  ?max_runs:int ->
  ?cheap_collect:bool ->
  ?stop:(unit -> bool) ->
  n:int ->
  setup:(unit -> Memory.t * (pid:int -> 'r)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  unit ->
  (stats, string * stats) result
(** [explore ~n ~setup ~check ()] enumerates executions depth-first.
    [setup] must build a fresh memory and protocol instance per call
    (each path re-executes from scratch — continuations are one-shot).
    [check] is called at the end of every path; the first [Error] aborts
    the search and is returned together with the statistics so far.
    [stop] is polled before each execution; returning [true] ends the
    search early with [exhausted = false] (used for wall-clock budgets).
    Defaults: [max_depth = 200], [max_runs = 2_000_000]. *)
