type decision = bool * int

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let mem_input inputs v = Array.exists (fun x -> x = v) inputs

let validity ~inputs ~outputs =
  let bad = ref None in
  Array.iteri
    (fun pid out ->
      match out with
      | Some v when not (mem_input inputs v) ->
        if !bad = None then bad := Some (pid, v)
      | Some _ | None -> ())
    outputs;
  match !bad with
  | None -> Ok ()
  | Some (pid, v) -> errf "validity: p%d output %d, which is nobody's input" pid v

let validity_decided ~inputs ~outputs =
  validity ~inputs ~outputs:(Array.map (Option.map snd) outputs)

let agreement ~outputs =
  let first = ref None in
  let bad = ref None in
  Array.iteri
    (fun pid out ->
      match out, !first with
      | Some v, None -> first := Some (pid, v)
      | Some v, Some (pid0, v0) when v <> v0 ->
        if !bad = None then bad := Some (pid0, v0, pid, v)
      | _ -> ())
    outputs;
  match !bad with
  | None -> Ok ()
  | Some (p0, v0, p1, v1) -> errf "agreement: p%d output %d but p%d output %d" p0 v0 p1 v1

let coherence ~outputs =
  let decided = ref None in
  Array.iteri
    (fun pid out ->
      match out with
      | Some (true, v) when !decided = None -> decided := Some (pid, v)
      | _ -> ())
    outputs;
  match !decided with
  | None -> Ok ()
  | Some (dpid, dv) ->
    let bad = ref None in
    Array.iteri
      (fun pid out ->
        match out with
        | Some (_, v) when v <> dv -> if !bad = None then bad := Some (pid, v)
        | _ -> ())
      outputs;
    (match !bad with
     | None -> Ok ()
     | Some (pid, v) ->
       errf "coherence: p%d decided %d but p%d output value %d" dpid dv pid v)

let acceptance ~inputs ~outputs =
  if Array.length inputs = 0 then Ok ()
  else begin
    let v0 = inputs.(0) in
    if Array.exists (fun v -> v <> v0) inputs then Ok ()
    else begin
      let bad = ref None in
      Array.iteri
        (fun pid out ->
          match out with
          | Some (true, v) when v = v0 -> ()
          | Some (d, v) -> if !bad = None then bad := Some (pid, Some (d, v))
          | None -> if !bad = None then bad := Some (pid, None))
        outputs;
      match !bad with
      | None -> Ok ()
      | Some (pid, Some (d, v)) ->
        errf "acceptance: all inputs %d but p%d output (%b, %d)" v0 pid d v
      | Some (pid, None) ->
        errf "acceptance: all inputs %d but p%d did not finish" v0 pid
    end
  end

(* Crash-robust acceptance: like [acceptance], but a process with no
   output is excused.  At a crash-complete leaf (no process runnable)
   the explorers guarantee [None] outputs are exactly the crashed
   processes, so this is "every survivor accepts" — the strongest form
   of Lemma 3 that survives crash-stop faults, since a crashed process
   cannot be obliged to decide. *)
let acceptance_survivors ~inputs ~outputs =
  if Array.length inputs = 0 then Ok ()
  else begin
    let v0 = inputs.(0) in
    if Array.exists (fun v -> v <> v0) inputs then Ok ()
    else begin
      let bad = ref None in
      Array.iteri
        (fun pid out ->
          match out with
          | Some (true, v) when v = v0 -> ()
          | Some (d, v) -> if !bad = None then bad := Some (pid, (d, v))
          | None -> ())
        outputs;
      match !bad with
      | None -> Ok ()
      | Some (pid, (d, v)) ->
        errf "acceptance: all inputs %d but surviving p%d output (%b, %d)" v0 pid d v
    end
  end

let consensus_execution ~inputs ~outputs ~completed =
  if not completed then Error "termination: execution hit the step bound"
  else
    match agreement ~outputs with
    | Error _ as e -> e
    | Ok () -> validity ~inputs ~outputs

let all results =
  List.fold_left
    (fun acc r -> match acc with Error _ -> acc | Ok () -> r)
    (Ok ()) results
