type decision = bool * int

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

(* Every checker below is a module-level index recursion threading its
   arrays as parameters rather than [Array.iteri] + refs or local
   closures: the exhaustive explorers evaluate these at every leaf of
   multi-million-leaf searches, so the passing path must allocate
   nothing — and a [let rec] nested inside the checker would allocate
   its closure (capturing the arrays) on every call.  Failure paths
   (which build the message) are cold.  Each reports the same violation
   the historical fold did: the first bad process in pid order. *)

let rec mem_input inputs v i =
  i < Array.length inputs && (inputs.(i) = v || mem_input inputs v (i + 1))

let mem_input inputs v = mem_input inputs v 0

let rec validity_scan inputs (outputs : int option array) n pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some v when not (mem_input inputs v) ->
      errf "validity: p%d output %d, which is nobody's input" pid v
    | Some _ | None -> validity_scan inputs outputs n (pid + 1)

let validity ~inputs ~outputs =
  validity_scan inputs outputs (Array.length outputs) 0

let rec validity_decided_scan inputs (outputs : decision option array) n pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some (_, v) when not (mem_input inputs v) ->
      errf "validity: p%d output %d, which is nobody's input" pid v
    | Some _ | None -> validity_decided_scan inputs outputs n (pid + 1)

let validity_decided ~inputs ~outputs =
  validity_decided_scan inputs outputs (Array.length outputs) 0

let rec agreement_against (outputs : int option array) n pid0 v0 pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some v when v <> v0 ->
      errf "agreement: p%d output %d but p%d output %d" pid0 v0 pid v
    | Some _ | None -> agreement_against outputs n pid0 v0 (pid + 1)

let rec agreement_first (outputs : int option array) n pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some v -> agreement_against outputs n pid v (pid + 1)
    | None -> agreement_first outputs n (pid + 1)

let agreement ~outputs = agreement_first outputs (Array.length outputs) 0

(* {!agreement} over deciding-object outputs directly, without
   materializing the value projection — the per-leaf hot path of the
   registry's Deciders_agree checkers. *)
let rec agreement_decided_against (outputs : decision option array) n pid0 v0 pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some (_, v) when v <> v0 ->
      errf "agreement: p%d output %d but p%d output %d" pid0 v0 pid v
    | Some _ | None -> agreement_decided_against outputs n pid0 v0 (pid + 1)

let rec agreement_decided_first (outputs : decision option array) n pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some (_, v) -> agreement_decided_against outputs n pid v (pid + 1)
    | None -> agreement_decided_first outputs n (pid + 1)

let agreement_decided ~outputs =
  agreement_decided_first outputs (Array.length outputs) 0

let rec coherence_against (outputs : decision option array) n dpid dv pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some (_, v) when v <> dv ->
      errf "coherence: p%d decided %d but p%d output value %d" dpid dv pid v
    | Some _ | None -> coherence_against outputs n dpid dv (pid + 1)

let rec coherence_decider (outputs : decision option array) n pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some (true, v) -> coherence_against outputs n pid v 0
    | Some _ | None -> coherence_decider outputs n (pid + 1)

let coherence ~outputs = coherence_decider outputs (Array.length outputs) 0

let rec all_inputs_equal inputs v0 i =
  i >= Array.length inputs || (inputs.(i) = v0 && all_inputs_equal inputs v0 (i + 1))

let rec acceptance_scan (outputs : decision option array) n v0 pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some (true, v) when v = v0 -> acceptance_scan outputs n v0 (pid + 1)
    | Some (d, v) ->
      errf "acceptance: all inputs %d but p%d output (%b, %d)" v0 pid d v
    | None -> errf "acceptance: all inputs %d but p%d did not finish" v0 pid

let acceptance ~inputs ~outputs =
  if Array.length inputs = 0 then Ok ()
  else
    let v0 = inputs.(0) in
    if not (all_inputs_equal inputs v0 1) then Ok ()
    else acceptance_scan outputs (Array.length outputs) v0 0

(* Crash-robust acceptance: like [acceptance], but a process with no
   output is excused.  At a crash-complete leaf (no process runnable)
   the explorers guarantee [None] outputs are exactly the crashed
   processes, so this is "every survivor accepts" — the strongest form
   of Lemma 3 that survives crash-stop faults, since a crashed process
   cannot be obliged to decide. *)
let rec acceptance_survivors_scan (outputs : decision option array) n v0 pid =
  if pid >= n then Ok ()
  else
    match outputs.(pid) with
    | Some (true, v) when v = v0 -> acceptance_survivors_scan outputs n v0 (pid + 1)
    | Some (d, v) ->
      errf "acceptance: all inputs %d but surviving p%d output (%b, %d)" v0 pid d v
    | None -> acceptance_survivors_scan outputs n v0 (pid + 1)

let acceptance_survivors ~inputs ~outputs =
  if Array.length inputs = 0 then Ok ()
  else
    let v0 = inputs.(0) in
    if not (all_inputs_equal inputs v0 1) then Ok ()
    else acceptance_survivors_scan outputs (Array.length outputs) v0 0

let consensus_execution ~inputs ~outputs ~completed =
  if not completed then Error "termination: execution hit the step bound"
  else
    match agreement ~outputs with
    | Error _ as e -> e
    | Ok () -> validity ~inputs ~outputs

let all results =
  List.fold_left
    (fun acc r -> match acc with Error _ -> acc | Ok () -> r)
    (Ok ()) results
