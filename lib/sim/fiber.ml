type 'r t =
  | Running : 'a Op.t * ('a, 'r t) Effect.Deep.continuation -> 'r t
  | Finished of 'r

let spawn (f : unit -> 'r) : 'r t =
  Effect.Deep.match_with f ()
    { retc = (fun r -> Finished r);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Proc.Step op ->
            Some (fun (k : (a, _) Effect.Deep.continuation) -> Running (op, k))
          | _ -> None) }

let resume = Effect.Deep.continue

let rec to_program = function
  | Finished r -> Program.Done r
  | Running (op, k) -> Program.Step (op, fun x -> to_program (resume k x))
