type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let of_int i = Atom (string_of_int i)
let of_bool b = Atom (if b then "true" else "false")

(* %.17g round-trips every binary64 value through float_of_string. *)
let of_float f = Atom (Printf.sprintf "%.17g" f)

let to_int = function
  | Atom s -> int_of_string_opt s
  | List _ -> None

let to_bool = function
  | Atom "true" -> Some true
  | Atom "false" -> Some false
  | _ -> None

let to_float = function
  | Atom s -> float_of_string_opt s
  | List _ -> None

let to_atom = function
  | Atom s -> Some s
  | List _ -> None

(* Find the field [(name arg...)] inside a record-style [(... (name arg...) ...)]. *)
let assoc name = function
  | Atom _ -> None
  | List items ->
    List.find_map
      (function
        | List (Atom tag :: args) when tag = name -> Some args
        | _ -> None)
      items

let assoc1 name sexp =
  match assoc name sexp with
  | Some [ v ] -> Some v
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let atom_needs_quoting s =
  s = ""
  || String.exists
       (function
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
         | _ -> false)
       s

let pp_atom ppf s =
  if atom_needs_quoting s
  then Format.fprintf ppf "\"%s\"" (String.escaped s)
  else Format.pp_print_string ppf s

let rec pp ppf = function
  | Atom s -> pp_atom ppf s
  | List items ->
    Format.fprintf ppf "@[<hv 1>(";
    List.iteri
      (fun i item ->
        if i > 0 then Format.fprintf ppf "@ ";
        pp ppf item)
      items;
    Format.fprintf ppf ")@]"

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | Some ';' ->
      (* line comment *)
      let rec to_eol () =
        match peek () with
        | Some '\n' | None -> ()
        | Some _ -> advance (); to_eol ()
      in
      to_eol (); skip_ws ()
    | Some _ | None -> ()
  in
  let parse_quoted () =
    advance ();  (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string at offset %d" !pos
      | Some '"' -> advance (); Atom (Buffer.contents buf)
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some ('"' | '\\' | '\'' as c) -> Buffer.add_char buf c; advance ()
         | Some ('0' .. '9') ->
           (* decimal escape as produced by String.escaped *)
           if !pos + 2 >= n then fail "truncated escape at offset %d" !pos;
           let code = int_of_string_opt (String.sub s !pos 3) in
           (match code with
            | Some c when c >= 0 && c < 256 ->
              Buffer.add_char buf (Char.chr c);
              pos := !pos + 3
            | Some _ | None -> fail "bad decimal escape at offset %d" !pos)
         | Some c -> fail "bad escape '\\%c' at offset %d" c !pos
         | None -> fail "truncated escape at offset %d" !pos);
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_bare () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
      | Some _ -> advance (); go ()
    in
    go ();
    Atom (String.sub s start (!pos - start))
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input at offset %d" !pos
    | Some '(' ->
      advance ();
      let rec items acc =
        skip_ws ();
        match peek () with
        | Some ')' -> advance (); List (List.rev acc)
        | None -> fail "unterminated list at offset %d" !pos
        | Some _ -> items (parse_one () :: acc)
      in
      items []
    | Some ')' -> fail "unexpected ')' at offset %d" !pos
    | Some '"' -> parse_quoted ()
    | Some _ -> parse_bare ()
  in
  match parse_one () with
  | sexp ->
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok sexp
  | exception Parse_error msg -> Error msg
