(* The register-file VM: per-process program counters over a lazily
   compiled {!Code} store.  All interpretation lives in [Code.step];
   this module owns the mutable execution state (the pc file) and its
   O(n)-integers snapshots — the delta-friendly counterpart of the
   tree interpreter's program-array copies. *)

type 'r t = {
  code : 'r Code.t;
  cheap_collect : bool;
  pcs : int array;
}

let create ?(cheap_collect = false) ~n ~memory body =
  let code = Code.compile ~memory ~n body in
  { code; cheap_collect; pcs = Array.init n (fun pid -> Code.root code pid) }

let exec t ~pid ~landed =
  t.pcs.(pid) <-
    Code.step t.code ~cheap_collect:t.cheap_collect ~pc:t.pcs.(pid) ~landed;
  Code.last_observed t.code

(* Crash-recovery re-entry: place the pc at the recover continuation
   (or back at the root without one).  The façade owns the surrounding
   wipe/enabled/trace bookkeeping. *)
let reenter t ~pid = t.pcs.(pid) <- Code.rec_root t.code pid

let pending t pid = Code.pending t.code t.pcs.(pid)
let stage t pid = Code.stage t.code t.pcs.(pid)
let result t pid = Code.result t.code t.pcs.(pid)
let coin_class t pid = Code.coin_class t.code t.pcs.(pid)
let code_size t = Code.size t.code

(* Fold the pc file into the two duplicate-detection accumulators (see
   {!Memory.hash_fold}): a pc is the whole per-process program state,
   interned per continuation, so equal pc files mean equal pending
   operations, stages and results. *)
let hash_fold t h1 h2 =
  let h1 = ref h1 and h2 = ref h2 in
  for pid = 0 to Array.length t.pcs - 1 do
    let pc = t.pcs.(pid) in
    h1 := Memory.mix1 !h1 pc;
    h2 := Memory.mix2 !h2 pc
  done;
  (!h1, !h2)

type snapshot = int array

let snapshot t = Array.copy t.pcs
let snapshot_into t (s : snapshot) = Array.blit t.pcs 0 s 0 (Array.length s)
let restore t (s : snapshot) = Array.blit s 0 t.pcs 0 (Array.length s)
