(** The register-file VM execution engine.

    One value holds a process's worth of program counters into a
    {!Code} store compiled from the protocol bodies at creation time.
    A step is [Code.step] plus one integer store; a snapshot is a copy
    of [n] integers (memory state is snapshotted separately, as a
    delta mark — see {!Memory.backup}).  Drive it through [Machine]
    rather than directly: the façade owns step counting, crash state,
    the enabled set and instrumentation, identically for both
    engines. *)

type 'r t

val create :
  ?cheap_collect:bool ->
  n:int ->
  memory:Memory.t ->
  (pid:int -> 'r Program.t) ->
  'r t
(** Compile the bodies (evaluated in pid order, running pure prefixes
    exactly like the tree interpreter) and place every pc at its
    root. *)

val exec : 'r t -> pid:int -> landed:bool -> int option
(** Execute [pid]'s pending operation with the coin outcome already
    decided, advancing its pc.  Returns what a read observed ([None]
    for other operations) for trace recording — the cell's own option
    value, so the no-instrumentation path allocates nothing. *)

val reenter : 'r t -> pid:int -> unit
(** Crash-recovery re-entry: place [pid]'s pc at its recover
    continuation ({!Code.rec_root}) — the recovery analogue of
    [create]'s root placement.  Driven by [Machine.recover]. *)

val pending : 'r t -> int -> Op.any option
(** [pid]'s pending-operation descriptor (shared, interned once). *)

val stage : 'r t -> int -> string option
val result : 'r t -> int -> 'r option

val coin_class : 'r t -> int -> int
(** Cached branching class of [pid]'s pending operation (see
    {!Code.coin_class}). *)

val code_size : 'r t -> int
(** Instructions interned so far in the underlying store. *)

val hash_fold : 'r t -> int -> int -> int * int
(** Fold the pc file into the two duplicate-detection accumulators
    (see {!Memory.hash_fold}): pcs are interned per continuation, so
    equal pc files mean equal program states. *)

type snapshot = int array

val snapshot : 'r t -> snapshot

val snapshot_into : 'r t -> snapshot -> unit
(** Refresh a snapshot of this VM in place (same [n]) — the pooled
    no-allocation path. *)

val restore : 'r t -> snapshot -> unit
