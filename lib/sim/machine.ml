exception Collect_disallowed
exception Stuck of string

type 'r t = {
  n : int;
  memory : Memory.t;
  cheap_collect : bool;
  programs : 'r Program.t array;
  pending : Op.any option array;
  stages : string option array;
  crashed : bool array;
  mutable crash_count : int;
  (* Sticky: set by the first [crash] and never cleared, so failure-free
     explorations (the common case) know [crashed] is all-false without
     scanning it and skip capturing it in snapshots. *)
  mutable ever_crashed : bool;
  mutable enabled : int array;
  mutable steps : int;
  mutable total_steps : int;
  metrics : Metrics.t option;
  trace : Trace.t option;
  sink : Sink.t option;
}

let rebuild_enabled pending n =
  let pids = ref [] in
  for pid = n - 1 downto 0 do
    if Option.is_some pending.(pid) then pids := pid :: !pids
  done;
  Array.of_list !pids

(* Peel stage labels off the front of a program, recording the
   innermost one as [pid]'s current stage.  Stored programs are always
   label-free at the top, so the hot path below pays one constructor
   check per transition. *)
let rec settle stages pid p =
  match p with
  | Program.Label (s, p) ->
    stages.(pid) <- Some s;
    settle stages pid p
  | p -> p

let create ?(cheap_collect = false) ?metrics ?trace ?sink ~n ~memory body =
  if n <= 0 then invalid_arg "Machine.create: n must be positive";
  let stages = Array.make n None in
  let programs = Array.init n (fun pid -> settle stages pid (body ~pid)) in
  let pending = Array.map Program.pending programs in
  { n;
    memory;
    cheap_collect;
    programs;
    pending;
    stages;
    crashed = Array.make n false;
    crash_count = 0;
    ever_crashed = false;
    enabled = rebuild_enabled pending n;
    steps = 0;
    total_steps = 0;
    metrics;
    trace;
    sink }

let n t = t.n
let memory t = t.memory
let enabled t = t.enabled
let unsafe_pending t = t.pending
let pending_op t pid = t.pending.(pid)
let stage t pid = t.stages.(pid)
let steps t = t.steps
let total_steps t = t.total_steps
let running t = Array.length t.enabled > 0
let outputs t = Array.map Program.result t.programs
let output t pid = Program.result t.programs.(pid)
let crashes t = t.crash_count
let is_crashed t pid = t.crashed.(pid)

let classify t pid =
  if t.crashed.(pid) then `Crashed
  else if Option.is_some t.pending.(pid) then `Running
  else `Decided

(* The one op interpreter.  The coin outcome for probabilistic writes
   has already been decided by the caller; [apply] just carries it out
   and reports what a read observed (for trace recording).  For reads
   the coin is overloaded as the freshness choice on weak (regular)
   registers: [landed = true] delivers the stale pre-write value.
   Engines only offer that choice on registers the setup marked weak,
   so atomic executions are unchanged ([landed] is always [false] for
   reads on the legacy paths). *)
let apply : type a. _ -> a Op.t -> landed:bool -> a * int option =
  fun t op ~landed ->
  match op with
  | Op.Read l ->
    let v = if landed then Memory.read_stale t.memory l else Memory.read t.memory l in
    (v, v)
  | Op.Write (l, v) ->
    Memory.write t.memory l v;
    ((), None)
  | Op.Prob_write (l, v, _) ->
    if landed then Memory.write t.memory l v;
    ((), None)
  | Op.Prob_write_detect (l, v, _) ->
    if landed then Memory.write t.memory l v;
    (landed, None)
  | Op.Collect (l, len) ->
    if not t.cheap_collect then raise Collect_disallowed;
    (Array.init len (fun i -> Memory.read t.memory (l + i)), None)

let step_forced t ~pid ~landed =
  match t.programs.(pid) with
  | Program.Done _ | Program.Label _ ->
    (* Stored programs are settled, so [Label] is unreachable; listed to
       keep the match total. *)
    raise (Stuck "scheduled a finished process")
  | Program.Step (op, k) ->
    let result, observed = apply t op ~landed in
    Option.iter (fun m -> Metrics.record m ~pid (Op.kind (Op.Any op))) t.metrics;
    Option.iter
      (fun tr ->
        Trace.add tr { Trace.step = t.steps; pid; op = Some (Op.Any op); landed; observed })
      t.trace;
    (match t.sink with
     | None -> ()
     | Some s ->
       let any = Op.Any op in
       s.Sink.on_op ~step:t.steps ~pid ~kind:(Op.kind any) ~loc:(Op.loc any)
         ~landed ~stage:t.stages.(pid));
    t.steps <- t.steps + 1;
    t.total_steps <- t.total_steps + 1;
    let p = settle t.stages pid (k result) in
    t.programs.(pid) <- p;
    t.pending.(pid) <- Program.pending p;
    if t.pending.(pid) = None then begin
      t.enabled <- rebuild_enabled t.pending t.n;
      match t.sink with
      | None -> ()
      | Some s -> s.Sink.on_decide ~step:t.steps ~pid
    end

let step_random t ~pid ~coin =
  match t.pending.(pid) with
  | None -> raise (Stuck "scheduled a finished process")
  | Some any ->
    let landed =
      match Op.prob any with
      | Some p -> Rng.bernoulli coin p
      | None -> Op.is_write any
    in
    step_forced t ~pid ~landed

(* Crash-stop: the process halts permanently without executing its
   pending operation.  It leaves the enabled set (so the machine may
   reach "no process running" with undecided processes — a leaf where
   [output] is [None] for exactly the crashed pids) and its memory
   effects so far stay visible, which is the crash-stop model: a crash
   is indistinguishable from the process merely being very slow, except
   that it never moves again.  A crash consumes a step so that trace
   positions and depth accounting line up across engines. *)
let crash t ~pid =
  if t.crashed.(pid) then raise (Stuck "crashed an already-crashed process");
  if Option.is_none t.pending.(pid) then raise (Stuck "crashed a finished process");
  t.crashed.(pid) <- true;
  t.crash_count <- t.crash_count + 1;
  t.ever_crashed <- true;
  t.pending.(pid) <- None;
  t.enabled <- rebuild_enabled t.pending t.n;
  Option.iter
    (fun tr ->
      Trace.add tr { Trace.step = t.steps; pid; op = None; landed = false; observed = None })
    t.trace;
  (match t.sink with
   | None -> ()
   | Some s -> s.Sink.on_crash ~step:t.steps ~pid);
  t.steps <- t.steps + 1;
  t.total_steps <- t.total_steps + 1

type 'r snapshot = {
  s_programs : 'r Program.t array;
  s_pending : Op.any option array;
  s_stages : string option array;
  (* [None] = every process was live at snapshot time; taken on
     crash-free paths so the per-snapshot copy is paid only once a
     crash actually happens below the root. *)
  s_crashed : bool array option;
  s_crash_count : int;
  s_enabled : int array;
  s_memory : Memory.backup;
  s_steps : int;
}

let snapshot t =
  (match t.sink with
   | None -> ()
   | Some s -> s.Sink.on_snapshot ~step:t.steps);
  { s_programs = Array.copy t.programs;
    s_pending = Array.copy t.pending;
    s_stages = Array.copy t.stages;
    s_crashed = (if t.ever_crashed then Some (Array.copy t.crashed) else None);
    s_crash_count = t.crash_count;
    s_enabled = Array.copy t.enabled;
    s_memory = Memory.backup t.memory;
    s_steps = t.steps }

(* [total_steps] is deliberately not restored: it counts transitions
   ever applied, the explorer's work measure. *)
let restore t s =
  (match t.sink with
   | None -> ()
   | Some k -> k.Sink.on_restore ~step:t.steps);
  Array.blit s.s_programs 0 t.programs 0 t.n;
  Array.blit s.s_pending 0 t.pending 0 t.n;
  Array.blit s.s_stages 0 t.stages 0 t.n;
  (match s.s_crashed with
   | Some crashed -> Array.blit crashed 0 t.crashed 0 t.n
   | None -> if t.ever_crashed then Array.fill t.crashed 0 t.n false);
  t.crash_count <- s.s_crash_count;
  t.enabled <- Array.copy s.s_enabled;
  Memory.restore_backup t.memory s.s_memory;
  t.steps <- s.s_steps
