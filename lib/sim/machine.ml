exception Collect_disallowed = Code.Collect_disallowed
exception Stuck of string

type engine = [ `Vm | `Tree ]

(* Engine-specific program state.  [Compiled] drives the flat
   instruction VM (the default); [Tree] walks the [Program.t] values in
   place — the historical interpreter, kept as the differential-testing
   oracle.  Everything else (pending descriptors, crash state, enabled
   set, step counters, instrumentation) is engine-independent and lives
   in the façade, so both engines feed the observability and fault
   layers through exactly the same code. *)
type 'r engine_state =
  | Compiled of 'r Vm.t
  | Tree of {
      programs : 'r Program.t array;
      stages : string option array;
      (* Crash-recovery re-entry targets, mirroring the VM's
         [Code.rec_root]: the declared recover continuation (raw — its
         leading labels are re-peeled at each recovery) or the settled
         main root when the protocol declared none, with the stage to
         restore on re-entry alongside. *)
      rec_programs : 'r Program.t array;
      rec_stages : string option array;
    }

type 'r t = {
  n : int;
  memory : Memory.t;
  cheap_collect : bool;
  state : 'r engine_state;
  pending : Op.any option array;
  crashed : bool array;
  mutable crash_count : int;
  mutable recover_count : int;
  (* Sticky: set by the first [crash] and never cleared, so failure-free
     explorations (the common case) know [crashed] is all-false without
     scanning it and skip capturing it in snapshots.  ([recover] clears
     [crashed] bits but deliberately not this flag: once a path has
     crashed, snapshots keep capturing the array.) *)
  mutable ever_crashed : bool;
  mutable enabled : int array;
  (* All [2^n] possible enabled sets, interned at creation and indexed
     by the liveness bitmask — [enabled] always aliases one of them (or
     a fresh array when [n] is too large to tabulate).  Interning keeps
     the they-are-shared-immutably invariant that lets snapshots alias
     [enabled] without copying, while making a process's decide/crash
     transition allocation-free. *)
  enabled_tab : int array array option;
  mutable steps : int;
  mutable total_steps : int;
  metrics : Metrics.t option;
  trace : Trace.t option;
  sink : Sink.t option;
}

let enabled_of_mask n mask =
  let k = ref 0 in
  for pid = 0 to n - 1 do
    if mask land (1 lsl pid) <> 0 then incr k
  done;
  let a = Array.make !k 0 in
  let j = ref 0 in
  for pid = 0 to n - 1 do
    if mask land (1 lsl pid) <> 0 then begin a.(!j) <- pid; incr j end
  done;
  a

(* Beyond this the table would dwarf the machine; no current protocol
   config comes close. *)
let max_tabulated_n = 10

let rebuild_enabled_alloc pending n =
  let pids = ref [] in
  for pid = n - 1 downto 0 do
    if Option.is_some pending.(pid) then pids := pid :: !pids
  done;
  Array.of_list !pids

(* Peel stage labels off the front of a program, recording the
   innermost one as [pid]'s current stage.  A root-level [Recoverable]
   declaration is transparent here (its recover branch is peeled off by
   [create]).  Stored programs are always label-free at the top, so the
   hot path below pays one constructor check per transition. *)
let rec settle stages pid p =
  match p with
  | Program.Label (s, p) ->
    stages.(pid) <- Some s;
    settle stages pid p
  | Program.Recoverable { main; _ } -> settle stages pid main
  | p -> p

(* Root peel without stage recording, mirroring [Code.peel]: the stage
   at the protocol's entry, which is also the stage a declared recover
   continuation re-enters at. *)
let rec peel_root stage p =
  match p with
  | Program.Label (s, p) -> peel_root (Some s) p
  | p -> (stage, p)

let create ?(engine = `Vm) ?(cheap_collect = false) ?metrics ?trace ?sink ~n
    ~memory body =
  if n <= 0 then invalid_arg "Machine.create: n must be positive";
  let state =
    match engine with
    | `Vm -> Compiled (Vm.create ~cheap_collect ~n ~memory body)
    | `Tree ->
      let stages = Array.make n None in
      (* Evaluated in pid order (pure prefixes, incl. allocation, run
         here), exactly as before; the root peel splits off a
         [Recoverable] declaration when present. *)
      let parts =
        Array.init n (fun pid ->
          let stage0, p0 = peel_root None (body ~pid) in
          stages.(pid) <- stage0;
          match p0 with
          | Program.Recoverable { main; recover } ->
            (settle stages pid main, Some recover, stage0)
          | p -> (settle stages pid p, None, stage0))
      in
      let programs = Array.map (fun (m, _, _) -> m) parts in
      (* Without a declaration a restarted process re-enters at its
         settled main root, whose stage is the innermost root label —
         matching the VM, where [Code.rec_root] falls back to the main
         root pc and its interned stage. *)
      let rec_programs =
        Array.init n (fun pid ->
          match parts.(pid) with _, Some r, _ -> r | m, None, _ -> m)
      in
      let rec_stages =
        Array.init n (fun pid ->
          match parts.(pid) with
          | _, Some _, stage0 -> stage0
          | _, None, _ -> stages.(pid))
      in
      Tree { programs; stages; rec_programs; rec_stages }
  in
  let pending =
    match state with
    | Compiled vm -> Array.init n (fun pid -> Vm.pending vm pid)
    | Tree { programs; _ } -> Array.map Program.pending programs
  in
  let enabled_tab =
    if n <= max_tabulated_n then
      Some (Array.init (1 lsl n) (enabled_of_mask n))
    else None
  in
  { n;
    memory;
    cheap_collect;
    state;
    pending;
    crashed = Array.make n false;
    crash_count = 0;
    recover_count = 0;
    ever_crashed = false;
    enabled = rebuild_enabled_alloc pending n;
    enabled_tab;
    steps = 0;
    total_steps = 0;
    metrics;
    trace;
    sink }

let rebuild_enabled t =
  match t.enabled_tab with
  | Some tab ->
    let mask = ref 0 in
    for pid = 0 to t.n - 1 do
      if Option.is_some t.pending.(pid) then mask := !mask lor (1 lsl pid)
    done;
    t.enabled <- tab.(!mask)
  | None -> t.enabled <- rebuild_enabled_alloc t.pending t.n

let n t = t.n
let memory t = t.memory
let engine t : engine =
  match t.state with Compiled _ -> `Vm | Tree _ -> `Tree
let enabled t = t.enabled
let unsafe_pending t = t.pending
let pending_op t pid = t.pending.(pid)

let stage t pid =
  match t.state with
  | Compiled vm -> Vm.stage vm pid
  | Tree { stages; _ } -> stages.(pid)

let steps t = t.steps
let total_steps t = t.total_steps
let running t = Array.length t.enabled > 0

let output t pid =
  match t.state with
  | Compiled vm -> Vm.result vm pid
  | Tree { programs; _ } -> Program.result programs.(pid)

let outputs t = Array.init t.n (fun pid -> output t pid)

let outputs_into t buf =
  if Array.length buf <> t.n then
    invalid_arg "Machine.outputs_into: buffer length is not n";
  for pid = 0 to t.n - 1 do
    buf.(pid) <- output t pid
  done
let crashes t = t.crash_count
let recovers t = t.recover_count
let is_crashed t pid = t.crashed.(pid)

let classify t pid =
  if t.crashed.(pid) then `Crashed
  else if Option.is_some t.pending.(pid) then `Running
  else `Decided

(* Branching class of [pid]'s pending operation as a nonallocating
   int (0 = forced miss, 1 = forced landed, 2 = coin, 3 = weak-register
   read): the explorers' per-step classification, cached per pc by the
   VM and recomputed from the descriptor by the tree engine. *)
let coin_class t pid =
  match t.state with
  | Compiled vm -> Vm.coin_class vm pid
  | Tree _ ->
    (match t.pending.(pid) with
     | None -> raise (Stuck "classified a finished process")
     | Some (Op.Any op) ->
       (match op with
        | Op.Prob_write (_, _, p) | Op.Prob_write_detect (_, _, p) ->
          if p <= 0.0 then 0 else if p >= 1.0 then 1 else 2
        | Op.Read l -> if Memory.is_weak t.memory l then 3 else 0
        | Op.Write _ -> 1
        | Op.Collect _ -> 0))

(* Duplicate-detection hash over the machine's semantic state: the VM
   pc file (pcs determine pending operations, stages and results), the
   memory's cells and weak shadows, and the crashed set.  [steps] and
   [total_steps] are work measures, not state, and the enabled set is
   derived — none are folded.  VM-only: tree program states are
   closures without a canonical encoding, which is exactly why the VM
   exists; callers gate on [supports_state_hash]. *)
let supports_state_hash t =
  match t.state with Compiled _ -> true | Tree _ -> false

let state_hash t =
  match t.state with
  | Tree _ -> invalid_arg "Machine.state_hash: the tree engine has no state hash"
  | Compiled vm ->
    let h1, h2 = Vm.hash_fold vm 0x3243F6A8 0x13198A2E in
    let h1, h2 = Memory.hash_fold t.memory h1 h2 in
    let m1 = ref h1 and m2 = ref h2 in
    if t.ever_crashed then
      for pid = 0 to t.n - 1 do
        if t.crashed.(pid) then begin
          m1 := Memory.mix1 !m1 (pid + 1);
          m2 := Memory.mix2 !m2 (pid + 1)
        end
      done;
    (!m1, !m2)

(* The tree engine's op interpreter.  The coin outcome for
   probabilistic writes has already been decided by the caller; [apply]
   just carries it out and reports what a read observed (for trace
   recording).  For reads the coin is overloaded as the freshness
   choice on weak (regular) registers: [landed = true] delivers the
   stale pre-write value.  Engines only offer that choice on registers
   the setup marked weak, so atomic executions are unchanged ([landed]
   is always [false] for reads on the legacy paths). *)
let apply : type a. _ -> a Op.t -> landed:bool -> a * int option =
  fun t op ~landed ->
  match op with
  | Op.Read l ->
    let v = if landed then Memory.read_stale t.memory l else Memory.read t.memory l in
    (v, v)
  | Op.Write (l, v) ->
    Memory.write t.memory l v;
    ((), None)
  | Op.Prob_write (l, v, _) ->
    if landed then Memory.write t.memory l v;
    ((), None)
  | Op.Prob_write_detect (l, v, _) ->
    if landed then Memory.write t.memory l v;
    (landed, None)
  | Op.Collect (l, len) ->
    if not t.cheap_collect then raise Collect_disallowed;
    (Array.init len (fun i -> Memory.read t.memory (l + i)), None)

let step_forced t ~pid ~landed =
  match t.pending.(pid) with
  | None -> raise (Stuck "scheduled a finished process")
  | Some any ->
    (* Apply the effect and advance the program state; events are
       recorded afterwards with the pre-step stage and step counter, so
       the two engines feed instrumentation identically.  The stage is
       only consumed by the sink, so it is not even fetched without one
       — this loop runs millions of times per exploration and every
       branch below is written to stay allocation-free when the
       corresponding instrument is absent. *)
    (* Ownership attribution for the crash-recovery wipe: one
       predictable branch when tracking is off (the recovery-free
       case). *)
    if Memory.tracking t.memory then Memory.set_actor t.memory pid;
    let observed, stage =
      match t.state with
      | Compiled vm ->
        let stage =
          match t.sink with None -> None | Some _ -> Vm.stage vm pid
        in
        let observed = Vm.exec vm ~pid ~landed in
        (observed, stage)
      | Tree { programs; stages; _ } ->
        (match programs.(pid) with
         | Program.Done _ | Program.Label _ | Program.Recoverable _ ->
           (* Stored programs are settled and [pending] already
              screened finished ones; listed to keep the match total. *)
           raise (Stuck "scheduled a finished process")
         | Program.Step (op, k) ->
           let result, observed = apply t op ~landed in
           let stage = stages.(pid) in
           programs.(pid) <- settle stages pid (k result);
           (observed, stage))
    in
    (match t.metrics with
     | None -> ()
     | Some m -> Metrics.record m ~pid (Op.kind any));
    (match t.trace with
     | None -> ()
     | Some tr ->
       Trace.add tr { Trace.step = t.steps; pid; op = Some any; landed; observed });
    (match t.sink with
     | None -> ()
     | Some s ->
       s.Sink.on_op ~step:t.steps ~pid ~kind:(Op.kind any) ~loc:(Op.loc any)
         ~landed ~stage);
    t.steps <- t.steps + 1;
    t.total_steps <- t.total_steps + 1;
    let pending' =
      match t.state with
      | Compiled vm -> Vm.pending vm pid
      | Tree { programs; _ } -> Program.pending programs.(pid)
    in
    t.pending.(pid) <- pending';
    match pending' with
    | Some _ -> ()
    | None ->
      rebuild_enabled t;
      (match t.sink with
       | None -> ()
       | Some s -> s.Sink.on_decide ~step:t.steps ~pid)

let step_random t ~pid ~coin =
  match t.pending.(pid) with
  | None -> raise (Stuck "scheduled a finished process")
  | Some any ->
    let landed =
      match Op.prob any with
      | Some p -> Rng.bernoulli coin p
      | None -> Op.is_write any
    in
    step_forced t ~pid ~landed

(* Crash-stop: the process halts permanently without executing its
   pending operation.  It leaves the enabled set (so the machine may
   reach "no process running" with undecided processes — a leaf where
   [output] is [None] for exactly the crashed pids) and its memory
   effects so far stay visible, which is the crash-stop model: a crash
   is indistinguishable from the process merely being very slow, except
   that it never moves again.  A crash consumes a step so that trace
   positions and depth accounting line up across engines. *)
let crash t ~pid =
  if t.crashed.(pid) then raise (Stuck "crashed an already-crashed process");
  if Option.is_none t.pending.(pid) then raise (Stuck "crashed a finished process");
  t.crashed.(pid) <- true;
  t.crash_count <- t.crash_count + 1;
  t.ever_crashed <- true;
  t.pending.(pid) <- None;
  rebuild_enabled t;
  Option.iter
    (fun tr ->
      Trace.add tr { Trace.step = t.steps; pid; op = None; landed = false; observed = None })
    t.trace;
  (match t.sink with
   | None -> ()
   | Some s -> s.Sink.on_crash ~step:t.steps ~pid);
  t.steps <- t.steps + 1;
  t.total_steps <- t.total_steps + 1

(* Crash-recovery: the symmetric pseudo-event.  The crashed process's
   volatile registers (those it last wrote and did not mark persistent)
   are wiped back to ⊥, its program state is reset to the protocol's
   recover continuation (or the main root without one), and it rejoins
   the enabled set.  Like [crash] it consumes a step, so trace
   positions and depth accounting line up across engines, and every
   effect goes through the journalled paths so [restore] undoes it
   exactly.  The trace encoding is [op = None, landed = true] — crash
   stays [op = None, landed = false] — keeping crash bytes unchanged. *)
let recover t ~pid =
  if not t.crashed.(pid) then raise (Stuck "recovered a process that is not crashed");
  Memory.wipe_volatile t.memory ~pid;
  t.crashed.(pid) <- false;
  t.recover_count <- t.recover_count + 1;
  (match t.state with
   | Compiled vm -> Vm.reenter vm ~pid
   | Tree { programs; stages; rec_programs; rec_stages } ->
     stages.(pid) <- rec_stages.(pid);
     programs.(pid) <- settle stages pid rec_programs.(pid));
  t.pending.(pid) <-
    (match t.state with
     | Compiled vm -> Vm.pending vm pid
     | Tree { programs; _ } -> Program.pending programs.(pid));
  rebuild_enabled t;
  Option.iter
    (fun tr ->
      Trace.add tr { Trace.step = t.steps; pid; op = None; landed = true; observed = None })
    t.trace;
  (match t.sink with
   | None -> ()
   | Some s -> s.Sink.on_recover ~step:t.steps ~pid);
  t.steps <- t.steps + 1;
  t.total_steps <- t.total_steps + 1

(* Engine half of a snapshot: the VM's is [n] integers (its program
   state is just the pc file; pending descriptors are recomputed from
   the code store on restore), the tree's is the historical
   three-array copy. *)
type 'r engine_snap =
  | Vm_snap of Vm.snapshot
  | Tree_snap of {
      programs : 'r Program.t array;
      pending : Op.any option array;
      stages : string option array;
    }

type 'r snapshot = {
  (* The engine half is immutable but its payload arrays are refreshed
     in place by [snapshot_into]; the façade half is mutable for the
     same reason — pooled snapshots are the explorers' per-branch-point
     allocation budget. *)
  s_engine : 'r engine_snap;
  (* [None] = every process was live at snapshot time; taken on
     crash-free paths so the per-snapshot copy is paid only once a
     crash actually happens below the root. *)
  mutable s_crashed : bool array option;
  mutable s_crash_count : int;
  mutable s_recover_count : int;
  mutable s_enabled : int array;
  s_memory : Memory.backup;
  mutable s_steps : int;
}

let snapshot t =
  (match t.sink with
   | None -> ()
   | Some s -> s.Sink.on_snapshot ~step:t.steps);
  (* The two engines pay their own snapshot bills here: the VM copies
     [n] program counters and takes an O(1) delta mark on the store;
     the tree oracle keeps its historical cost — three O(n) array
     copies plus an O(|memory|) full-store backup (delta journaling is
     never even switched on for a tree machine, so its write path is
     the historical one too). *)
  let s_engine, s_memory =
    match t.state with
    | Compiled vm -> (Vm_snap (Vm.snapshot vm), Memory.backup t.memory)
    | Tree { programs; stages; _ } ->
      ( Tree_snap
          { programs = Array.copy programs;
            pending = Array.copy t.pending;
            stages = Array.copy stages },
        Memory.full_backup t.memory )
  in
  { s_engine;
    s_crashed = (if t.ever_crashed then Some (Array.copy t.crashed) else None);
    s_crash_count = t.crash_count;
    s_recover_count = t.recover_count;
    (* Shared, not copied: enabled arrays are rebuilt immutably on
       every change (decide/crash), never updated in place. *)
    s_enabled = t.enabled;
    s_memory;
    s_steps = t.steps }

(* Refresh a pooled snapshot in place — semantically [snapshot], minus
   the allocations: the VM engine blits [n] pcs and restamps the O(1)
   memory mark, so a branch point costs zero heap words once its pool
   slot exists.  The tree oracle refreshes by the same historical
   copies it pays for a fresh snapshot. *)
let snapshot_into t s =
  (match t.sink with
   | None -> ()
   | Some k -> k.Sink.on_snapshot ~step:t.steps);
  (match t.state, s.s_engine with
   | Compiled vm, Vm_snap pcs -> Vm.snapshot_into vm pcs
   | Tree { programs; stages; _ }, Tree_snap snap ->
     Array.blit programs 0 snap.programs 0 t.n;
     Array.blit t.pending 0 snap.pending 0 t.n;
     Array.blit stages 0 snap.stages 0 t.n
   | Compiled _, Tree_snap _ | Tree _, Vm_snap _ ->
     invalid_arg "Machine.snapshot_into: snapshot from a different engine");
  (if not t.ever_crashed then s.s_crashed <- None
   else
     match s.s_crashed with
     | Some crashed -> Array.blit t.crashed 0 crashed 0 t.n
     | None -> s.s_crashed <- Some (Array.copy t.crashed));
  s.s_crash_count <- t.crash_count;
  s.s_recover_count <- t.recover_count;
  s.s_enabled <- t.enabled;
  Memory.backup_into t.memory s.s_memory;
  s.s_steps <- t.steps

(* [total_steps] is deliberately not restored: it counts transitions
   ever applied, the explorer's work measure. *)
let restore t s =
  (match t.sink with
   | None -> ()
   | Some k -> k.Sink.on_restore ~step:t.steps);
  (match s.s_crashed with
   | Some crashed -> Array.blit crashed 0 t.crashed 0 t.n
   | None -> if t.ever_crashed then Array.fill t.crashed 0 t.n false);
  t.crash_count <- s.s_crash_count;
  t.recover_count <- s.s_recover_count;
  (match t.state, s.s_engine with
   | Compiled vm, Vm_snap pcs ->
     Vm.restore vm pcs;
     (* Crashed state is already rolled back above: a crashed process
        keeps its pc but pends nothing. *)
     for pid = 0 to t.n - 1 do
       t.pending.(pid) <- (if t.crashed.(pid) then None else Vm.pending vm pid)
     done
   | Tree { programs; stages; _ }, Tree_snap snap ->
     Array.blit snap.programs 0 programs 0 t.n;
     Array.blit snap.pending 0 t.pending 0 t.n;
     Array.blit snap.stages 0 stages 0 t.n
   | Compiled _, Tree_snap _ | Tree _, Vm_snap _ ->
     invalid_arg "Machine.restore: snapshot taken under a different engine");
  t.enabled <- s.s_enabled;
  Memory.restore_backup t.memory s.s_memory;
  t.steps <- s.s_steps
