type stats = {
  complete : int;
  truncated : int;
  exhausted : bool;
}

type 'r run = {
  outputs : 'r option array;
  completed : bool;
  branches : (int * int) list;
  trace : Trace.t option;
}

(* Apply an operation whose coin outcome (for probabilistic writes) has
   already been decided by the explorer.  Also returns what a read
   observed, for trace recording. *)
let apply_det :
  type a. cheap_collect:bool -> landed:bool -> Memory.t -> a Op.t -> a * int option =
  fun ~cheap_collect ~landed memory op ->
  match op with
  | Op.Read l ->
    let v = Memory.read memory l in
    (v, v)
  | Op.Write (l, v) ->
    (Memory.write memory l v, None)
  | Op.Prob_write (l, v, _) ->
    if landed then Memory.write memory l v;
    ((), None)
  | Op.Prob_write_detect (l, v, _) ->
    if landed then Memory.write memory l v;
    (landed, None)
  | Op.Collect (l, len) ->
    if not cheap_collect then raise Scheduler.Collect_disallowed;
    (Array.init len (fun i -> Memory.read memory (l + i)), None)

(* Run one execution following [path] (list of branch choices); choices
   beyond the path default to 0, and out-of-range choices are clamped to
   0 so that a schedule recorded against one protocol can be replayed
   against another (e.g. a fixed protocol vs the buggy test double it
   was found on).  Returns the outputs, whether the execution completed,
   and the branch points actually encountered as (chosen, arity) pairs
   in order.  Branch points of arity 1 are not recorded. *)
let run_path ?(record = false) ?(max_depth = 200) ?(cheap_collect = false)
    ~n ~setup path =
  let memory, body = setup () in
  let statuses = Array.init n (fun pid -> Fiber.spawn (fun () -> body ~pid)) in
  let trace = if record then Some (Trace.create ()) else None in
  let recorded = ref [] in
  let remaining = ref path in
  let take arity =
    let chosen = match !remaining with c :: tl -> remaining := tl; c | [] -> 0 in
    let chosen = if chosen < 0 || chosen >= arity then 0 else chosen in
    recorded := (chosen, arity) :: !recorded;
    chosen
  in
  let enabled () =
    let pids = ref [] in
    for pid = n - 1 downto 0 do
      match statuses.(pid) with
      | Fiber.Running _ -> pids := pid :: !pids
      | Fiber.Finished _ -> ()
    done;
    !pids
  in
  let depth = ref 0 in
  let completed = ref false in
  let running = ref true in
  while !running do
    match enabled () with
    | [] ->
      completed := true;
      running := false
    | en ->
      if !depth >= max_depth then running := false
      else begin
        let arity = List.length en in
        let idx = if arity = 1 then 0 else take arity in
        let pid = List.nth en idx in
        (match statuses.(pid) with
         | Fiber.Finished _ -> assert false
         | Fiber.Running (op, k) ->
           let landed =
             match Op.prob (Op.Any op) with
             | Some p when p <= 0.0 -> false
             | Some p when p >= 1.0 -> true
             | Some _ -> take 2 = 0
             | None -> Op.is_write (Op.Any op)
           in
           let result, observed = apply_det ~cheap_collect ~landed memory op in
           Option.iter
             (fun t ->
               Trace.add t
                 { Trace.step = !depth; pid; op = Op.Any op; landed; observed })
             trace;
           statuses.(pid) <- Fiber.resume k result);
        incr depth
      end
  done;
  let outputs =
    Array.map (function Fiber.Finished r -> Some r | Fiber.Running _ -> None) statuses
  in
  { outputs; completed = !completed; branches = List.rev !recorded; trace }

(* The lexicographically next unexplored path after [recorded]: bump the
   deepest branch point that still has an untried alternative and drop
   everything after it. *)
let next_path recorded =
  let rec go = function
    | [] -> None
    | (c, arity) :: shallower_rev ->
      if c + 1 < arity
      then Some (List.rev_append (List.map fst shallower_rev) [ c + 1 ])
      else go shallower_rev
  in
  go (List.rev recorded)

let explore ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(stop = fun () -> false) ~n ~setup ~check () =
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let runs = ref 0 in
  let stats exhausted =
    { complete = !complete_count; truncated = !truncated_count; exhausted }
  in
  let rec go path =
    if !runs >= max_runs || stop () then Ok (stats false)
    else begin
      incr runs;
      let r = run_path ~max_depth ~cheap_collect ~n ~setup path in
      if r.completed then incr complete_count else incr truncated_count;
      match check ~complete:r.completed r.outputs with
      | Error reason -> Error (reason, stats false)
      | Ok () ->
        (match next_path r.branches with
         | None -> Ok (stats true)
         | Some path' -> go path')
    end
  in
  go []
