type stats = {
  complete : int;
  truncated : int;
  exhausted : bool;
  steps : int;
}

type 'r run = {
  outputs : 'r option array;
  completed : bool;
  crashed : bool array;
  branches : (int * int) list;
  trace : Trace.t option;
  steps : int;
}

(* The coin decision for a pending operation, in the explorer's
   convention: probabilistic writes with 0 < p < 1 branch on the coin
   (choice 0 = landed), reads on registers the setup marked weak branch
   on freshness (choice 0 = fresh, so default-0 paths replay the atomic
   semantics), and everything else is deterministic. *)
let coin_of_op ~memory op =
  match Op.prob op with
  | Some p when p <= 0.0 -> `Det false
  | Some p when p >= 1.0 -> `Det true
  | Some _ -> `Coin
  | None ->
    (match op with
     | Op.Any (Op.Read l) when Memory.is_weak memory l -> `Weak
     | _ -> `Det (Op.is_write op))

(* The currently crash-stopped pids, ascending — the candidate set for
   a recovery choice.  Rebuilt per branch point; n is tiny. *)
let crashed_pids machine ~n =
  let acc = ref [] in
  for pid = n - 1 downto 0 do
    if Machine.is_crashed machine pid then acc := pid :: !acc
  done;
  Array.of_list !acc

(* Run one execution following [path] (list of branch choices); choices
   beyond the path default to 0, and out-of-range choices are clamped to
   0 so that a schedule recorded against one protocol can be replayed
   against another (e.g. a fixed protocol vs the buggy test double it
   was found on).  Returns the outputs, whether the execution completed,
   and the branch points actually encountered as (chosen, arity) pairs
   in order.  Branch points of arity 1 are not recorded.

   With a crash budget f > 0 ([faults]), every scheduling point over
   enabled set [en] widens from |en| to 2|en| choices while budget
   remains: index i < |en| steps en.(i), index |en| + j crash-stops
   en.(j).  Crash choices come after step choices so the all-zeros path
   is still the failure-free canonical execution.

   With additionally a recovery budget r > 0, a third band of m choices
   follows (m = currently crash-stopped pids, ascending): index
   |bands| + j recovers the j-th crashed pid.  When every live process
   has finished but crashed pids remain recoverable, the point becomes
   a stop-or-recover node of arity 1 + m: choice 0 ends the execution
   (complete leaf, keeping all-zeros canonical), choice 1 + j recovers.
   With r = 0 the tree is bit-identical to the crash-only one. *)
let run_path ?engine ?(record = false) ?(max_depth = 200) ?(cheap_collect = false)
    ?(faults = Fault.none) ?sink ~n ~setup path =
  let memory, body = setup () in
  let trace = if record then Some (Trace.create ()) else None in
  let machine = Machine.create ?engine ~cheap_collect ?trace ?sink ~n ~memory body in
  let recorded = ref [] in
  let remaining = ref path in
  let crashes_left = ref faults.Fault.crashes in
  let take arity =
    let chosen = match !remaining with c :: tl -> remaining := tl; c | [] -> 0 in
    let chosen = if chosen < 0 || chosen >= arity then 0 else chosen in
    recorded := (chosen, arity) :: !recorded;
    chosen
  in
  let recoveries_left = ref faults.Fault.recoveries in
  let completed = ref false in
  let running = ref true in
  while !running do
    let en = Machine.enabled machine in
    let arity = Array.length en in
    let rec_pids =
      if !recoveries_left > 0 then crashed_pids machine ~n else [||]
    in
    let m = Array.length rec_pids in
    if arity = 0 && m = 0 then begin
      completed := true;
      running := false
    end
    else if Machine.steps machine >= max_depth then running := false
    else if arity = 0 then begin
      (* Stop-or-recover node: every live process finished, but crashed
         pids remain recoverable.  Choice 0 ends the execution. *)
      let idx = take (1 + m) in
      if idx = 0 then begin
        completed := true;
        running := false
      end
      else begin
        decr recoveries_left;
        Machine.recover machine ~pid:rec_pids.(idx - 1)
      end
    end
    else begin
      let base = if !crashes_left > 0 then 2 * arity else arity in
      let total = base + m in
      let idx = if total = 1 then 0 else take total in
      if idx >= base then begin
        decr recoveries_left;
        Machine.recover machine ~pid:rec_pids.(idx - base)
      end
      else if idx >= arity then begin
        decr crashes_left;
        Machine.crash machine ~pid:en.(idx - arity)
      end
      else begin
        let pid = en.(idx) in
        let landed =
          match Machine.coin_class machine pid with
          | 0 -> false
          | 1 -> true
          | 2 -> take 2 = 0
          | _ -> take 2 = 1
        in
        Machine.step_forced machine ~pid ~landed
      end
    end
  done;
  { outputs = Machine.outputs machine;
    completed = !completed;
    crashed = Array.init n (Machine.is_crashed machine);
    branches = List.rev !recorded;
    trace;
    steps = Machine.steps machine }

(* The lexicographically next unexplored path after [recorded], never
   bumping a branch point before position [lo]: the enumeration stays
   inside the subtree whose first [lo] choices are pinned, and returns
   [None] once the subtree is exhausted.  [lo = 0] is the classic full
   enumeration. *)
let next_path_from ~lo recorded =
  let pos = List.length recorded in
  let rec go pos = function
    | [] -> None
    | (c, arity) :: shallower_rev ->
      if pos > lo && c + 1 < arity
      then Some (List.rev_append (List.map fst shallower_rev) [ c + 1 ])
      else go (pos - 1) shallower_rev
  in
  go pos (List.rev recorded)

(* The lexicographically next unexplored path after [recorded]: bump the
   deepest branch point that still has an untried alternative and drop
   everything after it. *)
let next_path recorded = next_path_from ~lo:0 recorded

exception Abort of string
exception Out_of_budget

(* Stateful DFS: the machine advances through the tree in place; each
   internal node with more than one child snapshots once, and visiting
   a later child restores that snapshot in O(|memory| + n) instead of
   re-executing the path prefix.  Single-successor corridors (one
   enabled process, deterministic coin, no crash budget) — the common
   case — cost no snapshot at all.  Leaves are visited in exactly the
   lexicographic order of the re-execution enumerator ([run_path] +
   [next_path], kept as [Conrat_verify.Naive]), so the two engines'
   statistics and outcome sequences coincide leaf for leaf. *)
let explore ?engine ?(max_depth = 200) ?(max_runs = 2_000_000) ?(cheap_collect = false)
    ?(faults = Fault.none) ?(stop = fun () -> false) ?sink ?heartbeat
    ~n ~setup ~check () =
  let memory, body = setup () in
  let machine = Machine.create ?engine ~cheap_collect ?sink ~n ~memory body in
  let complete_count = ref 0 in
  let truncated_count = ref 0 in
  let runs = ref 0 in
  let stats exhausted =
    { complete = !complete_count;
      truncated = !truncated_count;
      exhausted;
      steps = Machine.total_steps machine }
  in
  let leaf complete =
    if !runs >= max_runs || stop () then raise Out_of_budget;
    incr runs;
    if complete then incr complete_count else incr truncated_count;
    (match heartbeat with
     | None -> ()
     | Some hb ->
       hb ~runs:!runs ~steps:(Machine.total_steps machine)
         ~depth:(Machine.steps machine));
    match check ~complete (Machine.outputs machine) with
    | Ok () -> ()
    | Error reason -> raise (Abort reason)
  in
  let rec go ~crashes_left ~recoveries_left depth =
    let en = Machine.enabled machine in
    let arity = Array.length en in
    let rec_pids =
      if recoveries_left > 0 then crashed_pids machine ~n else [||]
    in
    let m = Array.length rec_pids in
    if arity = 0 && m = 0 then leaf true
    else if depth >= max_depth then leaf false
    else if arity = 0 then begin
      (* Stop-or-recover node: choice 0 is a complete leaf, choice
         1 + j recovers rec_pids.(j) — same encoding as [run_path]. *)
      let snap = Machine.snapshot machine in
      leaf true;
      for j = 0 to m - 1 do
        if j > 0 then Machine.restore machine snap;
        Machine.recover machine ~pid:rec_pids.(j);
        go ~crashes_left ~recoveries_left:(recoveries_left - 1) (depth + 1)
      done
    end
    else begin
      let base = if crashes_left > 0 then 2 * arity else arity in
      let total = base + m in
      if total = 1 then
        visit ~snap:None ~crashes_left ~recoveries_left ~idx:0 ~en ~rec_pids
          (depth + 1)
      else begin
        (* The machine's enabled array mutates as we step; iterate a copy. *)
        let en = Array.copy en in
        let snap = Machine.snapshot machine in
        for idx = 0 to total - 1 do
          if idx > 0 then Machine.restore machine snap;
          visit ~snap:(Some snap) ~crashes_left ~recoveries_left ~idx ~en
            ~rec_pids (depth + 1)
        done
      end
    end
  and visit ~snap ~crashes_left ~recoveries_left ~idx ~en ~rec_pids depth =
    (* Machine is at the branch state; apply the idx-th choice. *)
    let arity = Array.length en in
    let base = if crashes_left > 0 then 2 * arity else arity in
    if idx >= base then begin
      Machine.recover machine ~pid:rec_pids.(idx - base);
      go ~crashes_left ~recoveries_left:(recoveries_left - 1) depth
    end
    else if idx >= arity then begin
      Machine.crash machine ~pid:en.(idx - arity);
      go ~crashes_left:(crashes_left - 1) ~recoveries_left depth
    end
    else begin
      let pid = en.(idx) in
      let branch first second =
        (* The coin's pre-state is the node state itself: reuse (or take)
           the node snapshot rather than a second one. *)
        let snap = match snap with Some s -> s | None -> Machine.snapshot machine in
        Machine.step_forced machine ~pid ~landed:first;
        go ~crashes_left ~recoveries_left depth;
        Machine.restore machine snap;
        Machine.step_forced machine ~pid ~landed:second;
        go ~crashes_left ~recoveries_left depth
      in
      match Machine.coin_class machine pid with
      | 0 ->
        Machine.step_forced machine ~pid ~landed:false;
        go ~crashes_left ~recoveries_left depth
      | 1 ->
        Machine.step_forced machine ~pid ~landed:true;
        go ~crashes_left ~recoveries_left depth
      | 2 -> branch true false
      | _ -> branch false true
    end
  in
  match
    go ~crashes_left:faults.Fault.crashes
      ~recoveries_left:faults.Fault.recoveries 0
  with
  | () -> Ok (stats true)
  | exception Out_of_budget -> Ok (stats false)
  | exception Abort reason -> Error (reason, stats false)
