(* Lazily-compiled flat instruction code for the register-file VM.

   A [Program.t] is a closure-bearing tree: it cannot be statically
   flattened, because each continuation is an opaque OCaml function.
   The compiler here instead *interns* the tree one step at a time: the
   first time an execution steps through a (state, observation) edge,
   the continuation is invoked once and its residual program is encoded
   as a new integer-indexed instruction; every later traversal of the
   same edge — and a backtracking explorer retraverses each edge up to
   millions of times — is an integer table lookup that allocates
   nothing.

   Soundness rests on the replay-purity contract of {!Program}: a
   continuation re-invoked with the same observation returns a
   behaviourally identical residual program, so memoizing its first
   unfolding is exact.  Program counters form a forest (one tree per
   process; each pc has exactly one incoming edge), so on a straight-
   line run every dispatch is a miss and continuations are invoked
   exactly once, in exactly the tree interpreter's order — protocols
   that draw local randomness inside continuations behave identically
   under either engine wherever their behaviour was defined at all.

   The one global effect a continuation may legally perform is lazy
   register allocation (the unbounded constructions of §4.1.1 allocate
   instances on demand).  Allocated addresses depend on the *global*
   store length, not just on local history, so an interned successor
   records the store length it was unfolded at plus the initial
   contents of the registers it allocated: a memo hit replays the
   allocations (the truncating restore that made this state reachable
   again un-allocated them), and a traversal at a different store
   length interns a sibling successor (chained via [alt]) whose
   instructions capture the right addresses. *)

exception Collect_disallowed

type 'r instr =
  | Halt
  | Read of {
      loc : Memory.loc;
      k : int option -> 'r Program.t;
      (* Successor chain heads indexed by the observation: slot 0 =
         read ⊥, slot v+1 = read v ≥ 0; the rare negative values
         overflow into the [neg] association list. *)
      mutable tab : int array;
      mutable neg : (int * int) list;
    }
  | Write of {
      loc : Memory.loc;
      value : int;
      k : unit -> 'r Program.t;
      mutable next : int;
    }
  | Prob of {
      (* A blind probabilistic write: the coin decides the memory
         effect but the process learns nothing, so there is a single
         successor. *)
      loc : Memory.loc;
      value : int;
      k : unit -> 'r Program.t;
      mutable next : int;
    }
  | Prob_detect of {
      loc : Memory.loc;
      value : int;
      k : bool -> 'r Program.t;
      mutable hit : int;
      mutable miss : int;
    }
  | Collect of {
      loc : Memory.loc;
      len : int;
      k : int option array -> 'r Program.t;
      mutable succs : (int option array * int) list;
    }

(* Shared empty array: physical equality marks "this pc allocated no
   registers", the overwhelmingly common case. *)
let no_allocs : int option array = [||]

type 'r t = {
  memory : Memory.t;
  roots : int array;
  (* Recover continuation entry per pid, -1 when the protocol declares
     none (a restarted process then re-enters at its main root). *)
  rec_roots : int array;
  mutable instrs : 'r instr array;
  mutable pend : Op.any option array;   (* pending descriptor, shared *)
  mutable stages : string option array; (* absolute stage label here *)
  mutable results : 'r option array;    (* [Some r] exactly at [Halt] *)
  mutable coins : int array;            (* cached branching class *)
  mutable allocs : int option array array;
  mutable prelen : int array;           (* store length when unfolded *)
  mutable alt : int array;              (* same-edge, other [prelen] *)
  mutable len : int;
  mutable last_observed : int option;
}

(* Branching classes, shared with [Machine.coin_class]: 0 = forced
   miss, 1 = forced landed, 2 = coin (0 < p < 1), 3 = weak-register
   read (forks on freshness).  Weakness is configuration fixed at setup
   time, so the class is a per-pc constant. *)
let class_of : type a. Memory.t -> a Op.t -> int =
  fun memory op ->
  match op with
  | Op.Prob_write (_, _, p) | Op.Prob_write_detect (_, _, p) ->
    if p <= 0.0 then 0 else if p >= 1.0 then 1 else 2
  | Op.Read l -> if Memory.is_weak memory l then 3 else 0
  | Op.Write _ -> 1
  | Op.Collect _ -> 0

let grow t =
  let cap = 2 * Array.length t.instrs in
  let instrs = Array.make cap Halt in
  Array.blit t.instrs 0 instrs 0 t.len;
  t.instrs <- instrs;
  let pend = Array.make cap None in
  Array.blit t.pend 0 pend 0 t.len;
  t.pend <- pend;
  let stages = Array.make cap None in
  Array.blit t.stages 0 stages 0 t.len;
  t.stages <- stages;
  let results = Array.make cap None in
  Array.blit t.results 0 results 0 t.len;
  t.results <- results;
  let coins = Array.make cap 0 in
  Array.blit t.coins 0 coins 0 t.len;
  t.coins <- coins;
  let allocs = Array.make cap no_allocs in
  Array.blit t.allocs 0 allocs 0 t.len;
  t.allocs <- allocs;
  let prelen = Array.make cap 0 in
  Array.blit t.prelen 0 prelen 0 t.len;
  t.prelen <- prelen;
  let alt = Array.make cap (-1) in
  Array.blit t.alt 0 alt 0 t.len;
  t.alt <- alt

let add t instr ~pend ~stage ~result ~coin ~allocs ~prelen =
  if t.len = Array.length t.instrs then grow t;
  let pc = t.len in
  t.instrs.(pc) <- instr;
  t.pend.(pc) <- pend;
  t.stages.(pc) <- stage;
  t.results.(pc) <- result;
  t.coins.(pc) <- coin;
  t.allocs.(pc) <- allocs;
  t.prelen.(pc) <- prelen;
  t.alt.(pc) <- -1;
  t.len <- pc + 1;
  pc

(* Peel stage labels exactly as the tree interpreter's [settle] does:
   the innermost label becomes the pc's stage; with none, the parent
   pc's stage is inherited (stages are sticky). *)
let rec peel stage p =
  match p with
  | Program.Label (s, p) -> peel (Some s) p
  | p -> (stage, p)

let intern t ~stage ~prelen ~allocs p =
  let stage, p = peel stage p in
  match p with
  | Program.Label _ -> assert false (* peeled *)
  | Program.Recoverable _ ->
    (* Root-only: [compile] peels the declaration before interning;
       one reached mid-program escaped a protocol author's root. *)
    invalid_arg "Code: Recoverable below the protocol root"
  | Program.Done r ->
    add t Halt ~pend:None ~stage ~result:(Some r) ~coin:0 ~allocs ~prelen
  | Program.Step (op, k) ->
    let coin = class_of t.memory op in
    let instr =
      match op with
      | Op.Read loc -> Read { loc; k; tab = [||]; neg = [] }
      | Op.Write (loc, value) -> Write { loc; value; k; next = -1 }
      | Op.Prob_write (loc, value, _) -> Prob { loc; value; k; next = -1 }
      | Op.Prob_write_detect (loc, value, _) ->
        Prob_detect { loc; value; k; hit = -1; miss = -1 }
      | Op.Collect (loc, len) -> Collect { loc; len; k; succs = [] }
    in
    (* The pending descriptor wraps the *original* op value, so traces
       and artifacts carry bit-identical floats under either engine. *)
    add t instr ~pend:(Some (Op.Any op)) ~stage ~result:None ~coin ~allocs ~prelen

let compile ~memory ~n body =
  let t =
    { memory;
      roots = Array.make n (-1);
      rec_roots = Array.make n (-1);
      instrs = Array.make 64 Halt;
      pend = Array.make 64 None;
      stages = Array.make 64 None;
      results = Array.make 64 None;
      coins = Array.make 64 0;
      allocs = Array.make 64 no_allocs;
      prelen = Array.make 64 0;
      alt = Array.make 64 (-1);
      len = 0;
      last_observed = None }
  in
  (* Bodies are evaluated in pid order, like the tree interpreter's
     [create]: any pure prefix (including register allocation) runs
     here.  Roots are never re-dispatched, so they record no allocs —
     which also makes them valid re-entry points at any store length,
     exactly what crash-recovery needs. *)
  for pid = 0 to n - 1 do
    let stage, p = peel None (body ~pid) in
    match p with
    | Program.Recoverable { main; recover } ->
      t.roots.(pid) <-
        intern t ~stage ~prelen:(Memory.size memory) ~allocs:no_allocs main;
      t.rec_roots.(pid) <-
        intern t ~stage ~prelen:(Memory.size memory) ~allocs:no_allocs recover
    | p ->
      t.roots.(pid) <-
        intern t ~stage ~prelen:(Memory.size memory) ~allocs:no_allocs p
  done;
  t

let root t pid = t.roots.(pid)

(* Re-entry pc for a recovering process: the declared recover
   continuation, or the main root (restart from the top) without one. *)
let rec_root t pid =
  if t.rec_roots.(pid) >= 0 then t.rec_roots.(pid) else t.roots.(pid)
let pending t pc = t.pend.(pc)
let stage t pc = t.stages.(pc)
let result t pc = t.results.(pc)
let coin_class t pc = t.coins.(pc)
let size t = t.len
let last_observed t = t.last_observed

(* First chain entry usable at store length [len0]: a pc that allocated
   nothing is address-stable, otherwise its recorded unfold length must
   match so that replayed allocations land at the addresses its
   instructions captured. *)
let rec chain_lookup t pc len0 =
  if pc < 0 then -1
  else if t.allocs.(pc) == no_allocs || t.prelen.(pc) = len0 then pc
  else chain_lookup t t.alt.(pc) len0

(* Memo hit on an allocating pc: the continuation is not re-invoked, so
   re-perform its recorded allocations. *)
let replay_allocs t pc =
  let inits = t.allocs.(pc) in
  if inits != no_allocs then
    for i = 0 to Array.length inits - 1 do
      match inits.(i) with
      | None -> ignore (Memory.alloc t.memory : Memory.loc)
      | Some v -> ignore (Memory.alloc ~init:v t.memory : Memory.loc)
    done

let capture_allocs t len0 =
  let len1 = Memory.size t.memory in
  if len1 = len0 then no_allocs
  else Array.init (len1 - len0) (fun i -> Memory.read t.memory (len0 + i))

(* Cold path: unfold one continuation, capturing any registers it
   allocates, and intern the residual program at the head of the
   edge's chain.  The caller installs the returned pc in its slot. *)
let unfold : type a r. r t -> stage:string option -> len0:int ->
  (a -> r Program.t) -> a -> int -> int =
  fun t ~stage ~len0 k v head ->
  let p = k v in
  let allocs = capture_allocs t len0 in
  let q = intern t ~stage ~prelen:len0 ~allocs p in
  t.alt.(q) <- head;
  q

(* Execute the instruction at [pc] with the coin already decided,
   applying its memory effect and returning the successor pc.  What a
   read observed is left in [last_observed] (the cell's own option
   value — nothing is allocated) for the façade's trace recording. *)
let step t ~cheap_collect ~pc ~landed =
  let stage = t.stages.(pc) in
  match t.instrs.(pc) with
  | Halt -> invalid_arg "Code.step: process already halted"
  | Read r ->
    let v =
      if landed then Memory.read_stale t.memory r.loc
      else Memory.read t.memory r.loc
    in
    t.last_observed <- v;
    let len0 = Memory.size t.memory in
    let e = match v with None -> 0 | Some x -> if x >= 0 then x + 1 else -1 in
    if e >= 0 then begin
      if e >= Array.length r.tab then begin
        let cap = max (e + 1) (2 * Array.length r.tab + 1) in
        let tab = Array.make cap (-1) in
        Array.blit r.tab 0 tab 0 (Array.length r.tab);
        r.tab <- tab
      end;
      let head = r.tab.(e) in
      let q = chain_lookup t head len0 in
      if q >= 0 then begin replay_allocs t q; q end
      else begin
        let q = unfold t ~stage ~len0 r.k v head in
        r.tab.(e) <- q;
        q
      end
    end
    else begin
      let key = match v with Some x -> x | None -> assert false in
      let head =
        match List.assoc_opt key r.neg with Some h -> h | None -> -1
      in
      let q = chain_lookup t head len0 in
      if q >= 0 then begin replay_allocs t q; q end
      else begin
        let q = unfold t ~stage ~len0 r.k v head in
        r.neg <- (key, q) :: List.remove_assoc key r.neg;
        q
      end
    end
  | Write w ->
    Memory.write t.memory w.loc w.value;
    t.last_observed <- None;
    let len0 = Memory.size t.memory in
    let q = chain_lookup t w.next len0 in
    if q >= 0 then begin replay_allocs t q; q end
    else begin
      let q = unfold t ~stage ~len0 w.k () w.next in
      w.next <- q;
      q
    end
  | Prob w ->
    if landed then Memory.write t.memory w.loc w.value;
    t.last_observed <- None;
    let len0 = Memory.size t.memory in
    let q = chain_lookup t w.next len0 in
    if q >= 0 then begin replay_allocs t q; q end
    else begin
      let q = unfold t ~stage ~len0 w.k () w.next in
      w.next <- q;
      q
    end
  | Prob_detect w ->
    if landed then Memory.write t.memory w.loc w.value;
    t.last_observed <- None;
    let len0 = Memory.size t.memory in
    let head = if landed then w.hit else w.miss in
    let q = chain_lookup t head len0 in
    if q >= 0 then begin replay_allocs t q; q end
    else begin
      let q = unfold t ~stage ~len0 w.k landed head in
      (if landed then w.hit <- q else w.miss <- q);
      q
    end
  | Collect c ->
    if not cheap_collect then raise Collect_disallowed;
    let arr = Array.init c.len (fun i -> Memory.read t.memory (c.loc + i)) in
    t.last_observed <- None;
    let len0 = Memory.size t.memory in
    let head =
      match List.find_opt (fun (key, _) -> key = arr) c.succs with
      | Some (_, h) -> h
      | None -> -1
    in
    let q = chain_lookup t head len0 in
    if q >= 0 then begin replay_allocs t q; q end
    else begin
      let q = unfold t ~stage ~len0 c.k arr head in
      c.succs <- (arr, q) :: List.filter (fun (key, _) -> key <> arr) c.succs;
      q
    end
