(** The protocol compiler: {!Program} trees interned into flat,
    integer-indexed instruction code for the register-file VM.

    Compilation is lazy and memoizing: an instruction is created the
    first time an execution steps through a (state, observation) edge —
    invoking the continuation exactly once — and every later traversal
    of that edge resolves through precomputed integer tables with zero
    heap allocation.  Program counters form a forest (one tree per
    process, one incoming edge per pc), so straight-line runs invoke
    continuations exactly as the tree interpreter does, and memo hits
    occur only when a backtracking explorer revisits a state, where the
    replay-purity contract of {!Program} makes the cached unfolding
    exact.

    Continuations may lazily allocate registers (the paper's unbounded
    constructions do); an interned successor records the store length
    it was unfolded at and the initial contents of what it allocated,
    so memo hits replay the allocations and traversals at a different
    store length intern a separate successor capturing the right
    addresses.  Continuations must not otherwise read or write the
    store except through performed operations — the same contract the
    backtracking tree explorer already imposes. *)

exception Collect_disallowed
(** Raised when a program performs a collect without the cheap-collect
    model enabled (re-exported as [Machine.Collect_disallowed]). *)

type 'r t
(** A code store: the instruction array plus per-pc side tables
    (pending-op descriptors, stage labels, results, branching classes),
    growing as new edges are interned. *)

val compile : memory:Memory.t -> n:int -> (pid:int -> 'r Program.t) -> 'r t
(** Intern each process's entry point.  Bodies are evaluated in pid
    order, running any pure prefix (including register allocation),
    exactly like the tree interpreter's [Machine.create]. *)

val root : 'r t -> int -> int
(** Entry pc of a process. *)

val rec_root : 'r t -> int -> int
(** Re-entry pc for a recovering process: the recover continuation the
    protocol declared via {!Program.Recoverable}, or the main root
    (restart from the top) when it declared none.  Like roots, re-entry
    pcs record no allocations, so they are valid at any store
    length. *)

val pending : 'r t -> int -> Op.any option
(** The pending-operation descriptor at a pc — allocated once at intern
    time and shared, wrapping the original [Op.t] value so serialized
    traces are bit-identical to the tree engine's.  [None] at halts. *)

val stage : 'r t -> int -> string option
(** Absolute stage label at a pc (innermost {!Program.label} peeled on
    the way here, or inherited — a pc encodes the full local history,
    so the tree interpreter's sticky per-process stage is a per-pc
    constant). *)

val result : 'r t -> int -> 'r option
(** [Some r] exactly at halt pcs. *)

val coin_class : 'r t -> int -> int
(** Cached branching class of the pc's operation: 0 = forced miss, 1 =
    forced landed, 2 = coin ([0 < p < 1]), 3 = weak-register read.
    Same classification as [Explore.coin_of_op], as a nonallocating
    int. *)

val size : 'r t -> int
(** Number of instructions interned so far. *)

val step : 'r t -> cheap_collect:bool -> pc:int -> landed:bool -> int
(** Execute the instruction at [pc] with the coin outcome already
    decided (for reads, [landed = true] delivers the stale value of a
    weak register), applying its memory effect and returning the
    successor pc — dispatching through the memo tables, interning on a
    miss.  Raises [Invalid_argument] at a halt pc and
    {!Collect_disallowed} on a collect without [cheap_collect]. *)

val last_observed : 'r t -> int option
(** What the most recent {!step}'s read observed ([None] for other
    operations) — the cell's own option value, exposed separately so
    the hot path allocates nothing. *)
