(** Observation sinks: the tap every execution engine drains into.

    A sink is a set of callbacks the {!Machine} invokes as it executes:
    one per applied operation (with the process, operation kind,
    register, coin outcome and current {!Program.label} stage), one when
    a process returns, and one per explorer snapshot/restore.  Engines
    thread an optional sink down to the machine; when none is installed
    the whole mechanism costs a single branch per transition (see
    [bench/obs_overhead.ml] and the [obs-bench] CI gate).

    Three callbacks sit above the machine: the fleet-level steal and
    shard-completion events fired by the parallel driver, and the
    checkpoint-save event fired by a sequential explorer.  They share
    the sink record so one tap (e.g. the Chrome-trace exporter in
    [Conrat_obs]) can observe a whole run, sequential or sharded.

    Concrete sinks live in [Conrat_obs]: a Chrome trace-event exporter,
    a live work-bound checker, and a per-stage work histogram.  This
    module only defines the interface (it must be visible to the
    machine) plus the trivial combinators. *)

type t = {
  on_op :
    step:int -> pid:int -> kind:Op.kind -> loc:Memory.loc -> landed:bool ->
    stage:string option -> unit;
      (** One applied transition.  [step] is the 0-based position on the
          current path, [landed] whether memory changed (for reads it is
          [false]), [stage] the innermost enclosing {!Program.label}. *)
  on_decide : step:int -> pid:int -> unit;
      (** [pid]'s program returned; [step] transitions had been applied. *)
  on_crash : step:int -> pid:int -> unit;
      (** [pid] crash-stopped (a fault-plane pseudo-transition). *)
  on_recover : step:int -> pid:int -> unit;
      (** [pid] restarted after a crash (the symmetric crash-recovery
          pseudo-transition: volatile registers wiped, program state
          re-entered at the recover continuation). *)
  on_snapshot : step:int -> unit;  (** an explorer snapshotted the state *)
  on_restore : step:int -> unit;   (** an explorer backtracked to a snapshot *)
  on_steal : domain:int -> shard:int -> prefix:int -> unit;
      (** a parallel worker stole shard [shard] (frontier index) whose
          path prefix has length [prefix] — fleet-level, fired by
          {!section-"Conrat_verify"}[.Parallel], not the machine *)
  on_shard_done : domain:int -> shard:int -> leaves:int -> steps:int -> unit;
      (** the worker finished the shard: [leaves] leaves reached,
          [steps] rebased machine transitions *)
  on_checkpoint : step:int -> unit;
      (** a sequential explorer saved a checkpoint frontier; [step] is
          the current path depth *)
}

val make :
  ?on_op:
    (step:int -> pid:int -> kind:Op.kind -> loc:Memory.loc -> landed:bool ->
     stage:string option -> unit) ->
  ?on_decide:(step:int -> pid:int -> unit) ->
  ?on_crash:(step:int -> pid:int -> unit) ->
  ?on_recover:(step:int -> pid:int -> unit) ->
  ?on_snapshot:(step:int -> unit) ->
  ?on_restore:(step:int -> unit) ->
  ?on_steal:(domain:int -> shard:int -> prefix:int -> unit) ->
  ?on_shard_done:(domain:int -> shard:int -> leaves:int -> steps:int -> unit) ->
  ?on_checkpoint:(step:int -> unit) ->
  unit ->
  t
(** A sink with the given callbacks; omitted ones do nothing. *)

val null : t
(** The no-op sink: every callback does nothing.  Attaching it measures
    the pure dispatch overhead of the instrumentation. *)

val tee : t -> t -> t
(** [tee a b] forwards every event to [a] then [b]. *)
