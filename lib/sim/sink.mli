(** Observation sinks: the tap every execution engine drains into.

    A sink is a set of callbacks the {!Machine} invokes as it executes:
    one per applied operation (with the process, operation kind,
    register, coin outcome and current {!Program.label} stage), one when
    a process returns, and one per explorer snapshot/restore.  Engines
    thread an optional sink down to the machine; when none is installed
    the whole mechanism costs a single branch per transition (see
    [bench/obs_overhead.ml] and the [obs-bench] CI gate).

    Concrete sinks live in [Conrat_obs]: a Chrome trace-event exporter,
    a live work-bound checker, and a per-stage work histogram.  This
    module only defines the interface (it must be visible to the
    machine) plus the trivial combinators. *)

type t = {
  on_op :
    step:int -> pid:int -> kind:Op.kind -> loc:Memory.loc -> landed:bool ->
    stage:string option -> unit;
      (** One applied transition.  [step] is the 0-based position on the
          current path, [landed] whether memory changed (for reads it is
          [false]), [stage] the innermost enclosing {!Program.label}. *)
  on_decide : step:int -> pid:int -> unit;
      (** [pid]'s program returned; [step] transitions had been applied. *)
  on_crash : step:int -> pid:int -> unit;
      (** [pid] crash-stopped (a fault-plane pseudo-transition). *)
  on_snapshot : step:int -> unit;  (** an explorer snapshotted the state *)
  on_restore : step:int -> unit;   (** an explorer backtracked to a snapshot *)
}

val make :
  ?on_op:
    (step:int -> pid:int -> kind:Op.kind -> loc:Memory.loc -> landed:bool ->
     stage:string option -> unit) ->
  ?on_decide:(step:int -> pid:int -> unit) ->
  ?on_crash:(step:int -> pid:int -> unit) ->
  ?on_snapshot:(step:int -> unit) ->
  ?on_restore:(step:int -> unit) ->
  unit ->
  t
(** A sink with the given callbacks; omitted ones do nothing. *)

val null : t
(** The no-op sink: every callback does nothing.  Attaching it measures
    the pure dispatch overhead of the instrumentation. *)

val tee : t -> t -> t
(** [tee a b] forwards every event to [a] then [b]. *)
