type event = {
  step : int;
  pid : int;
  op : Op.any option;
  landed : bool;
  observed : int option;
}

type t = { mutable events : event array; mutable len : int }

let create () = { events = Array.make 64 { step = 0; pid = 0; op = None; landed = false; observed = None }; len = 0 }

let add t e =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) e in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  t.events.(i)

let events t = Array.to_list (Array.sub t.events 0 t.len)

let event_equal a b =
  a.step = b.step && a.pid = b.pid && a.landed = b.landed && a.observed = b.observed
  && (match (a.op, b.op) with
      | None, None -> true
      | Some a, Some b ->
        Op.kind a = Op.kind b
        && Op.loc a = Op.loc b
        && Op.value a = Op.value b
        && Op.prob a = Op.prob b
      | None, Some _ | Some _, None -> false)

let equal t1 t2 =
  t1.len = t2.len
  && (let rec go i = i >= t1.len || (event_equal t1.events.(i) t2.events.(i) && go (i + 1)) in
      go 0)

let event_to_sexp e =
  let open Sexp in
  match e.op with
  | None when e.landed ->
    (* A crash-recovery pseudo-event: [op = None, landed = true].
       Crashes keep their historical [landed = false] encoding and
       bytes. *)
    List [ of_int e.step; of_int e.pid; Atom "recover" ]
  | None ->
    (* A crash-stop pseudo-event: no operation, no coin, no observation. *)
    List [ of_int e.step; of_int e.pid; Atom "crash" ]
  | Some op ->
    List
      [ of_int e.step;
        of_int e.pid;
        Op.to_sexp op;
        of_bool e.landed;
        (match e.observed with None -> List [] | Some v -> List [ of_int v ]) ]

let event_of_sexp sexp =
  let open Sexp in
  let err () =
    Error (Printf.sprintf "Trace.event_of_sexp: bad event %s" (to_string sexp))
  in
  match sexp with
  | List [ step; pid; Atom "crash" ] ->
    (match (to_int step, to_int pid) with
     | Some step, Some pid -> Ok { step; pid; op = None; landed = false; observed = None }
     | _ -> err ())
  | List [ step; pid; Atom "recover" ] ->
    (match (to_int step, to_int pid) with
     | Some step, Some pid -> Ok { step; pid; op = None; landed = true; observed = None }
     | _ -> err ())
  | List [ step; pid; op; landed; observed ] ->
    (match (to_int step, to_int pid, Op.of_sexp op, to_bool landed, observed) with
     | Some step, Some pid, Ok op, Some landed, List [] ->
       Ok { step; pid; op = Some op; landed; observed = None }
     | Some step, Some pid, Ok op, Some landed, List [ v ] ->
       (match to_int v with
        | Some v -> Ok { step; pid; op = Some op; landed; observed = Some v }
        | None -> err ())
     | _ -> err ())
  | _ -> err ()

let to_sexp t = Sexp.List (List.map event_to_sexp (events t))

let of_sexp sexp =
  match sexp with
  | Sexp.List items ->
    let t = create () in
    let rec go = function
      | [] -> Ok t
      | item :: rest ->
        (match event_of_sexp item with
         | Ok e -> add t e; go rest
         | Error _ as e -> e)
    in
    go items
  | Sexp.Atom _ -> Error "Trace.of_sexp: expected a list of events"

let pp_event ppf e =
  match e.op with
  | None when e.landed -> Format.fprintf ppf "#%d p%d RECOVER" e.step e.pid
  | None -> Format.fprintf ppf "#%d p%d CRASH" e.step e.pid
  | Some op ->
    Format.fprintf ppf "#%d p%d %a%s%s" e.step e.pid Op.pp op
      (if e.landed then "!" else "")
      (match e.observed with None -> "" | Some v -> Printf.sprintf " =>%d" v)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.len - 1 do
    Format.fprintf ppf "%a@," pp_event t.events.(i)
  done;
  Format.fprintf ppf "@]"
