(** The shared store of atomic multi-writer multi-reader registers.

    Registers hold either [None] (the paper's ⊥ / "empty") or [Some v]
    for an arbitrary integer [v].  The store grows on demand so that
    protocols such as the unbounded construction of §4.1.1 can allocate
    fresh conciliator/ratifier instances lazily as processes reach them.

    Reads and writes here are raw accessors used by the scheduler; they
    do {e not} count as protocol operations by themselves — accounting
    happens when the scheduler applies an {!Op.t}. *)

type loc = int
(** A register address. *)

type t

val create : unit -> t
(** An empty store. *)

val alloc : ?init:int -> t -> loc
(** [alloc t] allocates a fresh register initialised to ⊥ (or to
    [Some init] when [~init] is given) and returns its address. *)

val alloc_n : ?init:int -> t -> int -> loc array
(** [alloc_n t k] allocates [k] fresh consecutive registers. *)

val read : t -> loc -> int option
(** Current contents.  Raises [Invalid_argument] on an unallocated
    address. *)

val write : t -> loc -> int -> unit
(** Overwrite a register with [Some v]. *)

val size : t -> int
(** Number of registers allocated so far — the protocol's space
    complexity in registers. *)

val snapshot : t -> int option array
(** A copy of the current contents of all allocated registers (used by
    adversary views and the exhaustive explorer; not a protocol
    operation). *)

val restore : t -> int option array -> unit
(** Overwrite the store from a snapshot taken earlier on this store —
    used only by the exhaustive explorers when backtracking.  Registers
    allocated since the snapshot are deallocated ([size] shrinks back);
    a snapshot longer than the current store raises
    [Invalid_argument]. *)

val pp : Format.formatter -> t -> unit
