(** The shared store of atomic multi-writer multi-reader registers.

    Registers hold either [None] (the paper's ⊥ / "empty") or [Some v]
    for an arbitrary integer [v].  The store grows on demand so that
    protocols such as the unbounded construction of §4.1.1 can allocate
    fresh conciliator/ratifier instances lazily as processes reach them.

    Reads and writes here are raw accessors used by the scheduler; they
    do {e not} count as protocol operations by themselves — accounting
    happens when the scheduler applies an {!Op.t}. *)

type loc = int
(** A register address. *)

type t

val create : unit -> t
(** An empty store. *)

val alloc : ?init:int -> t -> loc
(** [alloc t] allocates a fresh register initialised to ⊥ (or to
    [Some init] when [~init] is given) and returns its address. *)

val alloc_n : ?init:int -> t -> int -> loc array
(** [alloc_n t k] allocates [k] fresh consecutive registers. *)

val read : t -> loc -> int option
(** Current contents.  Raises [Invalid_argument] on an unallocated
    address. *)

val read_stale : t -> loc -> int option
(** The register's contents before its most recent write — the value a
    {e regular} (non-atomic) register may legally return to a read that
    overlaps that write.  Equals {!read} on a register never written
    since allocation.  The shadow is maintained only for registers
    marked weak (the only ones on which drivers deliver stale reads);
    on an atomic register this returns the contents as of the register
    becoming weak, i.e. its initial contents if it never does. *)

val write : t -> loc -> int -> unit
(** Overwrite a register with [Some v]. *)

val mark_weak : t -> loc -> unit
(** Mark one register as regular (non-atomic): fault-aware drivers may
    deliver {!read_stale} results on it. *)

val is_weak : t -> loc -> bool
(** Whether stale reads may be delivered on this register. *)

val weaken_all : t -> unit
(** Mark every currently-allocated register weak, and make weakness the
    default for registers allocated later on this store. *)

val engage_shadow : t -> unit
(** Bench/test hook: force the weak-register conditionals onto their
    deepest disabled-path evaluation (every write tests its register's
    weakness) without weakening any register, so observable behaviour
    stays exactly the atomic model.  The "engaged but inert" arm of the
    fault-plane overhead gate, as {!Sink.null} is to the observability
    gate. *)

(** {1 Crash-recovery plane: persistence and ownership}

    A recovery (see {!Fault.model}[.recoveries]) wipes the registers
    the crashed process {e last wrote}, except those marked persistent.
    Ownership is tracked dynamically — the machine stashes the acting
    pid with {!set_actor} before each operation — and only while
    {!track_writers} is engaged, so recovery-free runs pay one
    predictable branch per write and hash identically to a build
    without the plane. *)

val mark_persistent : t -> loc -> unit
(** Mark one register as surviving its writer's crash (configuration,
    set at allocation/setup time like {!mark_weak}; registers default
    to volatile). *)

val is_persistent : t -> loc -> bool

val track_writers : t -> unit
(** Engage last-writer tracking.  Required before {!wipe_volatile};
    engaged by drivers whose fault model has a recovery budget, and by
    the overhead bench's engaged-but-inert arm.  Never disengages. *)

val tracking : t -> bool

val set_actor : t -> int -> unit
(** Record the pid about to perform the next operation(s); consulted by
    {!write} when tracking to attribute ownership. *)

val writer : t -> loc -> int
(** The pid that last wrote this register, or -1 if never written (or
    wiped, or tracking is off). *)

val wipe_volatile : t -> pid:int -> unit
(** The crash-recovery wipe: revert every volatile register last
    written by [pid] to never-written (⊥, no owner).  Wipes go through
    the same undo journals as writes, so backtracking over a recovery
    restores the pre-wipe state exactly.  Raises [Invalid_argument] if
    tracking is not engaged. *)

val size : t -> int
(** Number of registers allocated so far — the protocol's space
    complexity in registers. *)

val snapshot : t -> int option array
(** A copy of the current contents of all allocated registers (used by
    adversary views and the exhaustive explorer; not a protocol
    operation). *)

val restore : t -> int option array -> unit
(** Overwrite the store from a snapshot taken earlier on this store —
    used only by the exhaustive explorers when backtracking.  Registers
    allocated since the snapshot are deallocated ([size] shrinks back);
    a snapshot longer than the current store raises
    [Invalid_argument]. *)

type backup
(** Full-fidelity state capture for explorer backtracking, as a pure
    delta mark: three journal/length integers, so taking one is O(1)
    and restoring costs O(writes undone) instead of O(|memory|).  The
    first backup on a store permanently enables write journaling (every
    later write pushes its overwritten contents); stores that never
    back up — the Monte Carlo scheduler's — never pay for it.  A backup
    also pins the previous-value shadow consulted by {!read_stale}, so
    stale reads replay identically after backtracking.  Unlike
    {!snapshot} it is opaque — adversary views keep seeing plain
    contents arrays. *)

val backup : t -> backup

val full_backup : t -> backup
(** The historical O(|memory|) capture: copies the live cells and pins
    the stale-read shadow, without enabling write journaling.  Kept for
    the tree-interpreter oracle so differential benchmarks charge it
    the snapshot cost the pre-VM engine actually paid.  Do not mix the
    two kinds on one store: once {!backup} has enabled journaling, a
    full restore would leave stale journal entries behind. *)

val backup_into : t -> backup -> unit
(** Refresh an existing backup (of either kind, keeping its kind) to
    capture the current state — the explorers' pooled-snapshot path,
    which avoids allocating a backup per branch point.  The refreshed
    backup is subject to the same LIFO discipline as a fresh one. *)

val restore_backup : t -> backup -> unit
(** Same truncation semantics as {!restore}.  Backups must be restored
    in the explorers' LIFO discipline (most recent first, each possibly
    several times); restoring one invalidates every backup taken after
    it.  Do not mix with plain {!restore} on a journaling store. *)

val mix1 : int -> int -> int
val mix2 : int -> int -> int
(** The two 63-bit hash folds behind {!hash_fold}, exposed so the other
    state-bearing layers ({!Vm}, [Machine]) extend the same pair of
    accumulators: [mixK h v] absorbs [v] into accumulator [h]. *)

val hash_fold : t -> int -> int -> int * int
(** [hash_fold t h1 h2] folds the store's semantic state — live cell
    contents plus, on weak registers, the stale-read shadow, plus,
    under {!track_writers}, per-register ownership (it decides what a
    future recovery wipes) — into two
    independent 63-bit accumulators and returns them.  Two stores of
    one exploration that are semantically equal (same {!size}, same
    {!read} and {!read_stale} views) fold equally; journals and pooled
    bookkeeping are excluded, so equality of state reached by different
    paths still agrees.  The explorers' duplicate-detection primitive
    (see [Conrat_verify.Por] dedup). *)

val pp : Format.formatter -> t -> unit
