type pending = {
  p_pid : int;
  p_op : Op.any;
}

type full = {
  step : int;
  n : int;
  enabled : int array;
  pending : Op.any option array;
  memory : Memory.t;
  op_counts : Metrics.counts;
}

type oblivious = {
  ob_step : int;
  ob_n : int;
  ob_enabled : int array;
}

type masked_op = {
  m_kind : Op.kind;
  m_loc : Memory.loc option;
  m_value : int option;
  m_prob : float option;
}

type value_oblivious = {
  vo_step : int;
  vo_n : int;
  vo_enabled : int array;
  vo_pending : masked_op option array;
  vo_op_counts : int array;
}

type location_oblivious = {
  lo_step : int;
  lo_n : int;
  lo_enabled : int array;
  lo_pending : masked_op option array;
  lo_contents : int option array;
  lo_op_counts : int array;
}

let to_oblivious v = { ob_step = v.step; ob_n = v.n; ob_enabled = v.enabled }

let mask ~hide_value ~hide_loc any =
  { m_kind = Op.kind any;
    m_loc = (if hide_loc then None else Some (Op.loc any));
    m_value = (if hide_value then None else Op.value any);
    m_prob = Op.prob any }

let to_value_oblivious v =
  { vo_step = v.step;
    vo_n = v.n;
    vo_enabled = v.enabled;
    vo_pending = Array.map (Option.map (mask ~hide_value:true ~hide_loc:false)) v.pending;
    vo_op_counts = Metrics.counts_to_array v.op_counts }

let to_location_oblivious v =
  { lo_step = v.step;
    lo_n = v.n;
    lo_enabled = v.enabled;
    lo_pending = Array.map (Option.map (mask ~hide_value:false ~hide_loc:true)) v.pending;
    lo_contents = Memory.snapshot v.memory;
    lo_op_counts = Metrics.counts_to_array v.op_counts }
