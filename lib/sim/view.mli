(** Adversary views of the execution state.

    The strength of an adversary is defined by what it can observe when
    choosing the next process to move (§2.1).  We enforce each class's
    restriction {e by construction}: an adversary of a given class is
    built from a choice function whose argument type is the projection
    of the full view that the class is allowed to see.  It is therefore
    a type error, not merely a convention, for an oblivious adversary to
    inspect register contents.

    One deliberate deviation, documented here and tested: every view
    includes the set of {e enabled} processes (those that have not yet
    returned), because a scheduler must not stall on a halted process.
    This is the standard convention — a fixed-order oblivious schedule
    simply skips halted processes. *)

type pending = {
  p_pid : int;
  p_op : Op.any;
}

type full = {
  step : int;                     (** operations executed so far *)
  n : int;                        (** number of processes *)
  enabled : int array;            (** pids still running, ascending *)
  pending : Op.any option array;  (** pending op per pid; [None] = halted *)
  memory : Memory.t;              (** the shared store (adaptive only) *)
  op_counts : Metrics.counts;     (** per-pid work so far (read-only) *)
}

type oblivious = {
  ob_step : int;
  ob_n : int;
  ob_enabled : int array;
}
(** What an oblivious adversary sees: nothing but time and liveness. *)

type masked_op = {
  m_kind : Op.kind;
  m_loc : Memory.loc option;   (** [None] when locations are masked *)
  m_value : int option;        (** [None] when values are masked *)
  m_prob : float option;       (** write probability, never masked *)
}

type value_oblivious = {
  vo_step : int;
  vo_n : int;
  vo_enabled : int array;
  vo_pending : masked_op option array;  (** kinds and locations, no values *)
  vo_op_counts : int array;
}
(** Value-oblivious (§2.1, used by Aumann etc.): sees operation types
    and target locations, but neither register contents nor the values
    of pending writes. *)

type location_oblivious = {
  lo_step : int;
  lo_n : int;
  lo_enabled : int array;
  lo_pending : masked_op option array;  (** kinds and values, no locations *)
  lo_contents : int option array;       (** current register contents *)
  lo_op_counts : int array;
}
(** Location-oblivious (§2.1, the class that justifies probabilistic
    writes): sees memory contents and pending write values, but cannot
    tell which register a pending write targets. *)

val to_oblivious : full -> oblivious
val to_value_oblivious : full -> value_oblivious
val to_location_oblivious : full -> location_oblivious
