type t = {
  on_op :
    step:int -> pid:int -> kind:Op.kind -> loc:Memory.loc -> landed:bool ->
    stage:string option -> unit;
  on_decide : step:int -> pid:int -> unit;
  on_crash : step:int -> pid:int -> unit;
  on_recover : step:int -> pid:int -> unit;
  on_snapshot : step:int -> unit;
  on_restore : step:int -> unit;
  on_steal : domain:int -> shard:int -> prefix:int -> unit;
  on_shard_done : domain:int -> shard:int -> leaves:int -> steps:int -> unit;
  on_checkpoint : step:int -> unit;
}

let nop_op ~step:_ ~pid:_ ~kind:_ ~loc:_ ~landed:_ ~stage:_ = ()
let nop_step_pid ~step:_ ~pid:_ = ()
let nop_step ~step:_ = ()
let nop_steal ~domain:_ ~shard:_ ~prefix:_ = ()
let nop_shard_done ~domain:_ ~shard:_ ~leaves:_ ~steps:_ = ()

let make ?(on_op = nop_op) ?(on_decide = nop_step_pid) ?(on_crash = nop_step_pid)
    ?(on_recover = nop_step_pid) ?(on_snapshot = nop_step)
    ?(on_restore = nop_step) ?(on_steal = nop_steal)
    ?(on_shard_done = nop_shard_done) ?(on_checkpoint = nop_step) () =
  { on_op; on_decide; on_crash; on_recover; on_snapshot; on_restore; on_steal;
    on_shard_done; on_checkpoint }

let null = make ()

let tee a b =
  { on_op =
      (fun ~step ~pid ~kind ~loc ~landed ~stage ->
        a.on_op ~step ~pid ~kind ~loc ~landed ~stage;
        b.on_op ~step ~pid ~kind ~loc ~landed ~stage);
    on_decide =
      (fun ~step ~pid ->
        a.on_decide ~step ~pid;
        b.on_decide ~step ~pid);
    on_crash =
      (fun ~step ~pid ->
        a.on_crash ~step ~pid;
        b.on_crash ~step ~pid);
    on_recover =
      (fun ~step ~pid ->
        a.on_recover ~step ~pid;
        b.on_recover ~step ~pid);
    on_snapshot =
      (fun ~step ->
        a.on_snapshot ~step;
        b.on_snapshot ~step);
    on_restore =
      (fun ~step ->
        a.on_restore ~step;
        b.on_restore ~step);
    on_steal =
      (fun ~domain ~shard ~prefix ->
        a.on_steal ~domain ~shard ~prefix;
        b.on_steal ~domain ~shard ~prefix);
    on_shard_done =
      (fun ~domain ~shard ~leaves ~steps ->
        a.on_shard_done ~domain ~shard ~leaves ~steps;
        b.on_shard_done ~domain ~shard ~leaves ~steps);
    on_checkpoint =
      (fun ~step ->
        a.on_checkpoint ~step;
        b.on_checkpoint ~step) }
