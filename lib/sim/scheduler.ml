type 'r result = {
  outputs : 'r option array;
  metrics : Metrics.t;
  steps : int;
  completed : bool;
  crashed : bool array;
  recoveries : int;
  plan_ignored : int;
  trace : Trace.t option;
  registers : int;
}

exception Collect_disallowed = Machine.Collect_disallowed
exception Stuck = Machine.Stuck

let run ?engine ?(max_steps = 10_000_000) ?(record = false) ?(cheap_collect = false)
    ?faults ?sink ~n ~(adversary : Adversary.t) ~rng ~memory body =
  if n <= 0 then invalid_arg "Scheduler.run: n must be positive";
  (* Stream layout is fixed so that executions are reproducible: local
     coins, then probabilistic-write coins, then adversary randomness.
     The fault plan's stream is split last and only when a plan is
     installed, so fault-free runs keep their historical streams. *)
  let local_rngs = Rng.split_n rng n in
  let write_coins = Rng.split_n rng n in
  let choose = adversary.Adversary.fresh ~n (Rng.split rng) in
  let inject =
    match faults with
    | None -> None
    | Some (p : Fault.plan) -> Some (p.Fault.plan_fresh ~n (Rng.split rng))
  in
  let metrics = Metrics.create ~n in
  let trace = if record then Some (Trace.create ()) else None in
  let machine =
    Machine.create ?engine ~cheap_collect ~metrics ?trace ?sink ~n ~memory
      (fun ~pid -> body ~pid ~rng:local_rngs.(pid))
  in
  let completed = ref false in
  let ignored = ref 0 in
  (* The per-step view is kept incrementally by the machine: only the
     scheduled process's pending descriptor changes, and the enabled
     array only shrinks when a process finishes.  This keeps a
     scheduler step O(1) (plus whatever the adversary inspects). *)
  let rec loop () =
    let en = Machine.enabled machine in
    if Array.length en = 0 then completed := true
    else if Machine.steps machine >= max_steps then ()
    else begin
      let view =
        { View.step = Machine.steps machine;
          n;
          enabled = en;
          pending = Machine.unsafe_pending machine;
          memory;
          op_counts = Metrics.counts metrics }
      in
      let choice = choose view in
      let pid =
        if choice >= 0 && choice < n && Machine.pending_op machine choice <> None
        then choice
        else Adversary.next_enabled_from en n (((choice mod n) + n) mod n)
      in
      (* The fault plan sees the adversary's (already validated) choice
         and may override it.  Invalid overrides — crashing a pid that
         is not enabled, delivering a stale read to a process whose
         pending operation is not a read on a weak register, recovering
         a pid that is not down — degrade to the plain step, so plans
         never have to track enabledness.  Each degradation is counted
         in [plan_ignored] (surfaced as the [plan_overrides_ignored]
         telemetry counter by the CLI), so silent downgrades are
         visible rather than silently shaping the fault mix. *)
      (match inject with
       | None -> Machine.step_random machine ~pid ~coin:write_coins.(pid)
       | Some inject ->
         (match inject view ~chosen:pid with
          | Fault.Crash p when Machine.pending_op machine p <> None ->
            Machine.crash machine ~pid:p
          | Fault.Stale p
            when p = pid
                 && (match Machine.pending_op machine p with
                     | Some (Op.Any (Op.Read l)) -> Memory.is_weak memory l
                     | _ -> false) ->
            Machine.step_forced machine ~pid:p ~landed:true
          | Fault.Recover p
            when p >= 0 && p < n
                 && Machine.is_crashed machine p
                 && Memory.tracking memory ->
            (* Recovery needs last-writer tracking for the volatile
               wipe; a plan recovering over untracked memory degrades
               like any other invalid override instead of raising. *)
            Machine.recover machine ~pid:p
          | Fault.Step _ -> Machine.step_random machine ~pid ~coin:write_coins.(pid)
          | Fault.Crash _ | Fault.Stale _ | Fault.Recover _ ->
            incr ignored;
            Machine.step_random machine ~pid ~coin:write_coins.(pid)));
      loop ()
    end
  in
  loop ();
  { outputs = Machine.outputs machine;
    metrics;
    steps = Machine.steps machine;
    completed = !completed;
    crashed = Array.init n (Machine.is_crashed machine);
    recoveries = Machine.recovers machine;
    plan_ignored = !ignored;
    trace;
    registers = Memory.size memory }

let run_direct ?engine ?max_steps ?record ?cheap_collect ?faults ?sink ~n ~adversary
    ~rng ~memory body =
  run ?engine ?max_steps ?record ?cheap_collect ?faults ?sink ~n ~adversary ~rng
    ~memory
    (fun ~pid ~rng -> Fiber.to_program (Fiber.spawn (fun () -> body ~pid ~rng)))
