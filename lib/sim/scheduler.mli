(** The Monte Carlo interleaving engine — a driver over {!Machine}.

    [run] builds a machine with one {!Program.t} per process, then
    repeatedly asks the adversary which pending operation to apply and
    steps the machine until every process returns.  This is a direct
    implementation of the model in §2 of the paper: an execution is
    constructed by repeatedly applying pending operations, with the
    choice made by an adversary function of the partial execution.

    Asynchrony, crashes and wait-freedom: an adversary that stops
    scheduling a process forever is indistinguishable from crashing it,
    so crash failures need no separate mechanism; wait-freedom of a
    protocol shows up as every {e scheduled} process finishing
    regardless of what the others do. *)

type 'r result = {
  outputs : 'r option array;
    (** per-process return values; [None] = still running at the cap *)
  metrics : Metrics.t;    (** work accounting for the execution *)
  steps : int;            (** operations executed (= [Metrics.total]) *)
  completed : bool;       (** no process still runnable before [max_steps] *)
  crashed : bool array;   (** which pids a fault plan left crash-stopped *)
  recoveries : int;       (** recovery events a fault plan injected *)
  plan_ignored : int;
    (** fault-plan overrides that were invalid (crash of a non-enabled
        pid, stale delivery on a non-weak read, recovery of a pid that
        is not down) and degraded to a plain step — surfaced by the CLI
        as the [plan_overrides_ignored] telemetry counter *)
  trace : Trace.t option; (** recorded when [~record:true] *)
  registers : int;        (** registers allocated at the end *)
}

exception Collect_disallowed
(** Raised when a protocol performs a collect but the run was not
    started with [~cheap_collect:true] (= {!Machine.Collect_disallowed}). *)

exception Stuck of string
(** Raised on internal scheduling errors (e.g. a finished process
    scheduled) — indicates a bug, not a protocol property
    (= {!Machine.Stuck}). *)

val run :
  ?engine:Machine.engine ->
  ?max_steps:int ->
  ?record:bool ->
  ?cheap_collect:bool ->
  ?faults:Fault.plan ->
  ?sink:Sink.t ->
  n:int ->
  adversary:Adversary.t ->
  rng:Rng.t ->
  memory:Memory.t ->
  (pid:int -> rng:Rng.t -> 'r Program.t) ->
  'r result
(** [run ~n ~adversary ~rng ~memory body] executes the program
    [body ~pid ~rng] for each [pid] in [0..n-1] under the given
    adversary.  [rng] seeds three independent stream families:
    per-process local coins (passed to [body]), per-process
    probabilistic-write coins (resolved by the machine at execution
    time, invisible to the adversary), and the adversary's own
    randomness.  [max_steps] (default [10_000_000]) bounds the
    execution so that tests can detect non-termination; a capped run
    has [completed = false].  [sink] receives structured observability
    events (see {!Sink}); omitting it costs one branch per step.

    [faults] installs a fault-injection plan (see {!Fault.plan} and the
    combinators in [Conrat_faults]): after the adversary's choice is
    validated, the plan may crash-stop an enabled process or deliver
    the chosen process's pending read stale (honoured only on
    registers marked weak).  The plan's randomness is split from [rng]
    {e after} the historical streams, so runs without a plan are
    bit-identical to earlier versions, and a given seed produces the
    same fault placements on every replay.

    [engine] selects the program engine (default the compiled VM; see
    {!Machine.engine}).  A Monte Carlo run is straight-line, so every
    VM dispatch is a first unfolding and continuations execute exactly
    once in tree order — results are identical under either engine,
    including for bodies drawing local randomness. *)

val run_direct :
  ?engine:Machine.engine ->
  ?max_steps:int ->
  ?record:bool ->
  ?cheap_collect:bool ->
  ?faults:Fault.plan ->
  ?sink:Sink.t ->
  n:int ->
  adversary:Adversary.t ->
  rng:Rng.t ->
  memory:Memory.t ->
  (pid:int -> rng:Rng.t -> 'r) ->
  'r result
(** Same as {!run} for a direct-style body that performs its operations
    through {!Proc}: the body is spawned as an effects {!Fiber} and
    adapted with {!Fiber.to_program}.  Identical semantics and random
    streams — a body [fun ~pid ~rng -> Proc.exec (p ~pid ~rng)] behaves
    exactly like running the programs [p] natively. *)
