(** Work accounting, following the paper's definitions exactly:
    total work is the number of operations in the execution, individual
    work the maximum number of operations by any single process.  Local
    computation and local coin flips are excluded (they never reach the
    scheduler). *)

type t

val create : n:int -> t

val record : t -> pid:int -> Op.kind -> unit
(** Called by the scheduler once per executed operation. *)

val total : t -> int
(** Total work of the execution so far. *)

val individual : t -> int
(** Individual work: [max_p] (operations by process [p]). *)

val per_process : t -> int array
(** A copy of the per-process operation counts. *)

val unsafe_counts : t -> int array
(** The live per-process counter array, shared with the scheduler —
    read-only by convention.  Used to build adversary views without an
    O(n) copy per step. *)

val ops_of : t -> pid:int -> int
(** Operations executed by one process. *)

val reads : t -> int
val writes : t -> int
val prob_writes : t -> int
val collects : t -> int

val merge : t -> t -> t
(** Pointwise sum of two executions' work accounting (process counts
    aligned by pid, shorter array zero-extended).  Commutative and
    associative with identity [create ~n:0]; lets a harness combine
    per-trial metrics across a domain pool deterministically. *)

val pp : Format.formatter -> t -> unit
