(** Work accounting, following the paper's definitions exactly:
    total work is the number of operations in the execution, individual
    work the maximum number of operations by any single process.  Local
    computation and local coin flips are excluded (they never reach the
    scheduler). *)

type t

val create : n:int -> t

val record : t -> pid:int -> Op.kind -> unit
(** Called by the scheduler once per executed operation. *)

val total : t -> int
(** Total work of the execution so far. *)

val individual : t -> int
(** Individual work: [max_p] (operations by process [p]). *)

val per_process : t -> int array
(** A copy of the per-process operation counts. *)

type counts
(** A read-only view of the live per-process counter array.  It is the
    scheduler's own array behind an abstract type: reads see the
    current counts with no O(n) copy per step, and mutation is a type
    error rather than a convention.  (This replaces the former
    [unsafe_counts], which leaked the mutable array itself.) *)

val counts : t -> counts
(** The live read-only counter view, shared with the scheduler — used
    to build adversary views. *)

val count : counts -> int -> int
(** [count c pid] is the number of operations executed by [pid]. *)

val counts_length : counts -> int

val counts_to_array : counts -> int array
(** A fresh mutable copy; mutating it cannot affect the scheduler. *)

val counts_of_array : int array -> counts
(** A read-only view of a copy of [a] (for tests and hand-built
    views). *)

val ops_of : t -> pid:int -> int
(** Operations executed by one process. *)

val reads : t -> int
val writes : t -> int
val prob_writes : t -> int
val collects : t -> int

val merge : t -> t -> t
(** Pointwise sum of two executions' work accounting (process counts
    aligned by pid, shorter array zero-extended).  Commutative and
    associative with identity [create ~n:0]; lets a harness combine
    per-trial metrics across a domain pool deterministically. *)

val pp : Format.formatter -> t -> unit
