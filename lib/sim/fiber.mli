(** Process fibers: suspendable computations that stop at every
    shared-memory operation.

    This is the thin adapter that keeps direct-style protocol code
    (written against {!Proc}) runnable: {!Scheduler.run_direct} spawns
    a fiber per process and converts it to a {!Program.t} with
    {!to_program}.  Continuations are one-shot, so the resulting
    program is forward-only — fine for Monte Carlo execution, unusable
    for the snapshot-backtracking explorers, which need the replayable
    programs protocols are now written as. *)

type 'r t =
  | Running : 'a Op.t * ('a, 'r t) Effect.Deep.continuation -> 'r t
      (** Suspended at a pending operation. *)
  | Finished of 'r  (** Returned. *)

val spawn : (unit -> 'r) -> 'r t
(** Run [f] until its first operation (or return). *)

val resume : ('a, 'r t) Effect.Deep.continuation -> 'a -> 'r t
(** Hand an operation's result back to a suspended fiber and run it to
    its next operation (or return). *)

val to_program : 'r t -> 'r Program.t
(** View a fiber as a program.  The program is {e one-shot}: resuming
    any of its continuations a second time raises (effect continuations
    cannot be rewound), so it must only be driven forward — never
    through {!Machine.snapshot}/[restore] backtracking. *)
