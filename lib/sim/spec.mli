(** Executable versions of the paper's correctness properties (§3).

    All checkers return [Ok ()] or [Error reason].  The safety
    properties (validity, agreement, coherence, acceptance) must hold on
    {e every} execution — the test suite treats a single violation as a
    hard failure; only probabilistic agreement and termination are
    statistical.

    Deciding-object outputs are [(d, v)] pairs: [d = true] means the
    process decided [v] and stops; [d = false] means it would continue
    to the next object with preference [v].  Processes that had not
    finished when a bounded run was cut off appear as [None] and are
    ignored by the safety checkers (safety is prefix-closed). *)

type decision = bool * int

val validity : inputs:int array -> outputs:int option array -> (unit, string) result
(** Every finished process's output value equals some process's input. *)

val validity_decided :
  inputs:int array -> outputs:decision option array -> (unit, string) result
(** Validity of the value component of deciding-object outputs. *)

val agreement : outputs:int option array -> (unit, string) result
(** All finished processes returned the same value (consensus
    agreement). *)

val agreement_decided : outputs:decision option array -> (unit, string) result
(** {!agreement} on the value component of deciding-object outputs,
    without materializing the projection — the checkers' per-leaf hot
    path. *)

val coherence : outputs:decision option array -> (unit, string) result
(** If any process output [(1, v)] then every finished process output
    [(_, v)] (§3: non-deciders stick to any value chosen by a
    decider). *)

val acceptance :
  inputs:int array -> outputs:decision option array -> (unit, string) result
(** If all inputs equal [v], all finished outputs are [(1, v)] — only
    meaningful on complete executions, so unfinished processes make the
    check fail. *)

val acceptance_survivors :
  inputs:int array -> outputs:decision option array -> (unit, string) result
(** Crash-robust acceptance: like {!acceptance}, but processes with no
    output are excused.  Meaningful at crash-complete leaves, where
    [None] outputs are exactly the crash-stopped processes (see
    {!Machine.classify}): every {e survivor} must accept the common
    input; crashed processes owe nothing. *)

val consensus_execution :
  inputs:int array -> outputs:int option array -> completed:bool -> (unit, string) result
(** The full consensus contract on one execution: termination within
    the step bound, agreement, validity. *)

val all : (unit, string) result list -> (unit, string) result
(** First failure wins. *)
