(** Defunctionalized protocol programs: the copyable execution core.

    A ['r t] is a protocol's remaining computation, reified as a value:
    either it has returned ([Done r]), or it is about to perform a
    shared-memory operation and continue with the result
    ([Step (op, k)]).  The continuation [k] is an ordinary OCaml
    closure, so — unlike the one-shot effect continuations of
    {!Fiber} — a program state can be stored, duplicated, and resumed
    any number of times.  This is what lets the exhaustive explorers
    ({!Explore}, [Conrat_verify.Por]) snapshot a state and backtrack to
    it instead of re-executing the whole path prefix from scratch.

    Protocols written against this interface must be {e replay-pure}:
    all mutable protocol state must live in shared {!Memory} (reached
    through operations) or in loop parameters threaded through the
    continuations.  A continuation may be invoked more than once (once
    per branch the explorer takes below it), so closures must not
    capture mutable references that persist across [Step] boundaries.
    Refs created and consumed {e between} two operations are fine.

    The direct effects style ({!Proc}) remains available as a thin
    adapter: {!Proc.exec} runs a program by performing its operations
    as effects, and {!Fiber.to_program} converts a spawned fiber into a
    (one-shot) program. *)

type 'r t =
  | Done of 'r
  | Step : 'a Op.t * ('a -> 'r t) -> 'r t
  | Label of string * 'r t
      (** A stage marker: behaves exactly like the wrapped program, but
          tells the machine that the process is entering the named
          protocol stage.  Purely observational — labels produce no
          transition, cannot be scheduled against, and are invisible to
          adversaries and explorers.  {!Compose} emits one per composed
          stage; the {!Sink} receives the innermost enclosing label with
          every operation event. *)
  | Recoverable of { main : 'r t; recover : 'r t }
      (** A crash-recovery declaration, valid only at a program's root
          (possibly under labels): execution proceeds through [main],
          and a process restarted after a crash re-enters at [recover]
          instead (typically a persistent-register re-validation that
          falls through to the main logic).  Programs without the
          declaration restart at their main root — from the top, with
          all volatile registers wiped.  Everywhere except the engines'
          recovery machinery the node is transparent: [bind] distributes
          into both branches (keeping the declaration at the root), and
          {!pending}/{!is_done}/{!result} see [main]. *)

val return : 'r -> 'r t
(** A program that immediately returns. *)

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Sequencing: run the first program, feed its result to the second. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
(** Binding operator for [bind]. *)

val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
(** Binding operator for [map]. *)

val perform : 'a Op.t -> 'a t
(** A single operation. *)

val read : Memory.loc -> int option t
val write : Memory.loc -> int -> unit t
val prob_write : Memory.loc -> int -> p:Op.prob -> unit t
val prob_write_detect : Memory.loc -> int -> p:Op.prob -> bool t
val collect : Memory.loc -> int -> int option array t

val label : string -> 'r t -> 'r t
(** [label s p] marks [p] as (the start of) stage [s].  Labels are part
    of the program value, so labelled programs stay replay-pure. *)

val recoverable : recover:'r t -> 'r t -> 'r t
(** [recoverable ~recover main] declares a recover continuation on
    [main] (see {!Recoverable}).  Use at the protocol's root only. *)

val recovery : 'r t -> 'r t option
(** The declared recover continuation, if any (looks through labels) —
    the engines' peel when restarting a process. *)

val pending : 'r t -> Op.any option
(** The operation the program is blocked on, if any (looks through
    labels). *)

val is_done : 'r t -> bool

val result : 'r t -> 'r option

val iter_list : ('a -> unit t) -> 'a list -> unit t
val iter_array : ('a -> unit t) -> 'a array -> unit t

val exists_array : ('a -> bool t) -> 'a array -> bool t
(** Short-circuiting, like [Array.exists]: stops performing operations
    at the first element for which [f] yields [true]. *)

val map_array : ('a -> 'b t) -> 'a array -> 'b array t
(** Runs [f] on each element left to right, collecting results. *)
