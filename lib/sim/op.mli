(** Shared-memory operations.

    One value of type {!t} is one unit of work in the paper's complexity
    measures (total work / individual work).  Local computation and
    local coin flips are free, exactly as in the model of §2.

    Two operations go beyond plain atomic registers:

    - [Prob_write (r, v, p)] is the probabilistic write of the
      probabilistic-write model (§2.1): when the scheduler executes it,
      a coin that the adversary can neither observe nor influence lands
      heads with probability [p], and only then is [v] stored in [r].
      The operation costs one unit whether or not the write lands, and
      the caller learns nothing about the outcome.
    - [Prob_write_detect] is the variant from footnote 2 of the paper in
      which the process {e does} learn whether its write landed; the
      paper notes this shaves 2 operations off the conciliator's
      individual work.
    - [Collect (base, len)] reads [len] consecutive registers in one
      unit of work.  It exists only to model the "cheap-collect" variant
      of §6.2(4) and is rejected by the scheduler unless the cheap-collect
      model is explicitly enabled. *)

type prob = float

type 'a t =
  | Read : Memory.loc -> int option t
  | Write : Memory.loc * int -> unit t
  | Prob_write : Memory.loc * int * prob -> unit t
  | Prob_write_detect : Memory.loc * int * prob -> bool t
  | Collect : Memory.loc * int -> int option array t

type any = Any : 'a t -> any
(** Existential wrapper used by views, traces and adversaries. *)

type kind = Read_op | Write_op | Prob_write_op | Collect_op

val kind : any -> kind
(** The operation's type, as visible to a value-oblivious adversary.
    Both probabilistic-write variants report [Prob_write_op]. *)

val loc : any -> Memory.loc
(** The register (or base register, for collects) the operation
    touches. *)

val value : any -> int option
(** The value a pending write would store; [None] for reads and
    collects. *)

val prob : any -> prob option
(** The success probability of a pending probabilistic write. *)

val is_write : any -> bool
(** Whether the operation can modify memory. *)

val to_sexp : any -> Sexp.t
val of_sexp : Sexp.t -> (any, string) result
(** Serialization for schedule artifacts: [of_sexp (to_sexp op)]
    reconstructs the operation exactly (floats round-trip). *)

val pp : Format.formatter -> any -> unit
