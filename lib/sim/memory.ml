type loc = int

(* [prev] shadows [cells] on *weak* registers only: prev.(i) is what
   cells.(i) held before the most recent write, i.e. the value a
   regular-register read concurrent with that write is allowed to
   return.  [weak] marks the registers on which a driver may actually
   deliver such stale reads; the flag is configuration (set at
   allocation time), not execution state, so the shadow is maintained
   for exactly the registers where it is observable.

   Shadow maintenance is undone on backtracking through an undo
   journal ([jlocs]/[jvals]): each shadow update pushes the overwritten
   shadow value, a {!backup} records just the journal length, and
   {!restore_backup} pops back to it.  That keeps the per-snapshot cost
   of the fault plane at one integer — O(weak writes undone) instead of
   O(|memory|) — and exactly zero stores on stores with no weak
   register.

   Cell contents are rolled back the same way: once the first {!backup}
   is taken ([journaling] flips on and stays on), every write pushes the
   overwritten contents onto a second journal ([cjlocs]/[cjvals]), a
   backup records only the three journal/length marks, and a restore
   pops writes back in LIFO order.  Backtracking thus costs O(writes
   undone) — the delta — instead of O(|memory|), and executions that
   never back up (the Monte Carlo scheduler) never pay for journaling
   at all. *)
type t = {
  mutable cells : int option array;
  mutable prev : int option array;
  mutable weak : bool array;
  (* Crash-recovery plane: [persistent] marks registers that survive
     the owner's crash (configuration, like [weak]); [writers] records
     the pid that last wrote each register (-1 = never written), the
     dynamic ownership a recovery wipe keys on; both are maintained only
     while [track_writers] is on, so the recovery-free write path pays
     exactly one predictable branch. *)
  mutable persistent : bool array;
  mutable writers : int array;
  mutable track_writers : bool;
  (* The pid about to perform the next operation — stashed by the
     machine (when tracking) so [write] can record ownership without
     threading a pid through every op-execution path. *)
  mutable actor : int;
  mutable len : int;
  mutable weak_default : bool;
  (* Fast path: true iff any register is (or may become, via
     [weak_default]) weak.  While false, a write's shadow check is a
     single predictable branch, keeping the atomic model's per-step
     cost identical to a build without the fault plane. *)
  mutable has_weak : bool;
  mutable jlocs : int array;
  mutable jvals : int option array;
  mutable jlen : int;
  (* Cell-contents undo journal; maintained only once a backup exists.
     [cjwrs] rides along with the cell journal and holds the overwritten
     writer — populated (and popped) only while tracking, so untracked
     journaling never touches it. *)
  mutable journaling : bool;
  mutable cjlocs : int array;
  mutable cjvals : int option array;
  mutable cjwrs : int array;
  mutable cjlen : int;
}

let create () =
  { cells = Array.make 16 None;
    prev = Array.make 16 None;
    weak = Array.make 16 false;
    persistent = Array.make 16 false;
    writers = Array.make 16 (-1);
    track_writers = false;
    actor = -1;
    len = 0;
    weak_default = false;
    has_weak = false;
    jlocs = Array.make 16 0;
    jvals = Array.make 16 None;
    jlen = 0;
    journaling = false;
    cjlocs = Array.make 16 0;
    cjvals = Array.make 16 None;
    cjwrs = Array.make 16 (-1);
    cjlen = 0 }

let ensure_capacity t needed =
  if needed > Array.length t.cells then begin
    let cap = max needed (2 * Array.length t.cells) in
    let cells = Array.make cap None in
    let prev = Array.make cap None in
    let weak = Array.make cap false in
    let persistent = Array.make cap false in
    let writers = Array.make cap (-1) in
    Array.blit t.cells 0 cells 0 t.len;
    Array.blit t.prev 0 prev 0 t.len;
    Array.blit t.weak 0 weak 0 t.len;
    Array.blit t.persistent 0 persistent 0 t.len;
    Array.blit t.writers 0 writers 0 t.len;
    t.cells <- cells;
    t.prev <- prev;
    t.weak <- weak;
    t.persistent <- persistent;
    t.writers <- writers
  end

let alloc ?init t =
  ensure_capacity t (t.len + 1);
  let loc = t.len in
  t.cells.(loc) <- init;
  (* A register that has never been written has no older value to
     return: its stale view is its initial contents. *)
  t.prev.(loc) <- init;
  t.weak.(loc) <- t.weak_default;
  t.persistent.(loc) <- false;
  t.writers.(loc) <- -1;
  t.len <- t.len + 1;
  loc

let alloc_n ?init t k =
  Array.init k (fun _ -> alloc ?init t)

let check t loc =
  if loc < 0 || loc >= t.len then
    invalid_arg (Printf.sprintf "Memory: address %d out of bounds (size %d)" loc t.len)

let read t loc =
  check t loc;
  t.cells.(loc)

let read_stale t loc =
  check t loc;
  t.prev.(loc)

let journal_push t loc v =
  if t.jlen = Array.length t.jlocs then begin
    let cap = 2 * t.jlen in
    let jlocs = Array.make cap 0 in
    let jvals = Array.make cap None in
    Array.blit t.jlocs 0 jlocs 0 t.jlen;
    Array.blit t.jvals 0 jvals 0 t.jlen;
    t.jlocs <- jlocs;
    t.jvals <- jvals
  end;
  t.jlocs.(t.jlen) <- loc;
  t.jvals.(t.jlen) <- v;
  t.jlen <- t.jlen + 1

let cjournal_push t loc v =
  if t.cjlen = Array.length t.cjlocs then begin
    let cap = 2 * t.cjlen in
    let cjlocs = Array.make cap 0 in
    let cjvals = Array.make cap None in
    let cjwrs = Array.make cap (-1) in
    Array.blit t.cjlocs 0 cjlocs 0 t.cjlen;
    Array.blit t.cjvals 0 cjvals 0 t.cjlen;
    Array.blit t.cjwrs 0 cjwrs 0 t.cjlen;
    t.cjlocs <- cjlocs;
    t.cjvals <- cjvals;
    t.cjwrs <- cjwrs
  end;
  t.cjlocs.(t.cjlen) <- loc;
  t.cjvals.(t.cjlen) <- v;
  if t.track_writers then t.cjwrs.(t.cjlen) <- t.writers.(loc);
  t.cjlen <- t.cjlen + 1

let write t loc v =
  check t loc;
  if t.journaling then cjournal_push t loc t.cells.(loc);
  if t.has_weak && t.weak.(loc) then begin
    journal_push t loc t.prev.(loc);
    t.prev.(loc) <- t.cells.(loc)
  end;
  if t.track_writers then t.writers.(loc) <- t.actor;
  t.cells.(loc) <- Some v

(* Weakness is configuration: [mark_weak]/[weaken_all] are meant to run
   at setup time, before any exploration branches.  Syncing the shadow
   on marking makes a later marking safe too (the stale view collapses
   to the current contents rather than exposing an unmaintained one). *)
let mark_weak t loc =
  check t loc;
  if not t.weak.(loc) then begin
    t.prev.(loc) <- t.cells.(loc);
    t.weak.(loc) <- true
  end;
  t.has_weak <- true

let is_weak t loc =
  t.has_weak
  && begin
       check t loc;
       t.weak.(loc)
     end

(* Bench/test hook: force the weak-register conditionals onto their
   deepest disabled-path evaluation (every write tests its register's
   weakness, every backup captures the journal mark) without weakening
   any register, so observable behaviour — and the explored tree — is
   exactly the atomic model.  The "engaged but inert" arm of the
   fault-plane overhead gate (bench/fault_overhead.ml), mirroring what
   [Sink.null] is to the observability gate. *)
let engage_shadow t = t.has_weak <- true

(* Persistence is configuration, exactly like weakness: set at
   allocation/setup time, identical across all states of one
   exploration, never undone by backtracking. *)
let mark_persistent t loc =
  check t loc;
  t.persistent.(loc) <- true

let is_persistent t loc =
  check t loc;
  t.persistent.(loc)

(* Engage last-writer tracking — the recovery plane's analogue of
   [engage_shadow]: flipped on at setup time by drivers whose fault
   model has a recovery budget (and by the overhead bench's
   engaged-but-inert arm).  Never flips back off: a store that tracked
   and then stopped would carry half-maintained ownership. *)
let track_writers t = t.track_writers <- true

let tracking t = t.track_writers

let set_actor t pid = t.actor <- pid

let writer t loc =
  check t loc;
  if t.track_writers then t.writers.(loc) else -1

(* Crash-recovery wipe: every volatile register last written by [pid]
   reverts to never-written.  Each wiped cell goes through the same
   undo machinery as a write (cell journal, weak shadow, writer
   journal), so backtracking over a recovery restores the pre-wipe
   state exactly.  Requires tracking — without ownership there is
   nothing sound to wipe. *)
let wipe_volatile t ~pid =
  if not t.track_writers then
    invalid_arg "Memory.wipe_volatile: writer tracking not engaged";
  for loc = 0 to t.len - 1 do
    if t.writers.(loc) = pid && not t.persistent.(loc) then begin
      if t.journaling then cjournal_push t loc t.cells.(loc);
      if t.has_weak && t.weak.(loc) then begin
        journal_push t loc t.prev.(loc);
        t.prev.(loc) <- t.cells.(loc)
      end;
      t.cells.(loc) <- None;
      t.writers.(loc) <- -1
    end
  done

let weaken_all t =
  for i = 0 to t.len - 1 do
    if not t.weak.(i) then begin
      t.prev.(i) <- t.cells.(i);
      t.weak.(i) <- true
    end
  done;
  t.weak_default <- true;
  t.has_weak <- true

let size t = t.len

let snapshot t = Array.sub t.cells 0 t.len

let restore t snap =
  let slen = Array.length snap in
  if slen > t.len then
    invalid_arg "Memory.restore: snapshot longer than store";
  Array.blit snap 0 t.cells 0 slen;
  (* Registers allocated after the snapshot are dropped: backtracking
     over an execution that lazily allocated must un-allocate, or the
     restored state would see registers it never created.  [alloc]
     re-initialises cells, so stale contents past [len] are harmless. *)
  t.len <- slen

(* Full-fidelity backup for the exhaustive explorers: unlike [snapshot]
   (a contents-only view handed to adversaries), a backup also pins the
   previous-value shadow so stale reads replay identically after
   backtracking.  Two representations coexist:

   [backup] is a pure delta mark — three journal/length integers.
   Taking one is O(1); the first one flips [journaling] on so that
   subsequent writes push their overwritten contents, and restoring
   pops both journals back to the marks, undoing exactly the writes
   since the backup.  Restores must follow the explorers' LIFO
   discipline (a backup is restored only while every journal entry
   younger than it belongs to writes being undone), which
   snapshot-and-backtrack search satisfies by construction.

   [full_backup] is the historical O(|memory|) copy, preserved for the
   tree-interpreter oracle so that differential benchmarks measure the
   engine the codebase actually shipped before the VM: it copies the
   live cells and never turns journaling on, leaving the write path
   untouched.  The two kinds must not be mixed on one store (a store
   that has ever taken a delta mark journals writes that a full restore
   would not pop); each [Machine] takes only its own engine's kind.

   Weak flags need no capture either way — they only change via
   allocation, and truncation plus re-allocation recomputes them. *)
type backup = {
  (* [Some cells] = full backup; [None] = delta mark.  Mutable so the
     explorers can refresh a pooled backup in place ({!backup_into})
     instead of allocating one per branch point. *)
  mutable b_full : int option array option;
  (* Full backups capture ownership alongside contents when tracking
     (they never journal, so a blit is their only undo); delta marks
     leave this [None] — the writer journal rides the cell journal. *)
  mutable b_writers : int array option;
  mutable b_len : int;
  mutable b_cjlen : int;
  mutable b_jlen : int;
}

let backup t =
  t.journaling <- true;
  { b_full = None; b_writers = None; b_len = t.len; b_cjlen = t.cjlen;
    b_jlen = t.jlen }

let full_backup t =
  { b_full = Some (Array.sub t.cells 0 t.len);
    b_writers =
      (if t.track_writers then Some (Array.sub t.writers 0 t.len) else None);
    b_len = t.len;
    b_cjlen = 0;
    b_jlen = t.jlen }

(* Refresh [b] to capture the current state, keeping its kind: a pooled
   delta mark is three integer stores; a pooled full backup reuses its
   cells array when the store length hasn't changed. *)
let backup_into t b =
  (match b.b_full with
   | None ->
     b.b_len <- t.len;
     b.b_cjlen <- t.cjlen
   | Some cells ->
     if Array.length cells = t.len then Array.blit t.cells 0 cells 0 t.len
     else b.b_full <- Some (Array.sub t.cells 0 t.len);
     (if t.track_writers then
        match b.b_writers with
        | Some writers when Array.length writers = t.len ->
          Array.blit t.writers 0 writers 0 t.len
        | Some _ | None -> b.b_writers <- Some (Array.sub t.writers 0 t.len));
     b.b_len <- t.len);
  b.b_jlen <- t.jlen

let pop_weak_journal t b_jlen =
  if b_jlen > t.jlen then
    invalid_arg "Memory.restore_backup: journal shorter than at backup time";
  while t.jlen > b_jlen do
    t.jlen <- t.jlen - 1;
    (* A journaled register may have been deallocated by an earlier
       truncating restore on this path; its shadow slot still exists
       (capacity never shrinks) and [alloc] re-initialises it, so the
       undo store is harmless. *)
    t.prev.(t.jlocs.(t.jlen)) <- t.jvals.(t.jlen)
  done

let restore_backup t b =
  if b.b_len > t.len then
    invalid_arg "Memory.restore_backup: backup longer than store";
  (match b.b_full with
   | None ->
     if b.b_cjlen > t.cjlen then
       invalid_arg "Memory.restore_backup: journal shorter than at backup time";
     while t.cjlen > b.b_cjlen do
       t.cjlen <- t.cjlen - 1;
       (* Popping in LIFO order ends each cell at its oldest journaled
          value — the contents as of backup time, however many times it
          was written since. *)
       t.cells.(t.cjlocs.(t.cjlen)) <- t.cjvals.(t.cjlen);
       if t.track_writers then
         t.writers.(t.cjlocs.(t.cjlen)) <- t.cjwrs.(t.cjlen)
     done
   | Some cells ->
     Array.blit cells 0 t.cells 0 b.b_len;
     (match b.b_writers with
      | Some writers -> Array.blit writers 0 t.writers 0 b.b_len
      | None -> ()));
  pop_weak_journal t b.b_jlen;
  (* Registers allocated since the backup are dropped; [alloc] never
     journals (truncation is its undo). *)
  t.len <- b.b_len

(* Two independent 63-bit FNV-1a-style folds over the live semantic
   state, for the explorers' duplicate detection: the cell contents and
   — on weak registers only, where it is observable — the stale-read
   shadow.  Journals, capacities and marks are bookkeeping, not state,
   and are deliberately excluded: two stores reached by different paths
   are semantically equal iff their folds agree (up to collisions; two
   multipliers make a collision need ~2^63 states per hash).  Weak
   flags are configuration fixed at setup, identical across all states
   of one exploration, so conditioning on them is stable. *)
let mix1 h v = ((h lxor v) * 0x100000001B3) land max_int
let mix2 h v = ((h lxor v) * 0x27D4EB2F165667C5) land max_int

(* [None] (never-written) and [Some v] must hash apart for every v. *)
let enc = function None -> 0x5bd1e995 | Some v -> (v lsl 1) lor 1

let hash_fold t h1 h2 =
  let h1 = ref (mix1 h1 t.len) and h2 = ref (mix2 h2 t.len) in
  for i = 0 to t.len - 1 do
    let c = enc t.cells.(i) in
    h1 := mix1 !h1 c;
    h2 := mix2 !h2 c;
    if t.has_weak && t.weak.(i) then begin
      let p = enc t.prev.(i) in
      h1 := mix1 !h1 p;
      h2 := mix2 !h2 p
    end;
    (* Ownership decides what a future recovery wipes, so under
       tracking it is semantic state; +2 keeps the encoding
       non-negative with -1 (never written) distinct from every pid. *)
    if t.track_writers then begin
      let w = t.writers.(i) + 2 in
      h1 := mix1 !h1 w;
      h2 := mix2 !h2 w
    end
  done;
  (!h1, !h2)

let pp ppf t =
  Format.fprintf ppf "@[<hov 1>[";
  for i = 0 to t.len - 1 do
    (match t.cells.(i) with
     | None -> Format.fprintf ppf "_"
     | Some v -> Format.fprintf ppf "%d" v);
    if i < t.len - 1 then Format.fprintf ppf ";@ "
  done;
  Format.fprintf ppf "]@]"
