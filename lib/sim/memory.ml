type loc = int

type t = { mutable cells : int option array; mutable len : int }

let create () = { cells = Array.make 16 None; len = 0 }

let ensure_capacity t needed =
  if needed > Array.length t.cells then begin
    let cap = max needed (2 * Array.length t.cells) in
    let cells = Array.make cap None in
    Array.blit t.cells 0 cells 0 t.len;
    t.cells <- cells
  end

let alloc ?init t =
  ensure_capacity t (t.len + 1);
  let loc = t.len in
  t.cells.(loc) <- init;
  t.len <- t.len + 1;
  loc

let alloc_n ?init t k =
  Array.init k (fun _ -> alloc ?init t)

let check t loc =
  if loc < 0 || loc >= t.len then
    invalid_arg (Printf.sprintf "Memory: address %d out of bounds (size %d)" loc t.len)

let read t loc =
  check t loc;
  t.cells.(loc)

let write t loc v =
  check t loc;
  t.cells.(loc) <- Some v

let size t = t.len

let snapshot t = Array.sub t.cells 0 t.len

let restore t snap =
  let slen = Array.length snap in
  if slen > t.len then
    invalid_arg "Memory.restore: snapshot longer than store";
  Array.blit snap 0 t.cells 0 slen;
  (* Registers allocated after the snapshot are dropped: backtracking
     over an execution that lazily allocated must un-allocate, or the
     restored state would see registers it never created.  [alloc]
     re-initialises cells, so stale contents past [len] are harmless. *)
  t.len <- slen

let pp ppf t =
  Format.fprintf ppf "@[<hov 1>[";
  for i = 0 to t.len - 1 do
    (match t.cells.(i) with
     | None -> Format.fprintf ppf "_"
     | Some v -> Format.fprintf ppf "%d" v);
    if i < t.len - 1 then Format.fprintf ppf ";@ "
  done;
  Format.fprintf ppf "]@]"
