type t = {
  per_pid : int array;
  mutable total : int;
  mutable reads : int;
  mutable writes : int;
  mutable prob_writes : int;
  mutable collects : int;
}

let create ~n =
  { per_pid = Array.make n 0; total = 0; reads = 0; writes = 0; prob_writes = 0; collects = 0 }

let record t ~pid kind =
  t.per_pid.(pid) <- t.per_pid.(pid) + 1;
  t.total <- t.total + 1;
  match kind with
  | Op.Read_op -> t.reads <- t.reads + 1
  | Op.Write_op -> t.writes <- t.writes + 1
  | Op.Prob_write_op -> t.prob_writes <- t.prob_writes + 1
  | Op.Collect_op -> t.collects <- t.collects + 1

let total t = t.total

let individual t = Array.fold_left max 0 t.per_pid

let per_process t = Array.copy t.per_pid

(* [counts] is the live per-pid array behind an abstract type: holders
   can read it (and see it advance as the scheduler works) but the type
   seals off mutation — no copy per step, no "read-only by convention"
   hole. *)
type counts = int array

let counts t = t.per_pid
let count c pid = c.(pid)
let counts_length c = Array.length c
let counts_to_array c = Array.copy c
let counts_of_array a = Array.copy a

let ops_of t ~pid = t.per_pid.(pid)

let reads t = t.reads
let writes t = t.writes
let prob_writes t = t.prob_writes
let collects t = t.collects

let merge a b =
  let la = Array.length a.per_pid and lb = Array.length b.per_pid in
  let per_pid =
    Array.init (max la lb) (fun i ->
      (if i < la then a.per_pid.(i) else 0) + (if i < lb then b.per_pid.(i) else 0))
  in
  { per_pid;
    total = a.total + b.total;
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    prob_writes = a.prob_writes + b.prob_writes;
    collects = a.collects + b.collects }

let pp ppf t =
  Format.fprintf ppf "total=%d individual=%d (r=%d w=%d pw=%d c=%d)"
    (total t) (individual t) t.reads t.writes t.prob_writes t.collects
