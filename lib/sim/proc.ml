type _ Effect.t += Step : 'a Op.t -> 'a Effect.t

let read loc = Effect.perform (Step (Op.Read loc))
let write loc v = Effect.perform (Step (Op.Write (loc, v)))
let prob_write loc v ~p = Effect.perform (Step (Op.Prob_write (loc, v, p)))
let prob_write_detect loc v ~p = Effect.perform (Step (Op.Prob_write_detect (loc, v, p)))
let collect loc len = Effect.perform (Step (Op.Collect (loc, len)))

let rec exec : 'r. 'r Program.t -> 'r = function
  | Program.Done r -> r
  | Program.Step (op, k) -> exec (k (Effect.perform (Step op)))
  | Program.Label (_, p) -> exec p
  (* Direct-effects execution never crashes, so the recover branch is
     simply unreachable. *)
  | Program.Recoverable { main; _ } -> exec main
