open Conrat_sim

let crash_at ~step ~pid =
  { Fault.plan_name = Printf.sprintf "crash_at(step=%d,pid=%d)" step pid;
    plan_fresh =
      (fun ~n:_ _rng ->
        fun (v : View.full) ~chosen ->
          if v.step = step then Fault.Crash pid else Fault.Step chosen) }

let crashing ?(rate = 0.05) ~f () =
  { Fault.plan_name = Printf.sprintf "crashing(f=%d,rate=%g)" f rate;
    plan_fresh =
      (fun ~n:_ rng ->
        let left = ref f in
        fun (v : View.full) ~chosen ->
          if !left > 0 && Rng.float rng < rate then begin
            decr left;
            Fault.Crash v.enabled.(Rng.int rng (Array.length v.enabled))
          end
          else Fault.Step chosen) }

let recover_at ~step ~pid =
  { Fault.plan_name = Printf.sprintf "recover_at(step=%d,pid=%d)" step pid;
    plan_fresh =
      (fun ~n:_ _rng ->
        fun (v : View.full) ~chosen ->
          if v.step = step then Fault.Recover pid else Fault.Step chosen) }

let recovering ?(rate = 0.05) ~r () =
  { Fault.plan_name = Printf.sprintf "recovering(r=%d,rate=%g)" r rate;
    plan_fresh =
      (fun ~n rng ->
        let left = ref r in
        fun (v : View.full) ~chosen ->
          (* The view does not expose the crashed set; pick any pid that
             is neither enabled nor pending (crashed or finished) — a
             finished pick degrades to a plain step at the machine and
             is counted in [plan_ignored]. *)
          if !left > 0 && Rng.float rng < rate then begin
            let down = ref [] in
            for p = n - 1 downto 0 do
              if v.pending.(p) = None then down := p :: !down
            done;
            match !down with
            | [] -> Fault.Step chosen
            | down ->
              decr left;
              let down = Array.of_list down in
              Fault.Recover down.(Rng.int rng (Array.length down))
          end
          else Fault.Step chosen) }

let byzantine_reads ?(rate = 0.5) () =
  { Fault.plan_name = Printf.sprintf "byzantine_reads(rate=%g)" rate;
    plan_fresh =
      (fun ~n:_ rng ->
        fun (v : View.full) ~chosen ->
          match v.pending.(chosen) with
          | Some any when Op.kind any = Op.Read_op && Rng.float rng < rate ->
            Fault.Stale chosen
          | Some _ | None -> Fault.Step chosen) }

let mix plans =
  match plans with
  | [] -> Fault.no_plan
  | [ p ] -> p
  | _ ->
    { Fault.plan_name =
        String.concat "+" (List.map (fun p -> p.Fault.plan_name) plans);
      plan_fresh =
        (fun ~n rng ->
          (* One independent stream per constituent so adding a plan to
             the mix never perturbs the draws of the plans before it. *)
          let injectors =
            List.map (fun p -> p.Fault.plan_fresh ~n (Rng.split rng)) plans
          in
          fun view ~chosen ->
            let rec first = function
              | [] -> Fault.Step chosen
              | inject :: rest ->
                (match inject view ~chosen with
                 | Fault.Step _ -> first rest
                 | act -> act)
            in
            first injectors) }

let of_model ?(crash_rate = 0.05) ?(stale_rate = 0.5) ?(recover_rate = 0.05)
    (m : Fault.model) =
  mix
    ((if m.Fault.crashes > 0 then [ crashing ~rate:crash_rate ~f:m.Fault.crashes () ]
      else [])
     @ (if m.Fault.recoveries > 0 then
          [ recovering ~rate:recover_rate ~r:m.Fault.recoveries () ]
        else [])
     @ (if m.Fault.weak_reads then [ byzantine_reads ~rate:stale_rate () ] else []))

let of_spec ?crash_rate ?stale_rate ?recover_rate s =
  Result.map
    (fun m -> of_model ?crash_rate ?stale_rate ?recover_rate m)
    (Fault.of_string s)
