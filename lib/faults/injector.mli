(** Monte-Carlo fault-injection plans for {!Conrat_sim.Scheduler.run}.

    A plan (see {!Conrat_sim.Fault.plan}) is consulted once per
    scheduler step, after the adversary's choice has been validated,
    and may override the step with a crash-stop or a stale delivery.
    The combinators here mirror the {!Conrat_sim.Adversary} zoo's
    shape: named factories returning stateful per-execution injectors.
    Overrides the machine cannot honour (crashing a finished process,
    a stale delivery on a non-weak register or a non-read) degrade to a
    plain step, so every plan is safe against every protocol.

    The plan's random stream is split off the scheduler's {e after} all
    historical draws, so running any plan that never fires — or no plan
    at all — reproduces the exact fault-free executions, seed for
    seed. *)

val crash_at : step:int -> pid:int -> Conrat_sim.Fault.plan
(** Deterministic: crash [pid] exactly when the global step counter
    hits [step].  The reproducible building block for tests. *)

val crashing : ?rate:float -> f:int -> unit -> Conrat_sim.Fault.plan
(** Budgeted random crashes: each step, with probability [rate]
    (default 0.05), crash a uniformly random enabled process — at most
    [f] times per execution. *)

val recover_at : step:int -> pid:int -> Conrat_sim.Fault.plan
(** Deterministic: recover [pid] exactly when the global step counter
    hits [step].  Degrades to a plain step unless [pid] is crashed
    there — the reproducible building block for recovery tests. *)

val recovering : ?rate:float -> r:int -> unit -> Conrat_sim.Fault.plan
(** Budgeted random recoveries: each step, with probability [rate]
    (default 0.05), recover a uniformly random process that is neither
    enabled nor pending — at most [r] times per execution.  The view
    does not distinguish crashed from finished processes, so a pick
    that merely finished degrades to a plain step at the machine (and
    is counted in the scheduler result's [plan_ignored]); the budget is
    spent either way, keeping draws reproducible. *)

val byzantine_reads : ?rate:float -> unit -> Conrat_sim.Fault.plan
(** Each time the scheduled process is about to read, deliver the value
    stale with probability [rate] (default 0.5).  Only takes effect on
    registers marked weak ({!Conrat_sim.Memory.mark_weak} /
    [weaken_all]); elsewhere it degrades to a plain step. *)

val mix : Conrat_sim.Fault.plan list -> Conrat_sim.Fault.plan
(** First non-[Step] override wins, consulted in list order.  Each
    constituent gets an independent random stream, so extending a mix
    never perturbs the draws of earlier plans.  [mix [] =
    {!Conrat_sim.Fault.no_plan}]. *)

val of_model :
  ?crash_rate:float -> ?stale_rate:float -> ?recover_rate:float ->
  Conrat_sim.Fault.model -> Conrat_sim.Fault.plan
(** The default Monte-Carlo interpretation of a fault model: a
    {!crashing} budget for [crashes], a {!recovering} budget for
    [recoveries] and {!byzantine_reads} when [weak_reads] — mixed, any
    subset, or {!Conrat_sim.Fault.no_plan} as the model dictates. *)

val of_spec :
  ?crash_rate:float -> ?stale_rate:float -> ?recover_rate:float ->
  string -> (Conrat_sim.Fault.plan, string) result
(** [of_model] ∘ {!Conrat_sim.Fault.of_string} — the CLI's [--faults]
    argument to a runnable plan. *)
