(** A bounded-register-count consensus protocol, used as the fallback
    object [K] in the bounded construction of §4.1.2 (Theorem 5), and
    doubling as the classic Chor-Israeli-Li-style racing baseline.

    The paper instantiates [K] with the bounded-space protocol of [4];
    we substitute a racing protocol in the spirit of Chor-Israeli-Li
    [20] adapted to the probabilistic-write model (see DESIGN.md §2):

    Each process [p] owns one single-writer register holding an
    atomically-encoded triple [(round, value, mark)] with
    [mark ∈ {None, Candidate, Decided}].  In a loop, [p] reads all [n]
    registers, then:
    + if anyone is marked [Decided], [p] returns that value;
    + if someone is at a higher round, [p] adopts the leader's round
      {e and} value (leader = lowest pid at the maximum round);
    + if [p] is at the maximum round and no {e live} entry conflicts —
      where live means round ≥ [p]'s − 1 {e or carrying any mark} —
      [p] runs a two-phase decision: stake a [Candidate] mark,
      re-collect, and upgrade to [Decided] only if the window is still
      clean.  Marked entries never expire, so two conflicting decision
      re-collects are totally ordered and at least one side sees the
      other's candidate and backs off (adopting the strongest marked
      rival's value) — two conflicting [Decided] marks cannot coexist.
      The unstaked variant of this rule is genuinely unsound: a process
      can compute a decision from a collect taken before a rival's
      first write, stall, and publish after the rival has legitimately
      raced past its expired entry.  The exhaustive explorer found
      exactly that interleaving (see test_explore.ml), which is why the
      candidate phase exists;
    + otherwise the front is contested and [p] advances one round via a
      probabilistic write (probability [advance_p]), learning the
      outcome from its own register at the next collect.

    Safety (agreement + validity) holds in {e every} execution — the
    test suite checks it under all adversaries, and the exhaustive
    explorer verifies it for small instances over every schedule and
    every coin outcome.  Termination with probability 1 relies on the
    weak adversary: it cannot condition on the advancement coins, so
    the contested front keeps thinning — once a single process
    advances alone, every follower adopts its value and the next
    collects decide.  Expected O(log n) rounds of O(n)-cost collects
    per process.

    Space: [n] registers.  Register {e count} is bounded; stored values
    grow with the round number, the standard trade-off in this
    literature. *)

val racing : m:int -> ?advance_p:float -> unit -> Conrat_objects.Deciding.factory
(** An always-deciding object (every output has decision bit 1) for
    values in [0, m).  [advance_p] is the round-advancement write
    probability (default 0.5). *)

val racing_unstaked : m:int -> ?advance_p:float -> unit -> Conrat_objects.Deciding.factory
(** {b KNOWN-UNSOUND test double} — the first version of {!racing}'s
    decision rule (DESIGN.md §7), which decides straight from one
    collect with no candidate phase: a process can compute its decision
    from a stale collect, stall, and publish [Decided] after a rival
    has legitimately expired its unmarked entry and decided the other
    value.  Kept only so the verification suite can prove the checkers
    and the committed counterexample fixture still catch the historical
    bug; never compose it into a real protocol. *)

type mark = None_ | Candidate | Decided

val encode : m:int -> round:int -> value:int -> mark:mark -> int
val decode : m:int -> int -> int * int * mark
(** The register encoding, exposed for white-box tests:
    [decode ~m (encode ~m ~round ~value ~mark) = (round, value, mark)]. *)
