open Conrat_sim
open Conrat_objects
open Program

type mark = None_ | Candidate | Decided

let mark_code = function None_ -> 0 | Candidate -> 1 | Decided -> 2
let mark_of_code = function 0 -> None_ | 1 -> Candidate | _ -> Decided

let encode ~m ~round ~value ~mark =
  if value < 0 || value >= m then invalid_arg "Fallback.encode: value out of range";
  (((round * m) + value) * 3) + mark_code mark

let decode ~m x = (x / 3 / m, x / 3 mod m, mark_of_code (x mod 3))

(* The first, UNSOUND version of the decision rule (DESIGN.md §7), kept
   as a test double: decide directly from one collect, with no candidate
   phase and no mark-blocking, so a process can compute its decision
   from a stale collect, stall, and publish after a rival has
   legitimately expired its entry and decided the other value.  The
   explorer suite and the committed fixture in test/fixtures/ prove the
   checker still catches exactly this. *)
let racing_unstaked ~m ?(advance_p = 0.5) () =
  let fname = Printf.sprintf "racing_fallback_unstaked(m=%d)" m in
  Deciding.make_factory fname (fun ~n memory ->
    let regs = Memory.alloc_n memory n in
    Deciding.instance fname ~space:n (fun ~pid ~rng:_ v ->
      let collect () =
        map_array
          (fun q ->
            let+ x = read regs.(q) in
            Option.map (decode ~m) x)
          (Array.init n Fun.id)
      in
      let publish ~round ~value ~mark =
        write regs.(pid) (encode ~m ~round ~value ~mark)
      in
      let* () = publish ~round:1 ~value:v ~mark:None_ in
      let rec loop () =
        let* entries = collect () in
        let winner = ref None in
        Array.iter
          (function
            | Some (_, value, Decided) when !winner = None -> winner := Some value
            | Some _ | None -> ())
          entries;
        match !winner with
        | Some value -> return { Deciding.decide = true; value }
        | None ->
          let my_round, my_value, _ =
            match entries.(pid) with
            | Some e -> e
            | None -> assert false
          in
          let conflict = ref false in
          let max_round = ref my_round in
          Array.iter
            (function
              | Some (round, value, _) ->
                if round > !max_round then max_round := round;
                (* BUG (intentional): only the live window blocks; a
                   rival sitting on a pending decision is invisible. *)
                if round >= my_round - 1 && value <> my_value then conflict := true
              | None -> ())
            entries;
          if !max_round > my_round then begin
            let lead_value = ref my_value in
            (try
               Array.iter
                 (function
                   | Some (round, value, _) when round = !max_round ->
                     lead_value := value;
                     raise Exit
                   | Some _ | None -> ())
                 entries
             with Exit -> ());
            let* () = publish ~round:!max_round ~value:!lead_value ~mark:None_ in
            loop ()
          end
          else if not !conflict then
            (* BUG (intentional): publish Decided straight from the
               stale collect — no candidate stake, no re-collect. *)
            let* () = publish ~round:my_round ~value:my_value ~mark:Decided in
            return { Deciding.decide = true; value = my_value }
          else
            let* () =
              prob_write regs.(pid)
                (encode ~m ~round:(my_round + 1) ~value:my_value ~mark:None_)
                ~p:advance_p
            in
            loop ()
      in
      loop ()))

let racing ~m ?(advance_p = 0.5) () =
  let fname = Printf.sprintf "racing_fallback(m=%d)" m in
  Deciding.make_factory fname (fun ~n memory ->
    let regs = Memory.alloc_n memory n in
    Deciding.instance fname ~space:n (fun ~pid ~rng:_ v ->
      let collect () =
        map_array
          (fun q ->
            let+ x = read regs.(q) in
            Option.map (decode ~m) x)
          (Array.init n Fun.id)
      in
      let publish ~round ~value ~mark =
        write regs.(pid) (encode ~m ~round ~value ~mark)
      in
      let* () = publish ~round:1 ~value:v ~mark:None_ in
      let rec loop () =
        let* entries = collect () in
        step entries
      and step entries =
        (* A published decision is final for everyone. *)
        let winner = ref None in
        Array.iter
          (function
            | Some (_, value, Decided) when !winner = None -> winner := Some value
            | Some _ | None -> ())
          entries;
        match !winner with
        | Some value -> return { Deciding.decide = true; value }
        | None ->
          let my_round, my_value, _ =
            match entries.(pid) with
            | Some e -> e
            | None -> assert false (* we wrote our register first *)
          in
          (* Conflict = any live-window or marked entry with another
             value.  Marked (candidate) entries never expire: their
             owner may be sitting on a pending decision computed from a
             stale collect, so they must keep blocking until their
             owner resolves them. *)
          let conflict = ref false in
          let max_round = ref my_round in
          Array.iter
            (function
              | Some (round, value, mark) ->
                if round > !max_round then max_round := round;
                if (round >= my_round - 1 || mark <> None_) && value <> my_value then
                  conflict := true
              | None -> ())
            entries;
          if !max_round > my_round then begin
            (* Adopt the front: the lowest-pid entry at the top round
               (value and round travel together). *)
            let lead_value = ref my_value in
            (try
               Array.iter
                 (function
                   | Some (round, value, _) when round = !max_round ->
                     lead_value := value;
                     raise Exit
                   | Some _ | None -> ())
                 entries
             with Exit -> ());
            let* () = publish ~round:!max_round ~value:!lead_value ~mark:None_ in
            loop ()
          end
          else if not !conflict then begin
            (* Two-phase decision.  Phase 1: stake a candidate mark.
               Phase 2: re-collect; only if the window is still clean
               may we upgrade to Decided.  Any rival staking its own
               candidate concurrently is totally ordered against our
               re-collect, so at least one side sees the other and
               backs off — two conflicting Decided marks can never
               coexist. *)
            let* () = publish ~round:my_round ~value:my_value ~mark:Candidate in
            let* entries = collect () in
            let clean = ref true in
            Array.iteri
              (fun q entry ->
                match entry with
                | Some (round, value, mark) ->
                  if q <> pid
                     && (round >= my_round - 1 || mark <> None_)
                     && value <> my_value
                  then clean := false
                | None -> ())
              entries;
            let someone_decided =
              Array.exists
                (function Some (_, _, Decided) -> true | Some _ | None -> false)
                entries
            in
            if someone_decided then step entries
            else if !clean then
              let* () = publish ~round:my_round ~value:my_value ~mark:Decided in
              return { Deciding.decide = true; value = my_value }
            else begin
              (* Back off: drop the candidate mark, adopting the value
                 of the strongest marked rival (highest (round, pid))
                 if there is one, so that contending candidates
                 converge instead of ping-ponging forever. *)
              let best = ref (my_round, pid, my_value) in
              Array.iteri
                (fun q entry ->
                  match entry with
                  | Some (round, value, (Candidate | Decided)) ->
                    let r0, q0, _ = !best in
                    if (round, q) > (r0, q0) then best := (round, q, value)
                  | Some _ | None -> ())
                entries;
              let round, _, value = !best in
              let* () = publish ~round ~value ~mark:None_ in
              loop ()
            end
          end
          else
            (* Contested front: advance probabilistically; the next
               collect reads the outcome back from our own register. *)
            let* () =
              prob_write regs.(pid)
                (encode ~m ~round:(my_round + 1) ~value:my_value ~mark:None_)
                ~p:advance_p
            in
            loop ()
      in
      loop ()))
