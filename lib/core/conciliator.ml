open Conrat_sim
open Conrat_objects
open Program

let delta_impatient = (1.0 -. exp (-0.25)) *. 0.25

let write_probability ~n ~attempt =
  if attempt >= 62 then 1.0
  else min 1.0 (float_of_int (1 lsl attempt) /. float_of_int n)

let log2_ceil n =
  let rec go acc pow = if pow >= n then acc else go (acc + 1) (2 * pow) in
  go 0 1

let max_individual_work ~n = (2 * log2_ceil n) + 4

let impatient_first_mover ?(detect = false) () =
  let fname = if detect then "impatient_first_mover_detect" else "impatient_first_mover" in
  Deciding.make_factory fname (fun ~n memory ->
    let r = Memory.alloc memory in
    Deciding.instance fname ~space:1 (fun ~pid:_ ~rng:_ v ->
      let rec loop attempt =
        let* u = read r in
        match u with
        | Some u -> return { Deciding.decide = false; value = u }
        | None ->
          let p = write_probability ~n ~attempt in
          if detect then
            let* landed = prob_write_detect r v ~p in
            if landed then return { Deciding.decide = false; value = v }
            else loop (attempt + 1)
          else
            let* () = prob_write r v ~p in
            loop (attempt + 1)
      in
      loop 0))

let constant_rate ?(rate = 1.0) () =
  let fname = "constant_rate_first_mover" in
  Deciding.make_factory fname (fun ~n memory ->
    let r = Memory.alloc memory in
    let p = min 1.0 (rate /. float_of_int n) in
    Deciding.instance fname ~space:1 (fun ~pid:_ ~rng:_ v ->
      let rec loop () =
        let* u = read r in
        match u with
        | Some u -> return { Deciding.decide = false; value = u }
        | None ->
          let* () = prob_write r v ~p in
          loop ()
      in
      loop ()))

let from_coin (coin : Conrat_coin.Shared_coin.factory) =
  let fname = Printf.sprintf "coin_conciliator(%s)" coin.cname in
  Deciding.make_factory fname (fun ~n memory ->
    let r = Memory.alloc_n memory 2 in
    let coin = coin.instantiate ~n memory in
    Deciding.instance fname ~space:2 (fun ~pid ~rng v ->
      if v <> 0 && v <> 1 then
        invalid_arg "coin conciliator: binary inputs only";
      let* () = write r.(v) 1 in
      let* other = read r.(1 - v) in
      match other with
      | None -> return { Deciding.decide = false; value = v }
      | Some _ ->
        let* c = coin.flip ~pid ~rng in
        return { Deciding.decide = false; value = c }))
