open Conrat_objects

type t = {
  name : string;
  space : unit -> int;
  decide : pid:int -> rng:Conrat_sim.Rng.t -> int -> int Conrat_sim.Program.t;
}

type factory = {
  name : string;
  instantiate : n:int -> Conrat_sim.Memory.t -> t;
}

let of_deciding name (f : Deciding.factory) =
  { name;
    instantiate =
      (fun ~n memory ->
        let obj = f.instantiate ~n memory in
        { name;
          space = (fun () -> obj.Deciding.space);
          decide =
            (fun ~pid ~rng v ->
              Conrat_sim.Program.map
                (fun out ->
                  if not out.Deciding.decide then
                    failwith
                      (name ^ ": composite object terminated without deciding");
                  out.Deciding.value)
                (obj.Deciding.run ~pid ~rng v)) }) }

(* Position i of the alternation, after an optional R₋₁; R₀ prefix:
   even positions are conciliators C_(i/2+1), odd ones ratifiers. *)
let alternation ~fast_path ~conciliator ~ratifier i =
  if fast_path then begin
    if i = 0 then ratifier (-1)
    else if i = 1 then ratifier 0
    else begin
      let round = (i / 2) in
      if i mod 2 = 0 then conciliator round else ratifier round
    end
  end
  else begin
    let round = (i / 2) + 1 in
    if i mod 2 = 0 then conciliator round else ratifier round
  end

let unbounded ?(fast_path = true) ?name ~conciliator ~ratifier () =
  let name = Option.value name ~default:"unbounded_consensus" in
  of_deciding name
    (Compose.lazy_seq name (alternation ~fast_path ~conciliator ~ratifier))

let bounded ?(fast_path = true) ?name ~rounds ~conciliator ~ratifier ~fallback () =
  let name = Option.value name ~default:"bounded_consensus" in
  let prefix_len = (if fast_path then 2 else 0) + (2 * rounds) in
  let stages =
    List.init prefix_len (alternation ~fast_path ~conciliator ~ratifier)
    @ [ fallback ]
  in
  of_deciding name (Compose.seq_factory stages)

let ratifier_only ?name ~ratifier () =
  let name = Option.value name ~default:"ratifier_only_consensus" in
  of_deciding name (Compose.lazy_seq name (fun i -> ratifier (i + 1)))

let standard_ratifier ~m =
  if m <= 2 then Ratifier.binary () else Ratifier.bollobas ~m

let standard ~m =
  unbounded
    ~name:(Printf.sprintf "standard(m=%d)" m)
    ~conciliator:(fun _ -> Conciliator.impatient_first_mover ())
    ~ratifier:(fun _ -> standard_ratifier ~m)
    ()

let standard_bounded ~m ~rounds =
  bounded
    ~name:(Printf.sprintf "standard_bounded(m=%d,k=%d)" m rounds)
    ~rounds
    ~conciliator:(fun _ -> Conciliator.impatient_first_mover ())
    ~ratifier:(fun _ -> standard_ratifier ~m)
    ~fallback:(Fallback.racing ~m ())
    ()

let standard_cheap_collect ~m =
  unbounded
    ~name:(Printf.sprintf "standard_cheap_collect(m=%d)" m)
    ~conciliator:(fun _ -> Conciliator.impatient_first_mover ())
    ~ratifier:(fun _ -> Ratifier.cheap_collect ~m)
    ()

let coin_based ~m ~coin =
  if m <> 2 then invalid_arg "Consensus.coin_based: binary only";
  unbounded
    ~name:(Printf.sprintf "coin_based(%s)" coin.Conrat_coin.Shared_coin.cname)
    ~conciliator:(fun _ -> Conciliator.from_coin coin)
    ~ratifier:(fun _ -> Ratifier.binary ())
    ()
