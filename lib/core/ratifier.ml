open Conrat_sim
open Conrat_objects
open Conrat_quorum
open Program

let space (q : Quorum.t) = q.pool + 1

let max_individual_work (q : Quorum.t) =
  Quorum.max_write_size q + Quorum.max_read_size q + 2

let of_quorum (q : Quorum.t) =
  let fname = Printf.sprintf "ratifier(%s,m=%d)" q.name q.m in
  Deciding.make_factory fname (fun ~n:_ memory ->
    let pool = Memory.alloc_n memory q.pool in
    let proposal = Memory.alloc memory in
    Deciding.instance fname ~space:(q.pool + 1) (fun ~pid:_ ~rng:_ v ->
      (* Announce v by marking its whole write quorum. *)
      let* () = iter_array (fun i -> write pool.(i) 1) (q.write_quorum v) in
      let* proposed = read proposal in
      let* preference =
        match proposed with
        | Some u -> return u
        | None ->
          let* () = write proposal v in
          return v
      in
      let* conflict =
        exists_array
          (fun i ->
            let* c = read pool.(i) in
            return (c <> None))
          (q.read_quorum preference)
      in
      return { Deciding.decide = not conflict; value = preference }))

let binary () = of_quorum Quorum.binary
let bollobas ~m = of_quorum (Quorum.bollobas_optimal ~m)
let bitvector ~m = of_quorum (Quorum.bitvector ~m)

(* Crash-recovery hardening of [of_quorum], Golab-style: every
   decision-critical register — the announcement pool and the proposal
   — is persistent, so a recovery wipe removes nothing the protocol
   relies on; and the declared recovery continuation re-validates from
   scratch rather than resuming mid-flight.  Re-running the whole
   sequence is sound precisely because every step either reads durable
   state or rewrites it idempotently: the re-announcement marks the
   same quorum cells, and the proposal read-or-write adopts whatever
   value was durably proposed first (possibly the recoverer's own
   earlier write).  Contrast [of_quorum] under recovery: there the
   wipe can erase a surviving process's announcement out from under a
   concurrent conflict scan (the recoverer was the cell's last writer),
   letting a decider miss the conflicting value — the coherence
   violation the expected-fail fixture pins down. *)
let of_quorum_rec (q : Quorum.t) =
  let fname = Printf.sprintf "ratifier_rec(%s,m=%d)" q.name q.m in
  Deciding.make_factory fname (fun ~n:_ memory ->
    let pool = Memory.alloc_n memory q.pool in
    let proposal = Memory.alloc memory in
    Array.iter (fun loc -> Memory.mark_persistent memory loc) pool;
    Memory.mark_persistent memory proposal;
    Deciding.instance fname ~space:(q.pool + 1) (fun ~pid:_ ~rng:_ v ->
      let validate () =
        let* () = iter_array (fun i -> write pool.(i) 1) (q.write_quorum v) in
        let* proposed = read proposal in
        let* preference =
          match proposed with
          | Some u -> return u
          | None ->
            let* () = write proposal v in
            return v
        in
        let* conflict =
          exists_array
            (fun i ->
              let* c = read pool.(i) in
              return (c <> None))
            (q.read_quorum preference)
        in
        return { Deciding.decide = not conflict; value = preference }
      in
      recoverable ~recover:(validate ()) (validate ())))

let binary_rec () = of_quorum_rec Quorum.binary

(* Deliberately NOT wait-free: a §7-style test double for the fault
   plane.  Process 0 announces its value then spins until some reader
   acknowledges; readers that catch the announcement ack and decide,
   readers that beat it decline with their own input.  Failure-free at
   n = 2 every complete execution decides (the lone reader must have
   acked for process 0 to finish), so Weak_consensus holds — but the
   helping pattern is crash-unsafe: crash process 0 before the
   announcement and the reader's (false, v) declination becomes the
   complete execution's only surviving output, violating acceptance on
   all-equal inputs.  The crash-closed explorer must find this. *)
let await_ack () =
  let fname = "ratifier(await_ack)" in
  Deciding.make_factory fname (fun ~n:_ memory ->
    let flag = Memory.alloc memory in
    let ack = Memory.alloc memory in
    Deciding.instance fname ~space:2 (fun ~pid ~rng:_ v ->
      if pid = 0 then
        let* () = write flag v in
        let rec spin () =
          let* a = read ack in
          if a = None then spin ()
          else return { Deciding.decide = true; value = v }
        in
        spin ()
      else
        let* w = read flag in
        match w with
        | Some u ->
          let* () = write ack 1 in
          return { Deciding.decide = true; value = u }
        | None -> return { Deciding.decide = false; value = v }))

let cheap_collect ~m =
  let q = Quorum.singleton ~m in
  let fname = Printf.sprintf "ratifier(cheap_collect,m=%d)" m in
  Deciding.make_factory fname (fun ~n:_ memory ->
    let pool = Memory.alloc_n memory q.pool in
    let base = pool.(0) in
    let proposal = Memory.alloc memory in
    Deciding.instance fname ~space:(q.pool + 1) (fun ~pid:_ ~rng:_ v ->
      let* () = write pool.(v) 1 in
      let* proposed = read proposal in
      let* preference =
        match proposed with
        | Some u -> return u
        | None ->
          let* () = write proposal v in
          return v
      in
      let* contents = collect base q.pool in
      let conflict = ref false in
      Array.iteri
        (fun i c -> if i <> preference && c <> None then conflict := true)
        contents;
      return { Deciding.decide = not !conflict; value = preference }))
