(** Consensus protocols assembled from conciliators and ratifiers (§4).

    A consensus protocol always decides; its [decide] function returns
    the agreed value directly. *)

type t = {
  name : string;
  space : unit -> int;
    (** Registers allocated by this instance {e so far}: lazily
        composed protocols grow their footprint as stages are
        instantiated, so read this after the executions of interest
        (e.g. [conrat run] reports it post-run). *)
  decide : pid:int -> rng:Conrat_sim.Rng.t -> int -> int Conrat_sim.Program.t;
    (** Builds process [pid]'s program; its result is the agreed
        value.  Build at most once per process. *)
}

type factory = {
  name : string;
  instantiate : n:int -> Conrat_sim.Memory.t -> t;
}

val of_deciding : string -> Conrat_objects.Deciding.factory -> factory
(** Wrap an always-deciding object as a consensus protocol.  The built
    program raises [Failure] at run time if the object ever terminates
    without deciding — which would be a protocol bug, not an execution
    property. *)

val unbounded :
  ?fast_path:bool ->
  ?name:string ->
  conciliator:(int -> Conrat_objects.Deciding.factory) ->
  ratifier:(int -> Conrat_objects.Deciding.factory) ->
  unit ->
  factory
(** §4.1.1, the object [U = R₋₁; R₀; C₁; R₁; C₂; R₂; …].  The
    [conciliator] and [ratifier] arguments supply a fresh factory for
    each round index [i ≥ 1]; instances are created lazily as the first
    process reaches each round.  [fast_path] (default true) includes
    the prefix [R₋₁; R₀] that lets early processes decide without
    paying for a conciliator when all fast processes agree.
    Terminates with probability 1 provided each conciliator has
    agreement probability bounded away from 0. *)

val bounded :
  ?fast_path:bool ->
  ?name:string ->
  rounds:int ->
  conciliator:(int -> Conrat_objects.Deciding.factory) ->
  ratifier:(int -> Conrat_objects.Deciding.factory) ->
  fallback:Conrat_objects.Deciding.factory ->
  unit ->
  factory
(** §4.1.2 (Theorem 5), the object
    [B = R₋₁; R₀; C₁; R₁; …; C_k; R_k; K] with [k = rounds].  The
    [fallback] must always decide (e.g. {!Fallback.racing}).  Reaching
    the fallback has probability at most [(1-δ)^k]. *)

val ratifier_only :
  ?name:string ->
  ratifier:(int -> Conrat_objects.Deciding.factory) ->
  unit ->
  factory
(** §4.2, the object [R = R₁; R₂; …] with no conciliators.  Only
    terminates under scheduling restrictions (noisy or priority-based
    adversaries); under other adversaries it may run forever, which the
    scheduler's step cap will report as [completed = false]. *)

(** {1 Ready-made instantiations} *)

val standard : m:int -> factory
(** The paper's headline protocol for the probabilistic-write model:
    impatient first-mover conciliators alternating with m-valued
    Bollobás-optimal quorum ratifiers (binary ratifier when [m = 2]),
    with the fast path.  O(log n) expected individual work, O(n log m)
    expected total work (O(n) when [m] is constant). *)

val standard_bounded : m:int -> rounds:int -> factory
(** {!standard} truncated after [rounds] conciliator/ratifier pairs
    into a {!Fallback.racing} fallback. *)

val standard_cheap_collect : m:int -> factory
(** {!standard} with the §6.2(4) cheap-collect ratifier: individual
    work drops to O(log n) with a constant (4-operation) ratifier
    regardless of [m], at the cost of m+1 registers per ratifier and
    the cheap-collect model assumption.  Runs only under a scheduler
    started with [~cheap_collect:true]. *)

val coin_based : m:int -> coin:Conrat_coin.Shared_coin.factory -> factory
(** The pre-probabilistic-write shape: shared-coin conciliators
    (Theorem 6) alternating with binary ratifiers.  Binary only
    ([m] must be 2); present as the E9 comparison point. *)
