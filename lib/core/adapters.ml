open Conrat_objects

let conciliator_of_consensus (protocol : Consensus.factory) =
  let fname = Printf.sprintf "conciliator_of(%s)" protocol.name in
  Deciding.make_factory fname (fun ~n memory ->
    let instance = protocol.instantiate ~n memory in
    Deciding.instance fname ~space:0 (fun ~pid ~rng v ->
      Conrat_sim.Program.map
        (fun value -> { Deciding.decide = false; value })
        (instance.Consensus.decide ~pid ~rng v)))

let ratifier_of_consensus (protocol : Consensus.factory) =
  let fname = Printf.sprintf "ratifier_of(%s)" protocol.name in
  Deciding.make_factory fname (fun ~n memory ->
    let instance = protocol.instantiate ~n memory in
    Deciding.instance fname ~space:0 (fun ~pid ~rng v ->
      Conrat_sim.Program.map
        (fun value -> { Deciding.decide = true; value })
        (instance.Consensus.decide ~pid ~rng v)))

let consensus_in_one_round ~m () =
  Consensus.unbounded
    ~name:(Printf.sprintf "one_round(m=%d)" m)
    ~fast_path:false
    ~conciliator:(fun _ -> conciliator_of_consensus (Consensus.standard ~m))
    ~ratifier:(fun _ ->
      if m <= 2 then Ratifier.binary () else Ratifier.bollobas ~m)
    ()
