(** Ratifiers (§3.1.2, §6): deterministic weak consensus objects that
    detect agreement.  They satisfy validity, termination, coherence
    and acceptance (all-equal inputs force everyone to decide), and are
    implemented from write/read quorums over a register pool
    (Procedure Ratifier, Theorem 8). *)

val of_quorum : Conrat_quorum.Quorum.t -> Conrat_objects.Deciding.factory
(** The generic quorum ratifier.  A process with input [v]:
    + writes 1 to every register of [W v] (announce),
    + reads the [proposal] register; adopts its value as preference if
      non-⊥, else writes its own value there,
    + reads the registers of [R preference]: if any is set, some
      conflicting value was announced — return [(0, preference)];
      otherwise return [(1, preference)].

    Space: [pool + 1] registers.  Individual work:
    at most [|W| + |R| + 2] operations. *)

val binary : unit -> Conrat_objects.Deciding.factory
(** §6.2(1): 3 registers, ≤ 4 operations per process. *)

val bollobas : m:int -> Conrat_objects.Deciding.factory
(** §6.2(2): the space-optimal m-valued ratifier;
    [⌈lg m⌉ + Θ(log log m) + 1] registers. *)

val bitvector : m:int -> Conrat_objects.Deciding.factory
(** §6.2(3): [2⌈lg m⌉ + 1] registers, ≤ [2⌈lg m⌉ + 2] operations. *)

val of_quorum_rec : Conrat_quorum.Quorum.t -> Conrat_objects.Deciding.factory
(** Crash-recovery hardening of {!of_quorum} (Golab-style recoverable
    consensus): the announcement pool and the proposal register are
    {!Conrat_sim.Memory.mark_persistent}, so the recovery wipe removes
    none of the decision-critical evidence, and the program declares a
    recovery continuation that re-validates — re-announces (idempotent
    on durable cells) and re-derives the preference from the durable
    proposal before re-running the conflict scan.  Exhausting it
    crash-closed under [crash:f=K,recover] finds zero violations where
    the stock {!of_quorum} loses coherence (a recovering announcer was
    the last writer of a pool cell shared with a surviving same-value
    process; the wipe erases the survivor's evidence mid-scan).  Same
    space and per-attempt work as {!of_quorum}. *)

val binary_rec : unit -> Conrat_objects.Deciding.factory
(** [of_quorum_rec Quorum.binary]: the recoverable 3-register binary
    ratifier. *)

val await_ack : unit -> Conrat_objects.Deciding.factory
(** KNOWN CRASH-UNSAFE test double (2 registers): process 0 announces
    its input and spins until acknowledged; other processes ack and
    decide if they see the announcement, decline with their own input
    otherwise.  Failure-free at [n = 2] it satisfies weak consensus
    (complete executions require the ack), but crashing process 0
    before its announcement leaves a surviving declination on all-equal
    inputs — an acceptance violation only the crash-closed explorer can
    reach.  Not wait-free; exists to exercise the fault pipeline. *)

val cheap_collect : m:int -> Conrat_objects.Deciding.factory
(** §6.2(4): the cheap-collect-model ratifier — write quorums of size
    1, read quorums checked with a single collect operation; 4
    operations per process regardless of [m].  Requires the scheduler
    to run with [~cheap_collect:true]. *)

val space : Conrat_quorum.Quorum.t -> int
(** Registers used by [of_quorum q]: [q.pool + 1]. *)

val max_individual_work : Conrat_quorum.Quorum.t -> int
(** Worst-case operations per process of [of_quorum q]. *)
