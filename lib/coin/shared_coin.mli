(** Weak shared coins (§5.1).

    A weak shared coin with agreement parameter δ is a protocol in
    which every process outputs a bit, and for each [b ∈ {0,1}] the
    probability that {e all} processes output [b] is at least δ,
    whatever the adversary does.  Theorem 6 turns any such coin into a
    binary conciliator.

    Two implementations are provided:

    - {!voting}: the Aspnes-Herlihy-style voting coin.  Each process
      repeatedly casts a local ±1 vote into its own pair of
      single-writer registers (vote count and running sum) and collects
      everybody's registers; once the total number of votes reaches a
      quorum [K] (default n²), the sign of the total sum is the coin.
      With [K = n²] the random drift of the common votes (≈ √K = n)
      dominates the at most [n - 1] votes the adversary can hide in
      pending writes, giving constant δ against even an adaptive
      adversary.  Expensive: Θ(n) work per vote, Θ(n²·n) total — the
      point of E9 is to measure exactly this cost against the
      probabilistic-write conciliator.
    - {!local_flip}: each process just flips its own coin; δ = 2^(1-n).
      The cheapest possible "coin", and a baseline showing why shared
      coins need actual communication. *)

type t = {
  name : string;
  flip : pid:int -> rng:Conrat_sim.Rng.t -> int Conrat_sim.Program.t;
    (** Builds process [pid]'s flip program, whose result is 0 or 1;
        build at most once per process.  The voting coin draws local
        ±1 votes from [rng] as the program unfolds, so its programs are
        not replay-pure — run them under the scheduler, not the
        exhaustive explorers. *)
}

type factory = {
  cname : string;
  delta : n:int -> float;
    (** A lower bound on the agreement probability for [n]
        processes. *)
  instantiate : n:int -> Conrat_sim.Memory.t -> t;
}

val voting : ?votes_factor:int -> unit -> factory
(** [voting ~votes_factor ()] uses a quorum of [votes_factor · n²]
    votes (default factor 1). *)

val local_flip : factory
