open Conrat_sim
open Program

type t = {
  name : string;
  flip : pid:int -> rng:Rng.t -> int Program.t;
}

type factory = {
  cname : string;
  delta : n:int -> float;
  instantiate : n:int -> Memory.t -> t;
}

let voting ?(votes_factor = 1) () =
  { cname = "voting_coin";
    (* The standard drift argument: common votes perform a random walk
       of length >= K = factor*n^2, whose final absolute value exceeds
       the n-1 adversarially hidden votes with constant probability.
       The constant below is a conservative bound, not tight. *)
    delta = (fun ~n:_ -> 0.16);
    instantiate =
      (fun ~n memory ->
        let quorum = max 1 (votes_factor * n * n) in
        (* counts.(p) and sums.(p) are single-writer registers: only
           process p writes them.  Sums can be negative; registers hold
           arbitrary ints. *)
        let counts = Memory.alloc_n memory n in
        let sums = Memory.alloc_n memory n in
        { name = "voting_coin";
          flip =
            (fun ~pid ~rng ->
              (* Local voting state rides in the loop parameters, not
                 refs: the program must stay a plain value.  The local
                 ±1 draws still make it non-replay-pure (each re-entry
                 would advance [rng]); the explorers never run it. *)
              let rec go my_count my_sum =
                (* Collect everyone's progress: 2n reads. *)
                let rec tally q total_votes total_sum =
                  if q >= n then return (total_votes, total_sum)
                  else
                    let* c = read counts.(q) in
                    let* s = read sums.(q) in
                    tally (q + 1)
                      (total_votes + Option.value c ~default:0)
                      (total_sum + Option.value s ~default:0)
                in
                let* total_votes, total_sum = tally 0 0 0 in
                if total_votes >= quorum then
                  return (if total_sum >= 0 then 1 else 0)
                else begin
                  (* Cast one local vote: local coin flip, then publish. *)
                  let my_count = my_count + 1 in
                  let my_sum = my_sum + Rng.pm1 rng in
                  let* () = write sums.(pid) my_sum in
                  let* () = write counts.(pid) my_count in
                  go my_count my_sum
                end
              in
              go 0 0) }) }

let local_flip =
  { cname = "local_flip";
    delta = (fun ~n -> 2.0 ** (1.0 -. float_of_int n));
    instantiate =
      (fun ~n:_ _memory ->
        { name = "local_flip";
          flip = (fun ~pid:_ ~rng -> return (if Rng.bool rng then 1 else 0)) }) }
