(** The engine layer: executes a {!Plan} sequentially or across an
    OCaml 5 domain pool, producing one {!aggregate} per spec.

    Determinism contract: a trial is a pure function of its spec and
    seed — every trial gets a fresh [Rng], [Memory], scheduler and
    protocol instance — so the aggregates are a pure function of the
    plan.  Per-seed results are combined with an {e order-canonical}
    merge ({!merge} keeps samples and failures sorted by seed), which
    makes the merge commutative and associative with identity
    {!empty_aggregate}; parallel output is therefore bit-identical to
    sequential output regardless of how the domain pool interleaves
    trials.  Determinism is per {e seed}, not per schedule-order: the
    wall-clock order in which trials execute is irrelevant by
    construction. *)

type outcome = {
  inputs : int array;
  outputs : int option array;
  agreed : bool;           (** all finished processes returned one value *)
  safety : (unit, string) result;
    (** agreement + validity on this execution ([Ok] required always
        for consensus; conciliators may legitimately disagree) *)
  completed : bool;        (** every surviving process finished in the cap *)
  crashes : int;           (** crash-stops injected into this trial *)
  recoveries : int;        (** crash-recovery events injected *)
  plan_ignored : int;
    (** invalid fault-plan overrides degraded to plain steps (the
        scheduler's [plan_ignored], a.k.a. the [plan_overrides_ignored]
        telemetry counter) *)
  total_work : int;
  individual_work : int;
  steps : int;
  registers : int;
  stage_work : (string * (int * int)) list;
    (** per-stage (total, max individual) work, stage-name ascending;
        [[]] unless the trial ran with [stages] enabled *)
}

val run_consensus :
  ?max_steps:int ->
  ?cheap_collect:bool ->
  ?stages:bool ->
  ?faults:Conrat_sim.Fault.model ->
  n:int ->
  adversary:Conrat_sim.Adversary.t ->
  inputs:int array ->
  seed:int ->
  Conrat_core.Consensus.factory ->
  outcome
(** One execution.  [safety] is the full consensus contract
    (termination within the cap, agreement, validity; both are already
    survivor-aware — crashed processes produce no output and outputs
    are only checked where produced).  [stages] (default false)
    collects the per-stage work breakdown.  [faults] (default none)
    weakens registers when asked and injects the default
    [Conrat_faults.Injector.of_model] plan. *)

val run_deciding :
  ?max_steps:int ->
  ?cheap_collect:bool ->
  ?stages:bool ->
  ?faults:Conrat_sim.Fault.model ->
  n:int ->
  adversary:Conrat_sim.Adversary.t ->
  inputs:int array ->
  seed:int ->
  Conrat_objects.Deciding.factory ->
  outcome * Conrat_sim.Spec.decision option array
(** One execution of a bare deciding object.  [outcome.safety] checks
    validity and coherence; the raw decision outputs are also returned
    for object-specific checks. *)

type sample = {
  s_seed : int;
  s_total : int;   (** total work of the trial *)
  s_indiv : int;   (** individual work of the trial *)
  s_probe : int;   (** probe counter of the trial (0 unless [Probed]) *)
}

type aggregate = {
  trials : int;                    (** trials that ran to an outcome *)
  agreements : int;                (** trials where all values matched *)
  failures : (int * string) list;  (** (seed, reason), seed-ascending *)
  quarantined : (int * string) list;
    (** (seed, exception) for trials that raised while quarantine was
        enabled, seed-ascending; not counted in [trials] *)
  samples : sample list;           (** per-seed work, seed-ascending *)
  space : int;                     (** registers (max across trials) *)
  probe_total : int;               (** sum of probe counters *)
  crash_total : int;               (** injected crash-stops, summed *)
  recover_total : int;             (** injected recoveries, summed *)
  plan_ignored_total : int;
    (** invalid fault-plan overrides degraded to plain steps, summed *)
  stage_work : (string * (int * int)) list;
    (** per-stage (summed total, max individual) work across trials,
        stage-name ascending; [[]] unless [stages] was enabled *)
}

val empty_aggregate : aggregate
(** Identity of {!merge}. *)

val merge : aggregate -> aggregate -> aggregate
(** Order-canonical merge: commutative, associative, with identity
    {!empty_aggregate}.  Sorted lists are merged keyed on seed (ties
    broken by full comparison), counters are summed, [space] is the
    max. *)

val of_outcome : seed:int -> probe:int -> outcome -> aggregate
(** The singleton aggregate of one trial. *)

val total_works : aggregate -> int list
val individual_works : aggregate -> int list
(** Per-seed work samples in canonical (seed-ascending) order. *)

val run_trial : Plan.spec -> int -> aggregate
(** Run the spec's single trial for one seed. *)

val run_spec : ?jobs:int -> Plan.spec -> aggregate

val run_plan :
  ?jobs:int ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  ?stop:(unit -> bool) ->
  ?quarantine:bool ->
  Plan.t ->
  (string * aggregate) list
(** Execute every trial of the plan and return the per-spec aggregates
    keyed by spec id, in plan order.  [jobs] (default 1) > 1 runs the
    trials on that many domains over a shared work queue of seed
    chunks; [jobs = 0] means {!default_jobs}.  Output is identical for
    every [jobs] value.  An exception in any trial (e.g.
    [Scheduler.Collect_disallowed]) is re-raised after the pool
    drains — unless [quarantine] is true, in which case the trial's
    seed and exception are recorded in the aggregate's [quarantined]
    list and every other trial still runs (worker-domain isolation; the
    quarantined entries merge order-canonically like failures, so the
    parallel = sequential byte-identity is preserved).  [stop] is
    polled between trials (domain-safely; use an [Atomic] flag from a
    signal handler): once it returns true, remaining trials are
    skipped and the partial aggregates are returned well-formed — what
    a SIGINT-interrupted sweep flushes.  [on_progress] is invoked once
    per completed trial with the running count; with [jobs > 1] it
    runs on worker domains and must be domain-safe
    ([Conrat_obs.Progress.tick] is). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val get : (string * aggregate) list -> string -> aggregate
(** Result lookup by spec id; [Invalid_argument] when missing. *)
