type summary = {
  count : int;
  mean : float;
  stddev : float;
  minimum : float;
  maximum : float;
  median : float;
  p95 : float;
  ci95 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  let n = List.length xs in
  if n = 0 then invalid_arg "Stats.variance: empty"
  else if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    ss /. float_of_int (n - 1)
  end

let quantile q xs =
  if xs = [] then invalid_arg "Stats.quantile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
  let sorted = List.sort compare xs in
  let a = Array.of_list sorted in
  let n = Array.length a in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then a.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let summarize xs =
  if xs = [] then invalid_arg "Stats.summarize: empty";
  let n = List.length xs in
  let m = mean xs in
  let sd = sqrt (variance xs) in
  { count = n;
    mean = m;
    stddev = sd;
    minimum = List.fold_left min infinity xs;
    maximum = List.fold_left max neg_infinity xs;
    median = quantile 0.5 xs;
    p95 = quantile 0.95 xs;
    ci95 = 1.96 *. sd /. sqrt (float_of_int n) }

let of_ints xs = summarize (List.map float_of_int xs)

let binomial_ci95 ~successes ~trials =
  if trials <= 0 then invalid_arg "Stats.binomial_ci95: no trials";
  let z = 1.96 in
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt (((p *. (1.0 -. p)) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (max 0.0 (centre -. half), min 1.0 (centre +. half))

let linear_fit points =
  let n = float_of_int (List.length points) in
  if n < 2.0 then invalid_arg "Stats.linear_fit: need at least 2 points";
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
  let syy = List.fold_left (fun acc (_, y) -> acc +. (y *. y)) 0.0 points in
  let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  let intercept = (sy -. (slope *. sx)) /. n in
  let ss_tot = syy -. (sy *. sy /. n) in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        acc +. (e *. e))
      0.0 points
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  (slope, intercept, r2)

(* Mergeable running moments (Welford / Chan): the parallel engine can
   combine per-chunk statistics without keeping raw samples, and the
   merge reproduces the sequential closed forms exactly up to float
   rounding. *)

type moments = {
  m_count : int;
  m_mean : float;
  m_m2 : float;  (* sum of squared deviations from the running mean *)
}

let empty_moments = { m_count = 0; m_mean = 0.0; m_m2 = 0.0 }

let moments_add m x =
  let count = m.m_count + 1 in
  let delta = x -. m.m_mean in
  let mean = m.m_mean +. (delta /. float_of_int count) in
  { m_count = count; m_mean = mean; m_m2 = m.m_m2 +. (delta *. (x -. mean)) }

let moments_merge a b =
  if a.m_count = 0 then b
  else if b.m_count = 0 then a
  else begin
    let na = float_of_int a.m_count and nb = float_of_int b.m_count in
    let n = na +. nb in
    let delta = b.m_mean -. a.m_mean in
    { m_count = a.m_count + b.m_count;
      m_mean = a.m_mean +. (delta *. nb /. n);
      m_m2 = a.m_m2 +. b.m_m2 +. (delta *. delta *. na *. nb /. n) }
  end

let moments_of_list xs = List.fold_left moments_add empty_moments xs

let moments_mean m =
  if m.m_count = 0 then invalid_arg "Stats.moments_mean: empty" else m.m_mean

let moments_variance m =
  if m.m_count = 0 then invalid_arg "Stats.moments_variance: empty"
  else if m.m_count = 1 then 0.0
  else m.m_m2 /. float_of_int (m.m_count - 1)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.0f med=%.1f p95=%.1f max=%.0f"
    s.count s.mean s.stddev s.minimum s.median s.p95 s.maximum
