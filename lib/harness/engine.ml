open Conrat_sim

(* ------------------------------------------------------------------ *)
(* Single-trial runners                                                *)
(* ------------------------------------------------------------------ *)

type outcome = {
  inputs : int array;
  outputs : int option array;
  agreed : bool;
  safety : (unit, string) result;
  completed : bool;
  crashes : int;
  recoveries : int;
  plan_ignored : int;
  total_work : int;
  individual_work : int;
  steps : int;
  registers : int;
  stage_work : (string * (int * int)) list;
}

let all_agree outputs =
  match Spec.agreement ~outputs with Ok () -> true | Error _ -> false

(* When the spec asks for a stage breakdown, each trial gets its own
   [Stage_work] histogram (keeping trials isolated, which parallel
   execution requires) whose sink rides the scheduler run. *)
let stage_sink ~stages ~n =
  if stages then
    let sw = Conrat_obs.Stage_work.create ~n in
    (Some (Conrat_obs.Stage_work.sink sw),
     fun () -> Conrat_obs.Stage_work.totals sw)
  else (None, fun () -> [])

(* Monte-Carlo fault injection: a non-none model weakens the registers
   (when asked) and installs the default Injector plan.  The crash
   count rides in the outcome; safety stays meaningful because the
   checks below quantify over produced outputs only and [completed]
   means every *surviving* process finished. *)
let fault_setup faults memory =
  match faults with
  | None -> None
  | Some (m : Fault.model) ->
    if Fault.is_none m then None
    else begin
      if m.Fault.weak_reads then Memory.weaken_all memory;
      (* Recovery wipes need last-writer ownership (Machine.recover
         consults it to erase exactly the crashed pid's volatile
         writes); engage tracking before the protocol's first write. *)
      if m.Fault.recoveries > 0 then Memory.track_writers memory;
      Some (Conrat_faults.Injector.of_model m)
    end

let count_crashed crashed =
  Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 crashed

let run_consensus ?max_steps ?cheap_collect ?(stages = false) ?faults ~n
    ~adversary ~inputs ~seed (protocol : Conrat_core.Consensus.factory) =
  let rng = Rng.create seed in
  let memory = Memory.create () in
  let plan = fault_setup faults memory in
  let instance = protocol.instantiate ~n memory in
  let sink, stage_totals = stage_sink ~stages ~n in
  let result =
    Scheduler.run ?max_steps ?cheap_collect ?faults:plan ?sink ~n ~adversary
      ~rng ~memory
      (fun ~pid ~rng -> instance.Conrat_core.Consensus.decide ~pid ~rng inputs.(pid))
  in
  { inputs;
    outputs = result.outputs;
    agreed = all_agree result.outputs;
    safety =
      Spec.consensus_execution ~inputs ~outputs:result.outputs
        ~completed:result.completed;
    completed = result.completed;
    crashes = count_crashed result.crashed;
    recoveries = result.recoveries;
    plan_ignored = result.plan_ignored;
    total_work = Metrics.total result.metrics;
    individual_work = Metrics.individual result.metrics;
    steps = result.steps;
    registers = result.registers;
    stage_work = stage_totals () }

let run_deciding ?max_steps ?cheap_collect ?(stages = false) ?faults ~n
    ~adversary ~inputs ~seed (factory : Conrat_objects.Deciding.factory) =
  let rng = Rng.create seed in
  let memory = Memory.create () in
  let plan = fault_setup faults memory in
  let instance = factory.instantiate ~n memory in
  let sink, stage_totals = stage_sink ~stages ~n in
  let result =
    Scheduler.run ?max_steps ?cheap_collect ?faults:plan ?sink ~n ~adversary
      ~rng ~memory
      (fun ~pid ~rng ->
        Program.map
          (fun out ->
            (out.Conrat_objects.Deciding.decide, out.Conrat_objects.Deciding.value))
          (instance.Conrat_objects.Deciding.run ~pid ~rng inputs.(pid)))
  in
  let decisions = result.outputs in
  let values = Array.map (Option.map snd) decisions in
  let outcome =
    { inputs;
      outputs = values;
      agreed = all_agree values;
      safety =
        Spec.all
          [ Spec.validity ~inputs ~outputs:values;
            Spec.coherence ~outputs:decisions ];
      completed = result.completed;
      crashes = count_crashed result.crashed;
      recoveries = result.recoveries;
      plan_ignored = result.plan_ignored;
      total_work = Metrics.total result.metrics;
      individual_work = Metrics.individual result.metrics;
      steps = result.steps;
      registers = result.registers;
      stage_work = stage_totals () }
  in
  (outcome, decisions)

(* ------------------------------------------------------------------ *)
(* Aggregates: a commutative monoid over per-seed trial results        *)
(* ------------------------------------------------------------------ *)

type sample = {
  s_seed : int;
  s_total : int;
  s_indiv : int;
  s_probe : int;
}

type aggregate = {
  trials : int;
  agreements : int;
  failures : (int * string) list;
  quarantined : (int * string) list;
  samples : sample list;
  space : int;
  probe_total : int;
  crash_total : int;
  recover_total : int;
  plan_ignored_total : int;
  stage_work : (string * (int * int)) list;
}

let empty_aggregate =
  { trials = 0; agreements = 0; failures = []; quarantined = []; samples = [];
    space = 0; probe_total = 0; crash_total = 0; recover_total = 0;
    plan_ignored_total = 0; stage_work = [] }

(* Merge two lists that are already in canonical (ascending) order.
   Ties fall back to full polymorphic comparison so the result is a
   function of the combined multiset, never of the argument order. *)
let merge_sorted cmp =
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' ->
      if cmp x y <= 0 then go (x :: acc) a' b else go (y :: acc) a b'
  in
  fun a b -> go [] a b

let cmp_sample (x : sample) (y : sample) =
  match compare x.s_seed y.s_seed with 0 -> compare x y | c -> c

let cmp_failure (s1, r1) (s2, r2) =
  match compare (s1 : int) s2 with 0 -> compare (r1 : string) r2 | c -> c

let merge a b =
  { trials = a.trials + b.trials;
    agreements = a.agreements + b.agreements;
    failures = merge_sorted cmp_failure a.failures b.failures;
    quarantined = merge_sorted cmp_failure a.quarantined b.quarantined;
    samples = merge_sorted cmp_sample a.samples b.samples;
    space = max a.space b.space;
    probe_total = a.probe_total + b.probe_total;
    crash_total = a.crash_total + b.crash_total;
    recover_total = a.recover_total + b.recover_total;
    plan_ignored_total = a.plan_ignored_total + b.plan_ignored_total;
    (* Stage union-combine (totals add, maxima max) is commutative and
       associative with identity [[]], so the order-canonicity argument
       covers it too. *)
    stage_work = Conrat_obs.Stage_work.merge a.stage_work b.stage_work }

let of_outcome ~seed ~probe (o : outcome) =
  { trials = 1;
    agreements = (if o.agreed then 1 else 0);
    failures = (match o.safety with Ok () -> [] | Error r -> [ (seed, r) ]);
    quarantined = [];
    samples =
      [ { s_seed = seed; s_total = o.total_work; s_indiv = o.individual_work;
          s_probe = probe } ];
    space = o.registers;
    probe_total = probe;
    crash_total = o.crashes;
    recover_total = o.recoveries;
    plan_ignored_total = o.plan_ignored;
    stage_work = o.stage_work }

let of_quarantined ~seed exn =
  { empty_aggregate with quarantined = [ (seed, Printexc.to_string exn) ] }

let total_works a = List.map (fun s -> s.s_total) a.samples
let individual_works a = List.map (fun s -> s.s_indiv) a.samples

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let run_trial (spec : Plan.spec) seed =
  let inputs =
    spec.workload.Workload.generate ~n:spec.n ~m:spec.m (Plan.workload_rng seed)
  in
  match spec.runner with
  | Plan.Consensus protocol ->
    let o =
      run_consensus ?max_steps:spec.max_steps ~cheap_collect:spec.cheap_collect
        ~stages:spec.stages ~faults:spec.faults ~n:spec.n
        ~adversary:spec.adversary ~inputs ~seed protocol
    in
    of_outcome ~seed ~probe:0 o
  | Plan.Deciding factory ->
    let o, _ =
      run_deciding ?max_steps:spec.max_steps ~cheap_collect:spec.cheap_collect
        ~stages:spec.stages ~faults:spec.faults ~n:spec.n
        ~adversary:spec.adversary ~inputs ~seed factory
    in
    of_outcome ~seed ~probe:0 o
  | Plan.Probed build ->
    let protocol, read_probe = build () in
    let o =
      run_consensus ?max_steps:spec.max_steps ~cheap_collect:spec.cheap_collect
        ~stages:spec.stages ~faults:spec.faults ~n:spec.n
        ~adversary:spec.adversary ~inputs ~seed protocol
    in
    of_outcome ~seed ~probe:(read_probe ()) o

let run_seeds ?notify ?(stop = fun () -> false) ?(quarantine = false) spec seeds
    =
  List.fold_left
    (fun acc seed ->
      if stop () then acc
      else begin
        let one =
          if quarantine then
            (* A raising trial is recorded, not fatal: the seed lands in
               [quarantined] (a sorted singleton, so the merge stays a
               commutative monoid) and the remaining seeds still run. *)
            match run_trial spec seed with
            | agg -> agg
            | exception e -> of_quarantined ~seed e
          else run_trial spec seed
        in
        let agg = merge acc one in
        (match notify with None -> () | Some f -> f ());
        agg
      end)
    empty_aggregate seeds

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Split [seeds] into chunks of at most [chunk] seeds. *)
let chunk_seeds ~chunk seeds =
  let rec go acc current k = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | s :: rest ->
      if k = chunk then go (List.rev current :: acc) [ s ] 1 rest
      else go acc (s :: current) (k + 1) rest
  in
  go [] [] 0 seeds

(* Progress plumbing: a shared atomic trial counter; each completed
   trial bumps it and invokes the caller's callback with the running
   total.  The callback must be domain-safe when [jobs > 1] (the
   [Conrat_obs.Progress] reporter is). *)
let progress_notify ~on_progress ~total =
  match on_progress with
  | None -> None
  | Some f ->
    let done_ = Atomic.make 0 in
    Some (fun () -> f ~done_:(Atomic.fetch_and_add done_ 1 + 1) ~total)

let run_plan_parallel ?notify ?stop ?quarantine ~jobs (plan : Plan.t) =
  let specs = Array.of_list plan.Plan.specs in
  (* One task per (spec, seed chunk); chunks keep the work queue fine
     grained enough to balance trials of very different cost. *)
  let tasks =
    Array.of_list
      (List.concat
         (List.mapi
            (fun si (spec : Plan.spec) ->
              let nseeds = List.length spec.Plan.seeds in
              let chunk = max 1 (min 64 (nseeds / (jobs * 4))) in
              List.map (fun seeds -> (si, seeds))
                (chunk_seeds ~chunk spec.Plan.seeds))
            (Array.to_list specs)))
  in
  let partials = Array.make (Array.length tasks) empty_aggregate in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    let rec loop () =
      if Atomic.get failure = None then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length tasks then begin
          let si, seeds = tasks.(i) in
          (match run_seeds ?notify ?stop ?quarantine specs.(si) seeds with
           | agg -> partials.(i) <- agg
           | exception e -> Atomic.set failure (Some e));
          loop ()
        end
      end
    in
    loop ()
  in
  let helpers =
    List.init (min (jobs - 1) (max 0 (Array.length tasks - 1)))
      (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join helpers;
  (match Atomic.get failure with Some e -> raise e | None -> ());
  (* The merge is order-canonical (sorted by seed), so folding the
     chunk partials in task order gives the same aggregate a
     sequential run produces. *)
  Array.to_list
    (Array.mapi
       (fun si (spec : Plan.spec) ->
         let acc = ref empty_aggregate in
         Array.iteri
           (fun i (sj, _) -> if sj = si then acc := merge !acc partials.(i))
           tasks;
         (spec.Plan.sid, !acc))
       specs)

let run_plan ?(jobs = 1) ?on_progress ?stop ?quarantine (plan : Plan.t) =
  let jobs = if jobs = 0 then default_jobs () else max 1 jobs in
  let notify = progress_notify ~on_progress ~total:(Plan.trial_count plan) in
  if jobs = 1 then
    List.map
      (fun (spec : Plan.spec) ->
        (spec.Plan.sid, run_seeds ?notify ?stop ?quarantine spec spec.Plan.seeds))
      plan.Plan.specs
  else run_plan_parallel ?notify ?stop ?quarantine ~jobs plan

let run_spec ?jobs (spec : Plan.spec) =
  match run_plan ?jobs (Plan.make ~name:spec.Plan.sid [ spec ]) with
  | [ (_, agg) ] -> agg
  | _ -> assert false

let get results sid =
  match List.assoc_opt sid results with
  | Some agg -> agg
  | None -> invalid_arg (Printf.sprintf "Engine.get: no result for spec %S" sid)
