(** The paper-claim reproduction suite.

    The paper has no measured tables (it is a theory paper), so the
    quantities to regenerate are its quantitative theorems.  Each
    experiment below measures one claim on the simulator and prints a
    paper-vs-measured table; DESIGN.md §5 is the index and
    EXPERIMENTS.md records representative output.

    Every experiment is expressed declaratively: {!build} turns a name
    into a {!Plan.t} (the trial grid as data — no experiment owns a
    seed loop) plus a render function over the merged
    {!Engine.aggregate}s.  {!run} executes the plan via
    {!Engine.run_plan} (optionally on a domain pool), prints the
    tables, and can additionally write the structured results as
    [BENCH_E<k>.json] through {!Report}.

    - E1  Theorem 7: the impatient conciliator's agreement probability,
          individual-work cap and total-work bound.
    - E2  §6.2/Theorem 10: ratifier space and work for every quorum
          construction, against the closed forms.
    - E3  Headline: binary consensus, O(log n) individual and O(n)
          total expected work.
    - E4  Headline: m-valued consensus, O(n log m) total work.
    - E5  Prior art: impatient vs constant-rate Θ(1/n) first mover vs
          CIL racing.
    - E6  Attiya-Censor shape: geometric decay of the termination tail.
    - E7  §2.1: conciliator agreement probability per adversary class.
    - E8  §4.1.1: the fast path on agreeing inputs.
    - E9  Theorem 6 vs Theorem 7: shared-coin conciliators vs
          probabilistic-write conciliators, plus the impatience-schedule
          ablation.
    - E10 Theorem 5: bounded construction — fallback rate vs (1-δ)^k
          and cost parity with the unbounded object. *)

type mode =
  | Quick  (** small sweeps, ~seconds; used by tests *)
  | Full   (** the sweeps EXPERIMENTS.md records, ~minutes *)

val mode_name : mode -> string

val all_names : string list
(** ["E1"; …; "E10"]. *)

val build :
  ?mode:mode -> string -> Plan.t * ((string * Engine.aggregate) list -> unit)
(** The experiment's plan and table renderer.  Raises [Not_found] for
    unknown names. *)

val run : ?mode:mode -> ?jobs:int -> ?json:bool -> ?progress:bool -> string -> unit
(** Run one experiment by name and print its tables to stdout.  [jobs]
    (default 1) sizes the engine's domain pool ([0] = all cores);
    stdout is byte-identical for every [jobs] value — elapsed
    wall-clock time and the jobs used are reported on stderr (via
    {!Report.info}).  [json] additionally writes [BENCH_<name>.json]
    in the working directory.  [progress] (default false) shows a
    rate-limited per-trial progress line on stderr.  Raises
    [Not_found] for unknown names. *)

val run_all : ?mode:mode -> ?jobs:int -> ?json:bool -> ?progress:bool -> unit -> unit

val delta_bound : float
(** Theorem 7's agreement probability, re-exported for the bench. *)
