open Conrat_sim
open Conrat_objects
open Conrat_core

type mode = Quick | Full

let mode_name = function Quick -> "quick" | Full -> "full"

let delta_bound = Conciliator.delta_impatient

let log2f x = log x /. log 2.0

let log2_ceil n =
  let rec go acc pow = if pow >= n then acc else go (acc + 1) (2 * pow) in
  go 0 1

let powers_of_two ~from ~upto =
  let rec go n acc = if n > upto then List.rev acc else go (2 * n) (n :: acc) in
  go from []

let agreement_cell agreements trials =
  let lo, hi = Stats.binomial_ci95 ~successes:agreements ~trials in
  Printf.sprintf "%.3f [%.3f,%.3f]" (float_of_int agreements /. float_of_int trials) lo hi

let fail_cell failures =
  match failures with
  | [] -> "0"
  | (seed, reason) :: _ ->
    Printf.sprintf "%d! (seed %d: %s)" (List.length failures) seed reason

let mean_of ints = Stats.mean (List.map float_of_int ints)
let max_of ints = List.fold_left max 0 ints

(* Aggregate accessors used by every render function. *)
let totals (a : Engine.aggregate) = Engine.total_works a
let indivs (a : Engine.aggregate) = Engine.individual_works a

(* An experiment is a plan (the trials as data) plus a render function
   over the merged per-spec aggregates.  Building both from one [cells]
   list keeps the parameter grid written exactly once. *)
type built = Plan.t * ((string * Engine.aggregate) list -> unit)

(* ------------------------------------------------------------------ *)
(* E1: Theorem 7 — the impatient first-mover conciliator.              *)
(* ------------------------------------------------------------------ *)

let e1 mode : built =
  let ns, trials_base =
    match mode with
    | Quick -> (powers_of_two ~from:2 ~upto:64, 400)
    | Full -> (powers_of_two ~from:2 ~upto:1024, 3000)
  in
  let adversaries =
    [ Adversary.round_robin; Adversary.write_stalker; Adversary.overwrite_attacker ]
  in
  let cells =
    List.concat_map
      (fun n ->
        (* Scale trials down with n to keep the sweep's total work flat. *)
        let trials = min trials_base (max 300 (50_000 / n)) in
        List.concat_map
          (fun (adversary : Adversary.t) ->
            (* The value/location-oblivious view projections cost O(n)
               per step, so those adversaries sweep a smaller range. *)
            if adversary.name = "round_robin" || n <= 256 then
              List.map
                (fun detect ->
                  let variant = if detect then "detect" else "plain" in
                  let sid = Printf.sprintf "n%d/%s/%s" n adversary.name variant in
                  (sid, n, adversary, detect, trials))
                [ false; true ]
            else [])
          adversaries)
      ns
  in
  let specs =
    List.map
      (fun (sid, n, adversary, detect, trials) ->
        Plan.spec ~sid
          ~runner:(Plan.Deciding (Conciliator.impatient_first_mover ~detect ()))
          ~adversary ~workload:Workload.alternating ~n ~m:(max 2 n)
          ~seeds:(Plan.seeds trials) ())
      cells
  in
  let render results =
    Table.heading "E1  Impatient first-mover conciliator (Theorem 7)";
    Table.note
      (Printf.sprintf
         "paper: agreement prob >= %.4f vs any location-oblivious adversary;" delta_bound);
    Table.note "       individual work <= 2 lg n + 4; expected total work <= 6n.";
    let rows =
      List.map
        (fun (sid, n, (adversary : Adversary.t), detect, _) ->
          let agg = Engine.get results sid in
          let bound = Conciliator.max_individual_work ~n in
          let bound = if detect then bound - 2 else bound in
          [ string_of_int n;
            adversary.Adversary.name;
            (if detect then "detect" else "plain");
            agreement_cell agg.Engine.agreements agg.Engine.trials;
            Table.fl delta_bound ~digits:4;
            Table.fl (mean_of (totals agg) /. float_of_int n);
            "6.00";
            string_of_int (max_of (indivs agg));
            string_of_int bound;
            fail_cell agg.Engine.failures ])
        cells
    in
    Table.print
      ~header:
        [ "n"; "adversary"; "variant"; "P[agree] (95% CI)"; ">=bound";
          "total/n"; "<=bound"; "max indiv"; "<=bound"; "safety viol" ]
      rows
  in
  (Plan.make ~name:"E1" specs, render)

(* ------------------------------------------------------------------ *)
(* E2: §6.2 — ratifier space and work per quorum construction.         *)
(* ------------------------------------------------------------------ *)

let e2 mode : built =
  let ms =
    match mode with
    | Quick -> [ 2; 4; 16; 64 ]
    | Full -> [ 2; 4; 16; 64; 256; 1024; 4096 ]
  in
  let n = 8 in
  let trials = match mode with Quick -> 50 | Full -> 200 in
  let schemes m =
    let base =
      [ ("bollobas", Conrat_quorum.Quorum.bollobas_optimal ~m, false);
        ("bitvector", Conrat_quorum.Quorum.bitvector ~m, false);
        ("singleton", Conrat_quorum.Quorum.singleton ~m, true) ]
    in
    if m = 2 then ("binary", Conrat_quorum.Quorum.binary, false) :: base else base
  in
  let cells =
    List.concat_map
      (fun m ->
        List.map
          (fun (label, q, cheap) ->
            (Printf.sprintf "m%d/%s" m label, m, label, q, cheap))
          (schemes m))
      ms
  in
  let specs =
    List.map
      (fun (sid, m, _, q, cheap) ->
        let factory =
          if cheap then Ratifier.cheap_collect ~m else Ratifier.of_quorum q
        in
        Plan.spec ~sid ~cheap_collect:cheap ~runner:(Plan.Deciding factory)
          ~adversary:Adversary.random_uniform ~workload:Workload.uniform ~n ~m
          ~seeds:(Plan.seeds trials) ())
      cells
  in
  let render results =
    Table.heading "E2  Deterministic m-valued ratifiers (Section 6, Theorem 10)";
    Table.note "paper: registers lg m + O(log log m) (Bollobas), 2 lg m + 1 (bitvector),";
    Table.note "       3 (binary), m+1 (cheap-collect); work <= |W|+|R|+2 (4 for binary/collect).";
    let rows =
      List.map
        (fun (sid, m, label, q, cheap) ->
          let agg = Engine.get results sid in
          let work_bound = if cheap then 4 else Ratifier.max_individual_work q in
          let registers = Ratifier.space q in
          let lg = log2_ceil m in
          let paper_space =
            match label with
            | "binary" -> "3"
            | "bollobas" -> Printf.sprintf "lg m+O(lglg m)+1=%d+" (lg + 1)
            | "bitvector" -> Printf.sprintf "2 lg m+1=%d" ((2 * lg) + 1)
            | _ -> Printf.sprintf "m+1=%d" (m + 1)
          in
          (* The Bollobas certificate (Theorem 9) must accept the system. *)
          let cert = if Conrat_quorum.Bollobas.certificate q then "ok" else "FAIL" in
          [ string_of_int m;
            label;
            string_of_int registers;
            paper_space;
            string_of_int (max_of (indivs agg));
            string_of_int work_bound;
            cert;
            fail_cell agg.Engine.failures ])
        cells
    in
    Table.print
      ~header:
        [ "m"; "scheme"; "registers"; "paper space"; "max indiv work"; "<=bound";
          "Thm9 cert"; "safety viol" ]
      rows;
    Table.note
      (Printf.sprintf "Bollobas pool lower bound check: m=64 needs >= %d registers; built %d."
         (Conrat_quorum.Bollobas.pool_lower_bound ~m:64)
         (Conrat_quorum.Quorum.bollobas_optimal ~m:64).pool)
  in
  (Plan.make ~name:"E2" specs, render)

(* ------------------------------------------------------------------ *)
(* E3: headline — binary consensus work scaling in n.                  *)
(* ------------------------------------------------------------------ *)

let e3 mode : built =
  let ns, trials =
    match mode with
    | Quick -> (powers_of_two ~from:2 ~upto:32, 100)
    | Full -> (powers_of_two ~from:2 ~upto:512, 400)
  in
  let protocol = Consensus.standard ~m:2 in
  let cells =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun (adversary : Adversary.t) ->
            (* The value-oblivious projection costs O(n) per step and the
               stalker forces the most conciliator rounds, so it sweeps a
               smaller range. *)
            if adversary.name <> "write_stalker" || n <= 128 then begin
              let trials = if n >= 256 then max 100 (trials / 2) else trials in
              Some (Printf.sprintf "n%d/%s" n adversary.name, n, adversary, trials)
            end
            else None)
          [ Adversary.random_uniform; Adversary.write_stalker ])
      ns
  in
  let specs =
    List.map
      (fun (sid, n, adversary, trials) ->
        Plan.spec ~sid ~runner:(Plan.Consensus protocol) ~adversary
          ~workload:Workload.split_half ~n ~m:2 ~seeds:(Plan.seeds trials) ())
      cells
  in
  let render results =
    Table.heading "E3  Binary consensus: O(log n) individual, O(n) total work";
    Table.note "paper: first weak-adversary protocol with optimal O(n) total work;";
    Table.note "       expected individual work O(log n).  Shape check: indiv/lg n and total/n flat.";
    let points = ref [] in
    let rows =
      List.map
        (fun (sid, n, (adversary : Adversary.t), _) ->
          let agg = Engine.get results sid in
          let indiv = mean_of (indivs agg) in
          let total = mean_of (totals agg) in
          let lg = max 1.0 (log2f (float_of_int n)) in
          if adversary.name = "random_uniform" then points := (lg, indiv) :: !points;
          [ string_of_int n;
            adversary.name;
            Table.fl indiv;
            Table.fl (indiv /. lg);
            Table.fl total;
            Table.fl (total /. float_of_int n);
            fail_cell agg.Engine.failures ])
        cells
    in
    Table.print
      ~header:[ "n"; "adversary"; "E[indiv]"; "indiv/lg n"; "E[total]"; "total/n"; "safety viol" ]
      rows;
    let slope, intercept, r2 = Stats.linear_fit !points in
    Table.note
      (Printf.sprintf
         "fit E[indiv] = %.2f lg n + %.2f (r^2 = %.3f) under adversary random_uniform"
         slope intercept r2)
  in
  (Plan.make ~name:"E3" specs, render)

(* ------------------------------------------------------------------ *)
(* E4: headline — m-valued consensus total work O(n log m).            *)
(* ------------------------------------------------------------------ *)

let e4 mode : built =
  let n, ms, trials =
    match mode with
    | Quick -> (16, [ 2; 4; 16; 64 ], 100)
    | Full -> (64, [ 2; 4; 16; 64; 256; 1024 ], 300)
  in
  let cells =
    List.concat_map
      (fun m ->
        List.map
          (fun (label, protocol, cheap) ->
            (Printf.sprintf "m%d/%s" m label, m, label, protocol, cheap))
          [ ("bollobas ratifier", Consensus.standard ~m, false);
            ("cheap-collect ratifier", Consensus.standard_cheap_collect ~m, true) ])
      ms
  in
  let specs =
    List.map
      (fun (sid, m, _, protocol, cheap) ->
        Plan.spec ~sid ~cheap_collect:cheap ~runner:(Plan.Consensus protocol)
          ~adversary:Adversary.random_uniform ~workload:Workload.split_half ~n ~m
          ~seeds:(Plan.seeds trials) ())
      cells
  in
  let render results =
    Table.heading "E4  m-valued consensus: O(n log m) total work";
    let rows =
      List.map
        (fun (sid, m, label, _, _) ->
          let agg = Engine.get results sid in
          let indiv = mean_of (indivs agg) in
          let total = mean_of (totals agg) in
          let lg = max 1.0 (log2f (float_of_int m)) in
          [ string_of_int m;
            label;
            Table.fl indiv;
            Table.fl total;
            Table.fl (total /. (float_of_int n *. lg));
            fail_cell agg.Engine.failures ])
        cells
    in
    Table.print
      ~header:[ "m"; "protocol"; "E[indiv]"; "E[total]"; "total/(n lg m)"; "safety viol" ]
      rows;
    Table.note (Printf.sprintf "n = %d, workload split_half, adversary random_uniform;" n);
    Table.note "cheap-collect removes the lg m ratifier factor (4-op ratifier, m+1 registers)."
  in
  (Plan.make ~name:"E4" specs, render)

(* ------------------------------------------------------------------ *)
(* E5: prior art comparison.                                           *)
(* ------------------------------------------------------------------ *)

let e5 mode : built =
  let ns, trials =
    match mode with
    | Quick -> ([ 4; 16; 64 ], 60)
    | Full -> ([ 4; 16; 64; 256 ], 200)
  in
  let protocols n =
    [ ("standard (paper)", Consensus.standard ~m:2, trials);
      ("constant_rate [19,20]", Conrat_baselines.Baseline.constant_rate_consensus ~m:2, trials);
      ("cil_racing [20]", Conrat_baselines.Baseline.cil_racing ~m:2,
       if n >= 256 then max 20 (trials / 4) else trials) ]
  in
  let cells =
    List.concat_map
      (fun n ->
        List.map
          (fun (label, protocol, trials) ->
            (Printf.sprintf "n%d/%s" n label, n, label, protocol, trials))
          (protocols n))
      ns
  in
  let specs =
    List.map
      (fun (sid, n, _, protocol, trials) ->
        Plan.spec ~sid ~runner:(Plan.Consensus protocol)
          ~adversary:Adversary.random_uniform ~workload:Workload.split_half ~n ~m:2
          ~seeds:(Plan.seeds trials) ())
      cells
  in
  let render results =
    Table.heading "E5  Impatient vs prior first movers (sublinear individual work)";
    Table.note "paper: previous protocols used Theta(1/n) write probability => Theta(n)";
    Table.note "       individual work; CIL racing is Theta(n) per collect.  Ours: O(log n).";
    let rows =
      List.map
        (fun (sid, n, label, _, _) ->
          let agg = Engine.get results sid in
          let indiv = mean_of (indivs agg) in
          [ string_of_int n;
            label;
            Table.fl indiv;
            Table.fl (indiv /. max 1.0 (log2f (float_of_int n)));
            Table.fl (indiv /. float_of_int n);
            Table.fl (mean_of (totals agg));
            fail_cell agg.Engine.failures ])
        cells
    in
    Table.print
      ~header:[ "n"; "protocol"; "E[indiv]"; "indiv/lg n"; "indiv/n"; "E[total]"; "safety viol" ]
      rows;
    Table.note "shape: indiv/lg n flat for standard; indiv/n flat for the baselines."
  in
  (Plan.make ~name:"E5" specs, render)

(* ------------------------------------------------------------------ *)
(* E6: Attiya-Censor termination tail.                                 *)
(* ------------------------------------------------------------------ *)

let e6 mode : built =
  let n, trials =
    match mode with
    | Quick -> (16, 400)
    | Full -> (32, 4000)
  in
  let spec =
    Plan.spec ~sid:"tail" ~runner:(Plan.Consensus (Consensus.standard ~m:2))
      ~adversary:Adversary.random_uniform ~workload:Workload.split_half ~n ~m:2
      ~seeds:(Plan.seeds trials) ()
  in
  let render results =
    Table.heading "E6  Termination tail: Pr[not terminated after k*n total steps]";
    Table.note "Attiya-Censor: any protocol fails to terminate in k(n-f) steps w.p. >= 1/c^k;";
    Table.note "our protocol's tail must decay geometrically (log2 column ~linear in k).";
    let agg = Engine.get results "tail" in
    (match agg.Engine.failures with
     | (_, reason) :: _ -> failwith ("E6 safety violation: " ^ reason)
     | [] -> ());
    let totals = totals agg in
    let rows =
      List.filter_map
        (fun k ->
          let cutoff = k * n in
          let surviving = List.length (List.filter (fun t -> t > cutoff) totals) in
          if surviving = 0 then None
          else begin
            let p = float_of_int surviving /. float_of_int trials in
            Some
              [ string_of_int k;
                string_of_int cutoff;
                Table.fl ~digits:4 p;
                Table.fl (log2f p) ]
          end)
        [ 1; 2; 3; 4; 5; 6; 7; 8; 10; 12 ]
    in
    Table.print ~header:[ "k"; "k*n steps"; "P[T > k*n]"; "log2 P" ] rows;
    Table.note (Printf.sprintf "n = %d, %d trials, adversary overwrite_attacker" n trials)
  in
  (Plan.make ~name:"E6" [ spec ], render)

(* ------------------------------------------------------------------ *)
(* E7: adversary class sensitivity of the conciliator.                 *)
(* ------------------------------------------------------------------ *)

let e7 mode : built =
  let n, trials =
    match mode with
    | Quick -> (32, 500)
    | Full -> (64, 4000)
  in
  let cells =
    [ (Adversary.round_robin, "oblivious", true);
      (Adversary.random_uniform, "oblivious", true);
      (Adversary.fixed_permutation (), "oblivious", true);
      (Adversary.write_stalker, "value-oblivious", true);
      (Adversary.overwrite_attacker, "location-oblivious", true);
      (Adversary.noisy (), "restricted", true);
      (Adversary.priority (), "restricted", true);
      (Adversary.adaptive_overwriter, "ADAPTIVE (out of model)", false) ]
  in
  let factory = Conciliator.impatient_first_mover () in
  let specs =
    List.map
      (fun ((adversary : Adversary.t), _, _) ->
        Plan.spec ~sid:adversary.Adversary.name ~runner:(Plan.Deciding factory)
          ~adversary ~workload:Workload.alternating ~n ~m:n
          ~seeds:(Plan.seeds trials) ())
      cells
  in
  let render results =
    Table.heading "E7  Conciliator agreement probability per adversary class";
    Table.note "paper: the Theorem 7 guarantee holds for any location-oblivious adversary";
    Table.note "       (probabilistic writes); stronger adversaries are outside the model.";
    let rows =
      List.map
        (fun ((adversary : Adversary.t), klass, in_model) ->
          let agg = Engine.get results adversary.Adversary.name in
          [ adversary.Adversary.name;
            klass;
            agreement_cell agg.Engine.agreements agg.Engine.trials;
            (if in_model then Table.fl delta_bound ~digits:4 else "(no guarantee)");
            fail_cell agg.Engine.failures ])
        cells
    in
    Table.print
      ~header:[ "adversary"; "class"; "P[agree] (95% CI)"; "paper bound"; "safety viol" ]
      rows
  in
  (Plan.make ~name:"E7" specs, render)

(* ------------------------------------------------------------------ *)
(* E8: the fast path.                                                  *)
(* ------------------------------------------------------------------ *)

let e8 mode : built =
  let ns, trials =
    match mode with
    | Quick -> ([ 2; 8; 32 ], 100)
    | Full -> ([ 2; 8; 32; 128; 512 ], 400)
  in
  let cells =
    List.concat_map
      (fun n ->
        List.map
          (fun (wl : Workload.t) -> (Printf.sprintf "n%d/%s" n wl.Workload.wname, n, wl))
          [ Workload.all_same; Workload.split_half ])
      ns
  in
  (* Fresh counted conciliator per trial: the probe counts how many
     processes entered a conciliator in that execution. *)
  let probed () =
    let conciliator_entries, counted_conciliator =
      Deciding.counting (Conciliator.impatient_first_mover ())
    in
    let protocol =
      Consensus.unbounded
        ~name:"standard+counting"
        ~conciliator:(fun _ -> counted_conciliator)
        ~ratifier:(fun _ -> Ratifier.binary ())
        ()
    in
    (protocol, conciliator_entries)
  in
  let specs =
    List.map
      (fun (sid, n, wl) ->
        (* [stages]: the fast-path claim is *about* where work happens
           (the R₋₁;R₀ prefix vs conciliator rounds), so E8 records the
           per-stage breakdown into its BENCH json. *)
        Plan.spec ~sid ~stages:true ~runner:(Plan.Probed probed)
          ~adversary:Adversary.random_uniform
          ~workload:wl ~n ~m:2 ~seeds:(Plan.seeds trials) ())
      cells
  in
  let render results =
    Table.heading "E8  Fast path (Section 4.1.1): agreeing inputs decide in R-1;R0";
    Table.note "paper: with all-equal inputs, acceptance forces a decision in the prefix,";
    Table.note "       so no process ever runs a conciliator and individual work is O(1).";
    let rows =
      List.map
        (fun (sid, n, (wl : Workload.t)) ->
          let agg = Engine.get results sid in
          [ string_of_int n;
            wl.Workload.wname;
            Table.fl (mean_of (indivs agg));
            string_of_int (max_of (indivs agg));
            (if wl.Workload.wname = "all_same" then "8" else "-");
            Printf.sprintf "%.2f"
              (float_of_int agg.Engine.probe_total /. float_of_int agg.Engine.trials);
            fail_cell agg.Engine.failures ])
        cells
    in
    Table.print
      ~header:
        [ "n"; "workload"; "E[indiv]"; "max indiv"; "<=bound"; "conciliator entries/trial";
          "safety viol" ]
      rows;
    (* The stage breakdown makes the fast-path claim directly visible:
       under all_same every operation lands in the ratifier prefix
       stages; conciliator stages appear only under split inputs. *)
    Table.note "";
    Table.note "Per-stage work (largest spec, summed over trials, top stages by total):";
    (match List.rev cells with
     | [] -> ()
     | (sid, _, _) :: _ ->
       let agg = Engine.get results sid in
       let top =
         List.sort
           (fun (_, (ta, _)) (_, (tb, _)) -> compare tb ta)
           agg.Engine.stage_work
       in
       let rec take k = function
         | x :: tl when k > 0 -> x :: take (k - 1) tl
         | _ -> []
       in
       Table.print
         ~header:[ "stage"; "total work"; "max indiv" ]
         (List.map
            (fun (stage, (total, indiv)) ->
              [ stage; string_of_int total; string_of_int indiv ])
            (take 8 top)))
  in
  (Plan.make ~name:"E8" specs, render)

(* ------------------------------------------------------------------ *)
(* E9: coin-based vs probabilistic-write conciliators + schedule       *)
(* ablation.                                                           *)
(* ------------------------------------------------------------------ *)

let e9 mode : built =
  let ns, trials =
    match mode with
    | Quick -> ([ 2; 4 ], 60)
    | Full -> ([ 2; 4; 8; 16 ], 200)
  in
  let coin_cells =
    List.concat_map
      (fun n ->
        List.map
          (fun (label, factory) -> (Printf.sprintf "n%d/%s" n label, n, label, factory))
          [ ("impatient (Thm 7)", Conciliator.impatient_first_mover ());
            ("coin/voting (Thm 6)", Conciliator.from_coin (Conrat_coin.Shared_coin.voting ()));
            ("coin/local_flip", Conciliator.from_coin Conrat_coin.Shared_coin.local_flip) ])
      ns
  in
  let abl_n, abl_trials =
    match mode with Quick -> (64, 400) | Full -> (256, 2500)
  in
  let abl_cells =
    List.map
      (fun growth ->
        let label =
          match growth with `Double -> "x2 (paper)" | `Quadruple -> "x4" | `Linear -> "+1/n"
        in
        ("schedule/" ^ label, label, growth))
      [ `Double; `Quadruple; `Linear ]
  in
  let specs =
    List.map
      (fun (sid, n, _, factory) ->
        Plan.spec ~sid ~runner:(Plan.Deciding factory) ~adversary:Adversary.write_stalker
          ~workload:Workload.split_half ~n ~m:2 ~seeds:(Plan.seeds trials) ())
      coin_cells
    @ List.map
        (fun (sid, _, growth) ->
          Plan.spec ~sid
            ~runner:(Plan.Deciding (Conrat_baselines.Baseline.schedule_conciliator ~growth))
            ~adversary:Adversary.write_stalker ~workload:Workload.alternating
            ~n:abl_n ~m:abl_n ~seeds:(Plan.seeds abl_trials) ())
        abl_cells
  in
  let render results =
    Table.heading "E9  Conciliator implementations (Theorem 6 vs Theorem 7)";
    Table.note "paper: any weak shared coin gives a conciliator; the voting coin costs";
    Table.note "       Theta(n) per vote and Theta(n^2) votes, vs O(n) total for Theorem 7.";
    let rows =
      List.map
        (fun (sid, n, label, _) ->
          let agg = Engine.get results sid in
          [ string_of_int n;
            label;
            agreement_cell agg.Engine.agreements agg.Engine.trials;
            Table.fl (mean_of (totals agg));
            string_of_int (max_of (indivs agg));
            fail_cell agg.Engine.failures ])
        coin_cells
    in
    Table.print
      ~header:[ "n"; "conciliator"; "P[agree] (95% CI)"; "E[total]"; "max indiv"; "safety viol" ]
      rows;

    Table.note "";
    Table.note "Ablation: impatience growth schedule, bare conciliator (DESIGN.md)";
    let rows =
      List.map
        (fun (sid, label, _) ->
          let agg = Engine.get results sid in
          [ label;
            agreement_cell agg.Engine.agreements agg.Engine.trials;
            Table.fl (mean_of (indivs agg));
            string_of_int (max_of (indivs agg));
            Table.fl (mean_of (totals agg) /. float_of_int abl_n);
            fail_cell agg.Engine.failures ])
        abl_cells
    in
    Table.print
      ~header:[ "schedule"; "P[agree] (95% CI)"; "E[indiv]"; "max indiv"; "total/n"; "safety viol" ]
      rows;
    Table.note
      (Printf.sprintf
         "n = %d: x4 reaches p=1 sooner (fewer ops, more collisions => lower P[agree]);" abl_n);
    Table.note "+1/n takes Theta(sqrt n) attempts (more ops) for a similar P[agree]."
  in
  (Plan.make ~name:"E9" specs, render)

(* ------------------------------------------------------------------ *)
(* E10: bounded construction (Theorem 5).                              *)
(* ------------------------------------------------------------------ *)

let e10 mode : built =
  let n, trials, ks =
    match mode with
    | Quick -> (8, 200, [ 1; 2; 4 ])
    | Full -> (16, 1500, [ 1; 2; 4; 6; 8 ])
  in
  let adversary = Adversary.random_uniform in
  let bounded_probed k () =
    let fallback_entries, counted_fallback =
      Deciding.counting (Fallback.racing ~m:2 ())
    in
    let protocol =
      Consensus.bounded ~name:"bounded+counting" ~rounds:k
        ~conciliator:(fun _ -> Conciliator.impatient_first_mover ())
        ~ratifier:(fun _ -> Ratifier.binary ())
        ~fallback:counted_fallback ()
    in
    (protocol, fallback_entries)
  in
  let k_cells = List.map (fun k -> (Printf.sprintf "k%d" k, k)) ks in
  let specs =
    Plan.spec ~sid:"unbounded" ~runner:(Plan.Consensus (Consensus.standard ~m:2))
      ~adversary ~workload:Workload.split_half ~n ~m:2 ~seeds:(Plan.seeds trials) ()
    :: List.map
         (fun (sid, k) ->
           Plan.spec ~sid ~runner:(Plan.Probed (bounded_probed k)) ~adversary
             ~workload:Workload.split_half ~n ~m:2 ~seeds:(Plan.seeds trials) ())
         k_cells
  in
  let render results =
    Table.heading "E10  Bounded construction (Theorem 5)";
    Table.note "paper: truncating after k rounds into fallback K reaches K with prob";
    Table.note "       <= (1-delta)^k and costs O(max(T(C), T(R))) like the unbounded object.";
    let u = Engine.get results "unbounded" in
    let u_indiv = mean_of (indivs u) in
    let u_total = mean_of (totals u) in
    let rows =
      List.map
        (fun (sid, k) ->
          let agg = Engine.get results sid in
          let indiv = mean_of (indivs agg) in
          let total = mean_of (totals agg) in
          let fallback_rate =
            (* Entries count processes; a trial "reaches K" if any did. *)
            float_of_int agg.Engine.probe_total /. float_of_int (n * trials)
          in
          [ string_of_int k;
            Table.fl ~digits:4 fallback_rate;
            Table.fl ~digits:4 ((1.0 -. delta_bound) ** float_of_int k);
            Table.fl indiv;
            Table.fl (indiv /. u_indiv);
            Table.fl total;
            Table.fl (total /. u_total);
            fail_cell agg.Engine.failures ])
        k_cells
    in
    Table.print
      ~header:
        [ "k"; "fallback rate"; "<=(1-d)^k"; "E[indiv]"; "/unbounded"; "E[total]";
          "/unbounded"; "safety viol" ]
      rows;
    Table.note
      (Printf.sprintf "unbounded reference: E[indiv]=%.2f E[total]=%.2f (viol: %s)"
         u_indiv u_total (fail_cell u.Engine.failures))
  in
  (Plan.make ~name:"E10" specs, render)

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5);
    ("E6", e6); ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10) ]

let all_names = List.map fst experiments

let build ?(mode = Full) name =
  match List.assoc_opt name experiments with
  | Some f -> f mode
  | None -> raise Not_found

let run ?(mode = Full) ?(jobs = 1) ?(json = false) ?(progress = false) name =
  let plan, render = build ~mode name in
  let t0 = Unix.gettimeofday () in
  let on_progress =
    if not progress then None
    else begin
      let reporter = Conrat_obs.Progress.create ~label:name () in
      Some
        (fun ~done_ ~total ->
          Conrat_obs.Progress.tick reporter ~done_ ~detail:(fun () ->
            Printf.sprintf "of %d trials" total))
    end
  in
  let results = Engine.run_plan ~jobs ?on_progress plan in
  let elapsed = Unix.gettimeofday () -. t0 in
  render results;
  if json then
    Report.write_json ~file:(Report.bench_file name) ~experiment:name
      ~mode:(mode_name mode) ~jobs ~elapsed plan results;
  (* Timing goes to stderr (via Report.info) so stdout (the tables) is a
     pure function of the plan, byte-identical for every jobs value. *)
  Report.info "[%s] %d trials in %.2fs (jobs=%d%s)" name
    (Plan.trial_count plan) elapsed
    (if jobs = 0 then Engine.default_jobs () else max 1 jobs)
    (if json then ", wrote " ^ Report.bench_file name else "")

let run_all ?(mode = Full) ?(jobs = 1) ?(json = false) ?progress () =
  List.iter (fun (name, _) -> run ~mode ~jobs ~json ?progress name) experiments
