open Conrat_sim

type runner =
  | Consensus of Conrat_core.Consensus.factory
  | Deciding of Conrat_objects.Deciding.factory
  | Probed of (unit -> Conrat_core.Consensus.factory * (unit -> int))

type spec = {
  sid : string;
  runner : runner;
  adversary : Adversary.t;
  workload : Workload.t;
  n : int;
  m : int;
  seeds : int list;
  max_steps : int option;
  cheap_collect : bool;
  stages : bool;
  faults : Fault.model;
}

type t = {
  pname : string;
  specs : spec list;
}

let spec ?max_steps ?(cheap_collect = false) ?(stages = false)
    ?(faults = Fault.none) ~sid ~runner ~adversary ~workload ~n ~m ~seeds () =
  if n <= 0 then invalid_arg "Plan.spec: n must be positive";
  if seeds = [] then invalid_arg "Plan.spec: empty seed list";
  { sid; runner; adversary; workload; n; m; seeds; max_steps; cheap_collect;
    stages; faults }

let make ~name specs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if Hashtbl.mem tbl s.sid then
        invalid_arg (Printf.sprintf "Plan.make: duplicate spec id %S" s.sid);
      Hashtbl.add tbl s.sid ())
    specs;
  { pname = name; specs }

let runner_name = function
  | Consensus f -> f.Conrat_core.Consensus.name
  | Deciding f -> f.Conrat_objects.Deciding.fname
  | Probed mk ->
    let f, _ = mk () in
    f.Conrat_core.Consensus.name

let trial_count p =
  List.fold_left (fun acc s -> acc + List.length s.seeds) 0 p.specs

let seeds ?(base = 424242) k = List.init k (fun i -> base + i)

(* The one place the workload-input stream is derived from the trial
   seed; the harness and the CLI must agree on this or `run` would not
   reproduce a sweep's trial. *)
let workload_rng seed = Rng.create (seed lxor 0x5eed)
