(* Thin compatibility shim over Plan/Engine: the historical Monte-Carlo
   entry points, now implemented as one-spec plans. *)

type outcome = Engine.outcome = {
  inputs : int array;
  outputs : int option array;
  agreed : bool;
  safety : (unit, string) result;
  completed : bool;
  crashes : int;
  recoveries : int;
  plan_ignored : int;
  total_work : int;
  individual_work : int;
  steps : int;
  registers : int;
  stage_work : (string * (int * int)) list;
}

let run_consensus = Engine.run_consensus
let run_deciding = Engine.run_deciding

type aggregate = {
  trials : int;
  agreements : int;
  failures : (int * string) list;
  total_works : int list;
  individual_works : int list;
  space : int;
}

(* The legacy lists were built by pushing seeds in ascending order onto
   list heads, i.e. seed-descending; reverse the engine's canonical
   (ascending) order to preserve that. *)
let of_engine (a : Engine.aggregate) =
  { trials = a.Engine.trials;
    agreements = a.Engine.agreements;
    failures = List.rev a.Engine.failures;
    total_works = List.rev_map (fun s -> s.Engine.s_total) a.Engine.samples;
    individual_works = List.rev_map (fun s -> s.Engine.s_indiv) a.Engine.samples;
    space = a.Engine.space }

let trials_consensus ?max_steps ?cheap_collect ?jobs ~n ~m ~adversary ~workload
    ~seeds protocol =
  of_engine
    (Engine.run_spec ?jobs
       (Plan.spec ?max_steps ?cheap_collect ~sid:"trials"
          ~runner:(Plan.Consensus protocol) ~adversary ~workload ~n ~m ~seeds ()))

let trials_deciding ?max_steps ?cheap_collect ?jobs ~n ~m ~adversary ~workload
    ~seeds factory =
  of_engine
    (Engine.run_spec ?jobs
       (Plan.spec ?max_steps ?cheap_collect ~sid:"trials"
          ~runner:(Plan.Deciding factory) ~adversary ~workload ~n ~m ~seeds ()))

let seeds = Plan.seeds

let workload_rng = Plan.workload_rng
