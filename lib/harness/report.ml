(* The report layer: render merged engine results as machine-readable
   JSON (the text tables remain with each experiment's render
   function).  JSON is emitted by hand — the toolchain has no JSON
   library and the schema is small.  Schema: README "Machine-readable
   results". *)

(* v2: results may carry a per-stage work breakdown ("stage_work");
   absent for specs that did not enable stage collection, so v1
   consumers that ignore unknown keys keep working. *)
let schema_version = 2

(* All human-facing progress/wall-clock chatter from the harness goes
   through here so that [--json -] output on stdout stays machine-clean
   and tests can assert on one stream. *)
let info fmt =
  Printf.ksprintf
    (fun s ->
      output_string stderr s;
      output_char stderr '\n';
      flush stderr)
    fmt

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let fl x =
  (* %.17g round-trips every float; trim the common integral case. *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let add_summary buf label xs =
  let s = Stats.of_ints xs in
  Buffer.add_string buf
    (Printf.sprintf
       "%S:{\"mean\":%s,\"stddev\":%s,\"min\":%s,\"median\":%s,\"p95\":%s,\"max\":%s}"
       label (fl s.Stats.mean) (fl s.Stats.stddev) (fl s.Stats.minimum)
       (fl s.Stats.median) (fl s.Stats.p95) (fl s.Stats.maximum))

let add_result buf (spec : Plan.spec) (agg : Engine.aggregate) =
  Buffer.add_string buf "    {";
  Buffer.add_string buf "\"id\":";
  buf_add_json_string buf spec.Plan.sid;
  Buffer.add_string buf ",\"protocol\":";
  buf_add_json_string buf (Plan.runner_name spec.Plan.runner);
  Buffer.add_string buf ",\"adversary\":";
  buf_add_json_string buf spec.Plan.adversary.Conrat_sim.Adversary.name;
  Buffer.add_string buf ",\"workload\":";
  buf_add_json_string buf spec.Plan.workload.Workload.wname;
  Buffer.add_string buf
    (Printf.sprintf ",\"n\":%d,\"m\":%d,\"cheap_collect\":%b"
       spec.Plan.n spec.Plan.m spec.Plan.cheap_collect);
  (match spec.Plan.max_steps with
   | Some cap -> Buffer.add_string buf (Printf.sprintf ",\"max_steps\":%d" cap)
   | None -> ());
  Buffer.add_string buf
    (Printf.sprintf
       ",\"trials\":%d,\"agreements\":%d,\"agreement_rate\":%s,\"space\":%d,\"probe_total\":%d"
       agg.Engine.trials agg.Engine.agreements
       (fl (float_of_int agg.Engine.agreements /. float_of_int agg.Engine.trials))
       agg.Engine.space agg.Engine.probe_total);
  Buffer.add_string buf ",";
  add_summary buf "total_work" (Engine.total_works agg);
  Buffer.add_string buf ",";
  add_summary buf "individual_work" (Engine.individual_works agg);
  (match agg.Engine.stage_work with
   | [] -> ()
   | stages ->
     Buffer.add_string buf ",\"stage_work\":{";
     List.iteri
       (fun i (stage, (total, indiv)) ->
         if i > 0 then Buffer.add_char buf ',';
         buf_add_json_string buf stage;
         Buffer.add_string buf
           (Printf.sprintf ":{\"total\":%d,\"max_individual\":%d}" total indiv))
       stages;
     Buffer.add_char buf '}');
  Buffer.add_string buf ",\"failures\":[";
  List.iteri
    (fun i (seed, reason) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"seed\":%d,\"reason\":" seed);
      buf_add_json_string buf reason;
      Buffer.add_char buf '}')
    agg.Engine.failures;
  Buffer.add_string buf "]}"

let json_of_run ~experiment ~mode ~jobs ~elapsed (plan : Plan.t) results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema_version\": %d,\n" schema_version);
  Buffer.add_string buf "  \"experiment\": ";
  buf_add_json_string buf experiment;
  Buffer.add_string buf ",\n  \"mode\": ";
  buf_add_json_string buf mode;
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"jobs\": %d,\n  \"elapsed_seconds\": %s,\n  \"trials\": %d,\n"
       jobs (fl elapsed) (Plan.trial_count plan));
  Buffer.add_string buf "  \"results\": [\n";
  List.iteri
    (fun i (spec : Plan.spec) ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_result buf spec (Engine.get results spec.Plan.sid))
    plan.Plan.specs;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_json ~file ~experiment ~mode ~jobs ~elapsed plan results =
  let oc = open_out file in
  output_string oc (json_of_run ~experiment ~mode ~jobs ~elapsed plan results);
  close_out oc

let bench_file experiment = Printf.sprintf "BENCH_%s.json" experiment
