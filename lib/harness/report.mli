(** The report layer: structured (JSON) rendering of a plan's merged
    results, written as [BENCH_E<k>.json] so every future perf PR has a
    machine-readable baseline.  The schema is documented in README
    ("Machine-readable results") and versioned by [schema_version]. *)

val schema_version : int
(** 2 since the observability PR: result objects may carry a
    ["stage_work"] map (stage → total / max-individual work) when the
    spec enabled stage collection.  v1 documents are a strict subset. *)

val info : ('a, unit, string, unit) format4 -> 'a
(** [info fmt …] prints one human-facing status line to stderr and
    flushes.  Every progress/timing message in the harness and CLI
    routes through this, keeping stdout reserved for machine-readable
    output ([--json -]). *)

val json_of_run :
  experiment:string ->
  mode:string ->
  jobs:int ->
  elapsed:float ->
  Plan.t ->
  (string * Engine.aggregate) list ->
  string
(** The full JSON document for one experiment run: run metadata
    (experiment, mode, jobs, elapsed wall-clock seconds, total trials)
    plus one result object per spec — spec parameters, trial counts,
    agreement rate, register space, probe totals, total/individual
    work summaries and the (seed, reason) safety failures. *)

val write_json :
  file:string ->
  experiment:string ->
  mode:string ->
  jobs:int ->
  elapsed:float ->
  Plan.t ->
  (string * Engine.aggregate) list ->
  unit

val bench_file : string -> string
(** [bench_file "E1"] = ["BENCH_E1.json"]. *)
