(** The plan layer: an experiment as data.

    A {!t} is a named list of trial {!spec}s.  Each spec pins every
    input of a Monte-Carlo cell — protocol, adversary, workload,
    [n]/[m], the seed list, the step cap — so that an execution engine
    ({!Engine}) can run the trials in any order (sequentially or across
    domains) and still produce a result that is a pure function of the
    plan.  Experiments (E1..E10) are built by generating specs from
    their parameter grids instead of hand-rolled nested loops. *)

type runner =
  | Consensus of Conrat_core.Consensus.factory
      (** a full consensus protocol; safety = the consensus contract *)
  | Deciding of Conrat_objects.Deciding.factory
      (** a bare deciding object (conciliator / ratifier);
          safety = validity + coherence *)
  | Probed of (unit -> Conrat_core.Consensus.factory * (unit -> int))
      (** a consensus protocol built fresh for {e each trial} together
          with a counter read after the trial (e.g. a
          {!Conrat_objects.Deciding.counting} wrapper counting stage
          entries).  Per-trial construction keeps the counter — and
          therefore the trials — isolated, which parallel execution
          requires. *)

type spec = {
  sid : string;            (** aggregation key, unique within a plan *)
  runner : runner;
  adversary : Conrat_sim.Adversary.t;
  workload : Workload.t;
  n : int;
  m : int;
  seeds : int list;
  max_steps : int option;
  cheap_collect : bool;
  stages : bool;
      (** collect the per-stage work breakdown (attaches a
          [Conrat_obs.Stage_work] sink to every trial) *)
  faults : Conrat_sim.Fault.model;
      (** Monte-Carlo fault injection: registers are weakened when
          [weak_reads] and each trial runs under the default
          [Conrat_faults.Injector.of_model] plan.  A non-{!Conrat_sim.Fault.none}
          model changes the trials' random streams (the plan draws from
          its own split); {!Conrat_sim.Fault.none} is bit-identical to
          the pre-fault-plane engine. *)
}

type t = {
  pname : string;          (** e.g. ["E1"] *)
  specs : spec list;
}

val spec :
  ?max_steps:int ->
  ?cheap_collect:bool ->
  ?stages:bool ->
  ?faults:Conrat_sim.Fault.model ->
  sid:string ->
  runner:runner ->
  adversary:Conrat_sim.Adversary.t ->
  workload:Workload.t ->
  n:int ->
  m:int ->
  seeds:int list ->
  unit ->
  spec
(** Smart constructor; rejects [n <= 0] and empty seed lists.
    [stages] (default false) enables the per-stage work breakdown. *)

val make : name:string -> spec list -> t
(** Rejects duplicate spec ids. *)

val runner_name : runner -> string
(** Protocol/object display name.  For [Probed] this constructs one
    (discarded) instance to read its name. *)

val trial_count : t -> int
(** Total number of trials the plan will run. *)

val seeds : ?base:int -> int -> int list
(** [seeds k] = the [k] standard seeds [base, base+1, …] (default base
    424242). *)

val workload_rng : int -> Conrat_sim.Rng.t
(** The input-generation stream for a trial seed, derived as
    [Rng.create (seed lxor 0x5eed)] so it is independent of the
    execution stream [Rng.create seed].  The single definition shared
    by the engine, {!Montecarlo} and the CLI. *)
