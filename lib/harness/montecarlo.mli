(** The Monte-Carlo trial runner: execute a protocol many times under a
    given adversary and workload, check every execution against the
    safety specification, and collect work samples.

    Since the plan/engine refactor this module is a thin shim: a
    [trials_*] call builds a one-spec {!Plan} and hands it to
    {!Engine.run_spec}.  It remains the convenient entry point for
    tests and one-off sweeps; experiments build multi-spec plans
    directly. *)

type outcome = Engine.outcome = {
  inputs : int array;
  outputs : int option array;
  agreed : bool;           (** all finished processes returned one value *)
  safety : (unit, string) result;
    (** agreement + validity on this execution ([Ok] required always
        for consensus; conciliators may legitimately disagree) *)
  completed : bool;
  crashes : int;           (** injected crash-stops (0 without faults) *)
  recoveries : int;        (** injected crash-recoveries (0 without faults) *)
  plan_ignored : int;      (** invalid plan overrides degraded to steps *)
  total_work : int;
  individual_work : int;
  steps : int;
  registers : int;
  stage_work : (string * (int * int)) list;
    (** per-stage (total, max individual) work; [[]] unless [stages] *)
}

val run_consensus :
  ?max_steps:int ->
  ?cheap_collect:bool ->
  ?stages:bool ->
  ?faults:Conrat_sim.Fault.model ->
  n:int ->
  adversary:Conrat_sim.Adversary.t ->
  inputs:int array ->
  seed:int ->
  Conrat_core.Consensus.factory ->
  outcome
(** One execution.  [safety] is the full consensus contract
    (termination within the cap, agreement, validity). *)

val run_deciding :
  ?max_steps:int ->
  ?cheap_collect:bool ->
  ?stages:bool ->
  ?faults:Conrat_sim.Fault.model ->
  n:int ->
  adversary:Conrat_sim.Adversary.t ->
  inputs:int array ->
  seed:int ->
  Conrat_objects.Deciding.factory ->
  outcome * Conrat_sim.Spec.decision option array
(** One execution of a bare deciding object (e.g. a conciliator or
    ratifier).  The [outcome.safety] field checks validity and
    coherence — the properties every weak consensus object must
    satisfy; [outcome.agreed] reports whether the value components all
    matched.  The raw decision outputs are also returned for
    object-specific checks (acceptance, probabilistic agreement). *)

type aggregate = {
  trials : int;
  agreements : int;        (** trials where all values matched *)
  failures : (int * string) list;  (** (seed, reason) safety violations *)
  total_works : int list;
  individual_works : int list;
  space : int;             (** registers (max across trials) *)
}

val trials_consensus :
  ?max_steps:int ->
  ?cheap_collect:bool ->
  ?jobs:int ->
  n:int ->
  m:int ->
  adversary:Conrat_sim.Adversary.t ->
  workload:Workload.t ->
  seeds:int list ->
  Conrat_core.Consensus.factory ->
  aggregate

val trials_deciding :
  ?max_steps:int ->
  ?cheap_collect:bool ->
  ?jobs:int ->
  n:int ->
  m:int ->
  adversary:Conrat_sim.Adversary.t ->
  workload:Workload.t ->
  seeds:int list ->
  Conrat_objects.Deciding.factory ->
  aggregate
(** [jobs] (default 1) runs the trials on a domain pool via
    {!Engine.run_plan}; the aggregate is identical for every [jobs]
    value. *)

val seeds : ?base:int -> int -> int list
(** [seeds k] = the [k] standard seeds [base, base+1, …] (default base
    424242). *)

val workload_rng : int -> Conrat_sim.Rng.t
(** The workload-input stream for a trial seed (re-export of
    {!Plan.workload_rng}); the CLI's [run] subcommand uses the same
    derivation, so a sweep trial can be reproduced by seed. *)
