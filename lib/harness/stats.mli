(** Descriptive statistics for experiment samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;       (** sample standard deviation *)
  minimum : float;
  maximum : float;
  median : float;
  p95 : float;          (** 95th percentile *)
  ci95 : float;         (** half-width of a normal-approximation 95% CI on the mean *)
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val of_ints : int list -> summary

val mean : float list -> float
val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val quantile : float -> float list -> float
(** [quantile q xs] for [0 ≤ q ≤ 1], linear interpolation between order
    statistics. *)

val binomial_ci95 : successes:int -> trials:int -> float * float
(** Wilson score interval for a proportion — used for agreement-
    probability estimates, which are near the 0/1 boundary where the
    normal approximation misbehaves. *)

val linear_fit : (float * float) list -> float * float * float
(** [linear_fit points] = (slope, intercept, r²) of the least-squares
    line.  Used by the scaling experiments (E3/E4) to check that
    measured work is linear in lg n or n·lg m. *)

(** {1 Mergeable moments}

    Running (count, mean, M2) statistics in the Welford/Chan form.
    {!moments_merge} is associative and commutative with identity
    {!empty_moments} (up to float rounding), so per-chunk moments
    computed by parallel workers can be combined and still match the
    sequential closed forms — the same discipline {!Engine.merge}
    applies to whole aggregates. *)

type moments = {
  m_count : int;
  m_mean : float;
  m_m2 : float;   (** sum of squared deviations from the mean *)
}

val empty_moments : moments
val moments_add : moments -> float -> moments
val moments_merge : moments -> moments -> moments
val moments_of_list : float list -> moments

val moments_mean : moments -> float
(** Raises [Invalid_argument] on empty moments. *)

val moments_variance : moments -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons.
    Raises [Invalid_argument] on empty moments. *)

val pp_summary : Format.formatter -> summary -> unit
