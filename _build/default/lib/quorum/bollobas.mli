(** Bollobás's theorem as an executable certificate (§6.2, Theorem 9).

    If [A₁…A_m], [B₁…B_m] are set sequences with [Aᵢ ∩ Bⱼ = ∅] iff
    [i = j], then [Σᵢ 1 / C(aᵢ + bᵢ, aᵢ) ≤ 1] where [aᵢ = |Aᵢ|],
    [bᵢ = |Bᵢ|].  Every valid quorum system must satisfy this
    inequality (taking [Aᵢ = Wᵢ], [Bᵢ = Rᵢ]), which is why the
    [C(k, ⌊k/2⌋)]-subset construction is space-optimal.

    The checker works in exact rational arithmetic over machine
    integers (no floating-point slack): Σ 1/C(aᵢ+bᵢ, aᵢ) ≤ 1 is
    verified as Σ (L / C(aᵢ+bᵢ, aᵢ)) ≤ L for L = lcm of the
    denominators. *)

val sum_bound : (int * int) list -> bool
(** [sum_bound sizes] checks Σ 1/C(aᵢ+bᵢ, aᵢ) ≤ 1 for the given
    [(aᵢ, bᵢ)] size pairs.  Raises [Combinatorics.Overflow] if the
    exact arithmetic would overflow. *)

val certificate : Quorum.t -> bool
(** [certificate q] checks {!sum_bound} on the actual quorum sizes of
    [q].  A [false] result would contradict Theorem 9 and therefore
    indicates a broken quorum system (non-disjoint [Wᵥ]/[Rᵥ] or a
    missed intersection). *)

val pool_lower_bound : m:int -> int
(** The smallest conceivable pool size for [m] values when
    [|Wᵥ| + |Rᵥ| ≤ k] for all [v]: the least [k] with
    [C(k, ⌊k/2⌋) ≥ m].  By Theorem 9 no quorum system on fewer
    registers can distinguish [m] values with quorums confined to the
    pool. *)
