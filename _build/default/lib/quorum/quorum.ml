type t = {
  name : string;
  m : int;
  pool : int;
  write_quorum : int -> int array;
  read_quorum : int -> int array;
}

let check_value t v =
  if v < 0 || v >= t.m then
    invalid_arg (Printf.sprintf "%s quorum system: value %d out of range [0,%d)" t.name v t.m)

let binary =
  let rec t =
    { name = "binary";
      m = 2;
      pool = 2;
      write_quorum = (fun v -> check_value t v; [| v |]);
      read_quorum = (fun v -> check_value t v; [| 1 - v |]) }
  in
  t

let complement ~pool elems =
  let in_set = Array.make pool false in
  Array.iter (fun e -> in_set.(e) <- true) elems;
  let out = ref [] in
  for e = pool - 1 downto 0 do
    if not in_set.(e) then out := e :: !out
  done;
  Array.of_list !out

let bollobas_optimal ~m =
  if m < 2 then invalid_arg "bollobas_optimal: need m >= 2";
  let pool = Combinatorics.pool_size_for m in
  let size = pool / 2 in
  let rec t =
    { name = "bollobas";
      m;
      pool;
      write_quorum =
        (fun v -> check_value t v; Combinatorics.unrank_subset ~k:pool ~size v);
      read_quorum =
        (fun v ->
          check_value t v;
          complement ~pool (Combinatorics.unrank_subset ~k:pool ~size v)) }
  in
  t

let bitvector ~m =
  if m < 2 then invalid_arg "bitvector: need m >= 2";
  let bits = Combinatorics.log2_ceil m in
  let bits = max bits 1 in
  (* Register (i, b) lives at index 2*i + b. *)
  let quorum v ~complemented =
    Array.init bits (fun i ->
      let b = (v lsr i) land 1 in
      (2 * i) + (if complemented then 1 - b else b))
  in
  let rec t =
    { name = "bitvector";
      m;
      pool = 2 * bits;
      write_quorum = (fun v -> check_value t v; quorum v ~complemented:false);
      read_quorum = (fun v -> check_value t v; quorum v ~complemented:true) }
  in
  t

let singleton ~m =
  if m < 2 then invalid_arg "singleton: need m >= 2";
  let rec t =
    { name = "singleton";
      m;
      pool = m;
      write_quorum = (fun v -> check_value t v; [| v |]);
      read_quorum =
        (fun v -> check_value t v; complement ~pool:m [| v |]) }
  in
  t

let intersects a b =
  (* Both arrays sorted ascending. *)
  let i = ref 0 and j = ref 0 in
  let hit = ref false in
  while (not !hit) && !i < Array.length a && !j < Array.length b do
    if a.(!i) = b.(!j) then hit := true
    else if a.(!i) < b.(!j) then incr i
    else incr j
  done;
  !hit

let valid t =
  let ok = ref true in
  for v = 0 to t.m - 1 do
    for v' = 0 to t.m - 1 do
      let inter = intersects (t.write_quorum v') (t.read_quorum v) in
      if v = v' && inter then ok := false;
      if v <> v' && not inter then ok := false
    done
  done;
  !ok

let max_size quorum t =
  let best = ref 0 in
  for v = 0 to t.m - 1 do
    best := max !best (Array.length (quorum v))
  done;
  !best

let max_write_size t = max_size t.write_quorum t
let max_read_size t = max_size t.read_quorum t

let pp ppf t =
  Format.fprintf ppf "%s(m=%d, pool=%d, |W|<=%d, |R|<=%d)"
    t.name t.m t.pool (max_write_size t) (max_read_size t)
