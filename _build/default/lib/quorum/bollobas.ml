let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b =
  let g = gcd a b in
  let q = a / g in
  if b <> 0 && q > max_int / b then raise Combinatorics.Overflow;
  q * b

let sum_bound sizes =
  let denominators =
    List.map (fun (a, b) -> Combinatorics.binomial (a + b) a) sizes
  in
  if List.exists (fun d -> d = 0) denominators then invalid_arg "sum_bound: empty sets";
  let common = List.fold_left lcm 1 denominators in
  let total =
    List.fold_left
      (fun acc d ->
        let term = common / d in
        if acc > max_int - term then raise Combinatorics.Overflow;
        acc + term)
      0 denominators
  in
  total <= common

let certificate (q : Quorum.t) =
  let sizes =
    List.init q.m (fun v ->
      (Array.length (q.write_quorum v), Array.length (q.read_quorum v)))
  in
  sum_bound sizes

let pool_lower_bound ~m = Combinatorics.pool_size_for m
