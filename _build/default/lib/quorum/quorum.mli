(** Write/read quorum systems for the deterministic ratifier (§6).

    A quorum system for [m] values over a pool of [k] registers assigns
    each value [v] a write quorum [W v] and a read quorum [R v] such
    that (Theorem 8's hypothesis):

    - [W v ∩ R v = ∅], and
    - [W v' ∩ R v ≠ ∅] whenever [v' ≠ v]

    i.e. [W v' ∩ R v = ∅] iff [v' = v].  A process announces its value
    by writing every register in [W v]; a process checking value [v]
    reads every register in [R v] and sees a conflict iff some register
    is set — any conflicting announcement must have set one. *)

type t = {
  name : string;
  m : int;          (** number of values the system distinguishes *)
  pool : int;       (** number of announcement registers *)
  write_quorum : int -> int array;
    (** [write_quorum v] for [0 ≤ v < m]: sorted register indices. *)
  read_quorum : int -> int array;
    (** [read_quorum v]: sorted register indices. *)
}

val binary : t
(** §6.2(1): [m = 2], two registers, [W v = {v}], [R v = {1 - v}].
    Yields the 3-register, ≤ 4-operation binary ratifier. *)

val bollobas_optimal : m:int -> t
(** §6.2(2): the least pool [k] with [C(k, ⌊k/2⌋) ≥ m]; value [v] maps
    to the [v]-th ⌊k/2⌋-subset (combinadic), [R v] its complement.
    Space-optimal by Bollobás's theorem: [k = ⌈lg m⌉ + Θ(log log m)]. *)

val bitvector : m:int -> t
(** §6.2(3): pool of [2⌈lg m⌉] registers arranged as pairs
    [(i, 0), (i, 1)]; value [v] writes register [(i, bit i of v)] for
    every bit position [i], and reads the complement.  Slightly more
    registers than {!bollobas_optimal} but a simpler encoding. *)

val singleton : m:int -> t
(** §6.2(4): one register per value, [W v = {v}], [R v] = everything
    else.  Write quorums of size 1 and read quorums of size [m - 1];
    only sensible in the cheap-collect model, where the ratifier reads
    [R v] in a single collect operation. *)

val valid : t -> bool
(** Checks the Theorem 8 condition ([W v' ∩ R v = ∅ ⇔ v' = v]) for all
    pairs by brute force.  Used by tests; [O(m² k)]. *)

val max_write_size : t -> int
val max_read_size : t -> int

val pp : Format.formatter -> t -> unit
