(** Exact integer combinatorics for quorum construction.

    The Bollobás-optimal ratifier (§6.2(2)) encodes each of the [m]
    possible values as a distinct ⌊k/2⌋-element subset of a pool of [k]
    registers, for the least [k] with [C(k, ⌊k/2⌋) ≥ m].  The
    value→subset map is the combinatorial number system ("combinadic"):
    value [v] maps to the [v]-th ⌊k/2⌋-subset in the colexicographic
    order, computed digit by digit without enumerating subsets. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n, k), exactly, 0 when [k < 0] or [k > n].
    Raises [Overflow] if the result exceeds [max_int]. *)

exception Overflow

val log2_ceil : int -> int
(** ⌈lg m⌉ for [m ≥ 1] ([log2_ceil 1 = 0]). *)

val pool_size_for : int -> int
(** [pool_size_for m] is the least [k] such that [C(k, k/2) ≥ m] —
    the register-pool size of the Bollobás-optimal construction, which
    is ⌈lg m⌉ + Θ(log log m). *)

val unrank_subset : k:int -> size:int -> int -> int array
(** [unrank_subset ~k ~size r] is the [r]-th [size]-element subset of
    [{0, …, k-1}] in colexicographic order, as a sorted array.
    Requires [0 ≤ r < C(k, size)]. *)

val rank_subset : k:int -> int array -> int
(** Inverse of {!unrank_subset} (the [~k] argument is used only for
    bounds checking). *)

val subsets : k:int -> size:int -> int array list
(** All [size]-subsets of [{0, …, k-1}] in colexicographic order.  For
    tests on small instances. *)
