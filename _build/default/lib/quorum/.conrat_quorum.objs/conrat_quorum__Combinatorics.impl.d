lib/quorum/combinatorics.ml: Array List
