lib/quorum/quorum.ml: Array Combinatorics Format Printf
