lib/quorum/combinatorics.mli:
