lib/quorum/bollobas.ml: Array Combinatorics List Quorum
