lib/quorum/bollobas.mli: Quorum
