exception Overflow

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let c = ref 1 in
    for i = 1 to k do
      (* c * (n - k + i) can overflow before the division; detect it. *)
      let next_num = n - k + i in
      if !c > max_int / next_num then raise Overflow;
      c := !c * next_num / i
    done;
    !c
  end

let log2_ceil m =
  if m < 1 then invalid_arg "log2_ceil";
  let rec go acc pow = if pow >= m then acc else go (acc + 1) (2 * pow) in
  go 0 1

let pool_size_for m =
  if m < 1 then invalid_arg "pool_size_for";
  let rec go k = if binomial k (k / 2) >= m then k else go (k + 1) in
  go 1

(* Colexicographic unranking: the largest element e of the r-th
   size-subset is the largest e with C(e, size) <= r; recurse on
   r - C(e, size) with size-1. *)
let unrank_subset ~k ~size r =
  if r < 0 || r >= binomial k size then invalid_arg "unrank_subset: rank out of range";
  let elems = Array.make size 0 in
  let r = ref r in
  let e = ref (k - 1) in
  for slot = size - 1 downto 0 do
    while binomial !e (slot + 1) > !r do decr e done;
    elems.(slot) <- !e;
    r := !r - binomial !e (slot + 1)
  done;
  elems

let rank_subset ~k elems =
  let rank = ref 0 in
  Array.iteri
    (fun slot e ->
      if e < 0 || e >= k then invalid_arg "rank_subset: element out of range";
      rank := !rank + binomial e (slot + 1))
    elems;
  !rank

let subsets ~k ~size =
  List.init (binomial k size) (fun r -> unrank_subset ~k ~size r)
