lib/coin/shared_coin.ml: Array Conrat_sim Memory Proc Rng
