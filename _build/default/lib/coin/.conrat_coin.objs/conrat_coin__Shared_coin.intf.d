lib/coin/shared_coin.mli: Conrat_sim
