open Conrat_sim

type t = {
  name : string;
  flip : pid:int -> rng:Rng.t -> int;
}

type factory = {
  cname : string;
  delta : n:int -> float;
  instantiate : n:int -> Memory.t -> t;
}

let voting ?(votes_factor = 1) () =
  { cname = "voting_coin";
    (* The standard drift argument: common votes perform a random walk
       of length >= K = factor*n^2, whose final absolute value exceeds
       the n-1 adversarially hidden votes with constant probability.
       The constant below is a conservative bound, not tight. *)
    delta = (fun ~n:_ -> 0.16);
    instantiate =
      (fun ~n memory ->
        let quorum = max 1 (votes_factor * n * n) in
        (* counts.(p) and sums.(p) are single-writer registers: only
           process p writes them.  Sums can be negative; registers hold
           arbitrary ints. *)
        let counts = Memory.alloc_n memory n in
        let sums = Memory.alloc_n memory n in
        { name = "voting_coin";
          flip =
            (fun ~pid ~rng ->
              let my_count = ref 0 in
              let my_sum = ref 0 in
              let rec go () =
                (* Collect everyone's progress: 2n reads. *)
                let total_votes = ref 0 in
                let total_sum = ref 0 in
                for q = 0 to n - 1 do
                  (match Proc.read counts.(q) with
                   | Some c -> total_votes := !total_votes + c
                   | None -> ());
                  (match Proc.read sums.(q) with
                   | Some s -> total_sum := !total_sum + s
                   | None -> ())
                done;
                if !total_votes >= quorum then (if !total_sum >= 0 then 1 else 0)
                else begin
                  (* Cast one local vote: local coin flip, then publish. *)
                  my_count := !my_count + 1;
                  my_sum := !my_sum + Rng.pm1 rng;
                  Proc.write sums.(pid) !my_sum;
                  Proc.write counts.(pid) !my_count;
                  go ()
                end
              in
              go ()) }) }

let local_flip =
  { cname = "local_flip";
    delta = (fun ~n -> 2.0 ** (1.0 -. float_of_int n));
    instantiate =
      (fun ~n:_ _memory ->
        { name = "local_flip";
          flip = (fun ~pid:_ ~rng -> if Rng.bool rng then 1 else 0) }) }
