(** The §7 observation, made executable: a consensus object satisfies
    the specification of {e both} a conciliator and a ratifier.  This
    is what makes the decomposition useful for lower bounds — any lower
    bound proved for either object class transfers to consensus.

    These adapters wrap a consensus protocol as a deciding object of
    either flavour; the test suite then runs the conciliator and
    ratifier property checks against them, demonstrating that the
    specifications really are both satisfied (with agreement
    probability δ = 1 and unconditional acceptance). *)

val conciliator_of_consensus :
  Consensus.factory -> Conrat_objects.Deciding.factory
(** View a consensus object as a conciliator: probabilistic agreement
    holds with δ = 1; the decision bit is 0 (conciliators never claim
    decisions, so coherence is vacuous and the object composes like any
    other conciliator). *)

val ratifier_of_consensus :
  Consensus.factory -> Conrat_objects.Deciding.factory
(** View a consensus object as a ratifier: acceptance holds because
    with all-equal inputs validity forces the common value, and the
    adapter reports decision bit 1; coherence is agreement. *)

val consensus_in_one_round :
  m:int -> unit -> Consensus.factory
(** The degenerate instantiation of the unbounded construction where
    the "conciliator" is itself a consensus object (via
    {!conciliator_of_consensus} of {!Consensus.standard}): every
    execution decides in the first C;R round.  Exists to exercise the
    adapters end-to-end and as the δ = 1 corner case of the Theorem 5
    cost analysis. *)
