(** Conciliators (§3.1.1, §5): weak consensus objects that produce
    agreement with constant probability but never detect it.  All
    conciliators here return decision bit 0, so coherence holds
    vacuously. *)

val delta_impatient : float
(** The agreement probability guaranteed by Theorem 7:
    [(1 - e^(-1/4)) / 4 ≈ 0.0553]. *)

val impatient_first_mover : ?detect:bool -> unit -> Conrat_objects.Deciding.factory
(** Procedure ImpatientFirstMoverConciliator (§5.2, Theorem 7), for the
    probabilistic-write model and arbitrarily many values.

    One shared multi-writer register [r], initially ⊥.  Each process
    loops: read [r]; if non-⊥ return its contents (decision bit 0);
    otherwise probabilistically write its own value with probability
    [2^k / n] on the [k]-th attempt, doubling its impatience each time.

    Guarantees, validated by E1: individual work ≤ 2·lg n + 4; expected
    total work ≤ 6n; validity; termination; agreement with probability
    at least {!delta_impatient} against any location-oblivious
    adversary.

    With [~detect:true] the process uses success-detecting
    probabilistic writes (footnote 2 of the paper) and returns its own
    value immediately after a successful write, saving 2 operations of
    individual work. *)

val constant_rate : ?rate:float -> unit -> Conrat_objects.Deciding.factory
(** The prior-art first-mover conciliator of Chor-Israeli-Li [20] and
    Cheung [19] (§5.2): identical loop, but every probabilistic write
    uses the same fixed probability [rate / n] (default [rate = 1.]).
    Θ(n) individual and total work — the comparison point for the
    paper's "first sublinear individual work" claim (E5). *)

val from_coin : Conrat_coin.Shared_coin.factory -> Conrat_objects.Deciding.factory
(** Procedure CoinConciliator (§5.1, Theorem 6): a binary conciliator
    from any weak shared coin.  Two binary registers [r₀, r₁]; a
    process with input [v] sets [r_v], then reads [r_{1-v}]: if clear it
    returns [v], otherwise it returns the shared coin's output.
    Inherits the coin's agreement probability δ; adds 2 registers and 2
    operations.  Inputs must be in [{0, 1}]. *)

val write_probability : n:int -> attempt:int -> float
(** The impatience schedule of Theorem 7: [min(2^attempt / n, 1)].
    Exposed for tests and for the E1 work-bound analysis. *)

val max_individual_work : n:int -> int
(** The worst-case operation count of {!impatient_first_mover} for one
    process: [2·⌈lg n⌉ + 4]. *)
