lib/core/consensus.ml: Compose Conciliator Conrat_coin Conrat_objects Conrat_sim Deciding Fallback List Option Printf Ratifier
