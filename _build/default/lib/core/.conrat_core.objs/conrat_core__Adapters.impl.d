lib/core/adapters.ml: Conrat_objects Consensus Deciding Printf Ratifier
