lib/core/conciliator.ml: Array Conrat_coin Conrat_objects Conrat_sim Deciding Memory Printf Proc
