lib/core/ratifier.mli: Conrat_objects Conrat_quorum
