lib/core/fallback.mli: Conrat_objects
