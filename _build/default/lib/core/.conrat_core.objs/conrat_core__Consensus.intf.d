lib/core/consensus.mli: Conrat_coin Conrat_objects Conrat_sim
