lib/core/adapters.mli: Conrat_objects Consensus
