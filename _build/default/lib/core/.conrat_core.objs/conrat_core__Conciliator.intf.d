lib/core/conciliator.mli: Conrat_coin Conrat_objects
