lib/core/fallback.ml: Array Conrat_objects Conrat_sim Deciding Memory Printf Proc
