lib/core/ratifier.ml: Array Conrat_objects Conrat_quorum Conrat_sim Deciding Memory Printf Proc Quorum
