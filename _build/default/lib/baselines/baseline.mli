(** Prior-work comparators for the probabilistic-write model.

    The paper's headline claim is comparative: "No previous protocol in
    this model uses sublinear individual work or linear total work for
    constant m."  These are the protocols the claim compares against;
    E5 measures them side by side with the standard construction. *)

val cil_racing : m:int -> Conrat_core.Consensus.factory
(** The classic racing consensus in the style of Chor-Israeli-Li [20]:
    processes race through rounds via probabilistic advancement and a
    process two rounds ahead of everybody decides.  Θ(n) individual
    work per collect and polynomially many expected collects.  (This is
    the same protocol that serves as the bounded construction's
    fallback; see {!Conrat_core.Fallback}.) *)

val constant_rate_consensus : m:int -> Conrat_core.Consensus.factory
(** First-mover consensus with the fixed Θ(1/n) write probability used
    by previous protocols ([20], Cheung [19]): the unbounded
    conciliator/ratifier alternation, but every conciliator writes with
    probability exactly 1/n instead of doubling impatience.  Expected
    individual work Θ(n); the E5 sweep shows the gap to the paper's
    O(log n). *)

val schedule_conciliator :
  growth:[ `Double | `Quadruple | `Linear ] -> Conrat_objects.Deciding.factory
(** A first-mover conciliator with a configurable impatience schedule:
    write probability on attempt [k] is [2^k/n] (`Double`, the paper's
    Theorem 7 schedule), [4^k/n] (`Quadruple`) or [(k+1)/n] (`Linear`).
    `Double` reproduces
    {!Conrat_core.Conciliator.impatient_first_mover}. *)

val growth_rate_consensus :
  m:int -> growth:[ `Double | `Quadruple | `Linear ] -> Conrat_core.Consensus.factory
(** Ablation of the impatience schedule (DESIGN.md §4): conciliators
    whose write probability on attempt [k] is [2^k/n] (the paper's),
    [4^k/n], or [(k+1)/n].  Used by E9's schedule ablation to show why
    doubling is the sweet spot: faster growth hurts the agreement
    probability, slower growth hurts individual work. *)
