lib/baselines/baseline.ml: Conciliator Conrat_core Conrat_objects Conrat_sim Consensus Deciding Fallback Memory Printf Proc Ratifier
