lib/baselines/baseline.mli: Conrat_core Conrat_objects
