let looks_numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'x' || c = '%') s

let print ?(out = stdout) ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let pad = widths.(i) - String.length cell in
          if looks_numeric cell then String.make pad ' ' ^ cell
          else cell ^ String.make pad ' ')
        row
    in
    "  " ^ String.concat "  " cells
  in
  output_string out (render_row header);
  output_string out "\n";
  let rule = "  " ^ String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  output_string out rule;
  output_string out "\n";
  List.iter
    (fun row ->
      output_string out (render_row row);
      output_string out "\n")
    rows;
  flush out

let fl ?(digits = 2) x = Printf.sprintf "%.*f" digits x

let heading ?(out = stdout) title =
  Printf.fprintf out "\n%s\n%s\n" title (String.make (String.length title) '=');
  flush out

let note ?(out = stdout) text =
  Printf.fprintf out "  %s\n" text;
  flush out
