(** Input-vector generators for consensus experiments.

    A workload assigns each of the [n] processes an input in [0, m).
    The interesting workloads for agreement experiments are the
    contended ones — with identical inputs, validity forces the answer
    and the fast path decides immediately (that is E8's point). *)

type t = {
  wname : string;
  generate : n:int -> m:int -> Conrat_sim.Rng.t -> int array;
}

val all_same : t
(** Everyone gets value 0 — the fast-path workload. *)

val split_half : t
(** The adversarial binary workload: processes [0 .. n/2-1] get 0, the
    rest get 1 (values mod m for m > 2). Maximum initial disagreement
    between two camps. *)

val alternating : t
(** Input [pid mod m]: interleaved camps, so neighbouring scheduler
    slots conflict. *)

val uniform : t
(** Independent uniform draws from [0, m). *)

val zipf : ?s:float -> unit -> t
(** Zipf-distributed values (exponent [s], default 1.2): a few popular
    values and a long tail, the realistic "mostly agree already"
    regime. *)

val by_name : string -> t
(** Recognised names: all_same, split_half, alternating, uniform,
    zipf.  Raises [Not_found] otherwise. *)

val standard : t list
(** The workloads experiments sweep by default:
    [split_half; alternating; uniform]. *)
