(** Descriptive statistics for experiment samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;       (** sample standard deviation *)
  minimum : float;
  maximum : float;
  median : float;
  p95 : float;          (** 95th percentile *)
  ci95 : float;         (** half-width of a normal-approximation 95% CI on the mean *)
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val of_ints : int list -> summary

val mean : float list -> float
val variance : float list -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val quantile : float -> float list -> float
(** [quantile q xs] for [0 ≤ q ≤ 1], linear interpolation between order
    statistics. *)

val binomial_ci95 : successes:int -> trials:int -> float * float
(** Wilson score interval for a proportion — used for agreement-
    probability estimates, which are near the 0/1 boundary where the
    normal approximation misbehaves. *)

val linear_fit : (float * float) list -> float * float * float
(** [linear_fit points] = (slope, intercept, r²) of the least-squares
    line.  Used by the scaling experiments (E3/E4) to check that
    measured work is linear in lg n or n·lg m. *)

val pp_summary : Format.formatter -> summary -> unit
