lib/harness/montecarlo.ml: Array Conrat_core Conrat_objects Conrat_sim List Memory Metrics Option Rng Scheduler Spec Workload
