lib/harness/workload.ml: Array Conrat_sim Rng
