lib/harness/experiments.mli:
