lib/harness/workload.mli: Conrat_sim
