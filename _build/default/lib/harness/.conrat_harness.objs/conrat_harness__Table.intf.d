lib/harness/table.mli:
