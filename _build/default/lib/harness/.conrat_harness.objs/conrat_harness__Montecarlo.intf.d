lib/harness/montecarlo.mli: Conrat_core Conrat_objects Conrat_sim Workload
