open Conrat_sim

type t = {
  wname : string;
  generate : n:int -> m:int -> Rng.t -> int array;
}

let all_same =
  { wname = "all_same"; generate = (fun ~n ~m:_ _rng -> Array.make n 0) }

let split_half =
  { wname = "split_half";
    generate = (fun ~n ~m _rng -> Array.init n (fun pid -> if pid < n / 2 then 0 else 1 mod m)) }

let alternating =
  { wname = "alternating"; generate = (fun ~n ~m _rng -> Array.init n (fun pid -> pid mod m)) }

let uniform =
  { wname = "uniform"; generate = (fun ~n ~m rng -> Array.init n (fun _ -> Rng.int rng m)) }

let zipf ?(s = 1.2) () =
  { wname = "zipf";
    generate =
      (fun ~n ~m rng ->
        let weights = Array.init m (fun v -> 1.0 /. (float_of_int (v + 1) ** s)) in
        let total = Array.fold_left ( +. ) 0.0 weights in
        let draw () =
          let u = Rng.float rng *. total in
          let rec go v acc =
            if v >= m - 1 then m - 1
            else begin
              let acc = acc +. weights.(v) in
              if u < acc then v else go (v + 1) acc
            end
          in
          go 0 0.0
        in
        Array.init n (fun _ -> draw ())) }

let by_name = function
  | "all_same" -> all_same
  | "split_half" -> split_half
  | "alternating" -> alternating
  | "uniform" -> uniform
  | "zipf" -> zipf ()
  | _ -> raise Not_found

let standard = [ split_half; alternating; uniform ]
