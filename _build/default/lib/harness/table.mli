(** Plain-text aligned tables for experiment output — the
    paper-vs-measured rows EXPERIMENTS.md records. *)

val print : ?out:out_channel -> header:string list -> string list list -> unit
(** Column-aligned table with a rule under the header.  Right-aligns
    cells that look numeric, left-aligns the rest. *)

val fl : ?digits:int -> float -> string
(** Compact float formatting (default 2 digits). *)

val heading : ?out:out_channel -> string -> unit
(** A section heading with an underline. *)

val note : ?out:out_channel -> string -> unit
(** An indented free-text remark under a table. *)
