open Conrat_sim

type outcome = {
  inputs : int array;
  outputs : int option array;
  agreed : bool;
  safety : (unit, string) result;
  completed : bool;
  total_work : int;
  individual_work : int;
  steps : int;
  registers : int;
}

let all_agree outputs =
  match Spec.agreement ~outputs with Ok () -> true | Error _ -> false

let run_consensus ?max_steps ?cheap_collect ~n ~adversary ~inputs ~seed
    (protocol : Conrat_core.Consensus.factory) =
  let rng = Rng.create seed in
  let memory = Memory.create () in
  let instance = protocol.instantiate ~n memory in
  let result =
    Scheduler.run ?max_steps ?cheap_collect ~n ~adversary ~rng ~memory
      (fun ~pid ~rng -> instance.Conrat_core.Consensus.decide ~pid ~rng inputs.(pid))
  in
  { inputs;
    outputs = result.outputs;
    agreed = all_agree result.outputs;
    safety =
      Spec.consensus_execution ~inputs ~outputs:result.outputs
        ~completed:result.completed;
    completed = result.completed;
    total_work = Metrics.total result.metrics;
    individual_work = Metrics.individual result.metrics;
    steps = result.steps;
    registers = result.registers }

let run_deciding ?max_steps ?cheap_collect ~n ~adversary ~inputs ~seed
    (factory : Conrat_objects.Deciding.factory) =
  let rng = Rng.create seed in
  let memory = Memory.create () in
  let instance = factory.instantiate ~n memory in
  let result =
    Scheduler.run ?max_steps ?cheap_collect ~n ~adversary ~rng ~memory
      (fun ~pid ~rng ->
        let out = instance.Conrat_objects.Deciding.run ~pid ~rng inputs.(pid) in
        (out.Conrat_objects.Deciding.decide, out.Conrat_objects.Deciding.value))
  in
  let decisions = result.outputs in
  let values = Array.map (Option.map snd) decisions in
  let outcome =
    { inputs;
      outputs = values;
      agreed = all_agree values;
      safety =
        Spec.all
          [ Spec.validity ~inputs ~outputs:values;
            Spec.coherence ~outputs:decisions ];
      completed = result.completed;
      total_work = Metrics.total result.metrics;
      individual_work = Metrics.individual result.metrics;
      steps = result.steps;
      registers = result.registers }
  in
  (outcome, decisions)

type aggregate = {
  trials : int;
  agreements : int;
  failures : (int * string) list;
  total_works : int list;
  individual_works : int list;
  space : int;
}

let empty_aggregate =
  { trials = 0; agreements = 0; failures = []; total_works = []; individual_works = []; space = 0 }

let accumulate acc seed (o : outcome) =
  { trials = acc.trials + 1;
    agreements = (acc.agreements + if o.agreed then 1 else 0);
    failures =
      (match o.safety with
       | Ok () -> acc.failures
       | Error reason -> (seed, reason) :: acc.failures);
    total_works = o.total_work :: acc.total_works;
    individual_works = o.individual_work :: acc.individual_works;
    space = max acc.space o.registers }

let trials_consensus ?max_steps ?cheap_collect ~n ~m ~adversary ~workload ~seeds protocol =
  List.fold_left
    (fun acc seed ->
      let inputs = workload.Workload.generate ~n ~m (Rng.create (seed lxor 0x5eed)) in
      let o = run_consensus ?max_steps ?cheap_collect ~n ~adversary ~inputs ~seed protocol in
      accumulate acc seed o)
    empty_aggregate seeds

let trials_deciding ?max_steps ?cheap_collect ~n ~m ~adversary ~workload ~seeds factory =
  List.fold_left
    (fun acc seed ->
      let inputs = workload.Workload.generate ~n ~m (Rng.create (seed lxor 0x5eed)) in
      let o, _ = run_deciding ?max_steps ?cheap_collect ~n ~adversary ~inputs ~seed factory in
      accumulate acc seed o)
    empty_aggregate seeds

let seeds ?(base = 424242) k = List.init k (fun i -> base + i)
