lib/objects/compose.mli: Deciding
