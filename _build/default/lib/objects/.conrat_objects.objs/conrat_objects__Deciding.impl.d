lib/objects/deciding.ml: Conrat_sim Format
