lib/objects/compose.ml: Deciding List Printf
