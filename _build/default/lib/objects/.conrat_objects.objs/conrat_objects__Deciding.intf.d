lib/objects/deciding.mli: Conrat_sim Format
