let pair (x : Deciding.t) (y : Deciding.t) : Deciding.t =
  { name = Printf.sprintf "(%s; %s)" x.name y.name;
    space = x.space + y.space;
    run =
      (fun ~pid ~rng v ->
        let out = x.run ~pid ~rng v in
        if out.Deciding.decide then out else y.run ~pid ~rng out.Deciding.value) }

let pass_through : Deciding.t =
  { name = "pass"; space = 0; run = (fun ~pid:_ ~rng:_ v -> { Deciding.decide = false; value = v }) }

let seq = function
  | [] -> pass_through
  | x :: rest -> List.fold_left pair x rest

let pair_factory (fx : Deciding.factory) (fy : Deciding.factory) : Deciding.factory =
  { fname = Printf.sprintf "(%s; %s)" fx.fname fy.fname;
    instantiate =
      (fun ~n memory -> pair (fx.instantiate ~n memory) (fy.instantiate ~n memory)) }

let seq_factory = function
  | [] -> Deciding.copy_object
  | f :: rest -> List.fold_left pair_factory f rest

let lazy_seq name nth : Deciding.factory =
  { fname = name;
    instantiate =
      (fun ~n memory ->
        (* Instances are created the first time any process reaches
           position [i]; processes reach positions in increasing order,
           so instances are allocated in position order. *)
        let instances : Deciding.t list ref = ref [] in
        let count = ref 0 in
        let get i =
          while !count <= i do
            let f = nth !count in
            instances := f.Deciding.instantiate ~n memory :: !instances;
            incr count
          done;
          List.nth !instances (!count - 1 - i)
        in
        { name;
          space = 0;
          run =
            (fun ~pid ~rng v ->
              let rec go i v =
                let x = get i in
                let out = x.Deciding.run ~pid ~rng v in
                if out.Deciding.decide then out else go (i + 1) out.Deciding.value
              in
              go 0 v) }) }
