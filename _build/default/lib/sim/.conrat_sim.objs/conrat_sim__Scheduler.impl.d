lib/sim/scheduler.ml: Adversary Array Fiber Memory Metrics Op Option Rng Trace View
