lib/sim/proc.mli: Effect Memory Op
