lib/sim/scheduler.mli: Adversary Memory Metrics Rng Trace
