lib/sim/adversary.ml: Array Fun List Memory Op Option Rng View
