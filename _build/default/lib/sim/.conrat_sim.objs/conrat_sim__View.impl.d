lib/sim/view.ml: Array Memory Op Option
