lib/sim/rng.ml: Array Fun Int64
