lib/sim/trace.ml: Array Format Op Printf
