lib/sim/spec.ml: Array Format List Option
