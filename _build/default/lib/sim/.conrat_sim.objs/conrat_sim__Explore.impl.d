lib/sim/explore.ml: Array Fiber List Memory Op Scheduler
