lib/sim/metrics.mli: Format Op
