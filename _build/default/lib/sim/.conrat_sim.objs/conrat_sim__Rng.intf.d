lib/sim/rng.mli:
