lib/sim/explore.mli: Memory
