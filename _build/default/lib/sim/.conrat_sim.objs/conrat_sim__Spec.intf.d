lib/sim/spec.mli:
