lib/sim/adversary.mli: Rng View
