lib/sim/op.mli: Format Memory
