lib/sim/op.ml: Format Memory
