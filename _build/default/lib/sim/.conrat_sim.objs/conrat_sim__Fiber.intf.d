lib/sim/fiber.mli: Effect Op
