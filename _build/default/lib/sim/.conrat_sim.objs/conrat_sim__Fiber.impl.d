lib/sim/fiber.ml: Effect Op Proc
