lib/sim/memory.ml: Array Format Printf
