lib/sim/view.mli: Memory Op
