lib/sim/proc.ml: Effect Op
