(** Process fibers: suspendable computations that stop at every
    shared-memory operation.

    Both the randomized {!Scheduler} and the exhaustive {!Explore}
    driver run protocols through this module.  Continuations are
    one-shot, so a fiber cannot be rewound — the explorer re-executes
    from scratch for every path instead. *)

type 'r t =
  | Running : 'a Op.t * ('a, 'r t) Effect.Deep.continuation -> 'r t
      (** Suspended at a pending operation. *)
  | Finished of 'r  (** Returned. *)

val spawn : (unit -> 'r) -> 'r t
(** Run [f] until its first operation (or return). *)

val resume : ('a, 'r t) Effect.Deep.continuation -> 'a -> 'r t
(** Hand an operation's result back to a suspended fiber and run it to
    its next operation (or return). *)
