type 'r result = {
  outputs : 'r option array;
  metrics : Metrics.t;
  steps : int;
  completed : bool;
  trace : Trace.t option;
  registers : int;
}

exception Collect_disallowed
exception Stuck of string

(* Apply one operation against memory.  Returns the value handed back to
   the process, whether memory changed, and what a read observed. *)
let apply :
  type a. cheap_collect:bool -> coin:Rng.t -> Memory.t -> a Op.t -> a * bool * int option =
  fun ~cheap_collect ~coin memory op ->
  match op with
  | Op.Read l ->
    let v = Memory.read memory l in
    (v, false, v)
  | Op.Write (l, v) ->
    Memory.write memory l v;
    ((), true, None)
  | Op.Prob_write (l, v, p) ->
    let landed = Rng.bernoulli coin p in
    if landed then Memory.write memory l v;
    ((), landed, None)
  | Op.Prob_write_detect (l, v, p) ->
    let landed = Rng.bernoulli coin p in
    if landed then Memory.write memory l v;
    (landed, landed, None)
  | Op.Collect (l, len) ->
    if not cheap_collect then raise Collect_disallowed;
    (Array.init len (fun i -> Memory.read memory (l + i)), false, None)

let run ?(max_steps = 10_000_000) ?(record = false) ?(cheap_collect = false)
    ~n ~(adversary : Adversary.t) ~rng ~memory body =
  if n <= 0 then invalid_arg "Scheduler.run: n must be positive";
  (* Stream layout is fixed so that executions are reproducible: local
     coins, then probabilistic-write coins, then adversary randomness. *)
  let local_rngs = Rng.split_n rng n in
  let write_coins = Rng.split_n rng n in
  let choose = adversary.Adversary.fresh ~n (Rng.split rng) in
  let metrics = Metrics.create ~n in
  let trace = if record then Some (Trace.create ()) else None in
  let statuses =
    Array.init n (fun pid -> Fiber.spawn (fun () -> body ~pid ~rng:local_rngs.(pid)))
  in
  (* The per-step view is kept incrementally: only the scheduled
     process's pending descriptor changes, and the enabled array only
     shrinks when a process finishes.  This keeps a scheduler step O(1)
     (plus whatever the adversary itself inspects) instead of O(n). *)
  let pending_descr pid =
    match statuses.(pid) with
    | Fiber.Running (op, _) -> Some (Op.Any op)
    | Fiber.Finished _ -> None
  in
  let pending = Array.init n pending_descr in
  let rebuild_enabled () =
    let pids = ref [] in
    for pid = n - 1 downto 0 do
      if Option.is_some pending.(pid) then pids := pid :: !pids
    done;
    Array.of_list !pids
  in
  let enabled = ref (rebuild_enabled ()) in
  let steps = ref 0 in
  let completed = ref false in
  let rec loop () =
    let en = !enabled in
    if Array.length en = 0 then completed := true
    else if !steps >= max_steps then ()
    else begin
      let view =
        { View.step = !steps;
          n;
          enabled = en;
          pending;
          memory;
          op_counts = Metrics.unsafe_counts metrics }
      in
      let choice = choose view in
      let pid =
        if choice >= 0 && choice < n
           && (match statuses.(choice) with Fiber.Running _ -> true | _ -> false)
        then choice
        else Adversary.next_enabled_from en n (((choice mod n) + n) mod n)
      in
      (match statuses.(pid) with
       | Fiber.Finished _ -> raise (Stuck "scheduled a finished process")
       | Fiber.Running (op, k) ->
         let result, landed, observed =
           apply ~cheap_collect ~coin:write_coins.(pid) memory op
         in
         Metrics.record metrics ~pid (Op.kind (Op.Any op));
         Option.iter
           (fun t -> Trace.add t { Trace.step = !steps; pid; op = Op.Any op; landed; observed })
           trace;
         incr steps;
         statuses.(pid) <- Fiber.resume k result;
         pending.(pid) <- pending_descr pid;
         if pending.(pid) = None then enabled := rebuild_enabled ());
      loop ()
    end
  in
  loop ();
  let outputs =
    Array.map (function Fiber.Finished r -> Some r | Fiber.Running _ -> None) statuses
  in
  { outputs;
    metrics;
    steps = !steps;
    completed = !completed;
    trace;
    registers = Memory.size memory }
