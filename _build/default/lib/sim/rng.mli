(** Deterministic, splittable pseudo-random number generator.

    The whole simulator is driven by streams split off a single seed:
    per-process local coins, adversary randomness and workload generation
    each get an independent stream.  Re-running with the same seed
    reproduces the exact same execution, which the test suite relies on.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit counter advanced by a fixed odd constant and finalised by a
    variance-spreading mix.  It is not cryptographic; it is fast, has
    full 2^64 period per stream, and splitting produces streams that are
    independent for all practical simulation purposes. *)

type t
(** A mutable generator state.  Not thread-safe; the simulator is
    single-domain and sequential by design. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal
    seeds give equal streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original
    produce the same subsequent stream. *)

val split : t -> t
(** [split t] advances [t] once and returns a new generator whose stream
    is (practically) independent of the remainder of [t]'s stream. *)

val split_n : t -> int -> t array
(** [split_n t k] returns [k] independent generators split off [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive.  Uses rejection sampling, so the result is exactly
    uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range
    [lo, hi]. *)

val bool : t -> bool
(** A fair coin. *)

val float : t -> float
(** A uniform draw from [0, 1), with 53 bits of precision. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] ([p] is clamped to
    [0, 1]). *)

val pm1 : t -> int
(** A fair draw from [{-1, +1}] — the local vote used by voting-style
    shared coins. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from the exponential distribution with
    rate [lambda]; used by the noisy scheduler's jitter model. *)

val state : t -> int64
(** The raw internal state, for debugging and determinism tests. *)
