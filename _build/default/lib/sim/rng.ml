type t = { mutable s : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The "mix64variant13" finaliser from the SplitMix64 reference
   implementation: xor-shift multiply staircase that turns the weak
   counter sequence into high-quality output. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { s = mix64 (Int64.of_int seed) }

let copy t = { s = t.s }

let bits64 t =
  t.s <- Int64.add t.s golden_gamma;
  mix64 t.s

let split t = { s = bits64 t }

let split_n t k = Array.init k (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on 62 bits (the width of a native OCaml int)
     keeps the draw exactly uniform for any bound. *)
  let mask = Int64.of_int max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let float t =
  (* 53 uniform bits scaled into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. 0x1.0p-53

let bernoulli t p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else float t < p

let pm1 t = if bool t then 1 else -1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n Fun.id in
  shuffle t a;
  a

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1.0 -. float t) /. lambda

let state t = t.s
