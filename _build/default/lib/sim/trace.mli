(** Execution traces.

    A trace records, per scheduler step, which process moved, what
    operation it executed, and what the operation observed or did.
    Traces support the determinism tests (same seed ⇒ identical trace)
    and let the {!Spec} checkers reason about whole executions. *)

type event = {
  step : int;            (** 0-based position in the execution *)
  pid : int;             (** the process the adversary scheduled *)
  op : Op.any;           (** the operation it executed *)
  landed : bool;         (** for (probabilistic) writes: whether memory changed *)
  observed : int option; (** for reads: the value returned *)
}

type t

val create : unit -> t
val add : t -> event -> unit
val length : t -> int
val events : t -> event list
(** Events in execution order. *)

val get : t -> int -> event

val equal : t -> t -> bool
(** Structural equality of whole traces (used by determinism tests). *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
