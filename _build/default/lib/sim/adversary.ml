type t = {
  name : string;
  fresh : n:int -> Rng.t -> (View.full -> int);
}

let adaptive name fresh = { name; fresh }

let oblivious name fresh =
  { name;
    fresh = (fun ~n rng ->
      let f = fresh ~n rng in
      fun view -> f (View.to_oblivious view)) }

let value_oblivious name fresh =
  { name;
    fresh = (fun ~n rng ->
      let f = fresh ~n rng in
      fun view -> f (View.to_value_oblivious view)) }

let location_oblivious name fresh =
  { name;
    fresh = (fun ~n rng ->
      let f = fresh ~n rng in
      fun view -> f (View.to_location_oblivious view)) }

(* Pick the first enabled pid at or cyclically after [start]. *)
let next_enabled_from enabled n start =
  let is_enabled = Array.make n false in
  Array.iter (fun p -> is_enabled.(p) <- true) enabled;
  let rec go i remaining =
    if remaining = 0 then enabled.(0)
    else if is_enabled.(i mod n) then i mod n
    else go (i + 1) (remaining - 1)
  in
  go start n

let round_robin =
  oblivious "round_robin" (fun ~n:_ _rng ->
    let cursor = ref 0 in
    fun (v : View.oblivious) ->
      let pid = next_enabled_from v.ob_enabled v.ob_n !cursor in
      cursor := pid + 1;
      pid)

let random_uniform =
  oblivious "random_uniform" (fun ~n:_ rng ->
    fun (v : View.oblivious) ->
      v.ob_enabled.(Rng.int rng (Array.length v.ob_enabled)))

let fixed_permutation ?perm () =
  oblivious "fixed_permutation" (fun ~n rng ->
    let perm = match perm with Some p -> Array.copy p | None -> Rng.permutation rng n in
    let cursor = ref 0 in
    fun (v : View.oblivious) ->
      let is_enabled = Array.make v.ob_n false in
      Array.iter (fun p -> is_enabled.(p) <- true) v.ob_enabled;
      let rec go remaining =
        if remaining = 0 then v.ob_enabled.(0)
        else begin
          let pid = perm.(!cursor mod n) in
          incr cursor;
          if is_enabled.(pid) then pid else go (remaining - 1)
        end
      in
      go (2 * n))

let write_stalker =
  value_oblivious "write_stalker" (fun ~n:_ _rng ->
    let cursor = ref 0 in
    fun (v : View.value_oblivious) ->
      let readers =
        Array.to_list v.vo_enabled
        |> List.filter (fun pid ->
            match v.vo_pending.(pid) with
            | Some { View.m_kind = Op.Read_op | Op.Collect_op; _ } -> true
            | Some _ | None -> false)
      in
      let pool = if readers <> [] then Array.of_list readers else v.vo_enabled in
      let pid = pool.(!cursor mod Array.length pool) in
      incr cursor;
      pid)

(* Values currently stored anywhere in memory. *)
let stored_values contents =
  Array.to_list contents |> List.filter_map Fun.id

let overwrite_attacker =
  location_oblivious "overwrite_attacker" (fun ~n:_ _rng ->
    let cursor = ref 0 in
    fun (v : View.location_oblivious) ->
      let stored = stored_values v.lo_contents in
      let conflicting pid =
        match v.lo_pending.(pid) with
        | Some { View.m_kind = Op.Prob_write_op | Op.Write_op; m_value = Some value; m_prob; _ } ->
          if stored <> [] && not (List.mem value stored)
          then Some (Option.value m_prob ~default:1.0)
          else None
        | Some _ | None -> None
      in
      let best = ref None in
      Array.iter
        (fun pid ->
          match conflicting pid with
          | Some p ->
            (match !best with
             | Some (_, p') when p' >= p -> ()
             | _ -> best := Some (pid, p))
          | None -> ())
        v.lo_enabled;
      match !best with
      | Some (pid, _) -> pid
      | None ->
        let pid = v.lo_enabled.(!cursor mod Array.length v.lo_enabled) in
        incr cursor;
        pid)

let adaptive_overwriter =
  adaptive "adaptive_overwriter" (fun ~n:_ _rng ->
    (* Tries to split the readers: once some register is non-empty,
       alternate between letting one pending reader observe the current
       value and scheduling the conflicting pending writer most likely
       to overwrite it, so that successive readers see different
       values.  An adaptive adversary may do this because it sees both
       register contents and pending-write values/locations; Theorem 7
       makes no promise against it. *)
    let cursor = ref 0 in
    let let_reader_go = ref true in
    fun (v : View.full) ->
      let contents = Memory.snapshot v.memory in
      let stored = stored_values contents in
      let best_writer =
        let best = ref None in
        Array.iter
          (fun pid ->
            match v.pending.(pid) with
            | Some any when Op.is_write any ->
              (match Op.value any with
               | Some value when stored <> [] && not (List.mem value stored) ->
                 let p = Option.value (Op.prob any) ~default:1.0 in
                 (match !best with
                  | Some (_, p') when p' >= p -> ()
                  | _ -> best := Some (pid, p))
               | Some _ | None -> ())
            | Some _ | None -> ())
          v.enabled;
        Option.map fst !best
      in
      let any_reader =
        Array.to_list v.enabled
        |> List.find_opt (fun pid ->
            match v.pending.(pid) with
            | Some any -> Op.kind any = Op.Read_op
            | None -> false)
      in
      let fallback () =
        let pid = v.enabled.(!cursor mod Array.length v.enabled) in
        incr cursor;
        pid
      in
      if stored = [] then fallback ()
      else begin
        let choice =
          if !let_reader_go then match any_reader with Some r -> Some r | None -> best_writer
          else match best_writer with Some w -> Some w | None -> any_reader
        in
        let_reader_go := not !let_reader_go;
        match choice with Some pid -> pid | None -> fallback ()
      end)

let noisy ?(jitter = 0.3) () =
  oblivious "noisy" (fun ~n rng ->
    (* vtime.(p) is process p's next planned step time; each executed
       step adds 1 plus accumulated random error, as in the noisy
       scheduling model of Aspnes [5]. *)
    let vtime = Array.init n (fun _ -> Rng.float rng) in
    fun (v : View.oblivious) ->
      let best = ref v.ob_enabled.(0) in
      Array.iter (fun pid -> if vtime.(pid) < vtime.(!best) then best := pid) v.ob_enabled;
      let pid = !best in
      vtime.(pid) <- vtime.(pid) +. 1.0 +. (Rng.exponential rng (1.0 /. jitter) -. jitter);
      pid)

let priority ?priorities () =
  oblivious "priority" (fun ~n rng ->
    let prio =
      match priorities with
      | Some p -> Array.copy p
      | None ->
        ignore (Rng.bits64 rng);
        Array.init n Fun.id
    in
    fun (v : View.oblivious) ->
      let best = ref v.ob_enabled.(0) in
      Array.iter (fun pid -> if prio.(pid) > prio.(!best) then best := pid) v.ob_enabled;
      !best)

let all_weak () =
  [ round_robin; random_uniform; fixed_permutation (); write_stalker; overwrite_attacker ]

let by_name = function
  | "round_robin" -> round_robin
  | "random_uniform" -> random_uniform
  | "fixed_permutation" -> fixed_permutation ()
  | "write_stalker" -> write_stalker
  | "overwrite_attacker" -> overwrite_attacker
  | "adaptive_overwriter" -> adaptive_overwriter
  | "noisy" -> noisy ()
  | "priority" -> priority ()
  | _ -> raise Not_found
