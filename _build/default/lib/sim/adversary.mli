(** Adversary schedulers.

    An adversary is, per §2, a function from partial executions to
    process ids.  Here it is a named factory: [fresh] is called once per
    execution and returns a stateful choice function.  The smart
    constructors below build adversaries of each strength class from a
    choice function over the class's restricted {!View}; this makes the
    information restriction a type-level guarantee.

    If an adversary returns a pid that is not enabled, the scheduler
    falls back to the next enabled pid at or after it (cyclically) —
    this is how fixed-order oblivious schedules "skip" halted
    processes. *)

type t = {
  name : string;
  fresh : n:int -> Rng.t -> (View.full -> int);
}

(** {1 Smart constructors per strength class} *)

val adaptive : string -> (n:int -> Rng.t -> (View.full -> int)) -> t
(** A strong adversary: sees everything, including register contents
    and pending write values and locations. *)

val oblivious : string -> (n:int -> Rng.t -> (View.oblivious -> int)) -> t
val value_oblivious : string -> (n:int -> Rng.t -> (View.value_oblivious -> int)) -> t
val location_oblivious : string -> (n:int -> Rng.t -> (View.location_oblivious -> int)) -> t

(** {1 The standard zoo}

    Each of these is used by the test suite and the experiment harness;
    E7 runs the conciliator against all of them. *)

val round_robin : t
(** Oblivious: p0, p1, …, p(n-1), p0, … skipping halted processes. *)

val random_uniform : t
(** Oblivious: schedules a uniformly random enabled process each step
    (randomness independent of the protocol's coins). *)

val fixed_permutation : ?perm:int array -> unit -> t
(** Oblivious: repeats a fixed (by default randomly drawn) permutation
    of the processes forever. *)

val write_stalker : t
(** Value-oblivious: delays every pending write as long as some process
    has a pending read — the classic attack on vote-style protocols,
    which stockpiles pending writes and releases them together. *)

val overwrite_attacker : t
(** Location-oblivious: tries to break first-mover conciliators.  It
    prefers scheduling processes whose pending probabilistic write
    carries a value different from some value already present in
    memory, choosing among those the one with the highest write
    probability (the most "impatient" process). *)

val adaptive_overwriter : t
(** Adaptive (stronger than the model the conciliator is designed for;
    used to show what the location-oblivious restriction buys).  After
    any register becomes non-⊥ it always schedules the conflicting
    pending writer with the highest success probability, and starves
    processes about to read agreement. *)

val noisy : ?jitter:float -> unit -> t
(** The noisy scheduler of [5] (§4.2): each process has a planned
    schedule of evenly spaced steps, perturbed by random per-step jitter
    that accumulates over time; at every point the process with the
    smallest perturbed virtual time moves.  [jitter] is the standard
    scale of the per-step exponential noise (default 0.3). *)

val priority : ?priorities:int array -> unit -> t
(** Priority-based scheduling as in [27] (§4.2): each process has a
    fixed distinct priority and the highest-priority enabled process
    always moves.  Default priorities: pid order (p(n-1) highest). *)

val all_weak : unit -> t list
(** The adversaries consensus must survive in the probabilistic-write
    model: [round_robin], [random_uniform], [fixed_permutation],
    [write_stalker], [overwrite_attacker]. *)

val next_enabled_from : int array -> int -> int -> int
(** [next_enabled_from enabled n start] is the first enabled pid at or
    cyclically after [start] — the fallback rule the scheduler applies
    when an adversary names a halted process.  Exposed for the
    scheduler and for tests. *)

val by_name : string -> t
(** Look up an adversary by its [name]; raises [Not_found] for unknown
    names.  Recognised names: round_robin, random_uniform,
    fixed_permutation, write_stalker, overwrite_attacker,
    adaptive_overwriter, noisy, priority. *)
