(** Exhaustive execution exploration — a miniature model checker.

    While {!Scheduler.run} samples one execution per seed, [explore]
    enumerates {e every} execution of a protocol on a small instance:
    every interleaving the adversary could choose, and both outcomes of
    every probabilistic write with probability strictly between 0
    and 1.  Safety properties checked over this tree are therefore
    {e proved} for that instance, not merely tested.

    This only covers protocols whose randomness consists entirely of
    probabilistic writes (true for the ratifier, which is deterministic,
    for the impatient conciliator, and for the bounded-space fallback);
    local-coin draws inside protocol code are not branched, so protocols
    using {!Rng} directly get only the schedule explored.

    Executions can be unbounded (an adversary can livelock a conciliator
    with vanishing probability), so paths are cut off at [max_depth] and
    the [check] callback is told whether the execution was complete;
    safety properties are prefix-closed and should be checked on
    truncated executions too. *)

type stats = {
  complete : int;       (** complete executions explored *)
  truncated : int;      (** paths cut off at [max_depth] *)
  exhausted : bool;     (** the whole tree fit within [max_runs] *)
}

val explore :
  ?max_depth:int ->
  ?max_runs:int ->
  ?cheap_collect:bool ->
  n:int ->
  setup:(unit -> Memory.t * (pid:int -> 'r)) ->
  check:(complete:bool -> 'r option array -> (unit, string) result) ->
  unit ->
  (stats, string * stats) result
(** [explore ~n ~setup ~check ()] enumerates executions depth-first.
    [setup] must build a fresh memory and protocol instance per call
    (each path re-executes from scratch — continuations are one-shot).
    [check] is called at the end of every path; the first [Error] aborts
    the search and is returned together with the statistics so far.
    Defaults: [max_depth = 200], [max_runs = 2_000_000]. *)
