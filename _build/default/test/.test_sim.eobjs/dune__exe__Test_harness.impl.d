test/test_harness.ml: Alcotest Array Conrat_core Conrat_harness Conrat_sim Experiments Filename List Montecarlo Result Stats String Sys Table Workload
