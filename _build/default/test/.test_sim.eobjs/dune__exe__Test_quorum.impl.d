test/test_quorum.ml: Alcotest Array Bollobas Combinatorics Conrat_quorum List Printf QCheck QCheck_alcotest Quorum
