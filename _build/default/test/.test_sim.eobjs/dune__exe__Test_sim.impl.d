test/test_sim.ml: Adversary Alcotest Array Conrat_sim Fun Int64 List Memory Metrics Op Option Proc QCheck QCheck_alcotest Result Rng Scheduler Spec String Trace View
