test/test_explore.ml: Alcotest Array Compose Conrat_core Conrat_objects Conrat_sim Deciding Explore Memory Option Proc Rng Spec String
