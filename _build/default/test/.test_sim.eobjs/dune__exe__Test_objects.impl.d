test/test_objects.ml: Adversary Alcotest Array Compose Conrat_core Conrat_objects Conrat_sim Deciding List Memory Printf QCheck QCheck_alcotest Result Rng Scheduler Spec
