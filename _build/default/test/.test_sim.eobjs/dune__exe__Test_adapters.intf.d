test/test_adapters.mli:
