test/test_adapters.ml: Adapters Adversary Alcotest Array Compose Conrat_core Conrat_harness Conrat_objects Conrat_sim Consensus Deciding Memory Option QCheck QCheck_alcotest Rng Scheduler Spec
