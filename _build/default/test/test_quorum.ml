(* Tests for the quorum substrate: combinatorics, quorum systems, and
   the Bollobás certificate. *)

open Conrat_quorum

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Combinatorics                                                       *)
(* ------------------------------------------------------------------ *)

let test_binomial_small () =
  checki "C(0,0)" 1 (Combinatorics.binomial 0 0);
  checki "C(5,0)" 1 (Combinatorics.binomial 5 0);
  checki "C(5,5)" 1 (Combinatorics.binomial 5 5);
  checki "C(5,2)" 10 (Combinatorics.binomial 5 2);
  checki "C(10,3)" 120 (Combinatorics.binomial 10 3);
  checki "C(52,5)" 2_598_960 (Combinatorics.binomial 52 5)

let test_binomial_out_of_range () =
  checki "k<0" 0 (Combinatorics.binomial 5 (-1));
  checki "k>n" 0 (Combinatorics.binomial 5 6)

let test_binomial_symmetry () =
  for n = 0 to 20 do
    for k = 0 to n do
      checki "C(n,k)=C(n,n-k)" (Combinatorics.binomial n k) (Combinatorics.binomial n (n - k))
    done
  done

let test_binomial_pascal () =
  for n = 1 to 25 do
    for k = 1 to n - 1 do
      checki "Pascal"
        (Combinatorics.binomial (n - 1) (k - 1) + Combinatorics.binomial (n - 1) k)
        (Combinatorics.binomial n k)
    done
  done

let test_binomial_overflow () =
  Alcotest.check_raises "overflow detected" Combinatorics.Overflow (fun () ->
    ignore (Combinatorics.binomial 200 100))

let test_log2_ceil () =
  checki "1" 0 (Combinatorics.log2_ceil 1);
  checki "2" 1 (Combinatorics.log2_ceil 2);
  checki "3" 2 (Combinatorics.log2_ceil 3);
  checki "4" 2 (Combinatorics.log2_ceil 4);
  checki "5" 3 (Combinatorics.log2_ceil 5);
  checki "1024" 10 (Combinatorics.log2_ceil 1024);
  checki "1025" 11 (Combinatorics.log2_ceil 1025)

let test_pool_size_for () =
  (* k minimal with C(k, floor k/2) >= m *)
  checki "m=2" 2 (Combinatorics.pool_size_for 2);
  checki "m=3" 3 (Combinatorics.pool_size_for 3);
  checki "m=4" 4 (Combinatorics.pool_size_for 4);
  checki "m=6" 4 (Combinatorics.pool_size_for 6);
  checki "m=7" 5 (Combinatorics.pool_size_for 7);
  checki "m=20" 6 (Combinatorics.pool_size_for 20);
  checki "m=70" 8 (Combinatorics.pool_size_for 70);
  checki "m=71" 9 (Combinatorics.pool_size_for 71)

let test_pool_size_minimal () =
  (* The returned k really is minimal. *)
  for m = 2 to 300 do
    let k = Combinatorics.pool_size_for m in
    checkb "k suffices" true (Combinatorics.binomial k (k / 2) >= m);
    if k > 1 then
      checkb "k-1 does not" true (Combinatorics.binomial (k - 1) ((k - 1) / 2) < m)
  done

let test_unrank_first_last () =
  let first = Combinatorics.unrank_subset ~k:6 ~size:3 0 in
  Alcotest.check Alcotest.(array int) "rank 0 is smallest" [| 0; 1; 2 |] first;
  let last = Combinatorics.unrank_subset ~k:6 ~size:3 (Combinatorics.binomial 6 3 - 1) in
  Alcotest.check Alcotest.(array int) "last rank is largest" [| 3; 4; 5 |] last

let test_unrank_out_of_range () =
  Alcotest.check_raises "rank too large"
    (Invalid_argument "unrank_subset: rank out of range")
    (fun () -> ignore (Combinatorics.unrank_subset ~k:4 ~size:2 6))

let test_unrank_distinct_sorted () =
  for r = 0 to Combinatorics.binomial 8 4 - 1 do
    let s = Combinatorics.unrank_subset ~k:8 ~size:4 r in
    checki "size" 4 (Array.length s);
    for i = 0 to 2 do
      checkb "strictly increasing" true (s.(i) < s.(i + 1))
    done;
    checkb "in range" true (Array.for_all (fun e -> e >= 0 && e < 8) s)
  done

let test_rank_unrank_roundtrip () =
  for r = 0 to Combinatorics.binomial 9 4 - 1 do
    let s = Combinatorics.unrank_subset ~k:9 ~size:4 r in
    checki "roundtrip" r (Combinatorics.rank_subset ~k:9 s)
  done

let test_subsets_all_distinct () =
  let all = Combinatorics.subsets ~k:7 ~size:3 in
  checki "count" (Combinatorics.binomial 7 3) (List.length all);
  checki "distinct" (List.length all) (List.sort_uniq compare all |> List.length)

let qcheck_rank_unrank =
  QCheck.Test.make ~name:"rank/unrank roundtrip (random k, size, rank)" ~count:200
    QCheck.(pair (int_range 1 16) (pair (int_range 0 16) (int_range 0 10_000)))
    (fun (k, (size, r)) ->
      let size = min size k in
      let total = Combinatorics.binomial k size in
      let r = r mod total in
      Combinatorics.rank_subset ~k (Combinatorics.unrank_subset ~k ~size r) = r)

(* ------------------------------------------------------------------ *)
(* Quorum systems                                                      *)
(* ------------------------------------------------------------------ *)

let all_systems m =
  (if m = 2 then [ Quorum.binary ] else [])
  @ [ Quorum.bollobas_optimal ~m; Quorum.bitvector ~m; Quorum.singleton ~m ]

let test_theorem8_condition () =
  (* W v' ∩ R v = ∅  iff  v' = v — the exact hypothesis of Theorem 8,
     brute-forced for every scheme and many m. *)
  List.iter
    (fun m ->
      List.iter
        (fun q ->
          checkb (Printf.sprintf "%s m=%d valid" q.Quorum.name m) true (Quorum.valid q))
        (all_systems m))
    [ 2; 3; 4; 5; 7; 8; 16; 33; 64; 100 ]

let test_binary_quorums () =
  let q = Quorum.binary in
  Alcotest.check Alcotest.(array int) "W0" [| 0 |] (q.Quorum.write_quorum 0);
  Alcotest.check Alcotest.(array int) "R0" [| 1 |] (q.Quorum.read_quorum 0);
  checki "pool" 2 q.Quorum.pool

let test_value_range_checked () =
  List.iter
    (fun q ->
      Alcotest.check_raises
        (Printf.sprintf "%s rejects v=m" q.Quorum.name)
        (Invalid_argument
           (Printf.sprintf "%s quorum system: value 8 out of range [0,8)" q.Quorum.name))
        (fun () -> ignore (q.Quorum.write_quorum 8)))
    [ Quorum.bollobas_optimal ~m:8; Quorum.bitvector ~m:8; Quorum.singleton ~m:8 ]

let test_bollobas_space () =
  (* pool = least k with C(k, floor k/2) >= m *)
  List.iter
    (fun (m, expected) ->
      checki (Printf.sprintf "m=%d" m) expected (Quorum.bollobas_optimal ~m).Quorum.pool)
    [ (2, 2); (4, 4); (16, 6); (64, 8); (256, 11); (1024, 13) ]

let test_bitvector_space () =
  List.iter
    (fun (m, expected) ->
      checki (Printf.sprintf "m=%d" m) expected (Quorum.bitvector ~m).Quorum.pool)
    [ (2, 2); (4, 4); (16, 8); (64, 12); (256, 16); (1024, 20) ]

let test_quorums_within_pool () =
  List.iter
    (fun m ->
      List.iter
        (fun q ->
          for v = 0 to m - 1 do
            let inside arr = Array.for_all (fun e -> e >= 0 && e < q.Quorum.pool) arr in
            checkb "W inside pool" true (inside (q.Quorum.write_quorum v));
            checkb "R inside pool" true (inside (q.Quorum.read_quorum v))
          done)
        (all_systems m))
    [ 2; 5; 16; 40 ]

let test_bollobas_read_is_complement () =
  let q = Quorum.bollobas_optimal ~m:20 in
  for v = 0 to 19 do
    let w = Array.to_list (q.Quorum.write_quorum v) in
    let r = Array.to_list (q.Quorum.read_quorum v) in
    checki "partition size" q.Quorum.pool (List.length w + List.length r);
    checkb "disjoint" true (List.for_all (fun e -> not (List.mem e r)) w)
  done

let test_singleton_sizes () =
  let q = Quorum.singleton ~m:10 in
  checki "W size 1" 1 (Quorum.max_write_size q);
  checki "R size m-1" 9 (Quorum.max_read_size q)

let test_valid_detects_broken_system () =
  (* A deliberately broken system: R v = W v, so W v ∩ R v ≠ ∅. *)
  let broken =
    { Quorum.name = "broken";
      m = 2;
      pool = 2;
      write_quorum = (fun v -> [| v |]);
      read_quorum = (fun v -> [| v |]) }
  in
  checkb "broken rejected" false (Quorum.valid broken)

let qcheck_theorem8_bollobas =
  QCheck.Test.make ~name:"Theorem 8 condition for random m (bollobas)" ~count:30
    QCheck.(int_range 2 400)
    (fun m -> Quorum.valid (Quorum.bollobas_optimal ~m))

let qcheck_theorem8_bitvector =
  QCheck.Test.make ~name:"Theorem 8 condition for random m (bitvector)" ~count:30
    QCheck.(int_range 2 400)
    (fun m -> Quorum.valid (Quorum.bitvector ~m))

(* ------------------------------------------------------------------ *)
(* Bollobás certificate                                                *)
(* ------------------------------------------------------------------ *)

let test_certificate_accepts_valid () =
  List.iter
    (fun m ->
      List.iter
        (fun q ->
          checkb (Printf.sprintf "%s m=%d certified" q.Quorum.name m) true
            (Bollobas.certificate q))
        (all_systems m))
    [ 2; 3; 8; 30; 64 ]

let test_sum_bound_tight () =
  (* The singleton system meets the bound with equality:
     m terms of 1/C(m,1) = 1/m sum to exactly 1. *)
  checkb "tight case accepted" true (Bollobas.sum_bound (List.init 10 (fun _ -> (1, 9))));
  (* One more set than the bound allows must be rejected. *)
  checkb "overfull rejected" false
    (Bollobas.sum_bound ((1, 9) :: List.init 10 (fun _ -> (1, 9))))

let test_sum_bound_rejects_impossible () =
  (* 5 pairs of singleton sets: 5 * 1/C(2,1) = 2.5 > 1 — no such
     cross-intersecting family exists. *)
  checkb "impossible family rejected" false
    (Bollobas.sum_bound (List.init 5 (fun _ -> (1, 1))))

let test_pool_lower_bound_matches_construction () =
  for m = 2 to 200 do
    checki "construction is optimal" (Bollobas.pool_lower_bound ~m)
      (Quorum.bollobas_optimal ~m).Quorum.pool
  done

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "quorum"
    [ ( "combinatorics",
        [ tc "binomial small" `Quick test_binomial_small;
          tc "binomial out of range" `Quick test_binomial_out_of_range;
          tc "binomial symmetry" `Quick test_binomial_symmetry;
          tc "binomial pascal" `Quick test_binomial_pascal;
          tc "binomial overflow" `Quick test_binomial_overflow;
          tc "log2_ceil" `Quick test_log2_ceil;
          tc "pool_size_for" `Quick test_pool_size_for;
          tc "pool size minimal" `Quick test_pool_size_minimal;
          tc "unrank first/last" `Quick test_unrank_first_last;
          tc "unrank out of range" `Quick test_unrank_out_of_range;
          tc "unrank distinct sorted" `Quick test_unrank_distinct_sorted;
          tc "rank/unrank roundtrip" `Quick test_rank_unrank_roundtrip;
          tc "subsets all distinct" `Quick test_subsets_all_distinct;
          QCheck_alcotest.to_alcotest qcheck_rank_unrank ] );
      ( "quorum",
        [ tc "Theorem 8 condition" `Quick test_theorem8_condition;
          tc "binary quorums" `Quick test_binary_quorums;
          tc "value range checked" `Quick test_value_range_checked;
          tc "bollobas space" `Quick test_bollobas_space;
          tc "bitvector space" `Quick test_bitvector_space;
          tc "quorums within pool" `Quick test_quorums_within_pool;
          tc "bollobas complement" `Quick test_bollobas_read_is_complement;
          tc "singleton sizes" `Quick test_singleton_sizes;
          tc "valid detects broken" `Quick test_valid_detects_broken_system;
          QCheck_alcotest.to_alcotest qcheck_theorem8_bollobas;
          QCheck_alcotest.to_alcotest qcheck_theorem8_bitvector ] );
      ( "bollobas",
        [ tc "certificate accepts valid" `Quick test_certificate_accepts_valid;
          tc "sum bound tight" `Quick test_sum_bound_tight;
          tc "sum bound rejects impossible" `Quick test_sum_bound_rejects_impossible;
          tc "lower bound matches construction" `Quick test_pool_lower_bound_matches_construction ] ) ]
