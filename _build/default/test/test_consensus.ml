(* Tests for the §4 consensus constructions: the unbounded alternation
   with fast path, the bounded construction with fallback, and the
   ratifier-only protocol under restricted schedulers. *)

open Conrat_sim
open Conrat_objects
open Conrat_core
open Conrat_harness

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let expect_ok label = function
  | Ok () -> ()
  | Error reason -> Alcotest.failf "%s: %s" label reason

let run ?(adversary = Adversary.random_uniform) ?max_steps ~n ~inputs ~seed protocol =
  Montecarlo.run_consensus ?max_steps ~n ~adversary ~inputs ~seed protocol

(* ------------------------------------------------------------------ *)
(* The standard protocol: full contract under every adversary          *)
(* ------------------------------------------------------------------ *)

let test_standard_binary_contract () =
  List.iter
    (fun (adversary : Adversary.t) ->
      for seed = 0 to 24 do
        let n = 6 in
        let inputs = Array.init n (fun pid -> pid mod 2) in
        let o = run ~adversary ~n ~inputs ~seed (Consensus.standard ~m:2) in
        expect_ok (Printf.sprintf "contract (%s, seed %d)" adversary.name seed) o.safety
      done)
    (Adversary.all_weak () @ [ Adversary.noisy (); Adversary.priority () ])

let test_standard_mvalued_contract () =
  List.iter
    (fun m ->
      for seed = 0 to 14 do
        let n = 7 in
        let inputs = Array.init n (fun pid -> pid mod m) in
        let o = run ~n ~inputs ~seed (Consensus.standard ~m) in
        expect_ok (Printf.sprintf "m=%d seed=%d" m seed) o.safety
      done)
    [ 2; 3; 5; 16; 40 ]

let test_standard_cheap_collect_contract () =
  (* The cheap-collect variant needs the model opt-in; its ratifier
     costs 4 ops regardless of m. *)
  List.iter
    (fun m ->
      for seed = 0 to 9 do
        let n = 6 in
        let inputs = Array.init n (fun pid -> pid mod m) in
        let o =
          Montecarlo.run_consensus ~cheap_collect:true ~n
            ~adversary:Adversary.random_uniform ~inputs ~seed
            (Consensus.standard_cheap_collect ~m)
        in
        expect_ok (Printf.sprintf "cheap m=%d seed=%d" m seed) o.safety
      done)
    [ 2; 7; 40 ]

let test_standard_cheap_collect_requires_model () =
  (* Without the opt-in the scheduler rejects the collect op. *)
  checkb "raises Collect_disallowed" true
    (try
       ignore
         (Montecarlo.run_consensus ~n:3 ~adversary:Adversary.round_robin
            ~inputs:[| 0; 1; 2 |] ~seed:0 (Consensus.standard_cheap_collect ~m:3));
       false
     with Scheduler.Collect_disallowed -> true)

let test_standard_single_process () =
  let o = run ~n:1 ~inputs:[| 4 |] ~seed:0 (Consensus.standard ~m:5) in
  expect_ok "solo" o.safety;
  Alcotest.check Alcotest.(array (option int)) "solo decides own input" [| Some 4 |] o.outputs

let test_standard_two_processes_all_seeds () =
  (* n=2 is where agreement races are tightest; hammer it. *)
  for seed = 0 to 199 do
    let o = run ~n:2 ~inputs:[| 0; 1 |] ~seed (Consensus.standard ~m:2) in
    expect_ok (Printf.sprintf "seed %d" seed) o.safety
  done

(* Safety against the adaptive attacker: termination is not guaranteed
   out of model, but agreement/validity of whoever decides must hold on
   any partial execution. *)
let test_standard_safety_vs_adaptive () =
  for seed = 0 to 24 do
    let n = 5 in
    let inputs = Array.init n (fun pid -> pid mod 2) in
    let o =
      run ~adversary:Adversary.adaptive_overwriter ~max_steps:200_000 ~n ~inputs ~seed
        (Consensus.standard ~m:2)
    in
    expect_ok "partial agreement" (Spec.agreement ~outputs:o.outputs);
    expect_ok "partial validity" (Spec.validity ~inputs ~outputs:o.outputs)
  done

let test_decided_value_was_contended () =
  (* With a split workload both 0 and 1 are valid; over many seeds both
     must actually win sometimes (no hidden bias to a constant). *)
  let zero_wins = ref 0 in
  let one_wins = ref 0 in
  for seed = 0 to 99 do
    let o = run ~n:4 ~inputs:[| 0; 1; 0; 1 |] ~seed (Consensus.standard ~m:2) in
    match o.outputs.(0) with
    | Some 0 -> incr zero_wins
    | Some 1 -> incr one_wins
    | _ -> Alcotest.fail "no decision"
  done;
  checkb "both values win sometimes" true (!zero_wins > 5 && !one_wins > 5)

(* ------------------------------------------------------------------ *)
(* Fast path (§4.1.1)                                                  *)
(* ------------------------------------------------------------------ *)

let test_fast_path_all_same () =
  (* All-equal inputs: decision in R₋₁/R₀, ≤ 8 ops each, conciliators
     untouched. *)
  let entries, counted = Deciding.counting (Conciliator.impatient_first_mover ()) in
  let protocol =
    Consensus.unbounded ~conciliator:(fun _ -> counted)
      ~ratifier:(fun _ -> Ratifier.binary ()) ()
  in
  for seed = 0 to 19 do
    let n = 6 in
    let inputs = Array.make n 1 in
    let o = run ~n ~inputs ~seed protocol in
    expect_ok "contract" o.safety;
    checkb "indiv <= 8" true (o.individual_work <= 8)
  done;
  checki "conciliator never entered" 0 (entries ())

let test_no_fast_path_still_correct () =
  let protocol =
    Consensus.unbounded ~fast_path:false
      ~conciliator:(fun _ -> Conciliator.impatient_first_mover ())
      ~ratifier:(fun _ -> Ratifier.binary ())
      ()
  in
  for seed = 0 to 19 do
    let inputs = [| 0; 1; 1; 0 |] in
    let o = run ~n:4 ~inputs ~seed protocol in
    expect_ok "contract" o.safety
  done

let test_fast_path_round_indices () =
  (* The alternation must hand round index -1, 0 to ratifiers first,
     then pair i >= 1 as C_i; R_i. *)
  let seen_ratifier = ref [] in
  let seen_conciliator = ref [] in
  let protocol =
    Consensus.unbounded
      ~conciliator:(fun i ->
        seen_conciliator := i :: !seen_conciliator;
        Conciliator.impatient_first_mover ())
      ~ratifier:(fun i ->
        seen_ratifier := i :: !seen_ratifier;
        Ratifier.binary ())
      ()
  in
  let o = run ~n:3 ~inputs:[| 0; 1; 0 |] ~seed:5 protocol in
  expect_ok "contract" o.safety;
  let rats = List.rev !seen_ratifier in
  let cons = List.rev !seen_conciliator in
  checkb "ratifiers start at -1, 0" true
    (List.length rats >= 2 && List.nth rats 0 = -1 && List.nth rats 1 = 0);
  List.iteri (fun idx round -> checki "conciliator rounds 1.." (idx + 1) round) cons

(* ------------------------------------------------------------------ *)
(* Bounded construction (Theorem 5)                                    *)
(* ------------------------------------------------------------------ *)

let test_bounded_contract () =
  List.iter
    (fun rounds ->
      for seed = 0 to 24 do
        let n = 5 in
        let inputs = Array.init n (fun pid -> pid mod 2) in
        let o =
          run ~n ~inputs ~seed ~max_steps:1_000_000
            (Consensus.standard_bounded ~m:2 ~rounds)
        in
        expect_ok (Printf.sprintf "k=%d seed=%d" rounds seed) o.safety
      done)
    [ 0; 1; 2; 5 ]

let test_bounded_space_is_bounded () =
  (* The whole point of Theorem 5: register count independent of how
     long the execution runs.  k rounds of (1-register conciliator +
     3-register binary ratifier... shared proposal) plus prefix plus n
     fallback registers. *)
  let memory = Memory.create () in
  let n = 4 in
  let instance = (Consensus.standard_bounded ~m:2 ~rounds:3).instantiate ~n memory in
  let expected =
    (* R₋₁, R₀: 3 each; 3 × (C=1 + R=3); fallback: n. *)
    3 + 3 + (3 * 4) + n
  in
  checki "registers allocated up front" expected (Memory.size memory);
  (* And running it does not allocate more. *)
  let _ =
    Scheduler.run ~n ~adversary:Adversary.random_uniform ~rng:(Rng.create 3) ~memory
      (fun ~pid ~rng -> instance.Consensus.decide ~pid ~rng (pid mod 2))
  in
  checki "no further allocation" expected (Memory.size memory)

let test_bounded_zero_rounds_is_fallback () =
  (* k=0 with no fast path degenerates to pure fallback — still
     consensus. *)
  let protocol =
    Consensus.bounded ~fast_path:false ~rounds:0
      ~conciliator:(fun _ -> Conciliator.impatient_first_mover ())
      ~ratifier:(fun _ -> Ratifier.binary ())
      ~fallback:(Fallback.racing ~m:2 ())
      ()
  in
  for seed = 0 to 9 do
    let o = run ~n:4 ~inputs:[| 1; 0; 1; 0 |] ~seed ~max_steps:1_000_000 protocol in
    expect_ok "fallback-only" o.safety
  done

(* ------------------------------------------------------------------ *)
(* Ratifier-only construction (§4.2)                                   *)
(* ------------------------------------------------------------------ *)

let test_ratifier_only_under_priority () =
  (* Priority scheduling: the top-priority process runs alone until it
     finishes, so it must decide in R₁ and everyone adopts. *)
  for seed = 0 to 9 do
    let n = 5 in
    let inputs = Array.init n (fun pid -> pid mod 2) in
    let o =
      run ~adversary:(Adversary.priority ()) ~n ~inputs ~seed
        (Consensus.ratifier_only ~ratifier:(fun _ -> Ratifier.binary ()) ())
    in
    expect_ok "priority" o.safety
  done

let test_ratifier_only_under_noisy () =
  (* The noisy scheduler eventually pushes someone ahead (lean-
     consensus, [5]); termination is probabilistic, so allow a generous
     step budget. *)
  for seed = 0 to 9 do
    let n = 4 in
    let inputs = Array.init n (fun pid -> pid mod 2) in
    let o =
      run
        ~adversary:(Adversary.noisy ~jitter:0.8 ())
        ~max_steps:2_000_000 ~n ~inputs ~seed
        (Consensus.ratifier_only ~ratifier:(fun _ -> Ratifier.binary ()) ())
    in
    expect_ok "noisy" o.safety
  done

let test_ratifier_only_safety_under_round_robin () =
  (* Under round robin the ratifier-only protocol may never terminate
     (that is why conciliators exist) — but whoever decides within the
     cap must agree.  Validity/agreement on partial executions. *)
  for seed = 0 to 9 do
    let n = 4 in
    let inputs = Array.init n (fun pid -> pid mod 2) in
    let o =
      run ~adversary:Adversary.round_robin ~max_steps:20_000 ~n ~inputs ~seed
        (Consensus.ratifier_only ~ratifier:(fun _ -> Ratifier.binary ()) ())
    in
    expect_ok "partial agreement" (Spec.agreement ~outputs:o.outputs);
    expect_ok "partial validity" (Spec.validity ~inputs ~outputs:o.outputs)
  done

(* ------------------------------------------------------------------ *)
(* Coin-based consensus (Theorem 6 plumbing end-to-end)                *)
(* ------------------------------------------------------------------ *)

let test_coin_based_consensus () =
  for seed = 0 to 9 do
    let protocol = Consensus.coin_based ~m:2 ~coin:(Conrat_coin.Shared_coin.voting ()) in
    let o = run ~n:4 ~inputs:[| 0; 1; 0; 1 |] ~seed protocol in
    expect_ok "coin-based" o.safety
  done;
  Alcotest.check_raises "m>2 rejected"
    (Invalid_argument "Consensus.coin_based: binary only") (fun () ->
      ignore (Consensus.coin_based ~m:3 ~coin:Conrat_coin.Shared_coin.local_flip))

let test_of_deciding_raises_on_nondeciding () =
  let protocol = Consensus.of_deciding "bad" Deciding.copy_object in
  let memory = Memory.create () in
  let instance = protocol.instantiate ~n:1 memory in
  checkb "raises Failure" true
    (try
       ignore
         (Scheduler.run ~n:1 ~adversary:Adversary.round_robin ~rng:(Rng.create 1) ~memory
            (fun ~pid ~rng -> instance.Consensus.decide ~pid ~rng 0));
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let qcheck_standard_consensus =
  QCheck.Test.make ~name:"standard consensus contract (random cfg)" ~count:200
    QCheck.(quad (int_range 1 9) (int_range 2 12) (int_range 0 1_000_000) (int_range 0 4))
    (fun (n, m, seed, advi) ->
      let adversary = List.nth (Adversary.all_weak ()) advi in
      let input_rng = Rng.create (seed lxor 77) in
      let inputs = Array.init n (fun _ -> Rng.int input_rng m) in
      let o = run ~adversary ~n ~inputs ~seed (Consensus.standard ~m) in
      Result.is_ok o.safety)

let qcheck_bounded_consensus =
  QCheck.Test.make ~name:"bounded consensus contract (random cfg)" ~count:100
    QCheck.(quad (int_range 1 6) (int_range 0 3) (int_range 0 1_000_000) (int_range 0 4))
    (fun (n, rounds, seed, advi) ->
      let adversary = List.nth (Adversary.all_weak ()) advi in
      let inputs = Array.init n (fun pid -> pid mod 2) in
      let o =
        run ~adversary ~n ~inputs ~seed ~max_steps:2_000_000
          (Consensus.standard_bounded ~m:2 ~rounds)
      in
      Result.is_ok o.safety)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "consensus"
    [ ( "standard",
        [ tc "binary contract, all adversaries" `Quick test_standard_binary_contract;
          tc "m-valued contract" `Quick test_standard_mvalued_contract;
          tc "cheap-collect contract" `Quick test_standard_cheap_collect_contract;
          tc "cheap-collect needs model" `Quick test_standard_cheap_collect_requires_model;
          tc "single process" `Quick test_standard_single_process;
          tc "n=2 stress" `Quick test_standard_two_processes_all_seeds;
          tc "safety vs adaptive" `Quick test_standard_safety_vs_adaptive;
          tc "both values can win" `Quick test_decided_value_was_contended;
          QCheck_alcotest.to_alcotest qcheck_standard_consensus ] );
      ( "fast_path",
        [ tc "all same decides in prefix" `Quick test_fast_path_all_same;
          tc "no fast path still correct" `Quick test_no_fast_path_still_correct;
          tc "round indices" `Quick test_fast_path_round_indices ] );
      ( "bounded",
        [ tc "contract" `Quick test_bounded_contract;
          tc "space bounded" `Quick test_bounded_space_is_bounded;
          tc "zero rounds = fallback" `Quick test_bounded_zero_rounds_is_fallback;
          QCheck_alcotest.to_alcotest qcheck_bounded_consensus ] );
      ( "ratifier_only",
        [ tc "priority scheduler" `Quick test_ratifier_only_under_priority;
          tc "noisy scheduler" `Slow test_ratifier_only_under_noisy;
          tc "round robin: safety only" `Quick test_ratifier_only_safety_under_round_robin ] );
      ( "coin_based",
        [ tc "end to end" `Slow test_coin_based_consensus;
          tc "of_deciding guards" `Quick test_of_deciding_raises_on_nondeciding ] ) ]
